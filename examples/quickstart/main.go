// Quickstart: train a federated model with in-situ synthetic data
// generation, unlearn one class, and verify the forgetting — the minimal
// end-to-end tour of the QuickDrop API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
)

func main() {
	// 1. A federated dataset: 4 clients, IID split of an MNIST-like task.
	spec := data.MNISTLike(8, 20) // 8×8 images, 20 training samples per class
	train, test := data.Generate(spec, 1)
	clients := data.PartitionIID(train, 4, rand.New(rand.NewSource(2)))

	// 2. A QuickDrop system: the paper's ConvNet plus default phase
	// structure (1 unlearning round, 2 recovery rounds, scale s=100 —
	// lowered here so the tiny shards keep a couple of samples per class).
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	cfg := core.DefaultConfig(arch)
	cfg.Distill.Scale = 10
	sys, err := core.NewSystem(cfg, data.NewCohort(clients))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Federated training; synthetic data distills alongside it.
	start := time.Now()
	if _, err := sys.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s — test accuracy %.1f%%\n",
		time.Since(start).Round(time.Millisecond), 100*eval.Accuracy(sys.Model, test))
	synthetic := 0
	for i := range clients {
		synthetic += sys.Synthetic(i).Len()
	}
	fmt.Printf("distilled %d training samples into %d synthetic samples\n", train.Len(), synthetic)

	// 4. Unlearn class 7 using only the synthetic data.
	target := 7
	rep, err := sys.Unlearn(core.Request{Kind: core.ClassLevel, Class: target})
	if err != nil {
		log.Fatal(err)
	}
	f, r := eval.ClassSplit(sys.Model, test, target)
	fmt.Printf("unlearned class %d in %s (touched %d samples): F-Set %.1f%%, R-Set %.1f%%\n",
		target, rep.Total.WallTime.Round(time.Millisecond), rep.Unlearn.DataSize, 100*f, 100*r)

	// 5. Relearn it from the synthetic data when the request is revoked.
	if _, err := sys.Relearn(core.Request{Kind: core.ClassLevel, Class: target}); err != nil {
		log.Fatal(err)
	}
	f, r = eval.ClassSplit(sys.Model, test, target)
	fmt.Printf("relearned class %d: F-Set %.1f%%, R-Set %.1f%%\n", target, 100*f, 100*r)
}
