// Class-level unlearning under heterogeneous data, verified with a
// membership-inference attack — the scenario behind the paper's Table 2
// and Figure 3. Think of hospitals that collaboratively trained a
// diagnostic model and must now erase one diagnosis category whose use
// was retracted: the category's samples are spread unevenly across sites
// (Dirichlet α=0.1), and after unlearning, an auditor checks with an MIA
// that the erased samples no longer look like training members.
//
//	go run ./examples/classunlearn
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/mia"
	"quickdrop/internal/nn"
)

func main() {
	const (
		nClients = 10
		target   = 9 // the retracted category
	)
	spec := data.CIFARLike(8, 20)
	train, test := data.Generate(spec, 1)
	clients := data.PartitionDirichlet(train, nClients, 0.1, rand.New(rand.NewSource(2)))
	fmt.Printf("partition heterogeneity: %.2f (0 = IID)\n", data.HeterogeneityStat(clients))

	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 3, Classes: 10, Width: 8, Depth: 2}
	cfg := core.DefaultConfig(arch)
	cfg.Train.Rounds = 18
	sys, err := core.NewSystem(cfg, data.NewCohort(clients))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		log.Fatal(err)
	}
	fBefore, rBefore := eval.ClassSplit(sys.Model, test, target)
	fmt.Printf("before unlearning: class %d accuracy %.1f%%, other classes %.1f%%\n",
		target, 100*fBefore, 100*rBefore)

	// Serve the erasure request. Every client holding category 9
	// participates, using only its synthetic samples.
	start := time.Now()
	rep, err := sys.Unlearn(core.Request{Kind: core.ClassLevel, Class: target})
	if err != nil {
		log.Fatal(err)
	}
	fAfter, rAfter := eval.ClassSplit(sys.Model, test, target)
	fmt.Printf("after unlearning (%s, %d forget + %d recovery samples): class %d %.1f%%, others %.1f%%\n",
		time.Since(start).Round(time.Millisecond), rep.Unlearn.DataSize, rep.Recover.DataSize,
		target, 100*fAfter, 100*rAfter)

	// Audit with a membership-inference attack: erased samples should no
	// longer be recognizable as training members, while retained training
	// samples should be.
	var forgetParts, retainParts []*data.Dataset
	for _, c := range clients {
		forgetParts = append(forgetParts, c.OfClass(target))
		retainParts = append(retainParts, c.WithoutClass(target))
	}
	forgotten := data.Merge(forgetParts...)
	retained := data.Merge(retainParts...)
	attack, err := mia.TrainThreshold(sys.Model, retained, test.WithoutClass(target))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIA member rate — erased samples: %.1f%%, retained training samples: %.1f%%\n",
		100*attack.MemberRate(sys.Model, forgotten), 100*attack.MemberRate(sys.Model, retained))
}
