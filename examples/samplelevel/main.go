// Sample-level unlearning — the extension sketched in the paper's §5.1,
// implemented via sub-class group distillation. A client requests erasure
// of specific records (not a whole class or their full dataset); the
// system unlearns the distillation subsets covering them, audits the
// result with a membership-inference attack, and persists its state so
// future requests survive a restart.
//
//	go run ./examples/samplelevel
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/mia"
	"quickdrop/internal/nn"
)

func main() {
	spec := data.MNISTLike(8, 20)
	train, test := data.Generate(spec, 1)
	clients := data.PartitionIID(train, 4, rand.New(rand.NewSource(2)))

	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	cfg := core.DefaultConfig(arch)
	cfg.Distill.Scale = 4
	cfg.Distill.Groups = 3 // sub-class subsets → sample-level granularity
	sys, err := core.NewSystem(cfg, data.NewCohort(clients))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained; test accuracy %.1f%%\n", 100*eval.Accuracy(sys.Model, test))

	// Client 2 requests erasure of a handful of its records.
	target := 2
	req := core.Request{Kind: core.SampleLevel, Client: target, Samples: []int{0, 5, 9}}
	rep, err := sys.Unlearn(req)
	if err != nil {
		log.Fatal(err)
	}
	removed := sys.RemovedSampleSet(target)
	fmt.Printf("request covered %d records; subset granularity expanded the erasure to %d records "+
		"(%d synthetic samples unlearned in %v)\n",
		len(req.Samples), len(removed), rep.Unlearn.DataSize, rep.Total.WallTime.Round(1000000))

	// Audit: the erased records should no longer look like training
	// members, while the client's retained records should.
	clientData := sys.Clients.Shard(target)
	forgotten := clientData.Subset(sortedKeys(removed))
	retained := clientData.WithoutIndices(removed)
	attack, err := mia.TrainThreshold(sys.Model, retained, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIA member rate — erased records: %.1f%%, retained records: %.1f%%\n",
		100*attack.MemberRate(sys.Model, forgotten), 100*attack.MemberRate(sys.Model, retained))
	fmt.Printf("test accuracy after erasure: %.1f%%\n", 100*eval.Accuracy(sys.Model, test))

	// Persist the state and restore it into a fresh process image: the
	// forget ledger and synthetic data survive, so the restored system
	// refuses to double-erase and can still relearn.
	var state bytes.Buffer
	if err := sys.SaveState(&state); err != nil {
		log.Fatal(err)
	}
	restored, err := core.NewSystem(cfg, data.NewCohort(clients))
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.LoadState(&state); err != nil {
		log.Fatal(err)
	}
	if _, err := restored.Unlearn(req); err != nil {
		fmt.Printf("restored system remembers the erasure: %v\n", err)
	}
	if _, err := restored.Relearn(req); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relearned the records on the restored system; test accuracy %.1f%%\n",
		100*eval.Accuracy(restored.Model, test))
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Order does not matter for Subset; keep deterministic output anyway.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
