// Client-level unlearning: the "right to be forgotten" scenario behind
// the paper's Table 4. A device owner withdraws from the federation; the
// system erases their contribution using only the distilled synthetic
// data, compares against what full retraining would have produced, and —
// when the owner later revokes the request — relearns their contribution
// from the stored synthetic samples.
//
//	go run ./examples/clientunlearn
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"quickdrop/internal/baselines"
	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
)

func main() {
	const (
		nClients = 8
		departed = 3
	)
	spec := data.CIFARLike(8, 20)
	train, test := data.Generate(spec, 1)
	clients := data.PartitionDirichlet(train, nClients, 0.1, rand.New(rand.NewSource(2)))

	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 3, Classes: 10, Width: 8, Depth: 2}
	req := core.Request{Kind: core.ClientLevel, Client: departed}

	// QuickDrop pipeline.
	cfg := core.DefaultConfig(arch)
	cfg.Train.Rounds = 18
	sys, err := core.NewSystem(cfg, data.NewCohort(clients))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		log.Fatal(err)
	}
	f0, r0 := eval.SubsetSplit(sys.Model, clients[departed], test)
	fmt.Printf("before: accuracy on client %d's data %.1f%%, global test %.1f%%\n", departed, 100*f0, 100*r0)

	start := time.Now()
	if _, err := sys.Unlearn(req); err != nil {
		log.Fatal(err)
	}
	qdTime := time.Since(start)
	f1, r1 := eval.SubsetSplit(sys.Model, clients[departed], test)
	fmt.Printf("QuickDrop unlearned client %d in %s: their data %.1f%%, global test %.1f%%\n",
		departed, qdTime.Round(time.Millisecond), 100*f1, 100*r1)

	// The retraining oracle on the same federation, for reference.
	bCfg := baselines.DefaultConfig(arch)
	bCfg.Train.Rounds = 18
	bCfg.RetrainRounds = 18
	oracle, err := baselines.NewRetrainOr(bCfg, data.NewCohort(clients))
	if err != nil {
		log.Fatal(err)
	}
	if err := oracle.Prepare(); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := oracle.Unlearn(req); err != nil {
		log.Fatal(err)
	}
	orTime := time.Since(start)
	f2, r2 := eval.SubsetSplit(oracle.Model(), clients[departed], test)
	fmt.Printf("Retrain-Or took %s: their data %.1f%%, global test %.1f%% (QuickDrop speedup %.1fx)\n",
		orTime.Round(time.Millisecond), 100*f2, 100*r2, float64(orTime)/float64(qdTime))

	// The owner returns: relearn from the synthetic data.
	if _, err := sys.Relearn(req); err != nil {
		log.Fatal(err)
	}
	f3, r3 := eval.SubsetSplit(sys.Model, clients[departed], test)
	fmt.Printf("relearned client %d: their data %.1f%%, global test %.1f%%\n", departed, 100*f3, 100*r3)
}
