// Sequential unlearning requests — the streaming setting behind the
// paper's Figure 4 and §5 discussion. Regulators, users and operators
// keep filing requests over the system's lifetime; QuickDrop amortizes
// its one-time distillation cost over the stream, so each request costs
// milliseconds instead of a retraining run.
//
//	go run ./examples/sequential
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
)

func main() {
	spec := data.CIFARLike(8, 20)
	train, test := data.Generate(spec, 1)
	clients := data.PartitionDirichlet(train, 10, 0.1, rand.New(rand.NewSource(2)))

	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 3, Classes: 10, Width: 8, Depth: 2}
	cfg := core.DefaultConfig(arch)
	cfg.Train.Rounds = 18
	sys, err := core.NewSystem(cfg, data.NewCohort(clients))
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if _, err := sys.Train(); err != nil {
		log.Fatal(err)
	}
	trainTime := time.Since(start)
	fmt.Printf("one-time training + distillation: %s (distillation share %s)\n",
		trainTime.Round(time.Millisecond), sys.Matcher.DDTime.Round(time.Millisecond))

	// A mixed stream of requests, as they might arrive in production:
	// classes retracted by the operator and clients exercising their
	// right to be forgotten.
	stream := []core.Request{
		{Kind: core.ClassLevel, Class: 5},
		{Kind: core.ClientLevel, Client: 2},
		{Kind: core.ClassLevel, Class: 8},
		{Kind: core.ClassLevel, Class: 0},
		{Kind: core.ClientLevel, Client: 7},
	}
	var total time.Duration
	for i, req := range stream {
		rep, err := sys.Unlearn(req)
		if err != nil {
			log.Fatal(err)
		}
		total += rep.Total.WallTime
		acc := eval.Accuracy(sys.Model, remainingTest(test, sys))
		fmt.Printf("request %d (%v): served in %s, accuracy on remaining classes %.1f%%\n",
			i+1, req, rep.Total.WallTime.Round(time.Millisecond), 100*acc)
	}
	fmt.Printf("served %d requests in %s total — %.1fx the one-time training cost\n",
		len(stream), total.Round(time.Millisecond), float64(total)/float64(trainTime))
}

// remainingTest filters the test set down to classes not yet unlearned.
func remainingTest(test *data.Dataset, sys *core.System) *data.Dataset {
	out := test
	for _, c := range sys.RemovedClasses() {
		out = out.WithoutClass(c)
	}
	return out
}
