package data

import (
	"math"
	"math/rand"
	"testing"

	"quickdrop/internal/tensor"
)

func TestAddNoiseChangesValuesKeepsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Ones(4, 4, 1)
	y := AddNoise(0.5)(x, rng)
	if !y.SameShape(x) {
		t.Fatal("shape changed")
	}
	if y.Sub(x).Norm() == 0 {
		t.Fatal("noise had no effect")
	}
	// Original untouched.
	for _, v := range x.Data() {
		if v != 1 {
			t.Fatal("transform mutated input")
		}
	}
}

func TestHorizontalFlip(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2, 1)
	always := HorizontalFlip(1)
	y := always(x, rand.New(rand.NewSource(2)))
	if y.At(0, 0, 0) != 2 || y.At(0, 1, 0) != 1 || y.At(1, 0, 0) != 4 {
		t.Fatalf("flip = %v", y.Data())
	}
	// Double flip restores.
	z := always(y, rand.New(rand.NewSource(3)))
	for i := range x.Data() {
		if z.Data()[i] != x.Data()[i] {
			t.Fatal("double flip must restore")
		}
	}
	never := HorizontalFlip(0)
	w := never(x, rand.New(rand.NewSource(4)))
	for i := range x.Data() {
		if w.Data()[i] != x.Data()[i] {
			t.Fatal("p=0 must never flip")
		}
	}
}

func TestRandomShiftPreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(6, 6, 1)
	x.Set(1, 3, 3, 0) // single bright pixel in the centre
	y := RandomShift(1)(x, rng)
	if math.Abs(y.Sum()-1) > 1e-12 {
		t.Fatalf("centre pixel lost: sum %g", y.Sum())
	}
}

func TestCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Ones(2, 2, 1)
	y := Compose(AddNoise(0.1), AddNoise(0.1))(x, rng)
	if y.SameShape(x) == false || y.Sub(x).Norm() == 0 {
		t.Fatal("compose failed")
	}
}

func TestAugmented(t *testing.T) {
	ds := tinySet(t, 4)
	rng := rand.New(rand.NewSource(7))
	aug := Augmented(ds, AddNoise(0.1), 2, rng)
	if aug.Len() != 3*ds.Len() {
		t.Fatalf("augmented len %d, want %d", aug.Len(), 3*ds.Len())
	}
	// Labels preserved in order groups of 3.
	for i := 0; i < ds.Len(); i++ {
		for c := 0; c < 3; c++ {
			if aug.Y[i*3+c] != ds.Y[i] {
				t.Fatal("label mismatch after augmentation")
			}
		}
	}
}

func TestAugmentedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Augmented(tinySet(t, 2), AddNoise(0.1), -1, rand.New(rand.NewSource(8)))
}

func TestPartitionByShardsSkewAndConservation(t *testing.T) {
	spec := MNISTLike(8, 30)
	ds, _ := Generate(spec, 9)
	rng := rand.New(rand.NewSource(10))
	parts := PartitionByShards(ds, 10, 2, rng)
	total := 0
	for _, p := range parts {
		total += p.Len()
		// With 2 shards each, clients should see few classes.
		classes := 0
		for _, n := range p.ClassCounts() {
			if n > 0 {
				classes++
			}
		}
		if classes > 4 {
			t.Fatalf("shard client sees %d classes — not pathological", classes)
		}
	}
	if total != ds.Len() {
		t.Fatalf("conservation violated: %d vs %d", total, ds.Len())
	}
	// Shard partitioning must be more skewed than IID.
	iid := PartitionIID(ds, 10, rand.New(rand.NewSource(11)))
	if HeterogeneityStat(parts) <= HeterogeneityStat(iid) {
		t.Fatal("shards must be more heterogeneous than IID")
	}
}

func TestPartitionByShardsValidation(t *testing.T) {
	ds := tinySet(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionByShards(ds, 10, 5, rand.New(rand.NewSource(12)))
}

func TestWithoutIndices(t *testing.T) {
	ds := tinySet(t, 5)
	out := ds.WithoutIndices(map[int]bool{1: true, 3: true})
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.X[0] != ds.X[0] || out.X[1] != ds.X[2] || out.X[2] != ds.X[4] {
		t.Fatal("wrong samples excluded")
	}
	if ds.WithoutIndices(nil) != ds {
		t.Fatal("empty exclusion must return the receiver")
	}
}
