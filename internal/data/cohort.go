package data

// Cohort adapts an eagerly materialized []*Dataset to the client-registry
// shape consumed by internal/fl (NumClients / ShardLen / Shard). It is a
// zero-cost view: Shard returns the identical *Dataset pointers the slice
// holds, so code migrated from slices to a Cohort sees the same objects,
// the same lengths, and therefore the same numerics bit for bit.
type Cohort struct {
	parts []*Dataset
}

// NewCohort wraps parts without copying. Nil entries and empty datasets
// stay in place; they report ShardLen 0 and are skipped by eligibility
// scans exactly as the slice-based code skipped them.
func NewCohort(parts []*Dataset) *Cohort {
	return &Cohort{parts: parts}
}

// NumClients returns the cohort size, counting nil/empty shards.
func (c *Cohort) NumClients() int {
	if c == nil {
		return 0
	}
	return len(c.parts)
}

// ShardLen returns the sample count of one client's shard without
// materializing anything; 0 for nil shards and out-of-range IDs.
func (c *Cohort) ShardLen(id int) int {
	if c == nil || id < 0 || id >= len(c.parts) || c.parts[id] == nil {
		return 0
	}
	return c.parts[id].Len()
}

// Shard returns the client's dataset — the same pointer the wrapped
// slice holds, not a copy. Nil for out-of-range IDs.
func (c *Cohort) Shard(id int) *Dataset {
	if c == nil || id < 0 || id >= len(c.parts) {
		return nil
	}
	return c.parts[id]
}

// Parts exposes the wrapped slice (shared, not copied) for call sites
// that still need eager access — evaluation pooling, heterogeneity
// statistics — and accept O(clients) cost by construction.
func (c *Cohort) Parts() []*Dataset {
	if c == nil {
		return nil
	}
	return c.parts
}
