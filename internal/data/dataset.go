// Package data provides the image-classification datasets and federated
// partitioning used by the QuickDrop reproduction.
//
// The paper evaluates on MNIST, CIFAR-10 and SVHN. This module is offline
// and dependency-free, so those are substituted by procedurally generated
// datasets with the same structural properties: fixed class count,
// per-class visual structure learnable by a small ConvNet, controllable
// difficulty, and volumes ordered like the originals (see DESIGN.md).
package data

import (
	"fmt"
	"math/rand"

	"quickdrop/internal/tensor"
)

// Dataset is a labelled set of images. Samples are stored individually so
// subsets can share storage with their parent.
type Dataset struct {
	H, W, C int // sample shape
	Classes int
	X       []*tensor.Tensor // each [H, W, C]
	Y       []int
}

// NewDataset returns an empty dataset with the given sample geometry.
func NewDataset(h, w, c, classes int) *Dataset {
	return &Dataset{H: h, W: w, C: c, Classes: classes}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds a sample. The tensor is stored by reference.
func (d *Dataset) Append(x *tensor.Tensor, y int) {
	if x.Dims() != 3 || x.Dim(0) != d.H || x.Dim(1) != d.W || x.Dim(2) != d.C {
		panic(fmt.Sprintf("data: sample shape %s does not match dataset %dx%dx%d", x.ShapeString(), d.H, d.W, d.C))
	}
	if y < 0 || y >= d.Classes {
		panic(fmt.Sprintf("data: label %d out of range [0,%d)", y, d.Classes))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Subset returns a dataset view containing the given sample indices.
// Sample tensors are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := NewDataset(d.H, d.W, d.C, d.Classes)
	for _, i := range idx {
		s.X = append(s.X, d.X[i])
		s.Y = append(s.Y, d.Y[i])
	}
	return s
}

// ByClass returns sample indices grouped by label.
func (d *Dataset) ByClass() map[int][]int {
	m := make(map[int][]int)
	for i, y := range d.Y {
		m[y] = append(m[y], i)
	}
	return m
}

// ClassCounts returns the number of samples per class, indexed by label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// OfClass returns the subset with label y.
func (d *Dataset) OfClass(y int) *Dataset { return d.Subset(d.ByClass()[y]) }

// WithoutClass returns the subset excluding label y.
func (d *Dataset) WithoutClass(y int) *Dataset {
	var idx []int
	for i, label := range d.Y {
		if label != y {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}

// WithoutIndices returns the subset excluding the given sample indices.
func (d *Dataset) WithoutIndices(exclude map[int]bool) *Dataset {
	if len(exclude) == 0 {
		return d
	}
	var idx []int
	for i := range d.X {
		if !exclude[i] {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}

// Merge concatenates datasets with identical geometry into a new dataset.
func Merge(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("data: Merge of nothing")
	}
	out := NewDataset(parts[0].H, parts[0].W, parts[0].C, parts[0].Classes)
	for _, p := range parts {
		if p.H != out.H || p.W != out.W || p.C != out.C || p.Classes != out.Classes {
			panic("data: Merge geometry mismatch")
		}
		out.X = append(out.X, p.X...)
		out.Y = append(out.Y, p.Y...)
	}
	return out
}

// Batch assembles the samples at idx into an input tensor [B, H, W, C] and
// a label slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	if len(idx) == 0 {
		panic("data: empty batch")
	}
	x := tensor.New(len(idx), d.H, d.W, d.C)
	labels := make([]int, len(idx))
	per := d.H * d.W * d.C
	for bi, i := range idx {
		copy(x.Data()[bi*per:(bi+1)*per], d.X[i].Data())
		labels[bi] = d.Y[i]
	}
	return x, labels
}

// All returns the whole dataset as one batch.
func (d *Dataset) All() (*tensor.Tensor, []int) {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return d.Batch(idx)
}

// SampleBatch draws a uniform random batch of up to n samples without
// replacement. If the dataset holds fewer than n samples the whole dataset
// is returned (shuffled).
func (d *Dataset) SampleBatch(rng *rand.Rand, n int) (*tensor.Tensor, []int) {
	if d.Len() == 0 {
		panic("data: SampleBatch on empty dataset")
	}
	idx := rng.Perm(d.Len())
	if n < len(idx) {
		idx = idx[:n]
	}
	return d.Batch(idx)
}

// Shuffled returns a copy of the dataset with sample order permuted.
func (d *Dataset) Shuffled(rng *rand.Rand) *Dataset {
	return d.Subset(rng.Perm(d.Len()))
}

// Clone deep-copies the dataset including sample storage.
func (d *Dataset) Clone() *Dataset {
	c := NewDataset(d.H, d.W, d.C, d.Classes)
	for i, x := range d.X {
		c.X = append(c.X, x.Clone())
		c.Y = append(c.Y, d.Y[i])
	}
	return c
}
