package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quickdrop/internal/tensor"
)

func tinySet(t *testing.T, n int) *Dataset {
	t.Helper()
	ds := NewDataset(2, 2, 1, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		ds.Append(tensor.Randn(rng, 1, 2, 2, 1), i%3)
	}
	return ds
}

func TestAppendValidates(t *testing.T) {
	ds := NewDataset(2, 2, 1, 3)
	t.Run("shape", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		ds.Append(tensor.New(3, 3, 1), 0)
	})
	t.Run("label", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		ds.Append(tensor.New(2, 2, 1), 3)
	})
}

func TestSubsetSharesStorage(t *testing.T) {
	ds := tinySet(t, 6)
	s := ds.Subset([]int{0, 2})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.X[0] != ds.X[0] || s.X[1] != ds.X[2] {
		t.Fatal("Subset must share sample tensors")
	}
}

func TestByClassAndCounts(t *testing.T) {
	ds := tinySet(t, 7) // labels 0,1,2,0,1,2,0
	by := ds.ByClass()
	if len(by[0]) != 3 || len(by[1]) != 2 || len(by[2]) != 2 {
		t.Fatalf("ByClass = %v", by)
	}
	counts := ds.ClassCounts()
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("ClassCounts = %v", counts)
	}
}

func TestOfClassWithoutClassComplement(t *testing.T) {
	ds := tinySet(t, 9)
	of := ds.OfClass(1)
	without := ds.WithoutClass(1)
	if of.Len()+without.Len() != ds.Len() {
		t.Fatal("OfClass + WithoutClass must cover the dataset")
	}
	for _, y := range of.Y {
		if y != 1 {
			t.Fatal("OfClass leaked other labels")
		}
	}
	for _, y := range without.Y {
		if y == 1 {
			t.Fatal("WithoutClass kept the class")
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := tinySet(t, 3), tinySet(t, 4)
	m := Merge(a, b)
	if m.Len() != 7 {
		t.Fatalf("merged len = %d", m.Len())
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	a := NewDataset(2, 2, 1, 3)
	b := NewDataset(4, 4, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Merge(a, b)
}

func TestBatchLayout(t *testing.T) {
	ds := NewDataset(1, 2, 1, 2)
	ds.Append(tensor.FromSlice([]float64{1, 2}, 1, 2, 1), 0)
	ds.Append(tensor.FromSlice([]float64{3, 4}, 1, 2, 1), 1)
	x, y := ds.Batch([]int{1, 0})
	if x.Dim(0) != 2 || x.At(0, 0, 0, 0) != 3 || x.At(1, 0, 1, 0) != 2 {
		t.Fatalf("batch = %v", x.Data())
	}
	if y[0] != 1 || y[1] != 0 {
		t.Fatalf("labels = %v", y)
	}
}

func TestSampleBatchBounds(t *testing.T) {
	ds := tinySet(t, 5)
	rng := rand.New(rand.NewSource(2))
	x, y := ds.SampleBatch(rng, 3)
	if x.Dim(0) != 3 || len(y) != 3 {
		t.Fatal("batch size wrong")
	}
	x, y = ds.SampleBatch(rng, 99)
	if x.Dim(0) != 5 || len(y) != 5 {
		t.Fatal("oversized request must clamp to dataset size")
	}
}

func TestCloneIsDeep(t *testing.T) {
	ds := tinySet(t, 2)
	c := ds.Clone()
	c.X[0].Data()[0] = 999
	if ds.X[0].Data()[0] == 999 {
		t.Fatal("Clone must copy sample storage")
	}
}

func TestGenerateDeterministicAndShaped(t *testing.T) {
	spec := MNISTLike(8, 6)
	tr1, te1 := Generate(spec, 42)
	tr2, _ := Generate(spec, 42)
	if tr1.Len() != 60 || te1.Len() != 30 {
		t.Fatalf("sizes %d/%d", tr1.Len(), te1.Len())
	}
	for i := range tr1.X {
		if tr1.Y[i] != tr2.Y[i] {
			t.Fatal("generation must be deterministic per seed")
		}
		for j := range tr1.X[i].Data() {
			if tr1.X[i].Data()[j] != tr2.X[i].Data()[j] {
				t.Fatal("pixel mismatch across same-seed generations")
			}
		}
	}
	counts := tr1.ClassCounts()
	for c, n := range counts {
		if n != 6 {
			t.Fatalf("class %d has %d samples, want 6", c, n)
		}
	}
}

func TestGenerateClassesAreSeparable(t *testing.T) {
	// Nearest-class-prototype classification on clean means should beat
	// chance by a wide margin — the datasets must carry class signal.
	spec := MNISTLike(8, 20)
	train, test := Generate(spec, 7)
	protos := make([]*tensor.Tensor, spec.Classes)
	for c := 0; c < spec.Classes; c++ {
		sub := train.OfClass(c)
		mean := tensor.New(spec.H, spec.W, spec.C)
		for _, x := range sub.X {
			mean.AddInPlace(x)
		}
		protos[c] = mean.Scale(1 / float64(sub.Len()))
	}
	correct := 0
	for i, x := range test.X {
		best, bestD := -1, math.Inf(1)
		for c, p := range protos {
			d := x.Sub(p).Norm()
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == test.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.8 {
		t.Fatalf("prototype accuracy %.2f too low — datasets carry no class signal", acc)
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"mnistlike", "cifarlike", "svhnlike"} {
		spec, err := SpecByName(name, 8, 10)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Fatalf("got %q", spec.Name)
		}
	}
	if _, err := SpecByName("imagenet", 8, 10); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestPartitionIIDConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := MNISTLike(8, 4)
		ds, _ := Generate(spec, seed)
		n := 2 + r.Intn(5)
		parts := PartitionIID(ds, n, r)
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		return total == ds.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDirichletConservationAndNonEmpty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := MNISTLike(8, 6)
		ds, _ := Generate(spec, seed)
		n := 2 + r.Intn(8)
		parts := PartitionDirichlet(ds, n, 0.1, r)
		total := 0
		seen := make(map[*tensor.Tensor]int)
		for _, p := range parts {
			if p.Len() == 0 {
				return false
			}
			total += p.Len()
			for _, x := range p.X {
				seen[x]++
			}
		}
		if total != ds.Len() {
			return false
		}
		// Every sample assigned exactly once.
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletSkewOrdering(t *testing.T) {
	// Lower alpha ⇒ more heterogeneity, averaged over several seeds.
	spec := MNISTLike(8, 30)
	var hLow, hHigh float64
	const trials = 5
	for s := int64(0); s < trials; s++ {
		ds, _ := Generate(spec, s)
		low := PartitionDirichlet(ds, 10, 0.1, rand.New(rand.NewSource(100+s)))
		high := PartitionDirichlet(ds, 10, 100, rand.New(rand.NewSource(200+s)))
		hLow += HeterogeneityStat(low)
		hHigh += HeterogeneityStat(high)
	}
	if hLow <= hHigh {
		t.Fatalf("alpha=0.1 heterogeneity %.3f should exceed alpha=100 %.3f", hLow/trials, hHigh/trials)
	}
}

func TestHeterogeneityStatIIDNearZero(t *testing.T) {
	spec := MNISTLike(8, 40)
	ds, _ := Generate(spec, 3)
	parts := PartitionIID(ds, 4, rand.New(rand.NewSource(4)))
	if h := HeterogeneityStat(parts); h > 0.2 {
		t.Fatalf("IID heterogeneity %.3f too high", h)
	}
}

func TestPartitionValidation(t *testing.T) {
	ds := tinySet(t, 3)
	rng := rand.New(rand.NewSource(5))
	for _, f := range []func(){
		func() { PartitionIID(ds, 0, rng) },
		func() { PartitionIID(ds, 10, rng) },
		func() { PartitionDirichlet(ds, 0, 0.1, rng) },
		func() { PartitionDirichlet(ds, 2, -1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGammaSampleMoments(t *testing.T) {
	// Gamma(k,1) has mean k; sanity check the sampler for k<1 and k>1.
	rng := rand.New(rand.NewSource(6))
	for _, k := range []float64{0.1, 0.5, 2, 5} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, k)
		}
		mean := sum / n
		if math.Abs(mean-k) > 0.1*k+0.05 {
			t.Fatalf("Gamma(%g) sample mean %.3f", k, mean)
		}
	}
}
