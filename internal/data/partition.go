package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PartitionIID splits ds uniformly at random into n client datasets of
// (nearly) equal size.
func PartitionIID(ds *Dataset, n int, rng *rand.Rand) []*Dataset {
	if n <= 0 {
		panic("data: PartitionIID needs n > 0")
	}
	if ds.Len() < n {
		panic(fmt.Sprintf("data: cannot split %d samples across %d clients", ds.Len(), n))
	}
	perm := rng.Perm(ds.Len())
	out := make([]*Dataset, n)
	for i := 0; i < n; i++ {
		lo := i * ds.Len() / n
		hi := (i + 1) * ds.Len() / n
		out[i] = ds.Subset(perm[lo:hi])
	}
	return out
}

// PartitionDirichlet splits ds across n clients with label-distribution
// skew controlled by the Dirichlet concentration alpha, following Hsu et
// al. (2019) as used in the paper (α = 0.1 for highly non-IID). For every
// class, per-client proportions are drawn from Dir(alpha); lower alpha
// concentrates a class on fewer clients. Each client is guaranteed at
// least one sample overall (empty clients cannot participate in FedAvg's
// weighted aggregation).
func PartitionDirichlet(ds *Dataset, n int, alpha float64, rng *rand.Rand) []*Dataset {
	if n <= 0 {
		panic("data: PartitionDirichlet needs n > 0")
	}
	if alpha <= 0 {
		panic("data: PartitionDirichlet needs alpha > 0")
	}
	if ds.Len() < n {
		panic(fmt.Sprintf("data: cannot split %d samples across %d clients", ds.Len(), n))
	}
	assign := make([][]int, n)
	// Walk classes in sorted order: ranging over the ByClass map would
	// consume rng draws in a run-dependent order and change the split
	// under an identical seed.
	byClass := ds.ByClass()
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		shuffled := append([]int(nil), idx...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		props := dirichlet(rng, alpha, n)
		// Convert proportions to cumulative sample boundaries.
		cum := 0.0
		lo := 0
		for i := 0; i < n; i++ {
			cum += props[i]
			hi := int(math.Round(cum * float64(len(shuffled))))
			if i == n-1 {
				hi = len(shuffled)
			}
			if hi > lo {
				assign[i] = append(assign[i], shuffled[lo:hi]...)
			}
			lo = hi
		}
	}
	rebalanceEmpty(assign, rng)
	out := make([]*Dataset, n)
	for i := range assign {
		out[i] = ds.Subset(assign[i])
	}
	return out
}

// rebalanceEmpty moves single samples from the largest shards into empty
// ones so every client has data.
func rebalanceEmpty(assign [][]int, rng *rand.Rand) {
	for i := range assign {
		if len(assign[i]) > 0 {
			continue
		}
		// Find the largest shard with at least 2 samples.
		big := -1
		for j := range assign {
			if len(assign[j]) >= 2 && (big == -1 || len(assign[j]) > len(assign[big])) {
				big = j
			}
		}
		if big == -1 {
			panic("data: not enough samples to give every client one")
		}
		k := rng.Intn(len(assign[big]))
		assign[i] = append(assign[i], assign[big][k])
		assign[big] = append(assign[big][:k], assign[big][k+1:]...)
	}
}

// dirichlet samples a point from Dir(alpha, …, alpha) of dimension n.
func dirichlet(rng *rand.Rand, alpha float64, n int) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Numerically possible for tiny alpha: fall back to a random corner.
		out[rng.Intn(n)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia–Tsang, with the
// standard boosting trick for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// PartitionByShards implements the pathological non-IID split of McMahan
// et al. (2017): the dataset is sorted by label, cut into
// n×shardsPerClient contiguous shards, and each client receives
// shardsPerClient random shards — so most clients see only a couple of
// classes. It complements the Dirichlet partitioner with a harsher skew.
func PartitionByShards(ds *Dataset, n, shardsPerClient int, rng *rand.Rand) []*Dataset {
	if n <= 0 || shardsPerClient <= 0 {
		panic("data: PartitionByShards needs positive n and shardsPerClient")
	}
	totalShards := n * shardsPerClient
	if ds.Len() < totalShards {
		panic(fmt.Sprintf("data: cannot cut %d samples into %d shards", ds.Len(), totalShards))
	}
	// Sort indices by label (stable within a label by original order).
	byClass := ds.ByClass()
	var sorted []int
	for c := 0; c < ds.Classes; c++ {
		sorted = append(sorted, byClass[c]...)
	}
	perm := rng.Perm(totalShards)
	out := make([]*Dataset, n)
	for i := 0; i < n; i++ {
		var idx []int
		for s := 0; s < shardsPerClient; s++ {
			shard := perm[i*shardsPerClient+s]
			lo := shard * len(sorted) / totalShards
			hi := (shard + 1) * len(sorted) / totalShards
			idx = append(idx, sorted[lo:hi]...)
		}
		out[i] = ds.Subset(idx)
	}
	return out
}

// HeterogeneityStat summarizes how non-IID a partition is: the mean over
// clients of the total-variation distance between the client's label
// distribution and the global one. 0 means perfectly IID.
func HeterogeneityStat(parts []*Dataset) float64 {
	if len(parts) == 0 {
		return 0
	}
	classes := parts[0].Classes
	global := make([]float64, classes)
	total := 0
	for _, p := range parts {
		for _, y := range p.Y {
			global[y]++
			total++
		}
	}
	for i := range global {
		global[i] /= float64(total)
	}
	sum := 0.0
	for _, p := range parts {
		local := make([]float64, classes)
		for _, y := range p.Y {
			local[y]++
		}
		tv := 0.0
		for i := range local {
			tv += math.Abs(local[i]/float64(p.Len()) - global[i])
		}
		sum += tv / 2
	}
	return sum / float64(len(parts))
}
