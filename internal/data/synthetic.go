package data

import (
	"fmt"
	"math"
	"math/rand"

	"quickdrop/internal/tensor"
)

// Spec describes a procedurally generated dataset. The three presets below
// stand in for the paper's MNIST, CIFAR-10 and SVHN (see DESIGN.md,
// substitutions table).
type Spec struct {
	Name          string
	H, W, C       int
	Classes       int
	TrainPerClass int
	TestPerClass  int
	Noise         float64 // additive Gaussian noise stddev
	Jitter        int     // max translation in pixels
	Clutter       bool    // add distractor blobs (SVHN-like scenes)
}

// MNISTLike is the easy single-channel preset.
func MNISTLike(size, perClass int) Spec {
	return Spec{Name: "mnistlike", H: size, W: size, C: 1, Classes: 10,
		TrainPerClass: perClass, TestPerClass: perClass / 2, Noise: 0.15, Jitter: 1}
}

// CIFARLike is the harder three-channel preset. Jitter scales with image
// size so small substrate images are not dominated by translation.
func CIFARLike(size, perClass int) Spec {
	return Spec{Name: "cifarlike", H: size, W: size, C: 3, Classes: 10,
		TrainPerClass: perClass, TestPerClass: perClass / 2, Noise: 0.3, Jitter: max(1, size/12)}
}

// SVHNLike is the three-channel preset with clutter and larger volume,
// standing in for SVHN's 600k digit crops.
func SVHNLike(size, perClass int) Spec {
	return Spec{Name: "svhnlike", H: size, W: size, C: 3, Classes: 10,
		TrainPerClass: perClass, TestPerClass: perClass / 2, Noise: 0.2, Jitter: max(1, size/12), Clutter: true}
}

// SpecByName resolves a preset by dataset name.
func SpecByName(name string, size, perClass int) (Spec, error) {
	switch name {
	case "mnistlike":
		return MNISTLike(size, perClass), nil
	case "cifarlike":
		return CIFARLike(size, perClass), nil
	case "svhnlike":
		return SVHNLike(size, perClass), nil
	default:
		return Spec{}, fmt.Errorf("data: unknown dataset %q", name)
	}
}

// Generate produces deterministic train and test datasets for the spec.
// Each class has a fixed visual identity — an oriented sinusoidal grating
// plus a class-positioned blob, with class-specific channel mixing — and
// each sample perturbs it with translation jitter and Gaussian noise.
func Generate(spec Spec, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	train = NewDataset(spec.H, spec.W, spec.C, spec.Classes)
	test = NewDataset(spec.H, spec.W, spec.C, spec.Classes)
	for c := 0; c < spec.Classes; c++ {
		for i := 0; i < spec.TrainPerClass; i++ {
			train.Append(renderSample(spec, c, rng), c)
		}
		for i := 0; i < spec.TestPerClass; i++ {
			test.Append(renderSample(spec, c, rng), c)
		}
	}
	// Interleave classes so index order carries no label signal.
	train = train.Shuffled(rng)
	test = test.Shuffled(rng)
	return train, test
}

// classIdentity returns the deterministic visual parameters of a class.
func classIdentity(spec Spec, class int) (freqX, freqY, phase, blobY, blobX float64, mix []float64) {
	// Orientation spreads classes over the half-circle; frequency alternates.
	angle := math.Pi * float64(class) / float64(spec.Classes)
	freq := 1.5 + 0.5*float64(class%3)
	freqX = freq * math.Cos(angle)
	freqY = freq * math.Sin(angle)
	phase = 2 * math.Pi * float64(class*7%spec.Classes) / float64(spec.Classes)
	// Blob position walks a ring around the image centre.
	blobY = 0.5 + 0.3*math.Sin(2*math.Pi*float64(class)/float64(spec.Classes))
	blobX = 0.5 + 0.3*math.Cos(2*math.Pi*float64(class)/float64(spec.Classes))
	mix = make([]float64, spec.C)
	for ch := 0; ch < spec.C; ch++ {
		mix[ch] = 0.6 + 0.4*math.Sin(2*math.Pi*float64(class+ch*3)/float64(spec.Classes))
	}
	return freqX, freqY, phase, blobY, blobX, mix
}

func renderSample(spec Spec, class int, rng *rand.Rand) *tensor.Tensor {
	fX, fY, phase, blobY, blobX, mix := classIdentity(spec, class)
	dy := 0.0
	dx := 0.0
	if spec.Jitter > 0 {
		dy = float64(rng.Intn(2*spec.Jitter+1) - spec.Jitter)
		dx = float64(rng.Intn(2*spec.Jitter+1) - spec.Jitter)
	}
	// Distractor blob for cluttered scenes.
	cy, cx, cAmp := 0.0, 0.0, 0.0
	if spec.Clutter {
		cy, cx = rng.Float64(), rng.Float64()
		cAmp = 0.4 + 0.3*rng.Float64()
	}

	t := tensor.New(spec.H, spec.W, spec.C)
	d := t.Data()
	sigma := float64(spec.H) / 5
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			yy := float64(y) + dy
			xx := float64(x) + dx
			grating := math.Sin(2*math.Pi*(fX*xx/float64(spec.W)+fY*yy/float64(spec.H)) + phase)
			by := yy - blobY*float64(spec.H)
			bx := xx - blobX*float64(spec.W)
			blob := math.Exp(-(by*by + bx*bx) / (2 * sigma * sigma))
			signal := 0.6*grating + 1.2*blob
			if spec.Clutter {
				ky := float64(y) - cy*float64(spec.H)
				kx := float64(x) - cx*float64(spec.W)
				signal += cAmp * math.Exp(-(ky*ky+kx*kx)/(2*sigma*sigma))
			}
			for ch := 0; ch < spec.C; ch++ {
				d[(y*spec.W+x)*spec.C+ch] = mix[ch]*signal + spec.Noise*rng.NormFloat64()
			}
		}
	}
	return t
}
