package data

import (
	"bytes"
	"testing"
)

func testPartitionSpec(clients int) PartitionSpec {
	return PartitionSpec{
		Data:             MNISTLike(8, 4),
		Clients:          clients,
		SamplesPerClient: 12,
		Seed:             7,
		Scheme:           SchemeIID,
	}
}

func shardBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLazyCohortShardDeterministic(t *testing.T) {
	a, err := NewLazyCohort(testPartitionSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLazyCohort(testPartitionSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	// Materialize other shards first on one cohort: call order must not
	// influence any shard's content (no shared RNG state).
	b.Shard(999)
	b.Shard(0)
	for _, id := range []int{0, 5, 421, 999} {
		if !bytes.Equal(shardBytes(t, a.Shard(id)), shardBytes(t, b.Shard(id))) {
			t.Fatalf("shard %d differs between identically specified cohorts", id)
		}
		// Repeated materialization of the same shard is also identical.
		if !bytes.Equal(shardBytes(t, a.Shard(id)), shardBytes(t, a.Shard(id))) {
			t.Fatalf("shard %d differs between repeated calls", id)
		}
	}
}

func TestLazyCohortShardLenContract(t *testing.T) {
	c, err := NewLazyCohort(testPartitionSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClients() != 10 {
		t.Fatalf("NumClients = %d, want 10", c.NumClients())
	}
	for id := 0; id < c.NumClients(); id++ {
		if got, want := c.ShardLen(id), c.Shard(id).Len(); got != want {
			t.Fatalf("ShardLen(%d) = %d but Shard(%d).Len() = %d", id, got, id, want)
		}
	}
	for _, id := range []int{-1, 10, 1 << 20} {
		if c.ShardLen(id) != 0 {
			t.Fatalf("ShardLen(%d) = %d, want 0", id, c.ShardLen(id))
		}
		if c.Shard(id) != nil {
			t.Fatalf("Shard(%d) should be nil out of range", id)
		}
	}
}

func TestLazyCohortDirichletIsSkewed(t *testing.T) {
	iidSpec := testPartitionSpec(40)
	dirSpec := testPartitionSpec(40)
	dirSpec.Scheme, dirSpec.Alpha = SchemeDirichlet, 0.1
	iid, _ := NewLazyCohort(iidSpec)
	dir, _ := NewLazyCohort(dirSpec)

	// Mean per-client heterogeneity: average L1 distance between a
	// client's class distribution and uniform. Dirichlet(0.1) must be
	// decisively more skewed than IID.
	skew := func(c *LazyCohort) float64 {
		total := 0.0
		for id := 0; id < c.NumClients(); id++ {
			counts := c.Shard(id).ClassCounts()
			n := c.ShardLen(id)
			for _, cnt := range counts {
				d := float64(cnt)/float64(n) - 1.0/float64(len(counts))
				if d < 0 {
					d = -d
				}
				total += d
			}
		}
		return total / float64(c.NumClients())
	}
	if si, sd := skew(iid), skew(dir); sd < 2*si {
		t.Fatalf("dirichlet skew %.3f not clearly above iid skew %.3f", sd, si)
	}
}

func TestLazyCohortShardsSchemeBoundsSupport(t *testing.T) {
	spec := testPartitionSpec(20)
	spec.Scheme, spec.ClassesPerClient = SchemeShards, 2
	c, err := NewLazyCohort(spec)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.NumClients(); id++ {
		distinct := 0
		for _, cnt := range c.Shard(id).ClassCounts() {
			if cnt > 0 {
				distinct++
			}
		}
		if distinct > 2 {
			t.Fatalf("client %d holds %d classes, want ≤ 2", id, distinct)
		}
	}
}

func TestPartitionSpecValidate(t *testing.T) {
	bad := []func(*PartitionSpec){
		func(s *PartitionSpec) { s.Clients = 0 },
		func(s *PartitionSpec) { s.SamplesPerClient = 0 },
		func(s *PartitionSpec) { s.Data.Classes = 0 },
		func(s *PartitionSpec) { s.Scheme, s.Alpha = SchemeDirichlet, 0 },
		func(s *PartitionSpec) { s.Scheme, s.ClassesPerClient = SchemeShards, 0 },
		func(s *PartitionSpec) { s.Scheme = PartitionScheme(42) },
	}
	for i, mutate := range bad {
		s := testPartitionSpec(4)
		mutate(&s)
		if _, err := NewLazyCohort(s); err == nil {
			t.Fatalf("spec mutation %d should be invalid", i)
		}
	}
}

func TestSchemeByNameRoundTrip(t *testing.T) {
	for _, sc := range []PartitionScheme{SchemeIID, SchemeDirichlet, SchemeShards} {
		got, err := SchemeByName(sc.String())
		if err != nil || got != sc {
			t.Fatalf("SchemeByName(%q) = %v, %v", sc.String(), got, err)
		}
	}
	if _, err := SchemeByName("pathological"); err == nil {
		t.Fatal("unknown scheme name should error")
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed not stable")
	}
	seen := make(map[int64]bool)
	for base := int64(0); base < 10; base++ {
		for id := int64(0); id < 100; id++ {
			s := DeriveSeed(base, id)
			if s < 0 {
				t.Fatalf("DeriveSeed(%d, %d) = %d is negative", base, id, s)
			}
			if seen[s] {
				t.Fatalf("DeriveSeed collision at (%d, %d)", base, id)
			}
			seen[s] = true
		}
	}
	// Path sensitivity: order and arity matter.
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatal("DeriveSeed ignores path order")
	}
	if DeriveSeed(1, 2) == DeriveSeed(1, 2, 0) {
		t.Fatal("DeriveSeed ignores path length")
	}
}

func TestCohortAdapterSharesShards(t *testing.T) {
	spec := MNISTLike(8, 4)
	train, _ := Generate(spec, 3)
	parts := []*Dataset{train, nil}
	c := NewCohort(parts)
	if c.NumClients() != 2 {
		t.Fatalf("NumClients = %d", c.NumClients())
	}
	if c.Shard(0) != train {
		t.Fatal("Cohort.Shard must return the identical dataset pointer")
	}
	if c.ShardLen(1) != 0 || c.Shard(1) != nil {
		t.Fatal("nil shard must report empty")
	}
	if c.ShardLen(-1) != 0 || c.Shard(5) != nil {
		t.Fatal("out-of-range must report empty")
	}
}
