package data

import (
	"fmt"
	"math/rand"

	"quickdrop/internal/tensor"
)

// Transform maps one sample tensor to a new one (same shape).
type Transform func(x *tensor.Tensor, rng *rand.Rand) *tensor.Tensor

// AddNoise returns a transform adding N(0, stddev²) noise per pixel.
func AddNoise(stddev float64) Transform {
	return func(x *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
		out := x.Clone()
		d := out.Data()
		for i := range d {
			d[i] += rng.NormFloat64() * stddev
		}
		return out
	}
}

// HorizontalFlip returns a transform mirroring H×W×C samples left-right
// with probability p.
func HorizontalFlip(p float64) Transform {
	return func(x *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
		if rng.Float64() >= p {
			return x.Clone()
		}
		if x.Dims() != 3 {
			panic(fmt.Sprintf("data: HorizontalFlip expects [H,W,C], got %s", x.ShapeString()))
		}
		h, w, c := x.Dim(0), x.Dim(1), x.Dim(2)
		out := tensor.New(h, w, c)
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				for ch := 0; ch < c; ch++ {
					out.Set(x.At(y, w-1-xx, ch), y, xx, ch)
				}
			}
		}
		return out
	}
}

// RandomShift returns a transform translating samples by up to maxShift
// pixels in each direction, zero-padding the exposed border.
func RandomShift(maxShift int) Transform {
	return func(x *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
		if x.Dims() != 3 {
			panic(fmt.Sprintf("data: RandomShift expects [H,W,C], got %s", x.ShapeString()))
		}
		dy := rng.Intn(2*maxShift+1) - maxShift
		dx := rng.Intn(2*maxShift+1) - maxShift
		h, w, c := x.Dim(0), x.Dim(1), x.Dim(2)
		out := tensor.New(h, w, c)
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for xx := 0; xx < w; xx++ {
				sx := xx - dx
				if sx < 0 || sx >= w {
					continue
				}
				for ch := 0; ch < c; ch++ {
					out.Set(x.At(sy, sx, ch), y, xx, ch)
				}
			}
		}
		return out
	}
}

// Compose chains transforms left to right.
func Compose(ts ...Transform) Transform {
	return func(x *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
		out := x
		for _, t := range ts {
			out = t(out, rng)
		}
		return out
	}
}

// Augmented returns a new dataset containing, for every original sample,
// `copies` transformed variants (plus the original).
func Augmented(ds *Dataset, t Transform, copies int, rng *rand.Rand) *Dataset {
	if copies < 0 {
		panic("data: negative augmentation copies")
	}
	out := NewDataset(ds.H, ds.W, ds.C, ds.Classes)
	for i, x := range ds.X {
		out.Append(x, ds.Y[i])
		for c := 0; c < copies; c++ {
			out.Append(t(x, rng), ds.Y[i])
		}
	}
	return out
}
