package data

import (
	"fmt"
	"math/rand"
)

// PartitionScheme selects how a lazy cohort assigns labels to clients.
type PartitionScheme int

const (
	// SchemeIID gives every client the global label distribution.
	SchemeIID PartitionScheme = iota
	// SchemeDirichlet draws each client's label distribution from
	// Dir(alpha, …, alpha), the Hsu et al. (2019) skew the paper uses.
	SchemeDirichlet
	// SchemeShards gives each client ClassesPerClient classes — the
	// pathological McMahan et al. (2017) split.
	SchemeShards
)

// String names the scheme for logs and manifests.
func (s PartitionScheme) String() string {
	switch s {
	case SchemeIID:
		return "iid"
	case SchemeDirichlet:
		return "dirichlet"
	case SchemeShards:
		return "shards"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// SchemeByName resolves a scheme from its flag spelling.
func SchemeByName(name string) (PartitionScheme, error) {
	switch name {
	case "iid":
		return SchemeIID, nil
	case "dirichlet":
		return SchemeDirichlet, nil
	case "shards":
		return SchemeShards, nil
	default:
		return 0, fmt.Errorf("data: unknown partition scheme %q", name)
	}
}

// PartitionSpec describes a cohort entirely by recipe: a synthetic data
// spec, a client count, and a label-assignment scheme. Any client's
// shard is derivable from (Seed, client ID) alone, so a cohort of a
// million clients costs the size of this struct until a shard is asked
// for.
type PartitionSpec struct {
	Data             Spec
	Clients          int
	SamplesPerClient int
	Seed             int64
	Scheme           PartitionScheme
	// Alpha is the Dirichlet concentration (SchemeDirichlet).
	Alpha float64
	// ClassesPerClient bounds each client's label support (SchemeShards).
	ClassesPerClient int
}

// Validate reports recipe errors.
func (s PartitionSpec) Validate() error {
	if s.Clients <= 0 || s.SamplesPerClient <= 0 {
		return fmt.Errorf("data: partition spec needs positive clients and samples per client, got %d and %d",
			s.Clients, s.SamplesPerClient)
	}
	if s.Data.H <= 0 || s.Data.W <= 0 || s.Data.C <= 0 || s.Data.Classes <= 0 {
		return fmt.Errorf("data: partition spec has degenerate data spec %+v", s.Data)
	}
	switch s.Scheme {
	case SchemeIID:
	case SchemeDirichlet:
		if s.Alpha <= 0 {
			return fmt.Errorf("data: dirichlet scheme needs alpha > 0, got %v", s.Alpha)
		}
	case SchemeShards:
		if s.ClassesPerClient <= 0 || s.ClassesPerClient > s.Data.Classes {
			return fmt.Errorf("data: shards scheme needs 0 < classes per client ≤ %d, got %d",
				s.Data.Classes, s.ClassesPerClient)
		}
	default:
		return fmt.Errorf("data: unknown partition scheme %d", s.Scheme)
	}
	return nil
}

// LazyCohort is a client registry whose shards are recomputed on demand
// from a PartitionSpec: Shard(id) seeds a private RNG from (Seed, id),
// draws the client's label sequence under the scheme, and renders the
// samples. Nothing is cached — memory stays O(spec) no matter how many
// clients are registered — and Shard(id) returns byte-identical data on
// every call, in any call order, because no RNG state is shared between
// clients.
type LazyCohort struct {
	spec PartitionSpec
}

// NewLazyCohort validates the recipe and wraps it.
func NewLazyCohort(spec PartitionSpec) (*LazyCohort, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &LazyCohort{spec: spec}, nil
}

// Spec returns the wrapped recipe.
func (c *LazyCohort) Spec() PartitionSpec { return c.spec }

// NumClients returns the registered cohort size.
func (c *LazyCohort) NumClients() int { return c.spec.Clients }

// ShardLen reports a client's sample count without materializing the
// shard: every registered client holds exactly SamplesPerClient samples.
func (c *LazyCohort) ShardLen(id int) int {
	if id < 0 || id >= c.spec.Clients {
		return 0
	}
	return c.spec.SamplesPerClient
}

// Shard materializes one client's dataset. Cost is O(SamplesPerClient ×
// H×W×C) time and memory per call; the caller owns the result and no
// reference is retained.
func (c *LazyCohort) Shard(id int) *Dataset {
	if id < 0 || id >= c.spec.Clients {
		return nil
	}
	spec := c.spec
	rng := rand.New(rand.NewSource(DeriveSeed(spec.Seed, int64(id))))
	ds := NewDataset(spec.Data.H, spec.Data.W, spec.Data.C, spec.Data.Classes)
	for _, label := range c.labels(rng) {
		ds.Append(renderSample(spec.Data, label, rng), label)
	}
	return ds
}

// labels draws the client's label sequence under the scheme. All draws
// come from the client's private rng, so the sequence — and everything
// rendered after it — is a pure function of (Seed, id).
func (c *LazyCohort) labels(rng *rand.Rand) []int {
	spec := c.spec
	out := make([]int, spec.SamplesPerClient)
	switch spec.Scheme {
	case SchemeDirichlet:
		props := dirichlet(rng, spec.Alpha, spec.Data.Classes)
		for i := range out {
			out[i] = categorical(rng, props)
		}
	case SchemeShards:
		classes := rng.Perm(spec.Data.Classes)[:spec.ClassesPerClient]
		for i := range out {
			out[i] = classes[i%len(classes)]
		}
	default: // SchemeIID
		for i := range out {
			out[i] = rng.Intn(spec.Data.Classes)
		}
	}
	return out
}

// categorical draws an index from the given proportions (which sum to 1
// up to rounding; the last index absorbs the remainder).
func categorical(rng *rand.Rand, props []float64) int {
	u := rng.Float64()
	cum := 0.0
	for i, p := range props {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(props) - 1
}

// DeriveSeed mixes a base seed with a path of IDs (client, round, …)
// through SplitMix64, giving every (base, path) pair an independent,
// reproducible RNG stream. Both the lazy cohort and the sampled FedAvg
// runner derive their per-client streams through this, which is what
// makes a client's data and its local-step noise a function of identity
// rather than of scheduling order.
func DeriveSeed(base int64, path ...int64) int64 {
	h := splitmix64(uint64(base))
	for _, id := range path {
		h = splitmix64(h ^ uint64(id))
	}
	return int64(h &^ (1 << 63)) // non-negative, full 63-bit entropy
}

// splitmix64 is the finalizer from Steele et al.'s SplitMix64 PRNG — a
// bijective 64-bit mixer with full avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
