package data

import (
	"bytes"
	"testing"
)

func TestDatasetSerializationRoundTrip(t *testing.T) {
	spec := MNISTLike(8, 3)
	ds, _ := Generate(spec, 1)
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.H != ds.H || got.W != ds.W || got.C != ds.C || got.Classes != ds.Classes {
		t.Fatalf("geometry mismatch: %+v", got)
	}
	for i := range ds.X {
		if got.Y[i] != ds.Y[i] {
			t.Fatal("label mismatch")
		}
		for j := range ds.X[i].Data() {
			if got.X[i].Data()[j] != ds.X[i].Data()[j] {
				t.Fatal("pixel mismatch")
			}
		}
	}
}

func TestReadDatasetRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte{1, 2, 3, 4})); err == nil {
		t.Fatal("expected error on short input")
	}
	if _, err := ReadDataset(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestReadDatasetTruncated(t *testing.T) {
	ds := tinySet(t, 3)
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadDataset(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}
