package data

import (
	"encoding/binary"
	"fmt"
	"io"

	"quickdrop/internal/tensor"
)

// Binary dataset format (little endian):
//
//	uint32 magic "QDDS"
//	uint32 H, W, C, Classes, N
//	N × uint32 labels
//	N × tensor (tensor.WriteTo format)
const datasetMagic = 0x51444453 // "QDDS"

// WriteTo serializes the dataset (synthetic sets are persisted this way
// so unlearning capability survives process restarts).
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	var n int64
	writeU32 := func(v uint32) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += 4
		return nil
	}
	for _, v := range []uint32{datasetMagic, uint32(d.H), uint32(d.W), uint32(d.C), uint32(d.Classes), uint32(d.Len())} {
		if err := writeU32(v); err != nil {
			return n, fmt.Errorf("data: write header: %w", err)
		}
	}
	for _, y := range d.Y {
		if err := writeU32(uint32(y)); err != nil {
			return n, fmt.Errorf("data: write label: %w", err)
		}
	}
	for i, x := range d.X {
		k, err := x.WriteTo(w)
		n += k
		if err != nil {
			return n, fmt.Errorf("data: write sample %d: %w", i, err)
		}
	}
	return n, nil
}

// ReadDataset deserializes a dataset written by WriteTo.
func ReadDataset(r io.Reader) (*Dataset, error) {
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	mg, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("data: read magic: %w", err)
	}
	if mg != datasetMagic {
		return nil, fmt.Errorf("data: bad magic %#x", mg)
	}
	var hdr [5]uint32
	for i := range hdr {
		if hdr[i], err = readU32(); err != nil {
			return nil, fmt.Errorf("data: read header: %w", err)
		}
	}
	h, w, c, classes, count := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4])
	if h < 1 || w < 1 || c < 1 || classes < 1 || count < 0 || count > 1<<26 {
		return nil, fmt.Errorf("data: unreasonable header %v", hdr)
	}
	labels := make([]int, count)
	for i := range labels {
		y, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("data: read label %d: %w", i, err)
		}
		if int(y) >= classes {
			return nil, fmt.Errorf("data: label %d out of range", y)
		}
		labels[i] = int(y)
	}
	ds := NewDataset(h, w, c, classes)
	for i := 0; i < count; i++ {
		x, err := tensor.ReadFrom(r)
		if err != nil {
			return nil, fmt.Errorf("data: read sample %d: %w", i, err)
		}
		ds.Append(x, labels[i])
	}
	return ds, nil
}
