package optim

import (
	"fmt"
	"math"

	"quickdrop/internal/tensor"
)

// Momentum is SGD with classical (heavy-ball) momentum:
// v ← μv + g; θ ← θ ∓ ηv.
type Momentum struct {
	LR  float64
	Mu  float64
	Dir Direction
	// Steps counts parameter updates performed.
	Steps    int
	velocity []*tensor.Tensor
}

// NewMomentum returns a descending momentum optimizer.
func NewMomentum(lr, mu float64) *Momentum { return &Momentum{LR: lr, Mu: mu} }

// Step applies one update in place.
func (m *Momentum) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %d params but %d grads", len(params), len(grads)))
	}
	if m.velocity == nil {
		m.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			m.velocity[i] = tensor.NewLike(p)
		}
	}
	alpha := -m.LR
	if m.Dir == Ascend {
		alpha = m.LR
	}
	for i, p := range params {
		m.velocity[i].ScaleAddInPlace(m.Mu, grads[i])
		p.AxpyInPlace(alpha, m.velocity[i])
	}
	m.Steps++
}

// Adam implements Kingma & Ba's optimizer with bias correction.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Dir    Direction
	Steps  int
	m1, m2 []*tensor.Tensor
}

// NewAdam returns Adam with the standard defaults (β₁=0.9, β₂=0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update in place.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %d params but %d grads", len(params), len(grads)))
	}
	if a.m1 == nil {
		a.m1 = make([]*tensor.Tensor, len(params))
		a.m2 = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			a.m1[i] = tensor.NewLike(p)
			a.m2[i] = tensor.NewLike(p)
		}
	}
	a.Steps++
	c1 := 1 - math.Pow(a.Beta1, float64(a.Steps))
	c2 := 1 - math.Pow(a.Beta2, float64(a.Steps))
	sign := -1.0
	if a.Dir == Ascend {
		sign = 1
	}
	for i, p := range params {
		g, m1, m2 := grads[i].Data(), a.m1[i].Data(), a.m2[i].Data()
		pd := p.Data()
		for j := range pd {
			m1[j] = a.Beta1*m1[j] + (1-a.Beta1)*g[j]
			m2[j] = a.Beta2*m2[j] + (1-a.Beta2)*g[j]*g[j]
			mHat := m1[j] / c1
			vHat := m2[j] / c2
			pd[j] += sign * a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// Optimizer abstracts over the update rules so training loops can swap
// them.
type Optimizer interface {
	Step(params, grads []*tensor.Tensor)
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Momentum)(nil)
	_ Optimizer = (*Adam)(nil)
)

// Schedule maps a step index to a learning rate.
type Schedule func(step int) float64

// ConstantLR returns lr for every step.
func ConstantLR(lr float64) Schedule { return func(int) float64 { return lr } }

// StepDecay multiplies lr by factor every `every` steps.
func StepDecay(lr, factor float64, every int) Schedule {
	if every <= 0 {
		panic("optim: StepDecay needs every > 0")
	}
	return func(step int) float64 {
		return lr * math.Pow(factor, float64(step/every))
	}
}

// CosineDecay anneals lr from lr to floor over total steps.
func CosineDecay(lr, floor float64, total int) Schedule {
	if total <= 0 {
		panic("optim: CosineDecay needs total > 0")
	}
	return func(step int) float64 {
		if step >= total {
			return floor
		}
		t := float64(step) / float64(total)
		return floor + 0.5*(lr-floor)*(1+math.Cos(math.Pi*t))
	}
}

// ClipGradNorm scales grads in place so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(grads []*tensor.Tensor, maxNorm float64) float64 {
	if maxNorm <= 0 {
		panic("optim: ClipGradNorm needs maxNorm > 0")
	}
	sq := 0.0
	for _, g := range grads {
		n := g.Norm()
		sq += n * n
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm {
		scale := maxNorm / norm
		for _, g := range grads {
			g.ScaleInPlace(scale)
		}
	}
	return norm
}
