package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quickdrop/internal/tensor"
)

func TestSGDDescends(t *testing.T) {
	p := tensor.FromSlice([]float64{1, 2}, 2)
	g := tensor.FromSlice([]float64{10, -10}, 2)
	s := NewSGD(0.1)
	s.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if p.Data()[0] != 0 || p.Data()[1] != 3 {
		t.Fatalf("params = %v", p.Data())
	}
	if s.Steps != 1 {
		t.Fatalf("Steps = %d", s.Steps)
	}
}

func TestSGAAscends(t *testing.T) {
	p := tensor.FromSlice([]float64{1}, 1)
	g := tensor.FromSlice([]float64{5}, 1)
	NewSGA(0.1).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if math.Abs(p.Data()[0]-1.5) > 1e-12 {
		t.Fatalf("param = %g, want 1.5", p.Data()[0])
	}
}

// Property: ascent with rate η equals descent with rate −η (Algorithm 1's
// unlearn phase is sign-flipped SGD).
func TestAscentIsNegatedDescent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1 := tensor.Randn(r, 1, 4)
		p2 := p1.Clone()
		g := tensor.Randn(r, 1, 4)
		NewSGA(0.05).Step([]*tensor.Tensor{p1}, []*tensor.Tensor{g})
		(&SGD{LR: -0.05}).Step([]*tensor.Tensor{p2}, []*tensor.Tensor{g})
		for i := range p1.Data() {
			if math.Abs(p1.Data()[i]-p2.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStepValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(0.1).Step([]*tensor.Tensor{tensor.New(1)}, nil)
}

func TestSGDQuadraticConvergence(t *testing.T) {
	// Minimize f(x) = (x-3)² by hand-computed gradients.
	x := tensor.FromSlice([]float64{0}, 1)
	s := NewSGD(0.1)
	for i := 0; i < 100; i++ {
		g := tensor.FromSlice([]float64{2 * (x.Data()[0] - 3)}, 1)
		s.Step([]*tensor.Tensor{x}, []*tensor.Tensor{g})
	}
	if math.Abs(x.Data()[0]-3) > 1e-6 {
		t.Fatalf("converged to %g, want 3", x.Data()[0])
	}
}

func TestDirectionString(t *testing.T) {
	if Descend.String() != "descend" || Ascend.String() != "ascend" {
		t.Fatal("bad Direction strings")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("bad unknown Direction string")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.AddBatch(32)
	c.AddBatch(16)
	if c.GradEvals != 48 || c.SamplesTouched != 48 {
		t.Fatalf("counter = %+v", c)
	}
	var total Counter
	total.Add(c)
	total.Add(c)
	if total.GradEvals != 96 {
		t.Fatalf("merged = %+v", total)
	}
}
