// Package optim provides the stochastic gradient optimizers used by
// federated training, unlearning (gradient ascent) and recovery, together
// with the gradient-computation accounting that QuickDrop's efficiency
// tables are built from.
package optim

import (
	"fmt"

	"quickdrop/internal/telemetry/health"
	"quickdrop/internal/tensor"
)

// Direction selects whether SGD descends (training, recovery, relearning)
// or ascends (unlearning) the loss surface. The paper's Algorithm 1 is
// exactly SGD with the sign flipped during the unlearn phase.
type Direction int

const (
	// Descend minimizes the loss (θ ← θ − η∇L).
	Descend Direction = iota
	// Ascend maximizes the loss (θ ← θ + η∇L), used for unlearning.
	Ascend
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Descend:
		return "descend"
	case Ascend:
		return "ascend"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// SGD is plain stochastic gradient descent/ascent.
type SGD struct {
	// LR is the learning rate η.
	LR float64
	// Dir selects descent or ascent.
	Dir Direction
	// Steps counts parameter updates performed.
	Steps int
	// Health, when set, receives sampled per-layer gradient norms and
	// update/param ratios from Step. Read-only observation: the update
	// itself is bitwise identical with or without a monitor.
	Health *health.Monitor
}

// NewSGD returns a descending SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewSGA returns an ascending SGD optimizer (gradient ascent).
func NewSGA(lr float64) *SGD { return &SGD{LR: lr, Dir: Ascend} }

// Step applies one update to params given aligned gradients, in place.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %d params but %d grads", len(params), len(grads)))
	}
	alpha := -s.LR
	if s.Dir == Ascend {
		alpha = s.LR
	}
	for i, p := range params {
		p.AxpyInPlace(alpha, grads[i])
	}
	s.Steps++
	if s.Health.Sample() {
		s.observe(params, grads, alpha)
	}
}

// observe feeds one sampled per-layer health observation per parameter.
// For plain SGD the update is exactly alpha·grad, so the update norm is
// |alpha| times the gradient norm — no extra pass over the update.
func (s *SGD) observe(params, grads []*tensor.Tensor, alpha float64) {
	x := float64(s.Steps)
	scale := alpha
	if scale < 0 {
		scale = -scale
	}
	for i, p := range params {
		gl2, gn, gi := tensor.NormStats(grads[i])
		pl2, pn, pi := tensor.NormStats(p)
		s.Health.RecordLayer(i, x, gl2, gn+gi, scale*gl2, pl2, pn+pi)
	}
}

// Counter tracks the cost drivers reported in the paper's efficiency
// tables: the number of gradient evaluations (one per sample per backward
// pass) and the number of samples touched.
type Counter struct {
	// GradEvals is the number of per-sample gradient computations.
	GradEvals int
	// SamplesTouched is the total number of samples consumed by batches.
	SamplesTouched int
}

// AddBatch records one forward/backward pass over a batch of n samples.
func (c *Counter) AddBatch(n int) {
	c.GradEvals += n
	c.SamplesTouched += n
}

// Add merges another counter into this one.
func (c *Counter) Add(o Counter) {
	c.GradEvals += o.GradEvals
	c.SamplesTouched += o.SamplesTouched
}
