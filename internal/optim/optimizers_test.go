package optim

import (
	"math"
	"testing"

	"quickdrop/internal/tensor"
)

// quadGrad is the gradient of f(x) = (x-3)².
func quadGrad(x *tensor.Tensor) []*tensor.Tensor {
	return []*tensor.Tensor{tensor.FromSlice([]float64{2 * (x.Data()[0] - 3)}, 1)}
}

func TestMomentumConvergesFasterThanSGDOnQuadratic(t *testing.T) {
	run := func(opt Optimizer) int {
		x := tensor.FromSlice([]float64{0}, 1)
		for i := 0; i < 500; i++ {
			if math.Abs(x.Data()[0]-3) < 1e-6 {
				return i
			}
			opt.Step([]*tensor.Tensor{x}, quadGrad(x))
		}
		return 500
	}
	sgdSteps := run(NewSGD(0.05))
	momSteps := run(NewMomentum(0.05, 0.8))
	if momSteps >= sgdSteps {
		t.Fatalf("momentum (%d steps) should beat plain SGD (%d steps)", momSteps, sgdSteps)
	}
}

func TestMomentumAscends(t *testing.T) {
	m := NewMomentum(0.1, 0.9)
	m.Dir = Ascend
	x := tensor.FromSlice([]float64{1}, 1)
	g := tensor.FromSlice([]float64{2}, 1)
	m.Step([]*tensor.Tensor{x}, []*tensor.Tensor{g})
	if x.Data()[0] <= 1 {
		t.Fatalf("ascent must increase the parameter, got %g", x.Data()[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	a := NewAdam(0.2)
	x := tensor.FromSlice([]float64{0}, 1)
	for i := 0; i < 400; i++ {
		a.Step([]*tensor.Tensor{x}, quadGrad(x))
	}
	if math.Abs(x.Data()[0]-3) > 1e-3 {
		t.Fatalf("Adam converged to %g, want 3", x.Data()[0])
	}
	if a.Steps != 400 {
		t.Fatalf("Steps = %d", a.Steps)
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ LR.
	a := NewAdam(0.1)
	x := tensor.FromSlice([]float64{0}, 1)
	g := tensor.FromSlice([]float64{123}, 1)
	a.Step([]*tensor.Tensor{x}, []*tensor.Tensor{g})
	if math.Abs(math.Abs(x.Data()[0])-0.1) > 1e-6 {
		t.Fatalf("first Adam step = %g, want ≈0.1", x.Data()[0])
	}
}

func TestOptimizersValidateLengths(t *testing.T) {
	for _, opt := range []Optimizer{NewMomentum(0.1, 0.9), NewAdam(0.1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			opt.Step([]*tensor.Tensor{tensor.New(1)}, nil)
		}()
	}
}

func TestSchedules(t *testing.T) {
	c := ConstantLR(0.5)
	if c(0) != 0.5 || c(100) != 0.5 {
		t.Fatal("ConstantLR must be constant")
	}
	s := StepDecay(1.0, 0.5, 10)
	if s(0) != 1.0 || s(9) != 1.0 || s(10) != 0.5 || s(20) != 0.25 {
		t.Fatalf("StepDecay wrong: %g %g %g", s(9), s(10), s(20))
	}
	cos := CosineDecay(1.0, 0.1, 100)
	if math.Abs(cos(0)-1.0) > 1e-12 {
		t.Fatalf("cosine start = %g", cos(0))
	}
	if math.Abs(cos(100)-0.1) > 1e-12 || math.Abs(cos(200)-0.1) > 1e-12 {
		t.Fatal("cosine must settle at the floor")
	}
	if !(cos(25) > cos(50) && cos(50) > cos(75)) {
		t.Fatal("cosine must decrease monotonically")
	}
}

func TestScheduleValidation(t *testing.T) {
	for _, f := range []func(){
		func() { StepDecay(1, 0.5, 0) },
		func() { CosineDecay(1, 0, 0) },
		func() { ClipGradNorm(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestClipGradNorm(t *testing.T) {
	g := []*tensor.Tensor{tensor.FromSlice([]float64{3, 4}, 2)} // norm 5
	pre := ClipGradNorm(g, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g", pre)
	}
	post := math.Hypot(g[0].Data()[0], g[0].Data()[1])
	if math.Abs(post-1) > 1e-12 {
		t.Fatalf("post-clip norm = %g, want 1", post)
	}
	// Already-small gradients are untouched.
	g2 := []*tensor.Tensor{tensor.FromSlice([]float64{0.1}, 1)}
	ClipGradNorm(g2, 1)
	if g2[0].Data()[0] != 0.1 {
		t.Fatal("small gradient must not be scaled")
	}
}
