package fl

import (
	"math/rand"
	"testing"

	"quickdrop/internal/eval"
)

func TestDropoutValidation(t *testing.T) {
	bad := PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 1, LR: 0.1, DropoutProb: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("dropout prob 1 must be invalid (no progress possible)")
	}
	bad.DropoutProb = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative dropout must be invalid")
	}
}

func TestDropoutLosesUpdatesButTrainingSurvives(t *testing.T) {
	model, parts, test := testSetup(t, 4, 0)
	res, err := RunPhase(model, parts, PhaseConfig{
		Rounds: 14, LocalSteps: 5, BatchSize: 16, LR: 0.1, DropoutProb: 0.3,
	}, rand.New(rand.NewSource(60)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected some injected failures at p=0.3")
	}
	// Training still converges despite the losses.
	if acc := eval.Accuracy(model, test); acc < 0.6 {
		t.Fatalf("accuracy %.2f under 30%% dropout", acc)
	}
}

func TestAllClientsFailingRoundKeepsModel(t *testing.T) {
	model, parts, _ := testSetup(t, 2, 0)
	before := model.CloneParams()
	// With dropout just below 1 every client fails almost every round;
	// find a seed where the first round drops everyone and check the
	// model survives unchanged through such rounds.
	res, err := RunPhase(model, parts, PhaseConfig{
		Rounds: 6, LocalSteps: 1, BatchSize: 4, LR: 0.1, DropoutProb: 0.95,
	}, rand.New(rand.NewSource(61)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected failures")
	}
	// The model either stayed identical (all rounds dropped) or changed
	// by the surviving updates; in both cases the run must not error and
	// parameters must be finite.
	for i, p := range model.ParamTensors() {
		for j, v := range p.Data() {
			if v != v { // NaN
				t.Fatalf("param %d elem %d is NaN", i, j)
			}
		}
		_ = before[i]
	}
}

func TestDropoutZeroMatchesBaseline(t *testing.T) {
	m1, parts, _ := testSetup(t, 2, 0)
	m2, _, _ := testSetup(t, 2, 0)
	cfg := PhaseConfig{Rounds: 3, LocalSteps: 2, BatchSize: 8, LR: 0.05}
	if _, err := RunPhase(m1, parts, cfg, rand.New(rand.NewSource(62))); err != nil {
		t.Fatal(err)
	}
	cfg.DropoutProb = 0
	if _, err := RunPhase(m2, parts, cfg, rand.New(rand.NewSource(62))); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.ParamTensors(), m2.ParamTensors()
	for i := range p1 {
		for j := range p1[i].Data() {
			if p1[i].Data()[j] != p2[i].Data()[j] {
				t.Fatal("DropoutProb=0 must not change the trajectory")
			}
		}
	}
}
