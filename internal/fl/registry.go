package fl

import (
	"fmt"
	"math/rand"
	"sort"

	"quickdrop/internal/data"
)

// ClientRegistry is the cohort abstraction every FedAvg phase runs over.
// It replaces the eagerly materialized []*data.Dataset: the registry
// knows how many clients exist and how large each shard is without
// holding any shard resident, and materializes a shard only when a
// round actually selects that client.
//
// Contract:
//   - NumClients and ShardLen are cheap (O(1)) and allocation-free;
//     runners call them inside per-round sampling loops.
//   - ShardLen(id) == Shard(id).Len() for every valid id, and is 0 for
//     out-of-range IDs and clients with no data (who are ineligible).
//   - Shard(id) is deterministic: repeated calls return identical data
//     regardless of call order or what other shards were materialized.
//     Implementations may return a shared object (data.Cohort) or a
//     fresh one per call (data.LazyCohort); callers must not mutate it.
//
// data.Cohort adapts legacy slices; data.LazyCohort derives shards from
// a seed+id recipe so a million-client cohort costs O(1) memory.
type ClientRegistry interface {
	NumClients() int
	ShardLen(id int) int
	Shard(id int) *data.Dataset
}

var (
	_ ClientRegistry = (*data.Cohort)(nil)
	_ ClientRegistry = (*data.LazyCohort)(nil)
)

// errNoData is the shared "nothing to train on" failure, kept identical
// to the pre-registry message so callers matching on it keep working.
func errNoData() error { return fmt.Errorf("fl: no client has data for this phase") }

// sampleClientIDs draws up to k distinct eligible client IDs from the
// registry and returns them in ascending order. The fast path is
// rejection sampling — O(k) draws and O(k) memory, never touching the
// other N-k clients — which is why per-round cost is independent of the
// registered cohort size. If the cohort is so sparse that rejection
// stalls (bounded attempts), it falls back to a reservoir sample over
// one ascending scan of the eligible set: O(N) time but still O(k)
// memory, and still a deterministic function of the rng stream.
//
// Fewer than k eligible clients returns them all; an empty eligible set
// returns nil.
func sampleClientIDs(reg ClientRegistry, k int, rng *rand.Rand) []int {
	n := reg.NumClients()
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, 0, n)
		for id := 0; id < n; id++ {
			if reg.ShardLen(id) > 0 {
				out = append(out, id)
			}
		}
		return out
	}
	out := make([]int, 0, k)
	picked := make(map[int]struct{}, k)
	// With eligible density d, one acceptance costs ~1/d draws; the
	// bound covers d ≥ ~1/16 with a large constant margin before the
	// scan fallback engages.
	limit := 32*k + 256
	for attempts := 0; attempts < limit && len(out) < k; attempts++ {
		id := rng.Intn(n)
		if _, dup := picked[id]; dup {
			continue
		}
		if reg.ShardLen(id) <= 0 {
			continue
		}
		picked[id] = struct{}{}
		out = append(out, id)
	}
	if len(out) < k {
		// Sparse cohort: uniform k-of-eligible via reservoir sampling.
		out = out[:0]
		seen := 0
		for id := 0; id < n; id++ {
			if reg.ShardLen(id) <= 0 {
				continue
			}
			seen++
			if len(out) < k {
				out = append(out, id)
				continue
			}
			if j := rng.Intn(seen); j < k {
				out[j] = id
			}
		}
	}
	sort.Ints(out)
	return out
}
