package fl

import (
	"fmt"

	"quickdrop/internal/tensor"
)

// StreamAggregator folds client updates into a running weighted sum, so
// a round's aggregation needs one O(model) accumulator instead of
// collecting K parameter sets. The arithmetic is exactly the historical
// collect-then-average loop — acc += w·params per update, then one
// scale by 1/Σw — performed incrementally; folding updates in the same
// order yields bit-identical results (floating-point addition is
// deterministic for a fixed order, which is why the runners fold in
// ascending client-ID order).
//
// The accumulator is allocated once at construction and reused across
// rounds via Reset: Fold and Finish allocate nothing.
type StreamAggregator struct {
	acc   []*tensor.Tensor
	total float64
	folds int
}

// NewStreamAggregator allocates an accumulator shaped like the given
// parameter set.
func NewStreamAggregator(like []*tensor.Tensor) *StreamAggregator {
	return &StreamAggregator{acc: zerosLike(like)}
}

// Reset zeroes the accumulator for a new round.
func (a *StreamAggregator) Reset() {
	for _, t := range a.acc {
		t.Zero()
	}
	a.total = 0
	a.folds = 0
}

// Fold accumulates one client's parameters with weight w. Non-positive
// weights are rejected by the runners before reaching here; Fold itself
// trusts the caller and never allocates.
func (a *StreamAggregator) Fold(params []*tensor.Tensor, w float64) {
	for j, p := range params {
		a.acc[j].AxpyInPlace(w, p)
	}
	a.total += w
	a.folds++
}

// TotalWeight returns the accumulated Σw for the current round.
func (a *StreamAggregator) TotalWeight() float64 { return a.total }

// Folds returns how many updates were folded since the last Reset.
func (a *StreamAggregator) Folds() int { return a.folds }

// Finish scales the accumulator by 1/Σw and returns it — the weighted
// mean of the folded updates. The returned tensors are the accumulator
// itself (valid until the next Reset), so callers copy them out via
// model.SetParams. Finishing a round with zero total weight panics; the
// runners handle that case (all-dropout rounds) before calling Finish.
func (a *StreamAggregator) Finish() []*tensor.Tensor {
	if a.total == 0 {
		panic(fmt.Sprintf("fl: StreamAggregator.Finish with zero total weight after %d folds", a.folds))
	}
	for _, t := range a.acc {
		t.ScaleInPlace(1 / a.total)
	}
	return a.acc
}
