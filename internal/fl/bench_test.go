package fl

import (
	"math/rand"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
)

// BenchmarkSampledRound measures one sampled FedAvg round at registry
// scale: K=64 participants drawn from a million-client lazy cohort,
// folded through the streaming aggregator. The per-op figure is the
// tentpole's scaling claim in benchmark form — it must not grow with
// the cohort size, only with K and the model. Tracked by
// scripts/bench.sh and gated by scripts/bench_compare.sh.
func BenchmarkSampledRound(b *testing.B) {
	reg, err := data.NewLazyCohort(data.PartitionSpec{
		Data:             data.MNISTLike(8, 4),
		Clients:          1_000_000,
		SamplesPerClient: 8,
		Seed:             5,
		Scheme:           data.SchemeIID,
	})
	if err != nil {
		b.Fatal(err)
	}
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	model := nn.NewConvNet(arch, rand.New(rand.NewSource(3)))
	cfg := PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 4, LR: 0.05, SampleK: 64}
	rng := rand.New(rand.NewSource(4))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPhaseRegistry(model, reg, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFedAvgRound measures one full FedAvg round — broadcast,
// local steps on every client, weighted aggregation — on the small
// test substrate. This is the headline wall-time figure scripts/bench.sh
// tracks for the FL layer.
func BenchmarkFedAvgRound(b *testing.B) {
	spec := data.MNISTLike(8, 12)
	train, _ := data.Generate(spec, 1)
	parts := data.PartitionIID(train, 4, rand.New(rand.NewSource(2)))
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	model := nn.NewConvNet(arch, rand.New(rand.NewSource(3)))
	cfg := PhaseConfig{Rounds: 1, LocalSteps: 5, BatchSize: 16, LR: 0.1}
	rng := rand.New(rand.NewSource(4))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPhase(model, parts, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
