package fl

import (
	"math/rand"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
)

// BenchmarkFedAvgRound measures one full FedAvg round — broadcast,
// local steps on every client, weighted aggregation — on the small
// test substrate. This is the headline wall-time figure scripts/bench.sh
// tracks for the FL layer.
func BenchmarkFedAvgRound(b *testing.B) {
	spec := data.MNISTLike(8, 12)
	train, _ := data.Generate(spec, 1)
	parts := data.PartitionIID(train, 4, rand.New(rand.NewSource(2)))
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	model := nn.NewConvNet(arch, rand.New(rand.NewSource(3)))
	cfg := PhaseConfig{Rounds: 1, LocalSteps: 5, BatchSize: 16, LR: 0.1}
	rng := rand.New(rand.NewSource(4))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPhase(model, parts, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
