package fl

import (
	"context"
	"math/rand"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
	"quickdrop/internal/tensor"
)

func millionClientSpec() data.PartitionSpec {
	return data.PartitionSpec{
		Data:             data.MNISTLike(8, 4),
		Clients:          1_000_000,
		SamplesPerClient: 8,
		Seed:             5,
		Scheme:           data.SchemeIID,
	}
}

func TestSampleClientIDsProperties(t *testing.T) {
	reg, err := data.NewLazyCohort(millionClientSpec())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		ids := sampleClientIDs(reg, 64, rng)
		if len(ids) != 64 {
			t.Fatalf("got %d ids, want 64", len(ids))
		}
		for i, id := range ids {
			if id < 0 || id >= reg.NumClients() || reg.ShardLen(id) == 0 {
				t.Fatalf("id %d ineligible", id)
			}
			if i > 0 && ids[i-1] >= id {
				t.Fatalf("ids not strictly ascending: %d then %d", ids[i-1], id)
			}
		}
	}
	// Deterministic: same rng stream, same sample.
	a := sampleClientIDs(reg, 64, rand.New(rand.NewSource(5)))
	b := sampleClientIDs(reg, 64, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling is not a deterministic function of the rng stream")
		}
	}
}

func TestSampleClientIDsSmallAndSparseCohorts(t *testing.T) {
	spec := data.MNISTLike(8, 4)
	train, _ := data.Generate(spec, 1)
	// k ≥ eligible: every eligible client, ascending.
	reg := data.NewCohort([]*data.Dataset{train, nil, train, nil, train})
	ids := sampleClientIDs(reg, 10, rand.New(rand.NewSource(1)))
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 2 || ids[2] != 4 {
		t.Fatalf("k≥eligible should return all eligible ascending, got %v", ids)
	}
	// Sparse cohort (2 eligible out of many): the rejection-sampling
	// bound trips and the reservoir fallback must still find them.
	sparse := make([]*data.Dataset, 50_000)
	sparse[123] = train
	sparse[45_678] = train
	ids = sampleClientIDs(data.NewCohort(sparse), 2, rand.New(rand.NewSource(2)))
	if len(ids) != 2 || ids[0] != 123 || ids[1] != 45_678 {
		t.Fatalf("sparse cohort sample = %v, want [123 45678]", ids)
	}
	if got := sampleClientIDs(data.NewCohort(make([]*data.Dataset, 100)), 4, rand.New(rand.NewSource(3))); len(got) != 0 {
		t.Fatalf("empty eligible set should return no ids, got %v", got)
	}
}

// TestMillionClientAggregationAllocations pins the tentpole's memory
// claim: one round of per-round sampling plus streaming aggregation
// over a million-client registry allocates O(K), independent of N.
// The accumulator itself is preallocated; sampling allocates the K-slot
// output and its dedup map and nothing proportional to the cohort.
func TestMillionClientAggregationAllocations(t *testing.T) {
	reg, err := data.NewLazyCohort(millionClientSpec())
	if err != nil {
		t.Fatal(err)
	}
	params := []*tensor.Tensor{
		tensor.Randn(rand.New(rand.NewSource(1)), 1, 64, 10),
		tensor.Randn(rand.New(rand.NewSource(2)), 1, 10),
	}
	agg := NewStreamAggregator(params)
	rng := rand.New(rand.NewSource(31))
	perRound := testing.AllocsPerRun(20, func() {
		agg.Reset()
		for _, id := range sampleClientIDs(reg, 64, rng) {
			agg.Fold(params, float64(reg.ShardLen(id)))
		}
		_ = agg.Finish()
	})
	// K=64 sampling costs ~a map + slice (tens of allocations). A bound
	// of 4·K catches any O(N) behavior (which would be millions) while
	// tolerating map-growth noise.
	if perRound > 256 {
		t.Fatalf("sampled round allocated %v times; sampling+aggregation must stay O(K), not O(N)", perRound)
	}
}

// TestMillionClientSampledPhase runs a real (tiny) FedAvg phase over a
// million-client lazy registry end to end: only the sampled clients'
// shards are ever materialized, so this completes in seconds.
func TestMillionClientSampledPhase(t *testing.T) {
	reg, err := data.NewLazyCohort(millionClientSpec())
	if err != nil {
		t.Fatal(err)
	}
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	model := nn.NewConvNet(arch, rand.New(rand.NewSource(3)))
	cfg := PhaseConfig{Rounds: 2, LocalSteps: 1, BatchSize: 4, LR: 0.05, SampleK: 8}
	res, err := RunPhaseRegistry(model, reg, cfg, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("ran %d rounds, want 2", res.Rounds)
	}
	for _, k := range res.ClientsPerRnd {
		if k != 8 {
			t.Fatalf("round selected %d clients, want 8", k)
		}
	}
}

func TestSampleKValidation(t *testing.T) {
	base := PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 4, LR: 0.05}
	neg := base
	neg.SampleK = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative SampleK must be invalid")
	}
	both := base
	both.SampleK, both.Participation = 4, 0.5
	if err := both.Validate(); err == nil {
		t.Fatal("SampleK with fractional Participation must be invalid")
	}
	negW := base
	negW.Workers = -2
	if err := negW.Validate(); err == nil {
		t.Fatal("negative Workers must be invalid")
	}
	ok := base
	ok.SampleK, ok.Workers = 4, 2
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSampledSequentialMatchesConcurrent is the sampled-mode bitwise
// determinism guarantee: per-client RNG streams derive from (phase seed,
// round, client ID) and dropout draws happen at fold time in ascending
// client-ID order, so the bounded worker pool produces exactly the
// sequential runner's parameters regardless of worker count.
func TestSampledSequentialMatchesConcurrent(t *testing.T) {
	_, parts, _ := testSetup(t, 10, 0)
	reg := data.NewCohort(parts)
	factory, seqModel := testFactory()
	cfg := PhaseConfig{Rounds: 3, LocalSteps: 2, BatchSize: 8, LR: 0.05, SampleK: 4}
	if _, err := RunPhaseRegistry(seqModel, reg, cfg, rand.New(rand.NewSource(70))); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		conModel := factory()
		conModel.SetParams(nn.NewConvNet(nn.ConvNetConfig{
			InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2,
		}, rand.New(rand.NewSource(3))).CloneParams())
		wcfg := cfg
		wcfg.Workers = workers
		if _, err := RunPhaseConcurrentRegistry(context.Background(), conModel, factory, reg, wcfg,
			rand.New(rand.NewSource(70))); err != nil {
			t.Fatal(err)
		}
		p1, p2 := seqModel.ParamTensors(), conModel.ParamTensors()
		for i := range p1 {
			d1, d2 := p1[i].Data(), p2[i].Data()
			for j := range d1 {
				if d1[j] != d2[j] {
					t.Fatalf("workers=%d: param %d elem %d differs: %g vs %g", workers, i, j, d1[j], d2[j])
				}
			}
		}
	}
}

// TestSampledPhaseIsSeedDeterministic: same seed → identical model;
// different seed → different participants.
func TestSampledPhaseIsSeedDeterministic(t *testing.T) {
	_, parts, _ := testSetup(t, 10, 0)
	reg := data.NewCohort(parts)
	run := func(seed int64) []*tensor.Tensor {
		arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
		m := nn.NewConvNet(arch, rand.New(rand.NewSource(3)))
		cfg := PhaseConfig{Rounds: 2, LocalSteps: 2, BatchSize: 8, LR: 0.05, SampleK: 3}
		if _, err := RunPhaseRegistry(m, reg, cfg, rand.New(rand.NewSource(seed))); err != nil {
			t.Fatal(err)
		}
		return m.CloneParams()
	}
	a, b, c := run(9), run(9), run(10)
	same := func(x, y []*tensor.Tensor) bool {
		for i := range x {
			dx, dy := x[i].Data(), y[i].Data()
			for j := range dx {
				if dx[j] != dy[j] {
					return false
				}
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed must give bitwise-identical sampled phases")
	}
	if same(a, c) {
		t.Fatal("different seeds should select different participants/noise")
	}
}
