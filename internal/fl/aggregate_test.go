package fl

import (
	"math/rand"
	"testing"

	"quickdrop/internal/tensor"
)

func randParams(rng *rand.Rand, n int) [][]*tensor.Tensor {
	out := make([][]*tensor.Tensor, n)
	for i := range out {
		out[i] = []*tensor.Tensor{
			tensor.Randn(rng, 1, 4, 3),
			tensor.Randn(rng, 1, 7),
		}
	}
	return out
}

// TestStreamAggregatorMatchesCollectThenAverage is the 0-ULP property
// test: folding K weighted updates incrementally must produce exactly
// the result of the historical collect-then-average loop, because both
// perform the identical sequence of AxpyInPlace adds in client-ID order
// followed by one scale. Any reordering or algebraic "simplification"
// inside the aggregator would break bitwise equality here.
func TestStreamAggregatorMatchesCollectThenAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(12)
		updates := randParams(rng, k)
		weights := make([]float64, k)
		for i := range weights {
			weights[i] = 1 + 100*rng.Float64()
		}

		// Reference: the pre-refactor collect-then-average arithmetic.
		ref := zerosLike(updates[0])
		total := 0.0
		for i, u := range updates {
			for j, p := range u {
				ref[j].AxpyInPlace(weights[i], p)
			}
			total += weights[i]
		}
		for _, t := range ref {
			t.ScaleInPlace(1 / total)
		}

		agg := NewStreamAggregator(updates[0])
		for i, u := range updates {
			agg.Fold(u, weights[i])
		}
		if agg.Folds() != k || agg.TotalWeight() != total {
			t.Fatalf("trial %d: folds=%d total=%v, want %d, %v", trial, agg.Folds(), agg.TotalWeight(), k, total)
		}
		got := agg.Finish()
		for j := range ref {
			rd, gd := ref[j].Data(), got[j].Data()
			for e := range rd {
				if rd[e] != gd[e] {
					t.Fatalf("trial %d tensor %d elem %d: %v != %v (must be 0 ULP)", trial, j, e, gd[e], rd[e])
				}
			}
		}
	}
}

func TestStreamAggregatorResetReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	u := randParams(rng, 2)
	agg := NewStreamAggregator(u[0])
	agg.Fold(u[0], 2)
	first := agg.Finish()
	agg.Reset()
	if agg.TotalWeight() != 0 || agg.Folds() != 0 {
		t.Fatal("Reset did not clear totals")
	}
	agg.Fold(u[1], 3)
	second := agg.Finish()
	if &first[0].Data()[0] != &second[0].Data()[0] {
		t.Fatal("Reset must reuse the accumulator storage, not reallocate")
	}
	// After reset, the result replays the exact fold arithmetic on u[1]
	// alone: (3·p) scaled by 1/3 (multiplication by the reciprocal, as
	// ScaleInPlace does — not division).
	for j := range second {
		sd, ud := second[j].Data(), u[1][j].Data()
		for e := range sd {
			if want := (3 * ud[e]) * (1.0 / 3); sd[e] != want {
				t.Fatalf("single-fold mean differs at tensor %d elem %d: %v != %v", j, e, sd[e], want)
			}
		}
	}
}

func TestStreamAggregatorFoldIsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	u := randParams(rng, 1)[0]
	agg := NewStreamAggregator(u)
	if n := testing.AllocsPerRun(100, func() {
		agg.Reset()
		agg.Fold(u, 2)
		agg.Fold(u, 3)
		_ = agg.Finish()
	}); n != 0 {
		t.Fatalf("Reset+Fold+Finish allocated %v times per round, want 0 (O(model) accumulator is reused)", n)
	}
}

func TestStreamAggregatorZeroWeightPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	agg := NewStreamAggregator(randParams(rng, 1)[0])
	defer func() {
		if recover() == nil {
			t.Fatal("Finish with zero total weight must panic")
		}
	}()
	agg.Finish()
}
