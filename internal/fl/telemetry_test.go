package fl

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"quickdrop/internal/telemetry"
)

func testPipeline(clients int) *telemetry.Pipeline {
	return telemetry.NewPipeline(telemetry.NewRegistry(), telemetry.NewTracer(0), clients)
}

// TestConcurrentHookCancelsMidRound cancels the phase from inside a
// local-step hook — mid-round, with client workers in flight — and
// checks the server unwinds cleanly with the context error.
func TestConcurrentHookCancelsMidRound(t *testing.T) {
	_, parts, _ := testSetup(t, 3, 0)
	factory, model := testFactory()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var steps atomic.Int64
	cfg := PhaseConfig{
		Rounds: 10000, LocalSteps: 5, BatchSize: 8, LR: 0.05,
		Hook: func(StepContext) {
			if steps.Add(1) == 4 {
				cancel()
			}
		},
	}
	_, err := RunPhaseConcurrent(ctx, model, factory, parts, cfg, rand.New(rand.NewSource(80)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if steps.Load() < 4 {
		t.Fatalf("hook ran %d steps before cancellation, want ≥4", steps.Load())
	}
}

// TestConcurrentDropoutRecordsDrops drives the dropout edge path with a
// pipeline attached: every lost update shows up both in the phase
// result and in the dropped-updates counter, and rounds where all
// participants fail still close their round span and counter.
func TestConcurrentDropoutRecordsDrops(t *testing.T) {
	_, parts, _ := testSetup(t, 4, 0)
	factory, model := testFactory()
	pipe := testPipeline(len(parts))

	rounds := 8
	res, err := RunPhaseConcurrent(context.Background(), model, factory, parts, PhaseConfig{
		Rounds: rounds, LocalSteps: 2, BatchSize: 8, LR: 0.05,
		DropoutProb: 0.5, Telemetry: pipe,
	}, rand.New(rand.NewSource(81)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("dropout 0.5 over 8 rounds × 4 clients dropped nothing")
	}
	if got := pipe.Dropped.Value(); got != int64(res.Dropped) {
		t.Fatalf("Dropped counter = %d, result says %d", got, res.Dropped)
	}
	if got := pipe.Rounds.Value(); got != int64(rounds) {
		t.Fatalf("Rounds counter = %d, want %d (all-dropout rounds must still close)", got, rounds)
	}
	if got := pipe.RoundSeconds.Count(); got != int64(rounds) {
		t.Fatalf("RoundSeconds count = %d, want %d", got, rounds)
	}
}

// TestConcurrentTelemetryCounts checks the per-client instruments under
// the goroutine-per-client runtime (and, via `go test -race`, that the
// record paths are race-free when all workers share one pipeline).
func TestConcurrentTelemetryCounts(t *testing.T) {
	_, parts, _ := testSetup(t, 6, 0)
	factory, model := testFactory()
	pipe := testPipeline(len(parts))

	rounds, localSteps := 3, 4
	if _, err := RunPhaseConcurrent(context.Background(), model, factory, parts, PhaseConfig{
		Rounds: rounds, LocalSteps: localSteps, BatchSize: 8, LR: 0.05,
		Telemetry: pipe,
	}, rand.New(rand.NewSource(82))); err != nil {
		t.Fatal(err)
	}

	var total int64
	for i := range parts {
		per := pipe.LocalSteps.At(i).Value()
		if per != int64(rounds*localSteps) {
			t.Errorf("client %d recorded %d local steps, want %d", i, per, rounds*localSteps)
		}
		total += per
	}
	if want := int64(rounds * localSteps * len(parts)); total != want {
		t.Fatalf("total local steps = %d, want %d", total, want)
	}
	if pipe.Samples.Value() == 0 {
		t.Fatal("no samples recorded")
	}
	if got := pipe.Phases.Value(); got != 1 {
		t.Fatalf("Phases counter = %d, want 1", got)
	}
}

// TestTelemetryDoesNotPerturbTraining reruns the same seeded phase with
// and without a pipeline attached: the trajectories must be bit-for-bit
// identical, in both the sequential and the concurrent runtime.
// Telemetry reads the clock but its readings never feed the numerics.
func TestTelemetryDoesNotPerturbTraining(t *testing.T) {
	_, parts, _ := testSetup(t, 3, 0)
	cfg := PhaseConfig{Rounds: 4, LocalSteps: 3, BatchSize: 8, LR: 0.05}

	run := func(concurrent bool, pipe *telemetry.Pipeline) []float64 {
		t.Helper()
		factory, model := testFactory()
		c := cfg
		c.Telemetry = pipe
		var err error
		if concurrent {
			_, err = RunPhaseConcurrent(context.Background(), model, factory, parts, c,
				rand.New(rand.NewSource(83)))
		} else {
			_, err = RunPhase(model, parts, c, rand.New(rand.NewSource(83)))
		}
		if err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, p := range model.ParamTensors() {
			flat = append(flat, p.Data()...)
		}
		return flat
	}

	for _, concurrent := range []bool{false, true} {
		plain := run(concurrent, nil)
		traced := run(concurrent, testPipeline(len(parts)))
		if len(plain) != len(traced) {
			t.Fatalf("param count mismatch: %d vs %d", len(plain), len(traced))
		}
		for i := range plain {
			if plain[i] != traced[i] {
				t.Fatalf("concurrent=%v: param elem %d differs with telemetry: %g vs %g",
					concurrent, i, plain[i], traced[i])
			}
		}
	}
}
