package fl

import (
	"math"
	"math/rand"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/tensor"
)

func testSetup(t *testing.T, nClients int, alpha float64) (*nn.Model, []*data.Dataset, *data.Dataset) {
	t.Helper()
	spec := data.MNISTLike(8, 12)
	train, test := data.Generate(spec, 1)
	rng := rand.New(rand.NewSource(2))
	var parts []*data.Dataset
	if alpha <= 0 {
		parts = data.PartitionIID(train, nClients, rng)
	} else {
		parts = data.PartitionDirichlet(train, nClients, alpha, rng)
	}
	cfg := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	model := nn.NewConvNet(cfg, rand.New(rand.NewSource(3)))
	return model, parts, test
}

func TestPhaseConfigValidate(t *testing.T) {
	good := PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 8, LR: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PhaseConfig{
		{Rounds: -1, LocalSteps: 1, BatchSize: 1, LR: 0.1},
		{Rounds: 1, LocalSteps: 0, BatchSize: 1, LR: 0.1},
		{Rounds: 1, LocalSteps: 1, BatchSize: 0, LR: 0.1},
		{Rounds: 1, LocalSteps: 1, BatchSize: 1, LR: 0},
		{Rounds: 1, LocalSteps: 1, BatchSize: 1, LR: 0.1, Participation: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestRunPhaseRejectsNoData(t *testing.T) {
	model, _, _ := testSetup(t, 2, 0)
	empty := []*data.Dataset{nil, data.NewDataset(8, 8, 1, 10)}
	_, err := RunPhase(model, empty, PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 4, LR: 0.01}, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("expected error when no client has data")
	}
}

func TestFedAvgLearns(t *testing.T) {
	model, parts, test := testSetup(t, 4, 0)
	before := eval.Accuracy(model, test)
	var counter optim.Counter
	res, err := RunPhase(model, parts, PhaseConfig{
		Rounds: 12, LocalSteps: 5, BatchSize: 16, LR: 0.1, Counter: &counter,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	after := eval.Accuracy(model, test)
	if after < 0.7 {
		t.Fatalf("accuracy after training %.2f (before %.2f) — FedAvg failed to learn", after, before)
	}
	if counter.GradEvals == 0 {
		t.Fatal("counter must record gradient evaluations")
	}
	if res.Rounds != 12 || len(res.ClientsPerRnd) != 12 {
		t.Fatalf("result bookkeeping wrong: %+v", res)
	}
}

func TestFedAvgLearnsNonIID(t *testing.T) {
	model, parts, test := testSetup(t, 4, 0.1)
	if _, err := RunPhase(model, parts, PhaseConfig{
		Rounds: 15, LocalSteps: 5, BatchSize: 16, LR: 0.1,
	}, rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	if acc := eval.Accuracy(model, test); acc < 0.55 {
		t.Fatalf("non-IID accuracy %.2f too low", acc)
	}
}

func TestPartialParticipation(t *testing.T) {
	model, parts, _ := testSetup(t, 10, 0)
	res, err := RunPhase(model, parts, PhaseConfig{
		Rounds: 3, LocalSteps: 1, BatchSize: 8, LR: 0.01, Participation: 0.3,
	}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.ClientsPerRnd {
		if n != 3 {
			t.Fatalf("expected 3 clients per round, got %v", res.ClientsPerRnd)
		}
	}
}

func TestHookObservesSteps(t *testing.T) {
	model, parts, _ := testSetup(t, 2, 0)
	var seen []StepContext
	_, err := RunPhase(model, parts, PhaseConfig{
		Rounds: 2, LocalSteps: 3, BatchSize: 4, LR: 0.01,
		Hook: func(ctx StepContext) { seen = append(seen, ctx) },
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2*3*2 { // rounds × steps × clients
		t.Fatalf("hook fired %d times, want 12", len(seen))
	}
	for _, ctx := range seen {
		if len(ctx.BatchIdx) == 0 || ctx.Model == nil || ctx.Client == nil {
			t.Fatalf("incomplete context %+v", ctx)
		}
	}
}

func TestGradientAscentRaisesLoss(t *testing.T) {
	// Train first, then run one ascent phase on one class and check that
	// accuracy on that class collapses.
	model, parts, test := testSetup(t, 2, 0)
	if _, err := RunPhase(model, parts, PhaseConfig{Rounds: 12, LocalSteps: 5, BatchSize: 16, LR: 0.1},
		rand.New(rand.NewSource(8))); err != nil {
		t.Fatal(err)
	}
	target := 3
	fBefore, _ := eval.ClassSplit(model, test, target)

	forgetShards := make([]*data.Dataset, len(parts))
	for i, p := range parts {
		forgetShards[i] = p.OfClass(target)
	}
	if _, err := RunPhase(model, forgetShards, PhaseConfig{
		Rounds: 1, LocalSteps: 5, BatchSize: 16, LR: 0.02, Dir: optim.Ascend,
	}, rand.New(rand.NewSource(9))); err != nil {
		t.Fatal(err)
	}
	fAfter, _ := eval.ClassSplit(model, test, target)
	if fAfter >= fBefore || fAfter > 0.2 {
		t.Fatalf("ascent did not unlearn: F-Set %.2f → %.2f", fBefore, fAfter)
	}
}

func TestAverageParams(t *testing.T) {
	a := []*tensor.Tensor{tensor.FromSlice([]float64{2}, 1)}
	b := []*tensor.Tensor{tensor.FromSlice([]float64{6}, 1)}
	avg := AverageParams([][]*tensor.Tensor{a, b}, []float64{1, 3})
	if math.Abs(avg[0].Data()[0]-5) > 1e-12 { // (2·1 + 6·3)/4
		t.Fatalf("avg = %g, want 5", avg[0].Data()[0])
	}
}

func TestAverageParamsValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AverageParams(nil, nil)
}

func TestAggregationIsWeightedMeanOfClientModels(t *testing.T) {
	// With one round and two clients, the server model must equal the
	// weighted average of the two post-local-step client models. We verify
	// by replaying client training deterministically.
	model, parts, _ := testSetup(t, 2, 0)
	w := []float64{float64(parts[0].Len()), float64(parts[1].Len())}

	init := model.CloneParams()
	seedRng := rand.New(rand.NewSource(11))
	if _, err := RunPhase(model, parts, PhaseConfig{Rounds: 1, LocalSteps: 2, BatchSize: 8, LR: 0.05},
		seedRng); err != nil {
		t.Fatal(err)
	}
	got := model.CloneParams()

	// Replay: same RNG construction as RunPhase.
	replayRng := rand.New(rand.NewSource(11))
	clientRngs := []*rand.Rand{
		rand.New(rand.NewSource(replayRng.Int63())),
		rand.New(rand.NewSource(replayRng.Int63())),
	}
	var sets [][]*tensor.Tensor
	for ci := 0; ci < 2; ci++ {
		model.SetParams(init)
		runLocalSteps(model, parts[ci], PhaseConfig{Rounds: 1, LocalSteps: 2, BatchSize: 8, LR: 0.05}, 0, ci, clientRngs[ci])
		sets = append(sets, model.CloneParams())
	}
	want := AverageParams(sets, w)
	for i := range got {
		for j := range got[i].Data() {
			if math.Abs(got[i].Data()[j]-want[i].Data()[j]) > 1e-9 {
				t.Fatal("server model is not the weighted client average")
			}
		}
	}
}
