package fl

import (
	"math/rand"
	"testing"
	"time"

	"quickdrop/internal/telemetry"
)

// TestAnalyzerAttributesSlowClient drives a real sequential phase with
// a hand-cranked telemetry clock that charges client 2 ten times the
// wall time of its peers, then checks the span analyzer pins every
// round's critical path on that client — the end-to-end straggler
// attribution the flight recorder exists for.
func TestAnalyzerAttributesSlowClient(t *testing.T) {
	var now int64
	restore := telemetry.SetClockForTesting(func() int64 { return now })
	defer restore()

	_, parts, _ := testSetup(t, 3, 0)
	_, model := testFactory()
	pipe := testPipeline(len(parts))

	const slow = 2
	rounds, steps := 4, 5
	cfg := PhaseConfig{
		Rounds: rounds, LocalSteps: steps, BatchSize: 8, LR: 0.05,
		Telemetry: pipe, Phase: "train",
		Hook: func(ctx StepContext) {
			// Advance the clock inside the client span: 10ms per step
			// for the slow client, 1ms for everyone else.
			if ctx.ClientID == slow {
				now += int64(10 * time.Millisecond)
			} else {
				now += int64(time.Millisecond)
			}
		},
	}
	if _, err := RunPhase(model, parts, cfg, rand.New(rand.NewSource(90))); err != nil {
		t.Fatal(err)
	}

	an := pipe.Tracer.Analyze()
	if len(an.Rounds) != rounds {
		t.Fatalf("analyzed %d rounds, want %d", len(an.Rounds), rounds)
	}
	for _, r := range an.Rounds {
		if r.Straggler != slow {
			t.Errorf("round %d critical path attributed to client %d, want %d", r.Round, r.Straggler, slow)
		}
		if r.Slowdown != 10 {
			t.Errorf("round %d slowdown = %v, want 10 (50ms vs 5ms median)", r.Round, r.Slowdown)
		}
	}
	worst := an.Straggler()
	if worst == nil || worst.Client != slow || worst.Dominated != rounds {
		t.Fatalf("headline straggler = %+v, want client %d dominating all %d rounds", worst, slow, rounds)
	}

	// The recorder saw the same rounds: per-client series carry one
	// point per round, and the slow client's durations dwarf the rest.
	if id, ok := pipe.Series.ID("fl_client_2_seconds"); !ok {
		t.Fatal("per-client series missing")
	} else {
		pts := pipe.Series.Points(id)
		if len(pts) != rounds {
			t.Fatalf("slow client series has %d points, want %d", len(pts), rounds)
		}
		for _, p := range pts {
			if p.Y != 0.05 {
				t.Errorf("slow client round duration = %v, want 0.05s", p.Y)
			}
		}
	}
	if total := pipe.Series.Total(func() telemetry.SeriesID {
		id, _ := pipe.Series.ID("train_loss")
		return id
	}()); total != uint64(rounds*steps*len(parts)) {
		t.Errorf("loss series recorded %d points, want %d", total, rounds*steps*len(parts))
	}
}
