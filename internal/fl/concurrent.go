package fl

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
	"quickdrop/internal/tensor"
)

// ModelFactory builds a fresh model with the training architecture.
// Pool workers each own a private instance; parameters are exchanged by
// value, as in a real deployment.
type ModelFactory func() *nn.Model

// clientTask is the server's order to a pool worker: run one client's
// local steps for one round. global is a shared read-only snapshot
// (SetParams copies out of it); rng is the client's private stream.
type clientTask struct {
	round    int
	clientID int
	rng      *rand.Rand
	global   []*tensor.Tensor
}

// clientUpdate is the message a worker sends back to the server after
// finishing a client's local steps.
type clientUpdate struct {
	clientID int
	round    int
	params   []*tensor.Tensor
	weight   float64
	samples  int
	err      error
}

// RunPhaseConcurrent executes the same FedAvg phase as RunPhase with a
// bounded worker pool — the slice-shaped convenience wrapper over
// RunPhaseConcurrentRegistry.
func RunPhaseConcurrent(ctx context.Context, model *nn.Model, factory ModelFactory,
	clients []*data.Dataset, cfg PhaseConfig, rng *rand.Rand) (PhaseResult, error) {
	return RunPhaseConcurrentRegistry(ctx, model, factory, data.NewCohort(clients), cfg, rng)
}

// RunPhaseConcurrentRegistry executes a FedAvg phase over a client
// registry with cfg.Workers pool workers (GOMAXPROCS when 0), each
// owning one private model reused across every client it serves — so
// concurrent memory is O(workers · model), not O(clients · model) as
// with the previous goroutine-per-client runner. Updates are folded
// into a streaming aggregator in ascending client-ID order regardless
// of arrival order, so the result is bit-for-bit identical to the
// sequential runner under the same config (with full participation in
// legacy mode, and unconditionally in sampled mode) and independent of
// the pool size.
//
// cfg.Hook and cfg.UpdateHook must be nil or safe for concurrent use
// (UpdateHook itself is invoked serially on the server, in fold order);
// cfg.WeightFn and cfg.DropoutProb are honoured. ctx cancels mid-phase.
// The registry's Shard must be safe for concurrent calls with distinct
// IDs, which both data.Cohort and data.LazyCohort are.
func RunPhaseConcurrentRegistry(ctx context.Context, model *nn.Model, factory ModelFactory,
	reg ClientRegistry, cfg PhaseConfig, rng *rand.Rand) (PhaseResult, error) {
	if err := cfg.Validate(); err != nil {
		return PhaseResult{}, err
	}
	if factory == nil {
		return PhaseResult{}, fmt.Errorf("fl: RunPhaseConcurrent needs a model factory")
	}
	if reg == nil || reg.NumClients() == 0 {
		return PhaseResult{}, errNoData()
	}
	sampled := cfg.SampleK > 0
	var eligible []int
	if !sampled {
		eligible = make([]int, 0, reg.NumClients())
		for i := 0; i < reg.NumClients(); i++ {
			if reg.ShardLen(i) > 0 {
				eligible = append(eligible, i)
			}
		}
		if len(eligible) == 0 {
			return PhaseResult{}, errNoData()
		}
	}

	res := PhaseResult{Rounds: cfg.Rounds}
	pt := cfg.Telemetry.StartPhase(cfg.phaseName())
	cfg.Health.BeginPhase(cfg.phaseName())

	// Mirror the sequential runners' RNG layout exactly so trajectories
	// coincide: legacy mode pre-seeds one stream per registered client,
	// sampled mode derives streams from one phase seed.
	var clientRngs []*rand.Rand
	var phaseSeed int64
	if sampled {
		phaseSeed = rng.Int63()
	} else {
		clientRngs = make([]*rand.Rand, reg.NumClients())
		for i := range clientRngs {
			clientRngs[i] = rand.New(rand.NewSource(rng.Int63()))
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tasks := make(chan clientTask)
	updates := make(chan clientUpdate, workers)
	workerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		go poolWorker(workerCtx, factory, reg, cfg, tasks, updates)
	}

	// One reusable global snapshot: workers only read it (SetParams
	// copies), and the server rewrites it only between rounds, when no
	// task is in flight.
	global := model.CloneParams()
	agg := NewStreamAggregator(global)
	for round := 0; round < cfg.Rounds; round++ {
		var selected []int
		if sampled {
			selected = sampleClientIDs(reg, cfg.SampleK, rng)
			if len(selected) == 0 {
				return res, errNoData()
			}
		} else {
			selected = selectClients(eligible, cfg.Participation, rng)
		}
		res.ClientsPerRnd = append(res.ClientsPerRnd, len(selected))
		rs := cfg.Telemetry.StartRound(round)
		for i, p := range model.ParamTensors() {
			global[i].CopyFrom(p)
		}
		agg.Reset()

		// Fold frontier: ascending client IDs, whatever order tasks are
		// dispatched or completed in. Legacy partial participation
		// dispatches in selection order but folds sorted, exactly like
		// the previous runner's sort-then-aggregate.
		order := selected
		if !sort.IntsAreSorted(order) {
			order = append([]int(nil), selected...)
			sort.Ints(order)
		}
		pending := make(map[int]clientUpdate, workers)
		sent, next := 0, 0
		for next < len(order) {
			var sendCh chan clientTask
			var task clientTask
			if sent < len(selected) {
				ci := selected[sent]
				task = clientTask{round: round, clientID: ci, global: global}
				if sampled {
					task.rng = rand.New(rand.NewSource(data.DeriveSeed(phaseSeed, int64(round), int64(ci))))
				} else {
					task.rng = clientRngs[ci]
				}
				sendCh = tasks // nil channel (no task left) disables this case
			}
			select {
			case sendCh <- task:
				sent++
			case u := <-updates:
				if u.err != nil {
					return res, fmt.Errorf("fl: client %d round %d: %w", u.clientID, u.round, u.err)
				}
				pending[u.clientID] = u
				for next < len(order) {
					ready, ok := pending[order[next]]
					if !ok {
						break
					}
					delete(pending, order[next])
					next++
					if cfg.DropoutProb > 0 && rng.Float64() < cfg.DropoutProb {
						res.Dropped++
						cfg.Telemetry.DropUpdate()
						continue
					}
					if cfg.UpdateHook != nil {
						cfg.UpdateHook(ready.round, ready.clientID, cloneAll(global), cloneAll(ready.params))
					}
					w := ready.weight
					if cfg.WeightFn != nil {
						w = cfg.WeightFn(ready.clientID, ready.samples)
					}
					if w <= 0 {
						continue
					}
					res.SamplesUsed += ready.samples
					agg.Fold(ready.params, w)
				}
			case <-ctx.Done():
				return res, ctx.Err()
			}
		}
		if agg.TotalWeight() == 0 {
			if cfg.DropoutProb > 0 {
				cfg.Telemetry.EndRound(rs, len(selected))
				continue
			}
			return res, fmt.Errorf("fl: round %d aggregated zero weight", round)
		}
		model.SetParams(agg.Finish())
		cfg.Telemetry.EndRound(rs, len(selected))
		if err := healthRound(cfg, round, model); err != nil {
			res.WallTime = pt.Stop()
			return res, err
		}
	}
	res.WallTime = pt.Stop()
	return res, nil
}

// poolWorker serves client tasks until the phase ends. It owns one
// private model for its whole lifetime; shards are materialized from
// the registry per task and released after the update ships.
func poolWorker(ctx context.Context, factory ModelFactory, reg ClientRegistry, cfg PhaseConfig,
	tasks <-chan clientTask, updates chan<- clientUpdate) {
	local := factory()
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-tasks:
			u := clientUpdate{clientID: t.clientID, round: t.round}
			func() {
				defer func() {
					if r := recover(); r != nil {
						u.err = fmt.Errorf("client panic: %v", r)
					}
				}()
				shard := reg.Shard(t.clientID)
				u.weight = float64(shard.Len())
				u.samples = shard.Len()
				local.SetParams(t.global)
				cs := cfg.Telemetry.StartClient(t.round, t.clientID)
				runLocalSteps(local, shard, cfg, t.round, t.clientID, t.rng)
				cfg.Telemetry.EndClient(cs)
				u.params = local.CloneParams()
			}()
			select {
			case updates <- u:
			case <-ctx.Done():
				return
			}
		}
	}
}
