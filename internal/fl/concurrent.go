package fl

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
	"quickdrop/internal/tensor"
)

// ModelFactory builds a fresh model with the training architecture.
// Concurrent clients each own a private instance; parameters are
// exchanged by value, as in a real deployment.
type ModelFactory func() *nn.Model

// clientUpdate is the message a client sends back to the server after
// finishing its local steps for a round.
type clientUpdate struct {
	clientID int
	round    int
	params   []*tensor.Tensor
	weight   float64
	samples  int
	err      error
}

// roundOrder is the broadcast from server to a client worker.
type roundOrder struct {
	round  int
	global []*tensor.Tensor
}

// RunPhaseConcurrent executes the same FedAvg phase as RunPhase but with
// one goroutine per client exchanging messages with the server over
// channels — the shape of a real parameter-server deployment. Updates are
// aggregated in client-ID order, so with full participation and no hook
// the result is bit-for-bit identical to the sequential RunPhase.
//
// cfg.Hook and cfg.UpdateHook must be nil or safe for concurrent use;
// cfg.WeightFn and cfg.DropoutProb are honoured. ctx cancels mid-phase.
func RunPhaseConcurrent(ctx context.Context, model *nn.Model, factory ModelFactory,
	clients []*data.Dataset, cfg PhaseConfig, rng *rand.Rand) (PhaseResult, error) {
	if err := cfg.Validate(); err != nil {
		return PhaseResult{}, err
	}
	if factory == nil {
		return PhaseResult{}, fmt.Errorf("fl: RunPhaseConcurrent needs a model factory")
	}
	eligible := make([]int, 0, len(clients))
	for i, c := range clients {
		if c != nil && c.Len() > 0 {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return PhaseResult{}, fmt.Errorf("fl: no client has data for this phase")
	}

	res := PhaseResult{Rounds: cfg.Rounds}
	pt := cfg.Telemetry.StartPhase(cfg.phaseName())

	// Mirror RunPhase's RNG layout exactly so trajectories coincide.
	clientRngs := make([]*rand.Rand, len(clients))
	for i := range clients {
		clientRngs[i] = rand.New(rand.NewSource(rng.Int63()))
	}

	// One long-lived worker per client: local model owned by the
	// goroutine, orders in, updates out. Channels are buffered size 1
	// (one outstanding round per client).
	orders := make([]chan roundOrder, len(clients))
	updates := make(chan clientUpdate, len(clients))
	workerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for _, ci := range eligible {
		orders[ci] = make(chan roundOrder, 1)
		go clientWorker(workerCtx, ci, factory, clients[ci], cfg, clientRngs[ci], orders[ci], updates)
	}

	for round := 0; round < cfg.Rounds; round++ {
		selected := selectClients(eligible, cfg.Participation, rng)
		res.ClientsPerRnd = append(res.ClientsPerRnd, len(selected))
		rs := cfg.Telemetry.StartRound(round)
		global := model.CloneParams()
		for _, ci := range selected {
			select {
			case orders[ci] <- roundOrder{round: round, global: cloneAll(global)}:
			case <-ctx.Done():
				return res, ctx.Err()
			}
		}

		received := make([]clientUpdate, 0, len(selected))
		for range selected {
			select {
			case u := <-updates:
				if u.err != nil {
					return res, fmt.Errorf("fl: client %d round %d: %w", u.clientID, u.round, u.err)
				}
				received = append(received, u)
			case <-ctx.Done():
				return res, ctx.Err()
			}
		}
		// Deterministic aggregation order regardless of arrival order.
		sort.Slice(received, func(a, b int) bool { return received[a].clientID < received[b].clientID })

		agg := zerosLike(global)
		totalWeight := 0.0
		for _, u := range received {
			if cfg.DropoutProb > 0 && rng.Float64() < cfg.DropoutProb {
				res.Dropped++
				cfg.Telemetry.DropUpdate()
				continue
			}
			w := u.weight
			if cfg.WeightFn != nil {
				w = cfg.WeightFn(u.clientID, u.samples)
			}
			if w <= 0 {
				continue
			}
			totalWeight += w
			res.SamplesUsed += u.samples
			for j := range agg {
				agg[j].AxpyInPlace(w, u.params[j])
			}
		}
		if totalWeight == 0 {
			if cfg.DropoutProb > 0 {
				cfg.Telemetry.EndRound(rs, len(selected))
				continue
			}
			return res, fmt.Errorf("fl: round %d aggregated zero weight", round)
		}
		for _, t := range agg {
			t.ScaleInPlace(1 / totalWeight)
		}
		model.SetParams(agg)
		cfg.Telemetry.EndRound(rs, len(selected))
	}
	res.WallTime = pt.Stop()
	return res, nil
}

// clientWorker owns one client's private model and serves round orders
// until the context is cancelled.
func clientWorker(ctx context.Context, clientID int, factory ModelFactory, ds *data.Dataset,
	cfg PhaseConfig, rng *rand.Rand, orders <-chan roundOrder, updates chan<- clientUpdate) {
	local := factory()
	for {
		select {
		case <-ctx.Done():
			return
		case order := <-orders:
			u := clientUpdate{clientID: clientID, round: order.round,
				weight: float64(ds.Len()), samples: ds.Len()}
			func() {
				defer func() {
					if r := recover(); r != nil {
						u.err = fmt.Errorf("client panic: %v", r)
					}
				}()
				local.SetParams(order.global)
				cs := cfg.Telemetry.StartClient(order.round, clientID)
				runLocalSteps(local, ds, cfg, order.round, clientID, rng)
				cfg.Telemetry.EndClient(cs)
				u.params = local.CloneParams()
			}()
			select {
			case updates <- u:
			case <-ctx.Done():
				return
			}
		}
	}
}
