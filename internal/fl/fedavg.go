// Package fl implements the federated-averaging substrate that QuickDrop
// and all baselines run on: clients hold private datasets, a logical
// parameter server orchestrates rounds, and every phase of the paper's
// Algorithm 1 — training, unlearning (gradient ascent), recovery,
// relearning — is a FedAvg phase differing only in data, direction and
// round count.
package fl

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/data"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/telemetry"
	"quickdrop/internal/telemetry/health"
	"quickdrop/internal/tensor"
)

// StepContext is passed to a LocalStepHook after each local update step.
// It is the attachment point for in-situ dataset distillation (Algorithm 2
// runs gradient matching here, reusing the client's current model state).
type StepContext struct {
	Round    int
	Step     int
	ClientID int
	// Model is the client's live local model; parameters may be read but
	// must not be mutated by hooks.
	Model *nn.Model
	// Client is the dataset the step sampled from.
	Client *data.Dataset
	// BatchIdx are the dataset indices of the just-consumed minibatch.
	BatchIdx []int
	// Rng is the client's deterministic RNG stream.
	Rng *rand.Rand
}

// LocalStepHook observes client-local update steps.
type LocalStepHook func(ctx StepContext)

// PhaseConfig configures one FedAvg phase (Algorithm 1's FedAvg routine).
type PhaseConfig struct {
	Rounds     int
	LocalSteps int // T in the paper
	BatchSize  int
	LR         float64 // η_θ
	// Dir selects SGD (training/recovery/relearning) or SGA (unlearning).
	Dir optim.Direction
	// Participation is the fraction of eligible clients sampled per round;
	// 0 or 1 means full participation.
	Participation float64
	// SampleK, when positive, switches the phase into sampled mode: each
	// round draws K distinct eligible clients from the registry by
	// rejection sampling — without enumerating or allocating anything
	// proportional to the registered cohort — and per-client RNG streams
	// are derived from (phase seed, round, client ID) instead of being
	// pre-seeded per client. Sampled mode is the only way to run
	// registry-scale cohorts (millions of clients); it is mutually
	// exclusive with Participation. SampleK of 0 keeps the legacy
	// participation-fraction semantics bit for bit.
	SampleK int
	// Workers bounds the concurrent runner's worker pool; 0 selects
	// GOMAXPROCS. The pool size never affects numerics: aggregation
	// folds in ascending client-ID order regardless of arrival order.
	Workers int
	// Hook, if set, runs after every local step.
	Hook LocalStepHook
	// UpdateHook, if set, receives each participating client's model
	// parameters before and after its local steps (cloned). FedEraser uses
	// this to record the historical updates it later calibrates.
	UpdateHook func(round, clientID int, before, after []*tensor.Tensor)
	// WeightFn, if set, overrides the aggregation weight of a client
	// (default |Z_i|). S2U uses this to scale the forgetting client down
	// and the remaining clients up.
	WeightFn func(clientID, datasetSize int) float64
	// DropoutProb injects client failures: each selected client crashes
	// after its local steps with this probability, so its update never
	// reaches the server. Rounds where every client fails leave the
	// global model unchanged (the server just moves on).
	DropoutProb float64
	// Counter, if set, accumulates gradient-evaluation costs.
	Counter *optim.Counter
	// Telemetry, if set, records round/client metrics and spans for this
	// phase. A nil pipeline is free: every record call is a nil-receiver
	// no-op and the hot path reads no clock.
	Telemetry *telemetry.Pipeline
	// Health, if set, watches the phase's numerics: per-step losses feed
	// the NaN tripwire and spike detector, the optimizer samples
	// per-layer gradient norms, and each aggregated round is gated on
	// the divergence watchdog — a tripped watchdog aborts the phase with
	// an error unwrapping to health.ErrUnhealthy. Observation is
	// read-only: trajectories are bitwise identical with or without a
	// monitor. A nil monitor is free (nil-receiver no-ops).
	Health *health.Monitor
	// Phase names this phase in telemetry ("train", "unlearn", …).
	// Empty means "fedavg".
	Phase string
}

// phaseName returns the telemetry label for this phase.
func (c PhaseConfig) phaseName() string {
	if c.Phase != "" {
		return c.Phase
	}
	return "fedavg"
}

// Validate reports configuration errors.
func (c PhaseConfig) Validate() error {
	if c.Rounds < 0 || c.LocalSteps <= 0 || c.BatchSize <= 0 || c.LR <= 0 {
		return fmt.Errorf("fl: invalid phase config %+v", c)
	}
	if c.Participation < 0 || c.Participation > 1 {
		return fmt.Errorf("fl: participation %v out of [0,1]", c.Participation)
	}
	if c.DropoutProb < 0 || c.DropoutProb >= 1 {
		return fmt.Errorf("fl: dropout probability %v out of [0,1)", c.DropoutProb)
	}
	if c.SampleK < 0 {
		return fmt.Errorf("fl: sample-k %d must be non-negative", c.SampleK)
	}
	if c.SampleK > 0 && c.Participation > 0 && c.Participation < 1 {
		return fmt.Errorf("fl: SampleK and Participation are mutually exclusive (got K=%d, fraction=%v)",
			c.SampleK, c.Participation)
	}
	if c.Workers < 0 {
		return fmt.Errorf("fl: workers %d must be non-negative", c.Workers)
	}
	return nil
}

// PhaseResult reports what a phase did.
type PhaseResult struct {
	Rounds        int
	WallTime      time.Duration
	SamplesUsed   int // total samples across participating clients
	ClientsPerRnd []int
	// Dropped counts client updates lost to injected failures.
	Dropped int
}

// RunPhase executes FedAvg over the given per-client datasets, mutating
// model in place. Clients with empty datasets are skipped (paper, Alg. 1:
// only clients with non-empty shards participate). The aggregation is the
// |Z_i|/|Z| weighted average over the round's participants.
//
// This is the slice-shaped convenience entry point: it wraps the slice
// in a data.Cohort and runs RunPhaseRegistry, which preserves the
// historical behaviour bit for bit.
func RunPhase(model *nn.Model, clients []*data.Dataset, cfg PhaseConfig, rng *rand.Rand) (PhaseResult, error) {
	return RunPhaseRegistry(model, data.NewCohort(clients), cfg, rng)
}

// RunPhaseRegistry executes FedAvg over a client registry, mutating
// model in place. With cfg.SampleK == 0 it replicates the historical
// slice-based RunPhase exactly — same RNG consumption, same fold order,
// same floats — over whatever the registry materializes. With SampleK >
// 0 it runs in sampled mode: per-round participant sets are drawn from
// the registry without enumerating the cohort, per-client RNG streams
// are derived from (phase seed, round, client ID), and per-round cost
// is O(K·shard + model) regardless of NumClients.
func RunPhaseRegistry(model *nn.Model, reg ClientRegistry, cfg PhaseConfig, rng *rand.Rand) (PhaseResult, error) {
	if err := cfg.Validate(); err != nil {
		return PhaseResult{}, err
	}
	if reg == nil || reg.NumClients() == 0 {
		return PhaseResult{}, errNoData()
	}
	if cfg.SampleK > 0 {
		return runSampledPhase(model, reg, cfg, rng)
	}
	eligible := make([]int, 0, reg.NumClients())
	for i := 0; i < reg.NumClients(); i++ {
		if reg.ShardLen(i) > 0 {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return PhaseResult{}, errNoData()
	}

	res := PhaseResult{Rounds: cfg.Rounds}
	// The phase timer replaces ad-hoc time.Now accounting: it measures
	// wall time whether or not a telemetry pipeline is attached, and the
	// reading flows only into PhaseResult/eval.Cost — never the numerics.
	pt := cfg.Telemetry.StartPhase(cfg.phaseName())
	cfg.Health.BeginPhase(cfg.phaseName())
	// Per-client RNG streams keep client behaviour independent of the
	// participation schedule. Legacy mode seeds one stream per
	// registered client — O(N), acceptable for the slice-scale cohorts
	// this mode exists for — because that is exactly what the historical
	// runner consumed from rng.
	clientRngs := make([]*rand.Rand, reg.NumClients())
	for i := range clientRngs {
		clientRngs[i] = rand.New(rand.NewSource(rng.Int63()))
	}

	// Snapshot and aggregation buffers are allocated once and reused
	// across rounds: parameter shapes never change mid-phase.
	global := model.CloneParams()
	agg := NewStreamAggregator(global)
	for round := 0; round < cfg.Rounds; round++ {
		selected := selectClients(eligible, cfg.Participation, rng)
		res.ClientsPerRnd = append(res.ClientsPerRnd, len(selected))
		rs := cfg.Telemetry.StartRound(round)

		for i, p := range model.ParamTensors() {
			global[i].CopyFrom(p)
		}
		agg.Reset()
		for _, ci := range selected {
			// Materialize once per selection: a lazy registry re-renders
			// the shard on every Shard call.
			shard := reg.Shard(ci)
			model.SetParams(global)
			cs := cfg.Telemetry.StartClient(round, ci)
			runLocalSteps(model, shard, cfg, round, ci, clientRngs[ci])
			cfg.Telemetry.EndClient(cs)
			if cfg.DropoutProb > 0 && rng.Float64() < cfg.DropoutProb {
				res.Dropped++
				cfg.Telemetry.DropUpdate()
				continue // the client crashed; its update is lost
			}
			if cfg.UpdateHook != nil {
				cfg.UpdateHook(round, ci, cloneAll(global), model.CloneParams())
			}
			w := float64(shard.Len())
			if cfg.WeightFn != nil {
				w = cfg.WeightFn(ci, shard.Len())
			}
			if w <= 0 {
				continue
			}
			res.SamplesUsed += shard.Len()
			agg.Fold(model.ParamTensors(), w)
		}
		if agg.TotalWeight() == 0 {
			if cfg.DropoutProb > 0 {
				// Every participant failed this round; the server keeps
				// the previous global model and proceeds.
				model.SetParams(global)
				cfg.Telemetry.EndRound(rs, len(selected))
				continue
			}
			return res, fmt.Errorf("fl: round %d aggregated zero weight", round)
		}
		model.SetParams(agg.Finish())
		cfg.Telemetry.EndRound(rs, len(selected))
		if err := healthRound(cfg, round, model); err != nil {
			res.WallTime = pt.Stop()
			return res, err
		}
	}
	res.WallTime = pt.Stop()
	return res, nil
}

// runSampledPhase is the SampleK > 0 runner: no eligibility scan, no
// per-client RNG array, no per-round allocation proportional to the
// cohort. Per-client streams are derived as DeriveSeed(phaseSeed,
// round, clientID) so a client's local noise depends on its identity
// and the round, never on which other clients were sampled — the
// property that lets the concurrent runner reproduce this trajectory
// bit for bit from any worker schedule.
func runSampledPhase(model *nn.Model, reg ClientRegistry, cfg PhaseConfig, rng *rand.Rand) (PhaseResult, error) {
	res := PhaseResult{Rounds: cfg.Rounds}
	pt := cfg.Telemetry.StartPhase(cfg.phaseName())
	cfg.Health.BeginPhase(cfg.phaseName())
	phaseSeed := rng.Int63()

	global := model.CloneParams()
	agg := NewStreamAggregator(global)
	for round := 0; round < cfg.Rounds; round++ {
		// Ascending client-ID order: local steps, dropout draws and
		// aggregation folds all walk this order, which pins the server
		// RNG stream and the float fold order for both runners.
		selected := sampleClientIDs(reg, cfg.SampleK, rng)
		if len(selected) == 0 {
			return res, errNoData()
		}
		res.ClientsPerRnd = append(res.ClientsPerRnd, len(selected))
		rs := cfg.Telemetry.StartRound(round)

		for i, p := range model.ParamTensors() {
			global[i].CopyFrom(p)
		}
		agg.Reset()
		for _, ci := range selected {
			shard := reg.Shard(ci)
			crng := rand.New(rand.NewSource(data.DeriveSeed(phaseSeed, int64(round), int64(ci))))
			model.SetParams(global)
			cs := cfg.Telemetry.StartClient(round, ci)
			runLocalSteps(model, shard, cfg, round, ci, crng)
			cfg.Telemetry.EndClient(cs)
			if cfg.DropoutProb > 0 && rng.Float64() < cfg.DropoutProb {
				res.Dropped++
				cfg.Telemetry.DropUpdate()
				continue
			}
			if cfg.UpdateHook != nil {
				cfg.UpdateHook(round, ci, cloneAll(global), model.CloneParams())
			}
			w := float64(shard.Len())
			if cfg.WeightFn != nil {
				w = cfg.WeightFn(ci, shard.Len())
			}
			if w <= 0 {
				continue
			}
			res.SamplesUsed += shard.Len()
			agg.Fold(model.ParamTensors(), w)
		}
		if agg.TotalWeight() == 0 {
			if cfg.DropoutProb > 0 {
				model.SetParams(global)
				cfg.Telemetry.EndRound(rs, len(selected))
				continue
			}
			return res, fmt.Errorf("fl: round %d aggregated zero weight", round)
		}
		model.SetParams(agg.Finish())
		cfg.Telemetry.EndRound(rs, len(selected))
		if err := healthRound(cfg, round, model); err != nil {
			res.WallTime = pt.Stop()
			return res, err
		}
	}
	res.WallTime = pt.Stop()
	return res, nil
}

// runLocalSteps performs cfg.LocalSteps SGD/SGA updates on the client's
// local model.
//
//lint:hotpath
func runLocalSteps(model *nn.Model, client *data.Dataset, cfg PhaseConfig, round, clientID int, rng *rand.Rand) {
	opt := &optim.SGD{LR: cfg.LR, Dir: cfg.Dir, Health: cfg.Health}
	gt := make([]*tensor.Tensor, len(model.Params()))
	for step := 0; step < cfg.LocalSteps; step++ {
		idx := sampleIndices(rng, client.Len(), cfg.BatchSize)
		x, labels := client.Batch(idx)
		bound := model.Bind()
		loss := nn.CrossEntropy(bound.Forward(ad.Const(x)), nn.OneHot(labels, model.Classes))
		grads := ad.MustGrad(loss, bound.ParamVars())
		for i, g := range grads {
			gt[i] = g.Data
		}
		opt.Step(model.ParamTensors(), gt)
		if cfg.Counter != nil {
			cfg.Counter.AddBatch(len(idx))
		}
		cfg.Telemetry.LocalStep(clientID, len(idx))
		cfg.Telemetry.RecordLoss(float64(round*cfg.LocalSteps+step), loss.Data.Data()[0])
		cfg.Health.RecordLoss(float64(round*cfg.LocalSteps+step), loss.Data.Data()[0])
		if cfg.Hook != nil {
			cfg.Hook(StepContext{
				Round: round, Step: step, ClientID: clientID,
				Model: model, Client: client, BatchIdx: idx, Rng: rng,
			})
		}
	}
}

// healthRound feeds the aggregated global model's parameter L2 norm
// into the health monitor after one round and gates the phase on the
// divergence watchdog. Warm path: one blocked pass over the parameters
// per round, and only when a monitor is attached.
func healthRound(cfg PhaseConfig, round int, model *nn.Model) error {
	if cfg.Health == nil {
		return nil
	}
	sumsq, bad := 0.0, 0
	for _, p := range model.ParamTensors() {
		l2, nans, infs := tensor.NormStats(p)
		sumsq += l2 * l2
		bad += nans + infs
	}
	cfg.Health.RecordRound(float64(round), math.Sqrt(sumsq), bad)
	return cfg.Health.Check()
}

// selectClients samples a participation fraction of the eligible clients,
// always at least one.
func selectClients(eligible []int, participation float64, rng *rand.Rand) []int {
	if participation <= 0 || participation >= 1 {
		return eligible
	}
	k := int(participation * float64(len(eligible)))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(len(eligible))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = eligible[perm[i]]
	}
	return out
}

// sampleIndices draws a batch of up to n indices without replacement.
func sampleIndices(rng *rand.Rand, total, n int) []int {
	idx := rng.Perm(total)
	if n < len(idx) {
		idx = idx[:n]
	}
	return idx
}

func cloneAll(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

func zerosLike(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = tensor.NewLike(t)
	}
	return out
}

// AverageParams returns the weighted average of parameter sets; weights
// must be positive and aligned with sets.
func AverageParams(sets [][]*tensor.Tensor, weights []float64) []*tensor.Tensor {
	if len(sets) == 0 || len(sets) != len(weights) {
		panic(fmt.Sprintf("fl: AverageParams got %d sets and %d weights", len(sets), len(weights)))
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 {
			panic("fl: non-positive weight")
		}
		total += w
	}
	out := zerosLike(sets[0])
	for s, set := range sets {
		for i, t := range set {
			out[i].AxpyInPlace(weights[s]/total, t)
		}
	}
	return out
}
