package fl

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"quickdrop/internal/telemetry/health"
)

// TestHealthDoesNotPerturbTraining reruns the same seeded phase with
// and without a health monitor attached — at the densest sampling
// cadence — and requires bit-for-bit identical parameters in both the
// sequential and the concurrent runtime. The monitor observes gradient
// norms and losses but its readings never feed the numerics.
func TestHealthDoesNotPerturbTraining(t *testing.T) {
	_, parts, _ := testSetup(t, 3, 0)
	cfg := PhaseConfig{Rounds: 4, LocalSteps: 3, BatchSize: 8, LR: 0.05}

	run := func(concurrent bool, mon *health.Monitor) []float64 {
		t.Helper()
		factory, model := testFactory()
		c := cfg
		c.Health = mon
		var err error
		if concurrent {
			_, err = RunPhaseConcurrent(context.Background(), model, factory, parts, c,
				rand.New(rand.NewSource(84)))
		} else {
			_, err = RunPhase(model, parts, c, rand.New(rand.NewSource(84)))
		}
		if err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, p := range model.ParamTensors() {
			flat = append(flat, p.Data()...)
		}
		return flat
	}

	for _, concurrent := range []bool{false, true} {
		plain := run(concurrent, nil)
		watched := run(concurrent, health.New(health.Config{SampleEvery: 1}, nil))
		if len(plain) != len(watched) {
			t.Fatalf("param count mismatch: %d vs %d", len(plain), len(watched))
		}
		for i := range plain {
			if plain[i] != watched[i] {
				t.Fatalf("concurrent=%v: param elem %d differs with health monitoring: %g vs %g",
					concurrent, i, plain[i], watched[i])
			}
		}
	}
}

// TestHealthWatchdogAbortsPhase poisons the model with a NaN parameter
// and runs a phase under the watchdog: the round-boundary check must
// abort the phase with an error unwrapping to health.ErrUnhealthy, in
// both runtimes.
func TestHealthWatchdogAbortsPhase(t *testing.T) {
	_, parts, _ := testSetup(t, 3, 0)
	cfg := PhaseConfig{Rounds: 5, LocalSteps: 2, BatchSize: 8, LR: 0.05, Phase: "unlearn"}

	for _, concurrent := range []bool{false, true} {
		factory, model := testFactory()
		model.ParamTensors()[0].Data()[0] = math.NaN()
		c := cfg
		c.Health = health.New(health.Config{}, nil)
		var err error
		if concurrent {
			_, err = RunPhaseConcurrent(context.Background(), model, factory, parts, c,
				rand.New(rand.NewSource(85)))
		} else {
			_, err = RunPhase(model, parts, c, rand.New(rand.NewSource(85)))
		}
		if err == nil || !errors.Is(err, health.ErrUnhealthy) {
			t.Fatalf("concurrent=%v: err = %v, want health.ErrUnhealthy", concurrent, err)
		}
		var uh *health.UnhealthyError
		if !errors.As(err, &uh) {
			t.Fatalf("concurrent=%v: %v does not carry a watchdog verdict", concurrent, err)
		}
		if uh.Verdict.Phase != "unlearn" {
			t.Fatalf("concurrent=%v: verdict phase = %q, want unlearn", concurrent, uh.Verdict.Phase)
		}
	}
}
