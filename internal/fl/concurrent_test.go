package fl

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
)

func testFactory() (ModelFactory, *nn.Model) {
	cfg := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	factory := func() *nn.Model { return nn.NewConvNet(cfg, rand.New(rand.NewSource(99))) }
	return factory, nn.NewConvNet(cfg, rand.New(rand.NewSource(3)))
}

func TestConcurrentMatchesSequentialExactly(t *testing.T) {
	_, parts, _ := testSetup(t, 3, 0)
	factory, seqModel := testFactory()
	conModel := factory() // distinct instance…
	conModel.SetParams(seqModel.CloneParams())

	cfg := PhaseConfig{Rounds: 4, LocalSteps: 3, BatchSize: 8, LR: 0.05}
	if _, err := RunPhase(seqModel, parts, cfg, rand.New(rand.NewSource(70))); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPhaseConcurrent(context.Background(), conModel, factory, parts, cfg,
		rand.New(rand.NewSource(70))); err != nil {
		t.Fatal(err)
	}
	p1, p2 := seqModel.ParamTensors(), conModel.ParamTensors()
	for i := range p1 {
		for j := range p1[i].Data() {
			if p1[i].Data()[j] != p2[i].Data()[j] {
				t.Fatalf("param %d elem %d differs: %g vs %g", i, j, p1[i].Data()[j], p2[i].Data()[j])
			}
		}
	}
}

func TestConcurrentLearns(t *testing.T) {
	_, parts, test := testSetup(t, 4, 0)
	factory, model := testFactory()
	if _, err := RunPhaseConcurrent(context.Background(), model, factory, parts, PhaseConfig{
		Rounds: 12, LocalSteps: 5, BatchSize: 16, LR: 0.1,
	}, rand.New(rand.NewSource(71))); err != nil {
		t.Fatal(err)
	}
	if acc := eval.Accuracy(model, test); acc < 0.65 {
		t.Fatalf("concurrent training accuracy %.2f", acc)
	}
}

func TestConcurrentCancellation(t *testing.T) {
	_, parts, _ := testSetup(t, 2, 0)
	factory, model := testFactory()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunPhaseConcurrent(ctx, model, factory, parts, PhaseConfig{
		Rounds: 10000, LocalSteps: 5, BatchSize: 16, LR: 0.1,
	}, rand.New(rand.NewSource(72)))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestConcurrentValidation(t *testing.T) {
	_, parts, _ := testSetup(t, 2, 0)
	_, model := testFactory()
	if _, err := RunPhaseConcurrent(context.Background(), model, nil, parts,
		PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 4, LR: 0.1},
		rand.New(rand.NewSource(73))); err == nil {
		t.Fatal("expected error for missing factory")
	}
	factory, _ := testFactory()
	empty := []*data.Dataset{nil}
	if _, err := RunPhaseConcurrent(context.Background(), model, factory, empty,
		PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 4, LR: 0.1},
		rand.New(rand.NewSource(74))); err == nil {
		t.Fatal("expected error for no data")
	}
}

func TestConcurrentPartialParticipation(t *testing.T) {
	_, parts, _ := testSetup(t, 6, 0)
	factory, model := testFactory()
	res, err := RunPhaseConcurrent(context.Background(), model, factory, parts, PhaseConfig{
		Rounds: 3, LocalSteps: 1, BatchSize: 8, LR: 0.05, Participation: 0.5,
	}, rand.New(rand.NewSource(75)))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.ClientsPerRnd {
		if n != 3 {
			t.Fatalf("participation wrong: %v", res.ClientsPerRnd)
		}
	}
}
