package fl

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
	"quickdrop/internal/tensor"
)

func testFactory() (ModelFactory, *nn.Model) {
	cfg := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	factory := func() *nn.Model { return nn.NewConvNet(cfg, rand.New(rand.NewSource(99))) }
	return factory, nn.NewConvNet(cfg, rand.New(rand.NewSource(3)))
}

func TestConcurrentMatchesSequentialExactly(t *testing.T) {
	_, parts, _ := testSetup(t, 3, 0)
	factory, seqModel := testFactory()
	conModel := factory() // distinct instance…
	conModel.SetParams(seqModel.CloneParams())

	cfg := PhaseConfig{Rounds: 4, LocalSteps: 3, BatchSize: 8, LR: 0.05}
	if _, err := RunPhase(seqModel, parts, cfg, rand.New(rand.NewSource(70))); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPhaseConcurrent(context.Background(), conModel, factory, parts, cfg,
		rand.New(rand.NewSource(70))); err != nil {
		t.Fatal(err)
	}
	p1, p2 := seqModel.ParamTensors(), conModel.ParamTensors()
	for i := range p1 {
		for j := range p1[i].Data() {
			if p1[i].Data()[j] != p2[i].Data()[j] {
				t.Fatalf("param %d elem %d differs: %g vs %g", i, j, p1[i].Data()[j], p2[i].Data()[j])
			}
		}
	}
}

func TestConcurrentLearns(t *testing.T) {
	_, parts, test := testSetup(t, 4, 0)
	factory, model := testFactory()
	if _, err := RunPhaseConcurrent(context.Background(), model, factory, parts, PhaseConfig{
		Rounds: 12, LocalSteps: 5, BatchSize: 16, LR: 0.1,
	}, rand.New(rand.NewSource(71))); err != nil {
		t.Fatal(err)
	}
	if acc := eval.Accuracy(model, test); acc < 0.65 {
		t.Fatalf("concurrent training accuracy %.2f", acc)
	}
}

func TestConcurrentCancellation(t *testing.T) {
	_, parts, _ := testSetup(t, 2, 0)
	factory, model := testFactory()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunPhaseConcurrent(ctx, model, factory, parts, PhaseConfig{
		Rounds: 10000, LocalSteps: 5, BatchSize: 16, LR: 0.1,
	}, rand.New(rand.NewSource(72)))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestConcurrentValidation(t *testing.T) {
	_, parts, _ := testSetup(t, 2, 0)
	_, model := testFactory()
	if _, err := RunPhaseConcurrent(context.Background(), model, nil, parts,
		PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 4, LR: 0.1},
		rand.New(rand.NewSource(73))); err == nil {
		t.Fatal("expected error for missing factory")
	}
	factory, _ := testFactory()
	empty := []*data.Dataset{nil}
	if _, err := RunPhaseConcurrent(context.Background(), model, factory, empty,
		PhaseConfig{Rounds: 1, LocalSteps: 1, BatchSize: 4, LR: 0.1},
		rand.New(rand.NewSource(74))); err == nil {
		t.Fatal("expected error for no data")
	}
}

func TestConcurrentPartialParticipation(t *testing.T) {
	_, parts, _ := testSetup(t, 6, 0)
	factory, model := testFactory()
	res, err := RunPhaseConcurrent(context.Background(), model, factory, parts, PhaseConfig{
		Rounds: 3, LocalSteps: 1, BatchSize: 8, LR: 0.05, Participation: 0.5,
	}, rand.New(rand.NewSource(75)))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.ClientsPerRnd {
		if n != 3 {
			t.Fatalf("participation wrong: %v", res.ClientsPerRnd)
		}
	}
}

// TestConcurrentCancelMidSampledRound is the shutdown regression for
// the worker pool: cancelling from inside the fold of a sampled round —
// workers still holding in-flight tasks — must surface context.Canceled
// promptly and wind every worker down without deadlocking on the tasks
// or updates channels. Cancellation is observed at channel selects, so
// the round in flight when cancel lands may still complete and fold;
// the invariant is that the model only ever reflects *complete* rounds
// — a cancelled round's partial aggregator state is discarded, never
// folded in. Sampled concurrent is bitwise-identical to the sequential
// runner, so "complete rounds only" is checkable exactly: the cancelled
// model must equal some sequential prefix of the same trajectory. Run
// under -race via make check, this also shakes out shutdown races.
func TestConcurrentCancelMidSampledRound(t *testing.T) {
	_, parts, _ := testSetup(t, 6, 0)
	factory, _ := testFactory()
	model := factory() // same initial params as the sequential references
	reg := data.NewCohort(parts)

	const rounds = 3
	base := PhaseConfig{
		Rounds: rounds, LocalSteps: 2, BatchSize: 8, LR: 0.05,
		SampleK: 4,
	}

	// Sequential reference snapshots: params after 0, 1, … complete
	// rounds of the identical trajectory (same seed, same config).
	snapshots := make([][]*tensor.Tensor, rounds+1)
	for r := 0; r <= rounds; r++ {
		ref := factory()
		cfg := base
		cfg.Rounds = r
		if _, err := RunPhaseRegistry(ref, reg, cfg, rand.New(rand.NewSource(76))); err != nil {
			t.Fatal(err)
		}
		snapshots[r] = ref.CloneParams()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	folded := 0
	cfg := base
	cfg.Workers = 3
	cfg.UpdateHook = func(round, clientID int, beforeP, afterP []*tensor.Tensor) {
		folded++
		if folded == 1 {
			cancel() // first fold of round 0: the rest are in flight
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunPhaseConcurrentRegistry(ctx, model, factory, reg, cfg,
			rand.New(rand.NewSource(76)))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || ctx.Err() == nil {
			t.Fatalf("expected cancellation error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("phase did not shut down after mid-round cancel")
	}

	// The model must sit exactly on a round boundary: equal to one of
	// the sequential prefixes, bit for bit. A partial fold matches none.
	after := model.ParamTensors()
	boundary := -1
	for r := 0; r <= rounds && boundary < 0; r++ {
		same := true
		for i := range after {
			a, b := after[i].Data(), snapshots[r][i].Data()
			for j := range a {
				if a[j] != b[j] {
					same = false
					break
				}
			}
			if !same {
				break
			}
		}
		if same {
			boundary = r
		}
	}
	if boundary < 0 {
		t.Fatal("cancelled model matches no complete-round boundary: a partial round was folded in")
	}
	if boundary == rounds {
		t.Fatalf("all %d rounds completed despite mid-round cancel", rounds)
	}
}
