package lint

import "testing"

func TestResBalanceGolden(t *testing.T) {
	runGolden(t, ResBalance)
}
