package lint

import "testing"

func TestWGBalanceGolden(t *testing.T) {
	runGolden(t, WGBalance)
}
