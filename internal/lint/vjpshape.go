package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"quickdrop/internal/lint/dataflow"
)

// VJPShape verifies the core invariant second-order gradient matching
// depends on: every autodiff op's VJP must produce gradients whose shape
// equals the corresponding input's shape. Each op function in
// internal/autodiff is interpreted symbolically to discover the shape
// constraints its forward pass imposes; the unconstrained symbols are
// then instantiated with distinct primes, the forward is re-checked
// under that instantiation (ops whose constraints the instantiation
// cannot satisfy are skipped rather than guessed at), and finally the
// recorded VJP is evaluated against the concrete shapes. A diagnostic
// means Grad would return the "produced gradient shape" error for some
// valid input of that op.
var VJPShape = &Analyzer{
	Name: "vjpshape",
	Doc:  "verify each autodiff op's VJP produces gradients matching its input shapes (the invariant gradient accumulation enforces at runtime)",
	Run:  runVJPShape,
}

func runVJPShape(pass *Pass) {
	if !hasPathSuffix(pass.Pkg.Path, "internal/autodiff") {
		return
	}
	checked := make(map[token.Pos]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkOpVJPs(pass, fd, checked)
		}
	}
}

// checkOpVJPs runs the four-phase check over one op function: symbolic
// forward, prime instantiation, concrete forward validation, VJP
// evaluation.
func checkOpVJPs(pass *Pass, fd *ast.FuncDecl, checked map[token.Pos]bool) {
	info, ok := pass.Prog.Decls[declFunc(pass.Pkg, fd)]
	if !ok {
		info = FuncInfo{Decl: fd, Pkg: pass.Pkg}
	}

	// Phase 1: symbolic forward in assume mode. Constraints the forward
	// imposes (same-shape, inner dims, element counts) bind symbols.
	sym := newShapeCtx(pass)
	sym.assume = true
	sym.created = make(map[string]bool)
	sym.interpFunc(info, top(), nil, false)
	if len(sym.nodes) == 0 {
		return
	}

	// Phase 2: instantiate every residual symbol with a distinct prime.
	inst := primeInstantiation(sym, fd)
	if inst == nil {
		return
	}

	// Phase 3: re-run the forward with the concrete arguments, silently.
	// If the instantiation violates any forward constraint (a broadcast
	// the symbolic pass could not capture, say), the op is skipped: a
	// correct op must never be flagged.
	conc := newShapeCtx(pass)
	conc.assume = true
	conc.created = make(map[string]bool)
	recv, args := inst.concreteParams(fd)
	conc.interpFunc(info, recv, args, false)
	if conc.violated {
		return
	}

	// Phase 4: evaluate each recorded VJP against the concrete shapes.
	for _, node := range conc.nodes {
		if node.vjp == nil || checked[node.vjp.Pos()] {
			continue
		}
		checked[node.vjp.Pos()] = true
		checkOneVJP(pass, node)
	}
}

func declFunc(pkg *Package, fd *ast.FuncDecl) *types.Func {
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return obj
	}
	return nil
}

// instantiation maps every residual symbol of the symbolic forward run
// to a concrete prime, and resolves shapes under that assignment.
type instantiation struct {
	sym *shapeCtx
	ctx *shapeCtx // holds the prime bindings
	fd  *ast.FuncDecl
	pkg *Package
}

// primeInstantiation assigns distinct primes to the unbound symbols of
// the op's parameters. Unknown-rank parameters become rank-1 tensors
// whose single dimension is the parameter's element count, preserving
// every element-count relation the forward established.
func primeInstantiation(sym *shapeCtx, fd *ast.FuncDecl) *instantiation {
	inst := &instantiation{sym: sym, fd: fd}
	inst.ctx = &shapeCtx{
		pass:   sym.pass,
		subst:  make(map[string]dataflow.Shape),
		dsubst: make(map[string]dataflow.Dim),
		guard:  newInlineGuard(maxSummaryDepth),
	}
	// First pass: give every still-unranked parameter shape a rank-1
	// concretization in terms of its element count.
	syms := make(map[string]bool)
	for _, s := range inst.paramShapes() {
		r := sym.resolveShape(s)
		if r.Dims == nil {
			if r.Sym == "" {
				return nil
			}
			inst.ctx.subst[r.Sym] = dataflow.ShapeOf(r.Elems())
			r = dataflow.ShapeOf(r.Elems())
		}
		for _, d := range r.Dims {
			for _, name := range d.Syms {
				syms[name] = true
			}
		}
	}
	for _, d := range inst.paramDims() {
		for _, name := range sym.resolveDim(d).Syms {
			syms[name] = true
		}
	}
	names := make([]string, 0, len(syms))
	for name := range syms {
		names = append(names, name)
	}
	sort.Strings(names)
	p := int64(1)
	for _, name := range names {
		p = nextPrime(p)
		inst.ctx.dsubst[name] = dataflow.DimConst(p)
	}
	return inst
}

func nextPrime(after int64) int64 {
	for n := after + 1; ; n++ {
		prime := n > 1
		for d := int64(2); d*d <= n; d++ {
			if n%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			return n
		}
	}
}

// paramShapes returns the symbolic shape of every tensor/Value
// parameter (and receiver), as minted by bindParams.
func (inst *instantiation) paramShapes() []dataflow.Shape {
	var out []dataflow.Shape
	inst.eachParam(func(obj types.Object, pos token.Pos) {
		t := obj.Type()
		if isTensor(t) || isNamedIn(t, "Value", "internal/autodiff") {
			out = append(out, dataflow.SymShape(posSym(pos)))
		}
	})
	return out
}

// paramDims returns the symbolic dimension of every int parameter.
func (inst *instantiation) paramDims() []dataflow.Dim {
	var out []dataflow.Dim
	inst.eachParam(func(obj types.Object, pos token.Pos) {
		if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Kind() == types.Int {
			out = append(out, dataflow.DimSym(posSym(pos)+".0"))
		}
	})
	return out
}

func (inst *instantiation) eachParam(fn func(obj types.Object, pos token.Pos)) {
	pkg := inst.sym.pass.Pkg
	visit := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := identObj(pkg.Info, name); obj != nil {
					fn(obj, name.Pos())
				}
			}
		}
	}
	visit(inst.fd.Recv)
	visit(inst.fd.Type.Params)
}

// concrete resolves a symbolic shape through the forward bindings and
// the prime assignment.
func (inst *instantiation) concrete(s dataflow.Shape) dataflow.Shape {
	return inst.ctx.resolveShape(inst.sym.resolveShape(s))
}

// concreteParams builds the concrete receiver and argument values for
// the phase-3 forward re-run.
func (inst *instantiation) concreteParams(fd *ast.FuncDecl) (recv absVal, args []absVal) {
	recv = top()
	build := func(obj types.Object, pos token.Pos) absVal {
		t := obj.Type()
		switch {
		case isTensor(t):
			return tensorV(inst.concrete(dataflow.SymShape(posSym(pos))))
		case isNamedIn(t, "Value", "internal/autodiff"):
			return valueV(inst.concrete(dataflow.SymShape(posSym(pos))))
		default:
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Int {
				d := inst.ctx.resolveDim(inst.sym.resolveDim(dataflow.DimSym(posSym(pos) + ".0")))
				return intV(d)
			}
		}
		return top()
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		name := fd.Recv.List[0].Names[0]
		if obj := identObj(inst.sym.pass.Pkg.Info, name); obj != nil {
			recv = build(obj, name.Pos())
		}
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := identObj(inst.sym.pass.Pkg.Info, name); obj != nil {
				args = append(args, build(obj, name.Pos()))
			}
		}
	}
	return recv, args
}

// checkOneVJP evaluates one recorded VJP against its node's concrete
// input and output shapes and reports provable gradient-shape breaks.
func checkOneVJP(pass *Pass, node *absNode) {
	body, params, pkg := vjpBody(pass, node)
	if body == nil || len(params) < 2 || pkg == nil {
		return
	}
	ctx := newShapeCtx(pass)
	ctx.report = func(pos token.Pos, msg string) {
		pass.Reportf(pos, "op %q VJP: %s", node.op, msg)
	}
	e := newEnv()
	// params[0] is the node (carrying op metadata for inputsArr reads),
	// params[1] the incoming gradient; both have the op's output shape.
	nVal := absVal{kind: aValue, shape: node.result, node: node}
	e.set(params[0], nVal)
	e.set(params[1], valueV(node.result))
	rows, _, ok := ctx.interpStmts(pkg, e, body.List)
	if !ok {
		return
	}
	grads := joinRows(rows)
	for i, g := range grads {
		if i >= len(node.inputs) {
			break
		}
		if g.kind != aValue && g.kind != aTensor {
			continue
		}
		in := node.inputs[i]
		if in.kind != aValue && in.kind != aTensor {
			continue
		}
		gs, is := ctx.resolveShape(g.shape), ctx.resolveShape(in.shape)
		if gs.Eq(is) == dataflow.False {
			pass.Reportf(node.vjp.Pos(),
				"op %q VJP produces gradient shape %s for input %s of shape %s",
				node.op, gs.String(), strconv.Itoa(i), is.String())
		}
	}
}

// vjpBody resolves a VJP expression (a func literal or a reference to a
// named function) to its body and parameter objects.
func vjpBody(pass *Pass, node *absNode) (*ast.BlockStmt, []types.Object, *Package) {
	pkg := node.vjpPkg
	if pkg == nil {
		pkg = pass.Pkg
	}
	switch v := ast.Unparen(node.vjp).(type) {
	case *ast.FuncLit:
		return v.Body, litParams(pkg, v), pkg
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		if id, ok := v.(*ast.Ident); ok {
			obj = pkg.Info.Uses[id]
		} else {
			obj = pkg.Info.Uses[v.(*ast.SelectorExpr).Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return nil, nil, nil
		}
		info, ok := pass.Prog.Decls[fn]
		if !ok || info.Decl.Body == nil {
			return nil, nil, nil
		}
		var params []types.Object
		for _, field := range info.Decl.Type.Params.List {
			for _, name := range field.Names {
				params = append(params, identObj(info.Pkg.Info, name))
			}
		}
		return info.Decl.Body, params, info.Pkg
	}
	return nil, nil, nil
}

func litParams(pkg *Package, lit *ast.FuncLit) []types.Object {
	var params []types.Object
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, identObj(pkg.Info, name))
		}
	}
	return params
}
