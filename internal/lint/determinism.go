package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism guards the bit-for-bit reproducibility contract (DESIGN
// decision: identical seeds produce identical runs, which is what makes
// an unlearning run auditable):
//
//   - no package-level math/rand source anywhere in the module — all
//     randomness flows through an injected, seeded *rand.Rand;
//   - no time.Now inside the numeric-kernel packages (tensor, autodiff,
//     nn, optim, distill), where wall-clock reads either leak into
//     results or mask nondeterminism; accounting layers above may
//     measure time (and distill's DD-overhead meter carries a reasoned
//     //lint:allow);
//   - no floating-point or tensor accumulation driven by ranging over a
//     map: map iteration order reorders the reduction and changes the
//     rounded result run to run.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no global rand, no wall clock in kernels, no map-ordered accumulation",
	Run:  runDeterminism,
}

// kernelPkgSuffixes are the numeric packages where wall-clock reads are
// forbidden.
var kernelPkgSuffixes = []string{
	"internal/tensor", "internal/autodiff", "internal/nn", "internal/optim", "internal/distill",
}

// allowedRandFuncs construct seeded generators rather than drawing from
// the global source.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	kernel := false
	for _, s := range kernelPkgSuffixes {
		if hasPathSuffix(pass.Pkg.Path, s) {
			kernel = true
			break
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil {
					return true
				}
				pkg := funcPkgPath(fn)
				if (pkg == "math/rand" || pkg == "math/rand/v2") && recvNamed(fn) == nil && !allowedRandFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "rand.%s draws from the global math/rand source; inject a seeded *rand.Rand instead", fn.Name())
				}
				if kernel && pkg == "time" && fn.Name() == "Now" && recvNamed(fn) == nil {
					pass.Reportf(n.Pos(), "time.Now in numeric-kernel package %s; wall-clock reads do not belong in kernels", pass.Pkg.Types.Name())
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						checkMapRangeBody(pass, info, n.Body)
					}
				}
			}
			return true
		})
	}
}

// accumulatingTensorMethods reorder a floating-point reduction when
// invoked in map-iteration order.
var accumulatingTensorMethods = map[string]bool{
	"AddInPlace": true, "AxpyInPlace": true, "ScaleAddInPlace": true,
}

// checkMapRangeBody flags numeric accumulation inside a range-over-map
// body. Integer bookkeeping (counting, set building) is exact under any
// order and is not flagged.
func checkMapRangeBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if tv, ok := info.Types[lhs]; ok {
						if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
							pass.Reportf(n.Pos(), "floating-point accumulation driven by map iteration order is nondeterministic; iterate sorted keys")
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil &&
				accumulatingTensorMethods[fn.Name()] && isMethodOn(fn, fn.Name(), "Tensor", "internal/tensor") {
				pass.Reportf(n.Pos(), "tensor accumulation (%s) driven by map iteration order is nondeterministic; iterate sorted keys", fn.Name())
			}
		}
		return true
	})
}
