package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism guards the bit-for-bit reproducibility contract (DESIGN
// decision: identical seeds produce identical runs, which is what makes
// an unlearning run auditable):
//
//   - no package-level math/rand source anywhere in the module — all
//     randomness flows through an injected, seeded *rand.Rand;
//   - no time.Now or time.Since inside any internal/ package:
//     internal/telemetry is the module's single wall-clock authority
//     (its clock.go carries the one reasoned //lint:allow), and every
//     other layer must take its readings through telemetry's Stopwatch
//     so clock values can never leak into numerics or mask
//     nondeterminism; commands under cmd/ may read the clock for
//     user-facing progress output;
//   - no floating-point or tensor accumulation driven by ranging over a
//     map: map iteration order reorders the reduction and changes the
//     rounded result run to run.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no global rand, no wall clock outside telemetry, no map-ordered accumulation",
	Run:  runDeterminism,
}

// allowedRandFuncs construct seeded generators rather than drawing from
// the global source.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// wallClockFuncs are the time package's wall-clock reads. (time.Since
// is time.Now().Sub(t) in disguise.)
var wallClockFuncs = map[string]bool{"Now": true, "Since": true}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	internal := strings.Contains(pass.Pkg.Path, "internal/")
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil {
					return true
				}
				pkg := funcPkgPath(fn)
				if (pkg == "math/rand" || pkg == "math/rand/v2") && recvNamed(fn) == nil && !allowedRandFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "rand.%s draws from the global math/rand source; inject a seeded *rand.Rand instead", fn.Name())
				}
				if internal && pkg == "time" && wallClockFuncs[fn.Name()] && recvNamed(fn) == nil {
					pass.Reportf(n.Pos(), "time.%s in internal package %s; read the clock through internal/telemetry (Stopwatch/Now), the module's wall-clock authority", fn.Name(), pass.Pkg.Types.Name())
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						checkMapRangeBody(pass, info, n.Body)
					}
				}
			}
			return true
		})
	}
}

// accumulatingTensorMethods reorder a floating-point reduction when
// invoked in map-iteration order.
var accumulatingTensorMethods = map[string]bool{
	"AddInPlace": true, "AxpyInPlace": true, "ScaleAddInPlace": true,
}

// checkMapRangeBody flags numeric accumulation inside a range-over-map
// body. Integer bookkeeping (counting, set building) is exact under any
// order and is not flagged.
func checkMapRangeBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if tv, ok := info.Types[lhs]; ok {
						if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
							pass.Reportf(n.Pos(), "floating-point accumulation driven by map iteration order is nondeterministic; iterate sorted keys")
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil &&
				accumulatingTensorMethods[fn.Name()] && isMethodOn(fn, fn.Name(), "Tensor", "internal/tensor") {
				pass.Reportf(n.Pos(), "tensor accumulation (%s) driven by map iteration order is nondeterministic; iterate sorted keys", fn.Name())
			}
		}
		return true
	})
}
