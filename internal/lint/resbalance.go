package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"quickdrop/internal/lint/dataflow"
)

// ResBalance is the contract-declared generalization of poolbalance:
// any API can mark itself with //lint:resource directives (see
// resource.go for the grammar), and every function that binds an
// acquiring call's result must discharge the obligation on every CFG
// path — by a releasing call mentioning the value (deferred releases
// fold into every exit), by passing it to a transfer-contract call, or
// by returning it (ownership moves to the caller).
//
// The analysis is interprocedural in both directions. Bottom-up
// summaries over the program call graph (dataflow.FixSummaries) extend
// the contract surface through helpers: a function returning an
// acquirer's result is itself an acquirer, and a helper that releases
// its parameter discharges the caller's obligation at the call site.
// On top of the summaries, each function body runs the same
// two-layer check as poolbalance — a syntactic layer that finds
// acquisitions, discarded results and custody transfers the flow
// domain cannot model (which degrade to silence, never to false
// positives), then a flow-sensitive {nil, held, released} powerset
// walk over the CFG with nil-comparison refinement. Leaks are
// reported at the acquisition site; paths that leave by panicking are
// exempt.
var ResBalance = &Analyzer{
	Name: "resbalance",
	Doc:  "contract-declared resource acquisitions must be released on every path",
	Run:  runResBalance,
}

// resSummary is one function's interprocedural resource effect.
type resSummary struct {
	// acquires holds the classes the function's results may carry,
	// owed to the caller: contract-declared, or derived from returning
	// another acquirer's result.
	acquires map[string]bool
	// releases maps parameter positions (receiver = -1) to the classes
	// discharged for a value passed there — directly by contract, or
	// transitively through helper calls.
	releases map[int]map[string]bool
}

func (s resSummary) clone() resSummary {
	out := resSummary{}
	if s.acquires != nil {
		out.acquires = make(map[string]bool, len(s.acquires))
		for k, v := range s.acquires {
			out.acquires[k] = v
		}
	}
	if s.releases != nil {
		out.releases = make(map[int]map[string]bool, len(s.releases))
		for i, cs := range s.releases {
			m := make(map[string]bool, len(cs))
			for k, v := range cs {
				m[k] = v
			}
			out.releases[i] = m
		}
	}
	return out
}

func (s *resSummary) addAcquires(classes map[string]bool) {
	if len(classes) == 0 {
		return
	}
	if s.acquires == nil {
		s.acquires = make(map[string]bool)
	}
	for c := range classes {
		s.acquires[c] = true
	}
}

func (s *resSummary) addReleases(pos int, classes map[string]bool) {
	if len(classes) == 0 {
		return
	}
	if s.releases == nil {
		s.releases = make(map[int]map[string]bool)
	}
	if s.releases[pos] == nil {
		s.releases[pos] = make(map[string]bool)
	}
	for c := range classes {
		s.releases[pos][c] = true
	}
}

func eqStringSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func eqResSummary(a, b resSummary) bool {
	if !eqStringSet(a.acquires, b.acquires) || len(a.releases) != len(b.releases) {
		return false
	}
	for i, cs := range a.releases {
		if !eqStringSet(cs, b.releases[i]) {
			return false
		}
	}
	return true
}

// forEachCallArgPos yields (position, expr) pairs for a call: the
// method receiver at -1, then each argument at its parameter position
// (extra variadic arguments all map to the last parameter).
func forEachCallArgPos(call *ast.CallExpr, callee *types.Func, f func(pos int, arg ast.Expr)) {
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			f(-1, sel.X)
		}
	}
	np := 0
	if sig != nil {
		np = sig.Params().Len()
	}
	for i, arg := range call.Args {
		pos := i
		if np > 0 && i >= np {
			pos = np - 1
		}
		f(pos, arg)
	}
}

func runResBalance(pass *Pass) {
	// Whole-program rule: run once, from the first loaded package.
	if len(pass.Prog.Packages) == 0 || pass.Pkg != pass.Prog.Packages[0] {
		return
	}
	rb := &resBalance{pass: pass, rc: parseResourceContracts(pass)}
	if !rb.rc.any() {
		return
	}
	rb.sums = dataflow.FixSummaries(pass.Prog.CallGraph(), dataflow.SummaryAnalysis[*types.Func, resSummary]{
		Bottom:   rb.base,
		Transfer: rb.transferSummary,
		Equal:    eqResSummary,
	})
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			funcUnits(f, func(body *ast.BlockStmt, _ string) {
				rb.checkUnit(pkg, body)
			})
		}
	}
}

type resBalance struct {
	pass *Pass
	rc   *resourceContracts
	sums map[*types.Func]resSummary
}

// base is a function's contract-declared effect, before any
// derivation: the Bottom of the summary lattice.
func (rb *resBalance) base(fn *types.Func) resSummary {
	s := resSummary{}
	if class, ok := rb.rc.acquire[fn]; ok {
		s.addAcquires(map[string]bool{class: true})
	}
	class, ok := rb.rc.release[fn]
	if !ok {
		class, ok = rb.rc.transfer[fn]
	}
	if ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil {
			if sig.Recv() != nil {
				s.addReleases(-1, map[string]bool{class: true})
			}
			for i := 0; i < sig.Params().Len(); i++ {
				s.addReleases(i, map[string]bool{class: true})
			}
		}
	}
	return s
}

// summary returns the computed summary for fn (contract-only for
// functions outside the call graph), or a zero summary for nil.
func (rb *resBalance) summary(fn *types.Func) resSummary {
	if fn == nil {
		return resSummary{}
	}
	if s, ok := rb.sums[fn]; ok {
		return s
	}
	return rb.base(fn)
}

// transferSummary derives fn's effect from its body plus its callees'
// current summaries: releasing a parameter through a helper extends
// releases, and returning an acquirer's result (directly or through a
// local) extends acquires. The walk spans nested literals and deferred
// calls — the optimistic reading for a balance obligation.
func (rb *resBalance) transferSummary(fn *types.Func, get func(*types.Func) resSummary) resSummary {
	out := rb.base(fn).clone()
	fi, ok := rb.pass.Prog.Decls[fn]
	if !ok || fi.Decl.Body == nil {
		return out
	}
	info := fi.Pkg.Info
	params := paramIndexMap(info, fi.Decl)

	acquired := make(map[types.Object]map[string]bool)
	bind := func(lhs, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		acq := get(calleeFunc(info, call)).acquires
		if len(acq) == 0 {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := identObj(info, id); obj != nil {
			if acquired[obj] == nil {
				acquired[obj] = make(map[string]bool)
			}
			for c := range acq {
				acquired[obj][c] = true
			}
		}
	}
	var retObjs []types.Object

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			cs := get(callee)
			if len(cs.releases) == 0 {
				return true
			}
			forEachCallArgPos(n, callee, func(pos int, arg ast.Expr) {
				classes := cs.releases[pos]
				if len(classes) == 0 {
					return
				}
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					return
				}
				if obj := identObj(info, id); obj != nil {
					if pi, isParam := params[obj]; isParam {
						out.addReleases(pi, classes)
					}
				}
			})
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i < len(n.Names) {
					bind(n.Names[i], v)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				switch r := ast.Unparen(res).(type) {
				case *ast.CallExpr:
					out.addAcquires(get(calleeFunc(info, r)).acquires)
				case *ast.Ident:
					if obj := identObj(info, r); obj != nil {
						retObjs = append(retObjs, obj)
					}
				}
			}
		}
		return true
	})
	for _, obj := range retObjs {
		out.addAcquires(acquired[obj])
	}
	return out
}

// paramIndexMap maps a declaration's receiver (-1) and parameter
// objects to their signature positions.
func paramIndexMap(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := identObj(info, name); obj != nil {
					out[obj] = -1
				}
			}
		}
	}
	if fd.Type.Params != nil {
		i := 0
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := identObj(info, name); obj != nil {
					out[obj] = i
				}
				i++
			}
		}
	}
	return out
}

// resBorrow tracks one variable bound to an acquiring call's result.
type resBorrow struct {
	pos      token.Pos
	classes  map[string]bool
	released bool // some releasing call mentions the variable
	returned bool // some return hands the variable to the caller
	dropped  bool // custody left the modeled domain (alias, store, …)
}

func (b *resBorrow) className() string {
	names := make([]string, 0, len(b.classes))
	for c := range b.classes {
		names = append(names, c)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}

// releaseClasses returns the classes the call discharges for arg at
// pos, or nil.
func (rb *resBalance) releaseClasses(info *types.Info, call *ast.CallExpr) map[ast.Expr]map[string]bool {
	callee := calleeFunc(info, call)
	if callee == nil {
		return nil
	}
	cs := rb.summary(callee)
	if len(cs.releases) == 0 {
		return nil
	}
	out := make(map[ast.Expr]map[string]bool)
	forEachCallArgPos(call, callee, func(pos int, arg ast.Expr) {
		if classes := cs.releases[pos]; len(classes) > 0 {
			out[arg] = classes
		}
	})
	return out
}

func intersects(a, b map[string]bool) bool {
	for c := range a {
		if b[c] {
			return true
		}
	}
	return false
}

func (rb *resBalance) checkUnit(pkg *Package, body *ast.BlockStmt) {
	info := pkg.Info
	borrows := make(map[types.Object]*resBorrow)

	acquiresOf := func(rhs ast.Expr) (map[string]bool, *ast.CallExpr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		acq := rb.summary(calleeFunc(info, call)).acquires
		if len(acq) == 0 {
			return nil, nil
		}
		return acq, call
	}
	bind := func(lhs ast.Expr, classes map[string]bool, call *ast.CallExpr) {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				rb.pass.Reportf(call.Pos(),
					"result of %s is an acquired %s that is discarded; it can never be released",
					callName(info, call), classSetName(classes))
				return
			}
			if obj := identObj(info, lhs); obj != nil {
				if _, ok := borrows[obj]; !ok {
					borrows[obj] = &resBorrow{pos: call.Pos(), classes: classes}
				}
			}
		default:
			// Index/field stores hand custody to a structure the flow
			// domain does not model; stay silent rather than guess.
		}
	}

	// Syntactic layer, pass 1: acquisitions. A bare acquiring call whose
	// result is not bound at all is an immediate leak.
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				if classes, call := acquiresOf(rhs); call != nil {
					bind(n.Lhs[i], classes, call)
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if classes, call := acquiresOf(v); call != nil && i < len(n.Names) {
					bind(n.Names[i], classes, call)
				}
			}
		case *ast.ExprStmt:
			if classes, call := acquiresOf(n.X); call != nil {
				rb.pass.Reportf(call.Pos(),
					"result of %s is an acquired %s that is discarded; it can never be released",
					callName(info, call), classSetName(classes))
			}
		}
	})
	if len(borrows) == 0 {
		return
	}

	// Syntactic layer, pass 2: releases (positional, class-matched) and
	// custody transfers out of the modeled domain. Releases inside
	// nested literals count — a deferred closure releasing the value is
	// the idiom — as do returns anywhere in the unit.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			rel := rb.releaseClasses(info, n)
			callee := calleeFunc(info, n)
			argDrops := func(arg ast.Expr, receiver bool) {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					return
				}
				obj := identObj(info, id)
				if obj == nil {
					return
				}
				b, tracked := borrows[obj]
				if !tracked {
					return
				}
				if intersects(rel[arg], b.classes) {
					b.released = true
					return
				}
				// A method call on the value reads it; an argument
				// position without a release hands custody somewhere the
				// analysis cannot follow.
				if !receiver {
					b.dropped = true
				}
			}
			if callee != nil {
				forEachCallArgPos(n, callee, func(pos int, arg ast.Expr) {
					argDrops(arg, pos == -1)
				})
			} else {
				for _, arg := range n.Args {
					argDrops(arg, false)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := identObj(info, id); obj != nil {
						if b, tracked := borrows[obj]; tracked {
							b.returned = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			// Aliasing the value (x := h, s.f = h) leaves the domain.
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if obj := identObj(info, id); obj != nil {
						if b, tracked := borrows[obj]; tracked {
							b.dropped = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markIdentDrop(info, n.X, borrows)
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				markIdentDrop(info, el, borrows)
			}
		case *ast.SendStmt:
			markIdentDrop(info, n.Value, borrows)
		}
		return true
	})

	tracked := make(map[types.Object]*resBorrow)
	for obj, b := range borrows {
		if b.dropped {
			continue
		}
		if !b.released && !b.returned {
			rb.pass.Reportf(b.pos,
				"acquired %s has no matching release in this function (declared by //lint:resource)", b.className())
			continue
		}
		tracked[obj] = b
	}
	if len(tracked) > 0 {
		rf := &resFlow{rb: rb, info: info, tracked: tracked}
		rf.run(body)
	}
}

// markIdentDrop drops a directly-mentioned tracked value from the
// modeled domain.
func markIdentDrop(info *types.Info, expr ast.Expr, borrows map[types.Object]*resBorrow) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return
	}
	if obj := identObj(info, id); obj != nil {
		if b, tracked := borrows[obj]; tracked {
			b.dropped = true
		}
	}
}

// callName renders the callee for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if recv := recvNamed(fn); recv != nil {
			return recv.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "the call"
}

func classSetName(classes map[string]bool) string {
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}

// resState is the per-variable powerset state of the flow layer; the
// zero value means "unknown" and silences every check for the value.
type resState uint8

const (
	resNil      resState = 1 << iota // provably nil on this path
	resHeld                          // holds an unreleased acquisition
	resReleased                      // has been released (or returned)
)

type resFact map[types.Object]resState

func (f resFact) clone() resFact {
	out := make(resFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinResFact(a, b resFact) resFact {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func eqResFact(a, b resFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// resFlow is the flow-sensitive layer over one unit, shaped exactly
// like poolbalance's: a silent fixpoint, a reporting replay, then the
// leak check at every non-panicking exit with deferred releases folded
// in.
type resFlow struct {
	rb        *resBalance
	info      *types.Info
	tracked   map[types.Object]*resBorrow
	reporting bool
	seen      map[token.Pos]map[string]bool
}

func (rf *resFlow) report(pos token.Pos, msg string) {
	if !rf.reporting {
		return
	}
	if rf.seen[pos] == nil {
		rf.seen[pos] = make(map[string]bool)
	}
	if rf.seen[pos][msg] {
		return
	}
	rf.seen[pos][msg] = true
	rf.rb.pass.Reportf(pos, "%s", msg)
}

func (rf *resFlow) run(body *ast.BlockStmt) {
	g := dataflow.NewFromBlock(body, func(call *ast.CallExpr) bool {
		return isBuiltinPanic(rf.info, call)
	})
	if g == nil {
		return
	}
	an := dataflow.Analysis[resFact]{
		Init:   resFact{},
		Join:   joinResFact,
		Equal:  eqResFact,
		Stmt:   rf.transfer,
		Refine: rf.refine,
	}
	res := dataflow.Forward(g, an)

	rf.reporting = true
	rf.seen = make(map[token.Pos]map[string]bool)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = rf.transfer(n, f)
		}
	}
	rf.reporting = false

	panicking := make(map[*dataflow.Block]bool)
	for _, blk := range g.PanicExits {
		panicking[blk] = true
	}
	target := g.Exit
	if g.Defers != nil {
		target = g.Defers
	}
	leaked := make(map[types.Object]bool)
	for _, blk := range uniqueBlocks(target.Preds) {
		if panicking[blk] {
			continue
		}
		f, ok := res.Out(blk, an)
		if !ok {
			continue
		}
		if g.Defers != nil {
			for _, n := range g.Defers.Stmts {
				f = rf.transfer(n, f)
			}
		}
		for obj, st := range f {
			if st&resHeld != 0 {
				leaked[obj] = true
			}
		}
	}
	for obj := range leaked {
		b := rf.tracked[obj]
		rf.rb.pass.Reportf(b.pos,
			"acquired %s is not released on every path; a branch or early return leaks it", b.className())
	}
}

func (rf *resFlow) transfer(n ast.Node, in resFact) resFact {
	out := in
	cloned := false
	set := func(obj types.Object, st resState) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		out[obj] = st
	}
	get := func(obj types.Object) resState { return out[obj] }

	var walk func(n ast.Node, insideDefer bool)
	walk = func(n ast.Node, insideDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return insideDefer
			case *ast.DeferStmt:
				return false // registration point; runs on the defers block
			case *ast.RangeStmt:
				walk(x.X, insideDefer)
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e == nil {
						continue
					}
					if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
						if obj := identObj(rf.info, id); obj != nil {
							if _, tr := rf.tracked[obj]; tr {
								set(obj, 0)
							}
						}
					}
				}
				return false
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Rhs {
						rf.assign(x.Lhs[i], x.Rhs[i], get, set)
					}
				}
				return true
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					if id, ok := ast.Unparen(res).(*ast.Ident); ok {
						if obj := identObj(rf.info, id); obj != nil {
							if _, tr := rf.tracked[obj]; tr {
								set(obj, resReleased) // ownership moves out
							}
						}
					}
				}
				return true
			case *ast.ValueSpec:
				for i, name := range x.Names {
					obj := identObj(rf.info, name)
					if obj == nil {
						continue
					}
					if _, tr := rf.tracked[obj]; !tr {
						continue
					}
					if i < len(x.Values) {
						rf.assign(name, x.Values[i], get, set)
					} else {
						set(obj, resNil) // var h *Handle
					}
				}
				return true
			case *ast.CallExpr:
				for arg, classes := range rf.rb.releaseClasses(rf.info, x) {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					obj := identObj(rf.info, id)
					if obj == nil {
						continue
					}
					b, tr := rf.tracked[obj]
					if !tr || !intersects(classes, b.classes) {
						continue
					}
					if get(obj) == resReleased {
						rf.report(x.Pos(), "acquired "+b.className()+" is released twice on this path")
					}
					set(obj, resReleased)
				}
				return true
			}
			return true
		})
	}
	switch s := n.(type) {
	case *dataflow.DeferRun:
		walk(s.D.Call, true)
	default:
		walk(n, false)
	}
	return out
}

func (rf *resFlow) assign(lhs, rhs ast.Expr, get func(types.Object) resState, set func(types.Object, resState)) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(rf.info, id)
	if obj == nil {
		return
	}
	b, isTracked := rf.tracked[obj]
	if !isTracked {
		return
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if acq := rf.rb.summary(calleeFunc(rf.info, call)).acquires; intersects(acq, b.classes) {
			if get(obj)&resHeld != 0 {
				rf.report(call.Pos(), "acquire overwrites a still-held "+b.className()+"; the previous one can never be released")
			}
			// An acquirer may legitimately return nil ("nothing to
			// acquire yet" — SnapshotStore.Acquire before the first
			// publish), so the post-state is held-or-nil: the value must
			// be discharged where it may be held, and a nil-comparison
			// refines the branches rather than pruning one.
			set(obj, resHeld|resNil)
			return
		}
	}
	if nid, ok := ast.Unparen(rhs).(*ast.Ident); ok && nid.Name == "nil" {
		if _, isNil := rf.info.Uses[nid].(*types.Nil); isNil {
			set(obj, resNil)
			return
		}
	}
	set(obj, 0) // rebound to something unmodeled
}

func (rf *resFlow) refine(cond ast.Expr, neg bool, in resFact) (resFact, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return in, true
	}
	var id *ast.Ident
	if x, ok := ast.Unparen(be.X).(*ast.Ident); ok && isNilIdent(rf.info, be.Y) {
		id = x
	} else if y, ok := ast.Unparen(be.Y).(*ast.Ident); ok && isNilIdent(rf.info, be.X) {
		id = y
	}
	if id == nil {
		return in, true
	}
	obj := identObj(rf.info, id)
	if obj == nil {
		return in, true
	}
	st, tracked := in[obj]
	if !tracked || st == 0 {
		return in, true
	}
	nilEdge := (be.Op == token.EQL) != neg
	if nilEdge {
		if st&resNil == 0 {
			return nil, false // provably non-nil: the nil branch is dead
		}
		out := in.clone()
		out[obj] = resNil
		return out, true
	}
	rest := st &^ resNil
	if rest == 0 {
		return nil, false // provably nil: the non-nil branch is dead
	}
	if rest != st {
		out := in.clone()
		out[obj] = rest
		return out, true
	}
	return in, true
}
