package lint

import "testing"

func TestIntoAliasGolden(t *testing.T) {
	runGolden(t, IntoAlias)
}

func TestForbiddenAliases(t *testing.T) {
	operands := []string{"a", "b", "idx"}
	cases := []struct {
		doc  string
		want []string
	}{
		{"dst may alias a or b.", nil},
		{"dst must not alias a.", []string{"a"}},
		{"dst must not alias a or b.", []string{"a", "b"}},
		{"dst must not alias either input.", []string{"a", "b", "idx"}},
		{"dst must not alias the operands.", []string{"a", "b", "idx"}},
		{"no contract here", nil},
	}
	for _, c := range cases {
		got := forbiddenAliases(c.doc, operands)
		if len(got) != len(c.want) {
			t.Errorf("forbiddenAliases(%q) = %v, want %v", c.doc, got, c.want)
			continue
		}
		for _, name := range c.want {
			if !got[name] {
				t.Errorf("forbiddenAliases(%q) missing %q", c.doc, name)
			}
		}
	}
}
