package lint

import "testing"

func TestStateMachineGolden(t *testing.T) {
	runGolden(t, StateMachine)
}
