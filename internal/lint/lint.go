// Package lint is a stdlib-only static-analysis engine for this
// repository. It parses and type-checks the module with go/parser and
// go/types (no golang.org/x/tools dependency, preserving the zero-dep
// rule) and runs a small set of analyzers that encode the compute
// backbone's invariants: pool buffer ownership, *Into aliasing
// contracts, hot-path allocation discipline, bitwise determinism,
// autodiff-graph immutability, and error handling.
//
// Diagnostics carry file:line:col positions. A finding can be silenced
// at its line (or the line below the comment) with a reasoned
// suppression directive:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory; a bare allow is itself reported. Functions
// are marked as hot-path roots for the hotpathalloc analyzer with a
// //lint:hotpath directive in their doc comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check run over every package of a
// loaded program.
type Analyzer struct {
	// Name is the rule identifier used in reports and allow directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the conventional file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass carries one analyzer's view of one package plus the whole
// program (for cross-package facts such as kernel aliasing contracts).
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos under the pass's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Prog.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in report order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		CtxFlow,
		Determinism,
		ErrCheck,
		GoroutineLeak,
		GraphFreeze,
		HotPathAlloc,
		IntoAlias,
		LockBalance,
		LockOrder,
		PoolBalance,
		ResBalance,
		Shapecheck,
		SnapFreeze,
		StateMachine,
		Telemetry,
		VJPShape,
		WGBalance,
	}
}

// ByName resolves a comma-separated rule list against All, erroring on
// unknown names.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// --- shared type-query helpers used by the analyzers ---

// hasPathSuffix reports whether the import path is suffix itself or
// ends in "/"+suffix. Matching by suffix keeps the analyzers working
// both on the real module and on golden-test fixture trees.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves the statically-called function or method of a
// call expression, or nil for builtins, conversions and indirect calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the function's package ("" for
// builtins/universe scope).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedIn reports whether t (possibly behind a pointer) is the named
// type name declared in a package whose path ends in pkgSuffix.
func isNamedIn(t types.Type, name, pkgSuffix string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && hasPathSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// isTensor reports whether t is (a pointer to) tensor.Tensor.
func isTensor(t types.Type) bool { return isNamedIn(t, "Tensor", "internal/tensor") }

// recvNamed returns the named type of a method's receiver, or nil for
// plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// isMethodOn reports whether fn is a method named name on the named
// type typeName declared in a package whose path ends in pkgSuffix.
func isMethodOn(fn *types.Func, name, typeName, pkgSuffix string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil {
		return false
	}
	return recv.Obj().Name() == typeName && hasPathSuffix(recv.Obj().Pkg().Path(), pkgSuffix)
}

// isPkgFunc reports whether fn is the package-level function name in a
// package whose path ends in pkgSuffix.
func isPkgFunc(fn *types.Func, name, pkgSuffix string) bool {
	if fn == nil || fn.Name() != name || recvNamed(fn) != nil {
		return false
	}
	return hasPathSuffix(funcPkgPath(fn), pkgSuffix)
}

// docText returns a declaration's doc comment text ("" if none).
func docText(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	return doc.Text()
}

// identObj resolves an identifier to its object (definition or use).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
