package lint

import (
	"go/ast"
	"go/types"

	"quickdrop/internal/lint/dataflow"
)

// CallGraph returns the program-wide static call graph: one node per
// module function with a body, one edge per statically-resolved call
// to another module function (calls through function values, interface
// methods, and out-of-module callees produce no edge — analyzers built
// on summaries must treat a missing edge as "no modeled effect"). The
// graph is built once and shared by every analyzer; construction order
// is package order, file order, declaration order, so node and edge
// order — and everything derived from them — is deterministic.
//
// Calls inside nested function literals are attributed to the
// enclosing declaration: for bottom-up effect summaries this is the
// optimistic reading (a deferred closure releasing a resource counts
// as the function releasing it), which matches the suite's
// no-false-positive bias.
func (p *Program) CallGraph() *dataflow.CallGraph[*types.Func] {
	p.cgOnce.Do(func() {
		g := dataflow.NewCallGraph[*types.Func]()
		for _, pkg := range p.Packages {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok || fn == nil {
						continue
					}
					g.AddNode(fn)
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						callee := calleeFunc(pkg.Info, call)
						if callee == nil {
							return true
						}
						if _, inModule := p.Decls[callee]; inModule {
							g.AddEdge(fn, callee)
						}
						return true
					})
				}
			}
		}
		p.cg = g
	})
	return p.cg
}

// inlineGuard bounds top-down, call-site-driven summary interpretation
// — the shape evaluator "inlines" callees at their call sites rather
// than computing bottom-up summaries over the call graph. A shared
// active set refuses re-entry into a function already being
// interpreted further up the chain (direct or mutual recursion), and a
// depth counter caps total inlining depth so pathological call chains
// stay cheap.
type inlineGuard struct {
	active map[*types.Func]bool
	depth  int
	limit  int
}

func newInlineGuard(limit int) *inlineGuard {
	return &inlineGuard{active: make(map[*types.Func]bool), limit: limit}
}

// enter attempts to start interpreting fn, reporting false when fn is
// already on the chain or the depth cap is reached. Every successful
// enter must be paired with an exit.
func (g *inlineGuard) enter(fn *types.Func) bool {
	if g.depth >= g.limit || g.active[fn] {
		return false
	}
	g.active[fn] = true
	g.depth++
	return true
}

// exit leaves fn's interpretation.
func (g *inlineGuard) exit(fn *types.Func) {
	delete(g.active, fn)
	g.depth--
}
