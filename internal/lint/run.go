package lint

import "sort"

// Run executes the analyzers over every package of the program,
// applies the //lint:allow suppressions, and returns the surviving
// diagnostics sorted by position. Malformed directives are reported
// under the "directive" pseudo-rule.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}

	dirs := collectDirectives(prog)
	kept := dirs.malformed
	for _, d := range diags {
		if !dirs.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return kept
}
