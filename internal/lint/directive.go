package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a reasoned suppression:
//
//	//lint:allow <rule> <reason...>
//
// The directive silences diagnostics of <rule> on its own line and on
// the line immediately below it (so it can sit inline or on the line
// above the finding). A directive without both a rule and a reason is
// itself reported under the "directive" rule.
const allowPrefix = "//lint:allow"

// hotpathPrefix marks a function declaration (in its doc comment) as a
// root of the hot-path call graph for the hotpathalloc analyzer.
const hotpathPrefix = "//lint:hotpath"

// directiveRule is the pseudo-rule used for malformed directives; it is
// not suppressible.
const directiveRule = "directive"

// allowKey identifies one (file, line) a rule is allowed on.
type allowKey struct {
	file string
	line int
	rule string
}

// directives indexes every suppression directive of a program.
type directives struct {
	allows    map[allowKey]bool
	malformed []Diagnostic
}

// collectDirectives scans all comments of the program.
func collectDirectives(prog *Program) *directives {
	d := &directives{allows: make(map[allowKey]bool)}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d.addComment(prog.Fset, c)
				}
			}
		}
	}
	return d
}

func (d *directives) addComment(fset *token.FileSet, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, allowPrefix)
	if !ok {
		return
	}
	pos := fset.Position(c.Slash)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		d.malformed = append(d.malformed, Diagnostic{
			Pos:     pos,
			Rule:    directiveRule,
			Message: "//lint:allow needs a rule name and a written reason",
		})
		return
	}
	d.allows[allowKey{file: pos.Filename, line: pos.Line, rule: fields[0]}] = true
}

// suppressed reports whether an allow directive covers the diagnostic.
func (d *directives) suppressed(diag Diagnostic) bool {
	if diag.Rule == directiveRule {
		return false
	}
	return d.allows[allowKey{diag.Pos.Filename, diag.Pos.Line, diag.Rule}] ||
		d.allows[allowKey{diag.Pos.Filename, diag.Pos.Line - 1, diag.Rule}]
}

// isHotPathRoot reports whether the declaration's doc comment carries a
// //lint:hotpath directive.
func isHotPathRoot(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			return true
		}
	}
	return false
}
