package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context.Context discipline:
//
//   - ctx is the first parameter of any signature that takes one
//     (function declarations, literals, named func types, interface
//     methods);
//   - ctx is never stored in a struct field — contexts are call-scoped,
//     and a stored one outlives its cancellation (annotate the field
//     with //lint:allow ctxflow for the rare deliberate case);
//   - library code never mints its own root context via
//     context.Background() or context.TODO(); only binaries (packages
//     under a cmd/ segment) may, everything else must accept one;
//   - loops in functions on a //lint:hotpath root's call path that take
//     a ctx must consult it — a tight loop that ignores its context
//     cannot be cancelled.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context is first, flows through parameters, and is consulted in hot loops",
	Run:  runCtxFlow,
}

func isCtxType(t types.Type) bool {
	return isNamedIn(t, "Context", "context")
}

// pathHasSegment reports whether path contains seg as a full segment.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	inCmd := pathHasSegment(pass.Pkg.Path, "cmd")
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParamOrder(pass, info, n)
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if t := info.TypeOf(field.Type); t != nil && isCtxType(t) {
						pass.Reportf(field.Pos(), "context.Context stored in a struct field; contexts are call-scoped — pass ctx as a parameter")
					}
				}
			case *ast.CallExpr:
				if inCmd {
					return true
				}
				if fn := calleeFunc(info, n); fn != nil && funcPkgPath(fn) == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(n.Pos(), "context.%s in library code; accept a ctx parameter from the caller instead", fn.Name())
				}
			}
			return true
		})
	}
	checkHotLoops(pass)
}

// checkCtxParamOrder reports context parameters that are not first.
func checkCtxParamOrder(pass *Pass, info *types.Info, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := info.TypeOf(field.Type); t != nil && isCtxType(t) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		idx += n
	}
}

// checkHotLoops verifies that hot-path functions taking a ctx consult
// it in every outermost loop.
func checkHotLoops(pass *Pass) {
	info := pass.Pkg.Info
	for _, fd := range hotReachable(pass) {
		ctxObjs := ctxParams(info, fd)
		if len(ctxObjs) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			if !mentionsAny(info, body, ctxObjs) {
				pass.Reportf(n.Pos(), "loop on a //lint:hotpath call path never consults its context; check ctx.Err() or ctx.Done() so cancellation can stop it")
			}
			return false // inner loops inherit the outer check
		})
	}
}

// ctxParams returns the context-typed parameter objects of fd.
func ctxParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := identObj(info, name); obj != nil && isCtxType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// mentionsAny reports whether any identifier in n resolves to one of
// the given objects (mentions inside nested literals count: handing
// ctx to a worker is consulting it).
func mentionsAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
