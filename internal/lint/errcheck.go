package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags silently discarded errors:
//
//   - a call whose last result is an error used as a bare statement
//     (including defer and go statements);
//   - a multi-assign that binds useful results but blanks the error
//     position (n, _ := f()).
//
// A lone `_ = f()` is allowed — the blank assignment is an explicit,
// greppable statement that the error is being dropped on purpose. The
// fmt print family (Print/Println/Printf/Fprint…) is exempt: its error
// returns exist for io.Writer plumbing and checking them on every
// report line would bury the real signal. Test files are outside the
// loaded set entirely.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "no silently discarded error returns",
	Run:  runErrCheck,
}

var errorType = types.Universe.Lookup("error").Type()

// exemptFmtFuncs are fmt functions whose error results are
// conventionally ignored.
var exemptFmtFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, info, n.X)
			case *ast.DeferStmt:
				checkDiscardedCall(pass, info, n.Call)
			case *ast.GoStmt:
				checkDiscardedCall(pass, info, n.Call)
			case *ast.AssignStmt:
				checkBlankError(pass, info, n)
			}
			return true
		})
	}
}

// errResultIndex returns the index of the trailing error result of
// call's signature, or -1 if the call does not return an error last.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return -1
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	if res.Len() == 0 {
		return -1
	}
	if !types.Identical(res.At(res.Len()-1).Type(), errorType) {
		return -1
	}
	return res.Len() - 1
}

func checkDiscardedCall(pass *Pass, info *types.Info, expr ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	if errResultIndex(info, call) < 0 {
		return
	}
	name := "call"
	if fn := calleeFunc(info, call); fn != nil {
		if funcPkgPath(fn) == "fmt" && exemptFmtFuncs[fn.Name()] {
			return
		}
		name = fn.Name()
	}
	pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or assign it to _ explicitly", name)
}

// checkBlankError flags n, _ := f() where the blanked position is the
// call's error result while other results are kept. A statement that
// blanks everything (_ = f(), _, _ = f()) is an explicit drop and is
// allowed.
func checkBlankError(pass *Pass, info *types.Info, n *ast.AssignStmt) {
	if len(n.Rhs) != 1 || len(n.Lhs) < 2 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	errIdx := errResultIndex(info, call)
	if errIdx < 0 || errIdx >= len(n.Lhs) {
		return
	}
	if !isBlank(n.Lhs[errIdx]) {
		return
	}
	for i, lhs := range n.Lhs {
		if i != errIdx && !isBlank(lhs) {
			name := "call"
			if fn := calleeFunc(info, call); fn != nil {
				name = fn.Name()
			}
			pass.Reportf(n.Lhs[errIdx].Pos(), "error result of %s is blanked while other results are used; handle the error", name)
			return
		}
	}
}

func isBlank(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && id.Name == "_"
}
