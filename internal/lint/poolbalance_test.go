package lint

import "testing"

func TestPoolBalanceGolden(t *testing.T) {
	runGolden(t, PoolBalance)
}
