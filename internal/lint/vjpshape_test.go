package lint

import "testing"

func TestVJPShapeGolden(t *testing.T) {
	runGolden(t, VJPShape)
}
