package lint

import "testing"

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, CtxFlow)
}
