package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolBalance enforces the tensor.Pool ownership rules (DESIGN.md,
// "Compute backbone"): a buffer obtained from the pool inside a
// function must be released by that function — a tensor.Put / PutAll
// call (deferred or not) mentioning the buffer — and must not escape
// through a return value or a field store, because only the borrowing
// function may decide when every reference is dead.
//
// The check is a conservative syntactic approximation: it requires at
// least one matching release mention per borrowed variable and flags
// the escapes it can see (returns, field stores, unbound results). It
// does not prove the release runs on every path; deferring the Put is
// the idiom that makes that property hold by construction.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc:  "pool Get results must be Put in the same function and never escape",
	Run:  runPoolBalance,
}

func isPoolGet(fn *types.Func) bool {
	return isPkgFunc(fn, "Get", "internal/tensor") ||
		isPkgFunc(fn, "GetLike", "internal/tensor") ||
		isMethodOn(fn, "Get", "Pool", "internal/tensor")
}

func isPoolPut(fn *types.Func) bool {
	return isPkgFunc(fn, "Put", "internal/tensor") ||
		isPkgFunc(fn, "PutAll", "internal/tensor") ||
		isMethodOn(fn, "Put", "Pool", "internal/tensor")
}

func runPoolBalance(pass *Pass) {
	// The pool implementation itself legitimately returns Get results.
	if hasPathSuffix(pass.Pkg.Path, "internal/tensor") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkPoolBalance(pass, fd)
			}
		}
	}
}

// borrow tracks one variable holding pooled storage: either a tensor
// borrowed directly or a slice that pooled tensors are stored into.
type borrow struct {
	pos      token.Pos // the Get call
	released bool
	escaped  bool
}

func checkPoolBalance(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	borrows := make(map[types.Object]*borrow)

	// Pass 1: find borrows — Get results bound to a variable or slice
	// element — and report unbindable results immediately.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPoolGet(calleeFunc(info, call)) {
					continue
				}
				bindPoolResult(pass, info, borrows, n.Lhs[i], call)
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				call, ok := ast.Unparen(v).(*ast.CallExpr)
				if !ok || !isPoolGet(calleeFunc(info, call)) {
					continue
				}
				if i < len(n.Names) {
					bindPoolResult(pass, info, borrows, n.Names[i], call)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPoolGet(calleeFunc(info, call)) {
					pass.Reportf(call.Pos(), "pooled tensor is returned; the pool buffer escapes its borrowing function")
				}
			}
		}
		return true
	})

	// Pass 2: look for releases and escapes of the tracked variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPoolPut(calleeFunc(info, n)) {
				for _, arg := range n.Args {
					markIdents(info, arg, borrows, func(b *borrow) { b.released = true })
				}
			}
		case *ast.ReturnStmt:
			// Only a directly returned borrow escapes; returning a
			// scalar computed from the buffer is fine.
			for _, res := range n.Results {
				markDirectIdent(info, res, borrows, func(b *borrow) { b.escaped = true })
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					markDirectIdent(info, n.Rhs[i], borrows, func(b *borrow) { b.escaped = true })
				}
			}
		}
		return true
	})

	for _, b := range borrows {
		switch {
		case b.escaped:
			pass.Reportf(b.pos, "pooled tensor escapes via a return or field store; only the borrowing function may Put it")
		case !b.released:
			pass.Reportf(b.pos, "pool Get has no matching tensor.Put/PutAll in this function")
		}
	}
}

// bindPoolResult records where a Get result lands. Binding to a plain
// variable or a slice element is tracked; binding to a field or
// discarding the result escapes immediately.
func bindPoolResult(pass *Pass, info *types.Info, borrows map[types.Object]*borrow, lhs ast.Expr, call *ast.CallExpr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			pass.Reportf(call.Pos(), "pool Get result is discarded; the buffer can never be Put")
			return
		}
		if obj := identObj(info, lhs); obj != nil {
			if _, ok := borrows[obj]; !ok {
				borrows[obj] = &borrow{pos: call.Pos()}
			}
		}
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if obj := identObj(info, base); obj != nil {
				if _, ok := borrows[obj]; !ok {
					borrows[obj] = &borrow{pos: call.Pos()}
				}
			}
		}
	case *ast.SelectorExpr:
		pass.Reportf(call.Pos(), "pooled tensor is stored in a field; the pool buffer escapes its borrowing function")
	default:
		pass.Reportf(call.Pos(), "pool Get result is not bound to a variable; it can never be Put")
	}
}

// markIdents applies f to the borrow of every tracked identifier
// appearing in expr.
func markIdents(info *types.Info, expr ast.Expr, borrows map[types.Object]*borrow, f func(*borrow)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				if b, ok := borrows[obj]; ok {
					f(b)
				}
			}
		}
		return true
	})
}

// markDirectIdent applies f only when expr itself is a tracked
// identifier.
func markDirectIdent(info *types.Info, expr ast.Expr, borrows map[types.Object]*borrow, f func(*borrow)) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return
	}
	if obj := identObj(info, id); obj != nil {
		if b, ok := borrows[obj]; ok {
			f(b)
		}
	}
}
