package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"quickdrop/internal/lint/dataflow"
)

// PoolBalance enforces the tensor.Pool ownership rules (DESIGN.md,
// "Compute backbone"): a buffer obtained from the pool inside a
// function must be released by that function — a tensor.Put / PutAll
// call (deferred or not) mentioning the buffer — and must not escape
// through a return value or a field store, because only the borrowing
// function may decide when every reference is dead.
//
// The analyzer is two layers. A syntactic layer finds borrows, escapes
// (returns, field stores, unbound results) and functions with no
// release mention at all. On top of it, a flow-sensitive layer runs a
// forward dataflow over the function's CFG with a powerset state per
// borrowed variable — {nil, borrowed, released} — making the pairing
// path-sensitive: a Get that a branch, loop or early return can leave
// un-Put is flagged even when some other path releases it, a Get
// overwriting a still-borrowed variable inside a loop is flagged as a
// loop-carried leak, and a buffer provably released twice is flagged as
// a double Put. Nil-comparison branches refine the state (the
// "if x == nil { x = tensor.GetLike(...) }" lazy-borrow idiom is
// understood), and deferred releases — including releases inside
// deferred function literals — are applied on the synthetic defers
// block every exit path flows through. Paths that leave by panicking
// are exempt from the leak check.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc:  "pool Get results must be Put on every path in the same function and never escape",
	Run:  runPoolBalance,
}

func isPoolGet(fn *types.Func) bool {
	return isPkgFunc(fn, "Get", "internal/tensor") ||
		isPkgFunc(fn, "GetLike", "internal/tensor") ||
		isMethodOn(fn, "Get", "Pool", "internal/tensor")
}

func isPoolPut(fn *types.Func) bool {
	return isPkgFunc(fn, "Put", "internal/tensor") ||
		isPkgFunc(fn, "PutAll", "internal/tensor") ||
		isMethodOn(fn, "Put", "Pool", "internal/tensor")
}

func runPoolBalance(pass *Pass) {
	// The pool implementation itself legitimately returns Get results.
	if hasPathSuffix(pass.Pkg.Path, "internal/tensor") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolBalance(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkPoolBalance(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// borrow tracks one variable holding pooled storage: either a tensor
// borrowed directly or a slice that pooled tensors are stored into.
type borrow struct {
	pos      token.Pos // the Get call
	released bool      // some Put/PutAll mentions the variable
	escaped  bool
	slice    bool // a slice whose elements are borrowed
}

func checkPoolBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	borrows := make(map[types.Object]*borrow)

	// Syntactic layer, pass 1: find borrows — Get results bound to a
	// variable or slice element — and report unbindable results.
	// Nested function literals are their own analysis units.
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPoolGet(calleeFunc(info, call)) {
					continue
				}
				bindPoolResult(pass, info, borrows, n.Lhs[i], call)
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				call, ok := ast.Unparen(v).(*ast.CallExpr)
				if !ok || !isPoolGet(calleeFunc(info, call)) {
					continue
				}
				if i < len(n.Names) {
					bindPoolResult(pass, info, borrows, n.Names[i], call)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPoolGet(calleeFunc(info, call)) {
					pass.Reportf(call.Pos(), "pooled tensor is returned; the pool buffer escapes its borrowing function")
				}
			}
		}
	})

	// Syntactic layer, pass 2: releases and escapes. Releases inside
	// nested function literals count (a deferred closure Putting the
	// buffer is the idiom); escapes do not look inside literals.
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPoolPut(calleeFunc(info, call)) {
			for _, arg := range call.Args {
				markIdents(info, arg, borrows, func(b *borrow) { b.released = true })
			}
		}
		return true
	})
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// Only a directly returned borrow escapes; returning a
			// scalar computed from the buffer is fine.
			for _, res := range n.Results {
				markDirectIdent(info, res, borrows, func(b *borrow) { b.escaped = true })
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					markDirectIdent(info, n.Rhs[i], borrows, func(b *borrow) { b.escaped = true })
				}
			}
		}
	})

	for _, b := range borrows {
		switch {
		case b.escaped:
			pass.Reportf(b.pos, "pooled tensor escapes via a return or field store; only the borrowing function may Put it")
		case !b.released:
			pass.Reportf(b.pos, "pool Get has no matching tensor.Put/PutAll in this function")
		}
	}

	// Flow-sensitive layer: only meaningful for borrows that do have a
	// release mention somewhere — the syntactic layer already covered
	// the rest — and that neither escaped (already reported) nor live in
	// slice elements (per-element states are beyond the domain).
	tracked := make(map[types.Object]*borrow)
	for obj, b := range borrows {
		if b.released && !b.escaped && !b.slice {
			tracked[obj] = b
		}
	}
	if len(tracked) > 0 {
		pf := &poolFlow{pass: pass, info: info, tracked: tracked}
		pf.run(body)
	}
}

// inspectShallow walks n without descending into function literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// poolState is the per-variable powerset state of the flow-sensitive
// layer. The zero value means "unknown" (overwritten by something the
// analysis does not model), which silences every check for the
// variable.
type poolState uint8

const (
	poolNil      poolState = 1 << iota // provably nil on this path
	poolBorrowed                       // holds an un-released pool buffer
	poolReleased                       // has been Put
)

// poolFact maps each tracked variable to its state. Facts are treated
// as immutable: the transfer function copies before updating.
type poolFact map[types.Object]poolState

func (f poolFact) clone() poolFact {
	out := make(poolFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinPoolFact(a, b poolFact) poolFact {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func eqPoolFact(a, b poolFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// poolFlow is the flow-sensitive layer over one function body.
type poolFlow struct {
	pass      *Pass
	info      *types.Info
	tracked   map[types.Object]*borrow
	reporting bool
	seen      map[token.Pos]map[string]bool
}

func (pf *poolFlow) report(pos token.Pos, msg string) {
	if !pf.reporting {
		return
	}
	if pf.seen[pos] == nil {
		pf.seen[pos] = make(map[string]bool)
	}
	if pf.seen[pos][msg] {
		return
	}
	pf.seen[pos][msg] = true
	pf.pass.Reportf(pos, "%s", msg)
}

func (pf *poolFlow) run(body *ast.BlockStmt) {
	isPanic := func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return false
		}
		_, builtin := pf.info.Uses[id].(*types.Builtin)
		return builtin
	}
	g := dataflow.NewFromBlock(body, isPanic)
	if g == nil {
		return
	}
	an := dataflow.Analysis[poolFact]{
		Init:   poolFact{},
		Join:   joinPoolFact,
		Equal:  eqPoolFact,
		Stmt:   pf.transfer,
		Refine: pf.refine,
	}
	res := dataflow.Forward(g, an)

	// Replay each reached block once with reporting on: loop-carried
	// overwrites and double Puts surface here, at their own positions.
	pf.reporting = true
	pf.seen = make(map[token.Pos]map[string]bool)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = pf.transfer(n, f)
		}
	}
	pf.reporting = false

	// Leak check: a borrowed state surviving to a non-panicking exit
	// (after the deferred releases have been applied) means some path
	// skips the Put.
	panicking := make(map[*dataflow.Block]bool)
	for _, blk := range g.PanicExits {
		panicking[blk] = true
	}
	target := g.Exit
	if g.Defers != nil {
		target = g.Defers
	}
	leaked := make(map[types.Object]bool)
	for _, blk := range uniqueBlocks(target.Preds) {
		if panicking[blk] {
			continue
		}
		f, ok := res.Out(blk, an)
		if !ok {
			continue
		}
		if g.Defers != nil {
			for _, n := range g.Defers.Stmts {
				f = pf.transfer(n, f)
			}
		}
		for obj, st := range f {
			if st&poolBorrowed != 0 {
				leaked[obj] = true
			}
		}
	}
	for obj := range leaked {
		pf.pass.Reportf(pf.tracked[obj].pos,
			"pool Get is not Put on every path; a branch or early return leaks the buffer")
	}
}

// transfer folds one CFG node over the fact. Put releases, Get binds
// (reporting an overwrite of a still-borrowed buffer), nil assignments
// and declarations bind the nil state, and anything unmodeled degrades
// the variable to unknown.
func (pf *poolFlow) transfer(n ast.Node, in poolFact) poolFact {
	out := in
	cloned := false
	set := func(obj types.Object, st poolState) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		out[obj] = st
	}
	get := func(obj types.Object) poolState { return out[obj] }

	var walk func(n ast.Node, insideDefer bool)
	walk = func(n ast.Node, insideDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				// Literal bodies are separate units — except inside a
				// deferred call, where the literal is the deferred body
				// executing now.
				return insideDefer
			case *ast.DeferStmt:
				return false // registration point; runs on the defers block
			case *ast.RangeStmt:
				// The loop head only binds key/value; the body runs in its
				// own blocks with properly refined facts.
				walk(x.X, insideDefer)
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e == nil {
						continue
					}
					if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
						if obj := identObj(pf.info, id); obj != nil {
							if _, tr := pf.tracked[obj]; tr {
								set(obj, 0)
							}
						}
					}
				}
				return false
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Rhs {
						pf.assign(x.Lhs[i], x.Rhs[i], get, set)
					}
				}
				return true
			case *ast.ValueSpec:
				for i, name := range x.Names {
					obj := identObj(pf.info, name)
					if obj == nil {
						continue
					}
					if _, ok := pf.tracked[obj]; !ok {
						continue
					}
					if i < len(x.Values) {
						pf.assign(name, x.Values[i], get, set)
					} else {
						set(obj, poolNil) // var x *tensor.Tensor
					}
				}
				return true
			case *ast.CallExpr:
				if isPoolPut(calleeFunc(pf.info, x)) {
					for _, arg := range x.Args {
						markIdents2(pf.info, arg, pf.tracked, func(obj types.Object) {
							st := get(obj)
							if st == poolReleased {
								pf.report(x.Pos(), "pooled tensor is Put twice on this path; the second Put poisons a recycled buffer")
							}
							set(obj, poolReleased)
						})
					}
				}
				return true
			}
			return true
		})
	}
	switch s := n.(type) {
	case *dataflow.DeferRun:
		walk(s.D.Call, true)
	default:
		walk(n, false)
	}
	return out
}

// assign updates the state for one lhs := rhs pair.
func (pf *poolFlow) assign(lhs, rhs ast.Expr, get func(types.Object) poolState, set func(types.Object, poolState)) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(pf.info, id)
	if obj == nil {
		return
	}
	if _, isTracked := pf.tracked[obj]; !isTracked {
		return
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isPoolGet(calleeFunc(pf.info, call)) {
		if get(obj)&poolBorrowed != 0 {
			pf.report(call.Pos(), "pool Get overwrites a still-borrowed buffer; the previous buffer can never be Put")
		}
		set(obj, poolBorrowed)
		return
	}
	if nid, ok := ast.Unparen(rhs).(*ast.Ident); ok && nid.Name == "nil" {
		if _, isNil := pf.info.Uses[nid].(*types.Nil); isNil {
			set(obj, poolNil)
			return
		}
	}
	set(obj, 0) // rebound to something unmodeled
}

// refine narrows the fact along nil-comparison edges and prunes
// provably-infeasible branches.
func (pf *poolFlow) refine(cond ast.Expr, neg bool, in poolFact) (poolFact, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return in, true
	}
	var id *ast.Ident
	if x, ok := ast.Unparen(be.X).(*ast.Ident); ok && isNilIdent(pf.info, be.Y) {
		id = x
	} else if y, ok := ast.Unparen(be.Y).(*ast.Ident); ok && isNilIdent(pf.info, be.X) {
		id = y
	}
	if id == nil {
		return in, true
	}
	obj := identObj(pf.info, id)
	if obj == nil {
		return in, true
	}
	st, tracked := in[obj]
	if !tracked || st == 0 {
		return in, true
	}
	nilEdge := (be.Op == token.EQL) != neg
	if nilEdge {
		if st&poolNil == 0 {
			return nil, false // provably non-nil: the nil branch is dead
		}
		out := in.clone()
		out[obj] = poolNil
		return out, true
	}
	rest := st &^ poolNil
	if rest == 0 {
		return nil, false // provably nil: the non-nil branch is dead
	}
	if rest != st {
		out := in.clone()
		out[obj] = rest
		return out, true
	}
	return in, true
}

func isNilIdent(info *types.Info, x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// markIdents2 applies fn to every tracked identifier in expr.
func markIdents2(info *types.Info, expr ast.Expr, tracked map[types.Object]*borrow, fn func(types.Object)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				if _, ok := tracked[obj]; ok {
					fn(obj)
				}
			}
		}
		return true
	})
}

func uniqueBlocks(blocks []*dataflow.Block) []*dataflow.Block {
	seen := make(map[*dataflow.Block]bool, len(blocks))
	var out []*dataflow.Block
	for _, b := range blocks {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// bindPoolResult records where a Get result lands. Binding to a plain
// variable or a slice element is tracked; binding to a field or
// discarding the result escapes immediately.
func bindPoolResult(pass *Pass, info *types.Info, borrows map[types.Object]*borrow, lhs ast.Expr, call *ast.CallExpr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			pass.Reportf(call.Pos(), "pool Get result is discarded; the buffer can never be Put")
			return
		}
		if obj := identObj(info, lhs); obj != nil {
			if _, ok := borrows[obj]; !ok {
				borrows[obj] = &borrow{pos: call.Pos()}
			}
		}
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if obj := identObj(info, base); obj != nil {
				if _, ok := borrows[obj]; !ok {
					borrows[obj] = &borrow{pos: call.Pos(), slice: true}
				}
			}
		}
	case *ast.SelectorExpr:
		pass.Reportf(call.Pos(), "pooled tensor is stored in a field; the pool buffer escapes its borrowing function")
	default:
		pass.Reportf(call.Pos(), "pool Get result is not bound to a variable; it can never be Put")
	}
}

// markIdents applies f to the borrow of every tracked identifier
// appearing in expr.
func markIdents(info *types.Info, expr ast.Expr, borrows map[types.Object]*borrow, f func(*borrow)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				if b, ok := borrows[obj]; ok {
					f(b)
				}
			}
		}
		return true
	})
}

// markDirectIdent applies f only when expr itself is a tracked
// identifier.
func markDirectIdent(info *types.Info, expr ast.Expr, borrows map[types.Object]*borrow, f func(*borrow)) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return
	}
	if obj := identObj(info, id); obj != nil {
		if b, ok := borrows[obj]; ok {
			f(b)
		}
	}
}
