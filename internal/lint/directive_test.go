package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a file tree under a fresh temp dir and returns
// its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestMalformedAllowIsReported(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\n//lint:allow errcheck\nfunc f() {}\n",
	})
	prog, err := LoadProgram(root, fixtureModPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Rule != "directive" {
		t.Errorf("rule = %q, want directive", diags[0].Rule)
	}
}

func TestMalformedAllowIsNotSuppressible(t *testing.T) {
	// An allow for the "directive" pseudo-rule on the line above must
	// not silence the malformed-directive report.
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\n//lint:allow directive trying to hush the checker\n//lint:allow errcheck\nfunc f() {}\n",
	})
	prog, err := LoadProgram(root, fixtureModPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, nil)
	if len(diags) != 1 || diags[0].Rule != "directive" {
		t.Fatalf("got %v, want exactly one directive diagnostic", diags)
	}
}

func TestAllowOnLineAboveSuppresses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\nfunc fail() error { return nil }\n\nfunc g() {\n\t//lint:allow errcheck fire-and-forget probe\n\tfail()\n}\n",
	})
	prog, err := LoadProgram(root, fixtureModPath)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(prog, []*Analyzer{ErrCheck}); len(diags) != 0 {
		t.Fatalf("suppressed finding still reported: %v", diags)
	}
}

func TestAllowWrongRuleDoesNotSuppress(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\nfunc fail() error { return nil }\n\nfunc g() {\n\tfail() //lint:allow determinism wrong rule name\n}\n",
	})
	prog, err := LoadProgram(root, fixtureModPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{ErrCheck})
	if len(diags) != 1 || diags[0].Rule != "errcheck" {
		t.Fatalf("got %v, want one errcheck diagnostic", diags)
	}
}
