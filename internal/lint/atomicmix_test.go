package lint

import "testing"

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, AtomicMix)
}
