package lint

import "testing"

func TestLockBalanceGolden(t *testing.T) {
	runGolden(t, LockBalance)
}
