package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak reports go statements that can never terminate and
// spawn sites that can never be bounded:
//
//   - A goroutine that sends on or receives from a channel created in
//     the spawning function that no other code ever touches — the make
//     and the goroutine are the channel's only mentions — blocks
//     forever: nobody can complete the rendezvous. (A buffered channel
//     exempts pure senders up to its capacity; receivers block
//     regardless of buffering when nothing is ever sent or closed.)
//   - A go statement inside a range loop spawns one goroutine per
//     element; without a sync.WaitGroup in sight or a channel operation
//     in the loop (a semaphore or result rendezvous), nothing bounds or
//     joins the spawn — the signature of an unbounded fan-out that a
//     bounded worker pool should replace.
//
// Both checks are syntactic over one function at a time and only fire
// on provable isolation, never on channels that escape to other
// functions, fields, or collections.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "no goroutines that block forever on orphaned channels, no unbounded per-element spawns",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutineLeak(pass, fd.Body)
		}
	}
}

// localChan describes one channel made in the analyzed function.
type localChan struct {
	name     string
	buffered bool // capacity > 0, or unprovable (non-constant)
	makePos  ast.Node
}

func checkGoroutineLeak(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Local channels: ch := make(chan T[, n]) bound to a plain ident.
	chans := make(map[types.Object]*localChan)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isMakeChan(info, call) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := identObj(info, id)
			if obj == nil {
				continue
			}
			chans[obj] = &localChan{name: id.Name, buffered: chanBuffered(info, call), makePos: as}
		}
		return true
	})

	// Every go statement in the function, with the set of local
	// channels its payload mentions.
	type spawn struct {
		stmt *ast.GoStmt
		uses map[types.Object]bool
	}
	var spawns []*spawn
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		sp := &spawn{stmt: gs, uses: make(map[types.Object]bool)}
		ast.Inspect(gs.Call, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					if _, isChan := chans[obj]; isChan {
						sp.uses[obj] = true
					}
				}
			}
			return true
		})
		spawns = append(spawns, sp)
		return true
	})
	if len(chans) == 0 && len(spawns) == 0 {
		return
	}

	// Orphaned-channel check: a channel used by exactly one go
	// statement and nowhere else (besides its make) has no peer to
	// complete any blocking operation inside that goroutine.
	for obj, ch := range chans {
		var user *spawn
		shared := false
		for _, sp := range spawns {
			if sp.uses[obj] {
				if user != nil {
					shared = true
				}
				user = sp
			}
		}
		if user == nil || shared {
			continue
		}
		if chanUsedOutside(info, body, obj, ch.makePos, user.stmt) {
			continue
		}
		recv, send := chanOpsIn(info, user.stmt.Call, obj)
		switch {
		case recv:
			pass.Reportf(user.stmt.Pos(),
				"goroutine blocks forever: it receives from %s, which nothing else ever sends on or closes", ch.name)
		case send && !ch.buffered:
			pass.Reportf(user.stmt.Pos(),
				"goroutine blocks forever: it sends on unbuffered %s, which nothing else ever receives from", ch.name)
		}
	}

	// Unbounded-spawn check: go inside a range loop with no WaitGroup
	// mention and no channel operation bounding the loop body.
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		ast.Inspect(rs.Body, func(x ast.Node) bool {
			gs, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			if loopBoundsSpawn(info, rs.Body) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"unbounded goroutine spawn: one goroutine per ranged element with no WaitGroup or bounding channel; use a bounded worker pool")
			return true
		})
		return true
	})
}

// isMakeChan reports whether the call is the builtin make of a channel
// type.
func isMakeChan(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	t := info.Types[call.Args[0]].Type
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// chanBuffered reports whether the make call provably has capacity > 0;
// a non-constant capacity counts as buffered (benefit of the doubt).
func chanBuffered(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	tv := info.Types[call.Args[1]]
	if tv.Value == nil {
		return true // unprovable capacity: assume buffered
	}
	return tv.Value.String() != "0"
}

// chanUsedOutside reports whether the channel object is mentioned
// anywhere in body outside its make statement and the given go
// statement. Any such mention (a send, receive, close, argument,
// return, store) gives the goroutine a potential peer.
func chanUsedOutside(info *types.Info, body *ast.BlockStmt, obj types.Object, makeStmt ast.Node, gs *ast.GoStmt) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == makeStmt || n == gs {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && identObj(info, id) == obj {
			used = true
		}
		return !used
	})
	return used
}

// chanOpsIn classifies the blocking operations on obj inside the
// goroutine payload: receive (<-ch, range ch) and send (ch <- v).
func chanOpsIn(info *types.Info, payload ast.Node, obj types.Object) (recv, send bool) {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && identObj(info, id) == obj
	}
	ast.Inspect(payload, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isObj(n.X) {
				recv = true
			}
		case *ast.SendStmt:
			if isObj(n.Chan) {
				send = true
			}
		case *ast.RangeStmt:
			if isObj(n.X) {
				recv = true
			}
		}
		return true
	})
	return recv, send
}

// loopBoundsSpawn reports whether the loop body shows any sign of
// bounding or joining its spawns: a sync.WaitGroup expression, or any
// channel send/receive in the body (a semaphore slot or a rendezvous).
func loopBoundsSpawn(info *types.Info, body *ast.BlockStmt) bool {
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			bound = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				bound = true
			}
		case *ast.CallExpr:
			if isWaitGroupMethod(calleeFunc(info, n)) != opNone {
				bound = true
			}
		case *ast.Ident:
			if obj := identObj(info, n); obj != nil {
				if isNamedIn(obj.Type(), "WaitGroup", "sync") {
					bound = true
				}
			}
		}
		return !bound
	})
	return bound
}
