// Package bank exercises the whole-program lock-order analysis.
package bank

import "sync"

type Account struct {
	Mu      sync.Mutex
	Balance int
}

type Ledger struct {
	Mu      sync.Mutex
	Entries int
}

type Audit struct {
	Mu   sync.Mutex
	Rows int
}

type Stats struct {
	Mu    sync.Mutex
	Peaks int
}

// Deposit establishes the order Account → Ledger.
func Deposit(a *Account, l *Ledger, n int) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	a.Balance += n
	l.Mu.Lock() // want `potential deadlock: bank.Ledger.Mu is acquired while bank.Account.Mu is held`
	l.Entries++
	l.Mu.Unlock()
}

// Reconcile reverses it: Ledger → Account. Together with Deposit this
// is a classic AB/BA deadlock.
func Reconcile(a *Account, l *Ledger) {
	l.Mu.Lock()
	defer l.Mu.Unlock()
	a.Mu.Lock() // want `potential deadlock: bank.Account.Mu is acquired while bank.Ledger.Mu is held`
	a.Balance = l.Entries
	a.Mu.Unlock()
}

// Transfer locks two instances of one class with no global order; two
// concurrent calls with swapped operands deadlock.
func Transfer(from, to *Account, n int) {
	from.Mu.Lock()
	defer from.Mu.Unlock()
	to.Mu.Lock() // want `two distinct bank.Account.Mu instances are locked in sequence`
	to.Balance += n
	from.Balance -= n
	to.Mu.Unlock()
}

// Snapshot is clean: Stats is only ever acquired last, so the
// Ledger → Stats edge belongs to no cycle.
func Snapshot(l *Ledger, st *Stats) {
	l.Mu.Lock()
	defer l.Mu.Unlock()
	st.Mu.Lock()
	st.Peaks = l.Entries
	st.Mu.Unlock()
}

// ReleaseThenTake is clean: the first lock is released before the
// second is acquired, so no ordering edge exists.
func ReleaseThenTake(a *Account, au *Audit) {
	au.Mu.Lock()
	rows := au.Rows
	au.Mu.Unlock()
	a.Mu.Lock()
	a.Balance = rows
	a.Mu.Unlock()
}

// SpawnIndependent is clean: the goroutine acquires on its own
// schedule, not inside the spawner's critical section.
func SpawnIndependent(a *Account, au *Audit) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	go func() {
		au.Mu.Lock()
		au.Rows++
		au.Mu.Unlock()
	}()
}
