// Package teller closes an interprocedural lock-order cycle with
// package bank: Audit is held while a helper that locks Account runs,
// and bank holds Account while locking Ledger… while Audited here holds
// Ledger around an Audit acquisition.
package teller

import (
	"sync"

	"quickdrop/internal/bank"
)

var reportMu sync.Mutex

// creditLocked locks the account three frames below the Audit hold in
// AuditedCredit; the summary propagation must surface the edge there.
func creditLocked(a *bank.Account, n int) {
	a.Mu.Lock()
	a.Balance += n
	a.Mu.Unlock()
}

func creditShim(a *bank.Account, n int) {
	creditLocked(a, n)
}

// AuditedCredit holds Audit.Mu across the shim call: Audit → Account.
func AuditedCredit(au *bank.Audit, a *bank.Account, n int) {
	au.Mu.Lock()
	defer au.Mu.Unlock()
	creditShim(a, n) // want `potential deadlock: bank.Account.Mu is acquired while bank.Audit.Mu is held \(via the call to creditShim\)`
	au.Rows++
}

// LedgeredAudit holds Ledger.Mu while taking Audit.Mu — with Deposit's
// Account → Ledger edge this closes the three-class cycle
// Account → Ledger → Audit → Account.
func LedgeredAudit(l *bank.Ledger, au *bank.Audit) {
	l.Mu.Lock()
	defer l.Mu.Unlock()
	au.Mu.Lock() // want `potential deadlock: bank.Audit.Mu is acquired while bank.Ledger.Mu is held`
	au.Rows = l.Entries
	au.Mu.Unlock()
}

// GlobalThenField is clean: the package-level reportMu participates in
// the graph but only in one direction, so no cycle involves it.
func GlobalThenField(au *bank.Audit) {
	reportMu.Lock()
	defer reportMu.Unlock()
	au.Mu.Lock()
	au.Rows++
	au.Mu.Unlock()
}
