module quickdrop

go 1.22
