// Package p exercises the discarded-error rules.
package p

import "fmt"

type conn struct{}

func dial(addr string) (*conn, error) { return &conn{}, nil }

func mayFail() error { return nil }

func discards() {
	mayFail()       // want "error result of mayFail is silently discarded"
	defer mayFail() // want "silently discarded"
	go mayFail()    // want "silently discarded"

	_ = mayFail()     // ok: explicit, greppable drop
	fmt.Println("hi") // ok: fmt print family is exempt
}

func blanks(addr string) {
	c, _ := dial(addr) // want "error result of dial is blanked"
	_ = c

	c2, err := dial(addr) // ok: error is bound
	_, _ = c2, err

	_, _ = dial(addr) // ok: everything explicitly dropped
}

func handled() error {
	if err := mayFail(); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

func suppressed() {
	mayFail() //lint:allow errcheck best-effort cleanup on shutdown
}
