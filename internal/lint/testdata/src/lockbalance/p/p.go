// Package p exercises mutex lock/unlock balance on the CFG.
package p

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// balanced is clean: the deferred Unlock covers every exit.
func (s *store) balanced(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

// explicitBranches is clean: every path Unlocks exactly once.
func (s *store) explicitBranches(k string, fast bool) int {
	s.mu.Lock()
	if fast {
		v := s.data[k]
		s.mu.Unlock()
		return v
	}
	v := s.data[k] * 2
	s.mu.Unlock()
	return v
}

// deferredClosure is clean: the deferred literal releases on every exit.
func (s *store) deferredClosure(k string) int {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	return s.data[k]
}

// earlyReturnLeak forgets the Unlock on the error path.
func (s *store) earlyReturnLeak(k string, bad bool) int {
	s.mu.Lock() // want `s.mu is not unlocked on every path`
	if bad {
		return -1
	}
	v := s.data[k]
	s.mu.Unlock()
	return v
}

// branchLeak releases on one branch only.
func (s *store) branchLeak(k string, fast bool) int {
	s.mu.Lock() // want `s.mu is not unlocked on every path`
	if fast {
		s.mu.Unlock()
	}
	return s.data[k]
}

// doubleLock re-acquires a lock this goroutine already holds.
func (s *store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `relocking deadlocks`
	s.mu.Unlock()
}

// loopRelock deadlocks on the second iteration: the loop body never
// releases what the first iteration acquired.
func (s *store) loopRelock(keys []string) {
	for range keys {
		s.mu.Lock() // want `relocking deadlocks` `s.mu is not unlocked on every path`
	}
}

// doubleUnlock releases twice; the second Unlock panics at runtime.
func (s *store) doubleUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want `Unlock without a Lock on this path`
}

// deferredDoubleUnlock is the defer-shaped double release.
func (s *store) deferredDoubleUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock() // want `Unlock without a Lock on this path`
	s.mu.Unlock()
}

// upgrade deadlocks: Lock while the read lock is held.
func (s *store) upgrade(k string) {
	s.rw.RLock()
	s.rw.Lock() // want `while its read lock is held on this path; the upgrade deadlocks`
	_ = s.data[k]
}

// readThenWrite is clean: the read lock is released before the write
// lock is taken.
func (s *store) readThenWrite(k string, v int) {
	s.rw.RLock()
	present := s.data[k] != 0
	s.rw.RUnlock()
	if present {
		return
	}
	s.rw.Lock()
	s.data[k] = v
	s.rw.Unlock()
}

// rleak forgets the RUnlock on the early return.
func (s *store) rleak(k string, bad bool) int {
	s.rw.RLock() // want `s.rw is not unlocked on every path`
	if bad {
		return -1
	}
	v := s.data[k]
	s.rw.RUnlock()
	return v
}

// distinctReceivers is clean: a.mu and b.mu are different locks, each
// balanced on its own.
func distinctReceivers(a, b *store) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// goroutineBody is its own unit: the literal's imbalance is reported
// inside it, not against the spawning function.
func (s *store) goroutineBody(bad bool) {
	go func() {
		s.mu.Lock() // want `s.mu is not unlocked on every path`
		if bad {
			return
		}
		s.mu.Unlock()
	}()
}

// panicPathExempt is clean: the panicking exit is not a leak (the
// deferred recovery story is the caller's problem, as with poolbalance).
func (s *store) panicPathExempt(k string) int {
	s.mu.Lock()
	if s.data == nil {
		panic("nil store")
	}
	v := s.data[k]
	s.mu.Unlock()
	return v
}

// rebound is silenced: the root object is reassigned mid-flight, so the
// state degrades to unknown rather than guessing.
func rebound(a, b *store, swap bool) {
	a.mu.Lock()
	if swap {
		a = b
	}
	a.mu.Unlock()
}

// suppressed hands the lock to the caller on purpose.
func (s *store) suppressed() {
	s.mu.Lock() //lint:allow lockbalance intentional lock handoff; caller must call unlockStore
}

func (s *store) unlockStore() {
	// Only Unlocks: release helpers are not judged (no Lock in unit).
	s.mu.Unlock()
}
