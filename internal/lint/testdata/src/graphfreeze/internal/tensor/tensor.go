// Package tensor stubs the mutator surface for the graphfreeze golden
// tests.
package tensor

// Tensor is a minimal stand-in for the real tensor type.
type Tensor struct{ data []float64 }

// Data exposes the backing slice.
func (t *Tensor) Data() []float64 { return t.data }

// Zero clears the tensor in place.
func (t *Tensor) Zero() {}

// CopyFrom copies src's elements into t.
func (t *Tensor) CopyFrom(src *Tensor) {}

// AddInPlace accumulates o into t.
func (t *Tensor) AddInPlace(o *Tensor) {}

// AddInto writes a+b into dst and returns dst; dst may alias a or b.
func AddInto(dst, a, b *Tensor) *Tensor { return dst }
