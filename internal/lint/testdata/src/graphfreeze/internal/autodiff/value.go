// Package autodiff stubs the graph node type for the graphfreeze
// golden tests.
package autodiff

import "quickdrop/internal/tensor"

// Value is one node of the autodiff graph; Data holds its result.
type Value struct{ Data *tensor.Tensor }

// Reset clears the node's tensor — legal here, inside the engine.
func (v *Value) Reset() { v.Data.Zero() }
