// Package p exercises the graph-freeze rules outside the engine.
package p

import (
	"quickdrop/internal/autodiff"
	"quickdrop/internal/tensor"
)

func mutate(v *autodiff.Value, t *tensor.Tensor) {
	v.Data.Zero()                 // want "Zero mutates an autodiff node's tensor"
	v.Data.AddInPlace(t)          // want "AddInPlace mutates an autodiff node's tensor"
	v.Data = t                    // want "assignment to an autodiff node's tensor"
	copy(v.Data.Data(), t.Data()) // want "copy into an autodiff node's storage"
	tensor.AddInto(v.Data, t, t)  // want "used as AddInto destination"
}

func read(v *autodiff.Value, dst *tensor.Tensor) float64 {
	tensor.AddInto(dst, v.Data, v.Data) // ok: node tensor as input only
	dst.CopyFrom(v.Data)                // ok: copying out of the graph
	return v.Data.Data()[0]             // ok: reading
}

func aliasMutate(v *autodiff.Value) {
	t := v.Data
	t.Zero() // want "Zero mutates an autodiff node's tensor"
}

func aliasInto(v *autodiff.Value, a *tensor.Tensor) {
	t := v.Data
	tensor.AddInto(t, a, a) // want "used as AddInto destination"
}

func aliasBranch(v *autodiff.Value, w *tensor.Tensor, flag bool) {
	t := w
	if flag {
		t = v.Data
	}
	t.Zero() // want "Zero mutates an autodiff node's tensor"
}

// aliasRebound is clean: t points at a detached tensor by the time it
// is mutated.
func aliasRebound(v *autodiff.Value, w *tensor.Tensor) {
	t := v.Data
	t = w
	t.Zero()
	_ = t
}

func suppressed(v *autodiff.Value) {
	v.Data.Zero() //lint:allow graphfreeze node is detached from the graph at this point
}
