// Package p exercises caller- and declaration-side *Into contract
// checks.
package p

import "quickdrop/internal/tensor"

// ScaleInto doubles src into the output buffer.
func ScaleInto(out, src *tensor.Tensor) *tensor.Tensor { // want "must be first and named dst" "missing an aliasing contract"
	return out
}

// ViewInto reinterprets src into dst; dst may alias src by design.
func ViewInto(dst, src *tensor.Tensor) *tensor.Tensor {
	return dst
}

func calls(dst, a, b *tensor.Tensor) {
	tensor.AddInto(dst, dst, b)    // ok: AddInto permits aliasing
	tensor.MatMulInto(dst, dst, b) // want "MatMulInto forbids dst aliasing a"
	tensor.MatMulInto(dst, a, dst) // want "MatMulInto forbids dst aliasing b"
	tensor.MatMulInto(nil, a, b)   // ok: nil dst means allocate
	tensor.MatMulInto(dst, a, b)   // ok: distinct arguments
	tensor.MulSumInto(dst, a, dst) // want "MulSumInto forbids dst aliasing b"
	//lint:allow intoalias kernel tolerates aliasing when a is row-disjoint here
	tensor.MatMulInto(dst, dst, b)
}
