// Package tensor stubs the kernel package's *Into conventions for the
// intoalias golden tests.
package tensor

// Tensor is a minimal stand-in for the real tensor type.
type Tensor struct{ data []float64 }

// AddInto writes a+b elementwise into dst and returns dst; dst may
// alias a or b.
func AddInto(dst, a, b *Tensor) *Tensor { return dst }

// MatMulInto writes the matrix product of a and b into dst and returns
// dst. dst must not alias a or b.
func MatMulInto(dst, a, b *Tensor) *Tensor { return dst }

// MulSumInto accumulates a*b into dst and returns dst; dst must not
// alias either input.
func MulSumInto(dst, a, b *Tensor) *Tensor { return dst }
