// Package p: directive-grammar error cases.
package p

//lint:resource acquire conn // want "must be in a function declaration's doc comment"
var misplacedDirective int

// Malformed: missing the class word.
//
//lint:resource acquire // want "malformed //lint:resource directive"
func malformedDirective() {}

// Unknown verb.
//
//lint:resource borrow conn // want "unknown //lint:resource verb"
func unknownVerb() {}

// Acquire on a function with no results.
//
//lint:resource acquire conn // want "returns nothing to own"
func acquireVoid() {}

// Release on a function with no inputs.
//
//lint:resource release conn // want "takes nothing to release"
func releaseNothing() {}
