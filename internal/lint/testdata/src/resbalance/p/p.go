// Package p exercises contract-declared acquire/release balance.
package p

import "quickdrop/internal/res"

type holder struct{ c *res.Conn }

func balanced() {
	c := res.Open()
	if c == nil {
		return
	}
	defer c.Close()
	c.Ping()
}

func straightLine() {
	c := res.Open()
	c.Ping()
	c.Close()
}

func leaks() {
	c := res.Open() // want "acquired conn has no matching release"
	c.Ping()
}

func branchLeak(flag bool) {
	c := res.Open() // want "not released on every path"
	if flag {
		return
	}
	if c != nil {
		c.Close()
	}
}

func doubleRelease() {
	c := res.Open()
	c.Close()
	c.Close() // want "released twice on this path"
}

func discards() {
	res.Open()     // want "discarded"
	_ = res.Open() // want "discarded"
}

func overwrites() {
	c := res.Open()
	c = res.Open() // want "acquire overwrites a still-held conn"
	c.Close()
}

// provide returns the conn it opens: ownership moves to the caller, so
// provide is itself an acquirer by derivation.
func provide() *res.Conn {
	c := res.Open()
	return c
}

func helperLeak() {
	c := provide() // want "acquired conn has no matching release"
	c.Ping()
}

// closeIt releases its parameter, so calling it discharges the
// caller's obligation.
func closeIt(c *res.Conn) {
	if c != nil {
		c.Close()
	}
}

func helperBalanced() {
	c := res.Open()
	c.Ping()
	closeIt(c)
}

func transfers() {
	c := res.Open()
	res.Adopt(c)
}

func escapesSilently(h *holder) {
	c := res.Open()
	h.c = c // custody leaves the modeled domain: no report
}
