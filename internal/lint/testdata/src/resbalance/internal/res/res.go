// Package res declares resource contracts for the resbalance golden
// tests.
package res

// Conn is a resource handle.
type Conn struct{ open bool }

// Open acquires a conn; it may return nil when nothing is available.
//
//lint:resource acquire conn
func Open() *Conn { return &Conn{open: true} }

// Close releases the conn.
//
//lint:resource release conn
func (c *Conn) Close() { c.open = false }

// Adopt takes ownership of c; the caller's obligation ends.
//
//lint:resource transfer conn
func Adopt(c *Conn) {}

// Ping uses the conn without consuming it.
func (c *Conn) Ping() {}
