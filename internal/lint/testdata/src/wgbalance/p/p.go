// Package p exercises the wgbalance analyzer.
package p

import "sync"

func handle(j int) {}

// earlyReturnSkip: the guard path leaves the goroutine without Done.
func earlyReturnSkip(wg *sync.WaitGroup, jobs []int) {
	go func() {
		if len(jobs) == 0 {
			return
		}
		for _, j := range jobs {
			handle(j)
		}
		wg.Done() // want `wg.Done is skipped on some path out of this function; the matching Wait hangs`
	}()
}

// deferredDone is the pattern the rule steers toward: every exit,
// including the panicking one, runs Done.
func deferredDone(wg *sync.WaitGroup, ok bool) {
	defer wg.Done()
	if !ok {
		panic("bad input")
	}
}

// branchBalanced: both explicit paths Done exactly once.
func branchBalanced(wg *sync.WaitGroup, fast bool) {
	if fast {
		wg.Done()
		return
	}
	handle(0)
	wg.Done()
}

// doubleDone drives the counter negative on the straight-line path.
func doubleDone(wg *sync.WaitGroup) {
	wg.Done()
	wg.Done() // want `wg.Done on a path where it already ran; the counter goes negative and panics`
}

// panicSkip: the panic path never reaches the trailing Done.
func panicSkip(wg *sync.WaitGroup, ok bool) {
	if !ok {
		panic("bad input")
	}
	wg.Done() // want `wg.Done is skipped when this function panics; defer it so every exit runs it`
}

// addInGoroutine races the spawner's Wait: the counter can hit zero
// before the goroutine bumps it.
func addInGoroutine(wg *sync.WaitGroup, jobs []int) {
	for _, j := range jobs {
		go func() {
			wg.Add(1) // want `wg.Add inside the spawned goroutine races with Wait; call Add in the spawner before the go statement`
			defer wg.Done()
			handle(j)
		}()
	}
	wg.Wait()
}

// spawnerAdds is the corrected shape: Add before go, Done deferred.
func spawnerAdds(wg *sync.WaitGroup, jobs []int) {
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			handle(j)
		}()
	}
	wg.Wait()
}

// orchestrator pairs a conditional Add with a conditional Done in one
// function; the unit balances the counter deliberately and is exempt.
func orchestrator(wg *sync.WaitGroup, extra bool) {
	if extra {
		wg.Add(1)
	}
	handle(0)
	if extra {
		wg.Done()
	}
}

// reuse waits out one generation before starting the next; Add after a
// completed Wait is legal.
func reuse() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		handle(1)
	}()
	wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		handle(2)
	}()
	wg.Wait()
}

// nestedPool: the spawned goroutine runs its own WaitGroup for its own
// children; nothing outside the payload touches it.
func nestedPool(outer *sync.WaitGroup, tasks []int) {
	outer.Add(1)
	go func() {
		defer outer.Done()
		var inner sync.WaitGroup
		for range tasks {
			inner.Add(1)
			go func() {
				defer inner.Done()
			}()
		}
		inner.Wait()
	}()
	outer.Wait()
}

// suppressedDouble documents an upstream double-Add.
func suppressedDouble(wg *sync.WaitGroup) {
	wg.Done()
	//lint:allow wgbalance the counter was bumped twice by the enqueuer
	wg.Done()
}
