// Package p exercises hot-path reachability and the panic exemption.
package p

import (
	"fmt"

	"quickdrop/internal/tensor"
)

// step is the per-iteration worker of a training loop.
//
//lint:hotpath
func step(x, y *tensor.Tensor) {
	_ = x.Shape() // want "allocating tensor op Shape"
	if x.Dim(0) != y.Dim(0) {
		panic(fmt.Sprintf("dim mismatch %d %d", x.Dim(0), y.Dim(0))) // ok: failure path only
	}
	helper(x, y)
}

func helper(x, y *tensor.Tensor) {
	_ = x.MatMul(y)                 // want "allocating tensor op MatMul"
	_ = fmt.Sprintf("%d", x.Dim(0)) // want "fmt.Sprintf allocates"
}

func cold(x, y *tensor.Tensor) *tensor.Tensor {
	return x.Add(y) // ok: not reachable from a hot-path root
}

// warm has a reasoned exemption for a setup-time allocation.
//
//lint:hotpath
func warm(x *tensor.Tensor) {
	_ = x.Shape() //lint:allow hotpathalloc one-time setup before the loop body
}
