// Package tensor stubs the allocating and non-allocating tensor APIs
// for the hotpathalloc golden tests.
package tensor

// Tensor is a minimal stand-in for the real tensor type.
type Tensor struct{ shape []int }

// Shape returns a copy of the shape (allocates).
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the i-th dimension without allocating.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Add returns a freshly allocated elementwise sum.
func (t *Tensor) Add(o *Tensor) *Tensor { return &Tensor{} }

// MatMul returns a freshly allocated matrix product.
func (t *Tensor) MatMul(o *Tensor) *Tensor { return &Tensor{} }
