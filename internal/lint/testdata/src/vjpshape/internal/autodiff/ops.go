// Package autodiff is a stub mirroring the real engine's node
// constructors; vjpshape interprets each op's forward pass symbolically
// and then evaluates its VJP against prime-instantiated shapes.
package autodiff

import "quickdrop/internal/tensor"

// Value is one node of the autodiff graph.
type Value struct {
	Data *tensor.Tensor

	op         string
	inputs     []*Value
	vjp1       func(n, g *Value) *Value
	vjp2       func(n, g *Value) (*Value, *Value)
	inputsArr  [2]*Value
	dataInline tensor.Tensor
}

func (v *Value) scratch() *tensor.Tensor { return &v.dataInline }

func newNode1(op string, data *tensor.Tensor, a *Value, vjp func(n, g *Value) *Value) *Value {
	v := &Value{Data: data, op: op, vjp1: vjp}
	v.inputsArr[0] = a
	v.inputs = v.inputsArr[:1]
	return v
}

func newNode2(op string, data *tensor.Tensor, a, b *Value, vjp func(n, g *Value) (*Value, *Value)) *Value {
	v := &Value{Data: data, op: op, vjp2: vjp}
	v.inputsArr[0], v.inputsArr[1] = a, b
	v.inputs = v.inputsArr[:2]
	return v
}

// Add is a correct op: the gradient flows through unchanged.
func Add(a, b *Value) *Value {
	v := newNode2("add", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return g, g
	})
	v.Data = tensor.AddInto(v.scratch(), a.Data, b.Data)
	return v
}

// MatMul is a correct op: its VJP uses the transpose-fused products.
func MatMul(a, b *Value) *Value {
	v := newNode2("matmul", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return MatMulNT(g, n.inputsArr[1]), // ∂/∂a = g·bᵀ
			MatMulTN(n.inputsArr[0], g) // ∂/∂b = aᵀ·g
	})
	v.Data = tensor.MatMulInto(v.scratch(), a.Data, b.Data)
	return v
}

// MatMulNT is a correct op: a·bᵀ for a [M,K] and b [N,K].
func MatMulNT(a, b *Value) *Value {
	v := newNode2("matmulnt", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return MatMul(g, n.inputsArr[1]), // ∂/∂a = g·b
			MatMulTN(g, n.inputsArr[0]) // ∂/∂b = gᵀ·a
	})
	v.Data = tensor.MatMulNTInto(v.scratch(), a.Data, b.Data)
	return v
}

// MatMulTN is a correct op: aᵀ·b for a [K,M] and b [K,N].
func MatMulTN(a, b *Value) *Value {
	v := newNode2("matmultn", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return MatMulNT(n.inputsArr[1], g), // ∂/∂a = b·gᵀ
			MatMul(n.inputsArr[0], g) // ∂/∂b = a·g
	})
	v.Data = tensor.MatMulTNInto(v.scratch(), a.Data, b.Data)
	return v
}

// TransposeBad forgets to transpose the incoming gradient, so the
// gradient has the output's shape instead of the input's.
func TransposeBad(a *Value) *Value {
	v := newNode1("transpose", nil, a, func(n, g *Value) *Value { // want `op "transpose" VJP produces gradient shape \[3 2\] for input 0 of shape \[2 3\]`
		return g
	})
	v.Data = tensor.TransposeInto(v.scratch(), a.Data)
	return v
}

// MatMulBad uses the plain product where the transpose-fused form is
// required: for g [M,N] and b [K,N], g·b is not even well-formed.
func MatMulBad(a, b *Value) *Value {
	v := newNode2("mm", nil, a, b, func(n, g *Value) (*Value, *Value) { // want `op "mm" VJP produces gradient shape \[2 5\] for input 0 of shape \[2 3\]`
		return MatMulBad(g, n.inputsArr[1]), // want `op "mm" VJP: MatMulBad: MatMulInto inner dims differ: \[2 5\] x \[3 5\]`
			MatMulTN(n.inputsArr[0], g)
	})
	v.Data = tensor.MatMulInto(v.scratch(), a.Data, b.Data)
	return v
}
