// Package tensor is a minimal stub of the real tensor package for the
// vjpshape fixture; the analyzer models these kernels by name.
package tensor

// Tensor mirrors the real row-major tensor header.
type Tensor struct{ data []float64 }

// AddInto writes a+b into dst.
func AddInto(dst, a, b *Tensor) *Tensor { _, _ = a, b; return dst }

// MatMulInto writes a·b into dst.
func MatMulInto(dst, a, b *Tensor) *Tensor { _, _ = a, b; return dst }

// MatMulNTInto writes a·bᵀ into dst.
func MatMulNTInto(dst, a, b *Tensor) *Tensor { _, _ = a, b; return dst }

// MatMulTNInto writes aᵀ·b into dst.
func MatMulTNInto(dst, a, b *Tensor) *Tensor { _, _ = a, b; return dst }

// TransposeInto writes aᵀ into dst.
func TransposeInto(dst, a *Tensor) *Tensor { _ = a; return dst }
