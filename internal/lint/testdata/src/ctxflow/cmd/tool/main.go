// Command tool is exempt from the root-context ban: binaries own the
// root context.
package main

import "context"

func main() {
	ctx := context.Background() // no report: cmd packages mint the root
	_ = ctx
}
