// Package p exercises context.Context discipline.
package p

import "context"

type server struct {
	ctx context.Context // want "context.Context stored in a struct field"
	n   int
}

type allowed struct {
	//lint:allow ctxflow held only between Start and the deferred Stop
	ctx context.Context
}

func firstOK(ctx context.Context, n int) {}

func notFirst(n int, ctx context.Context) {} // want "context.Context must be the first parameter"

type handler func(name string, ctx context.Context) // want "context.Context must be the first parameter"

// Doer is an interface with a misplaced context.
type Doer interface {
	Do(name string, ctx context.Context) error // want "context.Context must be the first parameter"
}

func mintsRoot() context.Context {
	return context.Background() // want "context.Background in library code"
}

func mintsTODO() {
	_ = context.TODO() // want "context.TODO in library code"
}

//lint:hotpath
func hotLoop(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // want "never consults its context"
		total += x
	}
	return total
}

//lint:hotpath
func hotLoopOK(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		if ctx.Err() != nil {
			return total
		}
		total += x
	}
	return total
}

// helper is on hotRoot's call path, takes a ctx, and ignores it.
func helper(ctx context.Context, xs []int) {
	for range xs { // want "never consults its context"
	}
}

//lint:hotpath
func hotRoot(ctx context.Context, xs []int) {
	helper(ctx, xs)
}

// coldLoop takes a ctx and ignores it, but is not on any hot path.
func coldLoop(ctx context.Context, xs []int) {
	for range xs { // no report: not reachable from a //lint:hotpath root
	}
}
