// Package p exercises the goroutineleak analyzer.
package p

import "sync"

// orphanedReceive: the goroutine receives from a channel nobody else
// ever touches — it blocks forever.
func orphanedReceive() {
	done := make(chan struct{})
	go func() { // want `goroutine blocks forever: it receives from done, which nothing else ever sends on or closes`
		<-done
	}()
}

// orphanedSend: an unbuffered send with no receiver anywhere.
func orphanedSend() {
	out := make(chan int)
	go func() { // want `goroutine blocks forever: it sends on unbuffered out, which nothing else ever receives from`
		out <- 1
	}()
}

// orphanedRange: ranging over an orphaned channel is a receive.
func orphanedRange() {
	feed := make(chan int)
	go func() { // want `goroutine blocks forever: it receives from feed, which nothing else ever sends on or closes`
		for v := range feed {
			_ = v
		}
	}()
}

// bufferedSendOK: the buffer absorbs the send; the goroutine exits.
func bufferedSendOK() {
	out := make(chan int, 1)
	go func() {
		out <- 1
	}()
}

// consumedOK: the spawner receives, so the rendezvous completes.
func consumedOK() int {
	out := make(chan int)
	go func() {
		out <- 42
	}()
	return <-out
}

// closedOK: the spawner closes the channel the goroutine ranges over.
func closedOK(vals []int) {
	feed := make(chan int, len(vals))
	go func() {
		for v := range feed {
			_ = v
		}
	}()
	for _, v := range vals {
		feed <- v
	}
	close(feed)
}

// escapesOK: the channel leaves the function; a peer may exist.
func escapesOK(sink func(chan int)) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	sink(ch)
}

// sharedPairOK: two goroutines use the channel as peers of each other.
func sharedPairOK() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	go func() { <-ch }()
}

// branchSendOK: only one branch ever sends, but the analysis is
// conservative about path feasibility — any peer mention outside the
// goroutine silences the report.
func branchSendOK(flag bool) {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	if flag {
		ch <- 1
	}
}

// unboundedSpawn: one goroutine per element, nothing joins or bounds.
func unboundedSpawn(jobs []int, handle func(int)) {
	for _, j := range jobs {
		go handle(j) // want `unbounded goroutine spawn: one goroutine per ranged element with no WaitGroup or bounding channel`
	}
}

// waitedSpawnOK: a WaitGroup joins every spawn.
func waitedSpawnOK(jobs []int, handle func(int)) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			handle(j)
		}()
	}
	wg.Wait()
}

// semaphoreSpawnOK: a buffered channel bounds concurrency.
func semaphoreSpawnOK(jobs []int, handle func(int)) {
	sem := make(chan struct{}, 4)
	for _, j := range jobs {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			handle(j)
		}()
	}
}

// fixedPoolOK: a 3-clause for loop spawns a fixed worker count — the
// shape of a bounded pool, outside the per-element heuristic.
func fixedPoolOK(tasks chan int, handle func(int)) {
	for w := 0; w < 4; w++ {
		go func() {
			for t := range tasks {
				handle(t)
			}
		}()
	}
}

// suppressedSpawn: an allow directive silences the report.
func suppressedSpawn(jobs []int, handle func(int)) {
	for _, j := range jobs {
		//lint:allow goroutineleak fire-and-forget by design, jobs is tiny
		go handle(j)
	}
}
