// Package p: directive-grammar error cases.
package p

//lint:statemachine StateQueued->StateDone // want "must be in a type declaration's doc comment"
var misplacedSM int

// Phase has a broken table.
//
//lint:statemachine PhaseA=>PhaseB // want "malformed //lint:statemachine edge"
//lint:statemachine PhaseA->Bogus // want `names "Bogus", which is not a constant of Phase`
type Phase int

const (
	// PhaseA starts the phase lifecycle.
	PhaseA Phase = iota
	// PhaseB ends it.
	PhaseB
)
