// Package p exercises declared-lifecycle transition checking.
package p

// State is a ticket lifecycle.
//
//lint:statemachine StateQueued->StateRunning StateRunning->StateDone
//lint:statemachine StateQueued->StateFailed StateRunning->StateFailed
type State int

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
)

// Ticket carries a lifecycle-typed field.
type Ticket struct{ state State }

func (t *Ticket) setState(s State) { t.state = s }

func (t *Ticket) fail() { t.setState(StateFailed) }

func legalChain(t *Ticket) {
	t.state = StateQueued
	t.state = StateRunning
	t.state = StateDone
}

func illegalDirect(t *Ticket) {
	t.state = StateDone
	t.state = StateRunning // want "illegal State transition StateDone -> StateRunning"
}

func illegalViaSetter(t *Ticket) {
	t.fail()
	t.setState(StateDone) // want "moves State from StateFailed to StateDone"
}

func joinLegal(t *Ticket, ok bool) {
	t.state = StateQueued
	if ok {
		t.state = StateRunning
	} else {
		t.state = StateFailed
	}
}

func joinIllegal(t *Ticket, ok bool) {
	t.state = StateQueued
	if ok {
		t.state = StateDone // want "illegal State transition StateQueued -> StateDone"
	} else {
		t.state = StateFailed
	}
	t.state = StateRunning // want "illegal State transition StateDone.StateFailed -> StateRunning"
}

func localVar() {
	s := StateQueued
	s = StateDone // want "illegal State transition StateQueued -> StateDone"
	_ = s
}

func degradeOnUnknown(t *Ticket, s State) {
	t.state = s
	t.state = StateQueued // no report: incoming state unknown
}

func degradeOnEscape(t *Ticket) {
	t.fail()
	audit(t)
	t.state = StateQueued // no report: t escaped to audit
}

func audit(t *Ticket) {}
