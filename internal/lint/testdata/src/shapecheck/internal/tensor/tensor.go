// Package tensor is a minimal stub of the real tensor package; the
// shapecheck analyzer models these functions by name and package-path
// suffix, so only the signatures matter.
package tensor

// Tensor mirrors the real row-major tensor header.
type Tensor struct{ data []float64 }

// New allocates a zeroed tensor of the given shape.
func New(shape ...int) *Tensor { _ = shape; return &Tensor{} }

// GetLike borrows a pooled tensor shaped like t.
func GetLike(t *Tensor) *Tensor { _ = t; return &Tensor{} }

// Put returns a borrowed tensor to the pool.
func Put(t *Tensor) { _ = t }

// Add accumulates o into t element-wise; shapes must match.
func (t *Tensor) Add(o *Tensor) *Tensor { _ = o; return t }

// Reshape returns a view of t with a new shape of equal element count.
func (t *Tensor) Reshape(shape ...int) *Tensor { _ = shape; return t }

// AddInto writes a+b into dst.
func AddInto(dst, a, b *Tensor) *Tensor { _, _ = a, b; return dst }

// MatMulInto writes the matrix product a·b into dst.
func MatMulInto(dst, a, b *Tensor) *Tensor { _, _ = a, b; return dst }

// AddBcastInto writes a+broadcast(b) into dst.
func AddBcastInto(dst, a, b *Tensor) *Tensor { _, _ = a, b; return dst }

// ViewInto points the empty header dst at t's storage under a new shape.
func ViewInto(dst, t *Tensor, shape ...int) *Tensor { _, _ = t, shape; return dst }
