// Package p exercises statically-provable tensor shape violations.
package p

import "quickdrop/internal/tensor"

func matmulInner() {
	a := tensor.New(2, 3)
	b := tensor.New(4, 5)
	dst := tensor.New(2, 5)
	tensor.MatMulInto(dst, a, b) // want `MatMulInto inner dims differ: \[2 3\] x \[4 5\]`
}

func matmulDst() {
	a := tensor.New(2, 3)
	b := tensor.New(3, 5)
	dst := tensor.New(2, 2)
	tensor.MatMulInto(dst, a, b) // want `MatMulInto destination \[2 2\] cannot hold result \[2 5\]`
}

func addDst() {
	a := tensor.New(2, 3)
	dst := tensor.New(2, 2)
	tensor.AddInto(dst, a, a) // want `AddInto destination \[2 2\] cannot hold result \[2 3\]`
}

func addMismatch() {
	a := tensor.New(2, 3)
	b := tensor.New(3, 2)
	a.Add(b) // want `Add shape mismatch \[2 3\] vs \[3 2\]`
}

func bcastFused() {
	x := tensor.New(4, 5)
	row := tensor.New(1, 3)
	dst := tensor.New(4, 5)
	tensor.AddBcastInto(dst, x, row) // want `AddBcastInto cannot broadcast \[1 3\] against \[4 5\]`
}

func bcastRank() {
	x := tensor.New(4, 5)
	row := tensor.New(3)
	tensor.AddBcastInto(nil, x, row) // want `AddBcastInto broadcast rank mismatch \[3\] vs \[4 5\]`
}

func reshapeElems() {
	v := tensor.New(4)
	_ = v.Reshape(5) // want `cannot reshape \[4\] as \[5\]: element counts differ`
}

func viewDst() {
	a := tensor.New(2, 3)
	dst := tensor.New(2, 3)
	tensor.ViewInto(dst, a, 3, 2) // want "ViewInto needs an empty destination header"
}

// branchJoin checks path sensitivity: after the merge only the second
// dimension is known, so the reshape is not provably wrong.
func branchJoin(flag bool) {
	t := tensor.New(2, 3)
	if flag {
		t = tensor.New(3, 3)
	}
	_ = t.Reshape(9) // ok: element count unknown after the join

	if flag {
		t = tensor.New(4, 2)
	} else {
		t = tensor.New(4, 2)
	}
	_ = t.Reshape(9) // want `cannot reshape \[4 2\] as \[9\]: element counts differ`
}

// symbolic checks that provable relations survive unknown dimensions.
func symbolic(m, n int) {
	a := tensor.New(m, n)
	_ = a.Reshape(n * m) // ok: m*n elements either way
}

// loopWidens checks that a loop-carried rebinding widens to unknown
// instead of reporting from a stale pre-loop shape.
func loopWidens(xs []*tensor.Tensor) {
	t := tensor.New(2, 3)
	for _, x := range xs {
		t = x
	}
	_ = t.Reshape(7) // ok: t is unknown after the loop
}

func dstNil() {
	a := tensor.New(2, 3)
	b := tensor.New(2, 3)
	tensor.AddInto(nil, a, b) // ok: nil destination allocates
}

func suppressed() {
	a := tensor.New(2, 3)
	_ = a.Reshape(7) //lint:allow shapecheck deliberately exercising the suppression path
}
