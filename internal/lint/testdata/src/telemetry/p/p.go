// Package p exercises the telemetry hot-path rule: record calls pass,
// everything else in the telemetry package is flagged when reachable
// from a //lint:hotpath root.
package p

import "quickdrop/internal/telemetry"

// step is the per-iteration worker of a training loop.
//
//lint:hotpath
func step(c *telemetry.Counter, tr *telemetry.Tracer) {
	c.Inc() // ok: record path
	sp := tr.Start(1)
	_ = sp.End() // ok: span record pair
	helper(tr)
}

func helper(tr *telemetry.Tracer) {
	_ = tr.Snapshot() // want "telemetry call Snapshot on the hot path of helper"
}

func cold(r *telemetry.Registry) *telemetry.Counter {
	return r.NewCounter("x") // ok: not reachable from a hot-path root
}

// warm registers its instrument before the loop body, with a reasoned
// exemption.
//
//lint:hotpath
func warm(r *telemetry.Registry) {
	c := r.NewCounter("warm") //lint:allow telemetry one-time registration before the loop body
	c.Inc()
}

// record drives the flight recorder from the loop body: the ring-slot
// appends pass, the read-side snapshot and downsample calls are
// flagged.
//
//lint:hotpath
func record(p *telemetry.Pipeline, s *telemetry.SeriesStore, id telemetry.SeriesID) {
	p.RecordLoss(1, 0.5) // ok: record path
	s.Append(id, 1, 2)   // ok: ring-slot write
	readBack(s, id)
}

func readBack(s *telemetry.SeriesStore, id telemetry.SeriesID) {
	pts := s.Points(id)               // want "telemetry call Points on the hot path of readBack"
	_ = telemetry.Downsample(pts, 10) // want "telemetry call Downsample on the hot path of readBack"
}

func plot(s *telemetry.SeriesStore) telemetry.SeriesID {
	return s.Register("loss", 64) // ok: not hot-reachable
}
