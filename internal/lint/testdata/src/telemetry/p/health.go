// The health-monitor half of the telemetry rule: the sampling gate and
// latch-only Record* observations pass on hot paths; Check, Reset, and
// Summary — which emit events, lock, or allocate — are flagged.
package p

import "quickdrop/internal/telemetry/health"

// trainStep is the per-iteration worker of an instrumented loop.
//
//lint:hotpath
func trainStep(m *health.Monitor, loss float64) {
	m.BeginPhase("train") // ok: plain field writes
	if m.Sample() {       // ok: cadence gate
		m.RecordLoss(1, loss)              // ok: latch-only observation
		m.RecordLayer(0, 1, 2, 0, 1, 4, 0) // ok: latch-only observation
		m.RecordDistill(1, 0.5, 2, 0)      // ok: latch-only observation
	}
	watchdog(m)
}

func watchdog(m *health.Monitor) {
	m.RecordRound(1, 3, 0) // ok: latch-only observation
	if m.Tripped() {       // ok: atomic verdict read
		_ = m.Check() // want "health call Check on the hot path of watchdog"
		m.Reset()     // want "health call Reset on the hot path of watchdog"
	}
}

// roundBoundary runs between rounds, outside any hot-path root, where
// the warm-path calls are legitimate.
func roundBoundary(m *health.Monitor) error {
	if err := m.Check(); err != nil {
		return err
	}
	_ = m.Summary() // ok: not hot-reachable
	return nil
}
