// Package telemetry stubs the observability API surface for the
// telemetry golden tests: atomic record paths next to allocating
// constructors and snapshot/export calls.
package telemetry

// Counter is an atomic counter handle.
type Counter struct{ v int64 }

// Inc is a record path (allocation-free).
func (c *Counter) Inc() { c.v++ }

// Value is a read path (allocation-free).
func (c *Counter) Value() int64 { return c.v }

// Registry owns metric registration.
type Registry struct{ names []string }

// NewRegistry allocates a registry.
func NewRegistry() *Registry { return &Registry{} }

// NewCounter registers a metric — setup-time only.
func (r *Registry) NewCounter(name string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

// Span is a live span handle.
type Span struct{ id uint64 }

// Tracer records spans into a ring buffer.
type Tracer struct{ ring []uint64 }

// Start opens a span (record path).
func (t *Tracer) Start(kind int) Span { return Span{id: uint64(kind)} }

// End closes a span (record path).
func (s Span) End() int64 { return int64(s.id) }

// Snapshot copies the ring out — reporting only.
func (t *Tracer) Snapshot() []uint64 {
	out := make([]uint64, len(t.ring))
	copy(out, t.ring)
	return out
}

// SeriesID addresses one pre-registered series.
type SeriesID int32

// SeriesStore is the flight recorder's bounded series log.
type SeriesStore struct{ rings [][]float64 }

// Register adds a series — setup-time only (allocates the ring).
func (s *SeriesStore) Register(name string, capacity int) SeriesID {
	s.rings = append(s.rings, make([]float64, capacity))
	return SeriesID(len(s.rings) - 1)
}

// Append writes one ring slot (record path, allocation-free).
func (s *SeriesStore) Append(id SeriesID, x, y float64) {
	s.rings[id][0] = y
}

// Points copies the retained samples out — reporting only.
func (s *SeriesStore) Points(id SeriesID) []float64 {
	out := make([]float64, len(s.rings[id]))
	copy(out, s.rings[id])
	return out
}

// Pipeline bundles record handles.
type Pipeline struct{ s *SeriesStore }

// RecordLoss appends one loss sample (record path).
func (p *Pipeline) RecordLoss(x, loss float64) { p.s.Append(0, x, loss) }

// Downsample reduces a series for plotting — reporting only.
func Downsample(pts []float64, threshold int) []float64 {
	out := make([]float64, 0, threshold)
	return append(out, pts...)
}
