// Package telemetry stubs the observability API surface for the
// telemetry golden tests: atomic record paths next to allocating
// constructors and snapshot/export calls.
package telemetry

// Counter is an atomic counter handle.
type Counter struct{ v int64 }

// Inc is a record path (allocation-free).
func (c *Counter) Inc() { c.v++ }

// Value is a read path (allocation-free).
func (c *Counter) Value() int64 { return c.v }

// Registry owns metric registration.
type Registry struct{ names []string }

// NewRegistry allocates a registry.
func NewRegistry() *Registry { return &Registry{} }

// NewCounter registers a metric — setup-time only.
func (r *Registry) NewCounter(name string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

// Span is a live span handle.
type Span struct{ id uint64 }

// Tracer records spans into a ring buffer.
type Tracer struct{ ring []uint64 }

// Start opens a span (record path).
func (t *Tracer) Start(kind int) Span { return Span{id: uint64(kind)} }

// End closes a span (record path).
func (s Span) End() int64 { return int64(s.id) }

// Snapshot copies the ring out — reporting only.
func (t *Tracer) Snapshot() []uint64 {
	out := make([]uint64, len(t.ring))
	copy(out, t.ring)
	return out
}
