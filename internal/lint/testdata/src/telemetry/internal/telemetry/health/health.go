// Package health stubs the numerics health monitor API surface for the
// telemetry golden tests: latch-only record paths next to the warm-path
// Check/Reset/Summary calls that emit, lock, or allocate.
package health

// Monitor watches a run's numerics.
type Monitor struct {
	tick    uint64
	tripped bool
}

// Sample is the hot-path cadence gate (allocation-free).
func (m *Monitor) Sample() bool {
	if m == nil {
		return false
	}
	m.tick++
	return m.tick%16 == 0
}

// RecordLoss latches a loss observation (record path).
func (m *Monitor) RecordLoss(x, loss float64) {
	if m != nil && loss != loss {
		m.tripped = true
	}
}

// RecordLayer latches one layer's gradient statistics (record path).
func (m *Monitor) RecordLayer(layer int, x, gradNorm float64, gradBad int, updNorm, paramNorm float64, paramBad int) {
	if m != nil && gradBad > 0 {
		m.tripped = true
	}
}

// RecordDistill latches a distillation step observation (record path).
func (m *Monitor) RecordDistill(x, dist, gradNorm float64, bad int) {
	if m != nil && bad > 0 {
		m.tripped = true
	}
}

// RecordRound latches a round-boundary parameter norm (record path).
func (m *Monitor) RecordRound(x, paramNorm float64, bad int) {
	if m != nil && bad > 0 {
		m.tripped = true
	}
}

// BeginPhase re-baselines the loss EWMA (record path).
func (m *Monitor) BeginPhase(phase string) {}

// Tripped reads the latched verdict (allocation-free).
func (m *Monitor) Tripped() bool { return m != nil && m.tripped }

// Check emits the trip event and returns the verdict — warm path only.
func (m *Monitor) Check() error {
	if m == nil || !m.tripped {
		return nil
	}
	return &UnhealthyError{}
}

// Reset re-arms a tripped monitor — warm path only.
func (m *Monitor) Reset() {
	if m != nil {
		m.tripped = false
	}
}

// Summary allocates the manifest health block — reporting only.
func (m *Monitor) Summary() map[string]bool {
	return map[string]bool{"tripped": m.Tripped()}
}

// UnhealthyError is the watchdog verdict.
type UnhealthyError struct{}

// Error implements error.
func (e *UnhealthyError) Error() string { return "unhealthy" }
