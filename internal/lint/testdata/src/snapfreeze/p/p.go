// Package p exercises published-snapshot immutability.
package p

import (
	"quickdrop/internal/serve"
	"quickdrop/internal/tensor"
)

func readOnly(s *serve.Snapshot) float64 {
	total := 0.0
	for _, p := range s.Params() {
		total += p.Sum()
	}
	return total
}

func mutatesElement(s *serve.Snapshot) {
	params := s.Params()
	params[0].Zero() // want "Zero mutates snapshot parameters"
}

func mutatesViaRange(s *serve.Snapshot, o *tensor.Tensor) {
	for _, p := range s.Params() {
		p.AddInPlace(o) // want "AddInPlace mutates snapshot parameters"
	}
}

func mutatesViaAlias(s *serve.Snapshot, src []float64) {
	params := s.Params()
	t := params[1]
	copy(t.Data(), src) // want "copy into snapshot parameter storage"
}

func mutatesView(s *serve.Snapshot) {
	v := s.Params()[0].View(0, 2)
	v.Zero() // want "Zero mutates snapshot parameters"
}

func storesElement(s *serve.Snapshot, t *tensor.Tensor) {
	params := s.Params()
	params[0] = t // want "element store into snapshot parameters"
}

func intoDest(s *serve.Snapshot, a, b *tensor.Tensor) {
	p := s.Params()[0]
	tensor.AddInto(p, a, b) // want "snapshot parameter used as AddInto destination"
}

// scrub mutates its argument; callers passing snapshot parameters are
// flagged through its summary.
func scrub(t *tensor.Tensor) {
	t.Zero()
}

// scrubTwice mutates transitively.
func scrubTwice(t *tensor.Tensor) { scrub(t) }

func mutatesViaHelper(s *serve.Snapshot) {
	p := s.Params()[0]
	scrub(p) // want "scrub mutates its argument 0"
}

func mutatesTransitively(s *serve.Snapshot) {
	p := s.Params()[0]
	scrubTwice(p) // want "scrubTwice mutates its argument 0"
}

func reassigned(s *serve.Snapshot) {
	p := s.Params()[0]
	p = tensor.New(4)
	p.Zero() // no report: p was rebound to a fresh tensor
}

func copiesOut(s *serve.Snapshot, dst *tensor.Tensor) {
	dst.CopyFrom(s.Params()[0]) // no report: the parameter is only read
}
