// Package tensor stubs the real kernel package for the snapfreeze
// golden tests.
package tensor

// Tensor is a minimal stand-in for the real tensor type.
type Tensor struct{ data []float64 }

// Data exposes the backing storage.
func (t *Tensor) Data() []float64 { return t.data }

// Sum reduces the tensor to a scalar.
func (t *Tensor) Sum() float64 { return float64(len(t.data)) }

// Zero clears the tensor in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// CopyFrom overwrites t's elements with src's.
func (t *Tensor) CopyFrom(src *Tensor) {}

// AddInPlace accumulates o into t.
func (t *Tensor) AddInPlace(o *Tensor) {}

// View returns a tensor sharing t's storage.
func (t *Tensor) View(lo, hi int) *Tensor { return &Tensor{data: t.data[lo:hi]} }

// AddInto writes a+b into dst.
func AddInto(dst, a, b *Tensor) {}

// New allocates a fresh tensor.
func New(n int) *Tensor { return &Tensor{data: make([]float64, n)} }
