// Package serve stubs the snapshot store for the snapfreeze golden
// tests.
package serve

import "quickdrop/internal/tensor"

// Snapshot is a published model version.
type Snapshot struct{ params []*tensor.Tensor }

// Params returns the published parameter tensors.
func (s *Snapshot) Params() []*tensor.Tensor { return s.params }

// Release drops the caller's reference.
func (s *Snapshot) Release() {}

// reset is exempt: the store owns its buffers before publication and
// after the last release.
func (s *Snapshot) reset() {
	for _, p := range s.Params() {
		p.Zero() // no report: Snapshot methods are exempt
	}
}
