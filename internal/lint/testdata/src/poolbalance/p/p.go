// Package p exercises pool borrow/release balance and escape detection.
package p

import "quickdrop/internal/tensor"

type holder struct{ buf *tensor.Tensor }

func balanced(x *tensor.Tensor) {
	buf := tensor.GetLike(x)
	defer tensor.Put(buf)
	buf.Sum()
}

func sliceBalanced(xs []*tensor.Tensor) {
	bufs := make([]*tensor.Tensor, len(xs))
	for i := range xs {
		bufs[i] = tensor.GetLike(xs[i])
	}
	defer tensor.PutAll(bufs)
}

func viaPool(p *tensor.Pool) {
	buf := p.Get(2, 2)
	defer p.Put(buf)
}

func scalarOK(x *tensor.Tensor) float64 {
	buf := tensor.GetLike(x)
	defer tensor.Put(buf)
	return buf.Sum()
}

func leaks(x *tensor.Tensor) {
	buf := tensor.GetLike(x) // want "pool Get has no matching"
	_ = buf
}

func escapes(x *tensor.Tensor) *tensor.Tensor {
	buf := tensor.GetLike(x) // want "escapes via a return or field store"
	return buf
}

func directReturn(x *tensor.Tensor) *tensor.Tensor {
	return tensor.GetLike(x) // want "pooled tensor is returned"
}

func fieldStore(h *holder, x *tensor.Tensor) {
	h.buf = tensor.GetLike(x) // want "stored in a field"
}

func discarded(x *tensor.Tensor) {
	_ = tensor.GetLike(x) // want "result is discarded"
}

func suppressed(x *tensor.Tensor) {
	buf := tensor.Get(4) //lint:allow poolbalance handed to a registry that Puts on shutdown
	_ = buf
}
