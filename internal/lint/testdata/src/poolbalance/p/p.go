// Package p exercises pool borrow/release balance and escape detection.
package p

import "quickdrop/internal/tensor"

type holder struct{ buf *tensor.Tensor }

func balanced(x *tensor.Tensor) {
	buf := tensor.GetLike(x)
	defer tensor.Put(buf)
	buf.Sum()
}

func sliceBalanced(xs []*tensor.Tensor) {
	bufs := make([]*tensor.Tensor, len(xs))
	for i := range xs {
		bufs[i] = tensor.GetLike(xs[i])
	}
	defer tensor.PutAll(bufs)
}

func viaPool(p *tensor.Pool) {
	buf := p.Get(2, 2)
	defer p.Put(buf)
}

func scalarOK(x *tensor.Tensor) float64 {
	buf := tensor.GetLike(x)
	defer tensor.Put(buf)
	return buf.Sum()
}

func leaks(x *tensor.Tensor) {
	buf := tensor.GetLike(x) // want "pool Get has no matching"
	_ = buf
}

func escapes(x *tensor.Tensor) *tensor.Tensor {
	buf := tensor.GetLike(x) // want "escapes via a return or field store"
	return buf
}

func directReturn(x *tensor.Tensor) *tensor.Tensor {
	return tensor.GetLike(x) // want "pooled tensor is returned"
}

func fieldStore(h *holder, x *tensor.Tensor) {
	h.buf = tensor.GetLike(x) // want "stored in a field"
}

func discarded(x *tensor.Tensor) {
	_ = tensor.GetLike(x) // want "result is discarded"
}

func earlyReturn(x *tensor.Tensor, flag bool) {
	buf := tensor.GetLike(x) // want "not Put on every path"
	if flag {
		return
	}
	tensor.Put(buf)
}

func loopOverwrite(xs []*tensor.Tensor) {
	var buf *tensor.Tensor
	for _, x := range xs {
		buf = tensor.GetLike(x) // want "overwrites a still-borrowed buffer"
	}
	tensor.Put(buf)
}

func doublePut(x *tensor.Tensor) {
	buf := tensor.GetLike(x)
	tensor.Put(buf)
	tensor.Put(buf) // want "Put twice on this path"
}

// lazyBorrow is clean: the nil guard proves the Get never overwrites a
// live borrow, and the buffer is Put after the loop.
func lazyBorrow(xs []*tensor.Tensor) {
	var buf *tensor.Tensor
	for _, x := range xs {
		if buf == nil {
			buf = tensor.GetLike(x)
		}
		_ = x
	}
	tensor.Put(buf)
}

// branchPut is clean: every path Puts exactly once.
func branchPut(x *tensor.Tensor, flag bool) {
	buf := tensor.GetLike(x)
	if flag {
		tensor.Put(buf)
		return
	}
	tensor.Put(buf)
}

// deferredClosure is clean: the deferred literal Puts on every exit.
func deferredClosure(x *tensor.Tensor) {
	buf := tensor.GetLike(x)
	defer func() { tensor.Put(buf) }()
	buf.Sum()
}

func suppressed(x *tensor.Tensor) {
	buf := tensor.Get(4) //lint:allow poolbalance handed to a registry that Puts on shutdown
	_ = buf
}
