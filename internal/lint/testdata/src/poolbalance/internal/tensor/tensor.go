// Package tensor stubs the real kernel package's pool API for the
// poolbalance golden tests.
package tensor

// Tensor is a minimal stand-in for the real tensor type.
type Tensor struct{ data []float64 }

// Sum reduces the tensor to a scalar.
func (t *Tensor) Sum() float64 { return float64(len(t.data)) }

// Get borrows a buffer of the given shape from the pool.
func Get(shape ...int) *Tensor { return &Tensor{} }

// GetLike borrows a buffer shaped like t.
func GetLike(t *Tensor) *Tensor { return &Tensor{} }

// Put returns a borrowed buffer to the pool.
func Put(t *Tensor) {}

// PutAll returns every buffer in ts to the pool.
func PutAll(ts []*Tensor) {}

// Pool is a stand-in for the arena type.
type Pool struct{}

// Get borrows a buffer from this pool.
func (p *Pool) Get(shape ...int) *Tensor { return &Tensor{} }

// Put returns a buffer to this pool.
func (p *Pool) Put(t *Tensor) {}
