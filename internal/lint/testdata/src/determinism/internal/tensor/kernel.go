// Package tensor stubs a numeric-kernel package for the determinism
// golden tests: wall-clock reads and global randomness are forbidden
// here.
package tensor

import (
	"math/rand"
	"time"
)

// Tensor is a minimal stand-in for the real tensor type.
type Tensor struct{ data []float64 }

// AddInPlace accumulates o into t.
func (t *Tensor) AddInPlace(o *Tensor) {}

func noise() float64 {
	return rand.Float64() // want "draws from the global math/rand source"
}

func seeded(rng *rand.Rand) float64 {
	return rng.Float64() // ok: injected generator
}

func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: seeded construction
}

func timed() int64 {
	return time.Now().UnixNano() // want "time.Now in internal package"
}
