// Package acct stubs an accounting layer: internal/ packages may not
// read the wall clock directly — not even for cost reporting — because
// internal/telemetry owns the module's clock.
package acct

import "time"

func stamp() time.Time {
	return time.Now() // want "time.Now in internal package"
}

func cost(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in internal package"
}

func budget(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) // ok: pure duration arithmetic, no clock read
}
