// Package telemetry stubs the module's wall-clock authority: the one
// place a clock read is legitimate, behind a reasoned suppression.
package telemetry

import "time"

func nowNanos() int64 {
	return time.Now().UnixNano() //lint:allow determinism telemetry is the module's sole wall-clock authority; readings feed reports, never numerics
}
