// Package p exercises the non-kernel determinism rules: global rand is
// forbidden everywhere, wall clock is fine here, and map-ordered
// accumulation is flagged.
package p

import (
	"math/rand"
	"time"

	"quickdrop/internal/tensor"
)

func pick(n int) int {
	return rand.Intn(n) // want "draws from the global math/rand source"
}

func measure() time.Time {
	return time.Now() // ok: outside internal/ — commands may read the clock
}

func reduce(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation driven by map iteration"
	}
	return sum
}

func reduceTensors(m map[string]*tensor.Tensor, acc *tensor.Tensor) {
	for _, t := range m {
		acc.AddInPlace(t) // want "tensor accumulation"
	}
}

func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer arithmetic is exact under any order
	}
	return n
}

func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:allow determinism summing a diagnostic counter, never fed back into training
	}
	return sum
}
