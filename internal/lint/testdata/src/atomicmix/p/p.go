// Package p exercises the atomicmix analyzer.
package p

import "sync/atomic"

type Counter struct {
	hits   int64
	misses int64
}

// Inc and Snapshot establish the atomic discipline for hits.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) Snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Racy reads hits plainly while Inc writes it atomically.
func (c *Counter) Racy() int64 {
	return c.hits // want `p.Counter.hits is accessed via sync/atomic in Inc but read/written plainly here`
}

// Reset stores plainly: a torn or lost write under concurrent Inc.
func (c *Counter) Reset() {
	c.hits = 0 // want `p.Counter.hits is accessed via sync/atomic in Inc`
}

// misses never sees an atomic access: plain use everywhere is clean.
func (c *Counter) Miss()         { c.misses++ }
func (c *Counter) Misses() int64 { return c.misses }

// NewCounter builds a fresh value; nothing shares it yet, so the plain
// initialization is exempt.
func NewCounter(seed int64) *Counter {
	c := &Counter{}
	c.hits = seed
	return c
}

// branchRead mixes on only one branch; the mix still races when that
// branch runs.
func branchRead(c *Counter, flag bool) int64 {
	if flag {
		return c.hits // want `p.Counter.hits is accessed via sync/atomic in Inc`
	}
	return -1
}

var total int64

func bump() { atomic.AddInt64(&total, 1) }

// report reads the package-level counter plainly.
func report() int64 {
	return total // want `p.total is accessed via sync/atomic in bump`
}

// handoff only takes the address; the callee's accesses classify.
func handoff()         { bumpVia(&total) }
func bumpVia(p *int64) { atomic.AddInt64(p, 1) }

// startupReset documents a deliberate pre-concurrency store.
func startupReset() {
	//lint:allow atomicmix single-goroutine startup, no readers exist yet
	total = 0
}
