package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"quickdrop/internal/lint/dataflow"
)

// LockOrder builds a whole-program lock-acquisition graph and reports
// cycles as potential deadlocks. Locks are grouped into classes — a
// mutex field of a named struct type ("telemetry.SeriesStore.mu") or a
// package-level mutex variable ("lint.stdImporter") — because two
// goroutines deadlock by taking two *instances* of the same classes in
// opposite orders just as surely as two globals.
//
// Within each function the currently-held class set is computed
// flow-sensitively over the CFG with the dataflow.LockSet lattice
// (union join, widening to Top, deferred Unlocks applied on the exit
// path). An acquisition while other classes are held adds held→acquired
// edges; a call made while holding propagates the callee's transitive
// acquisitions through an interprocedural summary fixpoint, so an
// A-holding function that reaches a B-locking helper three calls down
// still contributes the A→B edge. Goroutine spawns do not inherit the
// spawner's holdings (a different goroutine orders independently).
//
// Two findings result: a cycle among distinct classes (each edge on the
// cycle is reported at its acquisition site) and a sequence of two
// distinct instances of one class with no global order. The analysis
// runs once per program and only its first loaded package triggers it.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no cycles in the whole-program lock-acquisition order graph",
	Run:  runLockOrder,
}

// lockEdge is one held→acquired observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string // function containing the acquisition
	via      string // callee name when the edge came through a summary
}

// lockGraph is the acquisition graph: nodes are lock classes, edges the
// observed held→acquired pairs (deduplicated, first observation wins).
type lockGraph struct {
	nodes map[string]bool
	edges map[[2]string]*lockEdge
	order [][2]string // insertion order for deterministic reports
}

func newLockGraph() *lockGraph {
	return &lockGraph{nodes: make(map[string]bool), edges: make(map[[2]string]*lockEdge)}
}

func (g *lockGraph) addEdge(e *lockEdge) {
	g.nodes[e.from] = true
	g.nodes[e.to] = true
	key := [2]string{e.from, e.to}
	if _, ok := g.edges[key]; ok {
		return
	}
	g.edges[key] = e
	g.order = append(g.order, key)
}

// cycleEdges returns the edges that participate in a lock-order cycle:
// every edge whose endpoints belong to one strongly connected component
// with more than one node (self-edges are handled separately by the
// analyzer, as distinct-instance findings). The result preserves
// insertion order.
func (g *lockGraph) cycleEdges() []*lockEdge {
	comp := g.scc()
	var out []*lockEdge
	for _, key := range g.order {
		from, to := key[0], key[1]
		if from != to && comp[from] == comp[to] {
			out = append(out, g.edges[key])
		}
	}
	return out
}

// sccMembers lists the nodes of the component containing n, sorted.
func (g *lockGraph) sccMembers(n string) []string {
	comp := g.scc()
	id := comp[n]
	var out []string
	for node, c := range comp {
		if c == id {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// scc runs Tarjan's algorithm, mapping each node to a component ID.
func (g *lockGraph) scc() map[string]int {
	succs := make(map[string][]string)
	for _, key := range g.order {
		succs[key[0]] = append(succs[key[0]], key[1])
	}
	var nodes []string
	for n := range g.nodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, nComp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}

// --- the analyzer ---

// classElem encodes one held lock as "class\x00instance" for the
// LockSet (whose elements are plain strings).
func classElem(class, instance string) string { return class + "\x00" + instance }

func splitClassElem(e string) (class, instance string) {
	if i := strings.IndexByte(e, 0); i >= 0 {
		return e[:i], e[i+1:]
	}
	return e, ""
}

// lockClassOf names the class of a mutex receiver expression, or
// ok=false for receivers that have no stable cross-function identity
// (locals, parameters, index expressions).
func lockClassOf(info *types.Info, recv ast.Expr) (string, bool) {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		field, ok := info.Selections[e]
		if ok && field.Kind() == types.FieldVal {
			if n := namedOf(info.Types[e.X].Type); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + field.Obj().Name(), true
			}
		}
		// Qualified package-level var: pkg.Mu.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Name() + "." + v.Name(), true
				}
			}
		}
		return "", false
	case *ast.Ident:
		v, ok := identObj(info, e).(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		// Only package-level variables have cross-function identity.
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
		return "", false
	default:
		return "", false
	}
}

func runLockOrder(pass *Pass) {
	// Whole-program rule: run once, from the first loaded package.
	if len(pass.Prog.Packages) == 0 || pass.Pkg != pass.Prog.Packages[0] {
		return
	}

	lo := &lockOrder{
		pass:   pass,
		graph:  newLockGraph(),
		direct: make(map[*types.Func]map[string]bool),
		cg:     dataflow.NewCallGraph[*types.Func](),
	}

	// Phase 1: per-function syntactic summaries (direct acquisitions and
	// statically resolved callees), for the interprocedural closure.
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					lo.summarize(pkg, fn, fd)
				}
			}
		}
	}
	lo.closeSummaries()

	// Phase 2: flow-sensitive held-set analysis per unit, emitting
	// edges at acquisition sites and call sites.
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			funcUnits(f, func(body *ast.BlockStmt, enclosing string) {
				lo.analyzeUnit(pkg, body, enclosing)
			})
		}
	}

	// Phase 3: report cycles.
	reported := make(map[string]bool)
	for _, e := range lo.graph.cycleEdges() {
		members := lo.graph.sccMembers(e.from)
		cycle := strings.Join(members, " ⇄ ")
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via the call to %s)", e.via)
		}
		pass.Reportf(e.pos,
			"potential deadlock: %s is acquired while %s is held%s, and elsewhere the order is reversed; lock-order cycle {%s}",
			e.to, e.from, via, cycle)
	}
	for _, se := range lo.selfEdges {
		key := se.fn + "\x00" + se.from
		if reported[key] {
			continue
		}
		reported[key] = true
		pass.Reportf(se.pos,
			"potential deadlock: two distinct %s instances are locked in sequence with no global order; a concurrent caller with the operands swapped deadlocks",
			se.from)
	}
}

type lockOrder struct {
	pass      *Pass
	graph     *lockGraph
	selfEdges []*lockEdge
	// direct maps each declared function to the lock classes it
	// acquires in its own body; cg holds its statically resolved call
	// edges (goroutine payloads excluded — see summarize); all is the
	// transitive closure computed bottom-up over cg.
	direct map[*types.Func]map[string]bool
	cg     *dataflow.CallGraph[*types.Func]
	all    map[*types.Func]map[string]bool
}

// summarize records fn's direct acquisitions and callees. Goroutine
// payloads are excluded — a spawned goroutine synchronizes on its own
// schedule, so its acquisitions do not happen "inside" the spawner's
// critical section — but deferred and nested-literal code is included:
// both run on this goroutine.
func (lo *lockOrder) summarize(pkg *Package, fn *types.Func, fd *ast.FuncDecl) {
	lo.cg.AddNode(fn)
	acq := make(map[string]bool)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if op := isMutexMethod(calleeFunc(pkg.Info, x)); op == opLock || op == opRLock {
					if recv, ok := syncCallRecv(x); ok {
						if class, ok := lockClassOf(pkg.Info, recv); ok {
							acq[class] = true
						}
					}
					return true
				}
				if callee := calleeFunc(pkg.Info, x); callee != nil {
					if _, known := lo.pass.Prog.Decls[callee]; known {
						lo.cg.AddEdge(fn, callee)
					}
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body)
	lo.direct[fn] = acq
}

// closeSummaries computes the transitive acquisition sets bottom-up
// over the lock-specific call graph: the summary lattice is a set of
// lock classes, the transfer is "my direct acquisitions plus whatever
// my callees transitively acquire", and recursion converges because
// sets only grow.
func (lo *lockOrder) closeSummaries() {
	lo.all = dataflow.FixSummaries(lo.cg, dataflow.SummaryAnalysis[*types.Func, map[string]bool]{
		Bottom: func(fn *types.Func) map[string]bool {
			s := make(map[string]bool, len(lo.direct[fn]))
			for c := range lo.direct[fn] {
				s[c] = true
			}
			return s
		},
		Transfer: func(fn *types.Func, get func(*types.Func) map[string]bool) map[string]bool {
			s := make(map[string]bool, len(lo.direct[fn]))
			for c := range lo.direct[fn] {
				s[c] = true
			}
			for _, callee := range lo.cg.Callees(fn) {
				for c := range get(callee) {
					s[c] = true
				}
			}
			return s
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for c := range a {
				if !b[c] {
					return false
				}
			}
			return true
		},
	})
}

// analyzeUnit runs the held-set flow over one unit and emits edges.
func (lo *lockOrder) analyzeUnit(pkg *Package, body *ast.BlockStmt, enclosing string) {
	info := pkg.Info
	g := dataflow.NewFromBlock(body, func(call *ast.CallExpr) bool {
		return isBuiltinPanic(info, call)
	})
	if g == nil {
		return
	}

	emit := false // transfer records edges only during the replay pass
	transfer := func(n ast.Node, in dataflow.LockSet) dataflow.LockSet {
		out := in
		var walk func(n ast.Node, insideDefer bool)
		walk = func(n ast.Node, insideDefer bool) {
			ast.Inspect(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return insideDefer
				case *ast.GoStmt:
					return false // spawned goroutine: no inherited order
				case *ast.DeferStmt:
					return false // runs on the defers block
				case *ast.CallExpr:
					lo.flowCall(pkg, x, &out, emit, enclosing)
					return true
				}
				return true
			})
		}
		switch s := n.(type) {
		case *dataflow.DeferRun:
			walk(s.D.Call, true)
		default:
			walk(n, false)
		}
		return out
	}

	an := dataflow.Analysis[dataflow.LockSet]{
		Join:  dataflow.LockSet.Join,
		Equal: dataflow.LockSet.Equal,
		Stmt:  transfer,
	}
	res := dataflow.Forward(g, an)

	emit = true
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = transfer(n, f)
		}
	}
}

// flowCall folds one call into the held set, emitting edges when emit
// is set: acquisitions add held→acquired edges (and the held element),
// releases remove their element, and calls to summarized functions add
// held→callee-acquired edges.
func (lo *lockOrder) flowCall(pkg *Package, call *ast.CallExpr, held *dataflow.LockSet, emit bool, enclosing string) {
	info := pkg.Info
	callee := calleeFunc(info, call)
	if op := isMutexMethod(callee); op != opNone {
		recv, ok := syncCallRecv(call)
		if !ok {
			return
		}
		class, ok := lockClassOf(info, recv)
		if !ok {
			return
		}
		_, instance, _ := receiverPath(info, recv)
		switch op {
		case opLock, opRLock:
			if emit && !held.IsTop() {
				for _, e := range held.Elems() {
					hc, hi := splitClassElem(e)
					switch {
					case hc == class && hi != instance:
						lo.selfEdges = append(lo.selfEdges, &lockEdge{from: class, to: class, pos: call.Pos(), fn: enclosing})
					case hc != class:
						lo.graph.addEdge(&lockEdge{from: hc, to: class, pos: call.Pos(), fn: enclosing})
					}
				}
			}
			*held = held.Insert(classElem(class, instance))
		case opUnlock, opRUnlock:
			*held = held.Remove(classElem(class, instance))
		}
		return
	}
	if callee == nil || held.IsTop() || held.Len() == 0 {
		return
	}
	if !emit {
		return
	}
	for c := range lo.all[callee] {
		for _, e := range held.Elems() {
			hc, _ := splitClassElem(e)
			if hc != c {
				lo.graph.addEdge(&lockEdge{from: hc, to: c, pos: call.Pos(), fn: enclosing, via: callee.Name()})
			}
		}
	}
}
