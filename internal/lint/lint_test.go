package lint

import (
	"go/token"
	"testing"
)

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 18 {
		t.Fatalf("suite has %d analyzers, want 18", len(all))
	}

	subset, err := ByName("errcheck, poolbalance")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name != "errcheck" || subset[1].Name != "poolbalance" {
		t.Fatalf("ByName subset = %v", subset)
	}

	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a.go", Line: 3, Column: 7},
		Rule:    "errcheck",
		Message: "boom",
	}
	if got, want := d.String(), "a.go:3:7: errcheck: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
