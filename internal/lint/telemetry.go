package lint

import "go/ast"

// Telemetry keeps the observability layer honest about its own
// zero-allocation contract: inside functions reachable from a
// //lint:hotpath root, only the record-path calls of the
// internal/telemetry package may appear — the atomic counter/gauge/
// histogram updates, the span start/end pair, and the stopwatch reads.
// Everything else in the package (constructors, registries, exporters,
// snapshots, the JSONL event log) allocates or takes locks and belongs
// in setup or reporting code, not in a training step.
//
// The hot-reachable set is the same one hotpathalloc computes, so the
// two analyzers agree on what "the hot path" is.
var Telemetry = &Analyzer{
	Name: "telemetry",
	Doc:  "only allocation-free telemetry record calls on //lint:hotpath paths",
	Run:  runTelemetryRule,
}

// recordSafeTelemetry are the internal/telemetry functions and methods
// proven allocation-free by the package's AllocsPerRun tests. Anything
// outside this set is flagged when called from a hot-reachable
// function.
var recordSafeTelemetry = map[string]bool{
	// metric record paths
	"Inc": true, "Add": true, "Set": true,
	"Observe": true, "ObserveDuration": true, "Value": true, "At": true,
	// clock reads
	"Now": true, "StartTimer": true, "Elapsed": true,
	// span record paths
	"Start": true, "End": true,
	// pipeline per-step instruments
	"LocalStep": true, "StartRound": true, "EndRound": true,
	"StartClient": true, "EndClient": true,
	"StartDistill": true, "EndDistill": true,
	"DropUpdate": true, "Request": true,
	// flight-recorder record paths (series appends and the pipeline
	// wrappers over them, plus the streaming quantile fold)
	"Append": true, "RecordLoss": true, "RecordAccuracy": true,
	"RecordSplitAccuracy": true,
}

// recordSafeHealth are the internal/telemetry/health methods proven
// allocation-free by the package's AllocsPerRun tests: the sampling
// gate and the latch-only Record* observations. Everything else on the
// monitor — Check (emits the JSONL trip event under a lock), Reset,
// Summary, New, BindLayers — belongs at phase boundaries, not in a
// training step.
var recordSafeHealth = map[string]bool{
	"Sample": true, "RecordLoss": true, "RecordLayer": true,
	"RecordDistill": true, "RecordRound": true,
	"BeginPhase": true, "Tripped": true,
}

func runTelemetryRule(pass *Pass) {
	info := pass.Pkg.Info
	for fn, fd := range hotReachable(pass) {
		name := fn.Name()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			switch pkgPath := funcPkgPath(callee); {
			case hasPathSuffix(pkgPath, "internal/telemetry/health"):
				if recordSafeHealth[callee.Name()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"health call %s on the hot path of %s: only the sampling gate and latch-only Record* observations belong on //lint:hotpath paths (Check/Reset/Summary run at phase boundaries)",
					callee.Name(), name)
			case hasPathSuffix(pkgPath, "internal/telemetry"):
				if recordSafeTelemetry[callee.Name()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"telemetry call %s on the hot path of %s: only allocation-free record calls (Inc/Add/Observe, span Start/End, stopwatch reads) belong on //lint:hotpath paths",
					callee.Name(), name)
			}
			return true
		})
	}
}
