package lint

import "testing"

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, Determinism)
}
