package dataflow

import "sort"

// LockSetCap bounds the size of a LockSet before widening collapses it
// to Top. Real functions hold a handful of locks at once; a set that
// grows past the cap means the analysis lost track (generated code, a
// pathological fixture) and the sound fallback is "unknown holdings".
const LockSetCap = 64

// LockSet is the join-semilattice fact of the lock-tracking analyses: an
// immutable sorted set of held-lock names, with an explicit Top element
// meaning "holdings unknown". The zero value is the empty set (bottom).
// Join is set union — the may-hold interpretation: an element is present
// when some path to this point acquired it and no tracked release
// happened since. All operations return new sets; the receiver is never
// mutated, so facts can be shared between CFG blocks.
type LockSet struct {
	// elems is sorted and duplicate-free. Invalid (ignored) when top.
	elems []string
	top   bool
}

// TopLockSet is the lattice's top element: holdings unknown. Analyses
// must degrade gracefully on Top — typically by emitting no facts/edges
// rather than all of them, preserving the no-false-positives bias.
var TopLockSet = LockSet{top: true}

// IsTop reports whether the set is the unknown-holdings element.
func (s LockSet) IsTop() bool { return s.top }

// Len returns the element count (0 for Top — Top enumerates nothing).
func (s LockSet) Len() int {
	if s.top {
		return 0
	}
	return len(s.elems)
}

// Has reports membership. Top contains nothing enumerable: analyses
// that ask "is this lock provably held" must get "no" on unknown
// holdings.
func (s LockSet) Has(name string) bool {
	if s.top {
		return false
	}
	i := sort.SearchStrings(s.elems, name)
	return i < len(s.elems) && s.elems[i] == name
}

// Elems returns the sorted elements (nil for Top). The slice is shared;
// callers must not mutate it.
func (s LockSet) Elems() []string {
	if s.top {
		return nil
	}
	return s.elems
}

// Insert returns s ∪ {name}, widening to Top past LockSetCap.
func (s LockSet) Insert(name string) LockSet {
	if s.top || s.Has(name) {
		return s
	}
	out := make([]string, 0, len(s.elems)+1)
	out = append(out, s.elems...)
	out = append(out, name)
	sort.Strings(out)
	return LockSet{elems: out}.widen()
}

// Remove returns s \ {name}. Removing from Top keeps Top: once holdings
// are unknown, one release cannot make them known again.
func (s LockSet) Remove(name string) LockSet {
	if s.top || !s.Has(name) {
		return s
	}
	out := make([]string, 0, len(s.elems)-1)
	for _, e := range s.elems {
		if e != name {
			out = append(out, e)
		}
	}
	return LockSet{elems: out}
}

// RemoveFunc returns s with every element matching pred removed.
func (s LockSet) RemoveFunc(pred func(string) bool) LockSet {
	if s.top {
		return s
	}
	out := make([]string, 0, len(s.elems))
	for _, e := range s.elems {
		if !pred(e) {
			out = append(out, e)
		}
	}
	if len(out) == len(s.elems) {
		return s
	}
	return LockSet{elems: out}
}

// Join is the lattice join: set union, with Top absorbing. The result
// widens to Top past LockSetCap so chains stabilize (the lattice height
// seen by the fixpoint solver is bounded by the cap).
func (s LockSet) Join(o LockSet) LockSet {
	if s.top || o.top {
		return TopLockSet
	}
	if len(s.elems) == 0 {
		return o
	}
	if len(o.elems) == 0 {
		return s
	}
	out := make([]string, 0, len(s.elems)+len(o.elems))
	i, j := 0, 0
	for i < len(s.elems) && j < len(o.elems) {
		switch {
		case s.elems[i] < o.elems[j]:
			out = append(out, s.elems[i])
			i++
		case s.elems[i] > o.elems[j]:
			out = append(out, o.elems[j])
			j++
		default:
			out = append(out, s.elems[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, s.elems[i:]...)
	out = append(out, o.elems[j:]...)
	return LockSet{elems: out}.widen()
}

// Equal reports lattice equality.
func (s LockSet) Equal(o LockSet) bool {
	if s.top || o.top {
		return s.top == o.top
	}
	if len(s.elems) != len(o.elems) {
		return false
	}
	for i := range s.elems {
		if s.elems[i] != o.elems[i] {
			return false
		}
	}
	return true
}

// widen collapses oversized sets to Top.
func (s LockSet) widen() LockSet {
	if !s.top && len(s.elems) > LockSetCap {
		return TopLockSet
	}
	return s
}
