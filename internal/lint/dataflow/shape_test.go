package dataflow

import "testing"

func TestDimArithmetic(t *testing.T) {
	n := DimSym("n")
	two := DimConst(2)
	three := DimConst(3)

	if got := two.Mul(three); got.C != 6 || len(got.Syms) != 0 {
		t.Errorf("2*3 = %v, want 6", got)
	}
	n2 := n.Mul(two) // 2n
	if n2.C != 2 || len(n2.Syms) != 1 || n2.Syms[0] != "n" {
		t.Errorf("n*2 = %+v, want 2·n", n2)
	}
	// Exact division recovers the factor.
	if got := n2.Div(n); got.Eq(two) != True {
		t.Errorf("2n/n = %v, want 2", got)
	}
	// Inexact division is unknown.
	if got := three.Div(two); got.Known() {
		t.Errorf("3/2 = %v, want unknown", got)
	}
	if got := two.Div(n); got.Known() {
		t.Errorf("2/n = %v, want unknown", got)
	}
	// Unknown absorbs products.
	if got := (Dim{}).Mul(two); got.Known() {
		t.Errorf("unknown*2 = %v, want unknown", got)
	}
	// Non-positive constants are meaningless.
	if DimConst(0).Known() || DimConst(-3).Known() {
		t.Errorf("non-positive constants must be unknown")
	}
}

func TestDimEqThreeValued(t *testing.T) {
	n := DimSym("n")
	m := DimSym("m")
	cases := []struct {
		a, b Dim
		want Tri
	}{
		{DimConst(2), DimConst(2), True},
		{DimConst(2), DimConst(3), False},
		// Same symbolic factors compare by constant: 2n vs 3n can never
		// coincide because n > 0.
		{n.Mul(DimConst(2)), n.Mul(DimConst(3)), False},
		{n.Mul(DimConst(2)), n.Mul(DimConst(2)), True},
		// Different symbols might coincide at runtime.
		{n, m, Unknown},
		{n, DimConst(2), Unknown},
		{Dim{}, DimConst(2), Unknown},
		{Dim{}, Dim{}, Unknown},
	}
	for _, c := range cases {
		if got := c.a.Eq(c.b); got != c.want {
			t.Errorf("(%v).Eq(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDimJoin(t *testing.T) {
	n := DimSym("n")
	if got := DimConst(2).Join(DimConst(2)); got.Eq(DimConst(2)) != True {
		t.Errorf("2 ⊔ 2 = %v, want 2", got)
	}
	if got := DimConst(2).Join(DimConst(3)); got.Known() {
		t.Errorf("2 ⊔ 3 = %v, want unknown", got)
	}
	if got := n.Join(n); got.Eq(n) != True {
		t.Errorf("n ⊔ n = %v, want n", got)
	}
	if got := n.Join(DimSym("m")); got.Known() {
		t.Errorf("n ⊔ m = %v, want unknown", got)
	}
}

func TestDimSubst(t *testing.T) {
	n := DimSym("n")
	// 2n² with n := 3m gives 18m².
	d := n.Mul(n).Mul(DimConst(2))
	got := d.Subst("n", DimSym("m").Mul(DimConst(3)))
	want := DimSym("m").Mul(DimSym("m")).Mul(DimConst(18))
	if got.Eq(want) != True {
		t.Errorf("subst = %+v, want %+v", got, want)
	}
	// Substituting an absent symbol is the identity.
	if got := d.Subst("q", DimConst(7)); got.Eq(d) != True {
		t.Errorf("identity subst changed %v to %v", d, got)
	}
}

func TestShapeEq(t *testing.T) {
	s23 := ShapeOf(DimConst(2), DimConst(3))
	cases := []struct {
		a, b Shape
		want Tri
	}{
		{s23, ShapeOf(DimConst(2), DimConst(3)), True},
		{s23, ShapeOf(DimConst(3), DimConst(2)), False},
		// Rank mismatch is provably different.
		{s23, ShapeOf(DimConst(6)), False},
		// A named unknown shape equals itself.
		{SymShape("s"), SymShape("s"), True},
		{SymShape("s"), SymShape("t"), Unknown},
		{SymShape("s"), s23, Unknown},
		// One unknown dimension degrades equality to unknown, but a
		// provably different sibling still wins.
		{ShapeOf(Dim{}, DimConst(3)), ShapeOf(DimConst(2), DimConst(3)), Unknown},
		{ShapeOf(Dim{}, DimConst(3)), ShapeOf(DimConst(2), DimConst(4)), False},
	}
	for _, c := range cases {
		if got := c.a.Eq(c.b); got != c.want {
			t.Errorf("(%v).Eq(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestShapeJoin(t *testing.T) {
	s23 := ShapeOf(DimConst(2), DimConst(3))
	// Identical shapes survive.
	if got := s23.Join(ShapeOf(DimConst(2), DimConst(3))); got.Eq(s23) != True {
		t.Errorf("join of equal shapes = %v, want [2 3]", got)
	}
	// Pointwise disagreement widens only the differing dimension.
	got := s23.Join(ShapeOf(DimConst(4), DimConst(3)))
	if len(got.Dims) != 2 {
		t.Fatalf("join rank = %d, want 2", len(got.Dims))
	}
	if got.Dims[0].Known() {
		t.Errorf("disagreeing dim survived the join: %v", got.Dims[0])
	}
	if got.Dims[1].Eq(DimConst(3)) != True {
		t.Errorf("agreeing dim widened: %v", got.Dims[1])
	}
	// Rank disagreement widens to top.
	if got := s23.Join(ShapeOf(DimConst(6))); got.Known() {
		t.Errorf("rank-mismatched join = %v, want top", got)
	}
	// The same named unknown shape survives.
	if got := SymShape("s").Join(SymShape("s")); got.Sym != "s" {
		t.Errorf("named join = %v, want s", got)
	}
	if got := SymShape("s").Join(SymShape("t")); got.Known() {
		t.Errorf("distinct named join = %v, want top", got)
	}
}

func TestShapeElems(t *testing.T) {
	n := DimSym("n")
	s := ShapeOf(DimConst(2), n, DimConst(3))
	want := n.Mul(DimConst(6))
	if got := s.Elems(); got.Eq(want) != True {
		t.Errorf("elems = %v, want 6n", got)
	}
	// The elements of the same named unknown shape compare equal — that
	// is what lets reshape-to-view chains verify.
	a, b := SymShape("s").Elems(), SymShape("s").Elems()
	if a.Eq(b) != True {
		t.Errorf("elems of the same named shape differ: %v vs %v", a, b)
	}
	if TopShape().Elems().Known() {
		t.Errorf("top shape has known element count")
	}
}

func TestShapeString(t *testing.T) {
	if got := ShapeOf(DimConst(2), DimConst(3)).String(); got != "[2 3]" {
		t.Errorf("String = %q, want [2 3]", got)
	}
	if got := ShapeOf(DimConst(2), DimSym("n")).String(); got != "[2 ?]" {
		t.Errorf("String = %q, want [2 ?]", got)
	}
	if got := TopShape().String(); got != "[...]" {
		t.Errorf("String = %q, want [...]", got)
	}
}

func TestShapeSubst(t *testing.T) {
	s := ShapeOf(DimSym("n"), DimConst(3))
	got := s.Subst("n", DimConst(2))
	if got.Eq(ShapeOf(DimConst(2), DimConst(3))) != True {
		t.Errorf("subst = %v, want [2 3]", got)
	}
	// Unranked shapes pass through.
	u := SymShape("s").Subst("n", DimConst(2))
	if u.Sym != "s" || u.Dims != nil {
		t.Errorf("unranked subst = %+v, want unchanged", u)
	}
}
