package dataflow

import (
	"fmt"
	"testing"
)

func setOf(names ...string) LockSet {
	var s LockSet
	for _, n := range names {
		s = s.Insert(n)
	}
	return s
}

func TestLockSetInsertRemoveHas(t *testing.T) {
	s := setOf("b", "a", "b", "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := fmt.Sprint(s.Elems()); got != "[a b c]" {
		t.Fatalf("Elems = %s, want sorted [a b c]", got)
	}
	if !s.Has("b") || s.Has("d") {
		t.Fatalf("Has is wrong: b=%v d=%v", s.Has("b"), s.Has("d"))
	}
	r := s.Remove("b")
	if r.Has("b") || r.Len() != 2 {
		t.Fatalf("Remove left %v", r.Elems())
	}
	// Immutability: the original is untouched.
	if !s.Has("b") || s.Len() != 3 {
		t.Fatalf("Remove mutated the receiver: %v", s.Elems())
	}
}

func TestLockSetJoinIsUnion(t *testing.T) {
	a := setOf("a", "c")
	b := setOf("b", "c", "d")
	j := a.Join(b)
	if got := fmt.Sprint(j.Elems()); got != "[a b c d]" {
		t.Fatalf("Join = %s, want [a b c d]", got)
	}
	if !j.Equal(b.Join(a)) {
		t.Fatal("Join is not commutative")
	}
	if !j.Join(j).Equal(j) {
		t.Fatal("Join is not idempotent")
	}
	var empty LockSet
	if !empty.Join(a).Equal(a) || !a.Join(empty).Equal(a) {
		t.Fatal("empty set is not the identity of Join")
	}
}

func TestLockSetEqual(t *testing.T) {
	if !setOf("x", "y").Equal(setOf("y", "x")) {
		t.Fatal("order-insensitive equality failed")
	}
	if setOf("x").Equal(setOf("x", "y")) {
		t.Fatal("unequal sets reported equal")
	}
	if setOf("x").Equal(TopLockSet) || !TopLockSet.Equal(TopLockSet) {
		t.Fatal("Top equality wrong")
	}
}

func TestLockSetWidensToTop(t *testing.T) {
	var s LockSet
	for i := 0; i <= LockSetCap; i++ {
		s = s.Insert(fmt.Sprintf("lock%03d", i))
	}
	if !s.IsTop() {
		t.Fatalf("set of %d elems did not widen to Top", LockSetCap+1)
	}
	// Top absorbs and stays Top under every operation.
	if !s.Join(setOf("a")).IsTop() || !setOf("a").Join(s).IsTop() {
		t.Fatal("Join with Top is not Top")
	}
	if !s.Insert("z").IsTop() || !s.Remove("lock000").IsTop() {
		t.Fatal("Insert/Remove on Top must keep Top")
	}
	if s.Has("lock000") || s.Elems() != nil || s.Len() != 0 {
		t.Fatal("Top must enumerate nothing")
	}
}

func TestLockSetJoinWidens(t *testing.T) {
	var a, b LockSet
	for i := 0; i < LockSetCap; i++ {
		a = a.Insert(fmt.Sprintf("a%03d", i))
		b = b.Insert(fmt.Sprintf("b%03d", i))
	}
	if a.IsTop() || b.IsTop() {
		t.Fatal("halves widened prematurely")
	}
	if !a.Join(b).IsTop() {
		t.Fatal("join past the cap did not widen to Top")
	}
}

func TestLockSetRemoveFunc(t *testing.T) {
	s := setOf("a|1", "a|2", "b|1")
	r := s.RemoveFunc(func(e string) bool { return e[0] == 'a' })
	if got := fmt.Sprint(r.Elems()); got != "[b|1]" {
		t.Fatalf("RemoveFunc = %s, want [b|1]", got)
	}
	if r2 := s.RemoveFunc(func(string) bool { return false }); !r2.Equal(s) {
		t.Fatal("no-op RemoveFunc changed the set")
	}
}
