package dataflow

import (
	"sort"
	"strconv"
)

// This file implements the symbolic tensor-shape domain of the
// shapecheck and vjpshape analyzers. A dimension is a product of a
// positive integer constant and named symbolic factors (parameters,
// len(x) terms, t.Dim(i) reads); a shape is either a vector of such
// dimensions or an opaque named shape of unknown rank. All comparisons
// are three-valued: provably equal, provably different, or unknown —
// the analyzers only report what is provable, so an unknown never
// becomes a diagnostic.
//
// The domain relies on every tensor dimension being a positive
// integer: c1·Πs and c2·Πs with identical symbolic factors are equal
// exactly when c1 == c2, which is what lets a reshape of n·2 elements
// into n·3 be rejected without knowing n.

// Dim is one symbolic dimension (or element count): C · Π Syms.
// The zero value is the unknown dimension (top).
type Dim struct {
	// C is the constant factor; 0 marks the unknown dimension.
	C int64
	// Syms are the symbolic factors, sorted, possibly repeated.
	Syms []string
}

// DimConst returns the constant dimension n (n must be positive to be
// meaningful; non-positive yields unknown).
func DimConst(n int64) Dim {
	if n <= 0 {
		return Dim{}
	}
	return Dim{C: n}
}

// DimSym returns the purely symbolic dimension named s.
func DimSym(s string) Dim { return Dim{C: 1, Syms: []string{s}} }

// Known reports whether d carries any information.
func (d Dim) Known() bool { return d.C != 0 }

// IsConst reports whether d is a plain integer constant.
func (d Dim) IsConst() bool { return d.C != 0 && len(d.Syms) == 0 }

// Mul returns the product of two dimensions (unknown absorbs).
func (d Dim) Mul(o Dim) Dim {
	if !d.Known() || !o.Known() {
		return Dim{}
	}
	syms := make([]string, 0, len(d.Syms)+len(o.Syms))
	syms = append(syms, d.Syms...)
	syms = append(syms, o.Syms...)
	sort.Strings(syms)
	return Dim{C: d.C * o.C, Syms: syms}
}

// Div returns d / o when the division is exact over the symbolic
// factors, and unknown otherwise.
func (d Dim) Div(o Dim) Dim {
	if !d.Known() || !o.Known() || o.C == 0 || d.C%o.C != 0 {
		return Dim{}
	}
	rest := append([]string(nil), d.Syms...)
	for _, s := range o.Syms {
		i := sort.SearchStrings(rest, s)
		if i >= len(rest) || rest[i] != s {
			return Dim{}
		}
		rest = append(rest[:i], rest[i+1:]...)
	}
	return Dim{C: d.C / o.C, Syms: rest}
}

// Tri is a three-valued truth: provably true, provably false, or
// unknown.
type Tri int

const (
	// Unknown means the comparison is undecidable in the domain.
	Unknown Tri = iota
	// True means provably true.
	True
	// False means provably false.
	False
)

// Eq compares two dimensions three-valuedly. Dimensions with identical
// symbolic factors compare by constant; differing symbolic factors are
// undecidable (the symbols might coincide at runtime).
func (d Dim) Eq(o Dim) Tri {
	if !d.Known() || !o.Known() {
		return Unknown
	}
	if symsEqual(d.Syms, o.Syms) {
		if d.C == o.C {
			return True
		}
		return False
	}
	return Unknown
}

func symsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Join is the lattice join: equal dimensions survive a merge point,
// anything else widens to unknown.
func (d Dim) Join(o Dim) Dim {
	if d.Eq(o) == True {
		return d
	}
	return Dim{}
}

// Subst rewrites every occurrence of symbol s in d to r.
func (d Dim) Subst(s string, r Dim) Dim {
	if !d.Known() {
		return d
	}
	n := 0
	for _, f := range d.Syms {
		if f == s {
			n++
		}
	}
	if n == 0 {
		return d
	}
	out := Dim{C: d.C}
	for _, f := range d.Syms {
		if f != s {
			out.Syms = append(out.Syms, f)
		}
	}
	for i := 0; i < n; i++ {
		out = out.Mul(r)
	}
	sort.Strings(out.Syms)
	return out
}

// String renders a dimension for diagnostics: constants as numbers,
// anything symbolic as "?" (symbol names are internal).
func (d Dim) String() string {
	if d.IsConst() {
		return strconv.FormatInt(d.C, 10)
	}
	return "?"
}

// Shape is the abstract shape of a tensor. Either Dims is non-nil and
// holds one Dim per dimension, or the rank itself is unknown and Sym
// (when non-empty) names the shape so two references to the same
// unknown shape still compare equal.
type Shape struct {
	Sym  string
	Dims []Dim
}

// TopShape is the completely unknown shape.
func TopShape() Shape { return Shape{} }

// SymShape returns an opaque shape of unknown rank named s.
func SymShape(s string) Shape { return Shape{Sym: s} }

// ShapeOf returns a ranked shape from dims.
func ShapeOf(dims ...Dim) Shape { return Shape{Dims: dims} }

// RankKnown reports whether the shape's rank is known.
func (s Shape) RankKnown() bool { return s.Dims != nil }

// Known reports whether the shape carries any information at all.
func (s Shape) Known() bool { return s.Dims != nil || s.Sym != "" }

// Elems returns the element count as a symbolic dimension. For
// unknown-rank shapes the count is an opaque symbol derived from the
// shape's name, so two views of the same unknown shape still compare
// equal.
func (s Shape) Elems() Dim {
	if s.Dims == nil {
		if s.Sym != "" {
			return DimSym("elems(" + s.Sym + ")")
		}
		return Dim{}
	}
	p := DimConst(1)
	for _, d := range s.Dims {
		p = p.Mul(d)
	}
	return p
}

// Eq compares two shapes three-valuedly. Shapes are provably different
// when their ranks differ or any dimension pair is provably different,
// and provably equal when every dimension pair is provably equal (or
// both are the same named unknown shape).
func (s Shape) Eq(o Shape) Tri {
	if s.Sym != "" && s.Sym == o.Sym {
		return True
	}
	if s.Dims == nil || o.Dims == nil {
		return Unknown
	}
	if len(s.Dims) != len(o.Dims) {
		return False
	}
	res := True
	for i := range s.Dims {
		switch s.Dims[i].Eq(o.Dims[i]) {
		case False:
			return False
		case Unknown:
			res = Unknown
		}
	}
	return res
}

// Join widens two shapes at a merge point: identical structure
// survives, dimension disagreements widen pointwise, rank or identity
// disagreements widen to top.
func (s Shape) Join(o Shape) Shape {
	if s.Sym != "" && s.Sym == o.Sym && s.Dims == nil && o.Dims == nil {
		return s
	}
	if s.Dims == nil || o.Dims == nil || len(s.Dims) != len(o.Dims) {
		return TopShape()
	}
	dims := make([]Dim, len(s.Dims))
	for i := range dims {
		dims[i] = s.Dims[i].Join(o.Dims[i])
	}
	return Shape{Dims: dims}
}

// Subst rewrites symbol s to r in every dimension.
func (sh Shape) Subst(s string, r Dim) Shape {
	if sh.Dims == nil {
		return sh
	}
	dims := make([]Dim, len(sh.Dims))
	for i := range dims {
		dims[i] = sh.Dims[i].Subst(s, r)
	}
	return Shape{Sym: sh.Sym, Dims: dims}
}

// String renders the shape the way the tensor package's shapeStr does
// ("[2 3]"), with "?" for symbolic dimensions and "[...]" for shapes of
// unknown rank, so diagnostics and runtime panics stay greppable
// against each other.
func (s Shape) String() string {
	if s.Dims == nil {
		return "[...]"
	}
	out := "["
	for i, d := range s.Dims {
		if i > 0 {
			out += " "
		}
		out += d.String()
	}
	return out + "]"
}
