package dataflow

import (
	"reflect"
	"sort"
	"testing"
)

func TestCallGraphDedupAndOrder(t *testing.T) {
	g := NewCallGraph[string]()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("a", "b") // duplicate
	g.AddNode("a")      // duplicate
	g.AddNode("d")
	if got, want := g.Nodes(), []string{"a", "b", "c", "d"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Nodes() = %v, want %v", got, want)
	}
	if got, want := g.Callees("a"), []string{"b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Callees(a) = %v, want %v", got, want)
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Error("HasEdge is wrong about a->b or b->a")
	}
}

// TestSCCsBottomUp pins the property FixSummaries depends on: a
// component is emitted only after every component it calls into.
func TestSCCsBottomUp(t *testing.T) {
	// main -> helperA -> leaf
	// main -> cycle1 <-> cycle2 -> leaf
	g := NewCallGraph[string]()
	g.AddEdge("main", "helperA")
	g.AddEdge("helperA", "leaf")
	g.AddEdge("main", "cycle1")
	g.AddEdge("cycle1", "cycle2")
	g.AddEdge("cycle2", "cycle1")
	g.AddEdge("cycle2", "leaf")

	comps := g.SCCs()
	pos := make(map[string]int)
	for i, comp := range comps {
		sort.Strings(comp)
		for _, n := range comp {
			pos[n] = i
		}
	}
	if len(comps) != 4 {
		t.Fatalf("got %d components %v, want 4", len(comps), comps)
	}
	if pos["cycle1"] != pos["cycle2"] {
		t.Errorf("cycle1 and cycle2 should share a component: %v", comps)
	}
	for _, before := range []struct{ callee, caller string }{
		{"leaf", "helperA"}, {"helperA", "main"}, {"cycle1", "main"}, {"leaf", "cycle1"},
	} {
		if pos[before.callee] >= pos[before.caller] {
			t.Errorf("component of %s (index %d) should precede %s (index %d): %v",
				before.callee, pos[before.callee], before.caller, pos[before.caller], comps)
		}
	}
}

// reachability is the simplest interesting summary: the set of nodes
// transitively callable. Through a cycle both members must converge on
// the same closure.
func TestFixSummariesReachability(t *testing.T) {
	g := NewCallGraph[string]()
	g.AddEdge("main", "a")
	g.AddEdge("a", "b")
	g.AddEdge("b", "a") // recursion
	g.AddEdge("b", "leaf")

	sums := FixSummaries(g, SummaryAnalysis[string, map[string]bool]{
		Bottom: func(string) map[string]bool { return map[string]bool{} },
		Transfer: func(n string, get func(string) map[string]bool) map[string]bool {
			out := map[string]bool{}
			for _, c := range g.Callees(n) {
				out[c] = true
				for k := range get(c) {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool { return reflect.DeepEqual(a, b) },
	})

	want := map[string]map[string]bool{
		"leaf": {},
		"a":    {"a": true, "b": true, "leaf": true},
		"b":    {"a": true, "b": true, "leaf": true},
		"main": {"a": true, "b": true, "leaf": true},
	}
	for n, w := range want {
		if !reflect.DeepEqual(sums[n], w) {
			t.Errorf("summary[%s] = %v, want %v", n, sums[n], w)
		}
	}
}

// A self-loop is a cyclic component of size one and must still iterate
// to a fixpoint rather than take the single-Transfer fast path.
func TestFixSummariesSelfLoop(t *testing.T) {
	g := NewCallGraph[string]()
	g.AddEdge("rec", "rec")
	g.AddEdge("rec", "leaf")
	sums := FixSummaries(g, SummaryAnalysis[string, int]{
		// Summary: number of distinct callees reachable, computed the
		// roundabout way (max over callees + own fanout) to force a
		// second sweep on the self-loop.
		Bottom: func(string) int { return 0 },
		Transfer: func(n string, get func(string) int) int {
			v := len(g.Callees(n))
			for _, c := range g.Callees(n) {
				if s := get(c); s > v {
					v = s
				}
			}
			return v
		},
		Equal: func(a, b int) bool { return a == b },
	})
	if sums["rec"] != 2 || sums["leaf"] != 0 {
		t.Errorf("sums = %v, want rec:2 leaf:0", sums)
	}
}
