package dataflow

// CallGraph is a static call graph over an arbitrary comparable node
// type. The lint package instantiates it with *types.Func, but the
// graph itself is type-oblivious, like the CFG builder: analyzers
// decide what a node is and which calls produce edges.
//
// Nodes and edges keep insertion order, so every traversal — and any
// diagnostic derived from one — is a deterministic run over
// deterministic input order.
type CallGraph[N comparable] struct {
	nodes []N
	index map[N]int
	succs map[N][]N
	edge  map[edgeKey[N]]bool
}

type edgeKey[N comparable] struct{ from, to N }

// NewCallGraph returns an empty call graph.
func NewCallGraph[N comparable]() *CallGraph[N] {
	return &CallGraph[N]{
		index: make(map[N]int),
		succs: make(map[N][]N),
		edge:  make(map[edgeKey[N]]bool),
	}
}

// AddNode registers n. Idempotent.
func (g *CallGraph[N]) AddNode(n N) {
	if _, ok := g.index[n]; ok {
		return
	}
	g.index[n] = len(g.nodes)
	g.nodes = append(g.nodes, n)
}

// AddEdge records a call from caller to callee, registering both
// endpoints. Duplicate edges are dropped.
func (g *CallGraph[N]) AddEdge(from, to N) {
	g.AddNode(from)
	g.AddNode(to)
	k := edgeKey[N]{from, to}
	if g.edge[k] {
		return
	}
	g.edge[k] = true
	g.succs[from] = append(g.succs[from], to)
}

// Nodes returns every node in insertion order. The slice is shared;
// callers must not mutate it.
func (g *CallGraph[N]) Nodes() []N { return g.nodes }

// Callees returns n's direct callees in first-call order. The slice is
// shared; callers must not mutate it.
func (g *CallGraph[N]) Callees(n N) []N { return g.succs[n] }

// HasEdge reports whether a from→to call was recorded.
func (g *CallGraph[N]) HasEdge(from, to N) bool { return g.edge[edgeKey[N]{from, to}] }

// SCCs returns the strongly connected components in reverse
// topological order of the condensation: every component is emitted
// after every component it calls into. That is exactly the order a
// bottom-up summary computation wants — callees settle before their
// callers — and Tarjan's algorithm emits components in this order for
// free.
func (g *CallGraph[N]) SCCs() [][]N {
	var (
		comps   [][]N
		idx     = make(map[N]int, len(g.nodes))
		low     = make(map[N]int, len(g.nodes))
		onStack = make(map[N]bool, len(g.nodes))
		stack   []N
		next    int
	)
	var strong func(n N)
	strong = func(n N) {
		idx[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range g.succs[n] {
			if _, seen := idx[m]; !seen {
				strong(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && idx[m] < low[n] {
				low[n] = idx[m]
			}
		}
		if low[n] == idx[n] {
			var comp []N
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, n := range g.nodes {
		if _, seen := idx[n]; !seen {
			strong(n)
		}
	}
	return comps
}
