package dataflow

import "go/ast"

// Analysis describes one forward dataflow problem over a Graph. The
// fact type F must behave as an immutable value: Stmt and Refine return
// new facts rather than mutating their input, so facts can be shared
// between blocks.
type Analysis[F any] struct {
	// Init is the fact at function entry.
	Init F
	// Join merges the facts of two converging paths.
	Join func(a, b F) F
	// Equal reports fact equality; the solver iterates until every
	// block's input fact is stable under Equal.
	Equal func(a, b F) bool
	// Stmt is the transfer function of one statement.
	Stmt func(n ast.Node, in F) F
	// Refine narrows a fact along a conditional edge (cond, with neg
	// reporting the false edge). Returning ok=false marks the edge
	// infeasible under the fact, and nothing is propagated along it.
	// A nil Refine propagates facts unchanged.
	Refine func(cond ast.Expr, neg bool, in F) (out F, ok bool)
}

// Result holds the solver's fixpoint: the fact reaching each block's
// entry. Blocks never reached (statically dead code) are absent.
type Result[F any] struct {
	In map[*Block]F
}

// Forward runs a's transfer functions over g to fixpoint, propagating
// facts along control-flow edges with condition refinement, and returns
// the fact at each reachable block's entry. The iteration order is the
// block construction order (roughly source order), which converges
// quickly for reducible graphs; correctness does not depend on it.
func Forward[F any](g *Graph, a Analysis[F]) Result[F] {
	in := make(map[*Block]F)
	in[g.Entry] = a.Init
	dirty := map[*Block]bool{g.Entry: true}
	// Bound the iteration defensively: each sweep visits every block
	// once; a lattice of finite height converges long before the cap.
	for sweep := 0; sweep < 4*len(g.Blocks)+16; sweep++ {
		changed := false
		for _, blk := range g.Blocks {
			if !dirty[blk] {
				continue
			}
			dirty[blk] = false
			fact, ok := in[blk]
			if !ok {
				continue
			}
			out := a.flowBlock(blk, fact)
			for _, e := range blk.Succs {
				f := out
				if e.Cond != nil && a.Refine != nil {
					var feasible bool
					f, feasible = a.Refine(e.Cond, e.Neg, out)
					if !feasible {
						continue
					}
				}
				old, seen := in[e.To]
				if !seen {
					in[e.To] = f
					dirty[e.To] = true
					changed = true
					continue
				}
				merged := a.Join(old, f)
				if !a.Equal(merged, old) {
					in[e.To] = merged
					dirty[e.To] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return Result[F]{In: in}
}

// flowBlock folds the transfer function over one block's statements.
func (a Analysis[F]) flowBlock(blk *Block, f F) F {
	for _, n := range blk.Stmts {
		f = a.Stmt(n, f)
	}
	return f
}

// Out recomputes the fact leaving blk under a, given the solved result.
// It returns ok=false for unreached blocks.
func (r Result[F]) Out(blk *Block, a Analysis[F]) (F, bool) {
	f, ok := r.In[blk]
	if !ok {
		var zero F
		return zero, false
	}
	return a.flowBlock(blk, f), true
}
