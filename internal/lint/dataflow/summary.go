package dataflow

// SummaryAnalysis describes one bottom-up interprocedural summary
// computation over a CallGraph: every node gets a summary fact of type
// S, computed from its own code plus the summaries of its callees.
// The same shape serves very different lattices — lock-set closures
// (lockorder), resource acquire/release effects (resbalance), mutation
// footprints (snapfreeze), or state-field write sets (statemachine).
type SummaryAnalysis[N comparable, S any] struct {
	// Bottom returns node n's initial summary — the least element of
	// n's summary lattice (for example "acquires nothing, releases
	// nothing", or a contract-declared base effect).
	Bottom func(n N) S
	// Transfer recomputes n's summary from scratch. get yields the
	// current summary of any node (Bottom for nodes not yet computed,
	// so querying something outside the graph is safe). Transfer must
	// be monotone in its callees' summaries for the fixpoint to
	// terminate at the least solution.
	Transfer func(n N, get func(N) S) S
	// Equal reports whether two summaries are equal; it decides when a
	// cyclic component has reached its fixpoint.
	Equal func(a, b S) bool
}

// FixSummaries computes every node's summary bottom-up over the call
// graph's condensation: strongly connected components are processed
// callees-first, an acyclic node takes exactly one Transfer, and
// mutually (or self-) recursive nodes iterate within their component
// until the summaries stop changing. A sweep cap bounds the iteration
// defensively against a non-monotone Transfer.
func FixSummaries[N comparable, S any](g *CallGraph[N], a SummaryAnalysis[N, S]) map[N]S {
	out := make(map[N]S, len(g.Nodes()))
	get := func(n N) S {
		if s, ok := out[n]; ok {
			return s
		}
		return a.Bottom(n)
	}
	for _, comp := range g.SCCs() {
		for _, n := range comp {
			out[n] = a.Bottom(n)
		}
		if len(comp) == 1 && !g.HasEdge(comp[0], comp[0]) {
			out[comp[0]] = a.Transfer(comp[0], get)
			continue
		}
		maxSweeps := 4*len(comp) + 16
		for sweep := 0; sweep < maxSweeps; sweep++ {
			changed := false
			for _, n := range comp {
				s := a.Transfer(n, get)
				if !a.Equal(s, out[n]) {
					out[n] = s
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return out
}
