// Package dataflow is the flow-sensitive backbone of the lint suite:
// an intraprocedural control-flow graph over go/ast function bodies, a
// generic forward fixpoint solver, and the symbolic shape lattice used
// by the tensor-shape analyses. Like the rest of internal/lint it is
// stdlib-only (go/ast + go/token); type information stays in the
// analyzers, which inject the few semantic predicates the builder
// needs (such as "is this call the builtin panic").
package dataflow

import (
	"go/ast"
	"go/token"
)

// Edge is one control-flow successor. Cond carries the branch condition
// guarding the edge (nil for unconditional edges); Neg reports that the
// edge is taken when Cond evaluates to false. Analyses may use the
// condition to refine facts (for example, "x == nil" rules out the
// borrowed state on its true edge).
type Edge struct {
	To   *Block
	Cond ast.Expr
	Neg  bool
}

// BlockKind classifies the special blocks of a graph.
type BlockKind int

const (
	// KindBody is an ordinary straight-line block.
	KindBody BlockKind = iota
	// KindEntry is the function entry block.
	KindEntry
	// KindExit is the single synthetic exit block.
	KindExit
	// KindDefers is the synthetic block holding the function's defer
	// statements in reverse registration order; every return, panic and
	// fall-off-the-end path flows through it on the way to the exit.
	KindDefers
)

// Block is one straight-line run of statements.
type Block struct {
	Index int
	Kind  BlockKind
	// Stmts are the block's statements in execution order. The defers
	// block repeats the function's defer statements, wrapped in DeferRun
	// nodes, in reverse registration order — the order they run at exit.
	Stmts []ast.Node
	Succs []Edge
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block
	// Defers holds the synthetic defers block, or nil when the function
	// body contains no defer statements.
	Defers *Block
	Blocks []*Block
	// PanicExits are the blocks that leave the function by panicking
	// (their edge to the defers/exit block is a panic edge, not a
	// return edge). Analyses that only care about normal termination
	// can treat facts flowing out of these blocks specially.
	PanicExits []*Block
}

// builder accumulates blocks while walking one function body.
type builder struct {
	g       *Graph
	cur     *Block
	isPanic func(*ast.CallExpr) bool
	defers  []*ast.DeferStmt
	// loops is the stack of enclosing break/continue targets.
	loops []loopFrame
	// labels maps label names to their target blocks (for goto and
	// labeled break/continue).
	labels map[string]*labelFrame
	// gotos are forward gotos resolved after the walk.
	gotos []pendingGoto
	// leaves are the function-exiting blocks, wired to the defers/exit
	// block once every defer is known.
	leaves []leave
	// fallNext is the next case body while building a switch, the
	// target of a fallthrough statement.
	fallNext *Block
}

type loopFrame struct {
	label         string
	breakTarget   *Block
	continueBlock *Block // nil inside switch/select frames
	isSwitch      bool
}

type labelFrame struct {
	block *Block // target of goto (start of the labeled statement)
}

type pendingGoto struct {
	from  *Block
	label string
}

// New builds the control-flow graph of fn's body. isPanic reports
// whether a call expression is a call to the builtin panic (the builder
// is type-oblivious, so the caller supplies the predicate; nil means no
// call panics). A function without a body yields a nil graph.
func New(fn *ast.FuncDecl, isPanic func(*ast.CallExpr) bool) *Graph {
	if fn == nil || fn.Body == nil {
		return nil
	}
	return build(fn.Body, isPanic)
}

// NewFromBlock builds a graph from a bare block statement (used for
// func literals).
func NewFromBlock(body *ast.BlockStmt, isPanic func(*ast.CallExpr) bool) *Graph {
	if body == nil {
		return nil
	}
	return build(body, isPanic)
}

func build(body *ast.BlockStmt, isPanic func(*ast.CallExpr) bool) *Graph {
	if isPanic == nil {
		isPanic = func(*ast.CallExpr) bool { return false }
	}
	b := &builder{
		g:       &Graph{},
		isPanic: isPanic,
		labels:  make(map[string]*labelFrame),
	}
	entry := b.newBlock(KindEntry)
	b.g.Entry = entry
	b.cur = entry
	b.stmtList(body.List)

	// The synthetic exit; defers (if any) interpose between every
	// function-leaving edge and the exit.
	exit := b.newBlock(KindExit)
	b.g.Exit = exit
	if len(b.defers) > 0 {
		d := b.newBlock(KindDefers)
		for i := len(b.defers) - 1; i >= 0; i-- {
			d.Stmts = append(d.Stmts, &DeferRun{D: b.defers[i]})
		}
		b.g.Defers = d
		b.edge(d, exit, nil, false)
	}
	// Fall off the end of the body.
	b.leaves = append(b.leaves, leave{from: b.cur})
	// Re-point every recorded leave edge through the defers block.
	for _, lv := range b.leaves {
		target := exit
		if b.g.Defers != nil {
			target = b.g.Defers
		}
		b.edge(lv.from, target, nil, false)
		if lv.panics {
			b.g.PanicExits = append(b.g.PanicExits, lv.from)
		}
	}
	// Resolve forward gotos.
	for _, pg := range b.gotos {
		if lf, ok := b.labels[pg.label]; ok && lf.block != nil {
			b.edge(pg.from, lf.block, nil, false)
		}
	}
	return b.g
}

// leaves records blocks that exit the function (return, panic, end of
// body); they are wired to the defers/exit block once all defers are
// known.
type leave struct {
	from   *Block
	panics bool
}

// DeferRun wraps a defer statement inside the synthetic defers block: the
// *ast.DeferStmt node a transfer function sees in a body block marks the
// registration point, while a *DeferRun in the defers block marks the
// deferred call actually executing on the way out of the function.
type DeferRun struct {
	D *ast.DeferStmt
}

// Pos implements ast.Node by delegating to the wrapped statement.
func (d *DeferRun) Pos() token.Pos { return d.D.Pos() }

// End implements ast.Node by delegating to the wrapped statement.
func (d *DeferRun) End() token.Pos { return d.D.End() }

func (b *builder) newBlock(kind BlockKind) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, neg bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Neg: neg})
	to.Preds = append(to.Preds, from)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// dead starts a fresh unreachable block, used after return/panic/branch
// so trailing statements do not merge into live paths.
func (b *builder) dead() {
	b.cur = b.newBlock(KindBody)
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, "")
	case *ast.TypeSwitchStmt:
		b.append(s.Assign)
		b.switchStmt(s.Init, nil, s.Body, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.ReturnStmt:
		b.append(s)
		b.leaves = append(b.leaves, leave{from: b.cur})
		b.dead()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.DeferStmt:
		b.append(s)
		b.defers = append(b.defers, s)
	case *ast.ExprStmt:
		b.append(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isPanic(call) {
			b.leaves = append(b.leaves, leave{from: b.cur, panics: true})
			b.dead()
		}
	default:
		// Assignments, declarations, go statements, sends, inc/dec:
		// straight-line.
		b.append(s)
	}
}

func (b *builder) append(n ast.Node) {
	b.cur.Stmts = append(b.cur.Stmts, n)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.append(s.Init)
	}
	head := b.cur
	then := b.newBlock(KindBody)
	after := b.newBlock(KindBody)
	b.edge(head, then, s.Cond, false)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after, nil, false)
	if s.Else != nil {
		els := b.newBlock(KindBody)
		b.edge(head, els, s.Cond, true)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after, nil, false)
	} else {
		b.edge(head, after, s.Cond, true)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.append(s.Init)
	}
	head := b.newBlock(KindBody)
	body := b.newBlock(KindBody)
	after := b.newBlock(KindBody)
	post := b.newBlock(KindBody)
	b.edge(b.cur, head, nil, false)
	if s.Cond != nil {
		b.edge(head, body, s.Cond, false)
		b.edge(head, after, s.Cond, true)
	} else {
		b.edge(head, body, nil, false)
	}
	b.loops = append(b.loops, loopFrame{label: label, breakTarget: after, continueBlock: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edge(b.cur, post, nil, false)
	if s.Post != nil {
		post.Stmts = append(post.Stmts, s.Post)
	}
	b.edge(post, head, nil, false)
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock(KindBody)
	body := b.newBlock(KindBody)
	after := b.newBlock(KindBody)
	b.edge(b.cur, head, nil, false)
	// The range statement itself (key/value binding) executes at the
	// head of each iteration.
	head.Stmts = append(head.Stmts, s)
	b.edge(head, body, nil, false)
	b.edge(head, after, nil, false)
	b.loops = append(b.loops, loopFrame{label: label, breakTarget: after, continueBlock: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edge(b.cur, head, nil, false)
	b.cur = after
}

func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.append(init)
	}
	if tag != nil {
		b.append(&ast.ExprStmt{X: tag})
	}
	head := b.cur
	after := b.newBlock(KindBody)
	b.loops = append(b.loops, loopFrame{label: label, breakTarget: after, isSwitch: true})

	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		cb := b.newBlock(KindBody)
		b.edge(head, cb, nil, false)
		caseBlocks = append(caseBlocks, cb)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after, nil, false)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		b.fallNext = nil
		if i+1 < len(caseBlocks) {
			b.fallNext = caseBlocks[i+1]
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after, nil, false)
	}
	b.fallNext = nil
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	after := b.newBlock(KindBody)
	b.loops = append(b.loops, loopFrame{label: label, breakTarget: after, isSwitch: true})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock(KindBody)
		b.edge(head, cb, nil, false)
		b.cur = cb
		if cc.Comm != nil {
			b.append(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after, nil, false)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.breakTarget, nil, false)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.isSwitch {
				continue
			}
			if label == "" || f.label == label {
				b.edge(b.cur, f.continueBlock, nil, false)
				break
			}
		}
	case token.GOTO:
		if lf, ok := b.labels[label]; ok && lf.block != nil {
			b.edge(b.cur, lf.block, nil, false)
		} else {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		}
	case token.FALLTHROUGH:
		if b.fallNext != nil {
			b.edge(b.cur, b.fallNext, nil, false)
		}
	}
	b.dead()
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	target := b.newBlock(KindBody)
	b.edge(b.cur, target, nil, false)
	b.cur = target
	b.labels[s.Label.Name] = &labelFrame{block: target}
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner.Init, inner.Tag, inner.Body, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.append(inner.Assign)
		b.switchStmt(inner.Init, nil, inner.Body, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}
