package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildGraph parses a single function body and builds its CFG. Calls to
// an identifier named "panic" count as panics (the tests are
// type-oblivious, like the builder).
func buildGraph(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	isPanic := func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	g := New(fn, isPanic)
	if g == nil {
		t.Fatal("nil graph")
	}
	return g
}

// reachable walks the graph from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := make(map[*Block]bool)
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			visit(e.To)
		}
	}
	visit(g.Entry)
	return seen
}

func TestCFGBranchEdges(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	// The entry block must end with two condition-guarded edges: the
	// then edge (Neg=false) and the else edge (Neg=true), sharing the
	// same condition expression.
	var pos, neg *Edge
	for i := range g.Entry.Succs {
		e := &g.Entry.Succs[i]
		if e.Cond == nil {
			t.Fatalf("entry has an unconditional successor; want only cond edges")
		}
		if e.Neg {
			neg = e
		} else {
			pos = e
		}
	}
	if pos == nil || neg == nil {
		t.Fatalf("want one positive and one negative cond edge, got %+v", g.Entry.Succs)
	}
	if pos.Cond != neg.Cond {
		t.Errorf("then/else edges carry different condition expressions")
	}
	if pos.To == neg.To {
		t.Errorf("then and else edges lead to the same block")
	}
	if !reachable(g)[g.Exit] {
		t.Errorf("exit unreachable")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\n x = 2\n}\n_ = x")
	// Without an else, the negative edge jumps straight to the after
	// block, which the then block also reaches.
	var pos, neg *Edge
	for i := range g.Entry.Succs {
		e := &g.Entry.Succs[i]
		if e.Neg {
			neg = e
		} else {
			pos = e
		}
	}
	if pos == nil || neg == nil {
		t.Fatalf("want cond edge pair, got %+v", g.Entry.Succs)
	}
	then := pos.To
	after := neg.To
	found := false
	for _, e := range then.Succs {
		if e.To == after {
			found = true
		}
	}
	if !found {
		t.Errorf("then block does not rejoin the after block")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := buildGraph(t, "s := 0\nfor i := 0; i < 3; i++ {\n s += i\n}\n_ = s")
	// Find the loop head: the block with a cond-guarded body edge and a
	// cond-guarded exit edge.
	var head *Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 && b.Succs[0].Cond != nil && b.Succs[1].Cond != nil {
			head = b
			break
		}
	}
	if head == nil {
		t.Fatal("no loop head with a cond edge pair")
	}
	// The head must be its own transitive successor (a back edge exists).
	seen := make(map[*Block]bool)
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		for _, e := range b.Succs {
			if e.To == head {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				if visit(e.To) {
					return true
				}
			}
		}
		return false
	}
	if !visit(head) {
		t.Errorf("loop head has no back edge")
	}
}

func TestCFGRangeHead(t *testing.T) {
	g := buildGraph(t, "s := 0\nfor _, v := range []int{1, 2} {\n s += v\n}\n_ = s")
	// The range head holds the RangeStmt itself and branches to both the
	// body and the after block.
	var head *Block
	for _, b := range g.Blocks {
		for _, n := range b.Stmts {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("no block holds the RangeStmt")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body and after)", len(head.Succs))
	}
	// One successor must loop back to the head.
	body := head.Succs[0].To
	back := false
	for _, e := range body.Succs {
		if e.To == head {
			back = true
		}
	}
	if !back {
		t.Errorf("range body does not loop back to the head")
	}
}

func TestCFGDeferBlock(t *testing.T) {
	g := buildGraph(t, "defer f()\ndefer g()\nreturn")
	if g.Defers == nil {
		t.Fatal("no defers block")
	}
	if g.Defers.Kind != KindDefers {
		t.Errorf("defers block kind = %v, want KindDefers", g.Defers.Kind)
	}
	if len(g.Defers.Stmts) != 2 {
		t.Fatalf("defers block holds %d statements, want 2", len(g.Defers.Stmts))
	}
	// Reverse registration order: the second defer runs first.
	first, ok := g.Defers.Stmts[0].(*DeferRun)
	if !ok {
		t.Fatalf("defers block holds %T, want *DeferRun", g.Defers.Stmts[0])
	}
	second := g.Defers.Stmts[1].(*DeferRun)
	if first.D.Pos() < second.D.Pos() {
		t.Errorf("defers run in registration order; want reverse")
	}
	// Every path to the exit goes through the defers block.
	for _, p := range g.Exit.Preds {
		if p != g.Defers {
			t.Errorf("exit has predecessor %d besides the defers block", p.Index)
		}
	}
	// DeferRun delegates positions to the wrapped statement.
	if first.Pos() != first.D.Pos() || first.End() != first.D.End() {
		t.Errorf("DeferRun positions do not delegate to the defer statement")
	}
}

func TestCFGPanicExit(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\n panic(\"boom\")\n}\n_ = x")
	if len(g.PanicExits) != 1 {
		t.Fatalf("got %d panic exits, want 1", len(g.PanicExits))
	}
	pb := g.PanicExits[0]
	// The panicking block leaves the function directly (its successor is
	// the exit, since there are no defers).
	leavesToExit := false
	for _, e := range pb.Succs {
		if e.To == g.Exit {
			leavesToExit = true
		}
	}
	if !leavesToExit {
		t.Errorf("panic block does not flow to the exit")
	}
	// Statements after panic in the same source block must not be
	// reachable from the panic block.
	if reachable(g)[g.Exit] == false {
		t.Errorf("exit unreachable")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\n return\n}\nx = 2\n_ = x")
	// Two distinct paths reach the exit: the early return and the fall
	// off the end.
	if len(g.Exit.Preds) < 2 {
		t.Fatalf("exit has %d predecessors, want at least 2", len(g.Exit.Preds))
	}
}

func TestCFGBreakContinue(t *testing.T) {
	g := buildGraph(t, "for i := 0; i < 9; i++ {\n if i == 3 {\n  continue\n }\n if i == 5 {\n  break\n }\n}\n")
	// Sanity: exit reachable, and no block dangles without successors
	// except the exit.
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable")
	}
	for b := range seen {
		if b != g.Exit && len(b.Succs) == 0 {
			t.Errorf("reachable block %d has no successors", b.Index)
		}
	}
}

func TestCFGSwitch(t *testing.T) {
	g := buildGraph(t, "x := 1\nswitch x {\ncase 1:\n x = 2\ncase 2:\n x = 3\ndefault:\n x = 4\n}\n_ = x")
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// All three case bodies hang off one head: find a block with three
	// successors.
	found := false
	for b := range seen {
		if len(b.Succs) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("no switch head with three case successors")
	}
}

func TestForwardRefinePrunesEdge(t *testing.T) {
	// A tiny constant-propagation analysis over bool facts: the fact is
	// "x might be zero". Refine prunes the x != 0 edge when x is zero.
	g := buildGraph(t, "x := 0\nif x != 0 {\n x = 1\n}\n_ = x")
	type fact struct{ mightBeNonZero bool }
	an := Analysis[fact]{
		Init:  fact{},
		Join:  func(a, b fact) fact { return fact{a.mightBeNonZero || b.mightBeNonZero} },
		Equal: func(a, b fact) bool { return a == b },
		Stmt: func(n ast.Node, in fact) fact {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value != "0" {
					return fact{true}
				}
				if _, ok := as.Rhs[0].(*ast.BasicLit); ok {
					return fact{false}
				}
			}
			return in
		},
		Refine: func(cond ast.Expr, neg bool, in fact) (fact, bool) {
			// cond is x != 0; its positive edge is infeasible when x is
			// provably zero.
			if !neg && !in.mightBeNonZero {
				return in, false
			}
			return in, true
		},
	}
	res := Forward(g, an)
	// The then block (x = 1) must be unreached: its edge was pruned.
	for _, b := range g.Blocks {
		for _, n := range b.Stmts {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "1" {
					if _, reached := res.In[b]; reached {
						t.Errorf("pruned then-branch was reached")
					}
				}
			}
		}
	}
	// The after block is still reached via the negative edge.
	if _, ok := res.In[g.Exit]; !ok {
		t.Errorf("exit unreached")
	}
}
