package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IntoAlias enforces the destination-passing conventions of the *Into
// kernels (DESIGN.md, "Compute backbone"):
//
//   - every function whose name ends in "Into" and whose first
//     parameter is a *tensor.Tensor must name that parameter dst and
//     must state its aliasing contract in the doc comment (the word
//     "alias" must appear);
//   - a caller must not pass the same expression as dst and as an
//     operand the contract forbids aliasing with. The contract is read
//     from the declaration's doc comment: a "must not alias" clause
//     followed by parameter names forbids those operands, and a "must
//     not alias ... input/operand" phrasing forbids all of them.
//
// The caller-side check is syntactic (identical argument expressions);
// runtime sharing through views is guarded separately by the kernels'
// own sharesData panics.
var IntoAlias = &Analyzer{
	Name: "intoalias",
	Doc:  "*Into kernels take dst first, document aliasing, and callers respect the contract",
	Run:  runIntoAlias,
}

func runIntoAlias(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkIntoDecl(pass, n)
			case *ast.CallExpr:
				checkIntoCall(pass, info, n)
			}
			return true
		})
	}
}

// intoParams returns the parameter names of an Into-style declaration
// and whether the declaration is subject to the convention (name ends
// in "Into", first parameter is a *Tensor).
func intoParams(info *types.Info, fd *ast.FuncDecl) ([]string, bool) {
	if !strings.HasSuffix(fd.Name.Name, "Into") || fd.Type.Params == nil {
		return nil, false
	}
	var names []string
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			names = append(names, name.Name)
		}
		if len(field.Names) == 0 {
			names = append(names, "")
		}
	}
	if len(names) < 2 {
		return nil, false
	}
	first := fd.Type.Params.List[0]
	if len(first.Names) == 0 {
		return nil, false
	}
	if tv, ok := info.Types[first.Type]; !ok || !isTensor(tv.Type) {
		return nil, false
	}
	return names, true
}

func checkIntoDecl(pass *Pass, fd *ast.FuncDecl) {
	names, ok := intoParams(pass.Pkg.Info, fd)
	if !ok {
		return
	}
	if names[0] != "dst" {
		pass.Reportf(fd.Name.Pos(), "%s is an *Into kernel; its destination parameter must be first and named dst, not %q", fd.Name.Name, names[0])
	}
	if !strings.Contains(strings.ToLower(docText(fd.Doc)), "alias") {
		pass.Reportf(fd.Name.Pos(), "%s is missing an aliasing contract in its doc comment (state whether dst may alias the inputs)", fd.Name.Name)
	}
}

func checkIntoCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Into") || len(call.Args) < 2 {
		return
	}
	fi, ok := pass.Prog.Decls[fn]
	if !ok {
		return
	}
	params, ok := intoParams(fi.Pkg.Info, fi.Decl)
	if !ok {
		return
	}
	forbidden := forbiddenAliases(docText(fi.Decl.Doc), params[1:])
	if len(forbidden) == 0 {
		return
	}
	dst := types.ExprString(ast.Unparen(call.Args[0]))
	if dst == "nil" {
		return
	}
	for i, arg := range call.Args[1:] {
		if types.ExprString(ast.Unparen(arg)) != dst {
			continue
		}
		// Map argument position to parameter name; trailing arguments
		// beyond the parameter list belong to a variadic parameter.
		pi := i
		if pi >= len(params)-1 {
			pi = len(params) - 2
		}
		name := params[pi+1]
		if forbidden[name] {
			pass.Reportf(arg.Pos(), "%s forbids dst aliasing %s, but both receive %s", fn.Name(), name, dst)
		}
	}
}

// forbiddenAliases parses a kernel doc comment for "must not alias"
// clauses and returns the set of operand parameter names the contract
// forbids the destination to alias. Clause phrasings that name no
// specific parameter ("any input", "either input", "an operand")
// forbid every operand.
func forbiddenAliases(doc string, operands []string) map[string]bool {
	isOperand := make(map[string]bool, len(operands))
	for _, p := range operands {
		isOperand[p] = true
	}
	forbidden := make(map[string]bool)
	// Collapse the comment's line wrapping so a clause split across
	// lines ("must not\nalias a") still matches.
	lower := strings.Join(strings.Fields(strings.ToLower(doc)), " ")
	const clause = "must not alias"
	for rest := lower; ; {
		i := strings.Index(rest, clause)
		if i < 0 {
			break
		}
		rest = rest[i+len(clause):]
		// Tokenize up to the end of the sentence.
		sentence := rest
		if j := strings.IndexAny(sentence, ".;("); j >= 0 {
			sentence = sentence[:j]
		}
		for _, word := range strings.FieldsFunc(sentence, func(r rune) bool {
			return !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
		}) {
			switch {
			case isOperand[word]:
				forbidden[word] = true
			case word == "input" || word == "inputs" || word == "operand" || word == "operands":
				for _, p := range operands {
					forbidden[p] = true
				}
			}
		}
	}
	return forbidden
}
