package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"quickdrop/internal/lint/dataflow"
)

// SnapFreeze enforces published-snapshot immutability: the tensors a
// serve.Snapshot hands out through Params() are shared by every reader
// holding a reference, so writing to them — directly, through an
// alias, or by passing them into a function that mutates its argument
// — corrupts concurrent predictions. Outside the snapshot store itself
// the analyzer taints the result of Snapshot.Params() and everything
// reachable from it (the slice, its elements, views of those tensors)
// and reports:
//
//   - in-place tensor mutators (Zero, CopyFrom, AddInPlace, …) on a
//     tainted tensor;
//   - copy(t.Data(), …) and element/field stores through a tainted
//     value (params[i] = x);
//   - a tainted tensor as the destination of an *Into kernel;
//   - passing a tainted value at an argument position the callee
//     mutates, resolved interprocedurally via bottom-up call-graph
//     summaries of which parameter positions each module function
//     writes through.
//
// Methods of Snapshot and SnapshotStore are exempt: the store owns the
// buffers until they are published and reclaims them after the last
// release.
var SnapFreeze = &Analyzer{
	Name: "snapfreeze",
	Doc:  "tensors published via Snapshot.Params are immutable outside the snapshot store",
	Run:  runSnapFreeze,
}

func runSnapFreeze(pass *Pass) {
	// Whole-program rule: run once, from the first loaded package.
	if len(pass.Prog.Packages) == 0 || pass.Pkg != pass.Prog.Packages[0] {
		return
	}
	serveLoaded := false
	for _, pkg := range pass.Prog.Packages {
		if hasPathSuffix(pkg.Path, "internal/serve") {
			serveLoaded = true
			break
		}
	}
	if !serveLoaded {
		return
	}
	sf := &snapFreeze{pass: pass}
	sf.sums = dataflow.FixSummaries(pass.Prog.CallGraph(), dataflow.SummaryAnalysis[*types.Func, map[int]bool]{
		Bottom:   func(*types.Func) map[int]bool { return map[int]bool{} },
		Transfer: sf.mutSummary,
		Equal:    eqIntSet,
	})
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || sf.exempt(pkg, fd) {
					continue
				}
				sf.checkBody(pkg, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						sf.checkBody(pkg, lit.Body)
					}
					return true
				})
			}
		}
	}
}

type snapFreeze struct {
	pass *Pass
	sums map[*types.Func]map[int]bool
}

func eqIntSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// exempt reports whether fd is a method of Snapshot or SnapshotStore —
// the store legitimately writes the buffers it has not yet published
// or has already reclaimed.
func (sf *snapFreeze) exempt(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || !hasPathSuffix(pkg.Path, "internal/serve") {
		return false
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	return isMethodOn(fn, fd.Name.Name, "Snapshot", "internal/serve") ||
		isMethodOn(fn, fd.Name.Name, "SnapshotStore", "internal/serve")
}

// chainRootObj unwraps selector/index chains to the root identifier's
// object ("t" for t.data[i]), or nil.
func chainRootObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return identObj(info, e)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// mutSummary computes which parameter positions (receiver = -1) fn may
// write through: element/field stores rooted at a parameter, in-place
// tensor mutators, copy into a parameter's storage, *Into destinations,
// taking a parameter's address, and — transitively — passing a
// parameter at a position a callee mutates.
func (sf *snapFreeze) mutSummary(fn *types.Func, get func(*types.Func) map[int]bool) map[int]bool {
	out := map[int]bool{}
	fi, ok := sf.pass.Prog.Decls[fn]
	if !ok || fi.Decl.Body == nil {
		return out
	}
	info := fi.Pkg.Info
	params := paramIndexMap(info, fi.Decl)
	posOf := func(e ast.Expr) (int, bool) {
		obj := chainRootObj(info, e)
		if obj == nil {
			return 0, false
		}
		pi, ok := params[obj]
		return pi, ok
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr, *ast.SelectorExpr:
					if pi, ok := posOf(l); ok {
						out[pi] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if pi, ok := posOf(n.X); ok {
					out[pi] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && tensorMutators[sel.Sel.Name] {
				if cf := calleeFunc(info, n); cf != nil && isMethodOn(cf, sel.Sel.Name, "Tensor", "internal/tensor") {
					if pi, ok := posOf(sel.X); ok {
						out[pi] = true
					}
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if inner, ok := ast.Unparen(n.Args[0]).(*ast.CallExpr); ok {
						if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Data" {
							if pi, ok := posOf(sel.X); ok {
								out[pi] = true
							}
						}
					}
				}
			}
			if cf := calleeFunc(info, n); cf != nil {
				if strings.HasSuffix(cf.Name(), "Into") && hasPathSuffix(funcPkgPath(cf), "internal/tensor") && len(n.Args) > 0 {
					if pi, ok := posOf(n.Args[0]); ok {
						out[pi] = true
					}
				}
				if cs := get(cf); len(cs) > 0 {
					forEachCallArgPos(n, cf, func(pos int, arg ast.Expr) {
						if cs[pos] {
							if pi, ok := posOf(arg); ok {
								out[pi] = true
							}
						}
					})
				}
			}
		}
		return true
	})
	return out
}

// checkBody runs the taint flow over one function unit.
func (sf *snapFreeze) checkBody(pkg *Package, body *ast.BlockStmt) {
	g := dataflow.NewFromBlock(body, nil)
	if g == nil {
		return
	}
	fl := &snapFlow{sf: sf, info: pkg.Info}
	an := dataflow.Analysis[taintFact]{
		Init:  taintFact{},
		Join:  joinTaintFact,
		Equal: eqTaintFact,
		Stmt:  fl.transfer,
	}
	res := dataflow.Forward(g, an)

	fl.reporting = true
	fl.seen = make(map[ast.Node]bool)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = fl.transfer(n, f)
		}
	}
}

type snapFlow struct {
	sf        *snapFreeze
	info      *types.Info
	reporting bool
	seen      map[ast.Node]bool
}

func (fl *snapFlow) report(n ast.Node, pos token.Pos, format string, args ...any) {
	if !fl.reporting || fl.seen[n] {
		return
	}
	fl.seen[n] = true
	fl.sf.pass.Reportf(pos, format, args...)
}

// isSnapshotParams reports whether expr is a Snapshot.Params() call —
// the taint source.
func (fl *snapFlow) isSnapshotParams(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(fl.info, call)
	return fn != nil && isMethodOn(fn, "Params", "Snapshot", "internal/serve")
}

// tainted reports whether expr evaluates to snapshot-published storage:
// a Params() result, a tainted local, an element of one, or a view.
func (fl *snapFlow) tainted(f taintFact, expr ast.Expr) bool {
	x := ast.Unparen(expr)
	if fl.isSnapshotParams(x) {
		return true
	}
	switch x := x.(type) {
	case *ast.Ident:
		if obj := identObj(fl.info, x); obj != nil {
			return f[obj]
		}
	case *ast.IndexExpr:
		return fl.tainted(f, x.X)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "View", "ViewLike", "RowsView":
				if fn := calleeFunc(fl.info, x); fn != nil && isMethodOn(fn, sel.Sel.Name, "Tensor", "internal/tensor") {
					return fl.tainted(f, sel.X)
				}
			}
		}
	}
	return false
}

func (fl *snapFlow) transfer(n ast.Node, in taintFact) taintFact {
	out := in
	cloned := false
	set := func(obj types.Object, tainted bool) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		if tainted {
			out[obj] = true
		} else {
			delete(out, obj)
		}
	}
	node := n
	if dr, ok := n.(*dataflow.DeferRun); ok {
		node = dr.D.Call
	}
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // separate unit
		case *ast.DeferStmt:
			return false // registration; the call runs as a DeferRun
		case *ast.RangeStmt:
			// Ranging over the tainted params slice taints the element
			// variable; any other range clears both.
			el := fl.tainted(out, x.X)
			if id, ok := ast.Unparen(x.Key).(*ast.Ident); x.Key != nil && ok && id.Name != "_" {
				if obj := identObj(fl.info, id); obj != nil {
					set(obj, false)
				}
			}
			if x.Value != nil {
				if id, ok := ast.Unparen(x.Value).(*ast.Ident); ok && id.Name != "_" {
					if obj := identObj(fl.info, id); obj != nil {
						set(obj, el)
					}
				}
			}
			return false
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					switch l := ast.Unparen(x.Lhs[i]).(type) {
					case *ast.Ident:
						if l.Name == "_" {
							continue
						}
						if obj := identObj(fl.info, l); obj != nil {
							set(obj, fl.tainted(out, x.Rhs[i]))
						}
					case *ast.IndexExpr:
						if fl.tainted(out, l.X) {
							fl.report(x, l.Pos(), "element store into snapshot parameters; tensors published by Snapshot.Params are immutable outside the store")
						}
					case *ast.SelectorExpr:
						if fl.tainted(out, l.X) {
							fl.report(x, l.Pos(), "field write through snapshot parameters; tensors published by Snapshot.Params are immutable outside the store")
						}
					}
				}
			}
			return true
		case *ast.CallExpr:
			fl.checkCall(out, x)
			return true
		}
		return true
	})
	return out
}

// checkCall reports mutations of tainted values through calls.
func (fl *snapFlow) checkCall(f taintFact, call *ast.CallExpr) {
	// t.Mutator(...) on a tainted tensor.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && tensorMutators[sel.Sel.Name] && fl.tainted(f, sel.X) {
		if fn := calleeFunc(fl.info, call); fn != nil && isMethodOn(fn, sel.Sel.Name, "Tensor", "internal/tensor") {
			fl.report(call, call.Pos(), "%s mutates snapshot parameters; tensors published by Snapshot.Params are immutable outside the store", sel.Sel.Name)
			return
		}
	}
	// copy(t.Data(), ...) through a tainted t.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) > 0 {
		if _, isBuiltin := fl.info.Uses[id].(*types.Builtin); isBuiltin {
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Data" && fl.tainted(f, sel.X) {
					fl.report(call, call.Pos(), "copy into snapshot parameter storage; tensors published by Snapshot.Params are immutable outside the store")
					return
				}
			}
		}
	}
	fn := calleeFunc(fl.info, call)
	if fn == nil {
		return
	}
	// SomeKernelInto(t, ...) with a tainted destination.
	if strings.HasSuffix(fn.Name(), "Into") && hasPathSuffix(funcPkgPath(fn), "internal/tensor") && len(call.Args) > 0 {
		if fl.tainted(f, call.Args[0]) {
			fl.report(call, call.Args[0].Pos(), "snapshot parameter used as %s destination; tensors published by Snapshot.Params are immutable outside the store", fn.Name())
			return
		}
	}
	// Passing a tainted value at a position the callee writes through.
	if cs := fl.sf.sums[fn]; len(cs) > 0 {
		forEachCallArgPos(call, fn, func(pos int, arg ast.Expr) {
			if cs[pos] && fl.tainted(f, arg) {
				fl.report(call, arg.Pos(), "%s mutates its %s, and this argument is a snapshot parameter; tensors published by Snapshot.Params are immutable outside the store",
					fn.Name(), argPosName(pos))
			}
		})
	}
}

// argPosName renders a parameter position for diagnostics.
func argPosName(pos int) string {
	if pos < 0 {
		return "receiver"
	}
	return "argument " + strconv.Itoa(pos)
}
