package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureModPath makes every fixture tree a mini-module named like the
// real one, so the suffix-matched package paths (quickdrop/internal/…)
// resolve identically in tests and in production runs.
const fixtureModPath = "quickdrop"

// wantMarker introduces the expectation patterns of a fixture line;
// several quoted patterns may follow one marker.
const wantMarker = "// want "

// Patterns are quoted with "" or, when the pattern itself contains a
// double quote, with backticks.
var wantPatternRe = regexp.MustCompile("\"([^\"]*)\"|`([^`]*)`")

type wantEntry struct {
	raw     string
	re      *regexp.Regexp
	matched bool
}

// runGolden loads testdata/src/<analyzer> as a module, runs the single
// analyzer over it, and checks the produced diagnostics against the
// fixture's // want comments: every want must be matched by a
// diagnostic on its line, and every diagnostic must be claimed by a
// want.
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	prog, err := LoadProgram(dir, fixtureModPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := Run(prog, []*Analyzer{a})

	wants := collectWants(t, prog)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		text := d.Rule + ": " + d.Message
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.raw)
			}
		}
	}
}

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, prog *Program) map[string][]*wantEntry {
	t.Helper()
	wants := make(map[string][]*wantEntry)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, wantMarker)
					if i < 0 {
						continue
					}
					rest := c.Text[i+len(wantMarker):]
					pos := prog.Fset.Position(c.Slash)
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, pat := range wantPatternRe.FindAllStringSubmatch(rest, -1) {
						raw := pat[1]
						if pat[2] != "" {
							raw = pat[2]
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, raw, err)
						}
						wants[key] = append(wants[key], &wantEntry{raw: raw, re: re})
					}
				}
			}
		}
	}
	return wants
}
