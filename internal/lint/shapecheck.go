package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"quickdrop/internal/lint/dataflow"
)

// Shapecheck infers symbolic tensor shapes along every control-flow path
// and reports statically-provable shape violations: mismatched
// element-wise operands, MatMul family inner-dimension conflicts,
// reshape/view element-count changes, broadcast-incompatible fused ops,
// *Into destinations that cannot hold their result, and out-of-range
// reduction axes. Calls into internal/tensor are modeled axiomatically
// (mirroring the kernels' runtime panics); calls into internal/autodiff
// and internal/nn are summarized by interpreting the callee body at the
// call site. Anything undecidable stays silent — a diagnostic means the
// panic is guaranteed on that path.
var Shapecheck = &Analyzer{
	Name: "shapecheck",
	Doc:  "report statically-provable tensor shape violations (mismatched kernels, bad *Into destinations, broken broadcasts) before they panic at runtime",
	Run:  runShapecheck,
}

func runShapecheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShapesUnit(pass, fd, nil)
			// Function literals are separate analysis units: captured
			// variables are unknown, parameters get fresh symbols.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkShapesUnit(pass, nil, lit)
				}
				return true
			})
		}
	}
}

// checkShapesUnit analyzes one function body (a declaration or a
// literal) with the CFG fixpoint, then replays each reached block once
// with reporting enabled.
func checkShapesUnit(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	pkg := pass.Pkg
	isPanic := func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return false
		}
		_, builtin := pkg.Info.Uses[id].(*types.Builtin)
		return builtin
	}
	var g *dataflow.Graph
	var typ *ast.FuncType
	var recv *ast.FieldList
	if fd != nil {
		g = dataflow.New(fd, isPanic)
		typ, recv = fd.Type, fd.Recv
	} else {
		g = dataflow.NewFromBlock(lit.Body, isPanic)
		typ = lit.Type
	}
	if g == nil {
		return
	}

	ctx := newShapeCtx(pass)
	init := shapeParamsEnv(ctx, pkg, typ, recv)

	an := dataflow.Analysis[*env]{
		Init:  init,
		Join:  joinEnv,
		Equal: eqEnv,
		Stmt:  func(n ast.Node, in *env) *env { return shapeTransfer(ctx, pkg, n, in) },
	}
	res := dataflow.Forward(g, an)

	// Replay: each reached block exactly once, with its fixpoint in-fact
	// and reporting turned on, so every provable violation is reported
	// exactly once at its source position.
	ctx.report = func(pos token.Pos, msg string) {
		pass.Reportf(pos, "%s", msg)
	}
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = shapeTransfer(ctx, pkg, n, f)
		}
	}
	ctx.report = nil
}

// shapeParamsEnv binds a function's receiver and parameters to fresh
// symbolic values derived from their declaration positions.
func shapeParamsEnv(ctx *shapeCtx, pkg *Package, typ *ast.FuncType, recv *ast.FieldList) *env {
	e := newEnv()
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := identObj(pkg.Info, name)
				if obj == nil {
					continue
				}
				e.set(obj, ctx.defaultParam(obj, name.Pos(), top()))
			}
		}
	}
	bind(recv)
	bind(typ.Params)
	return e
}

// shapeTransfer is the CFG transfer function: it evaluates one
// statement's expressions (firing the kernel models' checks) and updates
// the variable environment. Facts are immutable: mutation clones.
func shapeTransfer(ctx *shapeCtx, pkg *Package, n ast.Node, in *env) *env {
	switch s := n.(type) {
	case *ast.AssignStmt:
		out := in.clone()
		ctx.interpAssign(pkg, out, s)
		return out
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			out := in.clone()
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					ctx.interpValueSpec(pkg, out, vs)
				}
			}
			return out
		}
		return in
	case *ast.ExprStmt:
		ctx.evalExpr(pkg, in, s.X)
		return in
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ctx.evalExpr(pkg, in, r)
		}
		return in
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			if obj := identObj(pkg.Info, id); obj != nil {
				if _, tracked := in.get(obj); tracked {
					out := in.clone()
					out.set(obj, top())
					return out
				}
			}
		}
		return in
	case *ast.RangeStmt:
		ctx.evalExpr(pkg, in, s.X)
		out := in
		kill := func(x ast.Expr) {
			if x == nil {
				return
			}
			if id, ok := ast.Unparen(x).(*ast.Ident); ok && id.Name != "_" {
				if obj := identObj(pkg.Info, id); obj != nil {
					if out == in {
						out = in.clone()
					}
					out.set(obj, top())
				}
			}
		}
		kill(s.Key)
		kill(s.Value)
		return out
	case *ast.SendStmt:
		ctx.evalExpr(pkg, in, s.Value)
		return in
	case *ast.DeferStmt, *dataflow.DeferRun, *ast.GoStmt:
		// Deferred and concurrent bodies are analyzed as their own func
		// literal units; their argument shapes at registration time are
		// not constrained here.
		return in
	}
	return in
}
