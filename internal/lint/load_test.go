package lint

import (
	"path/filepath"
	"testing"
)

func TestFindModuleRoot(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":   "module example.com/m\n\ngo 1.22\n",
		"a/b/c.go": "package b\n",
	})
	got, mod, err := FindModuleRoot(filepath.Join(root, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if got != root {
		t.Errorf("root = %q, want %q", got, root)
	}
	if mod != "example.com/m" {
		t.Errorf("module = %q, want example.com/m", mod)
	}
}

func TestLoadProgramReportsTypeErrors(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\nfunc f() { undefined() }\n",
	})
	if _, err := LoadProgram(root, fixtureModPath); err == nil {
		t.Fatal("loading an ill-typed tree succeeded, want error")
	}
}

func TestLoadProgramSkipsTestsAndTestdata(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/p.go":              "package p\n",
		"p/p_test.go":         "package p\n\nthis is not Go\n",
		"p/testdata/bad.go":   "also not Go\n",
		"p/_ignored/skip.go":  "still not Go\n",
		".hidden/whatever.go": "not Go either\n",
	})
	prog, err := LoadProgram(root, fixtureModPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) != 1 || prog.Packages[0].Path != fixtureModPath+"/p" {
		t.Fatalf("loaded %+v, want just %s/p", prog.Packages, fixtureModPath)
	}
}
