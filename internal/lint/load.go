package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"quickdrop/internal/lint/dataflow"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files are the parsed non-test files (tests are out of scope for
	// every analyzer in the suite).
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// FuncInfo locates a function declaration inside the loaded program.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Program is a fully loaded and type-checked module tree.
type Program struct {
	Fset *token.FileSet
	// Root is the directory the module was loaded from.
	Root string
	// Packages holds every package under Root, sorted by import path.
	Packages []*Package
	// Decls maps a function object to its declaration, across all
	// packages — the cross-package fact base for contract lookups.
	Decls map[*types.Func]FuncInfo

	// cgOnce/cg cache the program-wide static call graph (built lazily
	// by CallGraph in callgraph.go; analyzers share one build).
	cgOnce sync.Once
	cg     *dataflow.CallGraph[*types.Func]
}

// sharedFset is the file set shared by every load in the process, so
// that stdlib packages type-checked once by the source importer can be
// reused by all fixture programs and the main module alike.
var sharedFset = token.NewFileSet()

// stdImporter is the process-wide cache of stdlib packages, resolved
// from $GOROOT source (the gc export-data importer is not usable on a
// distribution without compiled package archives).
var stdImporter = struct {
	sync.Mutex
	imp types.Importer
}{}

func importStd(path string) (*types.Package, error) {
	stdImporter.Lock()
	defer stdImporter.Unlock()
	if stdImporter.imp == nil {
		stdImporter.imp = importer.ForCompiler(sharedFset, "source", nil)
	}
	return stdImporter.imp.Import(path)
}

// loader resolves module-internal imports by parsing and type-checking
// the corresponding directory, recursively, with cycle detection.
type loader struct {
	root    string
	modPath string
	pkgs    map[string]*Package
	loading map[string]bool
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.relOf(path); ok {
		pkg, err := l.loadDir(filepath.Join(l.root, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return importStd(path)
}

// relOf maps a module-internal import path to a root-relative
// directory.
func (l *loader) relOf(path string) (string, bool) {
	if path == l.modPath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.FromSlash(rest), true
	}
	return "", false
}

// loadDir parses and type-checks the non-test files of one directory.
func (l *loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, sharedFset, files, info) //lint:allow errcheck errors are gathered via conf.Error to report them all at once
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, errors.Join(typeErrs...))
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadProgram parses and type-checks every package under root, whose
// import paths are rooted at modPath. Directories named testdata or
// vendor, and hidden or underscore-prefixed directories, are skipped,
// as are test files.
func LoadProgram(root, modPath string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		root:    root,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: sharedFset, Root: root, Decls: make(map[*types.Func]FuncInfo)}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.Decls[fn] = FuncInfo{Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	return prog, nil
}

// FindModuleRoot walks upward from dir to the directory containing
// go.mod and returns that directory and the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
