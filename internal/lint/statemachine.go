package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"quickdrop/internal/lint/dataflow"
)

// StateMachine verifies that a lifecycle-typed value only ever moves
// along the edges of a transition table declared next to its type:
//
//	//lint:statemachine StateQueued->StateCoalesced StateCoalesced->StateFailed
//
// in the type declaration's doc comment, one or more edges per line,
// each edge naming two constants of the type. Every assignment of a
// machine constant — to a local, or to a field reached from a tracked
// root — is checked flow-sensitively against the set of states the
// value can hold at that point; writes through setter methods are
// resolved interprocedurally via bottom-up summaries over the call
// graph (a method whose body assigns its parameter into the state
// field transfers the call site's constant argument), so serve's
// fail → finish(StateFailed) chain is understood. A value whose state
// is unknown (function entry, loop-fresh range variables, anything
// escaping the modeled domain) checks nothing — the rule reports only
// provable violations, such as a failed ticket being re-finished as
// published.
var StateMachine = &Analyzer{
	Name: "statemachine",
	Doc:  "lifecycle-typed values transition only along their declared state-machine edges",
	Run:  runStateMachine,
}

// statemachinePrefix introduces a transition-table directive.
const statemachinePrefix = "//lint:statemachine"

// isStateMachineComment matches the directive prefix at a word
// boundary.
func isStateMachineComment(text string) bool {
	rest, ok := strings.CutPrefix(text, statemachinePrefix)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// smMachine is one declared lifecycle: a named type, its constants,
// and the legal transition edges.
type smMachine struct {
	typ    *types.TypeName
	consts []*types.Const
	bit    map[*types.Const]uint
	edges  map[[2]*types.Const]bool
}

func (m *smMachine) mask(c *types.Const) uint64 { return 1 << m.bit[c] }

// namesOf renders the constants selected by mask, in declaration
// order.
func (m *smMachine) namesOf(mask uint64) string {
	var names []string
	for _, c := range m.consts {
		if mask&m.mask(c) != 0 {
			names = append(names, c.Name())
		}
	}
	return strings.Join(names, "|")
}

func runStateMachine(pass *Pass) {
	// Whole-program rule: run once, from the first loaded package.
	if len(pass.Prog.Packages) == 0 || pass.Pkg != pass.Prog.Packages[0] {
		return
	}
	sm := &stateMachine{pass: pass, machines: make(map[*types.TypeName]*smMachine)}
	sm.collectMachines()
	if len(sm.machines) == 0 {
		return
	}
	sm.sums = dataflow.FixSummaries(pass.Prog.CallGraph(), dataflow.SummaryAnalysis[*types.Func, smSummary]{
		Bottom:   func(*types.Func) smSummary { return smSummary{} },
		Transfer: sm.transferSummary,
		Equal:    eqSmSummary,
	})
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			funcUnits(f, func(body *ast.BlockStmt, _ string) {
				sm.checkUnit(pkg, body)
			})
		}
	}
}

type stateMachine struct {
	pass     *Pass
	machines map[*types.TypeName]*smMachine
	sums     map[*types.Func]smSummary
}

// machineOf returns the lifecycle declared for t's named type (behind
// a pointer), or nil.
func (sm *stateMachine) machineOf(t types.Type) *smMachine {
	if t == nil {
		return nil
	}
	n := namedOf(t)
	if n == nil {
		return nil
	}
	return sm.machines[n.Obj()]
}

// collectMachines parses every //lint:statemachine directive in the
// tree, reporting malformed tables and misplaced directives.
func (sm *stateMachine) collectMachines() {
	for _, pkg := range sm.pass.Prog.Packages {
		for _, f := range pkg.Files {
			consumed := make(map[*ast.Comment]bool)
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if doc == nil {
						continue
					}
					var directives []*ast.Comment
					for _, c := range doc.List {
						if isStateMachineComment(c.Text) {
							consumed[c] = true
							directives = append(directives, c)
						}
					}
					if len(directives) > 0 {
						sm.buildMachine(pkg, ts, directives)
					}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if isStateMachineComment(c.Text) && !consumed[c] {
						sm.pass.Reportf(c.Pos(), "//lint:statemachine directive must be in a type declaration's doc comment")
					}
				}
			}
		}
	}
}

// buildMachine resolves one type's transition table.
func (sm *stateMachine) buildMachine(pkg *Package, ts *ast.TypeSpec, directives []*ast.Comment) {
	tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if tn == nil {
		return
	}
	m := &smMachine{
		typ:   tn,
		bit:   make(map[*types.Const]uint),
		edges: make(map[[2]*types.Const]bool),
	}
	// The machine's constants, in declaration order across the package.
	byName := make(map[string]*types.Const)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || namedOf(c.Type()) == nil || namedOf(c.Type()).Obj() != tn {
						continue
					}
					if _, dup := m.bit[c]; dup {
						continue
					}
					m.bit[c] = uint(len(m.consts))
					m.consts = append(m.consts, c)
					byName[c.Name()] = c
				}
			}
		}
	}
	if len(m.consts) == 0 || len(m.consts) > 64 {
		sm.pass.Reportf(directives[0].Pos(),
			"//lint:statemachine on %s, which has %d constants (want 1..64)", tn.Name(), len(m.consts))
		return
	}
	valid := true
	for _, c := range directives {
		rest := strings.TrimPrefix(c.Text, statemachinePrefix)
		// Anything after a nested "//" is commentary, not directive.
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = rest[:i]
		}
		for _, tok := range strings.Fields(rest) {
			from, to, ok := strings.Cut(tok, "->")
			if !ok || from == "" || to == "" {
				sm.pass.Reportf(c.Pos(), "malformed //lint:statemachine edge %q (want From->To)", tok)
				valid = false
				continue
			}
			cf, cok := byName[from]
			ct, tok2 := byName[to]
			if !cok || !tok2 {
				missing := from
				if cok {
					missing = to
				}
				sm.pass.Reportf(c.Pos(), "//lint:statemachine edge %q names %q, which is not a constant of %s", tok, missing, tn.Name())
				valid = false
				continue
			}
			m.edges[[2]*types.Const{cf, ct}] = true
		}
	}
	if valid || len(m.edges) > 0 {
		sm.machines[tn] = m
	}
}

// --- interprocedural setter summaries ---

// smWrite describes what a function may write into one machine-typed
// location of its receiver: a set of constants, a set of parameter
// positions passed through, or something the analysis cannot resolve.
type smWrite struct {
	consts  map[*types.Const]bool
	params  map[int]bool
	unknown bool
}

// smSummary maps a receiver-relative field path ("state",
// "inner.state") to the write effect on it.
type smSummary map[string]*smWrite

func eqSmWrite(a, b *smWrite) bool {
	if a.unknown != b.unknown || len(a.consts) != len(b.consts) || len(a.params) != len(b.params) {
		return false
	}
	for c := range a.consts {
		if !b.consts[c] {
			return false
		}
	}
	for p := range a.params {
		if !b.params[p] {
			return false
		}
	}
	return true
}

func eqSmSummary(a, b smSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for path, w := range a {
		bw, ok := b[path]
		if !ok || !eqSmWrite(w, bw) {
			return false
		}
	}
	return true
}

// fieldPathOf resolves an ident/selector chain to its root object and
// the dot-joined field path below the root ("" for a plain ident).
func fieldPathOf(info *types.Info, expr ast.Expr) (types.Object, string, bool) {
	key, display, ok := receiverPath(info, expr)
	if !ok {
		return nil, "", false
	}
	if i := strings.IndexByte(display, '.'); i >= 0 {
		return key.root, display[i+1:], true
	}
	return key.root, "", true
}

func joinPath(base, path string) string {
	if base == "" {
		return path
	}
	if path == "" {
		return base
	}
	return base + "." + path
}

// constOf resolves expr to a constant of some declared machine, or
// nil.
func (sm *stateMachine) constOf(info *types.Info, expr ast.Expr) *types.Const {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = identObj(info, e)
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	c, ok := obj.(*types.Const)
	if !ok || sm.machineOf(c.Type()) == nil {
		return nil
	}
	return c
}

// transferSummary derives fn's receiver write effects: direct
// assignments into machine-typed receiver fields, plus effects folded
// through calls to other methods on the same receiver (constant
// arguments resolve the callee's parameter passthroughs).
func (sm *stateMachine) transferSummary(fn *types.Func, get func(*types.Func) smSummary) smSummary {
	out := smSummary{}
	fi, ok := sm.pass.Prog.Decls[fn]
	if !ok || fi.Decl.Body == nil || fi.Decl.Recv == nil {
		return out
	}
	info := fi.Pkg.Info
	params := paramIndexMap(info, fi.Decl)
	var recvObj types.Object
	for obj, i := range params {
		if i == -1 {
			recvObj = obj
		}
	}
	if recvObj == nil {
		return out
	}
	ensure := func(path string) *smWrite {
		w := out[path]
		if w == nil {
			w = &smWrite{consts: make(map[*types.Const]bool), params: make(map[int]bool)}
			out[path] = w
		}
		return w
	}
	recordRHS := func(w *smWrite, rhs ast.Expr) {
		if c := sm.constOf(info, rhs); c != nil {
			w.consts[c] = true
			return
		}
		if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				if pi, isParam := params[obj]; isParam && pi >= 0 {
					w.params[pi] = true
					return
				}
			}
		}
		w.unknown = true
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				root, path, ok := fieldPathOf(info, lhs)
				if !ok || root != recvObj || path == "" || sm.machineOf(info.TypeOf(lhs)) == nil {
					continue
				}
				recordRHS(ensure(path), n.Rhs[i])
			}
		case *ast.IncDecStmt:
			if root, path, ok := fieldPathOf(info, n.X); ok && root == recvObj && path != "" && sm.machineOf(info.TypeOf(n.X)) != nil {
				ensure(path).unknown = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if root, path, ok := fieldPathOf(info, n.X); ok && root == recvObj && path != "" && sm.machineOf(info.TypeOf(n.X)) != nil {
					ensure(path).unknown = true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, basePath, ok := fieldPathOf(info, sel.X)
			if !ok || base != recvObj {
				return true
			}
			cs := get(calleeFunc(info, n))
			for path, cw := range cs {
				w := ensure(joinPath(basePath, path))
				w.unknown = w.unknown || cw.unknown
				for c := range cw.consts {
					w.consts[c] = true
				}
				for pi := range cw.params {
					if pi >= len(n.Args) {
						w.unknown = true
						continue
					}
					recordRHS(w, n.Args[pi])
				}
			}
		}
		return true
	})
	return out
}

// --- the flow-sensitive checker ---

// smFact maps tracked machine-typed locations to the bitmask of states
// they can hold. A missing key means "unknown" (Top), which silences
// every check for the location — so joins intersect key sets.
type smFact map[syncKey]uint64

func (f smFact) clone() smFact {
	out := make(smFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinSmFact(a, b smFact) smFact {
	out := make(smFact)
	for k, v := range a {
		if w, ok := b[k]; ok {
			out[k] = v | w
		}
	}
	return out
}

func eqSmFact(a, b smFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (sm *stateMachine) checkUnit(pkg *Package, body *ast.BlockStmt) {
	info := pkg.Info
	// Cheap pre-scan: skip units that mention no machine constant and
	// no machine-typed selector write (the fixpoint is not free).
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if t := info.TypeOf(e); t != nil && sm.machineOf(t) != nil {
				found = true
			}
		}
		return true
	})
	if !found {
		return
	}
	cf := &smFlow{sm: sm, info: info}
	cf.run(body)
}

type smFlow struct {
	sm        *stateMachine
	info      *types.Info
	reporting bool
	seen      map[token.Pos]map[string]bool
}

func (cf *smFlow) report(pos token.Pos, msg string) {
	if !cf.reporting {
		return
	}
	if cf.seen[pos] == nil {
		cf.seen[pos] = make(map[string]bool)
	}
	if cf.seen[pos][msg] {
		return
	}
	cf.seen[pos][msg] = true
	cf.sm.pass.Reportf(pos, "%s", msg)
}

func (cf *smFlow) run(body *ast.BlockStmt) {
	g := dataflow.NewFromBlock(body, func(call *ast.CallExpr) bool {
		return isBuiltinPanic(cf.info, call)
	})
	if g == nil {
		return
	}
	an := dataflow.Analysis[smFact]{
		Init:  smFact{},
		Join:  joinSmFact,
		Equal: eqSmFact,
		Stmt:  cf.transfer,
	}
	res := dataflow.Forward(g, an)

	cf.reporting = true
	cf.seen = make(map[token.Pos]map[string]bool)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = cf.transfer(n, f)
		}
	}
	cf.reporting = false
}

// dropRooted removes every tracked key rooted at obj.
func dropRooted(f smFact, set func(syncKey, uint64, bool), obj types.Object) {
	for k := range f {
		if k.root == obj {
			set(k, 0, false)
		}
	}
}

func (cf *smFlow) transfer(n ast.Node, in smFact) smFact {
	out := in
	cloned := false
	set := func(k syncKey, mask uint64, present bool) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		if present {
			out[k] = mask
		} else {
			delete(out, k)
		}
	}

	var walk func(n ast.Node, insideDefer bool)
	walk = func(n ast.Node, insideDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return insideDefer
			case *ast.DeferStmt:
				return false // runs on the defers block
			case *ast.RangeStmt:
				walk(x.X, insideDefer)
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e == nil {
						continue
					}
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if obj := identObj(cf.info, id); obj != nil {
							dropRooted(out, set, obj)
						}
					}
				}
				return false
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						walk(x.Rhs[i], insideDefer) // nested calls first
						cf.assign(x.Lhs[i], x.Rhs[i], out, set)
					}
					return false
				}
				return true
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if root, _, ok := fieldPathOf(cf.info, x.X); ok {
						dropRooted(out, set, root)
					}
				}
				return true
			case *ast.CallExpr:
				cf.call(x, out, set)
				return true
			}
			return true
		})
	}
	switch s := n.(type) {
	case *dataflow.DeferRun:
		walk(s.D.Call, true)
	default:
		walk(n, false)
	}
	return out
}

// assign folds one lhs = rhs pair: a machine-constant write is checked
// against the incoming state set and then lands strongly; any other
// write to a tracked location degrades it to unknown.
func (cf *smFlow) assign(lhs, rhs ast.Expr, f smFact, set func(syncKey, uint64, bool)) {
	root, path, ok := fieldPathOf(cf.info, lhs)
	if !ok {
		return
	}
	m := cf.sm.machineOf(cf.info.TypeOf(lhs))
	if m == nil {
		// Overwriting a struct that contains tracked fields (t = other)
		// invalidates everything below it.
		if path == "" {
			dropRooted(f, set, root)
		}
		return
	}
	key := syncKey{root: root, path: path}
	c := cf.sm.constOf(cf.info, rhs)
	if c == nil || cf.sm.machineOf(c.Type()) != m {
		set(key, 0, false)
		return
	}
	if mask, known := f[key]; known && mask != 0 {
		if !cf.legal(m, mask, m.mask(c)) {
			cf.report(lhs.Pos(), fmt.Sprintf("illegal %s transition %s -> %s; the declared lifecycle has no such edge",
				m.typ.Name(), m.namesOf(mask), c.Name()))
		}
	}
	set(key, m.mask(c), true)
}

// legal reports whether some (from, to) pair across the two masks is a
// declared edge.
func (cf *smFlow) legal(m *smMachine, fromMask, toMask uint64) bool {
	for _, from := range m.consts {
		if fromMask&m.mask(from) == 0 {
			continue
		}
		for _, to := range m.consts {
			if toMask&m.mask(to) == 0 {
				continue
			}
			if m.edges[[2]*types.Const{from, to}] {
				return true
			}
		}
	}
	return false
}

// call folds one call: a summarized method on a tracked receiver
// applies its write effects (checked like direct assignments); any
// other call degrades the locations its arguments mention.
func (cf *smFlow) call(call *ast.CallExpr, f smFact, set func(syncKey, uint64, bool)) {
	callee := calleeFunc(cf.info, call)
	// Arguments first: passing a tracked value (or its root) anywhere
	// hands it to code the flow cannot see.
	for _, arg := range call.Args {
		if root, _, ok := fieldPathOf(cf.info, arg); ok {
			dropRooted(f, set, root)
		}
	}
	if callee == nil {
		return
	}
	sum, summarized := cf.sm.sums[callee]
	if !summarized || len(sum) == 0 {
		// An unsummarized callee on a tracked receiver could write
		// anything; a summarized one with no effects provably writes
		// nothing.
		if !summarized {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if root, _, ok := fieldPathOf(cf.info, sel.X); ok {
					dropRooted(f, set, root)
				}
			}
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root, basePath, ok := fieldPathOf(cf.info, sel.X)
	if !ok {
		return
	}
	paths := make([]string, 0, len(sum))
	for p := range sum {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		w := sum[p]
		key := syncKey{root: root, path: joinPath(basePath, p)}
		var m *smMachine
		writes := uint64(0)
		unknown := w.unknown
		for c := range w.consts {
			m = cf.sm.machineOf(c.Type())
			if m != nil {
				writes |= m.mask(c)
			}
		}
		for pi := range w.params {
			if pi >= len(call.Args) {
				unknown = true
				continue
			}
			if c := cf.sm.constOf(cf.info, call.Args[pi]); c != nil {
				if mc := cf.sm.machineOf(c.Type()); m == nil || mc == m {
					m = mc
					writes |= mc.mask(c)
					continue
				}
			}
			unknown = true
		}
		if unknown || m == nil || writes == 0 {
			set(key, 0, false)
			continue
		}
		if mask, known := f[key]; known && mask != 0 {
			if !cf.legal(m, mask, writes) {
				cf.report(call.Pos(), fmt.Sprintf("call to %s moves %s from %s to %s; the declared lifecycle has no such edge",
					callee.Name(), m.typ.Name(), m.namesOf(mask), m.namesOf(writes)))
			}
		}
		// The declared writes are assumed to land: a guard that would
		// silently drop the write hides a dead transition, which is
		// exactly what the rule exists to surface.
		set(key, writes, true)
	}
}
