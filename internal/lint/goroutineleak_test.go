package lint

import "testing"

func TestGoroutineLeakGolden(t *testing.T) {
	runGolden(t, GoroutineLeak)
}
