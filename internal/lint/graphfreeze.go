package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"quickdrop/internal/lint/dataflow"
)

// GraphFreeze enforces autodiff-graph immutability outside the engine:
// a tensor reachable from an autodiff.Value is frozen for the graph's
// lifetime (that is what makes views zero-copy and lets VJP closures
// read operands after the forward pass). Outside internal/autodiff the
// analyzer flags, for any expression v.Data whose v is an
// autodiff.Value:
//
//   - calls to the in-place tensor mutators on it (Zero, CopyFrom,
//     AddInPlace, ScaleInPlace, AxpyInPlace, ScaleAddInPlace, Set);
//   - assignments to it (v.Data = …) or through its storage
//     (copy(v.Data.Data(), …));
//   - passing it as the destination of an *Into kernel.
//
// Reading v.Data — including handing it to a kernel as an input, or
// CopyFrom-ing it into a detached buffer — is fine.
//
// The checks are path-sensitive: a flow-sensitive taint analysis over
// the function's CFG tracks locals that alias a node's tensor
// ("t := v.Data" and copies of such locals), so mutating the graph
// through an alias is flagged with the same messages, while a local
// that is reassigned to a detached tensor before the write is not.
var GraphFreeze = &Analyzer{
	Name: "graphfreeze",
	Doc:  "no writes to an autodiff node's tensor outside internal/autodiff",
	Run:  runGraphFreeze,
}

// tensorMutators mutate a tensor's elements in place.
var tensorMutators = map[string]bool{
	"Zero": true, "CopyFrom": true, "AddInPlace": true, "ScaleInPlace": true,
	"AxpyInPlace": true, "ScaleAddInPlace": true, "Set": true,
}

func runGraphFreeze(pass *Pass) {
	if hasPathSuffix(pass.Pkg.Path, "internal/autodiff") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Direct v.Data writes are position-bound, not flow-bound: one
		// lexical sweep covers them everywhere, including literals.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if isValueData(info, lhs) {
						pass.Reportf(lhs.Pos(), "assignment to an autodiff node's tensor; graph-held tensors are immutable outside internal/autodiff")
					}
				}
			case *ast.CallExpr:
				checkGraphFreezeCall(pass, info, n, nil)
			}
			return true
		})
		// Alias taint is flow-sensitive and runs per function unit.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runGraphFreezeFlow(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					runGraphFreezeFlow(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// taintFact is the set of locals currently aliasing an autodiff node's
// tensor. Facts are immutable; the transfer function copies on write.
type taintFact map[types.Object]bool

func (f taintFact) clone() taintFact {
	out := make(taintFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinTaintFact(a, b taintFact) taintFact {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

func eqTaintFact(a, b taintFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// runGraphFreezeFlow tracks v.Data aliases through one function body
// and reports writes through them.
func runGraphFreezeFlow(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := dataflow.NewFromBlock(body, nil)
	if g == nil {
		return
	}
	gf := &graphFlow{pass: pass, info: info}
	an := dataflow.Analysis[taintFact]{
		Init:  taintFact{},
		Join:  joinTaintFact,
		Equal: eqTaintFact,
		Stmt:  gf.transfer,
	}
	res := dataflow.Forward(g, an)

	gf.reporting = true
	gf.seen = make(map[ast.Node]bool)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = gf.transfer(n, f)
		}
	}
}

type graphFlow struct {
	pass      *Pass
	info      *types.Info
	reporting bool
	seen      map[ast.Node]bool
}

// transfer propagates taint through one CFG node: assignments from
// v.Data (or from tainted locals) taint, strong updates from anything
// else clear, and mutating calls on tainted locals are reported.
func (gf *graphFlow) transfer(n ast.Node, in taintFact) taintFact {
	out := in
	cloned := false
	set := func(obj types.Object, tainted bool) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		if tainted {
			out[obj] = true
		} else {
			delete(out, obj)
		}
	}
	if dr, ok := n.(*dataflow.DeferRun); ok {
		// The deferred call executes here; its own literal body is a
		// separate unit, so only the call's direct arguments matter and
		// they cannot retaint anything.
		_ = dr
		return out
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // separate unit
		case *ast.DeferStmt:
			return false // registration; the call is a DeferRun at exit
		case *ast.RangeStmt:
			// The loop head only binds key/value (element reads are not
			// aliases we model); the body runs in its own blocks.
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
					if obj := identObj(gf.info, id); obj != nil {
						set(obj, false)
					}
				}
			}
			return false
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := identObj(gf.info, id)
					if obj == nil {
						continue
					}
					set(obj, gf.aliasesNode(out, x.Rhs[i]))
				}
			}
			return true
		case *ast.CallExpr:
			if gf.reporting && !gf.seen[x] {
				if gf.checkCall(out, x) {
					gf.seen[x] = true
				}
			}
			return true
		}
		return true
	})
	return out
}

// aliasesNode reports whether expr evaluates to a tensor aliasing an
// autodiff node's storage: v.Data itself, a tainted local, or a view of
// either (views share storage by design).
func (gf *graphFlow) aliasesNode(f taintFact, expr ast.Expr) bool {
	x := ast.Unparen(expr)
	if isValueData(gf.info, x) {
		return true
	}
	if id, ok := x.(*ast.Ident); ok {
		if obj := identObj(gf.info, id); obj != nil {
			return f[obj]
		}
	}
	// t.View(...), t.ViewLike(...), t.RowsView(...) alias t's storage.
	if call, ok := x.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "View", "ViewLike", "RowsView":
				if fn := calleeFunc(gf.info, call); fn != nil && isMethodOn(fn, sel.Sel.Name, "Tensor", "internal/tensor") {
					return gf.aliasesNode(f, sel.X)
				}
			}
		}
	}
	return false
}

// checkCall reports a mutating call through a tainted alias, reusing
// the lexical checks' message wording. It returns true when the call
// was a (reported or not) candidate so the caller can de-duplicate.
func (gf *graphFlow) checkCall(f taintFact, call *ast.CallExpr) bool {
	taintedIdent := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return false
		}
		obj := identObj(gf.info, id)
		return obj != nil && f[obj]
	}
	// t.Mutator(...) on a tainted t.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
		tensorMutators[sel.Sel.Name] && taintedIdent(sel.X) {
		if fn := calleeFunc(gf.info, call); fn != nil && isMethodOn(fn, sel.Sel.Name, "Tensor", "internal/tensor") {
			gf.pass.Reportf(call.Pos(), "%s mutates an autodiff node's tensor; graph-held tensors are immutable outside internal/autodiff", sel.Sel.Name)
			return true
		}
	}
	// copy(t.Data(), ...) through a tainted t.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) > 0 {
		if _, isBuiltin := gf.info.Uses[id].(*types.Builtin); isBuiltin {
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Data" && taintedIdent(sel.X) {
					gf.pass.Reportf(call.Pos(), "copy into an autodiff node's storage; graph-held tensors are immutable outside internal/autodiff")
					return true
				}
			}
		}
	}
	// SomeKernelInto(t, ...) with a tainted destination.
	if fn := calleeFunc(gf.info, call); fn != nil && strings.HasSuffix(fn.Name(), "Into") &&
		hasPathSuffix(funcPkgPath(fn), "internal/tensor") && len(call.Args) > 0 {
		if taintedIdent(call.Args[0]) {
			gf.pass.Reportf(call.Args[0].Pos(), "autodiff node's tensor used as %s destination; graph-held tensors are immutable outside internal/autodiff", fn.Name())
			return true
		}
	}
	return false
}

func checkGraphFreezeCall(pass *Pass, info *types.Info, call *ast.CallExpr, _ map[types.Object]bool) {
	// v.Data.Mutator(...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
		tensorMutators[sel.Sel.Name] && isValueData(info, sel.X) {
		pass.Reportf(call.Pos(), "%s mutates an autodiff node's tensor; graph-held tensors are immutable outside internal/autodiff", sel.Sel.Name)
		return
	}
	// copy(v.Data.Data(), ...) writes through the node's storage.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) > 0 {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Data" && isValueData(info, sel.X) {
					pass.Reportf(call.Pos(), "copy into an autodiff node's storage; graph-held tensors are immutable outside internal/autodiff")
				}
			}
		}
		return
	}
	// SomeKernelInto(v.Data, ...) would overwrite the node's result.
	if fn := calleeFunc(info, call); fn != nil && strings.HasSuffix(fn.Name(), "Into") && len(call.Args) > 0 {
		if isValueData(info, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "autodiff node's tensor used as %s destination; graph-held tensors are immutable outside internal/autodiff", fn.Name())
		}
	}
}

// isValueData reports whether expr selects the Data field of an
// autodiff.Value.
func isValueData(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || s.Obj().Name() != "Data" {
		return false
	}
	return isNamedIn(s.Recv(), "Value", "internal/autodiff")
}
