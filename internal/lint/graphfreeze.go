package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GraphFreeze enforces autodiff-graph immutability outside the engine:
// a tensor reachable from an autodiff.Value is frozen for the graph's
// lifetime (that is what makes views zero-copy and lets VJP closures
// read operands after the forward pass). Outside internal/autodiff the
// analyzer flags, for any expression v.Data whose v is an
// autodiff.Value:
//
//   - calls to the in-place tensor mutators on it (Zero, CopyFrom,
//     AddInPlace, ScaleInPlace, AxpyInPlace, ScaleAddInPlace, Set);
//   - assignments to it (v.Data = …) or through its storage
//     (copy(v.Data.Data(), …));
//   - passing it as the destination of an *Into kernel.
//
// Reading v.Data — including handing it to a kernel as an input, or
// CopyFrom-ing it into a detached buffer — is fine.
var GraphFreeze = &Analyzer{
	Name: "graphfreeze",
	Doc:  "no writes to an autodiff node's tensor outside internal/autodiff",
	Run:  runGraphFreeze,
}

// tensorMutators mutate a tensor's elements in place.
var tensorMutators = map[string]bool{
	"Zero": true, "CopyFrom": true, "AddInPlace": true, "ScaleInPlace": true,
	"AxpyInPlace": true, "ScaleAddInPlace": true, "Set": true,
}

func runGraphFreeze(pass *Pass) {
	if hasPathSuffix(pass.Pkg.Path, "internal/autodiff") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if isValueData(info, lhs) {
						pass.Reportf(lhs.Pos(), "assignment to an autodiff node's tensor; graph-held tensors are immutable outside internal/autodiff")
					}
				}
			case *ast.CallExpr:
				checkGraphFreezeCall(pass, info, n)
			}
			return true
		})
	}
}

func checkGraphFreezeCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	// v.Data.Mutator(...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
		tensorMutators[sel.Sel.Name] && isValueData(info, sel.X) {
		pass.Reportf(call.Pos(), "%s mutates an autodiff node's tensor; graph-held tensors are immutable outside internal/autodiff", sel.Sel.Name)
		return
	}
	// copy(v.Data.Data(), ...) writes through the node's storage.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) > 0 {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Data" && isValueData(info, sel.X) {
					pass.Reportf(call.Pos(), "copy into an autodiff node's storage; graph-held tensors are immutable outside internal/autodiff")
				}
			}
		}
		return
	}
	// SomeKernelInto(v.Data, ...) would overwrite the node's result.
	if fn := calleeFunc(info, call); fn != nil && strings.HasSuffix(fn.Name(), "Into") && len(call.Args) > 0 {
		if isValueData(info, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "autodiff node's tensor used as %s destination; graph-held tensors are immutable outside internal/autodiff", fn.Name())
		}
	}
}

// isValueData reports whether expr selects the Data field of an
// autodiff.Value.
func isValueData(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || s.Obj().Name() != "Data" {
		return false
	}
	return isNamedIn(s.Recv(), "Value", "internal/autodiff")
}
