package lint

import "testing"

func TestSnapFreezeGolden(t *testing.T) {
	runGolden(t, SnapFreeze)
}
