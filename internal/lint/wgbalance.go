package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"quickdrop/internal/lint/dataflow"
)

// WGBalance enforces sync.WaitGroup discipline on the CFG:
//
//   - In a unit that calls Done, the call must be reached on every
//     non-panicking path — an early return that skips Done leaves the
//     counter positive and the matching Wait hangs forever.
//   - A second Done on a path that already ran one drives the counter
//     negative, which panics at runtime.
//   - If the unit can panic and its Done is not deferred, the panic
//     path skips the Done; defer wg.Done() covers every exit.
//   - wg.Add inside a spawned goroutine races with the spawner's Wait
//     (Wait can observe the counter at zero before the goroutine runs
//     Add); Add belongs in the spawner, before the go statement.
//
// Receivers are tracked like lockbalance's mutexes, by selector path
// from a root object. Units that both Add and Done on one WaitGroup
// are orchestrators balancing the counter deliberately and are exempt
// from the path checks; rebinding the root degrades to unknown and
// silences everything.
var WGBalance = &Analyzer{
	Name: "wgbalance",
	Doc:  "WaitGroup Done on every path, no double Done, no Add inside the spawned goroutine",
	Run:  runWGBalance,
}

// wgState tracks how many Done calls have run on a path as a powerset
// over {zero, one, two-or-more}. Zero value means unknown and silences
// every check.
type wgState uint8

const (
	wgD0 wgState = 1 << iota // no Done has run on this path
	wgD1                     // exactly one Done has run
	wgD2                     // two or more: the counter may go negative
)

type wgFact map[syncKey]wgState

func (f wgFact) clone() wgFact {
	out := make(wgFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinWGFact(a, b wgFact) wgFact {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func eqWGFact(a, b wgFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// wgSite remembers the first Done call on a receiver for diagnostics.
type wgSite struct {
	pos     token.Pos
	display string
}

func runWGBalance(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcUnits(f, func(body *ast.BlockStmt, _ string) {
			checkWGBalance(pass, body)
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkWGAddInGo(pass, fd)
			}
		}
	}
}

// wgOpAt classifies a node as a WaitGroup call on a trackable receiver.
func wgOpAt(info *types.Info, n ast.Node) (syncKey, string, syncOp, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return syncKey{}, "", opNone, nil
	}
	op := isWaitGroupMethod(calleeFunc(info, call))
	if op == opNone {
		return syncKey{}, "", opNone, nil
	}
	recv, ok := syncCallRecv(call)
	if !ok {
		return syncKey{}, "", opNone, nil
	}
	key, display, ok := receiverPath(info, recv)
	if !ok {
		return syncKey{}, "", opNone, nil
	}
	return key, display, op, call
}

func checkWGBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Pre-scan: the flow analysis activates per receiver the unit calls
	// Done on. Units that also Add on the same receiver orchestrate the
	// counter deliberately (conditional Add paired with conditional
	// Done) and are exempt from the path checks.
	sites := make(map[syncKey]*wgSite)
	adds := make(map[syncKey]bool)
	inspectShallow(body, func(n ast.Node) {
		key, display, op, call := wgOpAt(info, n)
		switch op {
		case opWGDone:
			if _, ok := sites[key]; !ok {
				sites[key] = &wgSite{pos: call.Pos(), display: display}
			}
		case opWGAdd:
			adds[key] = true
		}
	})
	for key := range adds {
		delete(sites, key)
	}
	if len(sites) == 0 {
		return
	}

	wf := &wgFlow{pass: pass, info: info, sites: sites}
	wf.run(body)
}

// wgFlow mirrors lockFlow: a silent fixpoint, a reporting replay for
// double-Done, then the exit walk for missing and panic-skipped Dones.
type wgFlow struct {
	pass      *Pass
	info      *types.Info
	sites     map[syncKey]*wgSite
	reporting bool
	seen      map[token.Pos]bool
}

func (wf *wgFlow) run(body *ast.BlockStmt) {
	g := dataflow.NewFromBlock(body, func(call *ast.CallExpr) bool {
		return isBuiltinPanic(wf.info, call)
	})
	if g == nil {
		return
	}
	init := wgFact{}
	for key := range wf.sites {
		init[key] = wgD0
	}
	an := dataflow.Analysis[wgFact]{
		Init:  init,
		Join:  joinWGFact,
		Equal: eqWGFact,
		Stmt:  wf.transfer,
	}
	res := dataflow.Forward(g, an)

	// Replay with reporting on: double-Done fires at its own position.
	wf.reporting = true
	wf.seen = make(map[token.Pos]bool)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = wf.transfer(n, f)
		}
	}
	wf.reporting = false

	// Exit walk: join the folded states of all non-panicking exits and
	// of all panicking exits separately.
	panicking := make(map[*dataflow.Block]bool)
	for _, blk := range g.PanicExits {
		panicking[blk] = true
	}
	target := g.Exit
	if g.Defers != nil {
		target = g.Defers
	}
	normal := make(map[syncKey]wgState)
	normalUnknown := make(map[syncKey]bool)
	panicPure := make(map[syncKey]bool) // some panic exit where no Done ran
	for _, blk := range uniqueBlocks(target.Preds) {
		f, ok := res.Out(blk, an)
		if !ok {
			continue
		}
		if g.Defers != nil {
			for _, n := range g.Defers.Stmts {
				f = wf.transfer(n, f)
			}
		}
		for key := range wf.sites {
			st := f[key]
			if panicking[blk] {
				if st == wgD0 {
					panicPure[key] = true
				}
				continue
			}
			if st == 0 {
				normalUnknown[key] = true
				continue
			}
			normal[key] |= st
		}
	}
	for key, site := range wf.sites {
		if normalUnknown[key] {
			continue
		}
		joined := normal[key]
		switch {
		case joined&wgD0 != 0 && joined&(wgD1|wgD2) != 0:
			wf.pass.Reportf(site.pos,
				"%s.Done is skipped on some path out of this function; the matching Wait hangs", site.display)
		case joined&wgD0 == 0 && joined != 0 && panicPure[key]:
			wf.pass.Reportf(site.pos,
				"%s.Done is skipped when this function panics; defer it so every exit runs it", site.display)
		}
	}
}

// transfer folds one CFG node: Done shifts the receiver's count bits
// (reporting a definite double-Done during replay), rebinding the root
// degrades to unknown. Add and Wait leave the count alone — Add moves
// the counter up, never below zero, and the pre-scan already exempted
// orchestrator units.
func (wf *wgFlow) transfer(n ast.Node, in wgFact) wgFact {
	out := in
	cloned := false
	set := func(key syncKey, st wgState) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		out[key] = st
	}

	var walk func(n ast.Node, insideDefer bool)
	walk = func(n ast.Node, insideDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return insideDefer
			case *ast.DeferStmt:
				return false // registration point; runs on the defers block
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := identObj(wf.info, id)
					if obj == nil {
						continue
					}
					for key := range wf.sites {
						if key.root == obj && out[key] != 0 {
							set(key, 0)
						}
					}
				}
				return true
			case *ast.CallExpr:
				key, display, op, call := wgOpAt(wf.info, x)
				if op != opWGDone {
					return true
				}
				if _, tracked := wf.sites[key]; !tracked {
					return true
				}
				st := out[key]
				if st == 0 {
					return true // unknown stays unknown
				}
				if st&wgD0 == 0 {
					// Every path here already ran Done once.
					if wf.reporting && !wf.seen[call.Pos()] {
						wf.seen[call.Pos()] = true
						wf.pass.Reportf(call.Pos(),
							"%s.Done on a path where it already ran; the counter goes negative and panics", display)
					}
					set(key, 0) // degrade: don't cascade
					return true
				}
				next := wgState(0)
				if st&wgD0 != 0 {
					next |= wgD1
				}
				if st&(wgD1|wgD2) != 0 {
					next |= wgD2
				}
				set(key, next)
				return true
			}
			return true
		})
	}
	switch s := n.(type) {
	case *dataflow.DeferRun:
		walk(s.D.Call, true)
	default:
		walk(n, false)
	}
	return out
}

// checkWGAddInGo reports wg.Add calls inside a spawned goroutine when
// the surrounding declaration also Waits on (or Adds to) the same
// WaitGroup — the classic Add/Wait race. A goroutine managing its own
// nested WaitGroup, untouched outside the payload, is left alone.
func checkWGAddInGo(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	type opSite struct {
		key     syncKey
		op      syncOp
		pos     token.Pos
		display string
	}
	var ops []opSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		key, display, op, call := wgOpAt(info, n)
		if op == opWGAdd || op == opWGWait {
			ops = append(ops, opSite{key: key, op: op, pos: call.Pos(), display: display})
		}
		return true
	})
	if len(ops) == 0 {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lo, hi := gs.Call.Pos(), gs.Call.End()
		for _, add := range ops {
			if add.op != opWGAdd || add.pos < lo || add.pos >= hi {
				continue
			}
			for _, other := range ops {
				if other.key == add.key && (other.pos < lo || other.pos >= hi) {
					pass.Reportf(add.pos,
						"%s.Add inside the spawned goroutine races with Wait; call Add in the spawner before the go statement", add.display)
					break
				}
			}
		}
		return true
	})
}
