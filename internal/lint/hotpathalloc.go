package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc forbids known-allocating calls inside the hot paths of
// the training loops. Roots are function declarations carrying a
// //lint:hotpath directive in their doc comment; the analyzer computes
// the set of same-package functions statically reachable from the
// roots and flags, inside that set:
//
//   - (*tensor.Tensor).Shape — it clones; use Dim/Dims;
//   - the allocating tensor convenience methods (Add, Mul, MatMul, …)
//     — use the *Into form with a pooled or hoisted destination;
//   - fmt.Sprintf / Sprint / Sprintln / Errorf — formatting allocates.
//
// Calls inside a panic(...) argument are exempt: the argument is only
// evaluated on the failure path, which is exactly how the kernels keep
// shape diagnostics off the hot path.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "no allocating calls in functions reachable from //lint:hotpath roots",
	Run:  runHotPathAlloc,
}

// allocTensorMethods are the tensor.Tensor methods that always allocate
// a fresh result (the thin wrappers over the *Into kernels, plus the
// copying accessors).
var allocTensorMethods = map[string]string{
	"Shape":       "it clones the shape; use Dim/Dims",
	"Clone":       "it copies the full tensor",
	"Reshape":     "it copies; use View for shared storage",
	"Add":         "use AddInto with a pooled or hoisted destination",
	"Sub":         "use SubInto with a pooled or hoisted destination",
	"Mul":         "use MulInto with a pooled or hoisted destination",
	"Scale":       "use ScaleInto or ScaleInPlace",
	"Neg":         "use ScaleInto or ScaleInPlace",
	"Apply":       "use ApplyInto with a pooled or hoisted destination",
	"Pow":         "use PowInto with a pooled or hoisted destination",
	"Exp":         "use ApplyInto with a pooled or hoisted destination",
	"Log":         "use ApplyInto with a pooled or hoisted destination",
	"ReLU":        "use ApplyInto with a pooled or hoisted destination",
	"ReLUMask":    "use ApplyInto with a pooled or hoisted destination",
	"MatMul":      "use MatMulInto with a pooled or hoisted destination",
	"Transpose":   "use TransposeInto, or the NT/TN matmul forms",
	"SumAxes":     "use SumAxesInto with a pooled or hoisted destination",
	"BroadcastTo": "use BroadcastToInto or a fused broadcast kernel",
}

var allocFmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runHotPathAlloc(pass *Pass) {
	for fn, fd := range hotReachable(pass) {
		checkHotFunc(pass, fd, fn.Name())
	}
}

// hotReachable returns the package's functions statically reachable
// from its //lint:hotpath roots, mapped to their declarations. The call
// graph is same-package only: cross-package callees are checked at
// their own call sites, not followed. Shared by the hotpathalloc and
// telemetry analyzers so both agree on what "the hot path" is.
func hotReachable(pass *Pass) map[*types.Func]*ast.FuncDecl {
	info := pass.Pkg.Info

	// Collect this package's function declarations and the hot roots.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if isHotPathRoot(fd) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Static same-package call graph, then BFS from the roots.
	reachable := make(map[*types.Func]*ast.FuncDecl, len(roots))
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		reachable[r] = decls[r]
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if _, seen := reachable[callee]; seen {
				return true
			}
			if decl, local := decls[callee]; local {
				reachable[callee] = decl
				queue = append(queue, callee)
			}
			return true
		})
	}
	return reachable
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, name string) {
	if fd == nil {
		return
	}
	info := pass.Pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Arguments of panic(...) run only on the failure path.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return false
			}
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if funcPkgPath(fn) == "fmt" && allocFmtFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path of %s (reachable from a //lint:hotpath root)", fn.Name(), name)
		}
		if hint, ok := allocTensorMethods[fn.Name()]; ok && isMethodOn(fn, fn.Name(), "Tensor", "internal/tensor") {
			pass.Reportf(call.Pos(), "allocating tensor op %s on the hot path of %s: %s", fn.Name(), name, hint)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}
