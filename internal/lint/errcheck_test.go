package lint

import "testing"

func TestErrCheckGolden(t *testing.T) {
	runGolden(t, ErrCheck)
}
