package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix reports struct fields and package-level variables that one
// function accesses through sync/atomic while another reads or writes
// them plainly. Mixing the two access disciplines on one memory
// location voids every guarantee the atomic side paid for: the plain
// side races with concurrent atomic writers and can observe torn or
// stale values.
//
// The rule is whole-program: atomic sites are collected everywhere
// under internal/ first, then every plain access to one of those
// locations in a *different* function is reported. Locations are
// classified by lock-order classes ("pkg.Type.field", "pkg.var");
// locals have no cross-function identity and are never reported.
// Two exemptions keep constructors quiet: any address-taken access
// (&x.f) is left to the callee's discipline, and accesses through a
// local freshly built in the same function from a composite literal or
// new() predate any sharing.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "no plain loads/stores of locations other functions access via sync/atomic",
	Run:  runAtomicMix,
}

// atomicSite records one access to a classified location.
type atomicSite struct {
	fn  string // enclosing function declaration
	pos token.Pos
}

func runAtomicMix(pass *Pass) {
	// Whole-program rule: run once, from the first loaded package.
	if len(pass.Prog.Packages) == 0 || pass.Pkg != pass.Prog.Packages[0] {
		return
	}

	atomicUses := make(map[string][]atomicSite) // class → atomic access sites
	plainUses := make(map[string][]atomicSite)  // class → plain access sites

	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				collectAtomicMix(pkg.Info, fd, atomicUses, plainUses)
			}
		}
	}

	// Deterministic report order: by class, then by source position.
	classes := make([]string, 0, len(plainUses))
	for class := range plainUses {
		if len(atomicUses[class]) > 0 {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	for _, class := range classes {
		sites := plainUses[class]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, plain := range sites {
			other := ""
			for _, at := range atomicUses[class] {
				if at.fn != plain.fn {
					other = at.fn
					break
				}
			}
			if other == "" {
				continue // mixed only within one function; out of scope
			}
			pass.Reportf(plain.pos,
				"%s is accessed via sync/atomic in %s but read/written plainly here; mixing atomic and plain access races",
				class, other)
		}
	}
}

// collectAtomicMix walks one function declaration (nested literals
// included — they share the declaration's name for same-function
// grouping) and files every classified access as atomic or plain.
func collectAtomicMix(info *types.Info, fd *ast.FuncDecl, atomicUses, plainUses map[string][]atomicSite) {
	fn := fd.Name.Name

	// Locals freshly built here from a composite literal or new():
	// accesses through them predate sharing and are exempt.
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isFreshAlloc(info, rhs) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})

	record := func(m map[string][]atomicSite, class string, pos token.Pos) {
		m[class] = append(m[class], atomicSite{fn: fn, pos: pos})
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAtomicPkgCall(info, n) {
				// The &loc arguments are this call's atomic accesses;
				// other arguments are ordinary expressions.
				for _, arg := range n.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						ast.Inspect(arg, walk)
						continue
					}
					if class, ok := lockClassOf(info, un.X); ok {
						record(atomicUses, class, un.Pos())
					}
				}
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Address-taken for a callee we don't see: not a plain
				// load/store at this site; the callee's calls classify.
				return false
			}
		case *ast.SelectorExpr:
			if class, ok := lockClassOf(info, n); ok && !rootIsFresh(info, n, fresh) {
				record(plainUses, class, n.Pos())
				return false // the chain is one access, not several
			}
		case *ast.Ident:
			if class, ok := lockClassOf(info, n); ok {
				record(plainUses, class, n.Pos())
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// isAtomicPkgCall reports whether the call resolves to a function in
// package sync/atomic (AddInt64, LoadUint32, StoreInt32, Swap…).
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isFreshAlloc reports whether the expression allocates a brand-new
// value: T{...}, &T{...}, or new(T).
func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
		return lit
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "new" {
			return false
		}
		_, builtin := info.Uses[id].(*types.Builtin)
		return builtin
	}
	return false
}

// rootIsFresh reports whether the base of a selector chain is one of
// the function's freshly allocated locals.
func rootIsFresh(info *types.Info, sel *ast.SelectorExpr, fresh map[types.Object]bool) bool {
	var e ast.Expr = sel
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			obj := identObj(info, x)
			return obj != nil && fresh[obj]
		default:
			return false
		}
	}
}
