package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"quickdrop/internal/lint/dataflow"
)

// LockBalance enforces mutex discipline on the CFG, the concurrency
// analogue of poolbalance's borrow/release pairing: a sync.Mutex or
// sync.RWMutex locked inside a function must be unlocked on every
// non-panicking path out of it — deferred Unlocks (including ones inside
// deferred closures) count on every exit, an early return that skips the
// Unlock is a leak, a second Lock of the same receiver on one path is a
// self-deadlock, a Lock (or RLock) while the read lock is already held
// is an upgrade deadlock, and an Unlock/RUnlock on a provably-unlocked
// receiver is a misuse that panics at runtime.
//
// Receivers are tracked by their selector path from a root object
// ("s.mu", "stdImporter"), so distinct instances of one struct type are
// distinct locks. Rebinding the root object degrades the state to
// unknown, which silences every check — the no-false-positives bias of
// the suite. Functions that only Unlock (callee-release helpers) are
// not judged: the analysis only activates for receivers the function
// itself Locks or RLocks.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "every Lock/RLock must be released on every path; no double-lock, no unlock-without-lock",
	Run:  runLockBalance,
}

// lockState is the per-receiver powerset state. Zero means unknown
// (entry state, or degraded after rebinding/violation), which silences
// every check for the receiver.
type lockState uint8

const (
	lkUnlocked lockState = 1 << iota // provably not held on this path
	lkLocked                         // write lock held
	lkRLocked                        // read lock held
)

// lockFact maps tracked receivers to their path state; immutable like
// poolFact.
type lockFact map[syncKey]lockState

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinLockFact(a, b lockFact) lockFact {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func eqLockFact(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// lockSite remembers where a tracked receiver was first locked, for
// leak diagnostics, and how it is spelled.
type lockSite struct {
	pos     token.Pos
	display string
}

func runLockBalance(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcUnits(f, func(body *ast.BlockStmt, _ string) {
			checkLockBalance(pass, body)
		})
	}
}

// lockOpAt classifies a node as a mutex call on a trackable receiver.
func lockOpAt(info *types.Info, n ast.Node) (syncKey, string, syncOp, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return syncKey{}, "", opNone, nil
	}
	op := isMutexMethod(calleeFunc(info, call))
	if op == opNone {
		return syncKey{}, "", opNone, nil
	}
	recv, ok := syncCallRecv(call)
	if !ok {
		return syncKey{}, "", opNone, nil
	}
	key, display, ok := receiverPath(info, recv)
	if !ok {
		return syncKey{}, "", opNone, nil
	}
	return key, display, op, call
}

func checkLockBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Pre-scan: the unit only gets a flow analysis when it acquires a
	// lock itself. Nested literals are their own units; deferred
	// closures still belong to this unit's defers block, but a Lock
	// inside one is not an acquisition of this unit.
	sites := make(map[syncKey]*lockSite)
	inspectShallow(body, func(n ast.Node) {
		key, display, op, call := lockOpAt(info, n)
		if op == opLock || op == opRLock {
			if _, ok := sites[key]; !ok {
				sites[key] = &lockSite{pos: call.Pos(), display: display}
			}
		}
	})
	if len(sites) == 0 {
		return
	}

	lf := &lockFlow{pass: pass, info: info, sites: sites}
	lf.run(body)
}

// lockFlow runs the forward analysis over one unit, mirroring
// poolbalance's poolFlow: a silent fixpoint, a reporting replay of each
// reached block, then the exit-path leak check with defers applied.
type lockFlow struct {
	pass      *Pass
	info      *types.Info
	sites     map[syncKey]*lockSite
	reporting bool
	seen      map[token.Pos]map[string]bool
}

func (lf *lockFlow) report(pos token.Pos, msg string) {
	if !lf.reporting {
		return
	}
	if lf.seen[pos] == nil {
		lf.seen[pos] = make(map[string]bool)
	}
	if lf.seen[pos][msg] {
		return
	}
	lf.seen[pos][msg] = true
	lf.pass.Reportf(pos, "%s", msg)
}

func (lf *lockFlow) run(body *ast.BlockStmt) {
	g := dataflow.NewFromBlock(body, func(call *ast.CallExpr) bool {
		return isBuiltinPanic(lf.info, call)
	})
	if g == nil {
		return
	}
	an := dataflow.Analysis[lockFact]{
		Init:  lockFact{},
		Join:  joinLockFact,
		Equal: eqLockFact,
		Stmt:  lf.transfer,
	}
	res := dataflow.Forward(g, an)

	// Replay with reporting on: double-lock, upgrade, and
	// unlock-without-lock fire here at their own positions.
	lf.reporting = true
	lf.seen = make(map[token.Pos]map[string]bool)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk]
		if !ok {
			continue
		}
		f := in
		for _, n := range blk.Stmts {
			f = lf.transfer(n, f)
		}
	}
	lf.reporting = false

	// Leak check: a held lock surviving to a non-panicking exit (after
	// the deferred Unlocks ran) means some path skips the release.
	panicking := make(map[*dataflow.Block]bool)
	for _, blk := range g.PanicExits {
		panicking[blk] = true
	}
	target := g.Exit
	if g.Defers != nil {
		target = g.Defers
	}
	leaked := make(map[syncKey]bool)
	for _, blk := range uniqueBlocks(target.Preds) {
		if panicking[blk] {
			continue
		}
		f, ok := res.Out(blk, an)
		if !ok {
			continue
		}
		if g.Defers != nil {
			for _, n := range g.Defers.Stmts {
				f = lf.transfer(n, f)
			}
		}
		for key, st := range f {
			if st&(lkLocked|lkRLocked) != 0 {
				leaked[key] = true
			}
		}
	}
	for key := range leaked {
		site := lf.sites[key]
		lf.pass.Reportf(site.pos,
			"%s is not unlocked on every path; a branch or early return leaks the lock", site.display)
	}
}

// transfer folds one CFG node over the fact: mutex calls move the
// receiver through the {unlocked, locked, rlocked} powerset (reporting
// violations during the replay pass), and rebinding a tracked root
// degrades its receivers to unknown.
func (lf *lockFlow) transfer(n ast.Node, in lockFact) lockFact {
	out := in
	cloned := false
	set := func(key syncKey, st lockState) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		out[key] = st
	}
	get := func(key syncKey) lockState { return out[key] }

	var walk func(n ast.Node, insideDefer bool)
	walk = func(n ast.Node, insideDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				// Nested literals are separate units — except inside a
				// deferred call, where the literal body is the deferred
				// code executing on this unit's way out.
				return insideDefer
			case *ast.DeferStmt:
				return false // registration point; runs on the defers block
			case *ast.AssignStmt:
				// Rebinding a root object loses track of its locks.
				for _, lhs := range x.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := identObj(lf.info, id)
					if obj == nil {
						continue
					}
					for key := range lf.sites {
						if key.root == obj && get(key) != 0 {
							set(key, 0)
						}
					}
				}
				return true
			case *ast.CallExpr:
				key, display, op, call := lockOpAt(lf.info, x)
				if op == opNone {
					return true
				}
				if _, tracked := lf.sites[key]; !tracked {
					return true
				}
				st := get(key)
				switch op {
				case opLock:
					if st&lkLocked != 0 {
						lf.report(call.Pos(), display+".Lock on a path where the lock is already held; relocking deadlocks the goroutine")
						set(key, 0) // degrade: don't cascade
						return true
					}
					if st&lkRLocked != 0 {
						lf.report(call.Pos(), display+".Lock while its read lock is held on this path; the upgrade deadlocks")
						set(key, 0)
						return true
					}
					set(key, lkLocked)
				case opRLock:
					if st&lkLocked != 0 {
						lf.report(call.Pos(), display+".RLock while its write lock is held on this path; same-goroutine reacquisition deadlocks")
						set(key, 0)
						return true
					}
					if st&lkRLocked != 0 {
						// Recursive read-locking: legal but beyond the
						// single-bit domain — degrade to unknown.
						set(key, 0)
						return true
					}
					set(key, lkRLocked)
				case opUnlock:
					if st == lkUnlocked {
						lf.report(call.Pos(), display+".Unlock without a Lock on this path; unlocking an unlocked mutex panics")
						set(key, 0)
						return true
					}
					set(key, lkUnlocked)
				case opRUnlock:
					if st == lkUnlocked {
						lf.report(call.Pos(), display+".RUnlock without an RLock on this path; unlocking an unlocked mutex panics")
						set(key, 0)
						return true
					}
					set(key, lkUnlocked)
				}
				return true
			}
			return true
		})
	}
	switch s := n.(type) {
	case *dataflow.DeferRun:
		walk(s.D.Call, true)
	default:
		walk(n, false)
	}
	return out
}
