package lint

import "testing"

func TestShapecheckGolden(t *testing.T) {
	runGolden(t, Shapecheck)
}
