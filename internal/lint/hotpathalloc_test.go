package lint

import "testing"

func TestHotPathAllocGolden(t *testing.T) {
	runGolden(t, HotPathAlloc)
}
