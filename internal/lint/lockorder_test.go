package lint

import (
	"go/token"
	"testing"
)

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, LockOrder)
}

func edge(from, to string) *lockEdge {
	return &lockEdge{from: from, to: to, pos: token.Pos(1)}
}

func TestLockGraphTwoCycle(t *testing.T) {
	g := newLockGraph()
	g.addEdge(edge("A", "B"))
	g.addEdge(edge("B", "A"))
	g.addEdge(edge("B", "C")) // C hangs off the cycle, not in it
	cyc := g.cycleEdges()
	if len(cyc) != 2 {
		t.Fatalf("cycle edges = %d, want 2", len(cyc))
	}
	for _, e := range cyc {
		if e.to == "C" || e.from == "C" {
			t.Fatalf("edge %s→%s wrongly in cycle", e.from, e.to)
		}
	}
	if got := g.sccMembers("A"); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("sccMembers(A) = %v, want [A B]", got)
	}
}

func TestLockGraphAcyclicIsClean(t *testing.T) {
	g := newLockGraph()
	g.addEdge(edge("A", "B"))
	g.addEdge(edge("B", "C"))
	g.addEdge(edge("A", "C"))
	if cyc := g.cycleEdges(); len(cyc) != 0 {
		t.Fatalf("acyclic graph reported %d cycle edges", len(cyc))
	}
}

func TestLockGraphLongCycle(t *testing.T) {
	g := newLockGraph()
	g.addEdge(edge("A", "B"))
	g.addEdge(edge("B", "C"))
	g.addEdge(edge("C", "D"))
	g.addEdge(edge("D", "A"))
	g.addEdge(edge("X", "A")) // feeds the cycle from outside
	cyc := g.cycleEdges()
	if len(cyc) != 4 {
		t.Fatalf("cycle edges = %d, want 4", len(cyc))
	}
	if got := g.sccMembers("C"); len(got) != 4 {
		t.Fatalf("sccMembers(C) = %v, want the 4-cycle", got)
	}
}

func TestLockGraphDedupesEdges(t *testing.T) {
	g := newLockGraph()
	first := &lockEdge{from: "A", to: "B", pos: token.Pos(10)}
	g.addEdge(first)
	g.addEdge(&lockEdge{from: "A", to: "B", pos: token.Pos(99)})
	g.addEdge(edge("B", "A"))
	cyc := g.cycleEdges()
	if len(cyc) != 2 {
		t.Fatalf("cycle edges = %d, want 2 (dedup failed)", len(cyc))
	}
	if cyc[0] != first {
		t.Fatal("dedup did not keep the first observation")
	}
}
