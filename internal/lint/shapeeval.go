package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"

	"quickdrop/internal/lint/dataflow"
)

// This file is the symbolic evaluator shared by the shapecheck and
// vjpshape analyzers. It models the internal/tensor kernels axiomatically
// (their shape preconditions and result shapes, mirroring the runtime
// panics in tensor.go/into.go/im2col.go) and interprets the bodies of
// module functions — autodiff ops, nn layers — on demand to obtain
// per-call-site interprocedural summaries.
//
// Everything is three-valued: a constraint is only reported when it is
// provably violated in the dataflow.Dim/Shape domain; anything
// undecidable stays silent. Symbol names are derived from token.Pos
// values, which are unique across the shared FileSet and stable across
// re-evaluation, so the CFG fixpoint converges and facts compare equal
// between visits.

// absKind classifies an abstract value.
type absKind int

const (
	aTop absKind = iota
	aNil
	aTensor // *tensor.Tensor with a symbolic shape
	aValue  // *autodiff.Value with a symbolic shape (+ optional node info)
	aInt    // int with a symbolic dimension value
	aDims   // []int whose element values are tracked dimensions
	aFloats // []float64 backing a tensor (t.Data()); dim is the length
	aGeom   // tensor.ConvGeom with tracked fields
)

// absVal is one abstract value.
type absVal struct {
	kind  absKind
	shape dataflow.Shape // aTensor, aValue
	empty bool           // aTensor: provably an empty header (a node's scratch tensor)
	live  bool           // aTensor: provably holds storage (came from a constructor/kernel)
	dim   dataflow.Dim   // aInt, aFloats
	dims  []dataflow.Dim // aDims
	node  *absNode       // aValue: op metadata recorded for vjpshape
	geom  *absGeom       // aGeom
}

func top() absVal { return absVal{kind: aTop} }

// tensorV is a tensor known to have storage (every kernel returns one).
func tensorV(s dataflow.Shape) absVal { return absVal{kind: aTensor, shape: s, live: true} }

// tensorU is a tensor of unknown liveness (function parameters).
func tensorU(s dataflow.Shape) absVal { return absVal{kind: aTensor, shape: s} }

func valueV(s dataflow.Shape) absVal { return absVal{kind: aValue, shape: s} }
func intV(d dataflow.Dim) absVal     { return absVal{kind: aInt, dim: d} }

// absNode records an autodiff node construction (newNode1/1c/2) so that
// vjpshape can later evaluate the recorded VJP expression against the
// recorded input shapes.
type absNode struct {
	op     string
	inputs []absVal
	extra  map[int]absVal // inputsArr writes beyond the declared arity (ReLU's mask)
	vjp    ast.Expr       // the VJP argument (func literal or named function)
	vjpPkg *Package       // package the constructing op lives in
	result dataflow.Shape // shape assigned to the node's Data
}

func (n *absNode) input(i int) absVal {
	if i < len(n.inputs) {
		return n.inputs[i]
	}
	if v, ok := n.extra[i]; ok {
		return v
	}
	return top()
}

// absGeom tracks the fields of a tensor.ConvGeom literal.
type absGeom struct {
	kernel, stride, pad, inH, inW, channel dataflow.Dim
}

// outDim computes (in + 2*pad - kernel)/stride + 1 when every term is a
// plain constant, and unknown otherwise.
func (g *absGeom) outDim(in dataflow.Dim) dataflow.Dim {
	if !in.IsConst() || !g.pad.IsConst() || !g.kernel.IsConst() || !g.stride.IsConst() {
		return dataflow.Dim{}
	}
	return dataflow.DimConst((in.C+2*g.pad.C-g.kernel.C)/g.stride.C + 1)
}

// eqVal compares abstract values for the dataflow fixpoint.
func eqVal(a, b absVal) bool {
	if a.kind != b.kind || a.empty != b.empty || a.live != b.live {
		return false
	}
	switch a.kind {
	case aTensor, aValue:
		if a.node != b.node {
			return false
		}
		return eqShape(a.shape, b.shape)
	case aInt, aFloats:
		return a.dim.Eq(b.dim) == dataflow.True || (!a.dim.Known() && !b.dim.Known())
	case aDims:
		if len(a.dims) != len(b.dims) {
			return false
		}
		for i := range a.dims {
			if !(a.dims[i].Eq(b.dims[i]) == dataflow.True || (!a.dims[i].Known() && !b.dims[i].Known())) {
				return false
			}
		}
		return true
	case aGeom:
		return a.geom == b.geom
	}
	return true
}

func eqShape(a, b dataflow.Shape) bool {
	if a.Sym != b.Sym {
		return false
	}
	if (a.Dims == nil) != (b.Dims == nil) || len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		da, db := a.Dims[i], b.Dims[i]
		if !(da.Eq(db) == dataflow.True || (!da.Known() && !db.Known())) {
			return false
		}
	}
	return true
}

// joinVal is the lattice join of two abstract values.
func joinVal(a, b absVal) absVal {
	if a.kind != b.kind {
		return top()
	}
	switch a.kind {
	case aTensor, aValue:
		out := absVal{kind: a.kind, shape: a.shape.Join(b.shape), empty: a.empty && b.empty, live: a.live && b.live}
		if a.node == b.node {
			out.node = a.node
		}
		return out
	case aInt, aFloats:
		return absVal{kind: a.kind, dim: a.dim.Join(b.dim)}
	case aDims:
		if len(a.dims) != len(b.dims) {
			return top()
		}
		dims := make([]dataflow.Dim, len(a.dims))
		for i := range dims {
			dims[i] = a.dims[i].Join(b.dims[i])
		}
		return absVal{kind: aDims, dims: dims}
	case aGeom:
		if a.geom == b.geom {
			return a
		}
		return top()
	case aNil:
		return a
	}
	return top()
}

// shapeCtx is one evaluation context: substitution state, reporting mode,
// and the interprocedural machinery.
type shapeCtx struct {
	pass *Pass
	// subst binds named unknown-rank shapes; dsubst binds dim symbols.
	subst  map[string]dataflow.Shape
	dsubst map[string]dataflow.Dim
	// created marks symbols minted during the current summary evaluation,
	// so unbound ones can be renamed per call site before escaping.
	created map[string]bool
	// assume turns undecidable constraints into unifications (used while
	// interpreting callee bodies, where the callee is presumed correct).
	assume bool
	// report receives provably-violated constraints; nil is silent.
	// violated is set regardless, so callers can detect any failure.
	report   func(pos token.Pos, msg string)
	violated bool
	// nodes collects every autodiff node construction seen (for vjpshape).
	nodes []*absNode
	// guard bounds call-site summary interpretation: it refuses
	// re-entry into a function already on the inlining chain and caps
	// the nesting depth (shared facility, see callgraph.go).
	guard *inlineGuard
}

func newShapeCtx(pass *Pass) *shapeCtx {
	return &shapeCtx{
		pass:   pass,
		subst:  make(map[string]dataflow.Shape),
		dsubst: make(map[string]dataflow.Dim),
		guard:  newInlineGuard(maxSummaryDepth),
	}
}

const maxSummaryDepth = 8

// posSym derives a deterministic symbol name from a source position.
func posSym(pos token.Pos) string { return "e" + strconv.Itoa(int(pos)) }

// --- substitution ---

func (c *shapeCtx) resolveDim(d dataflow.Dim) dataflow.Dim {
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, s := range d.Syms {
			if r, ok := c.dsubst[s]; ok {
				d = d.Subst(s, r)
				changed = true
				break
			}
		}
		if !changed {
			return d
		}
	}
	return d
}

func (c *shapeCtx) resolveShape(s dataflow.Shape) dataflow.Shape {
	for iter := 0; iter < 8 && s.Sym != "" && s.Dims == nil; iter++ {
		r, ok := c.subst[s.Sym]
		if !ok {
			break
		}
		s = r
	}
	if s.Dims != nil {
		dims := make([]dataflow.Dim, len(s.Dims))
		for i := range dims {
			dims[i] = c.resolveDim(s.Dims[i])
		}
		s = dataflow.Shape{Sym: s.Sym, Dims: dims}
	}
	return s
}

func (c *shapeCtx) resolveVal(v absVal) absVal {
	switch v.kind {
	case aTensor, aValue:
		v.shape = c.resolveShape(v.shape)
	case aInt, aFloats:
		v.dim = c.resolveDim(v.dim)
	case aDims:
		dims := make([]dataflow.Dim, len(v.dims))
		for i := range dims {
			dims[i] = c.resolveDim(v.dims[i])
		}
		v.dims = dims
	}
	return v
}

// freshDimSym mints a deterministic dim symbol for pos (with an index
// discriminator for multi-symbol sites) and records it as created.
func (c *shapeCtx) freshDimSym(pos token.Pos, i int) dataflow.Dim {
	name := posSym(pos) + "." + strconv.Itoa(i)
	if c.created != nil {
		c.created[name] = true
	}
	return dataflow.DimSym(name)
}

func (c *shapeCtx) freshShapeSym(pos token.Pos) dataflow.Shape {
	name := posSym(pos)
	if c.created != nil {
		c.created[name] = true
	}
	return dataflow.SymShape(name)
}

// --- constraints ---

// fail records a provably-violated constraint.
func (c *shapeCtx) fail(pos token.Pos, msg string) {
	c.violated = true
	if c.report != nil {
		c.report(pos, msg)
	}
}

// unifyDim assumes a == b: when one side is a single unbound symbol it is
// bound to the other. Only meaningful in assume mode.
func (c *shapeCtx) unifyDim(a, b dataflow.Dim) {
	if !c.assume {
		return
	}
	a, b = c.resolveDim(a), c.resolveDim(b)
	if a.Eq(b) == dataflow.True {
		return
	}
	if s, ok := singleSym(a); ok {
		c.dsubst[s] = b
		return
	}
	if s, ok := singleSym(b); ok {
		c.dsubst[s] = a
	}
}

func singleSym(d dataflow.Dim) (string, bool) {
	if d.C == 1 && len(d.Syms) == 1 {
		return d.Syms[0], true
	}
	return "", false
}

// unifyShape assumes a == b.
func (c *shapeCtx) unifyShape(a, b dataflow.Shape) {
	if !c.assume {
		return
	}
	a, b = c.resolveShape(a), c.resolveShape(b)
	if a.Dims == nil && a.Sym != "" {
		if b.Known() && b.Sym != a.Sym {
			c.subst[a.Sym] = b
		}
		return
	}
	if b.Dims == nil && b.Sym != "" {
		if a.Known() {
			c.subst[b.Sym] = a
		}
		return
	}
	if a.Dims != nil && b.Dims != nil && len(a.Dims) == len(b.Dims) {
		for i := range a.Dims {
			c.unifyDim(a.Dims[i], b.Dims[i])
		}
	}
}

// requireSameShape models mustSameShape(a, b): report a provable
// mismatch, unify an undecidable one.
func (c *shapeCtx) requireSameShape(pos token.Pos, op string, a, b dataflow.Shape) {
	ra, rb := c.resolveShape(a), c.resolveShape(b)
	if ra.Eq(rb) == dataflow.False {
		c.fail(pos, op+" shape mismatch "+ra.String()+" vs "+rb.String())
		return
	}
	c.unifyShape(a, b)
}

// requireRank forces s to the given rank, returning the (possibly
// refined) ranked shape. Provable rank mismatches are reported via msg.
func (c *shapeCtx) requireRank(pos token.Pos, s dataflow.Shape, rank int, msg string) dataflow.Shape {
	r := c.resolveShape(s)
	if r.Dims != nil {
		if len(r.Dims) != rank {
			c.fail(pos, msg+" "+r.String())
		}
		return r
	}
	dims := make([]dataflow.Dim, rank)
	for i := range dims {
		if r.Sym != "" {
			dims[i] = dataflow.DimSym(r.Sym + "#" + strconv.Itoa(i))
			if c.created != nil {
				c.created[r.Sym+"#"+strconv.Itoa(i)] = true
			}
		} else {
			dims[i] = c.freshDimSym(pos, i)
		}
	}
	ranked := dataflow.ShapeOf(dims...)
	if c.assume && r.Sym != "" {
		c.subst[r.Sym] = ranked
	}
	return ranked
}

// requireElemsEqual models prepDst/reshape element-count checks.
func (c *shapeCtx) requireElemsEqual(pos token.Pos, msg string, a, b dataflow.Shape) {
	ea := c.resolveDim(a.Elems())
	eb := c.resolveDim(b.Elems())
	if ea.Eq(eb) == dataflow.False {
		c.fail(pos, msg)
		return
	}
	c.unifyDim(a.Elems(), b.Elems())
}

// prepDst models tensor.prepDst: a nil or empty-header destination is
// fine; a live destination must hold exactly the result's element count.
func (c *shapeCtx) prepDst(pos token.Pos, op string, dst absVal, result dataflow.Shape) {
	if dst.kind == aNil || (dst.kind == aTensor && dst.empty) {
		return
	}
	if dst.kind != aTensor && dst.kind != aValue {
		return
	}
	rd := c.resolveShape(dst.shape)
	rr := c.resolveShape(result)
	if rd.Elems().Eq(rr.Elems()) == dataflow.False {
		c.fail(pos, op+" destination "+rd.String()+" cannot hold result "+rr.String())
	}
}

// requireBcast models bcastSpans' validation: small must have a's rank
// and each of its dims must be 1 or equal to a's dim.
func (c *shapeCtx) requireBcast(pos token.Pos, op string, full, small dataflow.Shape) {
	rf, rs := c.resolveShape(full), c.resolveShape(small)
	if rf.Dims == nil || rs.Dims == nil {
		return
	}
	if len(rf.Dims) != len(rs.Dims) {
		c.fail(pos, op+" broadcast rank mismatch "+rs.String()+" vs "+rf.String())
		return
	}
	one := dataflow.DimConst(1)
	for i := range rs.Dims {
		if rs.Dims[i].Eq(rf.Dims[i]) == dataflow.False && rs.Dims[i].Eq(one) == dataflow.False {
			c.fail(pos, op+" cannot broadcast "+rs.String()+" against "+rf.String())
			return
		}
	}
}

// matMulDims models tensor.matMulDims, returning the result shape.
func (c *shapeCtx) matMulDims(pos token.Pos, op string, a, b absVal, ta, tb bool) dataflow.Shape {
	as := c.requireRank(pos, a.shape, 2, op+" requires matrices, got")
	bs := c.requireRank(pos, b.shape, 2, op+" requires matrices, got")
	if len(as.Dims) != 2 || len(bs.Dims) != 2 {
		return dataflow.ShapeOf(dataflow.Dim{}, dataflow.Dim{})
	}
	m, k := as.Dims[0], as.Dims[1]
	if ta {
		m, k = k, m
	}
	kb, n := bs.Dims[0], bs.Dims[1]
	if tb {
		kb, n = n, kb
	}
	rk, rkb := c.resolveDim(k), c.resolveDim(kb)
	if rk.Eq(rkb) == dataflow.False {
		c.fail(pos, op+" inner dims differ: "+as.String()+" x "+bs.String())
	} else {
		c.unifyDim(k, kb)
	}
	return dataflow.ShapeOf(c.resolveDim(m), c.resolveDim(n))
}

// --- expression evaluation ---

// env is the variable state of one evaluation (CFG fact or interpreter
// frame). It is treated as immutable by the fixpoint solver: set clones.
type env struct {
	vars map[types.Object]absVal
}

func newEnv() *env { return &env{vars: map[types.Object]absVal{}} }

func (e *env) get(o types.Object) (absVal, bool) {
	v, ok := e.vars[o]
	return v, ok
}

func (e *env) clone() *env {
	m := make(map[types.Object]absVal, len(e.vars))
	for k, v := range e.vars {
		m[k] = v
	}
	return &env{vars: m}
}

// set mutates in place — callers that need persistence clone first.
func (e *env) set(o types.Object, v absVal) { e.vars[o] = v }

func joinEnv(a, b *env) *env {
	m := make(map[types.Object]absVal)
	for k, va := range a.vars {
		if vb, ok := b.vars[k]; ok {
			j := joinVal(va, vb)
			if j.kind != aTop {
				m[k] = j
			}
		}
	}
	return &env{vars: m}
}

func eqEnv(a, b *env) bool {
	if len(a.vars) != len(b.vars) {
		return false
	}
	for k, va := range a.vars {
		vb, ok := b.vars[k]
		if !ok || !eqVal(va, vb) {
			return false
		}
	}
	return true
}

// evalExpr evaluates one expression to an abstract value, running the
// kernel models (and therefore the constraint checks) on every call.
func (c *shapeCtx) evalExpr(pkg *Package, e *env, x ast.Expr) absVal {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			if _, isNil := pkg.Info.Uses[x].(*types.Nil); isNil {
				return absVal{kind: aNil}
			}
		}
		if obj := identObj(pkg.Info, x); obj != nil {
			if v, ok := e.get(obj); ok {
				return v
			}
		}
		return c.constOf(pkg, x)
	case *ast.BasicLit:
		return c.constOf(pkg, x)
	case *ast.CallExpr:
		return c.evalCall(pkg, e, x)
	case *ast.SelectorExpr:
		return c.evalSelector(pkg, e, x)
	case *ast.BinaryExpr:
		return c.evalBinary(pkg, e, x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &T{} composite literals (e.g. &tensor.Tensor{}) stay opaque.
			return c.evalExpr(pkg, e, x.X)
		}
		return c.constOf(pkg, x)
	case *ast.CompositeLit:
		return c.evalComposite(pkg, e, x)
	case *ast.IndexExpr:
		if v, ok := c.evalNodeInput(pkg, e, x); ok {
			return v
		}
		base := c.evalExpr(pkg, e, x.X)
		if base.kind == aDims {
			if i := c.dimOf(pkg, e, x.Index); i.IsConst() && int(i.C) < len(base.dims) && i.C >= 0 {
				return intV(base.dims[i.C])
			}
		}
		return top()
	case *ast.SliceExpr:
		return top()
	}
	return c.constOf(pkg, x)
}

// constOf folds go/constant integers into dims.
func (c *shapeCtx) constOf(pkg *Package, x ast.Expr) absVal {
	if tv, ok := pkg.Info.Types[x]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if n, exact := constant.Int64Val(tv.Value); exact {
			if n > 0 {
				return intV(dataflow.DimConst(n))
			}
			// Non-positive constants matter for checkShape; carry them as
			// a raw constant dim (DimConst would erase them).
			return absVal{kind: aInt, dim: dataflow.Dim{C: n}}
		}
	}
	return top()
}

// dimOf evaluates an expression as an integer dimension.
func (c *shapeCtx) dimOf(pkg *Package, e *env, x ast.Expr) dataflow.Dim {
	v := c.evalExpr(pkg, e, x)
	if v.kind == aInt {
		return v.dim
	}
	return dataflow.Dim{}
}

func (c *shapeCtx) evalBinary(pkg *Package, e *env, x *ast.BinaryExpr) absVal {
	if v := c.constOf(pkg, x); v.kind == aInt {
		return v
	}
	l, r := c.dimOf(pkg, e, x.X), c.dimOf(pkg, e, x.Y)
	switch x.Op {
	case token.MUL:
		return intV(l.Mul(r))
	case token.QUO:
		return intV(l.Div(r))
	case token.ADD, token.SUB:
		if l.IsConst() && r.IsConst() {
			if x.Op == token.ADD {
				return intV(dataflow.DimConst(l.C + r.C))
			}
			return intV(dataflow.DimConst(l.C - r.C))
		}
	}
	return top()
}

func (c *shapeCtx) evalSelector(pkg *Package, e *env, x *ast.SelectorExpr) absVal {
	base := c.evalExpr(pkg, e, x.X)
	switch x.Sel.Name {
	case "Data":
		if base.kind == aValue {
			return tensorV(base.shape)
		}
	case "Kernel", "Stride", "Pad", "InH", "InW", "Channel":
		if base.kind == aGeom {
			switch x.Sel.Name {
			case "Kernel":
				return intV(base.geom.kernel)
			case "Stride":
				return intV(base.geom.stride)
			case "Pad":
				return intV(base.geom.pad)
			case "InH":
				return intV(base.geom.inH)
			case "InW":
				return intV(base.geom.inW)
			case "Channel":
				return intV(base.geom.channel)
			}
		}
	}
	return top()
}

func (c *shapeCtx) evalComposite(pkg *Package, e *env, x *ast.CompositeLit) absVal {
	tv, ok := pkg.Info.Types[x]
	if !ok {
		return top()
	}
	if isNamedIn(tv.Type, "ConvGeom", "internal/tensor") {
		g := &absGeom{}
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			d := c.dimOf(pkg, e, kv.Value)
			switch key.Name {
			case "Kernel":
				g.kernel = d
			case "Stride":
				g.stride = d
			case "Pad":
				g.pad = d
			case "InH":
				g.inH = d
			case "InW":
				g.inW = d
			case "Channel":
				g.channel = d
			}
		}
		return absVal{kind: aGeom, geom: g}
	}
	// []int{...} and []float64{...} literals.
	if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
		if basic, ok := sl.Elem().(*types.Basic); ok {
			switch basic.Kind() {
			case types.Int:
				dims := make([]dataflow.Dim, len(x.Elts))
				for i, elt := range x.Elts {
					dims[i] = c.dimOf(pkg, e, elt)
				}
				return absVal{kind: aDims, dims: dims}
			case types.Float64:
				return absVal{kind: aFloats, dim: dataflow.DimConst(int64(len(x.Elts)))}
			}
		}
	}
	return top()
}

// variadicShape evaluates the trailing shape arguments of a constructor
// call (either spread ints or a single `slice...`).
func (c *shapeCtx) variadicShape(pkg *Package, e *env, call *ast.CallExpr, from int) (dataflow.Shape, bool) {
	if call.Ellipsis != token.NoPos {
		if len(call.Args) == from+1 {
			v := c.evalExpr(pkg, e, call.Args[from])
			if v.kind == aDims {
				allKnown := true
				for _, d := range v.dims {
					if !d.Known() {
						allKnown = false
					}
				}
				return dataflow.ShapeOf(v.dims...), allKnown
			}
		}
		return dataflow.TopShape(), false
	}
	if len(call.Args) <= from {
		return dataflow.TopShape(), false
	}
	dims := make([]dataflow.Dim, 0, len(call.Args)-from)
	allKnown := true
	for i := from; i < len(call.Args); i++ {
		v := c.evalExpr(pkg, e, call.Args[i])
		var d dataflow.Dim
		if v.kind == aInt {
			if v.dim.C <= 0 && len(v.dim.Syms) == 0 && v.dim.C != 0 {
				c.fail(call.Args[i].Pos(), "non-positive dimension in shape")
				d = dataflow.Dim{}
			} else {
				d = v.dim
			}
		}
		if !d.Known() {
			allKnown = false
		}
		dims = append(dims, d)
	}
	return dataflow.ShapeOf(dims...), allKnown
}

// evalCall dispatches builtins, tensor kernel models, autodiff node
// constructors, and interprocedural summaries.
func (c *shapeCtx) evalCall(pkg *Package, e *env, call *ast.CallExpr) absVal {
	// Builtin len.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			v := c.evalExpr(pkg, e, call.Args[0])
			switch v.kind {
			case aDims:
				return intV(dataflow.DimConst(int64(len(v.dims))))
			case aFloats:
				return intV(v.dim)
			}
			return top()
		}
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		// Indirect calls and conversions: evaluate args for their side
		// checks and give up on the result.
		for _, a := range call.Args {
			c.evalExpr(pkg, e, a)
		}
		return top()
	}
	pkgPath := funcPkgPath(fn)
	if recv := recvNamed(fn); recv != nil && recv.Obj().Pkg() != nil {
		pkgPath = recv.Obj().Pkg().Path()
	}
	switch {
	case hasPathSuffix(pkgPath, "internal/tensor"):
		return c.evalTensorCall(pkg, e, call, fn)
	case hasPathSuffix(pkgPath, "internal/autodiff"):
		if v, ok := c.evalAutodiffBuiltin(pkg, e, call, fn); ok {
			return v
		}
		return c.summarize(pkg, e, call, fn)
	case hasPathSuffix(pkgPath, "internal/nn"):
		return c.summarize(pkg, e, call, fn)
	}
	for _, a := range call.Args {
		c.evalExpr(pkg, e, a)
	}
	return top()
}

// evalAutodiffBuiltin models the node constructors and leaf wrappers of
// internal/autodiff that the interpreter must not (or need not) inline.
func (c *shapeCtx) evalAutodiffBuiltin(pkg *Package, e *env, call *ast.CallExpr, fn *types.Func) (absVal, bool) {
	arg := func(i int) absVal {
		if i < len(call.Args) {
			return c.evalExpr(pkg, e, call.Args[i])
		}
		return top()
	}
	if isMethodOn(fn, "scratch", "Value", "internal/autodiff") {
		return absVal{kind: aTensor, empty: true}, true
	}
	if isMethodOn(fn, "Shape", "Value", "internal/autodiff") {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			v := c.evalExpr(pkg, e, sel.X)
			if v.kind == aValue {
				rs := c.resolveShape(v.shape)
				if rs.Dims != nil {
					return absVal{kind: aDims, dims: rs.Dims}, true
				}
			}
		}
		return top(), true
	}
	switch fn.Name() {
	case "Const", "Var":
		if isPkgFunc(fn, fn.Name(), "internal/autodiff") {
			t := arg(0)
			return valueV(t.shape), true
		}
	case "Scalar":
		if isPkgFunc(fn, "Scalar", "internal/autodiff") {
			return valueV(dataflow.ShapeOf(dataflow.DimConst(1))), true
		}
	case "newNode1", "newNode1c", "newNode2":
		if recvNamed(fn) != nil || !hasPathSuffix(funcPkgPath(fn), "internal/autodiff") {
			break
		}
		node := &absNode{vjpPkg: c.declPkg(fn)}
		if len(call.Args) > 0 {
			if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				node.op = constant.StringVal(tv.Value)
			}
		}
		data := arg(1)
		var inputs []absVal
		switch fn.Name() {
		case "newNode1":
			inputs = []absVal{arg(2)}
			node.vjp = argExpr(call, 3)
		case "newNode1c":
			inputs = []absVal{arg(2)}
			c.evalExpr(pkg, e, call.Args[3])
			node.vjp = argExpr(call, 4)
		case "newNode2":
			inputs = []absVal{arg(2), arg(3)}
			node.vjp = argExpr(call, 4)
		}
		node.inputs = inputs
		c.nodes = append(c.nodes, node)
		v := absVal{kind: aValue, node: node}
		if data.kind == aTensor {
			v.shape = data.shape
			node.result = data.shape
		}
		return v, true
	}
	return top(), false
}

func argExpr(call *ast.CallExpr, i int) ast.Expr {
	if i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

func (c *shapeCtx) declPkg(fn *types.Func) *Package {
	if info, ok := c.pass.Prog.Decls[fn]; ok {
		return info.Pkg
	}
	return nil
}

// evalTensorCall applies the axiomatic model of an internal/tensor
// function or method. The models mirror the runtime shape panics.
func (c *shapeCtx) evalTensorCall(pkg *Package, e *env, call *ast.CallExpr, fn *types.Func) absVal {
	pos := call.Pos()
	arg := func(i int) absVal {
		if i < len(call.Args) {
			return c.evalExpr(pkg, e, call.Args[i])
		}
		return top()
	}
	dim := func(i int) dataflow.Dim {
		v := arg(i)
		if v.kind == aInt {
			return v.dim
		}
		return dataflow.Dim{}
	}
	// Receiver of a method call.
	var recv absVal
	if recvNamed(fn) != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv = c.evalExpr(pkg, e, sel.X)
		} else {
			recv = top()
		}
	}
	recvShape := func() dataflow.Shape {
		if recv.kind == aTensor || recv.kind == aValue {
			return recv.shape
		}
		return dataflow.TopShape()
	}

	if recvNamed(fn) != nil {
		if isMethodOn(fn, fn.Name(), "ConvGeom", "internal/tensor") {
			if recv.kind == aGeom {
				switch fn.Name() {
				case "OutH":
					return intV(recv.geom.outDim(recv.geom.inH))
				case "OutW":
					return intV(recv.geom.outDim(recv.geom.inW))
				}
			}
			return top()
		}
		if isMethodOn(fn, fn.Name(), "Pool", "internal/tensor") {
			switch fn.Name() {
			case "Get":
				s, _ := c.variadicShape(pkg, e, call, 0)
				return tensorV(s)
			}
			return top()
		}
		if !isMethodOn(fn, fn.Name(), "Tensor", "internal/tensor") {
			return top()
		}
		rs := recvShape()
		switch fn.Name() {
		case "Shape":
			r := c.resolveShape(rs)
			if r.Dims != nil {
				return absVal{kind: aDims, dims: r.Dims}
			}
			return top()
		case "ShapeString", "String":
			return top()
		case "Dims":
			if r := c.resolveShape(rs); r.Dims != nil {
				return intV(dataflow.DimConst(int64(len(r.Dims))))
			}
			return top()
		case "Dim":
			r := c.resolveShape(rs)
			i := dim(0)
			if r.Dims != nil && i.IsConst() {
				if int(i.C) >= len(r.Dims) || i.C < 0 {
					c.fail(pos, "Dim index "+strconv.FormatInt(i.C, 10)+" out of range for shape "+r.String())
					return top()
				}
				return intV(r.Dims[i.C])
			}
			if r.Sym != "" && i.IsConst() {
				return intV(dataflow.DimSym(r.Sym + "#" + strconv.FormatInt(i.C, 10)))
			}
			return top()
		case "Len":
			return intV(c.resolveShape(rs).Elems())
		case "Data":
			return absVal{kind: aFloats, dim: c.resolveShape(rs).Elems()}
		case "Clone", "Zero", "ScaleInPlace", "Neg", "Apply", "Pow", "Exp", "Log",
			"ReLU", "ReLUMask", "Scale":
			return tensorV(rs)
		case "CopyFrom", "Add", "Sub", "Mul", "AddInPlace", "AxpyInPlace", "ScaleAddInPlace":
			o := arg(argIdxSameShape(fn.Name()))
			if o.kind == aTensor || o.kind == aValue {
				c.requireSameShape(pos, fn.Name(), rs, o.shape)
			}
			return tensorV(rs)
		case "Dot":
			o := arg(0)
			if o.kind == aTensor || o.kind == aValue {
				c.requireSameShape(pos, "Dot", rs, o.shape)
			}
			return top()
		case "Reshape", "View":
			s, _ := c.variadicShape(pkg, e, call, 0)
			c.requireElemsEqual(pos, "cannot "+lower(fn.Name())+" "+c.resolveShape(rs).String()+" as "+c.resolveShape(s).String()+": element counts differ", rs, s)
			return tensorV(s)
		case "ViewLike":
			ref := arg(0)
			c.requireElemsEqual(pos, "cannot view "+c.resolveShape(rs).String()+" as "+c.resolveShape(ref.shape).String()+": element counts differ", rs, ref.shape)
			return tensorV(ref.shape)
		case "RowsView":
			r := c.requireRank(pos, rs, 2, "RowsView requires a matrix, got")
			lo, hi := dim(0), dim(1)
			var rows dataflow.Dim
			if lo.IsConst() && hi.IsConst() && hi.C > lo.C {
				rows = dataflow.DimConst(hi.C - lo.C)
			}
			cols := dataflow.Dim{}
			if len(r.Dims) == 2 {
				cols = r.Dims[1]
			}
			return tensorV(dataflow.ShapeOf(rows, cols))
		case "SumAxes":
			return tensorV(c.sumAxesModel(pkg, e, call, pos, "SumAxes", rs, 0))
		case "BroadcastTo":
			s, _ := c.variadicShape(pkg, e, call, 0)
			c.requireBcast(pos, "BroadcastTo", s, rs)
			return tensorV(s)
		case "MatMul":
			return tensorV(c.matMulDims(pos, "MatMul", absVal{kind: aTensor, shape: rs}, arg(0), false, false))
		case "Transpose":
			r := c.requireRank(pos, rs, 2, "Transpose requires a matrix, got")
			if len(r.Dims) == 2 {
				return tensorV(dataflow.ShapeOf(r.Dims[1], r.Dims[0]))
			}
			return tensorV(dataflow.ShapeOf(dataflow.Dim{}, dataflow.Dim{}))
		case "ArgMaxRows":
			c.requireRank(pos, rs, 2, "ArgMaxRows requires a matrix, got")
			return top()
		}
		return top()
	}

	// Package-level functions.
	switch fn.Name() {
	case "New", "Ones", "Get":
		from := 0
		if fn.Name() == "Ones" {
			from = 0
		}
		s, _ := c.variadicShape(pkg, e, call, from)
		return tensorV(s)
	case "Full":
		s, _ := c.variadicShape(pkg, e, call, 1)
		return tensorV(s)
	case "Randn":
		s, _ := c.variadicShape(pkg, e, call, 2)
		return tensorV(s)
	case "Uniform":
		s, _ := c.variadicShape(pkg, e, call, 3)
		return tensorV(s)
	case "FromSlice":
		data := arg(0)
		s, known := c.variadicShape(pkg, e, call, 1)
		if data.kind == aFloats && known {
			ea := c.resolveDim(data.dim)
			eb := c.resolveDim(s.Elems())
			if ea.Eq(eb) == dataflow.False {
				c.fail(pos, "data length "+ea.String()+" does not match shape "+c.resolveShape(s).String())
			}
		}
		return tensorV(s)
	case "NewLike", "GetLike":
		t := arg(0)
		return tensorV(t.shape)
	case "Put", "PutAll":
		arg(0)
		return top()
	case "AddInto", "SubInto", "MulInto", "AddScaledInto":
		ai, bi := 1, 2
		if fn.Name() == "AddScaledInto" {
			bi = 3
		}
		a, b := arg(ai), arg(bi)
		c.requireSameShape(pos, fn.Name(), a.shape, b.shape)
		c.prepDst(pos, fn.Name(), arg(0), a.shape)
		return tensorV(a.shape)
	case "ScaleInto", "ApplyInto", "AddConstInto", "PowInto":
		a := arg(1)
		c.prepDst(pos, fn.Name(), arg(0), a.shape)
		return tensorV(a.shape)
	case "AddRowInto":
		a, row := arg(1), arg(2)
		ar := c.requireRank(pos, a.shape, 2, "AddRowInto requires a matrix, got")
		if len(ar.Dims) == 2 {
			rowLen := c.resolveDim(row.shape.Elems())
			cols := c.resolveDim(ar.Dims[1])
			if rowLen.Eq(cols) == dataflow.False {
				c.fail(pos, "AddRowInto row length "+rowLen.String()+" does not match "+cols.String()+" columns")
			} else {
				c.unifyDim(row.shape.Elems(), ar.Dims[1])
			}
		}
		c.prepDst(pos, "AddRowInto", arg(0), a.shape)
		return tensorV(a.shape)
	case "TransposeInto":
		a := arg(1)
		ar := c.requireRank(pos, a.shape, 2, "TransposeInto requires a matrix, got")
		res := dataflow.ShapeOf(dataflow.Dim{}, dataflow.Dim{})
		if len(ar.Dims) == 2 {
			res = dataflow.ShapeOf(ar.Dims[1], ar.Dims[0])
		}
		c.prepDst(pos, "TransposeInto", arg(0), res)
		return tensorV(res)
	case "MatMulInto", "MatMulNTInto", "MatMulTNInto":
		ta := fn.Name() == "MatMulTNInto"
		tb := fn.Name() == "MatMulNTInto"
		res := c.matMulDims(pos, fn.Name(), arg(1), arg(2), ta, tb)
		c.prepDst(pos, fn.Name(), arg(0), res)
		return tensorV(res)
	case "SumAxesInto":
		a := arg(1)
		res := c.sumAxesModel(pkg, e, call, pos, "SumAxesInto", a.shape, 2)
		c.prepDst(pos, "SumAxesInto", arg(0), res)
		return tensorV(res)
	case "SumLikeInto":
		a, ref := arg(1), arg(2)
		c.requireBcast(pos, "SumLikeInto", a.shape, ref.shape)
		c.prepDst(pos, "SumLikeInto", arg(0), ref.shape)
		return tensorV(ref.shape)
	case "BroadcastToInto":
		a := arg(1)
		s, _ := c.variadicShape(pkg, e, call, 2)
		c.requireBcast(pos, "BroadcastToInto", s, a.shape)
		c.prepDst(pos, "BroadcastToInto", arg(0), s)
		return tensorV(s)
	case "BroadcastLikeInto":
		a, ref := arg(1), arg(2)
		c.requireBcast(pos, "BroadcastLikeInto", ref.shape, a.shape)
		c.prepDst(pos, "BroadcastLikeInto", arg(0), ref.shape)
		return tensorV(ref.shape)
	case "AddBcastInto", "SubBcastInto", "MulBcastInto":
		a, b := arg(1), arg(2)
		c.requireBcast(pos, fn.Name(), a.shape, b.shape)
		c.prepDst(pos, fn.Name(), arg(0), a.shape)
		return tensorV(a.shape)
	case "MulSumInto":
		a, b := arg(1), arg(2)
		c.requireSameShape(pos, "MulSumInto", a.shape, b.shape)
		res := c.sumAxesModel(pkg, e, call, pos, "MulSumInto", a.shape, 3)
		c.prepDst(pos, "MulSumInto", arg(0), res)
		return tensorV(res)
	case "MulSumLikeInto":
		a, b, ref := arg(1), arg(2), arg(3)
		c.requireSameShape(pos, "MulSumLikeInto", a.shape, b.shape)
		c.requireBcast(pos, "MulSumLikeInto", a.shape, ref.shape)
		c.prepDst(pos, "MulSumLikeInto", arg(0), ref.shape)
		return tensorV(ref.shape)
	case "ViewInto", "ViewLikeInto":
		dst, t := arg(0), arg(1)
		if dst.kind == aNil || (dst.kind == aTensor && dst.live) {
			c.fail(pos, fn.Name()+" needs an empty destination header")
		}
		var s dataflow.Shape
		if fn.Name() == "ViewInto" {
			s, _ = c.variadicShape(pkg, e, call, 2)
		} else {
			s = arg(2).shape
		}
		c.requireElemsEqual(pos, "cannot view "+c.resolveShape(t.shape).String()+" as "+c.resolveShape(s).String()+": element counts differ", t.shape, s)
		return tensorV(s)
	case "Im2col", "Im2colInto":
		xi := 0
		var dst absVal
		if fn.Name() == "Im2colInto" {
			dst, xi = arg(0), 1
		}
		x := arg(xi)
		g := arg(xi + 1)
		res := c.im2colModel(pos, x, g)
		if fn.Name() == "Im2colInto" {
			c.prepDst(pos, "Im2colInto", dst, res)
		}
		return tensorV(res)
	case "Col2im", "Col2imInto":
		ci := 0
		var dst absVal
		if fn.Name() == "Col2imInto" {
			dst, ci = arg(0), 1
		}
		cols := arg(ci)
		batch := dim(ci + 1)
		g := arg(ci + 2)
		res := c.col2imModel(pos, cols, batch, g)
		if fn.Name() == "Col2imInto" {
			c.prepDst(pos, "Col2imInto", dst, res)
		}
		return tensorV(res)
	case "ReadFrom":
		return tensorV(dataflow.TopShape())
	}
	for _, a := range call.Args {
		c.evalExpr(pkg, e, a)
	}
	return top()
}

// argIdxSameShape returns the index of the argument a same-shape method
// compares against its receiver (in-place scaled updates lead with a
// float coefficient).
func argIdxSameShape(name string) int {
	switch name {
	case "AxpyInPlace", "ScaleAddInPlace":
		return 1
	}
	return 0
}

func lower(s string) string {
	if s == "Reshape" {
		return "reshape"
	}
	return "view"
}

// sumAxesModel computes the reduced shape for SumAxes-family calls whose
// axes start at argument index from.
func (c *shapeCtx) sumAxesModel(pkg *Package, e *env, call *ast.CallExpr, pos token.Pos, op string, s dataflow.Shape, from int) dataflow.Shape {
	r := c.resolveShape(s)
	axesShape, known := c.variadicShape(pkg, e, call, from)
	if !known || axesShape.Dims == nil {
		if r.Dims == nil {
			return dataflow.TopShape()
		}
		dims := make([]dataflow.Dim, len(r.Dims))
		return dataflow.ShapeOf(dims...)
	}
	if r.Dims == nil {
		return dataflow.TopShape()
	}
	out := make([]dataflow.Dim, len(r.Dims))
	copy(out, r.Dims)
	prev := int64(-1)
	for _, axd := range axesShape.Dims {
		if !axd.IsConst() {
			return dataflow.ShapeOf(make([]dataflow.Dim, len(r.Dims))...)
		}
		ax := axd.C
		if ax < 0 || int(ax) >= len(r.Dims) {
			c.fail(pos, op+" axis "+strconv.FormatInt(ax, 10)+" out of range for shape "+r.String())
			return dataflow.ShapeOf(make([]dataflow.Dim, len(r.Dims))...)
		}
		if ax <= prev {
			c.fail(pos, op+" axes must be sorted and unique")
			return dataflow.ShapeOf(make([]dataflow.Dim, len(r.Dims))...)
		}
		prev = ax
		out[ax] = dataflow.DimConst(1)
	}
	return dataflow.ShapeOf(out...)
}

// im2colModel mirrors Im2colInto's validation and result shape. The
// rank-4 input constraint holds regardless of whether the geometry is
// statically known.
func (c *shapeCtx) im2colModel(pos token.Pos, x absVal, g absVal) dataflow.Shape {
	xs := c.requireRank(pos, x.shape, 4, "Im2col input is not a rank-4 NHWC tensor:")
	if g.kind != aGeom {
		return dataflow.ShapeOf(dataflow.Dim{}, dataflow.Dim{})
	}
	geo := g.geom
	if len(xs.Dims) == 4 {
		for i, want := range []dataflow.Dim{geo.inH, geo.inW, geo.channel} {
			if xs.Dims[i+1].Eq(c.resolveDim(want)) == dataflow.False {
				c.fail(pos, "Im2col input "+xs.String()+" does not match geometry")
				break
			}
			c.unifyDim(xs.Dims[i+1], want)
		}
	}
	oh, ow := geo.outDim(c.resolveDim(geo.inH)), geo.outDim(c.resolveDim(geo.inW))
	cols := c.resolveDim(geo.kernel).Mul(c.resolveDim(geo.kernel)).Mul(c.resolveDim(geo.channel))
	var b dataflow.Dim
	if len(xs.Dims) == 4 {
		b = xs.Dims[0]
	}
	return dataflow.ShapeOf(b.Mul(oh).Mul(ow), cols)
}

// col2imModel mirrors Col2imInto's validation and result shape. As with
// im2colModel, the rank-2 input constraint is unconditional.
func (c *shapeCtx) col2imModel(pos token.Pos, cols absVal, batch dataflow.Dim, g absVal) dataflow.Shape {
	cs := c.requireRank(pos, cols.shape, 2, "Col2im input is not a patch matrix:")
	if g.kind != aGeom {
		return dataflow.ShapeOf(batch, dataflow.Dim{}, dataflow.Dim{}, dataflow.Dim{})
	}
	geo := g.geom
	oh, ow := geo.outDim(c.resolveDim(geo.inH)), geo.outDim(c.resolveDim(geo.inW))
	nc := c.resolveDim(geo.kernel).Mul(c.resolveDim(geo.kernel)).Mul(c.resolveDim(geo.channel))
	if len(cs.Dims) == 2 {
		wantRows := batch.Mul(oh).Mul(ow)
		if cs.Dims[0].Eq(wantRows) == dataflow.False || cs.Dims[1].Eq(nc) == dataflow.False {
			c.fail(pos, "Col2im input "+cs.String()+" does not match batch and geometry")
		} else {
			c.unifyDim(cs.Dims[1], nc)
		}
	}
	return dataflow.ShapeOf(batch, c.resolveDim(geo.inH), c.resolveDim(geo.inW), c.resolveDim(geo.channel))
}

// --- interprocedural summaries ---

// summarize interprets the body of a module function at a call site,
// sandboxing its constraints and renaming escaping symbols per site.
func (c *shapeCtx) summarize(pkg *Package, e *env, call *ast.CallExpr, fn *types.Func) absVal {
	info, ok := c.pass.Prog.Decls[fn]
	if !ok || info.Decl.Body == nil || !c.guard.enter(fn) {
		for _, a := range call.Args {
			c.evalExpr(pkg, e, a)
		}
		return top()
	}
	defer c.guard.exit(fn)
	// Evaluate arguments in the caller's context (their checks fire here).
	args := make([]absVal, len(call.Args))
	for i, a := range call.Args {
		args[i] = c.resolveVal(c.evalExpr(pkg, e, a))
	}
	var recvVal absVal = top()
	if recvNamed(fn) != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recvVal = c.resolveVal(c.evalExpr(pkg, e, sel.X))
		}
	}

	sub := &shapeCtx{
		pass:    c.pass,
		subst:   make(map[string]dataflow.Shape),
		dsubst:  make(map[string]dataflow.Dim),
		created: make(map[string]bool),
		assume:  true,
		guard:   c.guard,
	}
	// Provable violations inside the callee (given the caller's concrete
	// arguments) are reported at the call site.
	if c.report != nil {
		sub.report = func(_ token.Pos, msg string) { c.report(call.Pos(), fn.Name()+": "+msg) }
	}
	results := sub.interpFunc(info, recvVal, args, call.Ellipsis != token.NoPos)
	if sub.violated {
		c.violated = true
	}
	c.nodes = append(c.nodes, sub.nodes...)

	if len(results) == 0 {
		return top()
	}
	out := results[0]
	// Rename the callee's private unbound symbols per call site so two
	// sites never share spuriously-comparable symbols.
	prefix := "c" + strconv.Itoa(int(call.Pos())) + "/"
	for name := range sub.created {
		if _, bound := sub.dsubst[name]; !bound {
			sub.dsubst[name] = dataflow.DimSym(prefix + name)
		}
		if _, bound := sub.subst[name]; !bound {
			sub.subst[name] = dataflow.SymShape(prefix + name)
		}
	}
	return sub.resolveVal(out)
}

// bindParams maps a function's parameters (and receiver) to abstract
// values, minting fresh symbols for untracked tensor/value params.
func (c *shapeCtx) bindParams(info FuncInfo, recv absVal, args []absVal, spread bool) *env {
	e := newEnv()
	decl := info.Decl
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		if obj := identObj(info.Pkg.Info, decl.Recv.List[0].Names[0]); obj != nil {
			e.set(obj, recv)
		}
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		_, variadic := field.Type.(*ast.Ellipsis)
		for _, name := range names {
			obj := identObj(info.Pkg.Info, name)
			var v absVal
			switch {
			case args == nil:
				// nil args is the "interpret this function in isolation"
				// mode: every parameter defaults to a fresh symbol.
			case variadic && !spread:
				// Collect the trailing args as an aDims when they are ints.
				if vv, ok := obj.(*types.Var); ok {
					if sl, isSlice := vv.Type().Underlying().(*types.Slice); isSlice {
						if basic, isBasic := sl.Elem().(*types.Basic); isBasic && basic.Kind() == types.Int {
							dims := make([]dataflow.Dim, 0, len(args)-i)
							for j := i; j < len(args); j++ {
								if args[j].kind == aInt {
									dims = append(dims, args[j].dim)
								} else {
									dims = append(dims, dataflow.Dim{})
								}
							}
							v = absVal{kind: aDims, dims: dims}
						}
					}
				}
				if v.kind == aTop && len(args) > i {
					v = top()
				}
			case i < len(args):
				v = args[i]
			}
			if obj != nil {
				v = c.defaultParam(obj, name.Pos(), v)
				e.set(obj, v)
			}
			i++
		}
	}
	return e
}

// defaultParam upgrades an untracked argument to a fresh symbolic value
// matching the parameter's type, so callee-side constraints can still
// relate the parameter to itself.
func (c *shapeCtx) defaultParam(obj types.Object, pos token.Pos, v absVal) absVal {
	if v.kind != aTop {
		return v
	}
	t := obj.Type()
	switch {
	case isTensor(t):
		return tensorU(c.freshShapeSym(pos))
	case isNamedIn(t, "Value", "internal/autodiff"):
		return valueV(c.freshShapeSym(pos))
	case isNamedIn(t, "ConvGeom", "internal/tensor"):
		return top()
	default:
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Int {
			return intV(c.freshDimSym(pos, 0))
		}
	}
	return top()
}

// interpFunc interprets a function body structurally (straight-line
// statements and if/else; loops and other constructs abort the summary)
// and returns the joined result rows.
func (c *shapeCtx) interpFunc(info FuncInfo, recv absVal, args []absVal, spread bool) []absVal {
	e := c.bindParams(info, recv, args, spread)
	rows, _, ok := c.interpStmts(info.Pkg, e, info.Decl.Body.List)
	if !ok {
		return nil
	}
	return joinRows(rows)
}

func joinRows(rows [][]absVal) []absVal {
	var out []absVal
	for _, row := range rows {
		if out == nil {
			out = append([]absVal(nil), row...)
			continue
		}
		if len(row) != len(out) {
			return nil
		}
		for i := range out {
			out[i] = joinVal(out[i], row[i])
		}
	}
	return out
}

// interpStmts executes a statement list. It returns the collected return
// rows, whether control can fall off the end, and whether interpretation
// stayed within the supported subset.
func (c *shapeCtx) interpStmts(pkg *Package, e *env, list []ast.Stmt) (rows [][]absVal, fallsThrough bool, ok bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.AssignStmt:
			c.interpAssign(pkg, e, s)
		case *ast.DeclStmt:
			if gd, isGen := s.Decl.(*ast.GenDecl); isGen {
				for _, spec := range gd.Specs {
					if vs, isVS := spec.(*ast.ValueSpec); isVS {
						c.interpValueSpec(pkg, e, vs)
					}
				}
			}
		case *ast.ExprStmt:
			if call, isCall := ast.Unparen(s.X).(*ast.CallExpr); isCall {
				if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "panic" {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						return rows, false, true // path dies
					}
				}
			}
			c.evalExpr(pkg, e, s.X)
		case *ast.ReturnStmt:
			row := make([]absVal, len(s.Results))
			for i, r := range s.Results {
				row[i] = c.resolveVal(c.evalExpr(pkg, e, r))
			}
			rows = append(rows, row)
			return rows, false, true
		case *ast.IfStmt:
			r, ft, sok := c.interpIf(pkg, e, s)
			if !sok {
				return nil, false, false
			}
			rows = append(rows, r...)
			if !ft {
				return rows, false, true
			}
		case *ast.BlockStmt:
			r, ft, sok := c.interpStmts(pkg, e, s.List)
			if !sok {
				return nil, false, false
			}
			rows = append(rows, r...)
			if !ft {
				return rows, false, true
			}
		default:
			// Loops, switches, defers, goroutines: beyond the summary
			// subset. The summary is abandoned rather than guessed at.
			return nil, false, false
		}
	}
	return rows, true, true
}

func (c *shapeCtx) interpIf(pkg *Package, e *env, s *ast.IfStmt) (rows [][]absVal, fallsThrough bool, ok bool) {
	if s.Init != nil {
		if as, isAssign := s.Init.(*ast.AssignStmt); isAssign {
			c.interpAssign(pkg, e, as)
		}
	}
	c.evalExpr(pkg, e, s.Cond)
	thenEnv := e.clone()
	thenRows, thenFT, thenOK := c.interpStmts(pkg, thenEnv, s.Body.List)
	if !thenOK {
		return nil, false, false
	}
	rows = append(rows, thenRows...)
	if s.Else == nil {
		if thenFT {
			// Join the then-branch state back into the fall-through env.
			merged := joinEnv(thenEnv, e)
			e.vars = merged.vars
		}
		return rows, true, true
	}
	elseEnv := e.clone()
	var elseRows [][]absVal
	var elseFT, elseOK bool
	switch els := s.Else.(type) {
	case *ast.BlockStmt:
		elseRows, elseFT, elseOK = c.interpStmts(pkg, elseEnv, els.List)
	case *ast.IfStmt:
		elseRows, elseFT, elseOK = c.interpIf(pkg, elseEnv, els)
	default:
		elseOK = false
	}
	if !elseOK {
		return nil, false, false
	}
	rows = append(rows, elseRows...)
	switch {
	case thenFT && elseFT:
		merged := joinEnv(thenEnv, elseEnv)
		e.vars = merged.vars
		return rows, true, true
	case thenFT:
		e.vars = thenEnv.vars
		return rows, true, true
	case elseFT:
		e.vars = elseEnv.vars
		return rows, true, true
	default:
		return rows, false, true
	}
}

func (c *shapeCtx) interpValueSpec(pkg *Package, e *env, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		var v absVal
		if i < len(vs.Values) {
			v = c.resolveVal(c.evalExpr(pkg, e, vs.Values[i]))
		} else if obj := identObj(pkg.Info, name); obj != nil {
			// var t *tensor.Tensor (zero value) is nil.
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
				v = absVal{kind: aNil}
			}
		}
		if obj := identObj(pkg.Info, name); obj != nil {
			e.set(obj, v)
		}
	}
}

// interpAssign handles the assignment forms the evaluator understands:
// plain variable (re)binding, v.Data = tensor, and v.inputsArr[i] = val.
func (c *shapeCtx) interpAssign(pkg *Package, e *env, s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		// Multi-value: evaluate the RHS for checks, drop precision.
		for _, r := range s.Rhs {
			c.evalExpr(pkg, e, r)
		}
		for _, l := range s.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				if obj := identObj(pkg.Info, id); obj != nil {
					e.set(obj, top())
				}
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		v := c.resolveVal(c.evalExpr(pkg, e, s.Rhs[i]))
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			if obj := identObj(pkg.Info, lhs); obj != nil {
				if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
					e.set(obj, v)
				} else {
					e.set(obj, top()) // +=, *= on tracked ints: give up
				}
			}
		case *ast.SelectorExpr:
			base := c.evalExpr(pkg, e, lhs.X)
			if base.kind == aValue && lhs.Sel.Name == "Data" {
				// v.Data = <tensor>: the node's result shape.
				if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
					if obj := identObj(pkg.Info, id); obj != nil {
						nv := base
						nv.shape = v.shape
						if nv.node != nil {
							nv.node.result = v.shape
						}
						e.set(obj, nv)
					}
				}
			}
		case *ast.IndexExpr:
			// v.inputsArr[i] = val (ReLU's stashed mask).
			if sel, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "inputsArr" {
				base := c.evalExpr(pkg, e, sel.X)
				if base.kind == aValue && base.node != nil {
					if idx := c.dimOf(pkg, e, lhs.Index); idx.IsConst() {
						if base.node.extra == nil {
							base.node.extra = make(map[int]absVal)
						}
						base.node.extra[int(idx.C)] = v
					}
				}
			}
		}
	}
}

// evalNodeInput resolves n.inputsArr[i] / n.inputs[i] during VJP
// evaluation; it is consulted from the IndexExpr path of evalExpr via
// the marker returned by evalSelector.
func (c *shapeCtx) evalNodeInput(pkg *Package, e *env, x *ast.IndexExpr) (absVal, bool) {
	sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "inputsArr" && sel.Sel.Name != "inputs") {
		return absVal{}, false
	}
	base := c.evalExpr(pkg, e, sel.X)
	if base.kind != aValue || base.node == nil {
		return absVal{}, false
	}
	idx := c.dimOf(pkg, e, x.Index)
	if !idx.IsConst() {
		return top(), true
	}
	return base.node.input(int(idx.C)), true
}
