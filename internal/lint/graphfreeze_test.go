package lint

import "testing"

func TestGraphFreezeGolden(t *testing.T) {
	runGolden(t, GraphFreeze)
}
