package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared helpers of the concurrency rule family (lockbalance, lockorder,
// goroutineleak, atomicmix, wgbalance): classifying sync primitive
// calls and giving the receiver of a Lock/Unlock/Add/Done a stable
// identity that survives CFG joins.

// syncOp classifies one call on a sync primitive.
type syncOp int

const (
	opNone syncOp = iota
	opLock
	opUnlock
	opRLock
	opRUnlock
	opWGAdd
	opWGDone
	opWGWait
)

// isMutexMethod maps a *types.Func to the lock operation it performs,
// accepting both sync.Mutex and sync.RWMutex receivers (Lock/Unlock are
// declared on both; RLock/RUnlock only on RWMutex).
func isMutexMethod(fn *types.Func) syncOp {
	if fn == nil {
		return opNone
	}
	onMutex := func(name string) bool {
		return isMethodOn(fn, name, "Mutex", "sync") || isMethodOn(fn, name, "RWMutex", "sync")
	}
	switch fn.Name() {
	case "Lock":
		if onMutex("Lock") {
			return opLock
		}
	case "Unlock":
		if onMutex("Unlock") {
			return opUnlock
		}
	case "RLock":
		if isMethodOn(fn, "RLock", "RWMutex", "sync") {
			return opRLock
		}
	case "RUnlock":
		if isMethodOn(fn, "RUnlock", "RWMutex", "sync") {
			return opRUnlock
		}
	}
	return opNone
}

// isWaitGroupMethod maps a *types.Func to the WaitGroup operation it
// performs.
func isWaitGroupMethod(fn *types.Func) syncOp {
	switch {
	case isMethodOn(fn, "Add", "WaitGroup", "sync"):
		return opWGAdd
	case isMethodOn(fn, "Done", "WaitGroup", "sync"):
		return opWGDone
	case isMethodOn(fn, "Wait", "WaitGroup", "sync"):
		return opWGWait
	}
	return opNone
}

// syncKey identifies one lock or WaitGroup instance inside a function:
// the object at the root of the receiver's selector chain plus the
// textual field path from it. Two receivers compare equal exactly when
// they are spelled from the same root object through the same fields —
// "s.mu" and "t.mu" differ, two mentions of "s.inner.mu" agree.
type syncKey struct {
	root types.Object
	path string
}

// receiverPath resolves the receiver expression of a sync method call
// (everything left of the final .Lock/.Unlock/…) to a syncKey and a
// display string. Only ident/selector chains over fields qualify;
// index expressions, function results and other dynamic receivers
// return ok=false and stay untracked.
func receiverPath(info *types.Info, expr ast.Expr) (syncKey, string, bool) {
	var parts []string
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := identObj(info, e)
			if obj == nil {
				return syncKey{}, "", false
			}
			parts = append(parts, e.Name)
			// parts were collected right-to-left; reverse for display.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			display := strings.Join(parts, ".")
			return syncKey{root: obj, path: display}, display, true
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		default:
			return syncKey{}, "", false
		}
	}
}

// syncCall splits a call into its sync-primitive receiver expression.
// For "s.mu.Lock()" it returns the "s.mu" expression; ok=false for
// non-selector call forms.
func syncCallRecv(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return sel.X, true
}

// isBuiltinPanic reports whether the call invokes the builtin panic.
// All flow-sensitive concurrency rules share it as the CFG's panic-exit
// predicate.
func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// funcUnits yields every analysis unit of a file: each function
// declaration body plus each function literal body, treated as separate
// units exactly like poolbalance does (a goroutine or deferred closure
// has its own control flow and its own balance obligations). The decl
// a literal belongs to is passed for diagnostics context ("" at file
// scope).
func funcUnits(f *ast.File, visit func(body *ast.BlockStmt, enclosing string)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Body, fd.Name.Name)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(lit.Body, fd.Name.Name)
			}
			return true
		})
	}
}
