package lint

import "testing"

func TestTelemetryGolden(t *testing.T) {
	runGolden(t, Telemetry)
}
