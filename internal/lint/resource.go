package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// resourcePrefix introduces a resource-lifecycle contract directive.
// Grammar, in a function or method declaration's doc comment:
//
//	//lint:resource acquire <class>   — the call's first result is an
//	                                    owned <class> the caller must
//	                                    release (or return)
//	//lint:resource release <class>   — the call releases the <class>
//	                                    passed as its receiver or as
//	                                    any argument
//	//lint:resource transfer <class>  — the call takes ownership of the
//	                                    <class> passed as an argument;
//	                                    the caller's obligation ends
//
// <class> is a free-form word naming the resource kind ("snapshot",
// "poolbuf", …); classes exist only to make diagnostics readable and
// to keep unrelated lifecycles from pairing with each other.
const resourcePrefix = "//lint:resource"

// resourceContracts is the parsed contract surface of the program.
type resourceContracts struct {
	acquire  map[*types.Func]string
	release  map[*types.Func]string
	transfer map[*types.Func]string
}

// contracts reports whether any contract was declared at all.
func (rc *resourceContracts) any() bool {
	return len(rc.acquire)+len(rc.release)+len(rc.transfer) > 0
}

// parseResourceContracts scans every comment in the program for
// //lint:resource directives. Well-formed directives must sit in a
// function declaration's doc comment; malformed or misplaced ones are
// reported through the pass (under the calling analyzer's rule, so the
// self-run keeps every contract in the tree parseable).
func parseResourceContracts(pass *Pass) *resourceContracts {
	rc := &resourceContracts{
		acquire:  make(map[*types.Func]string),
		release:  make(map[*types.Func]string),
		transfer: make(map[*types.Func]string),
	}
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			consumed := make(map[*ast.Comment]bool)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if !isResourceComment(c.Text) {
						continue
					}
					consumed[c] = true
					fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					rc.parseOne(pass, c, fn, fd)
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if isResourceComment(c.Text) && !consumed[c] {
						pass.Reportf(c.Pos(), "//lint:resource directive must be in a function declaration's doc comment")
					}
				}
			}
		}
	}
	return rc
}

// isResourceComment matches "//lint:resource" followed by whitespace or
// end of comment (so "//lint:resourceful" is someone else's comment).
func isResourceComment(text string) bool {
	rest, ok := strings.CutPrefix(text, resourcePrefix)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// parseOne validates one directive against its declaration and records
// the contract.
func (rc *resourceContracts) parseOne(pass *Pass, c *ast.Comment, fn *types.Func, fd *ast.FuncDecl) {
	rest := strings.TrimPrefix(c.Text, resourcePrefix)
	// Anything after a nested "//" is commentary, not directive.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		pass.Reportf(c.Pos(), `malformed //lint:resource directive: want "//lint:resource <acquire|release|transfer> <class>"`)
		return
	}
	verb, class := fields[0], fields[1]
	if fn == nil {
		return
	}
	switch verb {
	case "acquire":
		if fd.Type.Results.NumFields() == 0 {
			pass.Reportf(c.Pos(), "//lint:resource acquire on %s, which returns nothing to own", fn.Name())
			return
		}
		rc.acquire[fn] = class
	case "release", "transfer":
		if fd.Recv == nil && fd.Type.Params.NumFields() == 0 {
			pass.Reportf(c.Pos(), "//lint:resource %s on %s, which takes nothing to %s", verb, fn.Name(), verb)
			return
		}
		if verb == "release" {
			rc.release[fn] = class
		} else {
			rc.transfer[fn] = class
		}
	default:
		pass.Reportf(c.Pos(), "unknown //lint:resource verb %q (want acquire, release, or transfer)", verb)
	}
}
