package mia

import (
	"math"
	"math/rand"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
)

// overfitModel trains a model hard on a small training set so membership
// signal exists.
func overfitModel(t *testing.T) (*nn.Model, *data.Dataset, *data.Dataset) {
	t.Helper()
	spec := data.MNISTLike(8, 8)
	train, test := data.Generate(spec, 1)
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
	model := nn.NewConvNet(arch, rand.New(rand.NewSource(2)))
	if _, err := fl.RunPhase(model, []*data.Dataset{train}, fl.PhaseConfig{
		Rounds: 20, LocalSteps: 5, BatchSize: 16, LR: 0.1,
	}, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	return model, train, test
}

func TestExtractFeatures(t *testing.T) {
	model, train, _ := overfitModel(t)
	fs := Extract(model, train)
	if len(fs) != train.Len() {
		t.Fatalf("got %d features", len(fs))
	}
	for _, f := range fs {
		if f.Loss < 0 || math.IsNaN(f.Loss) {
			t.Fatalf("bad loss %g", f.Loss)
		}
		if f.Confidence <= 0 || f.Confidence > 1 {
			t.Fatalf("bad confidence %g", f.Confidence)
		}
		if f.Entropy < 0 || f.Entropy > math.Log(10)+1e-9 {
			t.Fatalf("bad entropy %g", f.Entropy)
		}
	}
}

func TestExtractEmpty(t *testing.T) {
	model, _, _ := overfitModel(t)
	if fs := Extract(model, data.NewDataset(8, 8, 1, 10)); fs != nil {
		t.Fatal("empty dataset must give nil features")
	}
}

func TestThresholdAttackSeparatesMembers(t *testing.T) {
	model, train, test := overfitModel(t)
	attack, err := TrainThreshold(model, train, test)
	if err != nil {
		t.Fatal(err)
	}
	memberRate := attack.MemberRate(model, train)
	nonMemberRate := attack.MemberRate(model, test)
	if memberRate <= nonMemberRate {
		t.Fatalf("attack is no better than chance: members %.2f vs non-members %.2f", memberRate, nonMemberRate)
	}
}

func TestThresholdAttackValidates(t *testing.T) {
	model, train, _ := overfitModel(t)
	empty := data.NewDataset(8, 8, 1, 10)
	if _, err := TrainThreshold(model, empty, train); err == nil {
		t.Fatal("expected error for empty members")
	}
	if _, err := TrainThreshold(model, train, empty); err == nil {
		t.Fatal("expected error for empty non-members")
	}
}

func TestLogisticAttackSeparatesMembers(t *testing.T) {
	model, train, test := overfitModel(t)
	attack, err := TrainLogistic(model, train, test, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	memberRate := attack.MemberRate(model, train)
	nonMemberRate := attack.MemberRate(model, test)
	if memberRate <= nonMemberRate {
		t.Fatalf("logistic attack no better than chance: %.2f vs %.2f", memberRate, nonMemberRate)
	}
}

func TestLogisticAttackValidates(t *testing.T) {
	model, train, test := overfitModel(t)
	if _, err := TrainLogistic(model, train, test, 0, 0.1); err == nil {
		t.Fatal("expected error for zero epochs")
	}
	if _, err := TrainLogistic(model, train, test, 10, 0); err == nil {
		t.Fatal("expected error for zero lr")
	}
	empty := data.NewDataset(8, 8, 1, 10)
	if _, err := TrainLogistic(model, empty, test, 10, 0.1); err == nil {
		t.Fatal("expected error for empty members")
	}
}

func TestMemberRateEmptyDataset(t *testing.T) {
	model, train, test := overfitModel(t)
	attack, err := TrainThreshold(model, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if r := attack.MemberRate(model, data.NewDataset(8, 8, 1, 10)); r != 0 {
		t.Fatalf("member rate on empty set = %g", r)
	}
}

func TestAUCAboveChanceForOverfitModel(t *testing.T) {
	model, train, test := overfitModel(t)
	auc, err := AUC(model, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if auc <= 0.55 {
		t.Fatalf("AUC %.2f — no membership signal", auc)
	}
	if auc > 1 {
		t.Fatalf("AUC %.2f out of range", auc)
	}
}

func TestAUCValidates(t *testing.T) {
	model, train, _ := overfitModel(t)
	empty := data.NewDataset(8, 8, 1, 10)
	if _, err := AUC(model, empty, train); err == nil {
		t.Fatal("expected error")
	}
}
