// Package mia implements the membership-inference attack the paper uses
// to validate unlearning (§4.2.3, Fig. 3): an attack model is fitted to
// distinguish training members from non-members using the target model's
// per-sample behaviour, and is then asked how often it classifies forget-
// set and retain-set samples as members. Successful unlearning drives the
// F-Set member rate to ≈0 while the R-Set rate stays high.
package mia

import (
	"fmt"
	"math"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
)

// Features summarizes the target model's behaviour on one sample; all
// three signals are standard membership cues.
type Features struct {
	// Loss is the cross-entropy of the true label.
	Loss float64
	// Confidence is the softmax probability of the predicted class.
	Confidence float64
	// Entropy is the softmax entropy.
	Entropy float64
}

// Extract computes features for every sample in ds.
func Extract(m *nn.Model, ds *data.Dataset) []Features {
	if ds.Len() == 0 {
		return nil
	}
	x, labels := ds.All()
	probs := nn.Softmax(m.Logits(x))
	classes := ds.Classes
	out := make([]Features, ds.Len())
	for i := range out {
		var f Features
		maxP := 0.0
		for c := 0; c < classes; c++ {
			p := probs.At(i, c)
			if p > maxP {
				maxP = p
			}
			if p > 1e-12 {
				f.Entropy -= p * math.Log(p)
			}
		}
		py := probs.At(i, labels[i])
		f.Loss = -math.Log(math.Max(py, 1e-12))
		f.Confidence = maxP
		out[i] = f
	}
	return out
}

// ThresholdAttack is the loss-threshold membership test (Yeom et al.):
// a sample is declared a member when its loss falls below a threshold
// calibrated on known members and non-members.
type ThresholdAttack struct {
	Threshold float64
}

// TrainThreshold calibrates the loss threshold that maximizes balanced
// accuracy on the given member/non-member examples.
func TrainThreshold(m *nn.Model, members, nonMembers *data.Dataset) (*ThresholdAttack, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return nil, fmt.Errorf("mia: need non-empty member and non-member sets")
	}
	mf, nf := Extract(m, members), Extract(m, nonMembers)
	// Candidate thresholds: all observed losses.
	var candidates []float64
	for _, f := range mf {
		candidates = append(candidates, f.Loss)
	}
	for _, f := range nf {
		candidates = append(candidates, f.Loss)
	}
	best, bestAcc := candidates[0], -1.0
	for _, th := range candidates {
		tp, tn := 0, 0
		for _, f := range mf {
			if f.Loss <= th {
				tp++
			}
		}
		for _, f := range nf {
			if f.Loss > th {
				tn++
			}
		}
		acc := 0.5*float64(tp)/float64(len(mf)) + 0.5*float64(tn)/float64(len(nf))
		if acc > bestAcc {
			best, bestAcc = th, acc
		}
	}
	return &ThresholdAttack{Threshold: best}, nil
}

// MemberRate returns the fraction of ds's samples the attack classifies
// as training members.
func (a *ThresholdAttack) MemberRate(m *nn.Model, ds *data.Dataset) float64 {
	fs := Extract(m, ds)
	if len(fs) == 0 {
		return 0
	}
	members := 0
	for _, f := range fs {
		if f.Loss <= a.Threshold {
			members++
		}
	}
	return float64(members) / float64(len(fs))
}

// LogisticAttack is a learned attack model over all three features,
// standing in for the shadow-model attack of Golatkar et al. used by the
// paper: the attacker fits a classifier on member/non-member feature
// vectors instead of a single threshold.
type LogisticAttack struct {
	// W holds weights for (loss, confidence, entropy) and Bias the offset.
	W    [3]float64
	Bias float64
}

// TrainLogistic fits the attack by gradient descent on logistic loss.
func TrainLogistic(m *nn.Model, members, nonMembers *data.Dataset, epochs int, lr float64) (*LogisticAttack, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return nil, fmt.Errorf("mia: need non-empty member and non-member sets")
	}
	if epochs < 1 || lr <= 0 {
		return nil, fmt.Errorf("mia: invalid training settings epochs=%d lr=%g", epochs, lr)
	}
	type example struct {
		x [3]float64
		y float64
	}
	var examples []example
	for _, f := range Extract(m, members) {
		examples = append(examples, example{x: featVec(f), y: 1})
	}
	for _, f := range Extract(m, nonMembers) {
		examples = append(examples, example{x: featVec(f), y: 0})
	}
	a := &LogisticAttack{}
	for e := 0; e < epochs; e++ {
		for _, ex := range examples {
			p := a.prob(ex.x)
			g := p - ex.y
			for i := range a.W {
				a.W[i] -= lr * g * ex.x[i]
			}
			a.Bias -= lr * g
		}
	}
	return a, nil
}

func featVec(f Features) [3]float64 { return [3]float64{f.Loss, f.Confidence, f.Entropy} }

func (a *LogisticAttack) prob(x [3]float64) float64 {
	z := a.Bias
	for i := range a.W {
		z += a.W[i] * x[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// MemberRate returns the fraction of ds's samples classified as members.
func (a *LogisticAttack) MemberRate(m *nn.Model, ds *data.Dataset) float64 {
	fs := Extract(m, ds)
	if len(fs) == 0 {
		return 0
	}
	members := 0
	for _, f := range fs {
		if a.prob(featVec(f)) >= 0.5 {
			members++
		}
	}
	return float64(members) / float64(len(fs))
}

// AUC returns the area under the ROC curve of the loss-based membership
// score separating members from non-members (Mann–Whitney U statistic):
// the probability that a random member has lower loss than a random
// non-member. 0.5 means the attack is blind; 1.0 is perfect separation.
func AUC(m *nn.Model, members, nonMembers *data.Dataset) (float64, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return 0, fmt.Errorf("mia: need non-empty member and non-member sets")
	}
	mf, nf := Extract(m, members), Extract(m, nonMembers)
	wins := 0.0
	for _, a := range mf {
		for _, b := range nf {
			switch {
			case a.Loss < b.Loss:
				wins++
			case a.Loss == b.Loss:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(mf)*len(nf)), nil
}

// Attack abstracts over the two attack models.
type Attack interface {
	MemberRate(m *nn.Model, ds *data.Dataset) float64
}

var (
	_ Attack = (*ThresholdAttack)(nil)
	_ Attack = (*LogisticAttack)(nil)
)
