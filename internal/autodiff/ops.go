package autodiff

import (
	"fmt"
	"math"

	"quickdrop/internal/tensor"
)

// Two conventions keep the graph cheap to build:
//
//   - Ops allocate their node first and compute the result directly into
//     the node's inline tensor header (v.scratch()), so an interior node
//     costs one allocation plus its element storage.
//   - VJP functions are non-capturing func literals (or named functions):
//     they read their operands from the node — inputsArr, the c constant,
//     or the node itself — rather than closing over locals, so Go places
//     them in static storage instead of allocating a closure per op call.
//     Only ops whose backward needs non-node state (Im2col's geometry,
//     SliceRows' bounds) pay for a closure.

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	v := newNode2("add", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return g, g
	})
	v.Data = tensor.AddInto(v.scratch(), a.Data, b.Data)
	return v
}

// Neg returns -a.
func Neg(a *Value) *Value {
	v := newNode1("neg", nil, a, func(n, g *Value) *Value {
		return Neg(g)
	})
	v.Data = tensor.ScaleInto(v.scratch(), a.Data, -1)
	return v
}

// Sub returns a - b (same shape). It is a primitive (not Add∘Neg) so the
// hot paths that difference tensors — cross-entropy shifting, instance
// normalization, distance losses — allocate one node instead of two.
func Sub(a, b *Value) *Value {
	v := newNode2("sub", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return g, Neg(g)
	})
	v.Data = tensor.SubInto(v.scratch(), a.Data, b.Data)
	return v
}

// Mul returns the elementwise product (same shape).
func Mul(a, b *Value) *Value {
	v := newNode2("mul", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return Mul(g, n.inputsArr[1]), Mul(g, n.inputsArr[0])
	})
	v.Data = tensor.MulInto(v.scratch(), a.Data, b.Data)
	return v
}

// Div returns elementwise a / b (same shape).
func Div(a, b *Value) *Value { return Mul(a, PowConst(b, -1)) }

// Scale returns c * a for a Go-constant c.
func Scale(a *Value, c float64) *Value {
	v := newNode1c("scale", nil, a, c, func(n, g *Value) *Value {
		return Scale(g, n.c)
	})
	v.Data = tensor.ScaleInto(v.scratch(), a.Data, c)
	return v
}

// AddConst returns a + c elementwise for a Go-constant c.
func AddConst(a *Value, c float64) *Value {
	v := newNode1("addconst", nil, a, func(n, g *Value) *Value {
		return g
	})
	v.Data = tensor.AddConstInto(v.scratch(), a.Data, c)
	return v
}

// PowConst returns aᵖ elementwise for a Go-constant exponent p.
func PowConst(a *Value, p float64) *Value {
	v := newNode1c("powconst", nil, a, p, func(n, g *Value) *Value {
		return Mul(g, Scale(PowConst(n.inputsArr[0], n.c-1), n.c))
	})
	v.Data = tensor.PowInto(v.scratch(), a.Data, p)
	return v
}

// Sqrt returns the elementwise square root.
func Sqrt(a *Value) *Value { return PowConst(a, 0.5) }

// Exp returns elementwise eᵃ. Its derivative is its own output, read back
// off the node during backward.
func Exp(a *Value) *Value {
	v := newNode1("exp", nil, a, func(n, g *Value) *Value {
		return Mul(g, n)
	})
	v.Data = tensor.ApplyInto(v.scratch(), a.Data, math.Exp)
	return v
}

// Log returns the elementwise natural logarithm.
func Log(a *Value) *Value {
	v := newNode1("log", nil, a, func(n, g *Value) *Value {
		return Mul(g, PowConst(n.inputsArr[0], -1))
	})
	v.Data = tensor.ApplyInto(v.scratch(), a.Data, math.Log)
	return v
}

// ReLU returns elementwise max(a, 0). The derivative treats the activation
// mask as a constant (zero almost everywhere in second order), matching
// standard deep-learning practice. The mask is computed once at forward
// time and stashed in the node's spare input slot — inputs is sliced to
// length 1, so the traversal never mistakes it for a differentiable input.
func ReLU(a *Value) *Value {
	v := newNode1("relu", nil, a, func(n, g *Value) *Value {
		return Mul(g, n.inputsArr[1])
	})
	v.Data = tensor.ApplyInto(v.scratch(), a.Data, relu)
	if v.vjp1 != nil {
		v.inputsArr[1] = Const(a.Data.ReLUMask())
	}
	return v
}

func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// Detach returns a's tensor as a constant, cutting the gradient flow.
func Detach(a *Value) *Value { return Const(a.Data.Clone()) }

// MatMul returns the matrix product a·b for a [M,K] and b [K,N]. Its VJP
// uses the transpose-fused kernels, so no backward pass materializes a
// transposed matrix.
func MatMul(a, b *Value) *Value {
	v := newNode2("matmul", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return MatMulNT(g, n.inputsArr[1]), // ∂/∂a = g·bᵀ
			MatMulTN(n.inputsArr[0], g) // ∂/∂b = aᵀ·g
	})
	v.Data = tensor.MatMulInto(v.scratch(), a.Data, b.Data)
	return v
}

// MatMulNT returns a·bᵀ for a [M,K] and b [N,K] without materializing the
// transpose. The three product forms (NN, NT, TN) are closed under
// differentiation, so backward graphs of any order stay transpose-free.
func MatMulNT(a, b *Value) *Value {
	v := newNode2("matmulnt", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return MatMul(g, n.inputsArr[1]), // ∂/∂a = g·b
			MatMulTN(g, n.inputsArr[0]) // ∂/∂b = gᵀ·a
	})
	v.Data = tensor.MatMulNTInto(v.scratch(), a.Data, b.Data)
	return v
}

// MatMulTN returns aᵀ·b for a [K,M] and b [K,N] without materializing the
// transpose.
func MatMulTN(a, b *Value) *Value {
	v := newNode2("matmultn", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return MatMulNT(n.inputsArr[1], g), // ∂/∂a = b·gᵀ
			MatMul(n.inputsArr[0], g) // ∂/∂b = a·g
	})
	v.Data = tensor.MatMulTNInto(v.scratch(), a.Data, b.Data)
	return v
}

// Transpose returns the matrix transpose.
func Transpose(a *Value) *Value {
	v := newNode1("transpose", nil, a, func(n, g *Value) *Value {
		return Transpose(g)
	})
	v.Data = tensor.TransposeInto(v.scratch(), a.Data)
	return v
}

// Reshape returns a with a new shape (same element count, row-major
// order). The result is a view sharing a's storage — graph-held tensors
// are immutable for the graph's lifetime, so no copy is needed.
func Reshape(a *Value, shape ...int) *Value {
	v := newNode1("reshape", nil, a, reshapeBackVJP)
	v.Data = tensor.ViewInto(v.scratch(), a.Data, shape...)
	return v
}

// reshapeBackVJP views the incoming gradient with the input's shape. It
// serves every reshape-family node: the original shape is recovered from
// the node's input rather than a captured slice.
func reshapeBackVJP(n, g *Value) *Value {
	return reshapeLike(g, n.inputsArr[0].Data)
}

// reshapeLike views a with ref's shape; its VJP views back, so arbitrarily
// deep backward graphs never copy or capture a shape slice.
func reshapeLike(a *Value, ref *tensor.Tensor) *Value {
	v := newNode1("reshape", nil, a, reshapeBackVJP)
	v.Data = tensor.ViewLikeInto(v.scratch(), a.Data, ref)
	return v
}

// SumAxes sums over the given (sorted, unique) axes, keeping them as size-1
// dimensions so the result broadcasts back against the input.
func SumAxes(a *Value, axes ...int) *Value {
	v := newNode1("sumaxes", nil, a, broadcastBackVJP)
	v.Data = tensor.SumAxesInto(v.scratch(), a.Data, axes...)
	return v
}

// broadcastBackVJP expands a reduction's gradient back to its input shape.
func broadcastBackVJP(n, g *Value) *Value {
	return BroadcastLike(g, n.inputsArr[0].Data)
}

// sumBackVJP reduces a broadcast's gradient back down to its input shape.
func sumBackVJP(n, g *Value) *Value {
	return sumAxesLike(g, n.inputsArr[0].Data)
}

// sumAxesLike sums a down to ref's shape (size 1 on reduced axes). It is
// the adjoint of BroadcastLike; the pair is closed under differentiation.
func sumAxesLike(a *Value, ref *tensor.Tensor) *Value {
	if a.Data.SameShape(ref) {
		return a
	}
	v := newNode1("sumaxes", nil, a, broadcastBackVJP)
	v.Data = tensor.SumLikeInto(v.scratch(), a.Data, ref)
	return v
}

// BroadcastTo expands size-1 dimensions of a to the given shape.
func BroadcastTo(a *Value, shape ...int) *Value {
	v := newNode1("broadcast", nil, a, sumBackVJP)
	v.Data = tensor.BroadcastToInto(v.scratch(), a.Data, shape...)
	return v
}

// BroadcastLike expands size-1 dimensions of a to ref's shape.
func BroadcastLike(a *Value, ref *tensor.Tensor) *Value {
	if a.Data.SameShape(ref) {
		return a
	}
	v := newNode1("broadcast", nil, a, sumBackVJP)
	v.Data = tensor.BroadcastLikeInto(v.scratch(), a.Data, ref)
	return v
}

// MulBcast returns a ⊙ broadcast(b) for a small b of equal rank with
// size-1 broadcast axes, without materializing the broadcast. It is the
// workhorse of normalization layers: scaling a feature map by per-channel
// or per-sample statistics costs one node and one full-size tensor.
func MulBcast(a, b *Value) *Value {
	v := newNode2("mulbcast", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return MulBcast(g, n.inputsArr[1]), mulSumLike(g, n.inputsArr[0], n.inputsArr[1].Data)
	})
	v.Data = tensor.MulBcastInto(v.scratch(), a.Data, b.Data)
	return v
}

// AddBcast returns a + broadcast(b); see MulBcast.
func AddBcast(a, b *Value) *Value {
	v := newNode2("addbcast", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return g, sumAxesLike(g, n.inputsArr[1].Data)
	})
	v.Data = tensor.AddBcastInto(v.scratch(), a.Data, b.Data)
	return v
}

// SubBcast returns a - broadcast(b); see MulBcast.
func SubBcast(a, b *Value) *Value {
	v := newNode2("subbcast", nil, a, b, func(n, g *Value) (*Value, *Value) {
		return g, Neg(sumAxesLike(g, n.inputsArr[1].Data))
	})
	v.Data = tensor.SubBcastInto(v.scratch(), a.Data, b.Data)
	return v
}

// mulSumVJP backpropagates any fused multiply-reduce: each operand's
// gradient is the other operand scaled by the broadcast output gradient.
func mulSumVJP(n, g *Value) (*Value, *Value) {
	return MulBcast(n.inputsArr[1], g), MulBcast(n.inputsArr[0], g)
}

// MulSum returns Σ_axes (a ⊙ b) — SumAxes(Mul(a, b), axes...) without
// materializing the product. The reduced axes are kept as size-1 dims.
// Grouped cosine distances and variance computations reduce through this.
func MulSum(a, b *Value, axes ...int) *Value {
	v := newNode2("mulsum", nil, a, b, mulSumVJP)
	v.Data = tensor.MulSumInto(v.scratch(), a.Data, b.Data, axes...)
	return v
}

// mulSumLike reduces a ⊙ b to ref's shape; the adjoint of MulBcast.
func mulSumLike(a, b *Value, ref *tensor.Tensor) *Value {
	v := newNode2("mulsum", nil, a, b, mulSumVJP)
	v.Data = tensor.MulSumLikeInto(v.scratch(), a.Data, b.Data, ref)
	return v
}

// AddRowVec adds a length-C bias vector to every row of a [R, C] matrix.
// It fuses the Reshape→BroadcastTo→Add chain used by linear and conv
// layers into one node, so the forward pass never materializes the
// broadcast and the backward pass reduces straight to column sums.
func AddRowVec(a, bias *Value) *Value {
	v := newNode2("addrow", nil, a, bias, func(n, g *Value) (*Value, *Value) {
		return g, Reshape(SumAxes(g, 0), n.inputsArr[1].Data.Len())
	})
	v.Data = tensor.AddRowInto(v.scratch(), a.Data, bias.Data)
	return v
}

// SumAll reduces a to a scalar of shape [1].
func SumAll(a *Value) *Value {
	axes := make([]int, a.Data.Dims())
	for i := range axes {
		axes[i] = i
	}
	return Reshape(SumAxes(a, axes...), 1)
}

// Mean reduces a to its scalar mean, shape [1].
func Mean(a *Value) *Value {
	return Scale(SumAll(a), 1/float64(a.Data.Len()))
}

// Expand broadcasts a scalar node of shape [1] to an arbitrary shape.
func Expand(scalar *Value, shape ...int) *Value {
	if scalar.Data.Len() != 1 {
		panic(fmt.Sprintf("autodiff: Expand requires a scalar, got %s", scalar.Data.ShapeString()))
	}
	ones := make([]int, len(shape))
	for i := range ones {
		ones[i] = 1
	}
	return BroadcastTo(Reshape(scalar, ones...), shape...)
}

// Im2col extracts convolution patches (see tensor.Im2col) as a
// differentiable operation; the VJP is the adjoint scatter Col2im.
func Im2col(a *Value, g tensor.ConvGeom) *Value {
	batch := a.Data.Dim(0)
	v := newNode1("im2col", nil, a, func(n, gr *Value) *Value {
		return Col2im(gr, batch, g)
	})
	v.Data = tensor.Im2colInto(v.scratch(), a.Data, g)
	return v
}

// Col2im scatter-adds patches back into an NHWC tensor (adjoint of Im2col).
func Col2im(cols *Value, batch int, g tensor.ConvGeom) *Value {
	v := newNode1("col2im", nil, cols, func(n, gr *Value) *Value {
		return Im2col(gr, g)
	})
	v.Data = tensor.Col2imInto(v.scratch(), cols.Data, batch, g)
	return v
}

// Dot returns ⟨a, b⟩ as a scalar node of shape [1].
func Dot(a, b *Value) *Value {
	n := a.Data.Len()
	return Reshape(MulSum(Reshape(a, 1, n), Reshape(b, 1, n), 1), 1)
}
