package autodiff

import (
	"fmt"

	"quickdrop/internal/tensor"
)

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	return newNode("add", a.Data.Add(b.Data), []*Value{a, b}, func(g *Value) []*Value {
		return []*Value{g, g}
	})
}

// Neg returns -a.
func Neg(a *Value) *Value {
	return newNode("neg", a.Data.Neg(), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Neg(g)}
	})
}

// Sub returns a - b (same shape).
func Sub(a, b *Value) *Value { return Add(a, Neg(b)) }

// Mul returns the elementwise product (same shape).
func Mul(a, b *Value) *Value {
	return newNode("mul", a.Data.Mul(b.Data), []*Value{a, b}, func(g *Value) []*Value {
		return []*Value{Mul(g, b), Mul(g, a)}
	})
}

// Div returns elementwise a / b (same shape).
func Div(a, b *Value) *Value { return Mul(a, PowConst(b, -1)) }

// Scale returns c * a for a Go-constant c.
func Scale(a *Value, c float64) *Value {
	return newNode("scale", a.Data.Scale(c), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Scale(g, c)}
	})
}

// AddConst returns a + c elementwise for a Go-constant c.
func AddConst(a *Value, c float64) *Value {
	return newNode("addconst", a.Data.Apply(func(v float64) float64 { return v + c }), []*Value{a}, func(g *Value) []*Value {
		return []*Value{g}
	})
}

// PowConst returns aᵖ elementwise for a Go-constant exponent p.
func PowConst(a *Value, p float64) *Value {
	return newNode("powconst", a.Data.Pow(p), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Mul(g, Scale(PowConst(a, p-1), p))}
	})
}

// Sqrt returns the elementwise square root.
func Sqrt(a *Value) *Value { return PowConst(a, 0.5) }

// Exp returns elementwise eᵃ.
func Exp(a *Value) *Value {
	var out *Value
	out = newNode("exp", a.Data.Exp(), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Mul(g, out)}
	})
	return out
}

// Log returns the elementwise natural logarithm.
func Log(a *Value) *Value {
	return newNode("log", a.Data.Log(), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Mul(g, PowConst(a, -1))}
	})
}

// ReLU returns elementwise max(a, 0). The derivative treats the activation
// mask as a constant (zero almost everywhere in second order), matching
// standard deep-learning practice.
func ReLU(a *Value) *Value {
	mask := Const(a.Data.ReLUMask())
	return newNode("relu", a.Data.ReLU(), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Mul(g, mask)}
	})
}

// Detach returns a's tensor as a constant, cutting the gradient flow.
func Detach(a *Value) *Value { return Const(a.Data.Clone()) }

// MatMul returns the matrix product a·b for a [M,K] and b [K,N].
func MatMul(a, b *Value) *Value {
	return newNode("matmul", a.Data.MatMul(b.Data), []*Value{a, b}, func(g *Value) []*Value {
		return []*Value{
			MatMul(g, Transpose(b)),
			MatMul(Transpose(a), g),
		}
	})
}

// Transpose returns the matrix transpose.
func Transpose(a *Value) *Value {
	return newNode("transpose", a.Data.Transpose(), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Transpose(g)}
	})
}

// Reshape returns a with a new shape (same element count, row-major order).
func Reshape(a *Value, shape ...int) *Value {
	orig := a.Data.Shape()
	return newNode("reshape", a.Data.Reshape(shape...), []*Value{a}, func(g *Value) []*Value {
		return []*Value{Reshape(g, orig...)}
	})
}

// SumAxes sums over the given (sorted, unique) axes, keeping them as size-1
// dimensions so the result broadcasts back against the input.
func SumAxes(a *Value, axes ...int) *Value {
	orig := a.Data.Shape()
	return newNode("sumaxes", a.Data.SumAxes(axes...), []*Value{a}, func(g *Value) []*Value {
		return []*Value{BroadcastTo(g, orig...)}
	})
}

// BroadcastTo expands size-1 dimensions of a to the given shape.
func BroadcastTo(a *Value, shape ...int) *Value {
	in := a.Data.Shape()
	var axes []int
	for i := range in {
		if in[i] == 1 && shape[i] != 1 {
			axes = append(axes, i)
		}
	}
	return newNode("broadcast", a.Data.BroadcastTo(shape...), []*Value{a}, func(g *Value) []*Value {
		if len(axes) == 0 {
			return []*Value{g}
		}
		return []*Value{SumAxes(g, axes...)}
	})
}

// SumAll reduces a to a scalar of shape [1].
func SumAll(a *Value) *Value {
	axes := make([]int, a.Data.Dims())
	for i := range axes {
		axes[i] = i
	}
	return Reshape(SumAxes(a, axes...), 1)
}

// Mean reduces a to its scalar mean, shape [1].
func Mean(a *Value) *Value {
	return Scale(SumAll(a), 1/float64(a.Data.Len()))
}

// Expand broadcasts a scalar node of shape [1] to an arbitrary shape.
func Expand(scalar *Value, shape ...int) *Value {
	if scalar.Data.Len() != 1 {
		panic(fmt.Sprintf("autodiff: Expand requires a scalar, got %v", scalar.Data.Shape()))
	}
	ones := make([]int, len(shape))
	for i := range ones {
		ones[i] = 1
	}
	return BroadcastTo(Reshape(scalar, ones...), shape...)
}

// Im2col extracts convolution patches (see tensor.Im2col) as a
// differentiable operation; the VJP is the adjoint scatter Col2im.
func Im2col(a *Value, g tensor.ConvGeom) *Value {
	batch := a.Data.Dim(0)
	return newNode("im2col", tensor.Im2col(a.Data, g), []*Value{a}, func(gr *Value) []*Value {
		return []*Value{Col2im(gr, batch, g)}
	})
}

// Col2im scatter-adds patches back into an NHWC tensor (adjoint of Im2col).
func Col2im(cols *Value, batch int, g tensor.ConvGeom) *Value {
	return newNode("col2im", tensor.Col2im(cols.Data, batch, g), []*Value{cols}, func(gr *Value) []*Value {
		return []*Value{Im2col(gr, g)}
	})
}

// Dot returns ⟨a, b⟩ as a scalar node of shape [1].
func Dot(a, b *Value) *Value { return SumAll(Mul(a, b)) }
