package autodiff

import (
	"math"
	"testing"

	"quickdrop/internal/tensor"
)

// Finite-difference checks for the fused primitives added by the compute
// backbone: explicit Sub, row-bias addition, transpose-fused matrix
// products, fused broadcast arithmetic, and fused multiply-reduce. Their
// VJPs are hand-written against the node's stored operands, so each needs
// its own numeric agreement check.
func TestFusedGradientNumericAgreement(t *testing.T) {
	tests := []struct {
		name   string
		shapes [][]int
		f      func(xs []*Value) *Value
		seed   int64
	}{
		{"sub", [][]int{{2, 3}, {2, 3}}, func(xs []*Value) *Value {
			return SumAll(PowConst(Sub(xs[0], xs[1]), 2))
		}, 21},
		{"addrowvec", [][]int{{3, 4}, {4}}, func(xs []*Value) *Value {
			return SumAll(PowConst(AddRowVec(xs[0], xs[1]), 2))
		}, 22},
		{"matmulnt", [][]int{{3, 4}, {2, 4}}, func(xs []*Value) *Value {
			return SumAll(PowConst(MatMulNT(xs[0], xs[1]), 2))
		}, 23},
		{"matmultn", [][]int{{4, 3}, {4, 2}}, func(xs []*Value) *Value {
			return SumAll(PowConst(MatMulTN(xs[0], xs[1]), 2))
		}, 24},
		{"mulbcast-channels", [][]int{{2, 3, 3, 2}, {1, 1, 1, 2}}, func(xs []*Value) *Value {
			return SumAll(PowConst(MulBcast(xs[0], xs[1]), 2))
		}, 25},
		{"addbcast-batch", [][]int{{2, 3, 3, 2}, {2, 1, 1, 1}}, func(xs []*Value) *Value {
			return SumAll(PowConst(AddBcast(xs[0], xs[1]), 2))
		}, 26},
		{"subbcast", [][]int{{3, 4}, {1, 4}}, func(xs []*Value) *Value {
			return SumAll(PowConst(SubBcast(xs[0], xs[1]), 2))
		}, 27},
		{"mulsum", [][]int{{3, 4}, {3, 4}}, func(xs []*Value) *Value {
			return SumAll(PowConst(MulSum(xs[0], xs[1], 1), 2))
		}, 28},
		{"mulsum-spatial", [][]int{{2, 3, 3, 2}, {2, 3, 3, 2}}, func(xs []*Value) *Value {
			return SumAll(PowConst(MulSum(xs[0], xs[1], 1, 2), 2))
		}, 29},
		{"instance-norm-shape", [][]int{{2, 3, 3, 2}}, func(xs []*Value) *Value {
			// The InstanceNorm forward computation, written against the
			// fused primitives exactly as internal/nn does.
			x := xs[0]
			area := 9.0
			mean := Scale(SumAxes(x, 1, 2), 1/area)
			centered := SubBcast(x, mean)
			variance := Scale(MulSum(centered, centered, 1, 2), 1/area)
			inv := PowConst(AddConst(variance, 1e-5), -0.5)
			return SumAll(PowConst(MulBcast(centered, inv), 2))
		}, 30},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			xs := make([]*tensor.Tensor, len(tc.shapes))
			for i, sh := range tc.shapes {
				xs[i] = randT(tc.seed*100+int64(i), 1, sh...)
			}
			if err := CheckGradient(tc.f, xs, fdEps, fdTol); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The fused primitives must be closed under differentiation: QuickDrop
// differentiates a distance between gradients, so second-order flows
// through MulBcast/SubBcast/MulSum. Check ∂²/∂s² numerically.
func TestFusedSecondOrderNumeric(t *testing.T) {
	firstGrad := func(st *tensor.Tensor) *tensor.Tensor {
		s := Var(st.Clone())
		mean := Scale(SumAxes(s, 1), 1.0/3)
		centered := SubBcast(s, mean)
		loss := SumAll(PowConst(MulSum(centered, centered, 1), 2))
		return MustGrad(loss, []*Value{s})[0].Data
	}

	st := randT(31, 1, 2, 3)
	s := Var(st.Clone())
	mean := Scale(SumAxes(s, 1), 1.0/3)
	centered := SubBcast(s, mean)
	loss := SumAll(PowConst(MulSum(centered, centered, 1), 2))
	g := MustGrad(loss, []*Value{s})[0]
	m := SumAll(g)
	hv := MustGrad(m, []*Value{s})[0] // H·1: row sums of the Hessian

	for j := range st.Data() {
		up := st.Clone()
		up.Data()[j] += fdEps
		down := st.Clone()
		down.Data()[j] -= fdEps
		numeric := (firstGrad(up).Sum() - firstGrad(down).Sum()) / (2 * fdEps)
		if got := hv.Data.Data()[j]; math.Abs(got-numeric) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("second-order elem %d = %g, numeric %g", j, got, numeric)
		}
	}
}

// Identity shortcuts: BroadcastLike and sumAxesLike return their input
// unchanged when shapes already match, rather than inserting a node.
func TestLikeOpsIdentityShortcut(t *testing.T) {
	x := Var(tensor.Ones(2, 3))
	if BroadcastLike(x, x.Data) != x {
		t.Fatal("BroadcastLike onto same shape must be the identity")
	}
	if sumAxesLike(x, x.Data) != x {
		t.Fatal("sumAxesLike onto same shape must be the identity")
	}
}

// Interior nodes embed their result tensor: the Data pointer of an op's
// output must be the node's inline header, not a separate allocation.
func TestNodeEmbedsResultTensor(t *testing.T) {
	a := Var(tensor.Ones(2, 2))
	b := Var(tensor.Ones(2, 2))
	v := Add(a, b)
	if v.Data != &v.dataInline {
		t.Fatal("op result must live in the node's inline tensor header")
	}
}
