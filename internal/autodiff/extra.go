package autodiff

import (
	"fmt"

	"quickdrop/internal/tensor"
)

// ConcatRows stacks matrices with equal column counts along axis 0.
func ConcatRows(parts ...*Value) *Value {
	if len(parts) == 0 {
		panic("autodiff: ConcatRows of nothing")
	}
	cols := parts[0].Data.Dim(1)
	rows := 0
	for _, p := range parts {
		if p.Data.Dims() != 2 || p.Data.Dim(1) != cols {
			panic(fmt.Sprintf("autodiff: ConcatRows shape mismatch: %s", p.Data.ShapeString()))
		}
		rows += p.Data.Dim(0)
	}
	out := tensor.New(rows, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data()[off:], p.Data.Data())
		off += p.Data.Len()
	}
	starts := make([]int, len(parts))
	r := 0
	for i, p := range parts {
		starts[i] = r
		r += p.Data.Dim(0)
	}
	return newNodeN("concatrows", out, parts, func(n, g *Value) []*Value {
		grads := make([]*Value, len(parts))
		for i, p := range parts {
			grads[i] = SliceRows(g, starts[i], starts[i]+p.Data.Dim(0))
		}
		return grads
	})
}

// SliceRows returns rows [lo, hi) of a matrix. The result is a view
// sharing a's storage (rows are contiguous in row-major order).
func SliceRows(a *Value, lo, hi int) *Value {
	if a.Data.Dims() != 2 || lo < 0 || hi > a.Data.Dim(0) || lo >= hi {
		panic(fmt.Sprintf("autodiff: SliceRows [%d,%d) of %s", lo, hi, a.Data.ShapeString()))
	}
	cols := a.Data.Dim(1)
	total := a.Data.Dim(0)
	return newNode1("slicerows", a.Data.RowsView(lo, hi), a, func(n, g *Value) *Value {
		// The scatter is linear with constant placement, so wrapping the
		// embedded gradient through ConcatRows keeps it differentiable.
		var parts []*Value
		if lo > 0 {
			parts = append(parts, Const(tensor.New(lo, cols)))
		}
		parts = append(parts, g)
		if hi < total {
			parts = append(parts, Const(tensor.New(total-hi, cols)))
		}
		return ConcatRows(parts...)
	})
}

// Sigmoid returns 1/(1+e^{-a}), composed from differentiable primitives.
func Sigmoid(a *Value) *Value {
	return PowConst(AddConst(Exp(Neg(a)), 1), -1)
}

// Tanh returns the hyperbolic tangent, composed as 2σ(2a) − 1.
func Tanh(a *Value) *Value {
	return AddConst(Scale(Sigmoid(Scale(a, 2)), 2), -1)
}

// Abs returns |a| with the sign mask treated as a constant (the standard
// subgradient convention, zero second derivative almost everywhere).
func Abs(a *Value) *Value {
	sign := Const(a.Data.Apply(func(v float64) float64 {
		if v < 0 {
			return -1
		}
		return 1
	}))
	return Mul(a, sign)
}

// HVP computes the Hessian-vector product H·v of a scalar loss with
// respect to params, exploiting that Grad builds a differentiable graph:
// H·v = ∇(⟨∇loss, v⟩). vs must be aligned with params and is treated as
// constant.
func HVP(loss *Value, params []*Value, vs []*tensor.Tensor) ([]*Value, error) {
	if len(params) != len(vs) {
		return nil, fmt.Errorf("autodiff: HVP got %d params and %d vectors", len(params), len(vs))
	}
	grads, err := Grad(loss, params)
	if err != nil {
		return nil, err
	}
	inner := Scalar(0)
	for i, g := range grads {
		inner = Add(inner, Dot(g, Const(vs[i])))
	}
	return Grad(inner, params)
}
