package autodiff

import (
	"fmt"
	"math"

	"quickdrop/internal/tensor"
)

// CheckGradient compares the analytic gradient of f at xs against central
// finite differences. f must build a fresh graph from its inputs on every
// call and return a scalar. Returns an error describing the first mismatch.
func CheckGradient(f func(xs []*Value) *Value, xs []*tensor.Tensor, eps, tol float64) error {
	vars := make([]*Value, len(xs))
	for i, x := range xs {
		vars[i] = Var(x.Clone())
	}
	out := f(vars)
	analytic, err := Grad(out, vars)
	if err != nil {
		return err
	}

	eval := func(pts []*tensor.Tensor) float64 {
		vs := make([]*Value, len(pts))
		for i, p := range pts {
			vs[i] = Const(p)
		}
		return f(vs).Item()
	}

	for i, x := range xs {
		for j := range x.Data() {
			pts := clonePoints(xs)
			pts[i].Data()[j] += eps
			up := eval(pts)
			pts = clonePoints(xs)
			pts[i].Data()[j] -= eps
			down := eval(pts)
			numeric := (up - down) / (2 * eps)
			got := analytic[i].Data.Data()[j]
			if diff := math.Abs(got - numeric); diff > tol*(1+math.Abs(numeric)) {
				return fmt.Errorf("autodiff: gradient mismatch at input %d elem %d: analytic %.8g, numeric %.8g (|Δ|=%.3g)",
					i, j, got, numeric, diff)
			}
		}
	}
	return nil
}

func clonePoints(xs []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		out[i] = x.Clone()
	}
	return out
}
