package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"quickdrop/internal/tensor"
)

func TestConcatRowsValues(t *testing.T) {
	a := Const(tensor.FromSlice([]float64{1, 2}, 1, 2))
	b := Const(tensor.FromSlice([]float64{3, 4, 5, 6}, 2, 2))
	c := ConcatRows(a, b)
	want := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	if !c.Data.SameShape(want) {
		t.Fatalf("shape %v", c.Data.Shape())
	}
	for i, v := range want.Data() {
		if c.Data.Data()[i] != v {
			t.Fatalf("concat = %v", c.Data.Data())
		}
	}
}

func TestSliceRowsValues(t *testing.T) {
	a := Const(tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2))
	s := SliceRows(a, 1, 3)
	want := []float64{3, 4, 5, 6}
	for i, v := range want {
		if s.Data.Data()[i] != v {
			t.Fatalf("slice = %v", s.Data.Data())
		}
	}
}

func TestConcatSliceGradientsNumeric(t *testing.T) {
	xa := randT(40, 1, 2, 3)
	xb := randT(41, 1, 1, 3)
	err := CheckGradient(func(xs []*Value) *Value {
		joined := ConcatRows(xs[0], xs[1])
		top := SliceRows(joined, 0, 2)
		return SumAll(Mul(top, top))
	}, []*tensor.Tensor{xa, xb}, fdEps, fdTol)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSliceRowsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SliceRows(Const(tensor.New(2, 2)), 1, 1)
}

func TestSigmoidTanhValuesAndGradients(t *testing.T) {
	x0 := Const(tensor.FromSlice([]float64{0}, 1))
	if math.Abs(Sigmoid(x0).Item()-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %g", Sigmoid(x0).Item())
	}
	if math.Abs(Tanh(x0).Item()) > 1e-12 {
		t.Fatalf("tanh(0) = %g", Tanh(x0).Item())
	}
	xv := randT(42, 0.8, 5)
	if err := CheckGradient(func(xs []*Value) *Value {
		return SumAll(Sigmoid(xs[0]))
	}, []*tensor.Tensor{xv}, fdEps, fdTol); err != nil {
		t.Fatal(err)
	}
	if err := CheckGradient(func(xs []*Value) *Value {
		return SumAll(Tanh(xs[0]))
	}, []*tensor.Tensor{xv}, fdEps, fdTol); err != nil {
		t.Fatal(err)
	}
	// Values match math.Tanh.
	got := Tanh(Const(xv)).Data
	for i, v := range xv.Data() {
		if math.Abs(got.Data()[i]-math.Tanh(v)) > 1e-12 {
			t.Fatalf("tanh(%g) = %g", v, got.Data()[i])
		}
	}
}

func TestAbs(t *testing.T) {
	x := Var(tensor.FromSlice([]float64{-2, 3}, 2))
	y := SumAll(Abs(x))
	if y.Item() != 5 {
		t.Fatalf("sum|x| = %g", y.Item())
	}
	g := MustGrad(y, []*Value{x})[0]
	if g.Data.Data()[0] != -1 || g.Data.Data()[1] != 1 {
		t.Fatalf("grad = %v", g.Data.Data())
	}
}

func TestHVPQuadratic(t *testing.T) {
	// loss = ½ xᵀAx with A = diag(2, 6) (via elementwise weights) has
	// Hessian diag(2, 6); H·v is elementwise.
	x := Var(tensor.FromSlice([]float64{1, 1}, 2))
	w := Const(tensor.FromSlice([]float64{2, 6}, 2))
	loss := Scale(SumAll(Mul(w, Mul(x, x))), 0.5)
	v := tensor.FromSlice([]float64{1, -1}, 2)
	hv, err := HVP(loss, []*Value{x}, []*tensor.Tensor{v})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv[0].Data.Data()[0]-2) > 1e-10 || math.Abs(hv[0].Data.Data()[1]+6) > 1e-10 {
		t.Fatalf("Hv = %v, want [2 -6]", hv[0].Data.Data())
	}
}

func TestHVPMatchesFiniteDifferenceOfGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	xt := tensor.Randn(rng, 0.5, 3)
	v := tensor.Randn(rng, 1, 3)

	gradAt := func(pt *tensor.Tensor) []float64 {
		x := Var(pt.Clone())
		loss := SumAll(Exp(Mul(x, x)))
		return MustGrad(loss, []*Value{x})[0].Data.Data()
	}
	x := Var(xt.Clone())
	loss := SumAll(Exp(Mul(x, x)))
	hv, err := HVP(loss, []*Value{x}, []*tensor.Tensor{v})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-5
	up := gradAt(xt.Clone().AxpyInPlace(eps, v))
	down := gradAt(xt.Clone().AxpyInPlace(-eps, v))
	for i := range up {
		numeric := (up[i] - down[i]) / (2 * eps)
		if math.Abs(hv[0].Data.Data()[i]-numeric) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("Hv[%d] = %g, numeric %g", i, hv[0].Data.Data()[i], numeric)
		}
	}
}

func TestHVPValidates(t *testing.T) {
	x := Var(tensor.Ones(2))
	loss := SumAll(Mul(x, x))
	if _, err := HVP(loss, []*Value{x}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

// A graph thousands of nodes deep must backpropagate without stack
// overflow (topological ordering is iterative).
func TestDeepGraphBackward(t *testing.T) {
	x := Var(tensor.FromSlice([]float64{1}, 1))
	y := x
	const depth = 5000
	for i := 0; i < depth; i++ {
		y = AddConst(y, 1e-6)
	}
	g := MustGrad(SumAll(y), []*Value{x})[0]
	if g.Item() != 1 {
		t.Fatalf("deep chain gradient = %g, want 1", g.Item())
	}
}

// Gradient accumulation across a wide fan-out: y = Σᵢ (x + i·ε) should
// have dy/dx equal to the fan-out width.
func TestWideFanOutAccumulation(t *testing.T) {
	x := Var(tensor.FromSlice([]float64{2}, 1))
	total := Scalar(0)
	const width = 200
	for i := 0; i < width; i++ {
		total = Add(total, AddConst(x, float64(i)))
	}
	g := MustGrad(total, []*Value{x})[0]
	if g.Item() != width {
		t.Fatalf("fan-out gradient = %g, want %d", g.Item(), width)
	}
}
