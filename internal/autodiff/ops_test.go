package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quickdrop/internal/tensor"
)

const (
	fdEps = 1e-5
	fdTol = 1e-5
)

func randT(seed int64, stddev float64, shape ...int) *tensor.Tensor {
	return tensor.Randn(rand.New(rand.NewSource(seed)), stddev, shape...)
}

func TestScalarChain(t *testing.T) {
	// y = (2x + 1)², dy/dx = 4(2x+1); at x=3, y=49, dy/dx=28.
	x := Var(tensor.FromSlice([]float64{3}, 1))
	y := PowConst(AddConst(Scale(x, 2), 1), 2)
	if y.Item() != 49 {
		t.Fatalf("y = %g, want 49", y.Item())
	}
	g := MustGrad(y, []*Value{x})[0]
	if g.Item() != 28 {
		t.Fatalf("dy/dx = %g, want 28", g.Item())
	}
}

func TestGradSharedSubexpression(t *testing.T) {
	// y = x*x + x ⇒ dy/dx = 2x + 1 (checks gradient accumulation on fan-out).
	x := Var(tensor.FromSlice([]float64{5}, 1))
	y := Add(Mul(x, x), x)
	g := MustGrad(y, []*Value{x})[0]
	if g.Item() != 11 {
		t.Fatalf("dy/dx = %g, want 11", g.Item())
	}
}

func TestGradUnusedInputIsZero(t *testing.T) {
	x := Var(tensor.FromSlice([]float64{1, 2}, 2))
	z := Var(tensor.FromSlice([]float64{4}, 1))
	y := SumAll(x)
	gs := MustGrad(y, []*Value{x, z})
	if gs[1].Data.Sum() != 0 {
		t.Fatal("unused input must receive zero gradient")
	}
	if !gs[1].Data.SameShape(z.Data) {
		t.Fatal("zero gradient must match input shape")
	}
}

func TestGradRejectsNonScalar(t *testing.T) {
	x := Var(tensor.Ones(2, 2))
	if _, err := Grad(x, []*Value{x}); err == nil {
		t.Fatal("expected error for non-scalar output")
	}
}

func TestConstantsDoNotTrack(t *testing.T) {
	a := Const(tensor.Ones(2))
	b := Const(tensor.Ones(2))
	c := Mul(a, b)
	if c.RequiresGrad() {
		t.Fatal("op on constants must not require grad")
	}
}

func TestDetachStopsGradient(t *testing.T) {
	x := Var(tensor.FromSlice([]float64{2}, 1))
	y := Mul(Detach(x), x) // d/dx = detach(x) = 2, not 2x=4
	g := MustGrad(y, []*Value{x})[0]
	if g.Item() != 2 {
		t.Fatalf("grad through Detach = %g, want 2", g.Item())
	}
}

// Finite-difference checks for each primitive and common compositions.
func TestGradientNumericAgreement(t *testing.T) {
	tests := []struct {
		name   string
		shapes [][]int
		f      func(xs []*Value) *Value
		seed   int64
	}{
		{"add", [][]int{{2, 3}, {2, 3}}, func(xs []*Value) *Value { return SumAll(Add(xs[0], xs[1])) }, 1},
		{"mul", [][]int{{2, 3}, {2, 3}}, func(xs []*Value) *Value { return SumAll(Mul(xs[0], xs[1])) }, 2},
		{"div", [][]int{{4}, {4}}, func(xs []*Value) *Value {
			return SumAll(Div(xs[0], AddConst(PowConst(xs[1], 2), 1)))
		}, 3},
		{"scale-neg", [][]int{{3}}, func(xs []*Value) *Value { return SumAll(Neg(Scale(xs[0], 2.5))) }, 4},
		{"pow3", [][]int{{4}}, func(xs []*Value) *Value { return SumAll(PowConst(xs[0], 3)) }, 5},
		{"exp", [][]int{{4}}, func(xs []*Value) *Value { return SumAll(Exp(xs[0])) }, 6},
		{"log-of-positive", [][]int{{4}}, func(xs []*Value) *Value {
			return SumAll(Log(AddConst(PowConst(xs[0], 2), 1)))
		}, 7},
		{"sqrt-of-positive", [][]int{{4}}, func(xs []*Value) *Value {
			return SumAll(Sqrt(AddConst(PowConst(xs[0], 2), 0.5)))
		}, 8},
		{"matmul", [][]int{{3, 4}, {4, 2}}, func(xs []*Value) *Value { return SumAll(MatMul(xs[0], xs[1])) }, 9},
		{"matmul-quadratic", [][]int{{2, 3}}, func(xs []*Value) *Value {
			return SumAll(MatMul(xs[0], Transpose(xs[0])))
		}, 10},
		{"transpose", [][]int{{2, 3}}, func(xs []*Value) *Value {
			return SumAll(Mul(Transpose(xs[0]), Transpose(xs[0])))
		}, 11},
		{"reshape", [][]int{{2, 6}}, func(xs []*Value) *Value {
			return SumAll(PowConst(Reshape(xs[0], 3, 4), 2))
		}, 12},
		{"sumaxes-broadcast", [][]int{{3, 4}}, func(xs []*Value) *Value {
			m := Scale(SumAxes(xs[0], 1), 0.25) // row means [3,1]
			return SumAll(PowConst(Sub(xs[0], BroadcastTo(m, 3, 4)), 2))
		}, 13},
		{"mean", [][]int{{5}}, func(xs []*Value) *Value { return Mean(PowConst(xs[0], 2)) }, 14},
		{"expand", [][]int{{1}}, func(xs []*Value) *Value {
			return SumAll(Mul(Expand(xs[0], 2, 3), Expand(xs[0], 2, 3)))
		}, 15},
		{"dot-cosine", [][]int{{4}, {4}}, func(xs []*Value) *Value {
			// 1 - cosine similarity, the distillation distance kernel.
			num := Dot(xs[0], xs[1])
			den := Sqrt(AddConst(Mul(Dot(xs[0], xs[0]), Dot(xs[1], xs[1])), 1e-6))
			return Sub(Scalar(1), Div(num, den))
		}, 16},
		{"im2col", [][]int{{1, 4, 4, 2}}, func(xs []*Value) *Value {
			g := tensor.ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 4, InW: 4, Channel: 2}
			return SumAll(PowConst(Im2col(xs[0], g), 2))
		}, 17},
		{"col2im", [][]int{{4, 4}}, func(xs []*Value) *Value {
			g := tensor.ConvGeom{Kernel: 2, Stride: 1, Pad: 0, InH: 3, InW: 3, Channel: 1}
			return SumAll(PowConst(Col2im(xs[0], 1, g), 2))
		}, 18},
		{"relu", [][]int{{6}}, func(xs []*Value) *Value {
			// Offset keeps values away from the kink where FD is invalid.
			return SumAll(PowConst(ReLU(AddConst(xs[0], 0.3)), 2))
		}, 19},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			xs := make([]*tensor.Tensor, len(tc.shapes))
			for i, sh := range tc.shapes {
				xs[i] = randT(tc.seed*100+int64(i), 1, sh...)
			}
			if err := CheckGradient(tc.f, xs, fdEps, fdTol); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Second-order: d²/dx² of known functions via Grad-of-Grad.
func TestSecondOrderScalar(t *testing.T) {
	// y = x³ ⇒ y'' = 6x; at x = 2 → 12.
	x := Var(tensor.FromSlice([]float64{2}, 1))
	y := PowConst(x, 3)
	dy := MustGrad(y, []*Value{x})[0]
	if math.Abs(dy.Item()-12) > 1e-10 {
		t.Fatalf("y' = %g, want 12", dy.Item())
	}
	d2y := MustGrad(dy, []*Value{x})[0]
	if math.Abs(d2y.Item()-12) > 1e-10 {
		t.Fatalf("y'' = %g, want 12", d2y.Item())
	}
}

func TestSecondOrderMixedPartial(t *testing.T) {
	// f = x²y ⇒ ∂f/∂x = 2xy, ∂²f/∂x∂y = 2x. At x=3, y=5: 6.
	x := Var(tensor.FromSlice([]float64{3}, 1))
	y := Var(tensor.FromSlice([]float64{5}, 1))
	f := Mul(Mul(x, x), y)
	fx := MustGrad(f, []*Value{x})[0]
	if fx.Item() != 30 {
		t.Fatalf("∂f/∂x = %g, want 30", fx.Item())
	}
	fxy := MustGrad(fx, []*Value{y})[0]
	if fxy.Item() != 6 {
		t.Fatalf("∂²f/∂x∂y = %g, want 6", fxy.Item())
	}
}

// The signature QuickDrop computation: gradient of a function of a gradient.
// With L(θ) = ½‖θ⊙s‖², ∇θL = θ⊙s², and for m(s) = Σ∇θL the gradient w.r.t.
// s is 2θ⊙s.
func TestGradOfGradWrtOtherVariable(t *testing.T) {
	theta := Var(tensor.FromSlice([]float64{1, 2, 3}, 3))
	s := Var(tensor.FromSlice([]float64{0.5, -1, 2}, 3))
	loss := Scale(SumAll(PowConst(Mul(theta, s), 2)), 0.5)
	gradTheta := MustGrad(loss, []*Value{theta})[0]
	m := SumAll(gradTheta)
	gs := MustGrad(m, []*Value{s})[0]
	want := []float64{2 * 1 * 0.5, 2 * 2 * -1, 2 * 3 * 2}
	for i, w := range want {
		if math.Abs(gs.Data.Data()[i]-w) > 1e-10 {
			t.Fatalf("grad-of-grad elem %d = %g, want %g", i, gs.Data.Data()[i], w)
		}
	}
}

// Numeric check of a second-order quantity: h(x) = f'(x) for f = exp(x²),
// compared against finite differences of the analytic first derivative.
func TestSecondOrderNumeric(t *testing.T) {
	first := func(xv float64) float64 {
		x := Var(tensor.FromSlice([]float64{xv}, 1))
		f := Exp(PowConst(x, 2))
		return MustGrad(f, []*Value{x})[0].Item()
	}
	xv := 0.7
	x := Var(tensor.FromSlice([]float64{xv}, 1))
	f := Exp(PowConst(x, 2))
	df := MustGrad(f, []*Value{x})[0]
	d2f := MustGrad(df, []*Value{x})[0]
	numeric := (first(xv+fdEps) - first(xv-fdEps)) / (2 * fdEps)
	if math.Abs(d2f.Item()-numeric) > 1e-5*(1+math.Abs(numeric)) {
		t.Fatalf("d²f = %g, numeric %g", d2f.Item(), numeric)
	}
}

// Property: Grad of a linear functional w.r.t. its input recovers the
// coefficient tensor exactly, regardless of shape.
func TestLinearGradProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		coef := tensor.Randn(r, 1, n)
		x := Var(tensor.Randn(r, 1, n))
		y := Dot(Const(coef), x)
		g := MustGrad(y, []*Value{x})[0]
		for i := range coef.Data() {
			if math.Abs(g.Data.Data()[i]-coef.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradients are linear in the output — Grad(a·f + b·g) =
// a·Grad(f) + b·Grad(g).
func TestGradLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := r.NormFloat64(), r.NormFloat64()
		xt := tensor.Randn(r, 1, 4)

		xm := Var(xt.Clone())
		mixed := Add(Scale(SumAll(PowConst(xm, 2)), a), Scale(SumAll(Exp(xm)), b))
		gmix := MustGrad(mixed, []*Value{xm})[0].Data.Data()

		x := Var(xt.Clone())
		g1 := MustGrad(SumAll(PowConst(x, 2)), []*Value{x})[0]
		x2 := Var(xt.Clone())
		g2 := MustGrad(SumAll(Exp(x2)), []*Value{x2})[0]
		for i := range gmix {
			want := a*g1.Data.Data()[i] + b*g2.Data.Data()[i]
			if math.Abs(gmix[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestItemPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Const(tensor.Ones(2)).Item()
}

func TestExpandValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Expand(Const(tensor.Ones(2)), 2, 2)
}
