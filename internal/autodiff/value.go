// Package autodiff implements define-by-run reverse-mode automatic
// differentiation over tensor.Tensor values.
//
// The distinguishing property — required by QuickDrop's gradient-matching
// distillation — is support for higher-order derivatives: every primitive's
// vector-Jacobian product (VJP) is itself expressed in terms of autodiff
// primitives, so the backward pass builds a differentiable graph. Calling
// Grad on the output of a previous Grad therefore yields exact second-order
// gradients, which is what ∂d(∇θL^S, ∇θL^D)/∂S needs.
package autodiff

import (
	"fmt"

	"quickdrop/internal/tensor"
)

// Value is a node in the computation graph: an eagerly computed tensor plus
// the recipe to backpropagate through the operation that produced it.
//
// Nodes with one or two inputs — every primitive except ConcatRows — store
// them in the inline inputsArr and return their input gradients as plain
// multiple return values. VJP functions receive the node itself, so they
// read their operands from it instead of capturing them: almost every
// primitive's VJP is a non-capturing func literal, which Go places in
// static storage. Building and backpropagating a node therefore costs one
// allocation for the Value and whatever the eager kernel allocates.
type Value struct {
	// Data holds the node's computed tensor. It must not be mutated after
	// the node participates in a graph.
	Data *tensor.Tensor

	op     string
	inputs []*Value
	vjp1   func(n, g *Value) *Value
	vjp2   func(n, g *Value) (*Value, *Value)
	vjpN   func(n, g *Value) []*Value
	// c holds the scalar constant of constant-parameterized ops (Scale,
	// PowConst, AddConst), letting their VJPs stay non-capturing.
	c            float64
	requiresGrad bool
	inputsArr    [2]*Value
	// dataInline is the storage for Data on interior nodes: ops pass
	// &dataInline as the destination header to the Into kernels (or the
	// view constructors), so node + tensor header are one allocation.
	dataInline tensor.Tensor
}

// scratch returns the node's inline tensor header for an op to compute its
// result into. Valid only before the node's Data is set.
func (v *Value) scratch() *tensor.Tensor { return &v.dataInline }

// Const wraps a tensor as a constant leaf (no gradient flows into it).
func Const(t *tensor.Tensor) *Value {
	return &Value{Data: t, op: "const"}
}

// Var wraps a tensor as a differentiable leaf.
func Var(t *tensor.Tensor) *Value {
	return &Value{Data: t, op: "var", requiresGrad: true}
}

// Scalar returns a constant scalar node of shape [1].
func Scalar(v float64) *Value {
	return Const(tensor.FromSlice([]float64{v}, 1))
}

// RequiresGrad reports whether gradients flow into this node.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// Op returns the name of the operation that produced this node.
func (v *Value) Op() string { return v.op }

// Shape returns the shape of the node's tensor.
func (v *Value) Shape() []int { return v.Data.Shape() }

// Item returns the single element of a scalar node.
func (v *Value) Item() float64 {
	if v.Data.Len() != 1 {
		panic(fmt.Sprintf("autodiff: Item on non-scalar %s", v.Data.ShapeString()))
	}
	return v.Data.Data()[0]
}

// newNode1 constructs a one-input interior node. requiresGrad is inherited
// from the input; constant subgraphs collapse to leaves so the backward
// traversal never visits them.
func newNode1(op string, data *tensor.Tensor, a *Value, vjp func(n, g *Value) *Value) *Value {
	if !a.requiresGrad {
		return &Value{Data: data, op: op}
	}
	v := &Value{Data: data, op: op, vjp1: vjp, requiresGrad: true}
	v.inputsArr[0] = a
	v.inputs = v.inputsArr[:1]
	return v
}

// newNode1c is newNode1 for ops parameterized by a scalar constant.
func newNode1c(op string, data *tensor.Tensor, a *Value, c float64, vjp func(n, g *Value) *Value) *Value {
	v := newNode1(op, data, a, vjp)
	v.c = c
	return v
}

// newNode2 constructs a two-input interior node; see newNode1.
func newNode2(op string, data *tensor.Tensor, a, b *Value, vjp func(n, g *Value) (*Value, *Value)) *Value {
	if !a.requiresGrad && !b.requiresGrad {
		return &Value{Data: data, op: op}
	}
	v := &Value{Data: data, op: op, vjp2: vjp, requiresGrad: true}
	v.inputsArr[0], v.inputsArr[1] = a, b
	v.inputs = v.inputsArr[:2]
	return v
}

// newNodeN constructs a variadic-input interior node (ConcatRows).
func newNodeN(op string, data *tensor.Tensor, inputs []*Value, vjp func(n, g *Value) []*Value) *Value {
	rg := false
	for _, in := range inputs {
		if in.requiresGrad {
			rg = true
			break
		}
	}
	if !rg {
		return &Value{Data: data, op: op}
	}
	return &Value{Data: data, op: op, inputs: inputs, vjpN: vjp, requiresGrad: true}
}

// Grad computes ∂out/∂wrt[i] for a scalar-valued out. The returned values
// are themselves graph nodes, so they can be differentiated again
// (higher-order gradients). Inputs that out does not depend on receive a
// zero gradient of matching shape.
func Grad(out *Value, wrt []*Value) ([]*Value, error) {
	if out.Data.Len() != 1 {
		return nil, fmt.Errorf("autodiff: Grad requires a scalar output, got shape %s", out.Data.ShapeString())
	}
	if !out.requiresGrad {
		zs := make([]*Value, len(wrt))
		for i, w := range wrt {
			zs[i] = Const(tensor.NewLike(w.Data))
		}
		return zs, nil
	}

	// Topological order of the subgraph reachable from out that requires
	// gradient, via iterative DFS (models can be deep).
	order := topoOrder(out)

	grads := make(map[*Value]*Value, len(order))
	grads[out] = Const(tensor.Ones(1))

	// Traverse in reverse topological order, accumulating VJPs.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		g, ok := grads[n]
		if !ok {
			continue
		}
		var err error
		switch {
		case n.vjp1 != nil:
			err = accumulate(grads, n, n.inputs[0], n.vjp1(n, g))
		case n.vjp2 != nil:
			ga, gb := n.vjp2(n, g)
			if err = accumulate(grads, n, n.inputs[0], ga); err == nil {
				err = accumulate(grads, n, n.inputs[1], gb)
			}
		case n.vjpN != nil:
			inGrads := n.vjpN(n, g)
			if len(inGrads) != len(n.inputs) {
				return nil, fmt.Errorf("autodiff: op %q returned %d gradients for %d inputs", n.op, len(inGrads), len(n.inputs))
			}
			for j, in := range n.inputs {
				if err = accumulate(grads, n, in, inGrads[j]); err != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, err
		}
	}

	res := make([]*Value, len(wrt))
	for i, w := range wrt {
		if g, ok := grads[w]; ok {
			res[i] = g
		} else {
			res[i] = Const(tensor.NewLike(w.Data))
		}
	}
	return res, nil
}

// accumulate folds one input gradient into the running per-node gradient
// map, validating its shape against the input.
func accumulate(grads map[*Value]*Value, n, in *Value, ig *Value) error {
	if ig == nil || !in.requiresGrad {
		return nil
	}
	if !ig.Data.SameShape(in.Data) {
		return fmt.Errorf("autodiff: op %q produced gradient shape %s for input shape %s", n.op, ig.Data.ShapeString(), in.Data.ShapeString())
	}
	if acc, ok := grads[in]; ok {
		grads[in] = Add(acc, ig)
	} else {
		grads[in] = ig
	}
	return nil
}

// MustGrad is Grad but panics on error; convenient inside training loops
// where the graph shape is fixed and an error indicates a programming bug.
func MustGrad(out *Value, wrt []*Value) []*Value {
	gs, err := Grad(out, wrt)
	if err != nil {
		panic(err)
	}
	return gs
}

// topoOrder returns nodes reachable from root that require gradients, in
// topological order (inputs before outputs).
func topoOrder(root *Value) []*Value {
	var order []*Value
	visited := make(map[*Value]bool)
	type frame struct {
		node *Value
		next int
	}
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.inputs) {
			in := f.node.inputs[f.next]
			f.next++
			if !visited[in] && in.requiresGrad {
				visited[in] = true
				stack = append(stack, frame{node: in})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}
