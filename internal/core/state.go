package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"quickdrop/internal/data"
	"quickdrop/internal/distill"
)

// State serialization lets a deployment persist everything needed to
// serve future unlearning requests — the global model, every client's
// synthetic dataset with its group structure, and the forget ledger —
// and restore it after a restart. The original client datasets are NOT
// stored (they never leave the clients); a restored System can unlearn,
// recover and relearn, but recovery augmentation needs the live client
// data to be re-attached, which NewSystem already requires.
//
// Format (little endian):
//
//	uint32 magic "QDST"
//	model parameters (nn.Model.WriteTo)
//	uint32 clientCount
//	per client: uint8 hasSynthetic;
//	  dataset (data.Dataset.WriteTo)
//	  uint32 groupCount; per group: class, group, realLen, real…, synLen, syn…
//	forget ledger: removed classes, clients, per-client samples,
//	  per-client removed groups
const stateMagic = 0x51445354 // "QDST"

// SaveState serializes the trained system's durable state.
func (s *System) SaveState(w io.Writer) error {
	if !s.trained {
		return fmt.Errorf("core: SaveState before Train")
	}
	wr := &stateWriter{w: w}
	wr.u32(stateMagic)
	if _, err := s.Model.WriteTo(w); err != nil {
		return err
	}
	wr.u32(uint32(s.Clients.NumClients()))
	for i := 0; i < s.Clients.NumClients(); i++ {
		syn := s.Synthetic(i)
		if syn == nil {
			wr.u8(0)
			continue
		}
		wr.u8(1)
		if wr.err == nil {
			_, wr.err = syn.WriteTo(w)
		}
		writeGrouping(wr, s.Matcher.Groupings[i])
	}
	// Forget ledger.
	wr.ints(s.forget.RemovedClasses())
	var removedClients []int
	for i := 0; i < s.Clients.NumClients(); i++ {
		if s.forget.ClientRemoved(i) {
			removedClients = append(removedClients, i)
		}
	}
	wr.ints(removedClients)
	wr.u32(uint32(s.Clients.NumClients()))
	for i := 0; i < s.Clients.NumClients(); i++ {
		wr.ints(sortedIntSet(s.forget.RemovedSamples(i)))
	}
	wr.u32(uint32(s.Clients.NumClients()))
	for i := 0; i < s.Clients.NumClients(); i++ {
		keys := make([]distill.GroupKey, 0, len(s.removedGroups[i]))
		for k := range s.removedGroups[i] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].Class != keys[b].Class {
				return keys[a].Class < keys[b].Class
			}
			return keys[a].Group < keys[b].Group
		})
		wr.u32(uint32(len(keys)))
		for _, k := range keys {
			wr.u32(uint32(k.Class))
			wr.u32(uint32(k.Group))
		}
	}
	return wr.err
}

// LoadState restores state saved by SaveState into a freshly constructed
// (untrained) System with the same configuration and client layout. After
// loading, the system behaves as if Train had run in this process.
func (s *System) LoadState(r io.Reader) error {
	if err := s.acquire("LoadState"); err != nil {
		return err
	}
	defer s.release()
	if s.trained {
		return fmt.Errorf("core: LoadState on an already-trained system")
	}
	rd := &stateReader{r: r}
	if m := rd.u32(); rd.err == nil && m != stateMagic {
		return fmt.Errorf("core: bad state magic %#x", m)
	}
	if rd.err != nil {
		return rd.err
	}
	if err := s.Model.LoadFrom(r); err != nil {
		return err
	}
	n := int(rd.u32())
	if rd.err != nil {
		return rd.err
	}
	if n != s.Clients.NumClients() {
		return fmt.Errorf("core: state has %d clients, system has %d", n, s.Clients.NumClients())
	}
	s.Matcher = &distill.Matcher{
		Cfg:       s.Cfg.Distill,
		Sets:      make(map[int]*data.Dataset, n),
		Groupings: make(map[int]*distill.Grouping, n),
		Distance:  distill.MatchDistance,
	}
	if s.Cfg.DistillDistance != nil {
		s.Matcher.Distance = s.Cfg.DistillDistance
	}
	for i := 0; i < n; i++ {
		if rd.u8() == 0 {
			continue
		}
		if rd.err != nil {
			return rd.err
		}
		syn, err := data.ReadDataset(r)
		if err != nil {
			return fmt.Errorf("core: client %d synthetic set: %w", i, err)
		}
		s.Matcher.Sets[i] = syn
		g, err := readGrouping(rd)
		if err != nil {
			return fmt.Errorf("core: client %d grouping: %w", i, err)
		}
		s.Matcher.Groupings[i] = g
	}
	// Forget ledger.
	for _, c := range rd.intsList() {
		s.forget.Mark(Request{Kind: ClassLevel, Class: c}, true)
	}
	for _, c := range rd.intsList() {
		s.forget.Mark(Request{Kind: ClientLevel, Client: c}, true)
	}
	if cn := int(rd.u32()); rd.err == nil && cn == s.Clients.NumClients() {
		for i := 0; i < cn; i++ {
			if samples := rd.intsList(); len(samples) > 0 {
				s.forget.Mark(Request{Kind: SampleLevel, Client: i, Samples: samples}, true)
			}
		}
	} else if rd.err == nil {
		return fmt.Errorf("core: sample ledger client count mismatch")
	}
	if cn := int(rd.u32()); rd.err == nil && cn == s.Clients.NumClients() {
		for i := 0; i < cn; i++ {
			k := int(rd.u32())
			for j := 0; j < k && rd.err == nil; j++ {
				key := distill.GroupKey{Class: int(rd.u32()), Group: int(rd.u32())}
				if s.removedGroups[i] == nil {
					s.removedGroups[i] = make(map[distill.GroupKey]bool)
				}
				s.removedGroups[i][key] = true
			}
		}
	} else if rd.err == nil {
		return fmt.Errorf("core: group ledger client count mismatch")
	}
	if rd.err != nil {
		return rd.err
	}
	s.trained = true
	return nil
}

func writeGrouping(wr *stateWriter, g *distill.Grouping) {
	if g == nil {
		wr.u32(0)
		return
	}
	keys := g.Keys()
	wr.u32(uint32(len(keys)))
	for _, k := range keys {
		wr.u32(uint32(k.Class))
		wr.u32(uint32(k.Group))
		wr.ints(g.Real[k])
		wr.ints(g.Syn[k])
	}
}

func readGrouping(rd *stateReader) (*distill.Grouping, error) {
	n := int(rd.u32())
	if rd.err != nil {
		return nil, rd.err
	}
	if n == 0 {
		return nil, nil
	}
	g := &distill.Grouping{
		Real: make(map[distill.GroupKey][]int, n),
		Syn:  make(map[distill.GroupKey][]int, n),
	}
	for i := 0; i < n; i++ {
		key := distill.GroupKey{Class: int(rd.u32()), Group: int(rd.u32())}
		g.Real[key] = rd.intsList()
		g.Syn[key] = rd.intsList()
		if rd.err != nil {
			return nil, rd.err
		}
	}
	return g, nil
}

func sortedIntSet(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// stateWriter/stateReader carry the first error through a sequence of
// fixed-width writes, keeping the codec readable.
type stateWriter struct {
	w   io.Writer
	err error
}

func (s *stateWriter) u32(v uint32) {
	if s.err == nil {
		s.err = binary.Write(s.w, binary.LittleEndian, v)
	}
}

func (s *stateWriter) u8(v uint8) {
	if s.err == nil {
		s.err = binary.Write(s.w, binary.LittleEndian, v)
	}
}

func (s *stateWriter) ints(v []int) {
	s.u32(uint32(len(v)))
	for _, x := range v {
		s.u32(uint32(x))
	}
}

type stateReader struct {
	r   io.Reader
	err error
}

func (s *stateReader) u32() uint32 {
	var v uint32
	if s.err == nil {
		s.err = binary.Read(s.r, binary.LittleEndian, &v)
	}
	return v
}

func (s *stateReader) u8() uint8 {
	var v uint8
	if s.err == nil {
		s.err = binary.Read(s.r, binary.LittleEndian, &v)
	}
	return v
}

func (s *stateReader) intsList() []int {
	n := int(s.u32())
	if s.err != nil || n == 0 {
		return nil
	}
	if n > 1<<26 {
		s.err = fmt.Errorf("core: unreasonable list length %d", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(s.u32())
	}
	return out
}
