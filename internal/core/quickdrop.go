// Package core implements the end-to-end QuickDrop workflow (paper Fig. 1):
//
//  1. federated training with in-situ synthetic data generation,
//  2. augmentation of the synthetic sets with a few original samples and
//     optional fine-tuning,
//  3. unlearning via stochastic gradient ascent on the synthetic forget set,
//  4. recovery via SGD on the remaining synthetic data, and
//  5. relearning of previously erased knowledge from the synthetic data.
//
// It supports class-level and client-level requests, sequential request
// streams, and full cost accounting.
package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"quickdrop/internal/data"
	"quickdrop/internal/distill"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/telemetry"
	"quickdrop/internal/telemetry/health"
)

// RequestKind distinguishes the two unlearning granularities QuickDrop
// supports (paper §2.2; sample-level is future work, §5.1).
type RequestKind int

const (
	// ClassLevel erases a class across all clients holding it.
	ClassLevel RequestKind = iota + 1
	// ClientLevel erases one client's entire contribution.
	ClientLevel
	// SampleLevel erases specific samples of one client. The paper leaves
	// this as future work (§5.1) and sketches the approach implemented
	// here: distill per-class *subsets* independently (distill.Config
	// .Groups > 1) and unlearn at subset granularity.
	SampleLevel
)

// String implements fmt.Stringer.
func (k RequestKind) String() string {
	switch k {
	case ClassLevel:
		return "class-level"
	case ClientLevel:
		return "client-level"
	case SampleLevel:
		return "sample-level"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Request identifies what to unlearn (or relearn).
type Request struct {
	Kind RequestKind
	// Class is the target class for ClassLevel requests.
	Class int
	// Client is the target client index for ClientLevel and SampleLevel
	// requests.
	Client int
	// Samples are indices into the target client's local dataset for
	// SampleLevel requests.
	Samples []int
}

// String implements fmt.Stringer.
func (r Request) String() string {
	switch r.Kind {
	case ClassLevel:
		return fmt.Sprintf("unlearn class %d", r.Class)
	case ClientLevel:
		return fmt.Sprintf("unlearn client %d", r.Client)
	case SampleLevel:
		return fmt.Sprintf("unlearn %d samples of client %d", len(r.Samples), r.Client)
	default:
		return "invalid request"
	}
}

// PhaseParams configures one FedAvg phase of the pipeline.
type PhaseParams struct {
	Rounds        int
	LocalSteps    int
	BatchSize     int
	LR            float64
	Participation float64
	// SampleK, when positive, runs the phase in the registry's sampled
	// mode: each round draws K participants instead of enumerating the
	// cohort (mutually exclusive with Participation; see
	// fl.PhaseConfig.SampleK). Only the training phase consults it —
	// unlearning and recovery operate on the synthetic shards, which
	// are as small as the cohort of distilled clients.
	SampleK int
}

// Config assembles every knob of the QuickDrop system. Defaults follow the
// paper's hyperparameters (§4.1) scaled to this reproduction's substrate.
type Config struct {
	Arch nn.ConvNetConfig
	// Train configures initial FL training (paper: K=200, T=50, b=256,
	// η=0.01 — scaled down here).
	Train PhaseParams
	// Unlearn configures SGA rounds (paper: 1 round, η=0.02).
	Unlearn PhaseParams
	// Recover configures recovery rounds (paper: 2 rounds, η=0.01).
	Recover PhaseParams
	// Relearn configures relearning rounds on the synthetic forget set.
	Relearn PhaseParams
	// Distill holds the gradient-matching hyperparameters.
	Distill distill.Config
	// DistillDistance overrides the gradient-matching objective
	// (default distill.MatchDistance; distill.L2Distance for ablations).
	DistillDistance distill.DistanceFunc
	// Augment mixes 1:1 original samples into recovery sets (§3.3.1).
	Augment bool
	// FineTune, when non-nil, refines synthetic data after training
	// (§3.3.2); its Arch/Match fields are filled from this config if zero.
	FineTune *distill.FineTuneConfig
	// Observer, when set, is invoked with the stage name ("unlearn",
	// "recover", "relearn") after each pipeline stage completes, so
	// harnesses can evaluate the model stage-by-stage as the paper's
	// tables do.
	Observer func(stage string)
	// Telemetry, if set, instruments every phase the system runs (metrics,
	// spans, unlearning-request counts). Nil disables observability at
	// zero cost and changes no numerics either way.
	Telemetry *telemetry.Pipeline
	// Health, if set, watches every phase for numeric divergence (NaN/Inf
	// parameters, exploding gradients, loss spikes). When the watchdog
	// trips, the running phase aborts with an error unwrapping to
	// health.ErrUnhealthy; like Telemetry, a nil monitor costs nothing
	// and the numerics are bitwise identical either way.
	Health *health.Monitor
	// PoisonPhase is a fault-injection hook for exercising the health
	// watchdog end to end: naming a phase ("unlearn") plants a NaN in the
	// model's first parameter immediately before that phase runs. Never
	// set in production; see scripts/health_smoke.sh.
	PoisonPhase string
	Seed        int64
}

// DefaultConfig returns a configuration for the given architecture that
// keeps the paper's phase structure (1 unlearn round, 2 recovery rounds)
// with CPU-friendly training volume.
func DefaultConfig(arch nn.ConvNetConfig) Config {
	return Config{
		Arch:    arch,
		Train:   PhaseParams{Rounds: 15, LocalSteps: 5, BatchSize: 16, LR: 0.1},
		Unlearn: PhaseParams{Rounds: 1, LocalSteps: 5, BatchSize: 16, LR: 0.02},
		Recover: PhaseParams{Rounds: 2, LocalSteps: 5, BatchSize: 16, LR: 0.01},
		Relearn: PhaseParams{Rounds: 2, LocalSteps: 5, BatchSize: 16, LR: 0.01},
		Distill: distill.DefaultConfig(),
		Augment: true,
		Seed:    1,
	}
}

// Report summarizes one unlearning (or relearning) request execution.
type Report struct {
	Request Request
	// Unlearn is the cost of the SGA stage (zero for relearning).
	Unlearn eval.Cost
	// Recover is the cost of the recovery (or relearning) stage.
	Recover eval.Cost
	// Total is the combined cost.
	Total eval.Cost
}

// System is a QuickDrop deployment: a global model, the clients' original
// datasets behind a registry, and — after Train — their synthetic
// counterparts.
type System struct {
	Cfg     Config
	Model   *nn.Model
	Clients fl.ClientRegistry
	// Matcher owns the per-client synthetic sets after Train.
	Matcher *distill.Matcher
	// TrainResult records the cost of initial training.
	TrainResult fl.PhaseResult
	// Counter accumulates gradient evaluations across all phases.
	Counter optim.Counter

	rng *rand.Rand
	// busy serializes pipeline operations: a System owns one global
	// model and one RNG stream, so a second concurrent Train / Unlearn
	// / Recover / Relearn is rejected with ErrBusy instead of silently
	// corrupting both (see batch.go).
	busy atomic.Bool
	// forget tracks the currently-unlearned classes and clients so that
	// sequential requests exclude already-unlearned knowledge from
	// recovery, and relearning can restore it.
	forget *Tracker
	// removedGroups tracks, per client, the sub-class distillation groups
	// whose synthetic data has been unlearned (sample-level requests).
	removedGroups map[int]map[distill.GroupKey]bool
	trained       bool
}

// NewSystem validates the configuration and assembles a system.
func NewSystem(cfg Config, clients fl.ClientRegistry) (*System, error) {
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Distill.Validate(); err != nil {
		return nil, err
	}
	if clients == nil || clients.NumClients() == 0 {
		return nil, fmt.Errorf("core: no clients")
	}
	nonEmpty := 0
	for i := 0; i < clients.NumClients(); i++ {
		if clients.ShardLen(i) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		return nil, fmt.Errorf("core: all clients are empty")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &System{
		Cfg:           cfg,
		Model:         nn.NewConvNet(cfg.Arch, rng),
		Clients:       clients,
		rng:           rng,
		forget:        NewTracker(),
		removedGroups: make(map[int]map[distill.GroupKey]bool),
	}, nil
}

// Train runs steps 1 and 2 of the workflow: FL training with in-situ
// distillation, then augmentation and optional fine-tuning of the
// synthetic sets.
func (s *System) Train() (fl.PhaseResult, error) {
	if err := s.acquire("Train"); err != nil {
		return fl.PhaseResult{}, err
	}
	defer s.release()
	if s.trained {
		return fl.PhaseResult{}, fmt.Errorf("core: system already trained")
	}
	s.Matcher = distill.NewMatcher(s.Cfg.Distill, s.Clients, s.rng)
	s.Matcher.Telemetry = s.Cfg.Telemetry
	s.Matcher.Health = s.Cfg.Health
	if s.Cfg.DistillDistance != nil {
		s.Matcher.Distance = s.Cfg.DistillDistance
	}
	res, err := fl.RunPhaseRegistry(s.Model, s.Clients, fl.PhaseConfig{
		Rounds:        s.Cfg.Train.Rounds,
		LocalSteps:    s.Cfg.Train.LocalSteps,
		BatchSize:     s.Cfg.Train.BatchSize,
		LR:            s.Cfg.Train.LR,
		Participation: s.Cfg.Train.Participation,
		SampleK:       s.Cfg.Train.SampleK,
		Hook:          s.Matcher.Hook(),
		Counter:       &s.Counter,
		Telemetry:     s.Cfg.Telemetry,
		Health:        s.Cfg.Health,
		Phase:         "train",
	}, s.rng)
	if err != nil {
		return res, err
	}
	s.TrainResult = res
	if s.Cfg.FineTune != nil {
		if err := s.fineTuneAll(); err != nil {
			return res, err
		}
	}
	s.trained = true
	return res, nil
}

func (s *System) fineTuneAll() error {
	ft := *s.Cfg.FineTune
	if ft.Arch.InputH == 0 {
		ft.Arch = s.Cfg.Arch
	}
	if ft.Match.Scale == 0 {
		ft.Match = s.Cfg.Distill
	}
	for id, syn := range s.Matcher.Sets {
		counter, err := distill.FineTune(syn, s.Clients.Shard(id), ft, s.rng)
		if err != nil {
			return fmt.Errorf("core: fine-tune client %d: %w", id, err)
		}
		s.Counter.Add(counter)
	}
	return nil
}

// Synthetic returns client i's synthetic dataset (nil before Train or for
// empty clients).
func (s *System) Synthetic(i int) *data.Dataset {
	if s.Matcher == nil {
		return nil
	}
	return s.Matcher.Sets[i]
}

// forgetShards returns, per client, the synthetic data covered by the
// request: S_ic for class-level, S_i for client-level (paper §3.1).
func (s *System) forgetShards(req Request) ([]*data.Dataset, error) {
	shards := make([]*data.Dataset, s.Clients.NumClients())
	total := 0
	switch req.Kind {
	case ClassLevel:
		if req.Class < 0 || req.Class >= s.Model.Classes {
			return nil, fmt.Errorf("core: class %d out of range", req.Class)
		}
		for i := range shards {
			if syn := s.Synthetic(i); syn != nil && !s.forget.ClientRemoved(i) {
				shards[i] = syn.OfClass(req.Class)
				total += shards[i].Len()
			}
		}
	case ClientLevel:
		if req.Client < 0 || req.Client >= s.Clients.NumClients() {
			return nil, fmt.Errorf("core: client %d out of range", req.Client)
		}
		if syn := s.Synthetic(req.Client); syn != nil {
			shards[req.Client] = s.activeSubset(req.Client, syn)
			total += shards[req.Client].Len()
		}
	case SampleLevel:
		groups, _, err := s.resolveSampleGroups(req)
		if err != nil {
			return nil, err
		}
		syn := s.Synthetic(req.Client)
		grouping := s.Matcher.Groupings[req.Client]
		var idx []int
		for _, key := range groups {
			idx = append(idx, grouping.Syn[key]...)
		}
		shards[req.Client] = syn.Subset(idx)
		total += len(idx)
	default:
		return nil, fmt.Errorf("core: invalid request kind %v", req.Kind)
	}
	if total == 0 {
		return nil, fmt.Errorf("core: request %v matches no synthetic data", req)
	}
	return shards, nil
}

// activeSubset filters a synthetic set down to data that has not been
// unlearned: it drops removed classes and the synthetic samples of
// removed sub-class groups.
func (s *System) activeSubset(client int, syn *data.Dataset) *data.Dataset {
	groupExcluded := make(map[int]bool)
	if grouping := s.Matcher.Groupings[client]; grouping != nil {
		for key := range s.removedGroups[client] {
			for _, i := range grouping.Syn[key] {
				groupExcluded[i] = true
			}
		}
	}
	if !s.forget.AnyRemovedClasses() && len(groupExcluded) == 0 {
		return syn
	}
	var idx []int
	for i, y := range syn.Y {
		if !s.forget.ClassRemoved(y) && !groupExcluded[i] {
			idx = append(idx, i)
		}
	}
	return syn.Subset(idx)
}

// resolveSampleGroups maps a sample-level request onto the distillation
// groups covering the requested samples. Because synthetic data exists at
// subset granularity, unlearning expands to every sample of the covered
// groups; the expanded sample list is returned for forget-state tracking.
func (s *System) resolveSampleGroups(req Request) ([]distill.GroupKey, []int, error) {
	if req.Client < 0 || req.Client >= s.Clients.NumClients() {
		return nil, nil, fmt.Errorf("core: client %d out of range", req.Client)
	}
	if len(req.Samples) == 0 {
		return nil, nil, fmt.Errorf("core: sample-level request with no samples")
	}
	grouping := s.Matcher.Groupings[req.Client]
	if grouping == nil {
		return nil, nil, fmt.Errorf("core: client %d has no synthetic data", req.Client)
	}
	client := s.Clients.Shard(req.Client)
	seen := make(map[distill.GroupKey]bool)
	var groups []distill.GroupKey
	for _, sample := range req.Samples {
		if sample < 0 || sample >= client.Len() {
			return nil, nil, fmt.Errorf("core: sample %d out of range for client %d", sample, req.Client)
		}
		key, ok := grouping.GroupOf(sample)
		if !ok {
			return nil, nil, fmt.Errorf("core: sample %d of client %d belongs to no distillation group", sample, req.Client)
		}
		if !seen[key] && !s.removedGroups[req.Client][key] {
			seen[key] = true
			groups = append(groups, key)
		}
	}
	if len(groups) == 0 {
		return nil, nil, fmt.Errorf("core: %v covers only already-unlearned groups", req)
	}
	var expanded []int
	for _, key := range groups {
		expanded = append(expanded, grouping.Real[key]...)
	}
	return groups, expanded, nil
}

// markSampleGroups records (or clears) the removal of the groups covering
// a sample-level request and the corresponding real samples.
func (s *System) markSampleGroups(req Request, removed bool) error {
	groups, expanded, err := s.resolveSampleGroupsForMark(req, removed)
	if err != nil {
		return err
	}
	set := s.removedGroups[req.Client]
	if set == nil {
		set = make(map[distill.GroupKey]bool)
		s.removedGroups[req.Client] = set
	}
	for _, key := range groups {
		if removed {
			set[key] = true
		} else {
			delete(set, key)
		}
	}
	s.forget.Mark(Request{Kind: SampleLevel, Client: req.Client, Samples: expanded}, removed)
	return nil
}

// resolveSampleGroupsForMark resolves groups for marking; when clearing a
// removal the already-removed filter must be inverted.
func (s *System) resolveSampleGroupsForMark(req Request, removed bool) ([]distill.GroupKey, []int, error) {
	if removed {
		return s.resolveSampleGroups(req)
	}
	grouping := s.Matcher.Groupings[req.Client]
	if grouping == nil {
		return nil, nil, fmt.Errorf("core: client %d has no synthetic data", req.Client)
	}
	seen := make(map[distill.GroupKey]bool)
	var groups []distill.GroupKey
	var expanded []int
	for _, sample := range req.Samples {
		key, ok := grouping.GroupOf(sample)
		if !ok {
			continue
		}
		if !seen[key] && s.removedGroups[req.Client][key] {
			seen[key] = true
			groups = append(groups, key)
			expanded = append(expanded, grouping.Real[key]...)
		}
	}
	if len(groups) == 0 {
		return nil, nil, fmt.Errorf("core: %v covers no unlearned groups", req)
	}
	return groups, expanded, nil
}

// retainShards returns, per client, the recovery data: the synthetic set
// minus all currently-forgotten knowledge, augmented 1:1 with original
// samples when configured (§3.3.1).
func (s *System) retainShards() []*data.Dataset {
	shards := make([]*data.Dataset, s.Clients.NumClients())
	for i := range shards {
		if s.forget.ClientRemoved(i) {
			continue
		}
		syn := s.Synthetic(i)
		if syn == nil {
			continue
		}
		retain := s.activeSubset(i, syn)
		if retain.Len() == 0 {
			continue
		}
		if s.Cfg.Augment {
			// Original samples of removed data must not leak back in.
			// Sample exclusion must come first: the tracker's indices
			// refer to the client's original dataset ordering.
			original := s.Clients.Shard(i).WithoutIndices(s.forget.RemovedSamples(i))
			for _, c := range s.forget.RemovedClasses() {
				original = original.WithoutClass(c)
			}
			retain = distill.Augment(retain, original, s.rng)
		}
		shards[i] = retain
	}
	return shards
}

// Unlearn executes steps 3 and 4 for a request: SGA rounds on the
// synthetic forget set followed by SGD recovery rounds on the remaining
// synthetic data. It is the single-request form of UnlearnBatch and is
// bit-for-bit identical to a batch of one.
func (s *System) Unlearn(req Request) (Report, error) {
	if err := s.acquire("Unlearn"); err != nil {
		return Report{}, err
	}
	defer s.release()
	br, err := s.unlearnBatchLocked([]Request{req})
	// Phase wall time comes from the telemetry phase timer inside
	// RunPhase, so eval.Cost is populated from the same spans the
	// exporters see.
	rep := Report{Request: req, Unlearn: br.Unlearn, Recover: br.Recover, Total: br.Total}
	if err != nil {
		if len(br.Rejected) == 1 {
			// Surface the resolution error directly, not the batch wrapper.
			return rep, br.Rejected[0].Err
		}
		return rep, err
	}
	return rep, nil
}

func (s *System) observe(stage string) {
	if s.Cfg.Observer != nil {
		s.Cfg.Observer(stage)
	}
}

// Recover runs additional recovery rounds on the current retain data,
// beyond those already executed by Unlearn. The paper (§4.2.1) uses this
// to show that two recovery rounds suffice; harnesses use it to trace
// accuracy round by round (Fig. 2).
func (s *System) Recover(rounds int) (eval.Cost, error) {
	if err := s.acquire("Recover"); err != nil {
		return eval.Cost{}, err
	}
	defer s.release()
	if !s.trained {
		return eval.Cost{}, fmt.Errorf("core: Recover before Train")
	}
	if rounds < 1 {
		return eval.Cost{}, fmt.Errorf("core: Recover needs rounds ≥ 1")
	}
	retain := s.retainShards()
	res, err := fl.RunPhase(s.Model, retain, fl.PhaseConfig{
		Rounds:        rounds,
		LocalSteps:    s.Cfg.Recover.LocalSteps,
		BatchSize:     s.Cfg.Recover.BatchSize,
		LR:            s.Cfg.Recover.LR,
		Participation: s.Cfg.Recover.Participation,
		Counter:       &s.Counter,
		Telemetry:     s.Cfg.Telemetry,
		Health:        s.Cfg.Health,
		Phase:         "recover",
	}, s.rng)
	if err != nil {
		return eval.Cost{}, err
	}
	return eval.Cost{Rounds: res.Rounds, WallTime: res.WallTime, DataSize: shardSize(retain)}, nil
}

// Relearn executes step 5: SGD on the synthetic data of a previously
// unlearned request, restoring the erased knowledge.
func (s *System) Relearn(req Request) (Report, error) {
	if err := s.acquire("Relearn"); err != nil {
		return Report{}, err
	}
	defer s.release()
	if !s.trained {
		return Report{}, fmt.Errorf("core: Relearn before Train")
	}
	if !s.forget.IsRemoved(req) {
		return Report{}, fmt.Errorf("core: %v was not unlearned", req)
	}
	// Clear the removed mark first so forgetShards sees the data again.
	if err := s.markRemoved(req, false); err != nil {
		return Report{}, err
	}
	forget, err := s.forgetShards(req)
	if err != nil {
		if mErr := s.markRemoved(req, true); mErr != nil {
			return Report{}, fmt.Errorf("core: %w (and could not restore forget state: %v)", err, mErr)
		}
		return Report{}, err
	}
	rep := Report{Request: req}
	res, err := fl.RunPhase(s.Model, forget, fl.PhaseConfig{
		Rounds:     s.Cfg.Relearn.Rounds,
		LocalSteps: s.Cfg.Relearn.LocalSteps,
		BatchSize:  s.Cfg.Relearn.BatchSize,
		LR:         s.Cfg.Relearn.LR,
		Counter:    &s.Counter,
		Telemetry:  s.Cfg.Telemetry,
		Health:     s.Cfg.Health,
		Phase:      "relearn",
	}, s.rng)
	if err != nil {
		return rep, fmt.Errorf("core: relearning phase: %w", err)
	}
	rep.Recover = eval.Cost{Rounds: res.Rounds, WallTime: res.WallTime, DataSize: shardSize(forget)}
	rep.Total = rep.Recover
	s.observe("relearn")
	return rep, nil
}

func (s *System) checkNotRemoved(req Request) error {
	if s.forget.IsRemoved(req) {
		return fmt.Errorf("core: %v already unlearned", req)
	}
	return nil
}

// markRemoved records a request's forget state, expanding sample-level
// requests to their covering distillation groups.
func (s *System) markRemoved(req Request, removed bool) error {
	if req.Kind == SampleLevel {
		return s.markSampleGroups(req, removed)
	}
	s.forget.Mark(req, removed)
	return nil
}

// RemovedClasses returns the classes currently unlearned.
func (s *System) RemovedClasses() []int { return s.forget.RemovedClasses() }

// RemovedSampleSet returns a copy of the client's currently-unlearned
// local sample indices (after group expansion).
func (s *System) RemovedSampleSet(client int) map[int]bool {
	out := make(map[int]bool)
	for k, v := range s.forget.RemovedSamples(client) {
		if v {
			out[k] = true
		}
	}
	return out
}

func shardSize(shards []*data.Dataset) int {
	n := 0
	for _, sh := range shards {
		if sh != nil {
			n += sh.Len()
		}
	}
	return n
}
