package core

import (
	"errors"
	"fmt"
	"math"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/optim"
)

// ErrBusy is returned when an operation is submitted while another
// pipeline operation (Train, Unlearn, UnlearnBatch, Recover, Relearn,
// LoadState) is still running. A System mutates one global model and
// one shared RNG stream; interleaving two operations would corrupt
// both, so the contract is made explicit instead of implicit: callers
// that need concurrency serialize requests through a queue (see
// internal/serve) and retry on this error.
var ErrBusy = errors.New("core: another operation is already running on this System")

// acquire claims the System's single-operation slot.
func (s *System) acquire(op string) error {
	if !s.busy.CompareAndSwap(false, true) {
		return fmt.Errorf("core: %s rejected: %w", op, ErrBusy)
	}
	return nil
}

// release frees the single-operation slot.
func (s *System) release() { s.busy.Store(false) }

// RequestError pairs a request with the reason it could not execute.
type RequestError struct {
	// Index is the request's position in the submitted batch, so
	// callers holding per-request state (the serving layer's tickets)
	// can attribute the rejection even when the batch holds duplicates.
	Index   int
	Request Request
	Err     error
}

// BatchReport summarizes one coalesced unlearning pass: which requests
// executed, which were rejected at resolution time, and the shared SGA
// and recovery costs amortized across the whole batch.
type BatchReport struct {
	// Requests are the accepted requests in execution order.
	Requests []Request
	// Rejected are the requests that failed resolution (out of range,
	// already unlearned, no matching synthetic data); they did not
	// poison the rest of the batch.
	Rejected []RequestError
	// Unlearn is the cost of the single SGA pass over the merged
	// forget shards of every accepted request.
	Unlearn eval.Cost
	// Recover is the cost of the single recovery pass shared by the
	// whole batch.
	Recover eval.Cost
	// Total is the combined cost.
	Total eval.Cost
}

// UnlearnBatch executes steps 3 and 4 for a whole batch of requests in
// one pass: the per-client forget shards of every accepted request are
// merged and erased by a single SGA phase, then a single recovery
// phase runs on the remaining synthetic data. This amortizes recovery
// — the expensive stage — across the batch exactly as the paper
// amortizes distillation across training, and is the entry point the
// quickdropd request coalescer drives.
//
// Requests resolve sequentially against the evolving forget state, so
// a duplicate inside the batch is rejected like a duplicate across
// batches, and a client-level request excludes classes a preceding
// class-level request already claimed. A batch of one request is
// bit-for-bit identical to Unlearn on that request.
//
// Error contract: whenever UnlearnBatch returns a non-nil error — a
// wholly-rejected batch, an SGA-phase failure, or a recovery-phase
// failure — the forget ledger is restored to its pre-call state, so
// the same requests can be resubmitted. The MODEL, however, may have
// been left mid-phase (partially ascended or unrecovered); callers
// that keep serving afterwards must restore its parameters from a
// known-good copy (internal/serve rewinds to the last published
// snapshot) before running another operation.
func (s *System) UnlearnBatch(reqs []Request) (BatchReport, error) {
	if err := s.acquire("UnlearnBatch"); err != nil {
		return BatchReport{}, err
	}
	defer s.release()
	return s.unlearnBatchLocked(reqs)
}

func (s *System) unlearnBatchLocked(reqs []Request) (BatchReport, error) {
	br := BatchReport{}
	if !s.trained {
		return br, fmt.Errorf("core: Unlearn before Train")
	}
	if len(reqs) == 0 {
		return br, fmt.Errorf("core: empty request batch")
	}

	// Resolution pass: collect each request's forget shards against the
	// current forget state and mark it removed before resolving the
	// next, so intra-batch interactions (duplicates, class/client
	// overlap) behave exactly like sequential submission.
	merged := make([]*data.Dataset, s.Clients.NumClients())
	for ri, req := range reqs {
		shards, err := s.resolveOne(req)
		if err != nil {
			br.Rejected = append(br.Rejected, RequestError{Index: ri, Request: req, Err: err})
			continue
		}
		for i, sh := range shards {
			switch {
			case sh == nil:
			case merged[i] == nil:
				merged[i] = sh
			default:
				merged[i] = data.Merge(merged[i], sh)
			}
		}
		br.Requests = append(br.Requests, req)
		s.Cfg.Telemetry.Request(int(req.Kind) - 1)
	}
	if len(br.Requests) == 0 {
		return br, fmt.Errorf("core: no executable requests in batch of %d (first: %v)",
			len(reqs), br.Rejected[0].Err)
	}

	s.poison("unlearn")
	uRes, err := fl.RunPhase(s.Model, merged, fl.PhaseConfig{
		Rounds:     s.Cfg.Unlearn.Rounds,
		LocalSteps: s.Cfg.Unlearn.LocalSteps,
		BatchSize:  s.Cfg.Unlearn.BatchSize,
		LR:         s.Cfg.Unlearn.LR,
		Dir:        optim.Ascend,
		Counter:    &s.Counter,
		Telemetry:  s.Cfg.Telemetry,
		Health:     s.Cfg.Health,
		Phase:      "unlearn",
	}, s.rng)
	if err != nil {
		// The model may be partially ascended, but the forget ledger can
		// still be restored so a retry resolves the same shards.
		s.rollbackMarks(br.Requests)
		return br, fmt.Errorf("core: unlearning phase: %w", err)
	}
	br.Unlearn = eval.Cost{Rounds: uRes.Rounds, WallTime: uRes.WallTime, DataSize: shardSize(merged)}
	s.observe("unlearn")

	retain := s.retainShards()
	if shardSize(retain) == 0 {
		// Nothing left to recover on (e.g. the batch unlearned the last
		// remaining knowledge) — recovery is a no-op.
		br.Total = br.Unlearn
		s.observe("recover")
		return br, nil
	}
	rRes, err := fl.RunPhase(s.Model, retain, fl.PhaseConfig{
		Rounds:        s.Cfg.Recover.Rounds,
		LocalSteps:    s.Cfg.Recover.LocalSteps,
		BatchSize:     s.Cfg.Recover.BatchSize,
		LR:            s.Cfg.Recover.LR,
		Participation: s.Cfg.Recover.Participation,
		Counter:       &s.Counter,
		Telemetry:     s.Cfg.Telemetry,
		Health:        s.Cfg.Health,
		Phase:         "recover",
	}, s.rng)
	if err != nil {
		// The model is ascended but not recovered. Restore the ledger so
		// the failure is retryable end to end — keeping the marks would
		// reject a resubmission as "already unlearned" even though no
		// consistent unlearned model was ever produced. The caller owns
		// restoring the parameters (see the error contract above).
		s.rollbackMarks(br.Requests)
		return br, fmt.Errorf("core: recovery phase: %w", err)
	}
	br.Recover = eval.Cost{Rounds: rRes.Rounds, WallTime: rRes.WallTime, DataSize: shardSize(retain)}
	br.Total = br.Unlearn
	br.Total.Add(br.Recover)
	s.observe("recover")
	return br, nil
}

// poison plants a NaN in the first element of the model's first
// parameter when Config.PoisonPhase names the phase about to run — the
// fault-injection hook the health watchdog's end-to-end tests and
// scripts/health_smoke.sh drive. No-op unless explicitly configured.
func (s *System) poison(phase string) {
	if s.Cfg.PoisonPhase != phase {
		return
	}
	params := s.Model.ParamTensors()
	if len(params) == 0 || params[0].Len() == 0 {
		return
	}
	params[0].Data()[0] = math.NaN()
}

// resolveOne validates a request against the current forget state,
// returns its forget shards, and marks it removed.
func (s *System) resolveOne(req Request) ([]*data.Dataset, error) {
	if err := s.checkNotRemoved(req); err != nil {
		return nil, err
	}
	shards, err := s.forgetShards(req)
	if err != nil {
		return nil, err
	}
	if err := s.markRemoved(req, true); err != nil {
		return nil, err
	}
	return shards, nil
}

// rollbackMarks clears the forget marks of the given requests in
// reverse order, restoring the ledger after a failed SGA phase.
func (s *System) rollbackMarks(reqs []Request) {
	for i := len(reqs) - 1; i >= 0; i-- {
		// A mark that resolved forward resolves backward; a failure here
		// would leave the ledger ahead of the model either way.
		_ = s.markRemoved(reqs[i], false)
	}
}

// ValidateRequest reports whether a request could execute right now:
// kind and indices in range, target not already unlearned. It does not
// resolve synthetic data (a valid request can still be rejected by
// UnlearnBatch when it matches none).
func (s *System) ValidateRequest(req Request) error {
	switch req.Kind {
	case ClassLevel:
		if req.Class < 0 || req.Class >= s.Model.Classes {
			return fmt.Errorf("core: class %d out of range", req.Class)
		}
	case ClientLevel:
		if req.Client < 0 || req.Client >= s.Clients.NumClients() {
			return fmt.Errorf("core: client %d out of range", req.Client)
		}
	case SampleLevel:
		if req.Client < 0 || req.Client >= s.Clients.NumClients() {
			return fmt.Errorf("core: client %d out of range", req.Client)
		}
		if len(req.Samples) == 0 {
			return fmt.Errorf("core: sample-level request with no samples")
		}
	default:
		return fmt.Errorf("core: invalid request kind %v", req.Kind)
	}
	return s.checkNotRemoved(req)
}
