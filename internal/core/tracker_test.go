package core

import "testing"

func TestTrackerClassLifecycle(t *testing.T) {
	tr := NewTracker()
	req := Request{Kind: ClassLevel, Class: 3}
	if tr.IsRemoved(req) {
		t.Fatal("fresh tracker must have nothing removed")
	}
	tr.Mark(req, true)
	if !tr.IsRemoved(req) || !tr.ClassRemoved(3) || !tr.AnyRemovedClasses() {
		t.Fatal("class removal not recorded")
	}
	if got := tr.RemovedClasses(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("RemovedClasses = %v", got)
	}
	tr.Mark(req, false)
	if tr.IsRemoved(req) || tr.AnyRemovedClasses() {
		t.Fatal("class removal not cleared")
	}
}

func TestTrackerClientLifecycle(t *testing.T) {
	tr := NewTracker()
	req := Request{Kind: ClientLevel, Client: 2}
	tr.Mark(req, true)
	if !tr.ClientRemoved(2) || tr.ClientRemoved(1) {
		t.Fatal("client removal wrong")
	}
	tr.Mark(req, false)
	if tr.ClientRemoved(2) {
		t.Fatal("client removal not cleared")
	}
}

func TestTrackerSampleSemantics(t *testing.T) {
	tr := NewTracker()
	req := Request{Kind: SampleLevel, Client: 1, Samples: []int{4, 7}}
	if tr.IsRemoved(req) {
		t.Fatal("fresh tracker")
	}
	// Partial removal: the request is not considered removed until every
	// sample is.
	tr.Mark(Request{Kind: SampleLevel, Client: 1, Samples: []int{4}}, true)
	if tr.IsRemoved(req) {
		t.Fatal("partial removal must not count as removed")
	}
	tr.Mark(Request{Kind: SampleLevel, Client: 1, Samples: []int{7}}, true)
	if !tr.IsRemoved(req) {
		t.Fatal("full removal must count")
	}
	if got := tr.RemovedSamples(1); !got[4] || !got[7] || got[5] {
		t.Fatalf("RemovedSamples = %v", got)
	}
	// Other clients are independent.
	if tr.IsRemoved(Request{Kind: SampleLevel, Client: 0, Samples: []int{4}}) {
		t.Fatal("client 0 must be unaffected")
	}
	tr.Mark(req, false)
	if len(tr.RemovedSamples(1)) != 0 {
		t.Fatal("sample removal not cleared")
	}
}

func TestTrackerEmptySampleRequestNeverRemoved(t *testing.T) {
	tr := NewTracker()
	if tr.IsRemoved(Request{Kind: SampleLevel, Client: 0}) {
		t.Fatal("empty sample request must not be 'removed'")
	}
}

func TestTrackerSortedRemovedClasses(t *testing.T) {
	tr := NewTracker()
	for _, c := range []int{7, 1, 4} {
		tr.Mark(Request{Kind: ClassLevel, Class: c}, true)
	}
	got := tr.RemovedClasses()
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 7 {
		t.Fatalf("RemovedClasses = %v, want sorted", got)
	}
}

func TestTrackerInvalidKindNoops(t *testing.T) {
	tr := NewTracker()
	tr.Mark(Request{}, true)
	if tr.AnyRemovedClasses() || tr.IsRemoved(Request{}) {
		t.Fatal("invalid kind must be a no-op")
	}
}
