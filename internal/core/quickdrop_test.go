package core

import (
	"math/rand"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
)

func testArch() nn.ConvNetConfig {
	return nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
}

func testClients(t *testing.T, n int, perClass int, seed int64) (*data.Cohort, *data.Dataset) {
	t.Helper()
	spec := data.MNISTLike(8, perClass)
	train, test := data.Generate(spec, seed)
	parts := data.PartitionIID(train, n, rand.New(rand.NewSource(seed+100)))
	return data.NewCohort(parts), test
}

// skipE2EInShort gates the end-to-end train/unlearn cycles out of
// short mode. Under -race they multiply full FL training by the
// detector's ~10x slowdown — the package exceeds a 10-minute timeout
// versus ~80 s without race. `make check` runs this package with
// `-race -short` so the fast unit tests still get race coverage.
func skipE2EInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("end-to-end train cycle; skipped in -short mode")
	}
}

func trainedSystem(t *testing.T, seed int64) (*System, *data.Dataset) {
	t.Helper()
	skipE2EInShort(t)
	clients, test := testClients(t, 4, 12, seed)
	cfg := DefaultConfig(testArch())
	cfg.Seed = seed
	cfg.Distill.Scale = 3 // keep a few synthetic samples per class on tiny shards
	sys, err := NewSystem(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		t.Fatal(err)
	}
	return sys, test
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig(testArch())
	if _, err := NewSystem(cfg, nil); err == nil {
		t.Fatal("expected error for no clients")
	}
	if _, err := NewSystem(cfg, data.NewCohort([]*data.Dataset{data.NewDataset(8, 8, 1, 10)})); err == nil {
		t.Fatal("expected error for all-empty clients")
	}
	bad := cfg
	bad.Distill.Scale = 0
	clients, _ := testClients(t, 2, 4, 1)
	if _, err := NewSystem(bad, clients); err == nil {
		t.Fatal("expected error for bad distill config")
	}
}

func TestUnlearnBeforeTrainFails(t *testing.T) {
	clients, _ := testClients(t, 2, 4, 2)
	sys, err := NewSystem(DefaultConfig(testArch()), clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: 1}); err == nil {
		t.Fatal("expected error before Train")
	}
	if _, err := sys.Relearn(Request{Kind: ClassLevel, Class: 1}); err == nil {
		t.Fatal("expected error before Train")
	}
}

func TestDoubleTrainFails(t *testing.T) {
	sys, _ := trainedSystem(t, 3)
	if _, err := sys.Train(); err == nil {
		t.Fatal("expected error on second Train")
	}
}

// The headline behaviour (paper Fig. 2 / Table 2): class unlearning
// collapses F-Set accuracy while recovery restores the R-Set, then
// relearning restores the class.
func TestClassUnlearnRecoverRelearn(t *testing.T) {
	sys, test := trainedSystem(t, 4)
	target := 3
	fBefore, rBefore := eval.ClassSplit(sys.Model, test, target)
	if fBefore < 0.5 || rBefore < 0.5 {
		t.Fatalf("model undertrained: F=%.2f R=%.2f", fBefore, rBefore)
	}

	rep, err := sys.Unlearn(Request{Kind: ClassLevel, Class: target})
	if err != nil {
		t.Fatal(err)
	}
	fAfter, rAfter := eval.ClassSplit(sys.Model, test, target)
	if fAfter > 0.25 {
		t.Fatalf("F-Set accuracy after unlearning = %.2f, want ≈0 (before %.2f)", fAfter, fBefore)
	}
	if rAfter < rBefore-0.3 {
		t.Fatalf("R-Set accuracy collapsed: %.2f → %.2f", rBefore, rAfter)
	}
	if rep.Unlearn.Rounds != 1 || rep.Recover.Rounds != 2 {
		t.Fatalf("unexpected phase rounds: %+v", rep)
	}
	if rep.Unlearn.DataSize == 0 || rep.Recover.DataSize == 0 {
		t.Fatalf("data sizes missing: %+v", rep)
	}
	// Synthetic volume must be far below the original (the whole point).
	if rep.Unlearn.DataSize >= sys.Clients.Shard(0).Len()*sys.Clients.NumClients()/2 {
		t.Fatalf("unlearning touched %d samples — not compressed", rep.Unlearn.DataSize)
	}

	// Relearn restores the class.
	rel, err := sys.Relearn(Request{Kind: ClassLevel, Class: target})
	if err != nil {
		t.Fatal(err)
	}
	fRe, _ := eval.ClassSplit(sys.Model, test, target)
	if fRe < 0.4 {
		t.Fatalf("relearning failed: F-Set %.2f", fRe)
	}
	if rel.Total.WallTime <= 0 {
		t.Fatal("relearn cost missing")
	}
}

func TestClientUnlearn(t *testing.T) {
	sys, test := trainedSystem(t, 5)
	target := 1
	rep, err := sys.Unlearn(Request{Kind: ClientLevel, Client: target})
	if err != nil {
		t.Fatal(err)
	}
	// With IID data the retained knowledge covers the departed client
	// (paper Table 4, IID column): R-Set accuracy must stay reasonable.
	_, r := eval.SubsetSplit(sys.Model, sys.Clients.Shard(target), test)
	if r < 0.4 {
		t.Fatalf("R-Set accuracy %.2f after client unlearning", r)
	}
	if rep.Total.WallTime <= 0 {
		t.Fatal("cost missing")
	}
	// The client must not participate in later recovery phases.
	if _, err := sys.Unlearn(Request{Kind: ClientLevel, Client: target}); err == nil {
		t.Fatal("double client unlearn must fail")
	}
}

func TestSequentialClassRequests(t *testing.T) {
	sys, test := trainedSystem(t, 6)
	for _, target := range []int{2, 5} {
		if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: target}); err != nil {
			t.Fatal(err)
		}
	}
	f2, _ := eval.ClassSplit(sys.Model, test, 2)
	f5, _ := eval.ClassSplit(sys.Model, test, 5)
	if f2 > 0.3 || f5 > 0.3 {
		t.Fatalf("sequential unlearning leaked: class2=%.2f class5=%.2f", f2, f5)
	}
	removed := sys.RemovedClasses()
	if len(removed) != 2 {
		t.Fatalf("RemovedClasses = %v", removed)
	}
	// Remaining classes still work on average.
	sum := 0.0
	n := 0
	acc, count := eval.PerClassAccuracy(sys.Model, test)
	for c := 0; c < 10; c++ {
		if c == 2 || c == 5 || count[c] == 0 {
			continue
		}
		sum += acc[c]
		n++
	}
	if sum/float64(n) < 0.45 {
		t.Fatalf("non-target accuracy %.2f after sequential requests", sum/float64(n))
	}
}

func TestUnlearnErrors(t *testing.T) {
	sys, _ := trainedSystem(t, 7)
	if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: 99}); err == nil {
		t.Fatal("expected out-of-range class error")
	}
	if _, err := sys.Unlearn(Request{Kind: ClientLevel, Client: -1}); err == nil {
		t.Fatal("expected out-of-range client error")
	}
	if _, err := sys.Unlearn(Request{}); err == nil {
		t.Fatal("expected invalid-kind error")
	}
	if _, err := sys.Relearn(Request{Kind: ClassLevel, Class: 4}); err == nil {
		t.Fatal("relearn of never-unlearned class must fail")
	}
	if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: 3}); err == nil {
		t.Fatal("double unlearn must fail")
	}
}

func TestSyntheticSizesFollowScale(t *testing.T) {
	sys, _ := trainedSystem(t, 8)
	for i := 0; i < sys.Clients.NumClients(); i++ {
		c := sys.Clients.Shard(i)
		syn := sys.Synthetic(i)
		if syn == nil {
			t.Fatalf("client %d has no synthetic set", i)
		}
		rc, sc := c.ClassCounts(), syn.ClassCounts()
		for class := range rc {
			if rc[class] == 0 {
				continue
			}
			want := (rc[class] + int(sys.Cfg.Distill.Scale) - 1) / int(sys.Cfg.Distill.Scale)
			if sc[class] != want {
				t.Fatalf("client %d class %d: %d synthetic, want %d", i, class, sc[class], want)
			}
		}
	}
}

func TestRequestStrings(t *testing.T) {
	if (Request{Kind: ClassLevel, Class: 3}).String() != "unlearn class 3" {
		t.Fatal("bad class request string")
	}
	if (Request{Kind: ClientLevel, Client: 2}).String() != "unlearn client 2" {
		t.Fatal("bad client request string")
	}
	if (Request{}).String() != "invalid request" {
		t.Fatal("bad invalid request string")
	}
	if ClassLevel.String() != "class-level" || ClientLevel.String() != "client-level" {
		t.Fatal("bad kind strings")
	}
	if RequestKind(9).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
