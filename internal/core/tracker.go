package core

import "sort"

// Tracker records which classes, clients and individual samples are
// currently unlearned. It is shared by the QuickDrop system and all
// baselines so that sequential request streams and relearning behave
// identically across methods.
type Tracker struct {
	classes map[int]bool
	clients map[int]bool
	// samples maps client → set of removed local sample indices.
	samples map[int]map[int]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		classes: make(map[int]bool),
		clients: make(map[int]bool),
		samples: make(map[int]map[int]bool),
	}
}

// IsRemoved reports whether the request's target is currently unlearned.
// A sample-level request counts as removed when every requested sample is.
func (t *Tracker) IsRemoved(req Request) bool {
	switch req.Kind {
	case ClassLevel:
		return t.classes[req.Class]
	case ClientLevel:
		return t.clients[req.Client]
	case SampleLevel:
		if len(req.Samples) == 0 {
			return false
		}
		set := t.samples[req.Client]
		for _, s := range req.Samples {
			if !set[s] {
				return false
			}
		}
		return true
	}
	return false
}

// Mark sets or clears the removed state for a request's target.
func (t *Tracker) Mark(req Request, removed bool) {
	switch req.Kind {
	case ClassLevel:
		if removed {
			t.classes[req.Class] = true
		} else {
			delete(t.classes, req.Class)
		}
	case ClientLevel:
		if removed {
			t.clients[req.Client] = true
		} else {
			delete(t.clients, req.Client)
		}
	case SampleLevel:
		set := t.samples[req.Client]
		if set == nil {
			set = make(map[int]bool)
			t.samples[req.Client] = set
		}
		for _, s := range req.Samples {
			if removed {
				set[s] = true
			} else {
				delete(set, s)
			}
		}
	}
}

// RemovedSamples returns the set of removed sample indices for a client
// (possibly nil). The map must not be mutated by callers.
func (t *Tracker) RemovedSamples(client int) map[int]bool { return t.samples[client] }

// ClassRemoved reports whether class c is unlearned.
func (t *Tracker) ClassRemoved(c int) bool { return t.classes[c] }

// ClientRemoved reports whether client i is unlearned.
func (t *Tracker) ClientRemoved(i int) bool { return t.clients[i] }

// RemovedClasses returns the sorted list of unlearned classes.
func (t *Tracker) RemovedClasses() []int {
	out := make([]int, 0, len(t.classes))
	for c := range t.classes {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// AnyRemovedClasses reports whether any class-level removal is active.
func (t *Tracker) AnyRemovedClasses() bool { return len(t.classes) > 0 }
