package core

import (
	"bytes"
	"math/rand"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
)

// BenchmarkUnlearnRecover measures one class-level unlearn + recover
// pass over a trained system — the cost QuickDrop optimises. Training
// and state restoration run off the clock; each iteration replays the
// same request against the same trained state.
func BenchmarkUnlearnRecover(b *testing.B) {
	spec := data.MNISTLike(8, 12)
	train, _ := data.Generate(spec, 7)
	parts := data.PartitionIID(train, 4, rand.New(rand.NewSource(107)))
	cfg := DefaultConfig(nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2})
	cfg.Seed = 7
	cfg.Train.Rounds = 4
	cfg.Distill.Scale = 3
	sys, err := NewSystem(cfg, data.NewCohort(parts))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := sys.SaveState(&snap); err != nil {
		b.Fatal(err)
	}
	req := Request{Kind: ClassLevel, Class: 1}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// LoadState restores only into a fresh system, so each iteration
		// rebuilds one off the clock.
		b.StopTimer()
		replay, err := NewSystem(cfg, data.NewCohort(parts))
		if err != nil {
			b.Fatal(err)
		}
		if err := replay.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := replay.Unlearn(req); err != nil {
			b.Fatal(err)
		}
	}
}
