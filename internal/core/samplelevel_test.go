package core

import (
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/mia"
)

// sampleSystem builds a trained system with sub-class grouping enabled.
func sampleSystem(t *testing.T, seed int64) (*System, *data.Dataset) {
	t.Helper()
	skipE2EInShort(t)
	clients, test := testClients(t, 3, 16, seed)
	cfg := DefaultConfig(testArch())
	cfg.Seed = seed
	cfg.Distill.Scale = 2
	cfg.Distill.Groups = 3
	sys, err := NewSystem(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		t.Fatal(err)
	}
	return sys, test
}

func TestSampleLevelUnlearnAndRelearn(t *testing.T) {
	sys, test := sampleSystem(t, 21)
	client := 1
	// Forget the first few samples of the client.
	req := Request{Kind: SampleLevel, Client: client, Samples: []int{0, 1, 2}}
	accBefore := eval.Accuracy(sys.Model, test)

	rep, err := sys.Unlearn(req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unlearn.DataSize == 0 {
		t.Fatal("no synthetic data unlearned")
	}
	// The covered groups are expanded: the tracker must now hold at least
	// the requested samples.
	removed := sys.forget.RemovedSamples(client)
	for _, s := range req.Samples {
		if !removed[s] {
			t.Fatalf("sample %d not marked removed", s)
		}
	}
	// Overall model quality must survive unlearning a few samples.
	if acc := eval.Accuracy(sys.Model, test); acc < accBefore-0.35 {
		t.Fatalf("accuracy collapsed: %.2f → %.2f", accBefore, acc)
	}

	// Double-unlearn of the same samples must fail.
	if _, err := sys.Unlearn(req); err == nil {
		t.Fatal("double sample unlearn must fail")
	}

	// Relearning restores the groups.
	if _, err := sys.Relearn(req); err != nil {
		t.Fatal(err)
	}
	if len(sys.forget.RemovedSamples(client)) != 0 {
		t.Fatal("relearn must clear removed samples")
	}
	// And can be unlearned again.
	if _, err := sys.Unlearn(req); err != nil {
		t.Fatal(err)
	}
}

func TestSampleLevelValidation(t *testing.T) {
	sys, _ := sampleSystem(t, 22)
	cases := []Request{
		{Kind: SampleLevel, Client: 99, Samples: []int{0}},
		{Kind: SampleLevel, Client: 0, Samples: nil},
		{Kind: SampleLevel, Client: 0, Samples: []int{100000}},
	}
	for i, req := range cases {
		if _, err := sys.Unlearn(req); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	// Relearn of never-unlearned samples must fail.
	if _, err := sys.Relearn(Request{Kind: SampleLevel, Client: 0, Samples: []int{0}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSampleLevelExpandsToGroups(t *testing.T) {
	sys, _ := sampleSystem(t, 23)
	client := 0
	req := Request{Kind: SampleLevel, Client: client, Samples: []int{0}}
	groups, expanded, err := sys.resolveSampleGroups(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("one sample must map to one group, got %d", len(groups))
	}
	grouping := sys.Matcher.Groupings[client]
	if len(expanded) != len(grouping.Real[groups[0]]) {
		t.Fatalf("expansion %d != group size %d", len(expanded), len(grouping.Real[groups[0]]))
	}
	found := false
	for _, s := range expanded {
		if s == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("expansion must include the requested sample")
	}
}

func TestSampleLevelRecoveryExcludesForgottenGroups(t *testing.T) {
	sys, _ := sampleSystem(t, 24)
	client := 2
	req := Request{Kind: SampleLevel, Client: client, Samples: []int{0, 3}}
	if _, err := sys.Unlearn(req); err != nil {
		t.Fatal(err)
	}
	// The client's active synthetic subset must be smaller than the full
	// synthetic set, with the removed groups' samples excluded.
	syn := sys.Synthetic(client)
	active := sys.activeSubset(client, syn)
	if active.Len() >= syn.Len() {
		t.Fatalf("active %d vs total %d — removed groups not excluded", active.Len(), syn.Len())
	}
}

func TestSampleLevelMIAMemberRateDrops(t *testing.T) {
	sys, test := sampleSystem(t, 25)
	client := 0
	clientData := sys.Clients.Shard(client)
	// Forget half the client's samples.
	var samples []int
	for i := 0; i < clientData.Len()/2; i++ {
		samples = append(samples, i)
	}
	req := Request{Kind: SampleLevel, Client: client, Samples: samples}
	if _, err := sys.Unlearn(req); err != nil {
		t.Fatal(err)
	}
	// Attack calibrated on retained members vs test non-members.
	removed := sys.forget.RemovedSamples(client)
	retained := clientData.WithoutIndices(removed)
	forgotten := clientData.Subset(keys(removed))
	attack, err := mia.TrainThreshold(sys.Model, retained, test)
	if err != nil {
		t.Fatal(err)
	}
	fRate := attack.MemberRate(sys.Model, forgotten)
	rRate := attack.MemberRate(sys.Model, retained)
	if fRate > rRate {
		t.Fatalf("forgotten samples look more like members (%.2f) than retained (%.2f)", fRate, rRate)
	}
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSampleLevelWithoutGroupsStillWorks(t *testing.T) {
	skipE2EInShort(t)
	// Groups=1 (paper default): sample-level requests expand to the whole
	// class subset of that client — coarse but valid.
	clients, _ := testClients(t, 2, 8, 26)
	cfg := DefaultConfig(testArch())
	cfg.Distill.Scale = 2
	sys, err := NewSystem(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		t.Fatal(err)
	}
	req := Request{Kind: SampleLevel, Client: 0, Samples: []int{0}}
	if _, err := sys.Unlearn(req); err != nil {
		t.Fatal(err)
	}
	// The expansion covers the whole class-group of sample 0.
	grouping := sys.Matcher.Groupings[0]
	key, ok := grouping.GroupOf(0)
	if !ok {
		t.Fatal("sample 0 must be in a group")
	}
	if got := len(sys.forget.RemovedSamples(0)); got != len(grouping.Real[key]) {
		t.Fatalf("removed %d samples, want the full group %d", got, len(grouping.Real[key]))
	}
}
