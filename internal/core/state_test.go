package core

import (
	"bytes"
	"testing"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
)

func TestStateRoundTripPreservesModelAndSynthetic(t *testing.T) {
	sys, test := trainedSystem(t, 30)
	if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: 2}); err != nil {
		t.Fatal(err)
	}
	accBefore := eval.Accuracy(sys.Model, test)

	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh system with the same config and clients, restored.
	restored, err := NewSystem(sys.Cfg, sys.Clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}

	// Model identical.
	if acc := eval.Accuracy(restored.Model, test); acc != accBefore {
		t.Fatalf("restored accuracy %.3f vs %.3f", acc, accBefore)
	}
	// Synthetic sets identical.
	for i := 0; i < sys.Clients.NumClients(); i++ {
		a, b := sys.Synthetic(i), restored.Synthetic(i)
		if (a == nil) != (b == nil) {
			t.Fatalf("client %d synthetic presence mismatch", i)
		}
		if a == nil {
			continue
		}
		if a.Len() != b.Len() {
			t.Fatalf("client %d synthetic size %d vs %d", i, a.Len(), b.Len())
		}
		for j := range a.X {
			if a.Y[j] != b.Y[j] {
				t.Fatal("label mismatch")
			}
			for k := range a.X[j].Data() {
				if a.X[j].Data()[k] != b.X[j].Data()[k] {
					t.Fatal("synthetic pixel mismatch")
				}
			}
		}
	}
	// Forget ledger preserved: class 2 already unlearned.
	if _, err := restored.Unlearn(Request{Kind: ClassLevel, Class: 2}); err == nil {
		t.Fatal("restored system must remember class 2 was unlearned")
	}
	// And the restored system can serve new requests.
	if _, err := restored.Unlearn(Request{Kind: ClassLevel, Class: 5}); err != nil {
		t.Fatal(err)
	}
	// Including relearning the originally erased class.
	if _, err := restored.Relearn(Request{Kind: ClassLevel, Class: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestStateRoundTripSampleLevel(t *testing.T) {
	sys, _ := sampleSystem(t, 31)
	req := Request{Kind: SampleLevel, Client: 0, Samples: []int{0, 1}}
	if _, err := sys.Unlearn(req); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewSystem(sys.Cfg, sys.Clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// The removed-sample and removed-group ledgers survive.
	if len(restored.RemovedSampleSet(0)) != len(sys.RemovedSampleSet(0)) {
		t.Fatal("removed samples lost")
	}
	if len(restored.removedGroups[0]) != len(sys.removedGroups[0]) {
		t.Fatal("removed groups lost")
	}
	// Relearning the samples works on the restored system.
	if _, err := restored.Relearn(req); err != nil {
		t.Fatal(err)
	}
}

func TestSaveStateErrors(t *testing.T) {
	clients, _ := testClients(t, 2, 4, 32)
	sys, err := NewSystem(DefaultConfig(testArch()), clients)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err == nil {
		t.Fatal("SaveState before Train must fail")
	}
}

func TestLoadStateErrors(t *testing.T) {
	sys, _ := trainedSystem(t, 33)
	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Loading into a trained system fails.
	if err := sys.LoadState(&buf); err == nil {
		t.Fatal("LoadState on trained system must fail")
	}
	// Garbage fails cleanly.
	fresh, err := NewSystem(sys.Cfg, sys.Clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(bytes.NewReader([]byte{9, 9, 9, 9})); err == nil {
		t.Fatal("expected bad magic error")
	}
	// Client-count mismatch fails.
	var buf2 bytes.Buffer
	sys2, _ := trainedSystem(t, 34)
	if err := sys2.SaveState(&buf2); err != nil {
		t.Fatal(err)
	}
	smaller, err := NewSystem(sys.Cfg, data.NewCohort([]*data.Dataset{sys.Clients.Shard(0), sys.Clients.Shard(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if err := smaller.LoadState(&buf2); err == nil {
		t.Fatal("expected client-count mismatch error")
	}
}
