package core

import (
	"errors"
	"strings"
	"testing"

	"quickdrop/internal/eval"
)

// TestUnlearnBatchValidation covers the fast failure paths: before
// Train, empty batches, and the single-operation guard.
func TestUnlearnBatchValidation(t *testing.T) {
	clients, _ := testClients(t, 2, 4, 3)
	sys, err := NewSystem(DefaultConfig(testArch()), clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.UnlearnBatch([]Request{{Kind: ClassLevel, Class: 1}}); err == nil {
		t.Fatal("expected error before Train")
	}
	if _, err := sys.UnlearnBatch(nil); err == nil {
		t.Fatal("expected error for empty batch")
	}

	// While one operation holds the slot, every other entry point is
	// rejected with ErrBusy instead of interleaving.
	if err := sys.acquire("test"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.UnlearnBatch([]Request{{Kind: ClassLevel, Class: 1}}); !errors.Is(err, ErrBusy) {
		t.Fatalf("UnlearnBatch under held guard: got %v, want ErrBusy", err)
	}
	if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: 1}); !errors.Is(err, ErrBusy) {
		t.Fatalf("Unlearn under held guard: got %v, want ErrBusy", err)
	}
	if _, err := sys.Train(); !errors.Is(err, ErrBusy) {
		t.Fatalf("Train under held guard: got %v, want ErrBusy", err)
	}
	if _, err := sys.Recover(1); !errors.Is(err, ErrBusy) {
		t.Fatalf("Recover under held guard: got %v, want ErrBusy", err)
	}
	if _, err := sys.Relearn(Request{Kind: ClassLevel, Class: 1}); !errors.Is(err, ErrBusy) {
		t.Fatalf("Relearn under held guard: got %v, want ErrBusy", err)
	}
	sys.release()
	if _, err := sys.Train(); err != nil {
		t.Fatalf("Train after release: %v", err)
	}
}

func TestValidateRequest(t *testing.T) {
	clients, _ := testClients(t, 3, 4, 4)
	sys, err := NewSystem(DefaultConfig(testArch()), clients)
	if err != nil {
		t.Fatal(err)
	}
	valid := []Request{
		{Kind: ClassLevel, Class: 0},
		{Kind: ClientLevel, Client: 2},
		{Kind: SampleLevel, Client: 1, Samples: []int{0}},
	}
	for _, req := range valid {
		if err := sys.ValidateRequest(req); err != nil {
			t.Errorf("ValidateRequest(%v) = %v, want nil", req, err)
		}
	}
	invalid := []Request{
		{Kind: ClassLevel, Class: -1},
		{Kind: ClassLevel, Class: 10},
		{Kind: ClientLevel, Client: 3},
		{Kind: SampleLevel, Client: 0},
		{Kind: RequestKind(99)},
	}
	for _, req := range invalid {
		if err := sys.ValidateRequest(req); err == nil {
			t.Errorf("ValidateRequest(%v) = nil, want error", req)
		}
	}
}

// TestUnlearnBatchSingleIsUnlearn pins the serving layer's numerical
// contract: a batch of one request produces bit-for-bit the same model
// as Unlearn on that request, because Unlearn IS a batch of one.
func TestUnlearnBatchSingleIsUnlearn(t *testing.T) {
	sysA, _ := trainedSystem(t, 7)
	sysB, _ := trainedSystem(t, 7)
	req := Request{Kind: ClassLevel, Class: 3}

	repA, err := sysA.Unlearn(req)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := sysB.UnlearnBatch([]Request{req})
	if err != nil {
		t.Fatal(err)
	}
	if len(repB.Requests) != 1 || len(repB.Rejected) != 0 {
		t.Fatalf("batch report: %d accepted, %d rejected; want 1, 0", len(repB.Requests), len(repB.Rejected))
	}
	if repA.Unlearn.Rounds != repB.Unlearn.Rounds || repA.Recover.Rounds != repB.Recover.Rounds ||
		repA.Unlearn.DataSize != repB.Unlearn.DataSize || repA.Recover.DataSize != repB.Recover.DataSize {
		t.Fatalf("cost mismatch: Unlearn=%+v vs batch %+v", repA, repB)
	}

	pa, pb := sysA.Model.CloneParams(), sysB.Model.CloneParams()
	for i := range pa {
		da, db := pa[i].Data(), pb[i].Data()
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("param %d[%d]: Unlearn=%v batch=%v — single-request batch is not bitwise identical", i, j, da[j], db[j])
			}
		}
	}
}

// TestUnlearnBatchCoalesced exercises a real coalesced pass: several
// requests share one SGA + recovery pass, intra-batch duplicates are
// rejected without poisoning the batch, and the forget ledger ends in
// the same state sequential submission would produce.
func TestUnlearnBatchCoalesced(t *testing.T) {
	sys, test := trainedSystem(t, 11)
	reqs := []Request{
		{Kind: ClassLevel, Class: 1},
		{Kind: ClassLevel, Class: 2},
		{Kind: ClassLevel, Class: 1}, // duplicate inside the batch
	}
	br, err := sys.UnlearnBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Requests) != 2 {
		t.Fatalf("accepted %d requests, want 2", len(br.Requests))
	}
	if len(br.Rejected) != 1 {
		t.Fatalf("rejected %d requests, want 1", len(br.Rejected))
	}
	if br.Rejected[0].Index != 2 {
		t.Fatalf("rejected index %d, want 2", br.Rejected[0].Index)
	}
	if !strings.Contains(br.Rejected[0].Err.Error(), "already unlearned") {
		t.Fatalf("rejection reason %q, want already-unlearned", br.Rejected[0].Err)
	}
	// One pass for the whole batch: the unlearn cost counts the paper's
	// single SGA round, not one per request.
	if br.Unlearn.Rounds != sys.Cfg.Unlearn.Rounds {
		t.Fatalf("unlearn rounds %d, want %d (one shared pass)", br.Unlearn.Rounds, sys.Cfg.Unlearn.Rounds)
	}
	removed := sys.RemovedClasses()
	if len(removed) != 2 {
		t.Fatalf("removed classes %v, want {1, 2}", removed)
	}
	// Both targets must now be rejected as duplicates across batches too.
	for _, class := range []int{1, 2} {
		if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: class}); err == nil {
			t.Fatalf("re-unlearning class %d succeeded", class)
		}
	}
	// The model should have actually forgotten: both classes together
	// must sit well below the retained classes.
	f1, _ := eval.ClassSplit(sys.Model, test, 1)
	f2, r := eval.ClassSplit(sys.Model, test, 2)
	if f1 > r || f2 > r {
		t.Fatalf("forget-set accuracy (%.3f, %.3f) not below retain-set %.3f", f1, f2, r)
	}
}

// TestUnlearnBatchPhaseFailureRollsBackLedger pins the error
// contract: whether the SGA or the recovery phase fails, the forget
// ledger is restored to its pre-call state so the same requests can
// be resubmitted once the fault is fixed.
func TestUnlearnBatchPhaseFailureRollsBackLedger(t *testing.T) {
	sys, _ := trainedSystem(t, 17)
	goodUnlearnLR, goodRecoverLR := sys.Cfg.Unlearn.LR, sys.Cfg.Recover.LR
	reqs := []Request{{Kind: ClassLevel, Class: 1}, {Kind: ClassLevel, Class: 2}}

	sys.Cfg.Unlearn.LR = -1 // SGA phase rejects its config
	if _, err := sys.UnlearnBatch(reqs); err == nil || !strings.Contains(err.Error(), "unlearning phase") {
		t.Fatalf("got %v, want an unlearning-phase error", err)
	}
	if got := sys.RemovedClasses(); len(got) != 0 {
		t.Fatalf("removed classes %v after SGA failure, want none", got)
	}

	sys.Cfg.Unlearn.LR = goodUnlearnLR
	sys.Cfg.Recover.LR = -1 // SGA succeeds, recovery rejects its config
	if _, err := sys.UnlearnBatch(reqs); err == nil || !strings.Contains(err.Error(), "recovery phase") {
		t.Fatalf("got %v, want a recovery-phase error", err)
	}
	if got := sys.RemovedClasses(); len(got) != 0 {
		t.Fatalf("removed classes %v after recovery failure, want none", got)
	}

	// Healed, the SAME batch must execute — no "already unlearned"
	// rejections left over from the failed attempts.
	sys.Cfg.Recover.LR = goodRecoverLR
	br, err := sys.UnlearnBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Requests) != 2 || len(br.Rejected) != 0 {
		t.Fatalf("accepted %d rejected %d after heal, want 2/0 — rollback must make the failure retryable",
			len(br.Requests), len(br.Rejected))
	}
}

// TestUnlearnBatchAllRejected checks that a batch with no executable
// request reports an error and leaves the ledger untouched.
func TestUnlearnBatchAllRejected(t *testing.T) {
	sys, _ := trainedSystem(t, 13)
	if _, err := sys.Unlearn(Request{Kind: ClassLevel, Class: 4}); err != nil {
		t.Fatal(err)
	}
	br, err := sys.UnlearnBatch([]Request{
		{Kind: ClassLevel, Class: 4},      // already unlearned
		{Kind: ClassLevel, Class: 99},     // out of range
		{Kind: ClientLevel, Client: -1},   // out of range
		{Kind: SampleLevel, Client: 1000}, // out of range
	})
	if err == nil {
		t.Fatal("expected error for all-rejected batch")
	}
	if len(br.Requests) != 0 || len(br.Rejected) != 4 {
		t.Fatalf("accepted %d rejected %d, want 0 and 4", len(br.Requests), len(br.Rejected))
	}
	if got := sys.RemovedClasses(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("removed classes %v changed by rejected batch", got)
	}
}
