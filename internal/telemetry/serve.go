package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar name: expvar.Publish
// panics on duplicates, and tests (or repeated Serve calls) may start
// several servers in one process.
var publishOnce sync.Once

// Server is a live telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Register mounts the telemetry endpoints on an existing mux:
//
//	/metrics     Prometheus text exposition of the pipeline's registry
//	/dashboard   self-contained live HTML+SVG flight-recorder view
//	/api/series  flight-recorder series as JSON (?n= downsamples)
//	/debug/vars  expvar (plus a "quickdrop_spans" variable: span counts)
//	/debug/pprof net/http/pprof profiles
//
// Serve uses it on a fresh mux; servers with routes of their own (the
// quickdropd ops console) mount the same handlers next to theirs. The
// pipeline may be nil or partially populated — every handler degrades
// to an empty view.
func Register(mux *http.ServeMux, p *Pipeline) {
	var reg *Registry
	var tr *Tracer
	if p != nil {
		reg, tr = p.Registry, p.Tracer
	}
	publishOnce.Do(func() {
		expvar.Publish("quickdrop_spans", expvar.Func(func() any {
			return map[string]any{"retained": tr.Len(), "total": tr.Total()}
		}))
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A write error means the scraper hung up; nothing to report to.
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, _ *http.Request) {
		writeDashboard(w, p)
	})
	mux.HandleFunc("/api/series", func(w http.ResponseWriter, r *http.Request) {
		writeSeriesJSON(w, r, p)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts an HTTP server on addr (e.g. ":9090" or "127.0.0.1:0")
// exposing the Register endpoints. It returns once the listener is
// bound; requests are served on a background goroutine until Close.
func Serve(addr string, p *Pipeline) (*Server, error) {
	mux := http.NewServeMux()
	Register(mux, p)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	// Serve always returns a non-nil error once Close tears it down.
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
