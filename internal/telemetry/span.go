package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind positions a span in the pipeline hierarchy.
type SpanKind uint8

const (
	// SpanExperiment is the root: one whole run of a cmd or harness.
	SpanExperiment SpanKind = iota + 1
	// SpanPhase is one FedAvg phase (train, unlearn, recover, …).
	SpanPhase
	// SpanRound is one global FL round inside a phase.
	SpanRound
	// SpanClientStep is one client's local-steps batch inside a round.
	SpanClientStep
	// SpanDistillStep is one in-situ gradient-matching update.
	SpanDistillStep
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanExperiment:
		return "experiment"
	case SpanPhase:
		return "phase"
	case SpanRound:
		return "round"
	case SpanClientStep:
		return "client-step"
	case SpanDistillStep:
		return "distill-step"
	default:
		return "span"
	}
}

// SpanRecord is one completed span in the ring buffer. Round and
// Client are -1 when not applicable.
type SpanRecord struct {
	ID     uint64   `json:"id"`
	Parent uint64   `json:"parent"`
	Kind   SpanKind `json:"-"`
	Name   string   `json:"name"`
	Round  int32    `json:"round"`
	Client int32    `json:"client"`
	// Start and End are telemetry-clock nanoseconds.
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
}

// Duration returns the span length.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.End - r.Start) }

// Tracer records completed spans into a bounded ring buffer: the
// newest records win, recording never blocks on consumers and never
// allocates. A nil tracer is fully disabled — Start returns a zero
// Span without even reading the clock.
type Tracer struct {
	ids atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	n    uint64 // total records ever written
}

// DefaultSpanCapacity bounds the ring when callers pass 0.
const DefaultSpanCapacity = 4096

// NewTracer returns a tracer with the given ring capacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

// Span is a live, value-typed span handle. The zero Span is the
// disabled handle: End is a no-op returning 0.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	kind   SpanKind
	name   string
	round  int32
	client int32
	start  int64
}

// Start opens a span. parent is the ID of the enclosing span (0 for
// roots); round/client are -1 when not applicable.
func (t *Tracer) Start(kind SpanKind, name string, parent uint64, round, client int) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:     t,
		id:     t.ids.Add(1),
		parent: parent,
		kind:   kind,
		name:   name,
		round:  int32(round),
		client: int32(client),
		start:  clock(),
	}
}

// ID returns the span's identifier (0 for a disabled span).
func (s Span) ID() uint64 { return s.id }

// End closes the span, records it, and returns its duration. The
// mutex-guarded ring write is allocation-free; End on a zero Span
// reads no clock and records nothing.
func (s Span) End() time.Duration {
	if s.tr == nil {
		return 0
	}
	end := clock()
	t := s.tr
	t.mu.Lock()
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Kind: s.kind, Name: s.name,
		Round: s.round, Client: s.client, Start: s.start, End: end,
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.n%uint64(cap(t.ring))] = rec
	}
	t.n++
	t.mu.Unlock()
	return time.Duration(end - s.start)
}

// Len returns the number of retained records.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total returns how many spans were ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Snapshot copies the retained records out in oldest-to-newest order.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if t.n > uint64(cap(t.ring)) {
		// The ring wrapped: records [n mod cap, cap) are the oldest.
		head := int(t.n % uint64(cap(t.ring)))
		out = append(out, t.ring[head:]...)
		out = append(out, t.ring[:head]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}
