package telemetry

import (
	"testing"
	"time"
)

func TestPipelineRecordsHierarchy(t *testing.T) {
	tick := fakeClock(t)
	reg := NewRegistry()
	tr := NewTracer(0)
	p := NewPipeline(reg, tr, 4)

	pt := p.StartPhase("train")
	rs := p.StartRound(0)
	cs := p.StartClient(0, 2)
	p.LocalStep(2, 16)
	p.LocalStep(2, 16)
	tick(time.Millisecond)
	p.EndClient(cs)
	ds := p.StartDistill(0, 2)
	tick(2 * time.Millisecond)
	p.EndDistill(ds, 2*time.Millisecond)
	p.EndRound(rs, 3)
	if d := pt.Stop(); d != 3*time.Millisecond {
		t.Fatalf("phase duration = %v, want 3ms", d)
	}
	p.Request(0)
	p.DropUpdate()
	p.Close()

	if got := p.Rounds.Value(); got != 1 {
		t.Errorf("Rounds = %d, want 1", got)
	}
	if got := p.LocalSteps.At(2).Value(); got != 2 {
		t.Errorf("LocalSteps[2] = %d, want 2", got)
	}
	if got := p.Samples.Value(); got != 32 {
		t.Errorf("Samples = %d, want 32", got)
	}
	if got := p.Participants.Value(); got != 3 {
		t.Errorf("Participants = %v, want 3", got)
	}
	if got := p.DistillSteps.Value(); got != 1 {
		t.Errorf("DistillSteps = %d, want 1", got)
	}
	if got := p.DistillSecondsSum.Value(); got != 0.002 {
		t.Errorf("DistillSecondsSum = %v, want 0.002", got)
	}
	if got := p.PhaseSeconds.At(phaseIndex("train")).Count(); got != 1 {
		t.Errorf("PhaseSeconds[train] = %d, want 1", got)
	}
	if got := p.UnlearnRequests.At(0).Value(); got != 1 {
		t.Errorf("UnlearnRequests[class] = %d, want 1", got)
	}
	if got := p.Dropped.Value(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}

	// Span hierarchy: experiment ← phase ← round ← {client, distill}.
	byKind := map[SpanKind]SpanRecord{}
	for _, rec := range tr.Snapshot() {
		byKind[rec.Kind] = rec
	}
	exp, ok := byKind[SpanExperiment]
	if !ok {
		t.Fatal("experiment span missing")
	}
	phase := byKind[SpanPhase]
	round := byKind[SpanRound]
	if phase.Parent != exp.ID {
		t.Errorf("phase parent = %d, want experiment %d", phase.Parent, exp.ID)
	}
	if round.Parent != phase.ID {
		t.Errorf("round parent = %d, want phase %d", round.Parent, phase.ID)
	}
	if c := byKind[SpanClientStep]; c.Parent != round.ID || c.Client != 2 {
		t.Errorf("client span wrong: %+v", c)
	}
	if d := byKind[SpanDistillStep]; d.Parent != round.ID {
		t.Errorf("distill parent = %d, want round %d", d.Parent, round.ID)
	}
}

func TestNilPipelineStopwatchStillWorks(t *testing.T) {
	tick := fakeClock(t)
	var p *Pipeline
	pt := p.StartPhase("train")
	tick(7 * time.Millisecond)
	if d := pt.Stop(); d != 7*time.Millisecond {
		t.Fatalf("nil-pipeline phase duration = %v, want 7ms", d)
	}
	// All other record paths must be silent no-ops.
	sp := p.StartRound(0)
	p.LocalStep(0, 8)
	p.EndClient(p.StartClient(0, 0))
	p.EndDistill(p.StartDistill(0, 0), time.Millisecond)
	p.EndRound(sp, 1)
	p.Request(1)
	p.DropUpdate()
	p.Close()
}

func TestPhaseIndexFallsBackToOther(t *testing.T) {
	if got, want := phaseIndex("unheard-of"), len(PhaseNames)-1; got != want {
		t.Fatalf("phaseIndex = %d, want %d (other)", got, want)
	}
	if PhaseNames[phaseIndex("unlearn")] != "unlearn" {
		t.Fatal("known phase should map to itself")
	}
}

func TestStopwatch(t *testing.T) {
	tick := fakeClock(t)
	sw := StartTimer()
	tick(42 * time.Millisecond)
	if d := sw.Elapsed(); d != 42*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 42ms", d)
	}
	if got := Now(); got != int64(42*time.Millisecond) {
		t.Fatalf("Now = %d, want %d", got, int64(42*time.Millisecond))
	}
}
