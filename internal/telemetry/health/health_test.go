package health

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"quickdrop/internal/telemetry"
)

func testMonitor(cfg Config) (*Monitor, *telemetry.Pipeline) {
	pipe := telemetry.NewPipeline(telemetry.NewRegistry(), nil, 2)
	return New(cfg, pipe), pipe
}

func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	m.BeginPhase("train")
	if m.Sample() {
		t.Error("nil Sample should be false")
	}
	m.RecordLoss(1, math.NaN())
	m.RecordLayer(0, 1, 1e9, 3, 1, 1, 0)
	m.RecordDistill(1, math.NaN(), 1e9, 1)
	m.RecordRound(1, 1, 1)
	m.BindLayers([]string{"w"})
	m.Reset()
	if err := m.Check(); err != nil {
		t.Errorf("nil Check = %v, want nil", err)
	}
	if m.Tripped() {
		t.Error("nil Tripped should be false")
	}
	if m.Summary() != nil {
		t.Error("nil Summary should be nil")
	}
}

func TestNaNLossTrips(t *testing.T) {
	var buf bytes.Buffer
	m, _ := testMonitor(Config{Events: telemetry.NewEventLog(&buf)})
	m.BeginPhase("unlearn")
	m.RecordLoss(7, math.NaN())
	if !m.Tripped() {
		t.Fatal("NaN loss must trip the watchdog")
	}
	err := m.Check()
	if err == nil || !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("Check = %v, want ErrUnhealthy", err)
	}
	var uh *UnhealthyError
	if !errors.As(err, &uh) {
		t.Fatalf("Check error %T does not unwrap to *UnhealthyError", err)
	}
	if uh.Verdict.Reason != "nan_loss" || uh.Verdict.Phase != "unlearn" || uh.Verdict.Step != 7 {
		t.Fatalf("verdict = %+v", uh.Verdict)
	}
	if !strings.Contains(err.Error(), "nan_loss") || !strings.Contains(err.Error(), "unlearn") {
		t.Fatalf("error text %q should carry reason and phase", err)
	}

	// The JSONL event is emitted exactly once, on the first Check.
	if err2 := m.Check(); err2 == nil {
		t.Fatal("second Check must still fail")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 trip event, got %d: %q", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("trip event is not JSON: %v", err)
	}
	if ev["event"] != "health_trip" || ev["reason"] != "nan_loss" || ev["phase"] != "unlearn" {
		t.Fatalf("trip event = %v", ev)
	}
}

func TestLossSpikeDetectorRebaselinesPerPhase(t *testing.T) {
	m, _ := testMonitor(Config{LossSpikeFactor: 10})
	m.BeginPhase("train")
	for i := 0; i < ewmaWarmup; i++ {
		m.RecordLoss(float64(i), 1.0)
	}
	m.RecordLoss(100, 2.0) // 2× is fine
	if m.Tripped() {
		t.Fatal("2x loss should not trip a 10x detector")
	}

	// Gradient ascent: the unlearning phase STARTS with a much larger
	// loss. BeginPhase must re-baseline so that's warm-up, not a spike.
	m.BeginPhase("unlearn")
	for i := 0; i < ewmaWarmup; i++ {
		m.RecordLoss(float64(200+i), 50.0)
	}
	if m.Tripped() {
		t.Fatal("phase-initial loss jump must not trip after BeginPhase")
	}
	// But a genuine 10x explosion relative to the new baseline trips.
	m.RecordLoss(300, 50.0*10+1)
	if !m.Tripped() {
		t.Fatal("10x spike over the phase baseline must trip")
	}
	var uh *UnhealthyError
	if err := m.Check(); !errors.As(err, &uh) || uh.Verdict.Reason != "loss_spike" {
		t.Fatalf("Check = %v, want loss_spike verdict", err)
	}
}

func TestRecordLayerThresholds(t *testing.T) {
	cases := []struct {
		name   string
		record func(m *Monitor)
		reason string
	}{
		{"grad norm explosion", func(m *Monitor) {
			m.RecordLayer(0, 1, 2e3, 0, 0.1, 1, 0)
		}, "grad_norm"},
		{"nan grad", func(m *Monitor) {
			m.RecordLayer(1, 2, 5, 3, 0.1, 1, 0)
		}, "nan_grad"},
		{"update ratio", func(m *Monitor) {
			m.RecordLayer(0, 3, 5, 0, 90, 1, 0)
		}, "update_ratio"},
		{"nonfinite param", func(m *Monitor) {
			m.RecordLayer(0, 4, 5, 0, 0.1, 1, 2)
		}, "nonfinite_param"},
	}
	for _, tc := range cases {
		m, _ := testMonitor(Config{})
		m.BindLayers([]string{"conv0/w", "conv0/b"})
		m.BeginPhase("train")
		tc.record(m)
		var uh *UnhealthyError
		if err := m.Check(); !errors.As(err, &uh) {
			t.Fatalf("%s: Check = %v, want trip", tc.name, err)
		} else if uh.Verdict.Reason != tc.reason {
			t.Fatalf("%s: reason = %q, want %q", tc.name, uh.Verdict.Reason, tc.reason)
		} else if uh.Verdict.Layer == "" {
			t.Fatalf("%s: verdict should name the layer", tc.name)
		}
	}
}

func TestRecordRoundAndDistillTripwires(t *testing.T) {
	m, _ := testMonitor(Config{})
	m.RecordRound(1, 10, 0)
	if m.Tripped() {
		t.Fatal("finite round norm should not trip")
	}
	m.RecordRound(2, 10, 4)
	var uh *UnhealthyError
	if err := m.Check(); !errors.As(err, &uh) || uh.Verdict.Reason != "nonfinite_param" {
		t.Fatalf("Check = %v, want nonfinite_param", err)
	}

	m2, _ := testMonitor(Config{})
	m2.RecordDistill(1, math.Inf(1), 0, 0)
	if err := m2.Check(); !errors.As(err, &uh) || uh.Verdict.Reason != "nan_loss" {
		t.Fatalf("distill Check = %v, want nan_loss", err)
	}
}

func TestFirstVerdictWins(t *testing.T) {
	m, _ := testMonitor(Config{})
	m.BeginPhase("unlearn")
	m.RecordLoss(1, math.NaN())
	m.RecordLayer(0, 2, 2e9, 0, 1, 1, 0) // later grad explosion must not overwrite
	var uh *UnhealthyError
	if err := m.Check(); !errors.As(err, &uh) || uh.Verdict.Reason != "nan_loss" {
		t.Fatalf("Check = %v, want the FIRST verdict (nan_loss)", err)
	}
}

func TestResetClearsTripButSummaryIsSticky(t *testing.T) {
	m, pipe := testMonitor(Config{})
	m.RecordLoss(1, math.NaN())
	if m.Check() == nil {
		t.Fatal("want trip")
	}
	m.Reset()
	if m.Tripped() {
		t.Fatal("Reset must clear the current trip")
	}
	if err := m.Check(); err != nil {
		t.Fatalf("Check after Reset = %v, want nil", err)
	}
	m.RecordLoss(2, 0.5) // healthy again

	s := m.Summary()
	if s == nil {
		t.Fatal("Summary is nil")
	}
	if !s.Healthy {
		t.Error("current state should be healthy after Reset")
	}
	if !s.Tripped || s.Trips != 1 || s.Verdict != "nan_loss" {
		t.Errorf("trip history must survive Reset: %+v", s)
	}
	if s.NaNEvents != 1 {
		t.Errorf("NaNEvents = %d, want 1", s.NaNEvents)
	}

	// The gauge recovered too.
	if v := gaugeValue(t, pipe, "quickdrop_health"); v != 1 {
		t.Errorf("quickdrop_health after Reset = %v, want 1", v)
	}
}

func gaugeValue(t *testing.T, pipe *telemetry.Pipeline, name string) float64 {
	t.Helper()
	s, ok := pipe.Registry.Summaries()[name]
	if !ok {
		t.Fatalf("gauge %s not registered", name)
	}
	return s.Sum
}

func TestSummaryExtremes(t *testing.T) {
	m, _ := testMonitor(Config{GradNormMax: 1e6, UpdateRatioMax: 100})
	m.BindLayers([]string{"w"})
	m.RecordLayer(0, 1, 10, 0, 2, 4, 0)  // ratio 0.5
	m.RecordLayer(0, 2, 150, 0, 3, 4, 0) // ratio 0.75
	m.RecordLayer(0, 3, 50, 0, 1, 4, 0)
	s := m.Summary()
	if s.MaxGradNorm != 150 {
		t.Errorf("MaxGradNorm = %v, want 150", s.MaxGradNorm)
	}
	if s.MaxUpdateRatio != 0.75 {
		t.Errorf("MaxUpdateRatio = %v, want 0.75", s.MaxUpdateRatio)
	}
	if s.Tripped || !s.Healthy {
		t.Errorf("healthy run summary: %+v", s)
	}
}

func TestSampleCadence(t *testing.T) {
	m := New(Config{SampleEvery: 4}, nil)
	var hits []int
	for i := 1; i <= 12; i++ {
		if m.Sample() {
			hits = append(hits, i)
		}
	}
	want := []int{4, 8, 12}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestHealthStatusSeries(t *testing.T) {
	m, pipe := testMonitor(Config{})
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	m.RecordLoss(1, math.NaN())
	_ = m.Check()
	id, ok := pipe.Series.ID("health_status")
	if !ok {
		t.Fatal("health_status series not registered")
	}
	pts := pipe.Series.Points(id)
	if len(pts) != 2 || pts[0].Y != 1 || pts[1].Y != 0 {
		t.Fatalf("health_status points = %v, want [1, 0]", pts)
	}
}

// TestRecordPathsDoNotAllocate pins the hot-path contract: every
// Record* method and Sample are allocation-free both on a live monitor
// and on a nil one (health disabled).
func TestRecordPathsDoNotAllocate(t *testing.T) {
	live, _ := testMonitor(Config{SampleEvery: 1})
	live.BindLayers([]string{"w", "b"})
	live.BeginPhase("train")
	var nilMon *Monitor
	for _, tc := range []struct {
		name string
		m    *Monitor
	}{{"enabled", live}, {"disabled", nilMon}} {
		m := tc.m
		cases := []struct {
			name string
			fn   func()
		}{
			{"Sample", func() { m.Sample() }},
			{"RecordLoss", func() { m.RecordLoss(1, 0.5) }},
			{"RecordLayer", func() { m.RecordLayer(0, 1, 2, 0, 0.01, 1, 0) }},
			{"RecordDistill", func() { m.RecordDistill(1, 0.5, 2, 0) }},
			{"RecordRound", func() { m.RecordRound(1, 3, 0) }},
			{"BeginPhase", func() { m.BeginPhase("train") }},
		}
		for _, c := range cases {
			c.fn() // warm up
			if n := testing.AllocsPerRun(100, c.fn); n != 0 {
				t.Errorf("%s %s allocates %v times per run, want 0", tc.name, c.name, n)
			}
		}
	}
}
