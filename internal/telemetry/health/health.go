// Package health is the numerics observability layer: a sampling
// monitor that watches gradient norms, update/parameter ratios, losses,
// and aggregate parameter norms for the signatures of a diverging or
// NaN-poisoned run, and a watchdog that turns those signatures into a
// typed error the unlearning pipeline treats like any phase failure.
//
// The design splits hot from warm:
//
//   - Record* methods run on training/unlearning hot paths. They are
//     nil-receiver-safe, allocation-free (proven by AllocsPerRun tests
//     and the quickdroplint telemetry rule), and only LATCH a verdict —
//     they never format, emit, or construct errors.
//   - Check runs on warm per-round paths. It surfaces the latched
//     verdict as an *UnhealthyError (unwrapping to ErrUnhealthy), emits
//     the JSONL trip event, and flips the quickdrop_health gauge.
//
// Sampling: expensive per-layer statistics are only computed when
// Sample() returns true (every Config.SampleEvery-th call), so the
// steady-state overhead is a counter increment. The hard NaN/Inf
// tripwire on losses is exercised on every recorded step — a scalar
// self-comparison costs nothing.
//
// Everything here is read-only with respect to the model: a run with
// the monitor attached is bitwise identical to one without.
package health

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"quickdrop/internal/telemetry"
)

// ErrUnhealthy is the sentinel every watchdog error unwraps to. Callers
// gate on errors.Is(err, health.ErrUnhealthy) to distinguish "the
// numerics watchdog refused to continue" from other phase failures.
var ErrUnhealthy = errors.New("health: numerics watchdog tripped")

// Verdict describes why the watchdog tripped. All fields are plain
// values latched on the hot path (layer names come from the pre-bound
// table, so no formatting happens until the error is printed).
type Verdict struct {
	// Reason is one of "nan_loss", "loss_spike", "grad_norm",
	// "nan_grad", "update_ratio", "nonfinite_param".
	Reason string
	// Phase is the pipeline phase active at the trip.
	Phase string
	// Layer names the offending parameter for per-layer trips.
	Layer string
	// Value crossed Threshold at step/coordinate Step.
	Value     float64
	Threshold float64
	Step      float64
}

// String renders the verdict for audit trails and error messages.
func (v Verdict) String() string {
	s := v.Reason
	if v.Layer != "" {
		s += " at " + v.Layer
	}
	if v.Phase != "" {
		s += " in phase " + v.Phase
	}
	return s
}

// UnhealthyError carries the watchdog verdict; it unwraps to
// ErrUnhealthy.
type UnhealthyError struct {
	Verdict Verdict
}

func (e *UnhealthyError) Error() string {
	v := e.Verdict
	return fmt.Sprintf("health: watchdog tripped: %s (value %g, threshold %g, step %g)",
		v.String(), v.Value, v.Threshold, v.Step)
}

func (e *UnhealthyError) Unwrap() error { return ErrUnhealthy }

// Config are the monitor's thresholds. Zero values select defaults.
type Config struct {
	// SampleEvery is the cadence of the expensive per-layer statistics:
	// Sample() returns true once every SampleEvery calls (default 16).
	SampleEvery int
	// GradNormMax trips the watchdog when a sampled per-layer gradient
	// L2 norm exceeds it (default 1e3).
	GradNormMax float64
	// LossSpikeFactor trips when a recorded loss exceeds
	// max(EWMA, 1) × factor after the per-phase warm-up (default 20).
	// The floor keeps near-zero converged losses from turning ordinary
	// fluctuation into a spike.
	LossSpikeFactor float64
	// EWMAAlpha is the loss EWMA smoothing factor (default 0.1).
	EWMAAlpha float64
	// UpdateRatioMax trips when a sampled per-layer update-norm /
	// param-norm ratio exceeds it (default 50). Healthy early training
	// on small freshly-initialized layers reaches ratios near 1, so the
	// default only catches updates that dwarf the parameters — a
	// genuine divergence signature.
	UpdateRatioMax float64
	// Events receives one JSONL trip event per watchdog trip (nil
	// discards).
	Events *telemetry.EventLog
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	if c.GradNormMax == 0 {
		c.GradNormMax = 1e3
	}
	if c.LossSpikeFactor == 0 {
		c.LossSpikeFactor = 20
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.1
	}
	if c.UpdateRatioMax == 0 {
		c.UpdateRatioMax = 50
	}
	return c
}

// ewmaWarmup is how many losses seed the per-phase EWMA before the
// spike detector arms. Unlearning is gradient ASCENT — loss rises by
// design — so BeginPhase re-baselines and the first few samples of
// every phase only feed the average.
const ewmaWarmup = 8

// Monitor is the numerics health monitor. All methods are safe for
// concurrent use and no-ops on a nil receiver, matching the telemetry
// handles it feeds.
type Monitor struct {
	cfg    Config
	pipe   *telemetry.Pipeline
	series *telemetry.SeriesStore

	// Instruments (nil-safe handles when the pipeline has no registry).
	gHealth  *telemetry.Gauge   // quickdrop_health (1 healthy, 0 tripped)
	cNaN     *telemetry.Counter // quickdrop_health_nan_events_total
	cTrips   *telemetry.Counter // quickdrop_health_watchdog_trips_total
	gMaxGrad *telemetry.Gauge   // quickdrop_health_max_grad_norm

	// Flight-recorder series (silent-drop IDs without a series store).
	sStatus    telemetry.SeriesID
	sLossEWMA  telemetry.SeriesID
	sParamNorm telemetry.SeriesID
	sNaN       telemetry.SeriesID
	sGrad      []telemetry.SeriesID // per layer, after BindLayers
	sRatio     []telemetry.SeriesID
	layers     []string

	tick  atomic.Uint64 // Sample() cadence counter
	loss  atomic.Uint64 // RecordLoss cadence for the EWMA series
	check atomic.Uint64 // Check sequence (x of the status series)

	mu        sync.Mutex
	phase     string
	ewma      float64
	warm      int
	tripped   bool // current trip (cleared by Reset)
	emitted   bool // current trip's event emitted
	verdict   Verdict
	everTrip  bool // any trip this run (survives Reset; feeds Summary)
	first     Verdict
	trips     int64
	nanEvents int64
	maxGrad   float64
	maxRatio  float64
}

// New builds a monitor recording through pipe (nil for a detached
// monitor that only watchdogs).
func New(cfg Config, pipe *telemetry.Pipeline) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{cfg: cfg, pipe: pipe}
	if pipe != nil {
		m.series = pipe.Series
	}
	m.sStatus, m.sLossEWMA, m.sParamNorm, m.sNaN = -1, -1, -1, -1
	if pipe != nil {
		reg := pipe.Registry
		m.gHealth = reg.Gauge("quickdrop_health", "Numerics health: 1 healthy, 0 watchdog tripped.")
		m.cNaN = reg.Counter("quickdrop_health_nan_events_total", "Non-finite (NaN/Inf) observations.")
		m.cTrips = reg.Counter("quickdrop_health_watchdog_trips_total", "Divergence watchdog trips.")
		m.gMaxGrad = reg.Gauge("quickdrop_health_max_grad_norm", "Largest sampled per-layer gradient L2 norm.")
		if pipe.Series != nil {
			m.sStatus = pipe.Series.Register("health_status", "Watchdog status (x: check sequence; 1 healthy, 0 tripped).", 0)
			m.sLossEWMA = pipe.Series.Register("health_loss_ewma", "Loss EWMA under the spike detector (x: caller's step).", 0)
			m.sParamNorm = pipe.Series.Register("health_param_norm", "Aggregate parameter L2 norm per round (x: round).", 0)
			m.sNaN = pipe.Series.Register("health_nan_events", "Cumulative non-finite observations (x: check sequence).", 0)
		}
	}
	m.gHealth.Set(1)
	return m
}

// BindLayers pre-registers the per-layer gradient-norm and update-ratio
// series for the named parameters (in layer order), so RecordLayer is a
// slice-indexed append with no name lookup. Call once after the model
// is built; unbound layers record norms but no series.
func (m *Monitor) BindLayers(names []string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.layers = append([]string(nil), names...)
	m.sGrad = make([]telemetry.SeriesID, len(names))
	m.sRatio = make([]telemetry.SeriesID, len(names))
	for i, name := range names {
		m.sGrad[i], m.sRatio[i] = -1, -1
		if m.series != nil {
			m.sGrad[i] = m.series.Register("health_grad_norm_"+name,
				"Sampled gradient L2 norm of one parameter (x: optimizer step).", 0)
			m.sRatio[i] = m.series.Register("health_update_ratio_"+name,
				"Sampled update-norm / param-norm ratio of one parameter (x: optimizer step).", 0)
		}
	}
}

// BeginPhase re-baselines the loss-spike detector for a new pipeline
// phase. Unlearning phases RAISE the loss by design, so the EWMA and
// its warm-up restart rather than carrying a training-phase baseline
// into gradient ascent. A latched trip is NOT cleared — it must still
// surface through Check.
func (m *Monitor) BeginPhase(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.phase = name
	m.ewma = 0
	m.warm = 0
	m.mu.Unlock()
}

// Sample reports whether this call lands on the sampling cadence: true
// once every Config.SampleEvery calls. Callers guard the expensive
// per-layer statistics behind it.
func (m *Monitor) Sample() bool {
	if m == nil {
		return false
	}
	return m.tick.Add(1)%uint64(m.cfg.SampleEvery) == 0
}

// latch records the first verdict of the current trip window. Called
// with m.mu held; everything stored is a plain value, so the hot path
// never allocates.
func (m *Monitor) latch(reason, layer string, value, threshold, step float64) {
	if m.tripped {
		return
	}
	m.tripped = true
	m.emitted = false
	m.trips++
	m.verdict = Verdict{
		Reason: reason, Phase: m.phase, Layer: layer,
		Value: value, Threshold: threshold, Step: step,
	}
	if !m.everTrip {
		m.everTrip = true
		m.first = m.verdict
	}
	m.cTrips.Inc()
}

// RecordLoss feeds one training/unlearning loss into the NaN tripwire
// and the EWMA spike detector. Hot path: call on every local step.
func (m *Monitor) RecordLoss(x, loss float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if loss != loss || math.IsInf(loss, 0) {
		m.nanEvents++
		m.cNaN.Inc()
		m.latch("nan_loss", "", loss, 0, x)
		m.mu.Unlock()
		return
	}
	if m.warm < ewmaWarmup {
		m.warm++
		if m.warm == 1 {
			m.ewma = loss
		} else {
			m.ewma += m.cfg.EWMAAlpha * (loss - m.ewma)
		}
	} else {
		base := m.ewma
		if base < 1 {
			base = 1
		}
		limit := base * m.cfg.LossSpikeFactor
		if loss > limit {
			m.latch("loss_spike", "", loss, limit, x)
		}
		m.ewma += m.cfg.EWMAAlpha * (loss - m.ewma)
	}
	ewma := m.ewma
	m.mu.Unlock()
	// The EWMA series records on the sampling cadence so the flight
	// recorder isn't dominated by per-step smoothing noise.
	if m.loss.Add(1)%uint64(m.cfg.SampleEvery) == 0 {
		m.series.Append(m.sLossEWMA, x, ewma)
	}
}

// RecordLayer feeds one sampled per-layer observation from the
// optimizer: the gradient L2 norm (with its non-finite element count),
// the update L2 norm, and the parameter L2 norm (with its non-finite
// count). Hot path; callers gate it behind Sample().
func (m *Monitor) RecordLayer(layer int, x, gradNorm float64, gradNonFinite int, updNorm, paramNorm float64, paramNonFinite int) {
	if m == nil {
		return
	}
	ratio := 0.0
	if paramNorm > 0 {
		ratio = updNorm / paramNorm
	}
	m.mu.Lock()
	name := ""
	if layer >= 0 && layer < len(m.layers) {
		name = m.layers[layer]
	}
	if gradNonFinite > 0 {
		m.nanEvents++
		m.cNaN.Inc()
		m.latch("nan_grad", name, float64(gradNonFinite), 0, x)
	}
	if paramNonFinite > 0 {
		m.nanEvents++
		m.cNaN.Inc()
		m.latch("nonfinite_param", name, float64(paramNonFinite), 0, x)
	}
	if gradNorm > m.cfg.GradNormMax {
		m.latch("grad_norm", name, gradNorm, m.cfg.GradNormMax, x)
	}
	if ratio > m.cfg.UpdateRatioMax {
		m.latch("update_ratio", name, ratio, m.cfg.UpdateRatioMax, x)
	}
	if gradNorm > m.maxGrad {
		m.maxGrad = gradNorm
		m.gMaxGrad.Set(gradNorm)
	}
	if ratio > m.maxRatio {
		m.maxRatio = ratio
	}
	m.mu.Unlock()
	if layer >= 0 && layer < len(m.sGrad) {
		m.series.Append(m.sGrad[layer], x, gradNorm)
		m.series.Append(m.sRatio[layer], x, ratio)
	}
}

// RecordDistill feeds one sampled gradient-matching observation: the
// matching distance and the pixel-gradient norm. Hot path; callers gate
// the norm computation behind Sample() and pass gradNorm < 0 when it
// was not sampled.
func (m *Monitor) RecordDistill(x, dist, gradNorm float64, nonFinite int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if dist != dist || math.IsInf(dist, 0) {
		m.nanEvents++
		m.cNaN.Inc()
		m.latch("nan_loss", "distill", dist, 0, x)
	}
	if nonFinite > 0 {
		m.nanEvents++
		m.cNaN.Inc()
		m.latch("nan_grad", "distill", float64(nonFinite), 0, x)
	}
	if gradNorm > m.cfg.GradNormMax {
		m.latch("grad_norm", "distill", gradNorm, m.cfg.GradNormMax, x)
	}
	if gradNorm > m.maxGrad {
		m.maxGrad = gradNorm
		m.gMaxGrad.Set(gradNorm)
	}
	m.mu.Unlock()
}

// RecordRound feeds the aggregated global model's parameter L2 norm
// after one FedAvg round. Warm path (once per round).
func (m *Monitor) RecordRound(x, paramNorm float64, nonFinite int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if nonFinite > 0 {
		m.nanEvents++
		m.cNaN.Inc()
		m.latch("nonfinite_param", "aggregate", float64(nonFinite), 0, x)
	}
	m.mu.Unlock()
	m.series.Append(m.sParamNorm, x, paramNorm)
}

// finiteOrZero maps NaN/±Inf to 0 for JSON encoding.
func finiteOrZero(v float64) float64 {
	if v != v || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// tripEvent is the JSONL record of one watchdog trip.
type tripEvent struct {
	Event     string  `json:"event"` // "health_trip"
	Reason    string  `json:"reason"`
	Phase     string  `json:"phase,omitempty"`
	Layer     string  `json:"layer,omitempty"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Step      float64 `json:"step"`
}

// Check is the warm-path gate: it returns nil while healthy, and the
// latched *UnhealthyError once the watchdog has tripped. The first
// Check after a trip emits the JSONL event and flips the health gauge;
// phase runners call it once per round and abort on error.
func (m *Monitor) Check() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	if !m.tripped {
		nan := m.nanEvents
		m.mu.Unlock()
		seq := float64(m.check.Add(1))
		m.gHealth.Set(1)
		m.series.Append(m.sStatus, seq, 1)
		m.series.Append(m.sNaN, seq, float64(nan))
		return nil
	}
	v := m.verdict
	emit := !m.emitted
	m.emitted = true
	nan := m.nanEvents
	m.mu.Unlock()
	if emit {
		seq := float64(m.check.Add(1))
		m.gHealth.Set(0)
		// encoding/json rejects non-finite numbers, and a NaN trip's
		// Value IS non-finite: zero it like the ledger's nanToZero (the
		// reason field already says what the value was).
		m.cfg.Events.Emit(tripEvent{
			Event: "health_trip", Reason: v.Reason, Phase: v.Phase,
			Layer: v.Layer, Value: finiteOrZero(v.Value),
			Threshold: finiteOrZero(v.Threshold), Step: v.Step,
		})
		m.series.Append(m.sStatus, seq, 0)
		m.series.Append(m.sNaN, seq, float64(nan))
	}
	return &UnhealthyError{Verdict: v}
}

// Tripped reports whether the watchdog is currently tripped.
func (m *Monitor) Tripped() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tripped
}

// Reset clears the current trip so the monitor can watch the next
// batch after the caller has restored a known-good model. Cumulative
// counters (trips, non-finite events, extremes) survive — the run's
// Summary still records that a trip happened.
func (m *Monitor) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.tripped = false
	m.emitted = false
	m.verdict = Verdict{}
	m.ewma = 0
	m.warm = 0
	m.mu.Unlock()
	m.gHealth.Set(1)
}

// Summary reduces the monitor for the run-ledger manifest. Healthy is
// the CURRENT state; Tripped is sticky across Reset so a run that ever
// destroyed a model never diffs clean.
func (m *Monitor) Summary() *telemetry.HealthSummary {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &telemetry.HealthSummary{
		Healthy:        !m.tripped,
		Tripped:        m.everTrip,
		NaNEvents:      m.nanEvents,
		Trips:          m.trips,
		MaxGradNorm:    m.maxGrad,
		MaxUpdateRatio: m.maxRatio,
	}
	if m.everTrip {
		s.Verdict = m.first.Reason
		s.Phase = m.first.Phase
	}
	return s
}
