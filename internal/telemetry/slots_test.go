package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

func TestSeriesRecycle(t *testing.T) {
	s := NewSeriesStore()
	id := s.Register("old_name", "old help", 8)
	s.Append(id, 1, 2)
	s.Append(id, 2, 3)
	if !s.Recycle(id, "new_name", "new help") {
		t.Fatal("recycle refused")
	}
	if _, ok := s.ID("old_name"); ok {
		t.Fatal("old name still resolves after recycle")
	}
	if got, ok := s.ID("new_name"); !ok || got != id {
		t.Fatalf("new name resolves to %d, want %d", got, id)
	}
	if pts := s.Points(id); len(pts) != 0 {
		t.Fatalf("recycled series kept %d points", len(pts))
	}
	if s.Help(id) != "new help" {
		t.Fatal("help not updated")
	}
	other := s.Register("taken", "", 8)
	if s.Recycle(id, "taken", "") {
		t.Fatalf("recycle onto a name owned by series %d must be refused", other)
	}
	var nilStore *SeriesStore
	if nilStore.Recycle(0, "x", "") {
		t.Fatal("nil store recycle must be a no-op")
	}
}

// TestPipelineCapsClientSeries: a cohort above MaxClientSeries must not
// register per-client series eagerly; the total series count stays
// bounded no matter how many distinct clients report.
func TestPipelineCapsClientSeries(t *testing.T) {
	p := NewPipeline(NewRegistry(), NewTracer(0), 1_000_000)
	baseline := len(p.Series.Names())
	// Far more distinct clients than slots report one round each.
	for c := 0; c < 10*MaxClientSeries; c++ {
		sp := p.StartClient(1, c*1000)
		p.EndClient(sp)
	}
	names := p.Series.Names()
	clientSeries := 0
	for _, n := range names {
		if strings.HasPrefix(n, "fl_client_") {
			clientSeries++
		}
	}
	if clientSeries > MaxClientSeries {
		t.Fatalf("%d client series registered, cap is %d", clientSeries, MaxClientSeries)
	}
	if len(names) > baseline+MaxClientSeries {
		t.Fatalf("series catalogue grew to %d (baseline %d): not bounded", len(names), baseline)
	}
}

// TestClientSlotsEviction exercises the deterministic policy directly:
// least-recent rounds are evicted first and the top-K largest durations
// are shielded.
func TestClientSlotsEviction(t *testing.T) {
	store := NewSeriesStore()
	cs := newClientSlots(store, 4) // tiny table: 4 slots, min(8,3)=3 protected
	// Fill the table. Client 0 is the straggler (huge duration), clients
	// 1-3 fast. All at round 1.
	cs.append(0, 1, 9.0)
	cs.append(1, 1, 0.010)
	cs.append(2, 1, 0.030)
	cs.append(3, 1, 0.020)
	// A new client arrives at round 2. Protected: top-3 maxY = clients
	// 0 (9.0), 2 (0.030), 3 (0.020). Victim must be client 1.
	cs.append(4, 2, 0.015)
	if _, ok := store.ID("fl_client_1_seconds"); ok {
		t.Fatal("client 1 should have been evicted")
	}
	for _, want := range []int{0, 2, 3, 4} {
		if _, ok := store.ID(fmt.Sprintf("fl_client_%d_seconds", want)); !ok {
			t.Fatalf("client %d series missing", want)
		}
	}
	// The straggler survives even as newer clients cycle through.
	for c := 10; c < 30; c++ {
		cs.append(c, float64(c), 0.001)
	}
	if _, ok := store.ID("fl_client_0_seconds"); !ok {
		t.Fatal("straggler (largest duration) must never be evicted")
	}
	// Re-reporting an existing client updates its slot, no eviction.
	before := len(store.Names())
	cs.append(0, 40, 0.5)
	if len(store.Names()) != before {
		t.Fatal("appending to an owned slot must not register or evict")
	}
}

// TestSmallCohortKeepsEagerSeries pins the compatibility contract: at or
// below the cap, every client gets its eagerly registered series exactly
// as before the cap existed.
func TestSmallCohortKeepsEagerSeries(t *testing.T) {
	p := NewPipeline(NewRegistry(), NewTracer(0), MaxClientSeries)
	for c := 0; c < MaxClientSeries; c++ {
		if _, ok := p.Series.ID(fmt.Sprintf("fl_client_%d_seconds", c)); !ok {
			t.Fatalf("client %d series not pre-registered for a small cohort", c)
		}
	}
	if p.slots != nil {
		t.Fatal("small cohorts must not use the slot table")
	}
}
