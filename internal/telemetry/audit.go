package telemetry

import "sync"

// AuditEntry is one deletion request's ledger record: who was
// forgotten, when, in which coalesced batch and published model
// version, with forget-set (F-Set) and retain-set (R-Set) accuracy
// measured immediately before and after the unlearning pass. It is the
// verifiable trail a GDPR deletion pipeline must leave — a reviewer
// can check that the forget-set accuracy actually collapsed for every
// honored request ("Verifiably Forgotten?", arXiv 2505.11097).
type AuditEntry struct {
	// ID is the serving-layer request ID (unique within the run).
	ID uint64 `json:"id"`
	// Stamp is the telemetry-clock completion time (UnixNano).
	Stamp int64 `json:"stamp_unix_nanos"`
	// Request is the human-readable request (core.Request.String).
	Request string `json:"request"`
	// Kind is the request granularity ("class", "client", "sample").
	Kind string `json:"kind"`
	// Batch is the coalesced batch sequence number the request rode in.
	Batch uint64 `json:"batch"`
	// Version is the model version published for the batch (0 if the
	// request failed before a publish).
	Version uint64 `json:"version,omitempty"`
	// Status is the terminal lifecycle state: "published" or "failed".
	Status string `json:"status"`
	// FsetBefore/FsetAfter bracket the forget-set accuracy across the
	// pass; unlearning succeeded when After collapsed toward chance.
	FsetBefore float64 `json:"fset_before"`
	FsetAfter  float64 `json:"fset_after"`
	// RsetBefore/RsetAfter bracket the retain-set accuracy; recovery
	// succeeded when After held near Before.
	RsetBefore float64 `json:"rset_before"`
	RsetAfter  float64 `json:"rset_after"`
	// Err records why a failed request failed.
	Err string `json:"error,omitempty"`
	// Watchdog carries the numerics watchdog verdict when the request
	// failed because the health monitor tripped mid-pass (e.g.
	// "nan_grad in phase unlearn"): the audit trail distinguishes "we
	// refused to publish a numerically-destroyed model" from an
	// ordinary phase failure.
	Watchdog string `json:"watchdog,omitempty"`
}

// AuditLog is an append-only, concurrency-safe record of served
// deletion requests. BuildManifest folds it into the run ledger, so a
// daemon's shutdown manifest carries the full audit trail. All methods
// are nil-receiver-safe, matching the rest of the telemetry handles.
type AuditLog struct {
	mu      sync.Mutex
	entries []AuditEntry
}

// Append records one entry.
func (l *AuditLog) Append(e AuditEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

// Entries returns a copy of the log in append order.
func (l *AuditLog) Entries() []AuditEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len returns the number of recorded entries.
func (l *AuditLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
