package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods
// are safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates d with a compare-and-swap loop (allocation-free).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bucket bounds are set at
// registration; Observe is a linear scan over at most a few dozen
// bounds plus three atomic updates — no allocation, no locks.
type Histogram struct {
	upper  []float64      // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(upper)+1
	sum    Gauge
	count  atomic.Int64
	quant  *Quantiles // streaming p50/p95/p99 alongside the buckets
}

// DefBuckets are the default duration buckets in seconds (the
// Prometheus client defaults, which fit round/step latencies here).
func DefBuckets() []float64 {
	return []float64{.0005, .001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1), quant: NewQuantiles()}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	h.quant.Observe(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantiles returns the histogram's streaming p50/p95/p99 estimator
// (nil for a nil histogram, which Values() handles as all-NaN).
func (h *Histogram) Quantiles() *Quantiles {
	if h == nil {
		return nil
	}
	return h.quant
}

// CounterVec is a pre-registered family of counters over a fixed label
// value set. Series are allocated at registration time so the record
// path is a bounds-checked slice index — no map lookup, no allocation.
type CounterVec struct {
	series []*Counter
}

// At returns the i-th series, or nil (a safe no-op handle) when the
// vec is nil or i is outside the pre-registered range. Out-of-range
// records are deliberately dropped rather than allocated.
func (v *CounterVec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.series) {
		return nil
	}
	return v.series[i]
}

// HistogramVec is the histogram analogue of CounterVec.
type HistogramVec struct {
	series []*Histogram
}

// At returns the i-th series or a nil no-op handle.
func (v *HistogramVec) At(i int) *Histogram {
	if v == nil || i < 0 || i >= len(v.series) {
		return nil
	}
	return v.series[i]
}

// metricKind discriminates registry families.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

// seriesEntry is one (label value, instrument) pair of a family.
type seriesEntry struct {
	labelValue string
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// family groups the series of one metric name.
type family struct {
	kind   metricKind
	name   string
	help   string
	label  string // empty for unlabeled metrics
	series []seriesEntry
}

// Registry owns metric families. Registration (allocating) happens at
// setup time; the handles it returns are the allocation-free record
// path. All registration methods are nil-receiver-safe and return nil
// no-op handles, so construction sites need no enabled/disabled
// branches.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[f.name]; ok {
		panic(fmt.Sprintf("telemetry: metric %q registered twice (kinds %d and %d)", f.name, prev.kind, f.kind))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&family{kind: kindCounter, name: name, help: help, series: []seriesEntry{{c: c}}})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&family{kind: kindGauge, name: name, help: help, series: []seriesEntry{{g: g}}})
	return g
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (DefBuckets when empty).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(buckets)
	r.register(&family{kind: kindHistogram, name: name, help: help, series: []seriesEntry{{h: h}}})
	return h
}

// CounterVec registers one counter per label value; At(i) addresses
// the series for values[i].
func (r *Registry) CounterVec(name, help, label string, values []string) *CounterVec {
	if r == nil {
		return nil
	}
	f := &family{kind: kindCounter, name: name, help: help, label: label}
	v := &CounterVec{series: make([]*Counter, len(values))}
	for i, val := range values {
		v.series[i] = &Counter{}
		f.series = append(f.series, seriesEntry{labelValue: val, c: v.series[i]})
	}
	r.register(f)
	return v
}

// HistogramVec registers one histogram per label value.
func (r *Registry) HistogramVec(name, help, label string, values []string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	f := &family{kind: kindHistogram, name: name, help: help, label: label}
	v := &HistogramVec{series: make([]*Histogram, len(values))}
	for i, val := range values {
		v.series[i] = newHistogram(buckets)
		f.series = append(f.series, seriesEntry{labelValue: val, h: v.series[i]})
	}
	r.register(f)
	return v
}

// IndexValues returns the label values "0".."n-1", the pre-registered
// value set for per-client and other index-addressed vecs.
func IndexValues(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}

// sortedFamilies snapshots the family list sorted by name, for the
// deterministic exposition order of the exporters.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
