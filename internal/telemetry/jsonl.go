package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// EventLog appends JSON objects, one per line, to a writer. Marshaling
// structs (fixed field order) rather than maps keeps the byte stream
// deterministic for a given event sequence, so logs diff cleanly
// between runs. A nil log discards events.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewEventLog wraps w. Pass the result around by pointer; a nil
// *EventLog is a valid discard sink.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w}
}

// Emit marshals v and appends it as one line. Marshal or write errors
// are sticky and returned from Err; Emit itself never fails loudly so
// event logging can't abort an experiment.
func (l *EventLog) Emit(v any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		l.err = err
		return
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err != nil {
		l.err = err
	}
}

// EmitSpans appends every retained span record from tr.
func (l *EventLog) EmitSpans(tr *Tracer) {
	if l == nil {
		return
	}
	for _, rec := range tr.Snapshot() {
		l.Emit(struct {
			Event string `json:"event"`
			Kind  string `json:"kind"`
			SpanRecord
			DurNS int64 `json:"dur_ns"`
		}{"span", rec.Kind.String(), rec, int64(rec.Duration())})
	}
}

// Err returns the first error encountered, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
