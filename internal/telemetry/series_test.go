package telemetry

import (
	"math"
	"testing"
)

func TestSeriesStoreBasics(t *testing.T) {
	s := NewSeriesStore()
	id := s.Register("acc", "accuracy", 4)
	if dup := s.Register("acc", "accuracy", 4); dup != id {
		t.Errorf("duplicate Register = %d, want %d", dup, id)
	}
	if got, ok := s.ID("acc"); !ok || got != id {
		t.Errorf("ID(acc) = %d,%v", got, ok)
	}
	if _, ok := s.ID("missing"); ok {
		t.Error("ID(missing) should be false")
	}
	if h := s.Help(id); h != "accuracy" {
		t.Errorf("Help = %q", h)
	}
	for i := 0; i < 3; i++ {
		s.Append(id, float64(i), float64(10+i))
	}
	pts := s.Points(id)
	if len(pts) != 3 || pts[0] != (Point{0, 10}) || pts[2] != (Point{2, 12}) {
		t.Errorf("Points = %+v", pts)
	}
	if s.Total(id) != 3 {
		t.Errorf("Total = %d, want 3", s.Total(id))
	}
}

func TestSeriesStoreRingWraps(t *testing.T) {
	s := NewSeriesStore()
	id := s.Register("wrap", "", 4)
	for i := 0; i < 10; i++ {
		s.Append(id, float64(i), float64(i))
	}
	if s.Total(id) != 10 {
		t.Errorf("Total = %d, want 10", s.Total(id))
	}
	pts := s.Points(id)
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.X != want {
			t.Errorf("pts[%d].X = %v, want %v (oldest-to-newest)", i, p.X, want)
		}
	}
}

func TestSeriesStoreNilAndInvalid(t *testing.T) {
	var s *SeriesStore
	if id := s.Register("x", "", 0); id != -1 {
		t.Errorf("nil Register = %d, want -1", id)
	}
	s.Append(0, 1, 1) // no-op, no panic
	if s.Points(0) != nil || s.Total(0) != 0 || s.Names() != nil {
		t.Error("nil store should report empty state")
	}
	live := NewSeriesStore()
	live.Append(-1, 1, 1)
	live.Append(99, 1, 1)
	if len(live.Names()) != 0 {
		t.Error("invalid appends must not create series")
	}
}

func TestSeriesStoreNames(t *testing.T) {
	s := NewSeriesStore()
	s.Register("b", "", 0)
	s.Register("a", "", 0)
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want sorted [a b]", names)
	}
}

func TestDownsampleLTTB(t *testing.T) {
	// A spike in a flat line must survive downsampling.
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{X: float64(i), Y: 1}
	}
	pts[57].Y = 50
	out := Downsample(pts, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d, want 10", len(out))
	}
	if out[0] != pts[0] || out[len(out)-1] != pts[len(pts)-1] {
		t.Error("first/last points must be kept")
	}
	spike := false
	lastX := math.Inf(-1)
	for _, p := range out {
		if p.Y == 50 {
			spike = true
		}
		if p.X <= lastX {
			t.Errorf("x not strictly increasing at %v", p.X)
		}
		lastX = p.X
	}
	if !spike {
		t.Error("LTTB dropped the spike")
	}
}

func TestDownsamplePassthrough(t *testing.T) {
	pts := []Point{{0, 1}, {1, 2}, {2, 3}}
	if got := Downsample(pts, 5); len(got) != 3 {
		t.Errorf("threshold beyond len should pass through, got %d", len(got))
	}
	if got := Downsample(pts, 2); len(got) != 3 {
		t.Errorf("threshold < 3 should pass through, got %d", len(got))
	}
	if got := Downsample(nil, 10); got != nil {
		t.Errorf("nil input should pass through")
	}
}
