package telemetry

import (
	"sort"
	"time"
)

// ClientStat is one client's measured contribution to a round.
type ClientStat struct {
	Client int32         `json:"client"`
	Dur    time.Duration `json:"dur_ns"`
}

// RoundReport is the analyzer's verdict on one FL round: its wall
// time, the client on its critical path, and how far that client sat
// from the round's median — the straggler attribution the paper's
// wall-clock breakdowns need.
type RoundReport struct {
	Round        int32         `json:"round"`
	Phase        string        `json:"phase"`
	Dur          time.Duration `json:"dur_ns"`
	Clients      []ClientStat  `json:"clients,omitempty"`
	Distill      time.Duration `json:"distill_ns"`
	Straggler    int32         `json:"straggler"` // -1 when no client spans were retained
	StragglerDur time.Duration `json:"straggler_ns"`
	Median       time.Duration `json:"median_ns"`
	// Slowdown is StragglerDur / Median — 1.0 means a perfectly
	// balanced round, 10 means the dominant client took 10× the
	// median client.
	Slowdown float64 `json:"slowdown"`
	// CriticalFrac is StragglerDur / Dur: how much of the round's wall
	// time the critical-path client accounts for.
	CriticalFrac float64 `json:"critical_frac"`
}

// PhaseReport aggregates the retained rounds and wall time per phase.
type PhaseReport struct {
	Name   string        `json:"name"`
	Spans  int           `json:"spans"`
	Rounds int           `json:"rounds"`
	Total  time.Duration `json:"total_ns"`
}

// ClientReport aggregates one client across every retained round.
type ClientReport struct {
	Client    int32         `json:"client"`
	Rounds    int           `json:"rounds"`
	Dominated int           `json:"dominated"` // rounds where this client was the straggler
	Total     time.Duration `json:"total_ns"`
	// MeanSlowdown averages the round slowdown over the rounds this
	// client dominated (0 when it never dominated).
	MeanSlowdown float64 `json:"mean_slowdown"`
	MaxSlowdown  float64 `json:"max_slowdown"`
}

// LatencySummary is the streaming p50/p95/p99 of round wall time.
type LatencySummary struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Analysis is the structured read of a span snapshot.
type Analysis struct {
	Rounds       []RoundReport
	Phases       []PhaseReport
	Clients      []ClientReport
	RoundLatency LatencySummary
}

// Straggler returns the client dominating the most retained rounds
// (the dashboard's headline attribution), or nil when no round
// retained client spans.
func (a *Analysis) Straggler() *ClientReport {
	var worst *ClientReport
	for i := range a.Clients {
		c := &a.Clients[i]
		if c.Dominated == 0 {
			continue
		}
		if worst == nil || c.Dominated > worst.Dominated ||
			(c.Dominated == worst.Dominated && c.MeanSlowdown > worst.MeanSlowdown) {
			worst = c
		}
	}
	return worst
}

// Analyze builds round/phase/client analytics from a span snapshot
// (oldest to newest, as Tracer.Snapshot returns). It tolerates a
// wrapped ring: client spans whose round was evicted are dropped, and
// rounds whose phase was evicted fold into the "other" phase. Analysis
// is read-side — it allocates freely and takes no locks.
func Analyze(recs []SpanRecord) *Analysis {
	an := &Analysis{}
	phaseName := make(map[uint64]string) // phase span ID → name
	for _, r := range recs {
		if r.Kind == SpanPhase {
			phaseName[r.ID] = r.Name
		}
	}
	// Children grouped under their round span.
	clientsOf := make(map[uint64][]ClientStat)
	distillOf := make(map[uint64]time.Duration)
	for _, r := range recs {
		switch r.Kind {
		case SpanClientStep:
			clientsOf[r.Parent] = append(clientsOf[r.Parent], ClientStat{Client: r.Client, Dur: r.Duration()})
		case SpanDistillStep:
			distillOf[r.Parent] += r.Duration()
		}
	}

	lat := newPSquare(0.50)
	lat95 := newPSquare(0.95)
	lat99 := newPSquare(0.99)
	phases := make(map[string]*PhaseReport)
	clients := make(map[int32]*ClientReport)
	slowdownSum := make(map[int32]float64)

	for _, r := range recs {
		switch r.Kind {
		case SpanPhase:
			p := phases[r.Name]
			if p == nil {
				p = &PhaseReport{Name: r.Name}
				phases[r.Name] = p
			}
			p.Spans++
			p.Total += r.Duration()
		case SpanRound:
			name := phaseName[r.Parent]
			if name == "" {
				name = "other"
			}
			rep := RoundReport{
				Round: r.Round, Phase: name, Dur: r.Duration(),
				Distill: distillOf[r.ID], Straggler: -1,
			}
			cs := clientsOf[r.ID]
			sort.Slice(cs, func(a, b int) bool { return cs[a].Client < cs[b].Client })
			rep.Clients = cs
			if len(cs) > 0 {
				durs := make([]time.Duration, len(cs))
				worst := 0
				for i, c := range cs {
					durs[i] = c.Dur
					if c.Dur > cs[worst].Dur {
						worst = i
					}
				}
				sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
				rep.Median = durs[len(durs)/2]
				if len(durs)%2 == 0 {
					rep.Median = (durs[len(durs)/2-1] + durs[len(durs)/2]) / 2
				}
				rep.Straggler = cs[worst].Client
				rep.StragglerDur = cs[worst].Dur
				if rep.Median > 0 {
					rep.Slowdown = float64(rep.StragglerDur) / float64(rep.Median)
				}
				if rep.Dur > 0 {
					rep.CriticalFrac = float64(rep.StragglerDur) / float64(rep.Dur)
				}
			}
			an.Rounds = append(an.Rounds, rep)
			if p := phases[name]; p != nil {
				p.Rounds++
			} else {
				phases[name] = &PhaseReport{Name: name, Rounds: 1}
			}
			lat.add(r.Duration().Seconds())
			lat95.add(r.Duration().Seconds())
			lat99.add(r.Duration().Seconds())
			for _, c := range cs {
				cr := clients[c.Client]
				if cr == nil {
					cr = &ClientReport{Client: c.Client}
					clients[c.Client] = cr
				}
				cr.Rounds++
				cr.Total += c.Dur
				if c.Client == rep.Straggler {
					cr.Dominated++
					slowdownSum[c.Client] += rep.Slowdown
					if rep.Slowdown > cr.MaxSlowdown {
						cr.MaxSlowdown = rep.Slowdown
					}
				}
			}
		}
	}

	for _, p := range phases {
		an.Phases = append(an.Phases, *p)
	}
	sort.Slice(an.Phases, func(a, b int) bool { return an.Phases[a].Name < an.Phases[b].Name })
	for id, c := range clients {
		if c.Dominated > 0 {
			c.MeanSlowdown = slowdownSum[id] / float64(c.Dominated)
		}
		an.Clients = append(an.Clients, *c)
	}
	sort.Slice(an.Clients, func(a, b int) bool { return an.Clients[a].Client < an.Clients[b].Client })
	if n := lat.n; n > 0 {
		an.RoundLatency = LatencySummary{
			Count: int(n),
			P50:   time.Duration(lat.value() * float64(time.Second)),
			P95:   time.Duration(lat95.value() * float64(time.Second)),
			P99:   time.Duration(lat99.value() * float64(time.Second)),
		}
	}
	return an
}

// Analyze runs the span analytics over the tracer's retained records.
// Nil-safe: a nil tracer yields an empty analysis.
func (t *Tracer) Analyze() *Analysis {
	return Analyze(t.Snapshot())
}
