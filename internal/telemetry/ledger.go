package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// MetricSummary is the point-in-time reduction of one instrument for
// the run manifest: counters carry Count, gauges Sum, histograms all
// five fields. Quantiles are zeroed (not NaN) before the first
// observation so the manifest always round-trips through JSON.
type MetricSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Manifest is one run's ledger entry: enough provenance to reproduce
// the run and enough metric state to diff it against another run.
type Manifest struct {
	Stamp     string            `json:"stamp"`
	Tool      string            `json:"tool"`
	GoVersion string            `json:"go_version"`
	Seed      int64             `json:"seed"`
	Config    map[string]string `json:"config,omitempty"`
	// Metrics summarizes every registry family series under its
	// exposition name (label value appended as name{label=value}).
	Metrics map[string]MetricSummary `json:"metrics,omitempty"`
	// Final holds the last sample of each flight-recorder series —
	// the values regression diffing compares (final accuracy, final
	// loss, …).
	Final map[string]float64 `json:"final,omitempty"`
	// SeriesTotal is how many points each series ever recorded.
	SeriesTotal  map[string]uint64 `json:"series_total,omitempty"`
	RoundLatency LatencySummary    `json:"round_latency"`
	// Audit is the deletion-request audit trail (one entry per served
	// forget request, with before/after forget-set accuracy). Empty for
	// batch tools; quickdropd's shutdown manifest carries the full run.
	Audit []AuditEntry `json:"audit,omitempty"`
	// Health is the numerics health summary of the run (nil when the
	// monitor was not enabled). A tripped watchdog here makes the run
	// unconditionally fail a ledger diff.
	Health *HealthSummary `json:"health,omitempty"`
}

// HealthSummary is the manifest's reduction of the numerics health
// monitor (internal/telemetry/health): whether the divergence watchdog
// ever tripped, its verdict, and the extreme values observed. It lives
// in this package (not health) so Manifest can embed it without an
// import cycle.
type HealthSummary struct {
	// Healthy reports the monitor's CURRENT state (a trip cleared by
	// Reset leaves it true again).
	Healthy bool `json:"healthy"`
	// Tripped is sticky: true if the watchdog ever tripped during the
	// run, even if later Reset — a tripped run never passes a diff.
	Tripped bool `json:"tripped"`
	// Verdict is the first trip's reason ("nan_grad", "loss_spike",
	// "grad_norm", …), empty while healthy.
	Verdict string `json:"verdict,omitempty"`
	// Phase names the training/unlearning phase the trip happened in.
	Phase string `json:"phase,omitempty"`
	// NaNEvents counts non-finite observations (elements may be many
	// per event); Trips counts watchdog trips.
	NaNEvents int64 `json:"nan_events"`
	Trips     int64 `json:"trips"`
	// MaxGradNorm / MaxUpdateRatio are the largest sampled per-layer
	// gradient L2 norm and update/param-norm ratio of the run.
	MaxGradNorm    float64 `json:"max_grad_norm"`
	MaxUpdateRatio float64 `json:"max_update_ratio"`
}

// NewStamp formats the telemetry clock as a filesystem-safe UTC stamp
// with nanosecond precision (collision-proof within one machine).
func NewStamp() string {
	t := time.Unix(0, Now()).UTC()
	return t.Format("20060102T150405.000000000Z")
}

func nanToZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Summaries reduces every registered family to MetricSummary entries,
// keyed by exposition name (plus `{label="value"}` for vec series).
func (r *Registry) Summaries() map[string]MetricSummary {
	if r == nil {
		return nil
	}
	out := make(map[string]MetricSummary)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			key := f.name + promLabel(f.label, s.labelValue)
			switch f.kind {
			case kindCounter:
				out[key] = MetricSummary{Count: s.c.Value()}
			case kindGauge:
				out[key] = MetricSummary{Sum: s.g.Value()}
			case kindHistogram:
				ms := MetricSummary{Count: s.h.Count(), Sum: s.h.Sum()}
				if s.h.Quantiles().Count() > 0 {
					p50, p95, p99 := s.h.Quantiles().Values()
					ms.P50, ms.P95, ms.P99 = nanToZero(p50), nanToZero(p95), nanToZero(p99)
				}
				out[key] = ms
			}
		}
	}
	return out
}

// BuildManifest snapshots the pipeline into a ledger entry. Config is
// the caller's flag/parameter map (copied); tool names the binary.
// Nil-safe: a nil pipeline yields a provenance-only manifest.
func BuildManifest(p *Pipeline, tool string, seed int64, config map[string]string) *Manifest {
	m := &Manifest{
		Stamp:     NewStamp(),
		Tool:      tool,
		GoVersion: runtime.Version(),
		Seed:      seed,
	}
	if len(config) > 0 {
		m.Config = make(map[string]string, len(config))
		for k, v := range config {
			m.Config[k] = v
		}
	}
	if p == nil {
		return m
	}
	m.Metrics = p.Registry.Summaries()
	if names := p.Series.Names(); len(names) > 0 {
		m.Final = make(map[string]float64)
		m.SeriesTotal = make(map[string]uint64)
		for _, name := range names {
			id, _ := p.Series.ID(name)
			pts := p.Series.Points(id)
			if len(pts) == 0 {
				continue
			}
			m.Final[name] = nanToZero(pts[len(pts)-1].Y)
			m.SeriesTotal[name] = p.Series.Total(id)
		}
	}
	if an := p.Tracer.Analyze(); an.RoundLatency.Count > 0 {
		m.RoundLatency = an.RoundLatency
	}
	m.Audit = p.Audit.Entries()
	return m
}

// WriteManifest writes the manifest to dir/<stamp>.json (creating dir)
// and returns the path.
func WriteManifest(dir string, m *Manifest) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, m.Stamp+".json")
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadManifest loads one ledger entry.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return m, nil
}

// DiffOptions are the regression thresholds. Zero values select the
// defaults.
type DiffOptions struct {
	// AccuracyDrop is the tolerated absolute drop in any *accuracy
	// series final value (default 0.05). The forget-set series is
	// inverted: unlearning WANTS fset accuracy low, so a RISE beyond
	// the threshold is the regression.
	AccuracyDrop float64
	// TimeGrowPct is the tolerated percentage growth in any *_seconds
	// histogram sum (default 25).
	TimeGrowPct float64
	// GradNormGrowPct is the tolerated percentage growth of the run's
	// max sampled gradient norm (default 100; compared only when both
	// manifests carry a health block with a nonzero old value).
	GradNormGrowPct float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.AccuracyDrop == 0 {
		o.AccuracyDrop = 0.05
	}
	if o.TimeGrowPct == 0 {
		o.TimeGrowPct = 25
	}
	if o.GradNormGrowPct == 0 {
		o.GradNormGrowPct = 100
	}
	return o
}

// DiffEntry is one compared metric.
type DiffEntry struct {
	Metric     string  `json:"metric"`
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	Delta      float64 `json:"delta"`
	Regression bool    `json:"regression"`
	Reason     string  `json:"reason,omitempty"`
}

// hasSuffix avoids importing strings for two call sites.
func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// baseName strips a vec key's `{label="value"}` suffix so suffix
// matching sees the exposition name.
func baseName(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '{' {
			return s[:i]
		}
	}
	return s
}

// Diff compares two manifests (old → new). It returns every compared
// metric plus whether any crossed its regression threshold: accuracy
// finals may not drop (forget-set: may not rise) beyond AccuracyDrop,
// and *_seconds histogram sums may not grow beyond TimeGrowPct — but
// only where both runs actually observed the metric.
func Diff(oldM, newM *Manifest, opts DiffOptions) (entries []DiffEntry, regressed bool) {
	opts = opts.withDefaults()
	names := make([]string, 0, len(oldM.Final))
	for name := range oldM.Final {
		if _, ok := newM.Final[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := oldM.Final[name], newM.Final[name]
		e := DiffEntry{Metric: "final:" + name, Old: o, New: n, Delta: n - o}
		if hasSuffix(name, "accuracy") {
			if name == "fset_accuracy" {
				// Inverted: the unlearned model regaining forget-set
				// accuracy means the unlearning regressed.
				if n > o+opts.AccuracyDrop {
					e.Regression = true
					e.Reason = fmt.Sprintf("forget-set accuracy rose %.4f > %.4f threshold", n-o, opts.AccuracyDrop)
				}
			} else if n < o-opts.AccuracyDrop {
				e.Regression = true
				e.Reason = fmt.Sprintf("accuracy dropped %.4f > %.4f threshold", o-n, opts.AccuracyDrop)
			}
		}
		entries = append(entries, e)
		regressed = regressed || e.Regression
	}

	mnames := make([]string, 0, len(oldM.Metrics))
	for name := range oldM.Metrics {
		if _, ok := newM.Metrics[name]; ok && hasSuffix(baseName(name), "_seconds") {
			mnames = append(mnames, name)
		}
	}
	sort.Strings(mnames)
	for _, name := range mnames {
		o, n := oldM.Metrics[name], newM.Metrics[name]
		if o.Count == 0 || n.Count == 0 || o.Sum <= 0 {
			continue
		}
		e := DiffEntry{Metric: "sum:" + name, Old: o.Sum, New: n.Sum, Delta: n.Sum - o.Sum}
		growPct := (n.Sum - o.Sum) / o.Sum * 100
		if growPct > opts.TimeGrowPct {
			e.Regression = true
			e.Reason = fmt.Sprintf("wall time grew %.1f%% > %.1f%% threshold", growPct, opts.TimeGrowPct)
		}
		entries = append(entries, e)
		regressed = regressed || e.Regression
	}

	entries, regressed = diffHealth(entries, regressed, oldM, newM, opts)
	return entries, regressed
}

// diffHealth appends the numerics-health comparisons. A new run that
// tripped the watchdog is an unconditional regression — a run whose
// model diverged never passes, whatever its accuracy numbers say.
// NaN-event growth and max-grad-norm growth beyond GradNormGrowPct are
// thresholded regressions like the others.
func diffHealth(entries []DiffEntry, regressed bool, oldM, newM *Manifest, opts DiffOptions) ([]DiffEntry, bool) {
	if newM.Health == nil {
		return entries, regressed
	}
	nh := newM.Health

	e := DiffEntry{Metric: "health:watchdog", New: float64(nh.Trips)}
	if oldM.Health != nil {
		e.Old = float64(oldM.Health.Trips)
	}
	e.Delta = e.New - e.Old
	if nh.Tripped {
		e.Regression = true
		e.Reason = "watchdog tripped: " + nh.Verdict
		if nh.Phase != "" {
			e.Reason += " in phase " + nh.Phase
		}
	}
	entries = append(entries, e)
	regressed = regressed || e.Regression

	if oldM.Health == nil {
		return entries, regressed
	}
	oh := oldM.Health

	e = DiffEntry{
		Metric: "health:nan_events",
		Old:    float64(oh.NaNEvents), New: float64(nh.NaNEvents),
		Delta: float64(nh.NaNEvents - oh.NaNEvents),
	}
	if nh.NaNEvents > oh.NaNEvents {
		e.Regression = true
		e.Reason = fmt.Sprintf("non-finite events rose %d → %d", oh.NaNEvents, nh.NaNEvents)
	}
	entries = append(entries, e)
	regressed = regressed || e.Regression

	if oh.MaxGradNorm > 0 {
		e = DiffEntry{
			Metric: "health:max_grad_norm",
			Old:    oh.MaxGradNorm, New: nh.MaxGradNorm,
			Delta: nh.MaxGradNorm - oh.MaxGradNorm,
		}
		growPct := (nh.MaxGradNorm - oh.MaxGradNorm) / oh.MaxGradNorm * 100
		if growPct > opts.GradNormGrowPct {
			e.Regression = true
			e.Reason = fmt.Sprintf("max grad norm grew %.1f%% > %.1f%% threshold", growPct, opts.GradNormGrowPct)
		}
		entries = append(entries, e)
		regressed = regressed || e.Regression
	}
	return entries, regressed
}
