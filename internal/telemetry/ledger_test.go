package telemetry

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testManifest(t *testing.T, accuracy, fset float64, roundSum float64) *Manifest {
	t.Helper()
	restore := SetClockForTesting(func() int64 { return 1754400000e9 })
	defer restore()
	p := NewPipeline(NewRegistry(), NewTracer(0), 2)
	p.RecordAccuracy(1, accuracy)
	p.RecordSplitAccuracy(fset, accuracy)
	p.RoundSeconds.Observe(roundSum)
	return BuildManifest(p, "test", 42, map[string]string{"scale": "quick"})
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(t, 0.9, 0.1, 1.5)
	if m.GoVersion == "" || m.Seed != 42 || m.Tool != "test" {
		t.Errorf("provenance = %+v", m)
	}
	path, err := WriteManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasSuffix(path, ".json") {
		t.Errorf("path = %q", path)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Final["eval_accuracy"] != 0.9 || got.Final["fset_accuracy"] != 0.1 {
		t.Errorf("finals = %+v", got.Final)
	}
	if got.Metrics["quickdrop_fl_round_seconds"].Count != 1 {
		t.Errorf("metrics = %+v", got.Metrics["quickdrop_fl_round_seconds"])
	}
	if got.Config["scale"] != "quick" {
		t.Errorf("config = %+v", got.Config)
	}
}

func TestDiffNoRegression(t *testing.T) {
	oldM := testManifest(t, 0.90, 0.10, 1.0)
	newM := testManifest(t, 0.88, 0.11, 1.1)
	entries, regressed := Diff(oldM, newM, DiffOptions{})
	if regressed {
		t.Errorf("within-threshold drift flagged as regression: %+v", entries)
	}
	if len(entries) == 0 {
		t.Fatal("no metrics compared")
	}
}

func TestDiffAccuracyRegression(t *testing.T) {
	oldM := testManifest(t, 0.90, 0.10, 1.0)
	newM := testManifest(t, 0.80, 0.10, 1.0)
	entries, regressed := Diff(oldM, newM, DiffOptions{})
	if !regressed {
		t.Fatal("0.10 accuracy drop not flagged")
	}
	found := false
	for _, e := range entries {
		if e.Metric == "final:eval_accuracy" && e.Regression {
			found = true
		}
		if e.Metric == "final:rset_accuracy" && e.Regression {
			// rset also dropped 0.10 here; fine that it flags too.
			continue
		}
	}
	if !found {
		t.Errorf("eval_accuracy regression missing: %+v", entries)
	}
}

// TestDiffForgetSetInversion: the forget set regresses by RISING —
// an unlearned model that recovers forget-set accuracy is broken.
func TestDiffForgetSetInversion(t *testing.T) {
	oldM := testManifest(t, 0.90, 0.10, 1.0)
	riseM := testManifest(t, 0.90, 0.40, 1.0)
	if _, regressed := Diff(oldM, riseM, DiffOptions{}); !regressed {
		t.Error("forget-set accuracy rise not flagged")
	}
	dropM := testManifest(t, 0.90, 0.01, 1.0)
	if entries, regressed := Diff(oldM, dropM, DiffOptions{}); regressed {
		t.Errorf("forget-set accuracy DROP wrongly flagged: %+v", entries)
	}
}

func TestDiffWallTimeRegression(t *testing.T) {
	oldM := testManifest(t, 0.90, 0.10, 1.0)
	newM := testManifest(t, 0.90, 0.10, 2.0)
	entries, regressed := Diff(oldM, newM, DiffOptions{})
	if !regressed {
		t.Fatal("2x wall-time growth not flagged")
	}
	found := false
	for _, e := range entries {
		if e.Metric == "sum:quickdrop_fl_round_seconds" && e.Regression {
			found = true
		}
	}
	if !found {
		t.Errorf("round_seconds regression missing: %+v", entries)
	}
	// A loose threshold tolerates the same growth.
	if _, regressed := Diff(oldM, newM, DiffOptions{TimeGrowPct: 200}); regressed {
		t.Error("200%% threshold should tolerate 2x growth")
	}
}

func TestBuildManifestNilPipeline(t *testing.T) {
	restore := SetClockForTesting(func() int64 { return int64(time.Hour) })
	defer restore()
	m := BuildManifest(nil, "bare", 1, nil)
	if m.Tool != "bare" || m.GoVersion == "" {
		t.Errorf("manifest = %+v", m)
	}
	if len(m.Final) != 0 || len(m.Metrics) != 0 {
		t.Error("nil pipeline should yield provenance-only manifest")
	}
}
