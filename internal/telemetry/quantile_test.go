package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

func TestPSquareSmallStreams(t *testing.T) {
	q := newPSquare(0.5)
	if !math.IsNaN(q.value()) {
		t.Error("empty estimator should read NaN")
	}
	q.add(3)
	if got := q.value(); got != 3 {
		t.Errorf("single sample p50 = %v, want 3", got)
	}
	q.add(1)
	q.add(2)
	if got := q.value(); got != 2 {
		t.Errorf("3-sample p50 = %v, want 2", got)
	}
}

// TestPSquareSubThresholdExact pins the below-P²-threshold contract:
// with fewer than five samples the estimate is the exact nearest-rank
// order statistic of what was observed — never an interpolation or
// extrapolation from uninitialized markers.
func TestPSquareSubThresholdExact(t *testing.T) {
	// 0 samples: NaN for every p.
	for _, p := range []float64{0.5, 0.95, 0.99} {
		q := newPSquare(p)
		if !math.IsNaN(q.value()) {
			t.Errorf("p%.0f with 0 samples = %v, want NaN", 100*p, q.value())
		}
	}
	// 1 sample: the sample itself, at every quantile.
	for _, p := range []float64{0.5, 0.95, 0.99} {
		q := newPSquare(p)
		q.add(42)
		if got := q.value(); got != 42 {
			t.Errorf("p%.0f with 1 sample = %v, want 42", 100*p, got)
		}
	}
	// 4 samples {1,2,3,4}: nearest rank ceil(p·4).
	cases := []struct{ p, want float64 }{
		{0.25, 1}, {0.5, 2}, {0.75, 3}, {0.95, 4}, {0.99, 4},
	}
	for _, tc := range cases {
		q := newPSquare(tc.p)
		for _, v := range []float64{3, 1, 4, 2} { // unsorted insertion
			q.add(v)
		}
		if got := q.value(); got != tc.want {
			t.Errorf("p%.0f of {1,2,3,4} = %v, want %v", 100*tc.p, got, tc.want)
		}
	}
	// 2 samples: p50 is the lower sample (rank ceil(1.0)=1), p95 the upper.
	q := newPSquare(0.5)
	q.add(10)
	q.add(20)
	if got := q.value(); got != 10 {
		t.Errorf("p50 of {10,20} = %v, want 10 (nearest rank)", got)
	}
	q95 := newPSquare(0.95)
	q95.add(10)
	q95.add(20)
	if got := q95.value(); got != 20 {
		t.Errorf("p95 of {10,20} = %v, want 20", got)
	}
}

func TestPSquareConvergesOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 0.5}, {0.95, 0.95}, {0.99, 0.99},
	} {
		q := newPSquare(tc.p)
		for i := 0; i < 20000; i++ {
			q.add(rng.Float64())
		}
		if got := q.value(); math.Abs(got-tc.want) > 0.02 {
			t.Errorf("p%.0f on U(0,1) = %v, want ~%v", 100*tc.p, got, tc.want)
		}
	}
}

func TestPSquareConvergesOnNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := newPSquare(0.5)
	for i := 0; i < 20000; i++ {
		q.add(rng.NormFloat64()*2 + 10)
	}
	if got := q.value(); math.Abs(got-10) > 0.15 {
		t.Errorf("p50 of N(10,2) = %v, want ~10", got)
	}
}

func TestQuantilesBundle(t *testing.T) {
	q := NewQuantiles()
	p50, p95, p99 := q.Values()
	if !math.IsNaN(p50) || !math.IsNaN(p95) || !math.IsNaN(p99) {
		t.Error("empty bundle should read NaN everywhere")
	}
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}
	if q.Count() != 100 {
		t.Errorf("Count = %d, want 100", q.Count())
	}
	p50, p95, p99 = q.Values()
	if math.Abs(p50-50) > 5 || math.Abs(p95-95) > 5 || math.Abs(p99-99) > 5 {
		t.Errorf("quantiles of 1..100 = %v/%v/%v, want ~50/95/99", p50, p95, p99)
	}
	if p50 > p95 || p95 > p99 {
		t.Errorf("quantiles not monotone: %v/%v/%v", p50, p95, p99)
	}
}

func TestQuantilesNilSafe(t *testing.T) {
	var q *Quantiles
	q.Observe(1)
	if q.Count() != 0 {
		t.Error("nil Count should be 0")
	}
	p50, _, _ := q.Values()
	if !math.IsNaN(p50) {
		t.Error("nil Values should be NaN")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("quant_test_seconds", "", nil)
	var nilH *Histogram
	if nilH.Quantiles() != nil {
		t.Error("nil histogram should expose nil quantiles")
	}
	nilH.Quantiles().Observe(1) // must not panic
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%100) / 100)
	}
	p50, _, p99 := h.Quantiles().Values()
	if math.Abs(p50-0.5) > 0.05 {
		t.Errorf("histogram p50 = %v, want ~0.5", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}
