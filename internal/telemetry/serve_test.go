package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(8)
	reg.Counter("quickdrop_serve_test_total", "Serve test.").Add(7)
	tr.Start(SpanPhase, "train", 0, -1, -1).End()

	s, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "quickdrop_serve_test_total 7") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE quickdrop_serve_test_total counter") {
		t.Error("/metrics missing TYPE line")
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, "quickdrop_spans") {
		t.Errorf("/debug/vars missing span stats:\n%s", vars)
	}

	if pprofIdx := get("/debug/pprof/"); !strings.Contains(pprofIdx, "profile") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:bad", NewRegistry(), nil); err == nil {
		t.Fatal("want error for unparseable address")
	}
}
