package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	p := NewPipeline(NewRegistry(), NewTracer(64), 2)
	p.Registry.Counter("quickdrop_serve_test_total", "Serve test.").Add(7)
	p.Tracer.Start(SpanPhase, "train", 0, -1, -1).End()
	pt := p.StartPhase("train")
	rs := p.StartRound(0)
	p.EndClient(p.StartClient(0, 0))
	p.EndRound(rs, 1)
	pt.Stop()
	p.RecordAccuracy(1, 0.5)

	s, err := Serve("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "quickdrop_serve_test_total 7") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE quickdrop_serve_test_total counter") {
		t.Error("/metrics missing TYPE line")
	}
	if !strings.Contains(metrics, `quickdrop_fl_round_seconds{quantile="0.5"}`) {
		t.Errorf("/metrics missing quantile line:\n%s", metrics)
	}

	dash := get("/dashboard")
	for _, want := range []string{"<!DOCTYPE html>", "flight recorder", "<svg", "eval_accuracy"} {
		if !strings.Contains(dash, want) {
			t.Errorf("/dashboard missing %q", want)
		}
	}
	if strings.Contains(dash, "src=") || strings.Contains(dash, "href=") {
		t.Error("/dashboard must be self-contained (no external assets)")
	}

	var payload struct {
		Series []seriesJSON `json:"series"`
	}
	if err := json.Unmarshal([]byte(get("/api/series")), &payload); err != nil {
		t.Fatalf("/api/series not JSON: %v", err)
	}
	found := false
	for _, sr := range payload.Series {
		if sr.Name == "eval_accuracy" {
			found = true
			if len(sr.Points) != 1 || sr.Points[0].Y != 0.5 {
				t.Errorf("eval_accuracy points = %+v", sr.Points)
			}
		}
	}
	if !found {
		t.Error("/api/series missing eval_accuracy")
	}

	var one seriesJSON
	if err := json.Unmarshal([]byte(get("/api/series?name=fl_round_seconds&n=5")), &one); err != nil {
		t.Fatalf("/api/series?name= not JSON: %v", err)
	}
	if one.Name != "fl_round_seconds" || one.Total != 1 {
		t.Errorf("single-series payload = %+v", one)
	}
	if resp, err := http.Get("http://" + s.Addr() + "/api/series?name=nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown series: status %d, want 404", resp.StatusCode)
		}
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, "quickdrop_spans") {
		t.Errorf("/debug/vars missing span stats:\n%s", vars)
	}

	if pprofIdx := get("/debug/pprof/"); !strings.Contains(pprofIdx, "profile") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

// TestServeNilPipeline proves every handler degrades to an empty view
// rather than panicking when the pipeline is nil.
func TestServeNilPipeline(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, path := range []string{"/metrics", "/dashboard", "/api/series"} {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with nil pipeline: status %d", path, resp.StatusCode)
		}
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:bad", nil); err == nil {
		t.Fatal("want error for unparseable address")
	}
}
