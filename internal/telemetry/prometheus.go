package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Families appear in name order and
// series in registration order, so output is deterministic for a given
// program state. Export is off the record path; it may allocate.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, promLabel(f.label, s.labelValue), s.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, promLabel(f.label, s.labelValue), promFloat(s.g.Value()))
			case kindHistogram:
				writePromHistogram(bw, f.name, f.label, s.labelValue, s.h)
			}
		}
	}
	return bw.Flush()
}

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// promLabel renders `{label="value"}` or "" for unlabeled series.
func promLabel(label, value string) string {
	if label == "" {
		return ""
	}
	return `{` + label + `="` + value + `"}`
}

// promBucketLabel renders the {le="..."} label set, merging an
// optional series label.
func promBucketLabel(label, value, le string) string {
	if label == "" {
		return `{le="` + le + `"}`
	}
	return `{` + label + `="` + value + `",le="` + le + `"}`
}

// promQuantileLabel renders the {quantile="..."} label set, merging an
// optional series label.
func promQuantileLabel(label, value, q string) string {
	if label == "" {
		return `{quantile="` + q + `"}`
	}
	return `{` + label + `="` + value + `",quantile="` + q + `"}`
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePromHistogram emits the cumulative bucket series plus _sum and
// _count for one histogram.
func writePromHistogram(w io.Writer, name, label, value string, h *Histogram) {
	var cum int64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, promBucketLabel(label, value, promFloat(upper)), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, promBucketLabel(label, value, "+Inf"), cum)
	// Streaming P² quantiles ride alongside the buckets (a summary-style
	// convenience; scrapers that only understand histogram series ignore
	// the quantile lines). Omitted until the first observation so the
	// exposition never carries NaN.
	if h.Quantiles().Count() > 0 {
		p50, p95, p99 := h.Quantiles().Values()
		fmt.Fprintf(w, "%s%s %s\n", name, promQuantileLabel(label, value, "0.5"), promFloat(p50))
		fmt.Fprintf(w, "%s%s %s\n", name, promQuantileLabel(label, value, "0.95"), promFloat(p95))
		fmt.Fprintf(w, "%s%s %s\n", name, promQuantileLabel(label, value, "0.99"), promFloat(p99))
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabel(label, value), promFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, promLabel(label, value), h.Count())
}
