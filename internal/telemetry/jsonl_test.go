package telemetry

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestEventLogEmit(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	type costEvent struct {
		Event  string  `json:"event"`
		Method string  `json:"method"`
		Rounds int     `json:"rounds"`
		Sec    float64 `json:"seconds"`
	}
	l.Emit(costEvent{"cost", "quickdrop", 12, 0.5})
	l.Emit(costEvent{"cost", "retrain", 40, 2})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// Struct marshaling keeps field order fixed — byte-identical logs
	// for identical event sequences.
	if lines[0] != `{"event":"cost","method":"quickdrop","rounds":12,"seconds":0.5}` {
		t.Errorf("line 0 = %s", lines[0])
	}
	var back costEvent
	if err := json.Unmarshal([]byte(lines[1]), &back); err != nil || back.Rounds != 40 {
		t.Errorf("round-trip failed: %v %+v", err, back)
	}
}

func TestEventLogEmitSpans(t *testing.T) {
	fakeClock(t)
	tr := NewTracer(4)
	tr.Start(SpanRound, "round", 1, 2, -1).End()
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.EmitSpans(tr)
	line := strings.TrimSpace(sb.String())
	var rec struct {
		Event  string `json:"event"`
		Kind   string `json:"kind"`
		Name   string `json:"name"`
		Round  int    `json:"round"`
		Parent uint64 `json:"parent"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Event != "span" || rec.Kind != "round" || rec.Round != 2 || rec.Parent != 1 {
		t.Errorf("span event wrong: %+v from %s", rec, line)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestEventLogStickyError(t *testing.T) {
	l := NewEventLog(failWriter{})
	l.Emit(struct{ A int }{1})
	if l.Err() == nil {
		t.Fatal("want sticky write error")
	}
	l.Emit(struct{ A int }{2}) // must not panic or clear the error
	if l.Err() == nil {
		t.Fatal("error should stick")
	}
}

func TestNilEventLog(t *testing.T) {
	var l *EventLog
	l.Emit(struct{}{})
	l.EmitSpans(NewTracer(1))
	if l.Err() != nil {
		t.Fatal("nil log should be a silent discard sink")
	}
}
