package telemetry

import (
	"testing"
	"time"
)

// buildRounds simulates a phase where client `slow` takes slowFactor×
// the base duration every round, via the pipeline's own span plumbing.
func buildRounds(p *Pipeline, tick func(time.Duration), rounds, clients, slow int, base, slowDur time.Duration) {
	pt := p.StartPhase("train")
	for r := 0; r < rounds; r++ {
		rs := p.StartRound(r)
		for c := 0; c < clients; c++ {
			cs := p.StartClient(r, c)
			if c == slow {
				tick(slowDur)
			} else {
				tick(base)
			}
			p.EndClient(cs)
		}
		p.EndRound(rs, clients)
	}
	pt.Stop()
}

func TestAnalyzeStragglerAttribution(t *testing.T) {
	tick := fakeClock(t)
	p := NewPipeline(NewRegistry(), NewTracer(0), 3)
	buildRounds(p, tick, 4, 3, 1, 5*time.Millisecond, 50*time.Millisecond)

	an := p.Tracer.Analyze()
	if len(an.Rounds) != 4 {
		t.Fatalf("analyzed %d rounds, want 4", len(an.Rounds))
	}
	for _, r := range an.Rounds {
		if r.Straggler != 1 {
			t.Errorf("round %d straggler = %d, want 1", r.Round, r.Straggler)
		}
		if r.Phase != "train" {
			t.Errorf("round %d phase = %q, want train", r.Round, r.Phase)
		}
		if r.Slowdown != 10 {
			t.Errorf("round %d slowdown = %v, want 10 (50ms vs 5ms median)", r.Round, r.Slowdown)
		}
		if r.StragglerDur != 50*time.Millisecond || r.Median != 5*time.Millisecond {
			t.Errorf("round %d straggler=%v median=%v", r.Round, r.StragglerDur, r.Median)
		}
		// Sequential execution: the round's wall time is the sum of its
		// clients, so the slow client owns 50/60 of the critical path.
		if r.CriticalFrac < 0.8 || r.CriticalFrac > 0.85 {
			t.Errorf("round %d critical frac = %v, want ~0.833", r.Round, r.CriticalFrac)
		}
	}

	worst := an.Straggler()
	if worst == nil || worst.Client != 1 {
		t.Fatalf("headline straggler = %+v, want client 1", worst)
	}
	if worst.Dominated != 4 || worst.MeanSlowdown != 10 || worst.MaxSlowdown != 10 {
		t.Errorf("straggler report = %+v", worst)
	}

	if len(an.Phases) != 1 || an.Phases[0].Name != "train" || an.Phases[0].Rounds != 4 {
		t.Errorf("phases = %+v", an.Phases)
	}
	if an.RoundLatency.Count != 4 {
		t.Errorf("latency count = %d, want 4", an.RoundLatency.Count)
	}
	// Every round took 60ms; with <5 samples the estimator interpolates
	// over the raw buffer, so p50 sits at 60ms (± float seconds→ns
	// round-trip).
	if d := an.RoundLatency.P50 - 60*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("p50 = %v, want ~60ms", an.RoundLatency.P50)
	}
}

func TestAnalyzeToleratesEvictedParents(t *testing.T) {
	tick := fakeClock(t)
	// Capacity 6 retains only the tail of the run: round spans whose
	// phase record was evicted must fold into "other", and client spans
	// whose round was evicted must be dropped, not crash. End the phase
	// span FIRST so the subsequent round/client records overwrite it.
	p := NewPipeline(NewRegistry(), NewTracer(6), 2)
	p.StartPhase("train").Stop()
	for r := 0; r < 5; r++ {
		rs := p.StartRound(r)
		for c := 0; c < 2; c++ {
			cs := p.StartClient(r, c)
			tick(time.Millisecond)
			p.EndClient(cs)
		}
		p.EndRound(rs, 2)
	}
	an := p.Tracer.Analyze()
	for _, r := range an.Rounds {
		if r.Phase != "other" {
			t.Errorf("round %d phase = %q, want other (phase span evicted)", r.Round, r.Phase)
		}
	}
	if len(an.Rounds) == 0 {
		t.Error("expected some retained rounds")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	an := Analyze(nil)
	if len(an.Rounds) != 0 || len(an.Clients) != 0 || an.RoundLatency.Count != 0 {
		t.Errorf("empty analysis = %+v", an)
	}
	if an.Straggler() != nil {
		t.Error("empty analysis should have no straggler")
	}
	var tr *Tracer
	if got := tr.Analyze(); len(got.Rounds) != 0 {
		t.Error("nil tracer Analyze should be empty")
	}
}
