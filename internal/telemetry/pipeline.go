package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// PhaseNames are the pre-registered phase label values. Phase timers
// started under any other name fold into "other".
var PhaseNames = []string{
	"train", "unlearn", "recover", "relearn",
	"retrain", "calibrate", "prune", "scale", "finetune", "fedavg", "other",
}

// phaseIndex maps a phase name onto PhaseNames ("other" fallback).
// Linear scan over a dozen static strings: allocation-free and off the
// hot path (phases start a handful of times per run).
func phaseIndex(name string) int {
	for i, n := range PhaseNames {
		if n == name {
			return i
		}
	}
	return len(PhaseNames) - 1
}

// Pipeline bundles the pre-registered instruments and span plumbing
// for the FL / distillation / unlearning pipelines. One Pipeline is
// shared by every phase of a run; all record methods are safe for
// concurrent use (RunPhaseConcurrent's client workers record through
// the same handles) and are no-ops on a nil receiver.
type Pipeline struct {
	Registry *Registry
	Tracer   *Tracer
	Series   *SeriesStore

	// FL substrate.
	Rounds       *Counter      // quickdrop_fl_rounds_total
	RoundSeconds *Histogram    // quickdrop_fl_round_seconds
	Participants *Gauge        // quickdrop_fl_round_participants
	LocalSteps   *CounterVec   // quickdrop_fl_local_steps_total{client}
	Samples      *Counter      // quickdrop_fl_samples_total
	Dropped      *Counter      // quickdrop_fl_dropped_updates_total
	Phases       *Counter      // quickdrop_phases_total
	PhaseSeconds *HistogramVec // quickdrop_phase_seconds{phase}

	// In-situ distillation.
	DistillSteps       *Counter   // quickdrop_distill_steps_total
	DistillStepSeconds *Histogram // quickdrop_distill_step_seconds
	DistillSecondsSum  *Gauge     // quickdrop_distill_seconds_sum

	// Unlearning workflow.
	UnlearnRequests *CounterVec // quickdrop_unlearn_requests_total{kind}

	exp      Span
	curPhase atomic.Uint64
	curRound atomic.Uint64
	evalSeq  atomic.Uint64

	// Flight-recorder series IDs, resolved once at construction so the
	// record paths are slice-indexed appends with no name lookups.
	sRound    SeriesID
	sPhase    SeriesID
	sAccuracy SeriesID
	sFSet     SeriesID
	sRSet     SeriesID
	sLoss     SeriesID
	sDistill  SeriesID
	sClient   []SeriesID // per-client round durations, indexed by client ID
}

// RequestKindNames are the label values of UnlearnRequests, aligned
// with core.RequestKind (index kind-1).
var RequestKindNames = []string{"class", "client", "sample"}

// NewPipeline registers the instrument catalogue on reg, opens the
// experiment root span on tr, and pre-registers per-client series for
// client IDs [0, clients). Either argument may be nil (metrics-only or
// spans-only operation); NewPipeline(nil, nil, …) returns a pipeline
// that still provides working phase stopwatches.
func NewPipeline(reg *Registry, tr *Tracer, clients int) *Pipeline {
	p := &Pipeline{
		Registry: reg,
		Tracer:   tr,

		Rounds:       reg.Counter("quickdrop_fl_rounds_total", "Completed FedAvg rounds across all phases."),
		RoundSeconds: reg.Histogram("quickdrop_fl_round_seconds", "FedAvg round wall time in seconds.", nil),
		Participants: reg.Gauge("quickdrop_fl_round_participants", "Clients selected in the most recent round."),
		LocalSteps: reg.CounterVec("quickdrop_fl_local_steps_total",
			"Client-local SGD/SGA steps.", "client", IndexValues(clients)),
		Samples: reg.Counter("quickdrop_fl_samples_total", "Training samples consumed by local steps."),
		Dropped: reg.Counter("quickdrop_fl_dropped_updates_total", "Client updates lost to injected failures."),
		Phases:  reg.Counter("quickdrop_phases_total", "Completed pipeline phases."),
		PhaseSeconds: reg.HistogramVec("quickdrop_phase_seconds",
			"Phase wall time in seconds.", "phase", PhaseNames, []float64{.01, .05, .1, .5, 1, 5, 15, 60, 300}),

		DistillSteps: reg.Counter("quickdrop_distill_steps_total", "In-situ gradient-matching updates."),
		DistillStepSeconds: reg.Histogram("quickdrop_distill_step_seconds",
			"Gradient-matching update wall time in seconds.", nil),
		DistillSecondsSum: reg.Gauge("quickdrop_distill_seconds_sum",
			"Accumulated distillation wall time in seconds (the paper's DD overhead)."),

		UnlearnRequests: reg.CounterVec("quickdrop_unlearn_requests_total",
			"Unlearning requests served.", "kind", RequestKindNames),
	}
	p.exp = tr.Start(SpanExperiment, "experiment", 0, -1, -1)

	// The flight recorder: bounded per-run time series behind the same
	// instruments. Registered only when metrics are on (reg != nil) so a
	// fully disabled pipeline stays handle-free; every ID degrades to the
	// silent-drop invalid ID on a nil store.
	if reg != nil {
		s := NewSeriesStore()
		p.Series = s
		p.sRound = s.Register("fl_round_seconds", "FedAvg round wall time (x: cumulative round).", 0)
		p.sPhase = s.Register("phase_seconds", "Phase wall time (x: phase sequence).", 0)
		p.sAccuracy = s.Register("eval_accuracy", "Global model accuracy (x: caller's round).", 0)
		p.sFSet = s.Register("fset_accuracy", "Accuracy on the forget set (x: eval sequence).", 0)
		p.sRSet = s.Register("rset_accuracy", "Accuracy on the retain set (x: eval sequence).", 0)
		p.sLoss = s.Register("train_loss", "Client-local training loss (x: cumulative local step).", 0)
		p.sDistill = s.Register("distill_step_seconds", "Gradient-matching update wall time (x: cumulative step).", 0)
		p.sClient = make([]SeriesID, clients)
		for i := range p.sClient {
			p.sClient[i] = s.Register(fmt.Sprintf("fl_client_%d_seconds", i),
				"Per-round local-steps wall time for one client (x: round).", 0)
		}
	} else {
		p.sRound, p.sPhase, p.sAccuracy, p.sFSet, p.sRSet, p.sLoss, p.sDistill = -1, -1, -1, -1, -1, -1, -1
	}
	return p
}

// Close ends the experiment root span.
func (p *Pipeline) Close() {
	if p == nil {
		return
	}
	p.exp.End()
}

// PhaseTimer measures one pipeline phase. The stopwatch always runs —
// phase costs feed eval.Cost whether or not telemetry is enabled — but
// the span and metrics record only when a pipeline is attached.
type PhaseTimer struct {
	sw   Stopwatch
	span Span
	p    *Pipeline
	name string
}

// StartPhase opens a phase timer. Works on a nil receiver: the
// returned timer still measures wall time (replacing the scattered
// `start := time.Now()` accounting sites) but records nothing.
func (p *Pipeline) StartPhase(name string) PhaseTimer {
	t := PhaseTimer{sw: StartTimer(), p: p, name: name}
	if p != nil {
		t.span = p.Tracer.Start(SpanPhase, name, p.exp.ID(), -1, -1)
		p.curPhase.Store(t.span.ID())
	}
	return t
}

// Stop ends the phase, records its span and histogram, and returns
// the measured wall time.
func (t PhaseTimer) Stop() time.Duration {
	d := t.sw.Elapsed()
	if t.p != nil {
		t.span.End()
		t.p.Phases.Inc()
		t.p.PhaseSeconds.At(phaseIndex(t.name)).Observe(d.Seconds())
		t.p.Series.Append(t.p.sPhase, float64(t.p.Phases.Value()), d.Seconds())
	}
	return d
}

// StartRound opens a round span under the current phase.
func (p *Pipeline) StartRound(round int) Span {
	if p == nil {
		return Span{}
	}
	sp := p.Tracer.Start(SpanRound, "round", p.curPhase.Load(), round, -1)
	p.curRound.Store(sp.ID())
	return sp
}

// EndRound closes a round span and records the round metrics.
func (p *Pipeline) EndRound(sp Span, participants int) {
	if p == nil {
		return
	}
	d := sp.End()
	p.Rounds.Inc()
	p.RoundSeconds.Observe(d.Seconds())
	p.Participants.Set(float64(participants))
	p.Series.Append(p.sRound, float64(p.Rounds.Value()), d.Seconds())
}

// StartClient opens a client-step span under the current round. Safe
// to call concurrently from per-client workers.
func (p *Pipeline) StartClient(round, client int) Span {
	if p == nil {
		return Span{}
	}
	return p.Tracer.Start(SpanClientStep, "client", p.curRound.Load(), round, client)
}

// EndClient closes a client-step span and feeds the client's series.
// The sp.tr guard matters: with a nil tracer StartClient hands back the
// zero Span, whose round/client fields would otherwise append a bogus
// (0,0) point to client 0's series.
func (p *Pipeline) EndClient(sp Span) {
	if p == nil {
		return
	}
	d := sp.End()
	if sp.tr == nil {
		return
	}
	if c := int(sp.client); c >= 0 && c < len(p.sClient) {
		p.Series.Append(p.sClient[c], float64(sp.round), d.Seconds())
	}
}

// LocalStep records one client-local update step. This sits on the
// training hot path (//lint:hotpath): two atomic adds, no allocation.
func (p *Pipeline) LocalStep(client, batch int) {
	if p == nil {
		return
	}
	p.LocalSteps.At(client).Inc()
	p.Samples.Add(int64(batch))
}

// DropUpdate records a client update lost to an injected failure.
func (p *Pipeline) DropUpdate() {
	if p == nil {
		return
	}
	p.Dropped.Inc()
}

// StartDistill opens a distill-step span under the current round.
func (p *Pipeline) StartDistill(round, client int) Span {
	if p == nil {
		return Span{}
	}
	return p.Tracer.Start(SpanDistillStep, "distill", p.curRound.Load(), round, client)
}

// EndDistill closes a distill-step span and records the matching-step
// metrics; d is the caller's stopwatch measurement (the same value it
// accumulates into Matcher.DDTime).
func (p *Pipeline) EndDistill(sp Span, d time.Duration) {
	if p == nil {
		return
	}
	sp.End()
	p.DistillSteps.Inc()
	p.DistillStepSeconds.Observe(d.Seconds())
	p.DistillSecondsSum.Add(d.Seconds())
	p.Series.Append(p.sDistill, float64(p.DistillSteps.Value()), d.Seconds())
}

// Request records one unlearning request of the given kind index
// (core.RequestKind-1: 0 class, 1 client, 2 sample).
func (p *Pipeline) Request(kindIndex int) {
	if p == nil {
		return
	}
	p.UnlearnRequests.At(kindIndex).Inc()
}

// RecordAccuracy appends one global-accuracy sample at the caller's x
// coordinate (typically the round index).
func (p *Pipeline) RecordAccuracy(x, acc float64) {
	if p == nil {
		return
	}
	p.Series.Append(p.sAccuracy, x, acc)
}

// RecordSplitAccuracy appends one (forget-set, retain-set) accuracy
// pair at an internally sequenced x coordinate, so evaluation sites
// need no shared counter of their own.
func (p *Pipeline) RecordSplitAccuracy(fset, rset float64) {
	if p == nil {
		return
	}
	x := float64(p.evalSeq.Add(1))
	p.Series.Append(p.sFSet, x, fset)
	p.Series.Append(p.sRSet, x, rset)
}

// RecordLoss appends one client-local training-loss sample. This sits
// on the training hot path (//lint:hotpath): one ring-slot write under
// the series mutex, no allocation.
func (p *Pipeline) RecordLoss(x, loss float64) {
	if p == nil {
		return
	}
	p.Series.Append(p.sLoss, x, loss)
}
