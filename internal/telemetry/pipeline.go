package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MaxClientSeries bounds how many fl_client_<i>_seconds series a
// pipeline keeps. Cohorts up to this size get one eagerly registered
// series per client (the original behavior); larger cohorts share a
// bounded slot table so telemetry memory stays O(MaxClientSeries) no
// matter how many clients are registered.
const MaxClientSeries = 64

// StragglerTopK is how many slots of the bounded table are shielded
// from eviction because they hold the largest per-round durations seen
// so far. Stragglers are exactly the clients worth keeping series for,
// and they are also the ones a recency-only policy would evict first
// (a slow client reports rarely).
const StragglerTopK = 8

// clientSlots maps an unbounded client-ID space onto MaxClientSeries
// series. Slots are claimed on first observation; once full, a new
// client evicts deterministically: among the slots NOT protected by
// StragglerTopK (largest max duration, slot index breaking ties), the
// victim is the slot with the smallest last-observed round, then the
// smaller max duration, then the larger owner ID.
type clientSlots struct {
	mu    sync.Mutex
	store *SeriesStore
	ids   []SeriesID // slot → series ID (-1 until claimed)
	owner []int      // slot → client ID owning the slot
	last  []float64  // slot → most recent x (round) observed
	maxY  []float64  // slot → largest duration observed
	slots map[int]int
}

func newClientSlots(store *SeriesStore, n int) *clientSlots {
	cs := &clientSlots{
		store: store,
		ids:   make([]SeriesID, 0, n),
		owner: make([]int, 0, n),
		last:  make([]float64, 0, n),
		maxY:  make([]float64, 0, n),
		slots: make(map[int]int, n),
	}
	return cs
}

const clientSeriesHelp = "Per-round local-steps wall time for one client (x: round)."

func clientSeriesName(client int) string {
	return fmt.Sprintf("fl_client_%d_seconds", client)
}

// append records one (round, duration) sample for a client, claiming or
// recycling a slot as needed.
func (cs *clientSlots) append(client int, x, y float64) {
	cs.mu.Lock()
	slot, ok := cs.slots[client]
	if !ok {
		if len(cs.ids) < cap(cs.ids) {
			slot = len(cs.ids)
			cs.ids = append(cs.ids, cs.store.Register(clientSeriesName(client), clientSeriesHelp, 0))
			cs.owner = append(cs.owner, client)
			cs.last = append(cs.last, x)
			cs.maxY = append(cs.maxY, y)
			cs.slots[client] = slot
		} else {
			slot = cs.evict()
			if slot < 0 { // every slot is straggler-protected: drop the point
				cs.mu.Unlock()
				return
			}
			delete(cs.slots, cs.owner[slot])
			cs.store.Recycle(cs.ids[slot], clientSeriesName(client), clientSeriesHelp)
			cs.owner[slot], cs.last[slot], cs.maxY[slot] = client, x, y
			cs.slots[client] = slot
		}
	} else {
		cs.last[slot] = x
		if y > cs.maxY[slot] {
			cs.maxY[slot] = y
		}
	}
	id := cs.ids[slot]
	cs.mu.Unlock()
	cs.store.Append(id, x, y)
}

// evict picks the victim slot under the deterministic policy, or -1 if
// every slot is protected. Called with cs.mu held.
func (cs *clientSlots) evict() int {
	protected := cs.stragglers()
	victim := -1
	for s := range cs.ids {
		if protected[s] {
			continue
		}
		if victim < 0 {
			victim = s
			continue
		}
		switch {
		case cs.last[s] != cs.last[victim]:
			if cs.last[s] < cs.last[victim] {
				victim = s
			}
		case cs.maxY[s] != cs.maxY[victim]:
			if cs.maxY[s] < cs.maxY[victim] {
				victim = s
			}
		case cs.owner[s] > cs.owner[victim]:
			victim = s
		}
	}
	return victim
}

// stragglers marks the StragglerTopK slots with the largest max
// durations (ties to the lower slot index). Called with cs.mu held.
func (cs *clientSlots) stragglers() map[int]bool {
	k := StragglerTopK
	if k >= len(cs.ids) {
		k = len(cs.ids) - 1 // always leave at least one evictable slot
	}
	out := make(map[int]bool, k)
	for picked := 0; picked < k; picked++ {
		best := -1
		for s := range cs.ids {
			if out[s] {
				continue
			}
			if best < 0 || cs.maxY[s] > cs.maxY[best] {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out[best] = true
	}
	return out
}

// PhaseNames are the pre-registered phase label values. Phase timers
// started under any other name fold into "other".
var PhaseNames = []string{
	"train", "unlearn", "recover", "relearn",
	"retrain", "calibrate", "prune", "scale", "finetune", "fedavg", "other",
}

// phaseIndex maps a phase name onto PhaseNames ("other" fallback).
// Linear scan over a dozen static strings: allocation-free and off the
// hot path (phases start a handful of times per run).
func phaseIndex(name string) int {
	for i, n := range PhaseNames {
		if n == name {
			return i
		}
	}
	return len(PhaseNames) - 1
}

// Pipeline bundles the pre-registered instruments and span plumbing
// for the FL / distillation / unlearning pipelines. One Pipeline is
// shared by every phase of a run; all record methods are safe for
// concurrent use (RunPhaseConcurrent's client workers record through
// the same handles) and are no-ops on a nil receiver.
type Pipeline struct {
	Registry *Registry
	Tracer   *Tracer
	Series   *SeriesStore
	// Audit is the deletion-request audit trail; the serving layer
	// appends one entry per forget request and BuildManifest folds the
	// log into the run ledger.
	Audit *AuditLog

	// FL substrate.
	Rounds       *Counter      // quickdrop_fl_rounds_total
	RoundSeconds *Histogram    // quickdrop_fl_round_seconds
	Participants *Gauge        // quickdrop_fl_round_participants
	LocalSteps   *CounterVec   // quickdrop_fl_local_steps_total{client}
	Samples      *Counter      // quickdrop_fl_samples_total
	Dropped      *Counter      // quickdrop_fl_dropped_updates_total
	Phases       *Counter      // quickdrop_phases_total
	PhaseSeconds *HistogramVec // quickdrop_phase_seconds{phase}

	// In-situ distillation.
	DistillSteps       *Counter   // quickdrop_distill_steps_total
	DistillStepSeconds *Histogram // quickdrop_distill_step_seconds
	DistillSecondsSum  *Gauge     // quickdrop_distill_seconds_sum

	// Unlearning workflow.
	UnlearnRequests *CounterVec // quickdrop_unlearn_requests_total{kind}

	exp      Span
	curPhase atomic.Uint64
	curRound atomic.Uint64
	evalSeq  atomic.Uint64

	// Flight-recorder series IDs, resolved once at construction so the
	// record paths are slice-indexed appends with no name lookups.
	sRound    SeriesID
	sPhase    SeriesID
	sAccuracy SeriesID
	sFSet     SeriesID
	sRSet     SeriesID
	sLoss     SeriesID
	sDistill  SeriesID
	sClient   []SeriesID // per-client round durations, indexed by client ID
	// slots replaces sClient for cohorts above MaxClientSeries: a bounded
	// table shared by all client IDs with straggler-protective eviction.
	slots *clientSlots
}

// RequestKindNames are the label values of UnlearnRequests, aligned
// with core.RequestKind (index kind-1).
var RequestKindNames = []string{"class", "client", "sample"}

// NewPipeline registers the instrument catalogue on reg, opens the
// experiment root span on tr, and pre-registers per-client series for
// client IDs [0, clients). Either argument may be nil (metrics-only or
// spans-only operation); NewPipeline(nil, nil, …) returns a pipeline
// that still provides working phase stopwatches.
func NewPipeline(reg *Registry, tr *Tracer, clients int) *Pipeline {
	// The per-client counter vector is capped like the series table:
	// above MaxClientSeries its label space stops growing with N and
	// higher client IDs fall into the CounterVec's silent-drop range.
	vecClients := clients
	if vecClients > MaxClientSeries {
		vecClients = MaxClientSeries
	}
	p := &Pipeline{
		Registry: reg,
		Tracer:   tr,
		Audit:    &AuditLog{},

		Rounds:       reg.Counter("quickdrop_fl_rounds_total", "Completed FedAvg rounds across all phases."),
		RoundSeconds: reg.Histogram("quickdrop_fl_round_seconds", "FedAvg round wall time in seconds.", nil),
		Participants: reg.Gauge("quickdrop_fl_round_participants", "Clients selected in the most recent round."),
		LocalSteps: reg.CounterVec("quickdrop_fl_local_steps_total",
			"Client-local SGD/SGA steps.", "client", IndexValues(vecClients)),
		Samples: reg.Counter("quickdrop_fl_samples_total", "Training samples consumed by local steps."),
		Dropped: reg.Counter("quickdrop_fl_dropped_updates_total", "Client updates lost to injected failures."),
		Phases:  reg.Counter("quickdrop_phases_total", "Completed pipeline phases."),
		PhaseSeconds: reg.HistogramVec("quickdrop_phase_seconds",
			"Phase wall time in seconds.", "phase", PhaseNames, []float64{.01, .05, .1, .5, 1, 5, 15, 60, 300}),

		DistillSteps: reg.Counter("quickdrop_distill_steps_total", "In-situ gradient-matching updates."),
		DistillStepSeconds: reg.Histogram("quickdrop_distill_step_seconds",
			"Gradient-matching update wall time in seconds.", nil),
		DistillSecondsSum: reg.Gauge("quickdrop_distill_seconds_sum",
			"Accumulated distillation wall time in seconds (the paper's DD overhead)."),

		UnlearnRequests: reg.CounterVec("quickdrop_unlearn_requests_total",
			"Unlearning requests served.", "kind", RequestKindNames),
	}
	p.exp = tr.Start(SpanExperiment, "experiment", 0, -1, -1)

	// The flight recorder: bounded per-run time series behind the same
	// instruments. Registered only when metrics are on (reg != nil) so a
	// fully disabled pipeline stays handle-free; every ID degrades to the
	// silent-drop invalid ID on a nil store.
	if reg != nil {
		s := NewSeriesStore()
		p.Series = s
		p.sRound = s.Register("fl_round_seconds", "FedAvg round wall time (x: cumulative round).", 0)
		p.sPhase = s.Register("phase_seconds", "Phase wall time (x: phase sequence).", 0)
		p.sAccuracy = s.Register("eval_accuracy", "Global model accuracy (x: caller's round).", 0)
		p.sFSet = s.Register("fset_accuracy", "Accuracy on the forget set (x: eval sequence).", 0)
		p.sRSet = s.Register("rset_accuracy", "Accuracy on the retain set (x: eval sequence).", 0)
		p.sLoss = s.Register("train_loss", "Client-local training loss (x: cumulative local step).", 0)
		p.sDistill = s.Register("distill_step_seconds", "Gradient-matching update wall time (x: cumulative step).", 0)
		if clients <= MaxClientSeries {
			p.sClient = make([]SeriesID, clients)
			for i := range p.sClient {
				p.sClient[i] = s.Register(clientSeriesName(i), clientSeriesHelp, 0)
			}
		} else {
			// Registry-scale cohort: per-client series would grow O(N).
			// A bounded slot table keeps the sampled participants plus the
			// top stragglers instead.
			p.slots = newClientSlots(s, MaxClientSeries)
		}
	} else {
		p.sRound, p.sPhase, p.sAccuracy, p.sFSet, p.sRSet, p.sLoss, p.sDistill = -1, -1, -1, -1, -1, -1, -1
	}
	return p
}

// Close ends the experiment root span.
func (p *Pipeline) Close() {
	if p == nil {
		return
	}
	p.exp.End()
}

// PhaseTimer measures one pipeline phase. The stopwatch always runs —
// phase costs feed eval.Cost whether or not telemetry is enabled — but
// the span and metrics record only when a pipeline is attached.
type PhaseTimer struct {
	sw   Stopwatch
	span Span
	p    *Pipeline
	name string
}

// StartPhase opens a phase timer. Works on a nil receiver: the
// returned timer still measures wall time (replacing the scattered
// `start := time.Now()` accounting sites) but records nothing.
func (p *Pipeline) StartPhase(name string) PhaseTimer {
	t := PhaseTimer{sw: StartTimer(), p: p, name: name}
	if p != nil {
		t.span = p.Tracer.Start(SpanPhase, name, p.exp.ID(), -1, -1)
		p.curPhase.Store(t.span.ID())
	}
	return t
}

// Stop ends the phase, records its span and histogram, and returns
// the measured wall time.
func (t PhaseTimer) Stop() time.Duration {
	d := t.sw.Elapsed()
	if t.p != nil {
		t.span.End()
		t.p.Phases.Inc()
		t.p.PhaseSeconds.At(phaseIndex(t.name)).Observe(d.Seconds())
		t.p.Series.Append(t.p.sPhase, float64(t.p.Phases.Value()), d.Seconds())
	}
	return d
}

// StartRound opens a round span under the current phase.
func (p *Pipeline) StartRound(round int) Span {
	if p == nil {
		return Span{}
	}
	sp := p.Tracer.Start(SpanRound, "round", p.curPhase.Load(), round, -1)
	p.curRound.Store(sp.ID())
	return sp
}

// EndRound closes a round span and records the round metrics.
func (p *Pipeline) EndRound(sp Span, participants int) {
	if p == nil {
		return
	}
	d := sp.End()
	p.Rounds.Inc()
	p.RoundSeconds.Observe(d.Seconds())
	p.Participants.Set(float64(participants))
	p.Series.Append(p.sRound, float64(p.Rounds.Value()), d.Seconds())
}

// StartClient opens a client-step span under the current round. Safe
// to call concurrently from per-client workers.
func (p *Pipeline) StartClient(round, client int) Span {
	if p == nil {
		return Span{}
	}
	return p.Tracer.Start(SpanClientStep, "client", p.curRound.Load(), round, client)
}

// EndClient closes a client-step span and feeds the client's series.
// The sp.tr guard matters: with a nil tracer StartClient hands back the
// zero Span, whose round/client fields would otherwise append a bogus
// (0,0) point to client 0's series.
func (p *Pipeline) EndClient(sp Span) {
	if p == nil {
		return
	}
	d := sp.End()
	if sp.tr == nil {
		return
	}
	if c := int(sp.client); c >= 0 && c < len(p.sClient) {
		p.Series.Append(p.sClient[c], float64(sp.round), d.Seconds())
	} else if c >= 0 && p.slots != nil {
		p.slots.append(c, float64(sp.round), d.Seconds())
	}
}

// LocalStep records one client-local update step. This sits on the
// training hot path (//lint:hotpath): two atomic adds, no allocation.
func (p *Pipeline) LocalStep(client, batch int) {
	if p == nil {
		return
	}
	p.LocalSteps.At(client).Inc()
	p.Samples.Add(int64(batch))
}

// DropUpdate records a client update lost to an injected failure.
func (p *Pipeline) DropUpdate() {
	if p == nil {
		return
	}
	p.Dropped.Inc()
}

// StartDistill opens a distill-step span under the current round.
func (p *Pipeline) StartDistill(round, client int) Span {
	if p == nil {
		return Span{}
	}
	return p.Tracer.Start(SpanDistillStep, "distill", p.curRound.Load(), round, client)
}

// EndDistill closes a distill-step span and records the matching-step
// metrics; d is the caller's stopwatch measurement (the same value it
// accumulates into Matcher.DDTime).
func (p *Pipeline) EndDistill(sp Span, d time.Duration) {
	if p == nil {
		return
	}
	sp.End()
	p.DistillSteps.Inc()
	p.DistillStepSeconds.Observe(d.Seconds())
	p.DistillSecondsSum.Add(d.Seconds())
	p.Series.Append(p.sDistill, float64(p.DistillSteps.Value()), d.Seconds())
}

// Request records one unlearning request of the given kind index
// (core.RequestKind-1: 0 class, 1 client, 2 sample).
func (p *Pipeline) Request(kindIndex int) {
	if p == nil {
		return
	}
	p.UnlearnRequests.At(kindIndex).Inc()
}

// RecordAccuracy appends one global-accuracy sample at the caller's x
// coordinate (typically the round index).
func (p *Pipeline) RecordAccuracy(x, acc float64) {
	if p == nil {
		return
	}
	p.Series.Append(p.sAccuracy, x, acc)
}

// RecordSplitAccuracy appends one (forget-set, retain-set) accuracy
// pair at an internally sequenced x coordinate, so evaluation sites
// need no shared counter of their own.
func (p *Pipeline) RecordSplitAccuracy(fset, rset float64) {
	if p == nil {
		return
	}
	x := float64(p.evalSeq.Add(1))
	p.Series.Append(p.sFSet, x, fset)
	p.Series.Append(p.sRSet, x, rset)
}

// RecordLoss appends one client-local training-loss sample. This sits
// on the training hot path (//lint:hotpath): one ring-slot write under
// the series mutex, no allocation.
func (p *Pipeline) RecordLoss(x, loss float64) {
	if p == nil {
		return
	}
	p.Series.Append(p.sLoss, x, loss)
}
