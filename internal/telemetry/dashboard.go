package telemetry

import (
	"encoding/json"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// dashboardPoints caps how many samples each sparkline renders; longer
// series are LTTB-downsampled to this before plotting.
const dashboardPoints = 160

// seriesJSON is one series in the /api/series payload.
type seriesJSON struct {
	Name   string  `json:"name"`
	Help   string  `json:"help"`
	Total  uint64  `json:"total"`
	Points []Point `json:"points"`
}

// writeSeriesJSON serves the flight-recorder series as JSON. Query
// parameters: name= selects one series (404 when absent), n= caps the
// returned points via LTTB downsampling.
func writeSeriesJSON(w http.ResponseWriter, r *http.Request, p *Pipeline) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var store *SeriesStore
	if p != nil {
		store = p.Series
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			n = v
		}
	}
	collect := func(name string) seriesJSON {
		id, _ := store.ID(name)
		pts := store.Points(id)
		if n > 0 {
			pts = Downsample(pts, n)
		}
		if pts == nil {
			pts = []Point{}
		}
		return seriesJSON{Name: name, Help: store.Help(id), Total: store.Total(id), Points: pts}
	}
	if name := r.URL.Query().Get("name"); name != "" {
		if _, ok := store.ID(name); !ok {
			http.Error(w, `{"error":"unknown series"}`, http.StatusNotFound)
			return
		}
		_ = json.NewEncoder(w).Encode(collect(name))
		return
	}
	out := struct {
		Series []seriesJSON `json:"series"`
	}{Series: []seriesJSON{}}
	for _, name := range store.Names() {
		out.Series = append(out.Series, collect(name))
	}
	_ = json.NewEncoder(w).Encode(out)
}

// sparkline is one rendered chart card.
type sparkline struct {
	Name  string
	Help  string
	Last  string
	Count uint64
	Path  template.HTML // SVG polyline points, precomputed server-side
	MinY  string
	MaxY  string
	Empty bool
}

// dashData feeds the dashboard template.
type dashData struct {
	Rounds    int64
	Retained  int
	Total     uint64
	Latency   LatencySummary
	HasLat    bool
	Sparks    []sparkline
	RoundRows []RoundReport
	Clients   []ClientReport
	Straggler int32
	// Numerics health panel: series prefixed "health_" are partitioned
	// out of the general cards, and the quickdrop_health gauge drives
	// the status stat ("" when no monitor is attached).
	HealthStatus string
	HealthTrips  float64
	NaNEvents    float64
	HealthSparks []sparkline
}

// sparkPath scales pts into a w×h viewBox polyline with a small inset
// so the 2px stroke never clips.
func sparkPath(pts []Point, w, h float64) string {
	if len(pts) == 0 {
		return ""
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	const inset = 3.0
	var b strings.Builder
	for i, p := range pts {
		x := inset + (p.X-minX)/(maxX-minX)*(w-2*inset)
		y := h - inset - (p.Y-minY)/(maxY-minY)*(h-2*inset)
		if i > 0 {
			_ = b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	return b.String()
}

// fmtVal renders a sample value compactly for the card headline.
func fmtVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "–"
	case v != 0 && math.Abs(v) < 0.001:
		return strconv.FormatFloat(v, 'e', 2, 64)
	default:
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
}

// writeDashboard renders the self-contained flight-recorder page: no
// external assets, inline SVG sparklines, auto-refresh.
func writeDashboard(w http.ResponseWriter, p *Pipeline) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	d := dashData{Straggler: -1}
	if p != nil {
		d.Rounds = p.Rounds.Value()
		d.Retained = p.Tracer.Len()
		d.Total = p.Tracer.Total()
		an := p.Tracer.Analyze()
		d.Latency = an.RoundLatency
		d.HasLat = an.RoundLatency.Count > 0
		d.Clients = an.Clients
		if s := an.Straggler(); s != nil {
			d.Straggler = s.Client
		}
		// Newest rounds first, capped for the table.
		for i := len(an.Rounds) - 1; i >= 0 && len(d.RoundRows) < 12; i-- {
			d.RoundRows = append(d.RoundRows, an.Rounds[i])
		}
		store := p.Series
		for _, name := range store.Names() {
			id, _ := store.ID(name)
			total := store.Total(id)
			if total == 0 {
				continue
			}
			pts := Downsample(store.Points(id), dashboardPoints)
			sp := sparkline{
				Name:  name,
				Help:  store.Help(id),
				Count: total,
				Last:  fmtVal(pts[len(pts)-1].Y),
				Path:  template.HTML(sparkPath(pts, 280, 64)),
			}
			minY, maxY := pts[0].Y, pts[0].Y
			for _, pt := range pts {
				minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
			}
			sp.MinY, sp.MaxY = fmtVal(minY), fmtVal(maxY)
			if strings.HasPrefix(name, "health_") {
				d.HealthSparks = append(d.HealthSparks, sp)
			} else {
				d.Sparks = append(d.Sparks, sp)
			}
		}
		if sums := p.Registry.Summaries(); sums != nil {
			if hs, ok := sums["quickdrop_health"]; ok {
				if hs.Sum >= 1 {
					d.HealthStatus = "healthy"
				} else {
					d.HealthStatus = "TRIPPED"
				}
			}
			if ts, ok := sums["quickdrop_health_watchdog_trips_total"]; ok {
				d.HealthTrips = ts.Sum
			}
			if ns, ok := sums["quickdrop_health_nan_events_total"]; ok {
				d.NaNEvents = ns.Sum
			}
		}
	}
	if len(d.Sparks) == 0 {
		d.Sparks = nil
	}
	// Template execution over an in-process value only fails if the
	// client hung up mid-write.
	_ = dashTmpl.Execute(w, d)
}

// dashTmpl is the whole dashboard: one HTML document, zero external
// assets. Color roles follow the validated reference palette (light and
// dark chart surfaces, series-1 blue for the single-series sparklines,
// text always in ink tokens, hairline grid); dark mode is its own
// stepped values under prefers-color-scheme, not an automatic flip.
var dashTmpl = template.Must(template.New("dashboard").Funcs(template.FuncMap{
	"secs": func(d interface{ Seconds() float64 }) string { return fmtVal(d.Seconds()) },
	"f2":   func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) },
	"f0":   func(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>QuickDrop flight recorder</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --border: rgba(255,255,255,0.10);
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --border: rgba(255,255,255,0.10);
}
body.viz-root {
  margin: 0; padding: 24px;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px;
}
h1 { font-size: 18px; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.stats { display: flex; gap: 24px; flex-wrap: wrap; margin-bottom: 24px; }
.stat { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 12px 16px; }
.stat .k { color: var(--text-muted); font-size: 12px; }
.stat .v { font-size: 22px; }
.cards { display: flex; gap: 16px; flex-wrap: wrap; margin-bottom: 24px; }
.card { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 12px 16px; width: 300px; }
.card .name { font-size: 13px; color: var(--text-primary); }
.card .meta { font-size: 11px; color: var(--text-muted); }
.card .last { font-size: 18px; color: var(--text-primary); margin: 2px 0 6px; }
.card svg { display: block; }
table { border-collapse: collapse; background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; margin-bottom: 24px; }
caption { text-align: left; color: var(--text-secondary); padding: 6px 2px; caption-side: top; }
th { color: var(--text-muted); font-weight: 500; font-size: 12px; text-align: right; padding: 6px 12px; border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child { text-align: left; }
td { text-align: right; padding: 5px 12px; font-variant-numeric: tabular-nums; color: var(--text-secondary); border-bottom: 1px solid var(--grid); }
tr:last-child td { border-bottom: none; }
tr.worst td { color: var(--text-primary); font-weight: 600; }
.empty { color: var(--text-muted); }
.v.bad { color: #d64545; font-weight: 600; }
.section { color: var(--text-secondary); margin: 0 0 8px; font-size: 13px; }
</style>
</head>
<body class="viz-root">
<h1>QuickDrop flight recorder</h1>
<p class="sub">Live view of the run&#8217;s time series and span analytics. Refreshes every 2&#8239;s.</p>
<div class="stats">
  <div class="stat"><div class="k">rounds</div><div class="v">{{.Rounds}}</div></div>
  <div class="stat"><div class="k">spans retained / total</div><div class="v">{{.Retained}} / {{.Total}}</div></div>
  {{if .HasLat}}
  <div class="stat"><div class="k">round p50</div><div class="v">{{secs .Latency.P50}}s</div></div>
  <div class="stat"><div class="k">round p95</div><div class="v">{{secs .Latency.P95}}s</div></div>
  <div class="stat"><div class="k">round p99</div><div class="v">{{secs .Latency.P99}}s</div></div>
  {{end}}
  {{if .HealthStatus}}
  <div class="stat"><div class="k">numerics health</div><div class="v{{if eq .HealthStatus "TRIPPED"}} bad{{end}}">{{.HealthStatus}}</div></div>
  <div class="stat"><div class="k">watchdog trips</div><div class="v">{{f0 .HealthTrips}}</div></div>
  <div class="stat"><div class="k">NaN events</div><div class="v">{{f0 .NaNEvents}}</div></div>
  {{end}}
</div>
{{if .HealthSparks}}
<p class="section">Numerics health &#8212; per-layer gradient norms, update/param ratios, loss EWMA, watchdog status</p>
<div class="cards">
{{range .HealthSparks}}
  <div class="card">
    <div class="name">{{.Name}}</div>
    <div class="last">{{.Last}}</div>
    <svg width="280" height="64" viewBox="0 0 280 64" role="img" aria-label="{{.Name}} sparkline">
      <line x1="3" y1="61" x2="277" y2="61" stroke="var(--baseline)" stroke-width="1"/>
      <polyline points="{{.Path}}" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>
    </svg>
    <div class="meta">{{.Count}} samples &#183; range {{.MinY}}&#8202;&#8211;&#8202;{{.MaxY}}</div>
  </div>
{{end}}
</div>
{{end}}
{{if .Sparks}}
<div class="cards">
{{range .Sparks}}
  <div class="card">
    <div class="name">{{.Name}}</div>
    <div class="last">{{.Last}}</div>
    <svg width="280" height="64" viewBox="0 0 280 64" role="img" aria-label="{{.Name}} sparkline">
      <line x1="3" y1="61" x2="277" y2="61" stroke="var(--baseline)" stroke-width="1"/>
      <polyline points="{{.Path}}" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>
    </svg>
    <div class="meta">{{.Count}} samples &#183; range {{.MinY}}&#8202;&#8211;&#8202;{{.MaxY}}</div>
  </div>
{{end}}
</div>
{{else}}
<p class="empty">No series samples recorded yet.</p>
{{end}}
{{if .Clients}}
<table>
  <caption>Straggler attribution &#8212; per-client totals over retained rounds{{if ge .Straggler 0}} (client {{.Straggler}} dominates){{end}}</caption>
  <tr><th>client</th><th>rounds</th><th>dominated</th><th>total&#8239;s</th><th>mean slowdown</th><th>max slowdown</th></tr>
  {{$worst := .Straggler}}
  {{range .Clients}}
  <tr{{if eq .Client $worst}} class="worst"{{end}}>
    <td>{{.Client}}</td><td>{{.Rounds}}</td><td>{{.Dominated}}</td>
    <td>{{secs .Total}}</td><td>{{f2 .MeanSlowdown}}&#215;</td><td>{{f2 .MaxSlowdown}}&#215;</td>
  </tr>
  {{end}}
</table>
{{end}}
{{if .RoundRows}}
<table>
  <caption>Recent rounds (newest first)</caption>
  <tr><th>round</th><th>phase</th><th>wall&#8239;s</th><th>straggler</th><th>slowdown</th><th>critical frac</th><th>distill&#8239;s</th></tr>
  {{range .RoundRows}}
  <tr>
    <td>{{.Round}}</td><td>{{.Phase}}</td><td>{{secs .Dur}}</td>
    <td>{{if ge .Straggler 0}}{{.Straggler}}{{else}}&#8211;{{end}}</td>
    <td>{{f2 .Slowdown}}&#215;</td><td>{{f2 .CriticalFrac}}</td><td>{{secs .Distill}}</td>
  </tr>
  {{end}}
</table>
{{end}}
</body>
</html>
`))
