// Package telemetry is the observability subsystem for the QuickDrop
// reproduction: a stdlib-only, allocation-free metrics registry
// (counters, gauges, fixed-bucket histograms with pre-registered label
// series), a bounded-ring span recorder for the pipeline's hierarchy
// (experiment → phase → round → client step → distill step), and
// exporters (Prometheus text exposition, expvar, pprof, and a
// deterministic JSONL event log).
//
// Three contracts govern the package (see DESIGN.md "Observability"):
//
//  1. Record paths never allocate. Counter.Add, Gauge.Set,
//     Histogram.Observe, Vec.At and span Start/End are guarded by
//     testing.AllocsPerRun and by the `telemetry` quickdroplint rule,
//     which forbids any other telemetry entry point in functions
//     reachable from //lint:hotpath roots.
//  2. Disabled telemetry is free. Every handle is nil-receiver-safe: a
//     nil *Pipeline, *Counter, *Histogram or zero Span turns the whole
//     record path into an early return with no clock read.
//  3. Wall-clock readings never feed back into the numerics. The
//     package is the module's sole wall-clock authority (the
//     determinism lint rule forbids time.Now/time.Since in every other
//     internal package); timings flow only into reports, so runs stay
//     bitwise deterministic with telemetry on or off.
package telemetry
