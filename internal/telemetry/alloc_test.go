package telemetry

import "testing"

// The acceptance bar for the whole package: every record path that the
// training and distillation hot loops touch must be allocation-free —
// both with telemetry enabled and with it disabled (nil handles). The
// `telemetry` quickdroplint rule enforces the same property statically.

func TestRecordPathsDoNotAllocate(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	p := NewPipeline(reg, tr, 8)
	h := reg.Histogram("alloc_test_seconds", "", nil)
	c := reg.Counter("alloc_test_total", "")
	g := reg.Gauge("alloc_test_gauge", "")

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.01) }},
		{"CounterVec.At.Inc", func() { p.LocalSteps.At(3).Inc() }},
		{"Pipeline.LocalStep", func() { p.LocalStep(3, 32) }},
		{"Pipeline.DropUpdate", func() { p.DropUpdate() }},
		{"Span.StartEnd", func() { tr.Start(SpanClientStep, "client", 1, 0, 3).End() }},
		{"Pipeline.ClientSpan", func() { p.EndClient(p.StartClient(0, 3)) }},
		{"Stopwatch", func() { _ = StartTimer().Elapsed() }},
		{"SeriesStore.Append", func() { p.Series.Append(p.sLoss, 1, 0.5) }},
		{"Pipeline.RecordLoss", func() { p.RecordLoss(2, 0.25) }},
		{"Pipeline.RecordAccuracy", func() { p.RecordAccuracy(3, 0.9) }},
		{"Pipeline.RecordSplitAccuracy", func() { p.RecordSplitAccuracy(0.1, 0.8) }},
		{"Quantiles.Observe", func() { h.Quantiles().Observe(0.02) }},
	}
	for _, tc := range cases {
		tc.fn() // warm up (first ring append etc.)
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

func TestDisabledRecordPathsDoNotAllocate(t *testing.T) {
	var p *Pipeline
	var c *Counter
	var h *Histogram
	var tr *Tracer
	var s *SeriesStore
	var q *Quantiles
	live := NewSeriesStore()

	cases := []struct {
		name string
		fn   func()
	}{
		{"nil Counter.Inc", func() { c.Inc() }},
		{"nil Histogram.Observe", func() { h.Observe(1) }},
		{"nil Pipeline.LocalStep", func() { p.LocalStep(0, 32) }},
		{"nil Tracer span", func() { tr.Start(SpanClientStep, "client", 0, 0, 0).End() }},
		{"nil Pipeline client span", func() { p.EndClient(p.StartClient(0, 0)) }},
		{"nil Pipeline distill span", func() { p.EndDistill(p.StartDistill(0, 0), 0) }},
		{"nil SeriesStore.Append", func() { s.Append(0, 1, 1) }},
		{"invalid SeriesID Append", func() { live.Append(-1, 1, 1) }},
		{"nil Pipeline.RecordLoss", func() { p.RecordLoss(1, 1) }},
		{"nil Pipeline.RecordAccuracy", func() { p.RecordAccuracy(1, 1) }},
		{"nil Pipeline.RecordSplitAccuracy", func() { p.RecordSplitAccuracy(0, 1) }},
		{"nil Quantiles.Observe", func() { q.Observe(1) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}
