package telemetry

import (
	"math"
	"sort"
	"sync"
)

// SeriesID addresses one pre-registered time series. The zero store
// and the invalid ID (-1, returned by registration on a nil store)
// both turn Append into a no-op, mirroring the nil-handle contract of
// the metrics registry.
type SeriesID int32

// Point is one sample of a series: X is the experiment-time coordinate
// (round index, step counter, eval sequence — the recorder never
// interprets it) and Y the measured value.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// DefaultSeriesCapacity bounds a series ring when Register gets 0.
const DefaultSeriesCapacity = 4096

// seriesBuf is one bounded series: a pre-allocated ring of points
// where the newest samples win, exactly like the span tracer's ring.
type seriesBuf struct {
	name string
	help string
	ring []Point
	len  int    // retained points (≤ cap(ring))
	n    uint64 // total points ever appended
}

// SeriesStore is the flight recorder's sample log: a fixed catalogue
// of bounded float64 series registered at setup time and appended to
// from the pipeline's record paths. Append takes one mutex and writes
// one slot — no allocation, no map lookup — so it is safe on
// //lint:hotpath paths; snapshots and downsampling are read-side and
// may allocate. A nil store is fully disabled.
type SeriesStore struct {
	mu     sync.Mutex
	series []*seriesBuf
	byName map[string]SeriesID
}

// NewSeriesStore returns an empty store.
func NewSeriesStore() *SeriesStore {
	return &SeriesStore{byName: make(map[string]SeriesID)}
}

// Register adds a series and returns its ID. capacity ≤ 0 selects
// DefaultSeriesCapacity. Registering a duplicate name returns the
// existing ID (so pipelines can be rebuilt idempotently); a nil store
// returns the invalid ID.
func (s *SeriesStore) Register(name, help string, capacity int) SeriesID {
	if s == nil {
		return -1
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byName[name]; ok {
		return id
	}
	id := SeriesID(len(s.series))
	s.series = append(s.series, &seriesBuf{name: name, help: help, ring: make([]Point, capacity)})
	s.byName[name] = id
	return id
}

// Recycle renames a series in place and discards its retained points,
// keeping the ID (and the ring allocation) stable. The pipeline's
// bounded client-series table uses this to hand a slot from an evicted
// client to a newly observed one without growing the catalogue. If the
// new name is already registered to a different series the recycle is
// refused (false), preserving the name→ID bijection.
func (s *SeriesStore) Recycle(id SeriesID, name, help string) bool {
	if s == nil || id < 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.series) {
		return false
	}
	if other, ok := s.byName[name]; ok && other != id {
		return false
	}
	b := s.series[id]
	delete(s.byName, b.name)
	b.name, b.help = name, help
	b.len, b.n = 0, 0
	s.byName[name] = id
	return true
}

// Append records one sample. Out-of-range IDs (including the invalid
// ID from a nil-store registration) are dropped silently; the write
// path never allocates.
func (s *SeriesStore) Append(id SeriesID, x, y float64) {
	if s == nil || id < 0 {
		return
	}
	s.mu.Lock()
	if int(id) >= len(s.series) {
		s.mu.Unlock()
		return
	}
	b := s.series[id]
	b.ring[b.n%uint64(len(b.ring))] = Point{X: x, Y: y}
	if b.len < len(b.ring) {
		b.len++
	}
	b.n++
	s.mu.Unlock()
}

// ID resolves a series name (false when absent or the store is nil).
func (s *SeriesStore) ID(name string) (SeriesID, bool) {
	if s == nil {
		return -1, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byName[name]
	return id, ok
}

// Names returns the registered series names in sorted order.
func (s *SeriesStore) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]string, 0, len(s.series))
	for _, b := range s.series {
		out = append(out, b.name)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Help returns a series' registered help string.
func (s *SeriesStore) Help(id SeriesID) string {
	if s == nil || id < 0 {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.series) {
		return ""
	}
	return s.series[id].help
}

// Total returns how many points were ever appended to a series,
// including ones the ring has since overwritten.
func (s *SeriesStore) Total(id SeriesID) uint64 {
	if s == nil || id < 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.series) {
		return 0
	}
	return s.series[id].n
}

// Points copies the retained samples out in append order (oldest to
// newest). Nil for unknown IDs or a nil store.
func (s *SeriesStore) Points(id SeriesID) []Point {
	if s == nil || id < 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.series) {
		return nil
	}
	b := s.series[id]
	out := make([]Point, 0, b.len)
	if b.n > uint64(len(b.ring)) {
		head := int(b.n % uint64(len(b.ring)))
		out = append(out, b.ring[head:]...)
		out = append(out, b.ring[:head]...)
	} else {
		out = append(out, b.ring[:b.len]...)
	}
	return out
}

// Downsample reduces pts to at most threshold points with
// largest-triangle-three-buckets (Steinarsson 2013): the first and
// last points are kept, the interior is bucketed, and each bucket
// keeps the point forming the largest triangle with the previously
// selected point and the next bucket's mean — the standard choice for
// preserving the visual shape of a latency or accuracy curve. A
// threshold < 3 or ≥ len(pts) returns pts unchanged.
func Downsample(pts []Point, threshold int) []Point {
	if threshold >= len(pts) || threshold < 3 {
		return pts
	}
	out := make([]Point, 0, threshold)
	out = append(out, pts[0])
	// Bucket the interior points evenly.
	every := float64(len(pts)-2) / float64(threshold-2)
	a := 0 // index of the previously selected point
	for i := 0; i < threshold-2; i++ {
		lo := int(float64(i)*every) + 1
		hi := int(float64(i+1)*every) + 1
		if hi > len(pts)-1 {
			hi = len(pts) - 1
		}
		// Mean of the NEXT bucket is the triangle's third corner.
		nlo, nhi := hi, int(float64(i+2)*every)+1
		if nhi > len(pts) {
			nhi = len(pts)
		}
		if nlo >= nhi {
			nlo, nhi = len(pts)-1, len(pts)
		}
		var mx, my float64
		for _, p := range pts[nlo:nhi] {
			mx += p.X
			my += p.Y
		}
		mx /= float64(nhi - nlo)
		my /= float64(nhi - nlo)

		best, bestArea := lo, -1.0
		for j := lo; j < hi; j++ {
			// Twice the triangle area; the factor cancels in argmax.
			area := math.Abs((pts[a].X-mx)*(pts[j].Y-pts[a].Y) -
				(pts[a].X-pts[j].X)*(my-pts[a].Y))
			if area > bestArea {
				bestArea = area
				best = j
			}
		}
		out = append(out, pts[best])
		a = best
	}
	return append(out, pts[len(pts)-1])
}
