package telemetry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock installs a hand-cranked clock and returns an advance func.
func fakeClock(t *testing.T) func(d time.Duration) {
	t.Helper()
	var now int64
	restore := SetClockForTesting(func() int64 { return now })
	t.Cleanup(restore)
	return func(d time.Duration) { now += int64(d) }
}

func TestSpanRecording(t *testing.T) {
	tick := fakeClock(t)
	tr := NewTracer(8)
	root := tr.Start(SpanExperiment, "exp", 0, -1, -1)
	tick(10 * time.Millisecond)
	child := tr.Start(SpanRound, "round", root.ID(), 3, -1)
	tick(5 * time.Millisecond)
	if d := child.End(); d != 5*time.Millisecond {
		t.Fatalf("child duration = %v, want 5ms", d)
	}
	if d := root.End(); d != 15*time.Millisecond {
		t.Fatalf("root duration = %v, want 15ms", d)
	}
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Completion order: child first.
	if recs[0].Name != "round" || recs[0].Parent != root.ID() || recs[0].Round != 3 {
		t.Errorf("child record wrong: %+v", recs[0])
	}
	if recs[1].Kind != SpanExperiment || recs[1].Duration() != 15*time.Millisecond {
		t.Errorf("root record wrong: %+v", recs[1])
	}
}

func TestSpanRingWraps(t *testing.T) {
	fakeClock(t)
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start(SpanRound, "round", 0, i, -1).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	recs := tr.Snapshot()
	// Newest 4 survive, oldest first: rounds 6,7,8,9.
	for i, rec := range recs {
		if want := int32(6 + i); rec.Round != want {
			t.Errorf("recs[%d].Round = %d, want %d", i, rec.Round, want)
		}
	}
}

// TestSpanRingBoundaries pins down the wraparound edge cases around
// exact capacity: Snapshot ordering and Total vs Len at cap-1, cap,
// cap+1, and after several full generations of overwrites.
func TestSpanRingBoundaries(t *testing.T) {
	fakeClock(t)
	const capacity = 4
	cases := []struct {
		writes    int
		wantLen   int
		wantFirst int32 // round of the oldest retained record
	}{
		{writes: capacity - 1, wantLen: 3, wantFirst: 0},
		{writes: capacity, wantLen: 4, wantFirst: 0},
		{writes: capacity + 1, wantLen: 4, wantFirst: 1},
		{writes: 3*capacity + 2, wantLen: 4, wantFirst: 10},
	}
	for _, tc := range cases {
		tr := NewTracer(capacity)
		for i := 0; i < tc.writes; i++ {
			tr.Start(SpanRound, "round", 0, i, -1).End()
		}
		if tr.Len() != tc.wantLen {
			t.Errorf("%d writes: Len = %d, want %d", tc.writes, tr.Len(), tc.wantLen)
		}
		if tr.Total() != uint64(tc.writes) {
			t.Errorf("%d writes: Total = %d, want %d", tc.writes, tr.Total(), tc.writes)
		}
		recs := tr.Snapshot()
		if len(recs) != tc.wantLen {
			t.Fatalf("%d writes: Snapshot len = %d, want %d", tc.writes, len(recs), tc.wantLen)
		}
		for i, rec := range recs {
			if want := tc.wantFirst + int32(i); rec.Round != want {
				t.Errorf("%d writes: recs[%d].Round = %d, want %d (oldest-to-newest order)",
					tc.writes, i, rec.Round, want)
			}
		}
	}
}

func TestNilTracerAndZeroSpan(t *testing.T) {
	calls := 0
	restore := SetClockForTesting(func() int64 { calls++; return 0 })
	defer restore()
	var tr *Tracer
	sp := tr.Start(SpanPhase, "train", 0, -1, -1)
	if sp.End() != 0 {
		t.Error("zero span End should return 0")
	}
	if tr.Len() != 0 || tr.Total() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracer should report empty state")
	}
	if calls != 0 {
		t.Fatalf("disabled span path read the clock %d times, want 0", calls)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start(SpanClientStep, "client", 1, i, c).End()
			}
		}(c)
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("Total = %d, want 800", tr.Total())
	}
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tr.Len())
	}
}

func TestSpanKindString(t *testing.T) {
	for kind, want := range map[SpanKind]string{
		SpanExperiment:  "experiment",
		SpanPhase:       "phase",
		SpanRound:       "round",
		SpanClientStep:  "client-step",
		SpanDistillStep: "distill-step",
		SpanKind(99):    "span",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", kind, got, want)
		}
	}
}
