package telemetry

import "time"

// nowNanos is the module's single wall-clock read. Every duration the
// system reports — phase costs, round histograms, span records —
// derives from this function, which keeps the determinism lint rule's
// exception surface to exactly this line.
func nowNanos() int64 {
	return time.Now().UnixNano() //lint:allow determinism telemetry is the module's sole wall-clock authority; readings feed reports, never numerics
}

// clock is swappable so tests can drive time by hand. It is read
// concurrently by record paths; swap it only before concurrent use.
var clock = nowNanos

// SetClockForTesting replaces the clock and returns a restore
// function. Test-only; never call while spans or timers are live.
func SetClockForTesting(fn func() int64) (restore func()) {
	prev := clock
	clock = fn
	return func() { clock = prev }
}

// Now returns the telemetry clock reading in nanoseconds.
func Now() int64 { return clock() }

// Stopwatch marks a clock reading; Elapsed measures from it. It is the
// replacement for the ad-hoc `start := time.Now()` accounting sites:
// cost measurement works identically whether or not a metrics registry
// or tracer is attached.
type Stopwatch int64

// StartTimer reads the clock and returns a running stopwatch.
func StartTimer() Stopwatch { return Stopwatch(clock()) }

// Elapsed returns the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Duration(clock() - int64(s)) }
