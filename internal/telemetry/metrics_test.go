package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(5)
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(0.25)
	if got := g.Value(); got != 1.75 {
		t.Fatalf("Value = %v, want 1.75", got)
	}
	var nilG *Gauge
	nilG.Set(3)
	nilG.Add(1)
	if got := nilG.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %v, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// Cumulative: ≤1: {0.5, 1} = 2; ≤2: +1.5 = 3; ≤4: +3 = 4; +Inf: +100 = 5.
	wantRaw := []int64{2, 1, 1, 1}
	for i, want := range wantRaw {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("Sum = %v, want 106", h.Sum())
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram should report zeros")
	}
}

func TestHistogramSortsBuckets(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2})
	h.Observe(1.5)
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("1.5 should land in the (1,2] bucket, counts[1] = %d", got)
	}
}

func TestVecAtBounds(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("c_total", "h", "i", IndexValues(3))
	hv := reg.HistogramVec("h_seconds", "h", "i", IndexValues(2), nil)
	cv.At(2).Inc()
	if cv.At(2).Value() != 1 {
		t.Error("in-range series should record")
	}
	// Out-of-range and nil-vec lookups return safe no-op handles.
	cv.At(-1).Inc()
	cv.At(3).Inc()
	hv.At(9).Observe(1)
	var nilCV *CounterVec
	var nilHV *HistogramVec
	nilCV.At(0).Inc()
	nilHV.At(0).Observe(1)
}

func TestRegistryNilAndDuplicates(t *testing.T) {
	var nilReg *Registry
	if nilReg.Counter("x", "") != nil || nilReg.Gauge("x", "") != nil ||
		nilReg.Histogram("x", "", nil) != nil ||
		nilReg.CounterVec("x", "", "l", nil) != nil ||
		nilReg.HistogramVec("x", "", "l", nil, nil) != nil {
		t.Fatal("nil registry must hand out nil no-op instruments")
	}
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	reg.Gauge("dup_total", "")
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("quickdrop_test_total", "A counter.")
	g := reg.Gauge("quickdrop_test_gauge", "A gauge.")
	h := reg.Histogram("quickdrop_test_seconds", "A histogram.", []float64{1, 2})
	cv := reg.CounterVec("quickdrop_test_by_client_total", "Labeled.", "client", IndexValues(2))
	c.Add(3)
	g.Set(2.5)
	h.Observe(0.5)
	h.Observe(3)
	cv.At(1).Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP quickdrop_test_total A counter.",
		"# TYPE quickdrop_test_total counter",
		"quickdrop_test_total 3",
		"quickdrop_test_gauge 2.5",
		"# TYPE quickdrop_test_seconds histogram",
		`quickdrop_test_seconds_bucket{le="1"} 1`,
		`quickdrop_test_seconds_bucket{le="2"} 1`,
		`quickdrop_test_seconds_bucket{le="+Inf"} 2`,
		"quickdrop_test_seconds_sum 3.5",
		"quickdrop_test_seconds_count 2",
		`quickdrop_test_by_client_total{client="0"} 0`,
		`quickdrop_test_by_client_total{client="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families must appear in name order for deterministic scrapes.
	if i, j := strings.Index(out, "quickdrop_test_by_client_total"), strings.Index(out, "quickdrop_test_gauge"); i > j {
		t.Error("families not sorted by name")
	}
}
