package telemetry

import (
	"math"
	"sync"
)

// psquare is the P² streaming quantile estimator of Jain & Chlamtac
// (CACM '85): five markers track the running p-quantile of a stream
// without storing samples. Add is O(1) with zero allocations — the
// whole state lives in fixed arrays — which is what lets every
// Histogram carry p50/p95/p99 estimates on its record path.
type psquare struct {
	p float64
	n int64 // observations seen
	// First five observations buffer until the markers initialize.
	init [5]float64
	// Marker heights, positions (1-based) and desired positions.
	h   [5]float64
	pos [5]float64
	des [5]float64
	inc [5]float64
}

// newPSquare returns an estimator for the p-quantile (0 < p < 1).
func newPSquare(p float64) psquare {
	return psquare{p: p, inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1}}
}

// add folds one observation into the estimate.
func (q *psquare) add(v float64) {
	if q.n < 5 {
		// Insertion sort into the warm-up buffer.
		i := q.n
		for i > 0 && q.init[i-1] > v {
			q.init[i] = q.init[i-1]
			i--
		}
		q.init[i] = v
		q.n++
		if q.n == 5 {
			q.h = q.init
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.des = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}
	q.n++

	// Locate the cell containing v, clamping the extremes.
	var k int
	switch {
	case v < q.h[0]:
		q.h[0] = v
		k = 0
	case v >= q.h[4]:
		q.h[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < q.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.des {
		q.des[i] += q.inc[i]
	}

	// Adjust the three interior markers toward their desired positions
	// with the piecewise-parabolic (P²) prediction, falling back to
	// linear when the parabola would cross a neighbour.
	for i := 1; i <= 3; i++ {
		d := q.des[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			hp := q.parabolic(i, s)
			if q.h[i-1] < hp && hp < q.h[i+1] {
				q.h[i] = hp
			} else {
				q.h[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

func (q *psquare) parabolic(i int, s float64) float64 {
	return q.h[i] + s/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+s)*(q.h[i+1]-q.h[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-s)*(q.h[i]-q.h[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *psquare) linear(i int, s float64) float64 {
	j := i + int(s)
	return q.h[i] + s*(q.h[j]-q.h[i])/(q.pos[j]-q.pos[i])
}

// value returns the current estimate. Below the five-sample P²
// threshold the markers are not initialized, so the estimate is the
// EXACT nearest-rank order statistic of the sorted warm-up buffer
// (ceil(p·n) in 1-based rank terms) — never an extrapolation; with no
// samples it is NaN.
func (q *psquare) value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if q.n < 5 {
		idx := int(math.Ceil(q.p*float64(q.n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= int(q.n) {
			idx = int(q.n) - 1
		}
		return q.init[idx]
	}
	return q.h[2]
}

// Quantiles is a bundled p50/p95/p99 estimator over one stream. All
// methods are safe for concurrent use and no-ops (NaN reads) on a nil
// receiver; Observe is allocation-free.
type Quantiles struct {
	mu  sync.Mutex
	q50 psquare
	q95 psquare
	q99 psquare
}

// NewQuantiles returns an empty p50/p95/p99 estimator set.
func NewQuantiles() *Quantiles {
	return &Quantiles{q50: newPSquare(0.50), q95: newPSquare(0.95), q99: newPSquare(0.99)}
}

// Observe folds one sample into all three estimates.
func (q *Quantiles) Observe(v float64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.q50.add(v)
	q.q95.add(v)
	q.q99.add(v)
	q.mu.Unlock()
}

// Values returns the current (p50, p95, p99) estimates; all NaN before
// the first observation.
func (q *Quantiles) Values() (p50, p95, p99 float64) {
	if q == nil {
		return math.NaN(), math.NaN(), math.NaN()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.q50.value(), q.q95.value(), q.q99.value()
}

// Count returns how many samples have been observed.
func (q *Quantiles) Count() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.q50.n
}
