package baselines

import (
	"strings"
	"testing"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
)

// TestFedEraserSnapshotBudgetRefusesUpFront: at registry scale the
// pre-flight estimate must fail Prepare with an actionable error before
// any training (or history allocation) happens.
func TestFedEraserSnapshotBudgetRefusesUpFront(t *testing.T) {
	big, err := data.NewLazyCohort(data.PartitionSpec{
		Data: data.MNISTLike(8, 4), Clients: 1_000_000, SamplesPerClient: 8,
		Seed: 3, Scheme: data.SchemeIID,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFedEraser(testConfig(), big)
	if err != nil {
		t.Fatal(err)
	}
	err = f.Prepare()
	if err == nil {
		t.Fatal("Prepare must refuse a million-client history under the default budget")
	}
	for _, want := range []string{"SnapshotBudget", "1000000"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("budget error %q should mention %q", err, want)
		}
	}
	if f.StoredFloats != 0 || len(f.history) != 0 {
		t.Fatal("refused Prepare must not have recorded history")
	}
}

// TestFedEraserSnapshotBudgetConfigurable: a budget covering the
// estimate admits Prepare; one float short of the need refuses it.
func TestFedEraserSnapshotBudgetConfigurable(t *testing.T) {
	clients, _ := testClients(t, 3, 6, 13)
	cfg := testConfig()
	cfg.Train.Rounds = 2

	f, _ := NewFedEraser(cfg, clients)
	need := f.estimateStoredFloats()
	f.SnapshotBudget = need - 1
	if err := f.Prepare(); err == nil {
		t.Fatal("budget below the estimate must refuse Prepare")
	}

	g, _ := NewFedEraser(cfg, clients)
	g.SnapshotBudget = need
	if err := g.Prepare(); err != nil {
		t.Fatal(err)
	}
	if g.StoredFloats != need {
		t.Fatalf("StoredFloats = %d, want the estimate %d (full participation is exact)", g.StoredFloats, need)
	}
}

// TestFedEraserOverBudgetMidTrainingFailsUnlearn: if the runtime guard
// trips (estimate undershot), Unlearn must refuse rather than replay an
// incomplete history.
func TestFedEraserOverBudgetMidTrainingFailsUnlearn(t *testing.T) {
	clients, _ := testClients(t, 2, 6, 14)
	cfg := testConfig()
	cfg.Train.Rounds = 2
	f, _ := NewFedEraser(cfg, clients)
	// Bypass the pre-flight check to exercise the runtime guard: a
	// budget that admits the first round's updates but not the second's.
	f.SnapshotBudget = f.estimateStoredFloats()
	if err := f.Prepare(); err != nil {
		t.Fatal(err)
	}
	f.overBudget = true // simulate the guard having tripped mid-training
	_, err := f.Unlearn(core.Request{Kind: core.ClassLevel, Class: 1})
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("over-budget unlearn error = %v, want incomplete-history refusal", err)
	}
}
