package baselines

import (
	"math/rand"
	"testing"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
)

func testArch() nn.ConvNetConfig {
	return nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 8, Depth: 2}
}

func testClients(t *testing.T, n, perClass int, seed int64) (*data.Cohort, *data.Dataset) {
	t.Helper()
	spec := data.MNISTLike(8, perClass)
	train, test := data.Generate(spec, seed)
	parts := data.PartitionIID(train, n, rand.New(rand.NewSource(seed+50)))
	return data.NewCohort(parts), test
}

func testConfig() Config {
	cfg := DefaultConfig(testArch())
	cfg.Train.Rounds = 12
	cfg.RetrainRounds = 12
	return cfg
}

func TestCapabilitiesMatchTable1(t *testing.T) {
	clients, _ := testClients(t, 2, 4, 1)
	cfg := testConfig()
	mkAll := func() []Method {
		r, _ := NewRetrainOr(cfg, clients)
		s, _ := NewSGAOr(cfg, clients)
		f, _ := NewFedEraser(cfg, clients)
		m, _ := NewFUMP(cfg, clients)
		u, _ := NewS2U(cfg, clients)
		return []Method{r, s, f, m, u}
	}
	want := map[string]Capabilities{
		"Retrain-Or": {ClassLevel: true, ClientLevel: true, Relearn: true, StorageEfficient: true},
		"SGA-Or":     {ClassLevel: true, ClientLevel: true, Relearn: true, StorageEfficient: true},
		"FedEraser":  {ClassLevel: true, ClientLevel: true, Relearn: true, StorageEfficient: false},
		"FU-MP":      {ClassLevel: true, ClientLevel: false, Relearn: false, StorageEfficient: true},
		"S2U":        {ClassLevel: false, ClientLevel: true, Relearn: true, StorageEfficient: true},
	}
	for _, m := range mkAll() {
		got := m.Capabilities()
		w := want[m.Name()]
		if got.ClassLevel != w.ClassLevel || got.ClientLevel != w.ClientLevel ||
			got.Relearn != w.Relearn || got.StorageEfficient != w.StorageEfficient {
			t.Fatalf("%s capabilities %+v do not match Table 1 (%+v)", m.Name(), got, w)
		}
		if got.ComputeEfficiency == "" {
			t.Fatalf("%s missing compute efficiency rating", m.Name())
		}
	}
}

func TestUnlearnBeforePrepareFails(t *testing.T) {
	clients, _ := testClients(t, 2, 4, 2)
	m, err := NewSGAOr(testConfig(), clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Unlearn(core.Request{Kind: core.ClassLevel, Class: 1}); err == nil {
		t.Fatal("expected error before Prepare")
	}
}

func TestUnsupportedKindsRejected(t *testing.T) {
	clients, _ := testClients(t, 2, 4, 3)
	cfg := testConfig()
	cfg.Train.Rounds = 1
	fump, _ := NewFUMP(cfg, clients)
	s2u, _ := NewS2U(cfg, clients)
	for _, m := range []Method{fump, s2u} {
		if err := m.Prepare(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fump.Unlearn(core.Request{Kind: core.ClientLevel, Client: 0}); err == nil {
		t.Fatal("FU-MP must reject client-level requests")
	}
	if _, err := fump.Relearn(core.Request{Kind: core.ClassLevel, Class: 1}); err == nil {
		t.Fatal("FU-MP must reject relearning")
	}
	if _, err := s2u.Unlearn(core.Request{Kind: core.ClassLevel, Class: 0}); err == nil {
		t.Fatal("S2U must reject class-level requests")
	}
}

// Class-level unlearning across the class-capable baselines: F-Set must
// collapse, R-Set must survive (Table 2 behaviour).
func TestClassUnlearningAcrossMethods(t *testing.T) {
	clients, test := testClients(t, 4, 12, 4)
	cfg := testConfig()
	target := 6

	methods := map[string]Method{}
	r, _ := NewRetrainOr(cfg, clients)
	s, _ := NewSGAOr(cfg, clients)
	f, _ := NewFedEraser(cfg, clients)
	mp, _ := NewFUMP(cfg, clients)
	methods["Retrain-Or"] = r
	methods["SGA-Or"] = s
	methods["FedEraser"] = f
	methods["FU-MP"] = mp

	for name, m := range methods {
		t.Run(name, func(t *testing.T) {
			if err := m.Prepare(); err != nil {
				t.Fatal(err)
			}
			_, rBefore := eval.ClassSplit(m.Model(), test, target)
			if rBefore < 0.5 {
				t.Fatalf("%s undertrained: R=%.2f", name, rBefore)
			}
			res, err := m.Unlearn(core.Request{Kind: core.ClassLevel, Class: target})
			if err != nil {
				t.Fatal(err)
			}
			fAfter, rAfter := eval.ClassSplit(m.Model(), test, target)
			if fAfter > 0.35 {
				t.Fatalf("%s F-Set %.2f after unlearning", name, fAfter)
			}
			if rAfter < 0.4 {
				t.Fatalf("%s R-Set %.2f after recovery", name, rAfter)
			}
			if res.Total.WallTime <= 0 {
				t.Fatalf("%s missing cost accounting", name)
			}
		})
	}
}

func TestSGAOrUnlearnUsesOriginalDataVolume(t *testing.T) {
	clients, _ := testClients(t, 4, 12, 5)
	cfg := testConfig()
	m, _ := NewSGAOr(cfg, clients)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	res, err := m.Unlearn(core.Request{Kind: core.ClassLevel, Class: 2})
	if err != nil {
		t.Fatal(err)
	}
	// F-Set is all original samples of class 2 (12), R-Set all others (108).
	if res.Unlearn.DataSize != 12 || res.Recover.DataSize != 108 {
		t.Fatalf("data sizes = %d/%d, want 12/108", res.Unlearn.DataSize, res.Recover.DataSize)
	}
}

func TestFedEraserStorageGrowsWithRounds(t *testing.T) {
	clients, _ := testClients(t, 3, 6, 6)
	short := testConfig()
	short.Train.Rounds = 2
	long := testConfig()
	long.Train.Rounds = 4

	fShort, _ := NewFedEraser(short, clients)
	fLong, _ := NewFedEraser(long, clients)
	if err := fShort.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := fLong.Prepare(); err != nil {
		t.Fatal(err)
	}
	if fLong.StoredFloats != 2*fShort.StoredFloats {
		t.Fatalf("storage must scale linearly with rounds: %d vs %d", fShort.StoredFloats, fLong.StoredFloats)
	}
	// Storage = rounds × clients × model params.
	model := fShort.Model()
	want := 2 * 3 * model.NumParams()
	if fShort.StoredFloats != want {
		t.Fatalf("StoredFloats = %d, want %d", fShort.StoredFloats, want)
	}
	if fShort.StorageBytes() != 8*want {
		t.Fatalf("StorageBytes = %d", fShort.StorageBytes())
	}
}

func TestFedEraserIntervalReducesStorage(t *testing.T) {
	clients, _ := testClients(t, 2, 6, 7)
	cfg := testConfig()
	cfg.Train.Rounds = 4
	f, _ := NewFedEraser(cfg, clients)
	f.Interval = 2
	if err := f.Prepare(); err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * f.Model().NumParams() // rounds 0 and 2 recorded
	if f.StoredFloats != want {
		t.Fatalf("StoredFloats = %d, want %d", f.StoredFloats, want)
	}
}

func TestS2UClientUnlearning(t *testing.T) {
	clients, test := testClients(t, 4, 12, 8)
	cfg := testConfig()
	m, _ := NewS2U(cfg, clients)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	accBefore := eval.Accuracy(m.Model(), test)
	res, err := m.Unlearn(core.Request{Kind: core.ClientLevel, Client: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Integrated unlearning must not destroy the model (IID data: the
	// remaining clients cover the knowledge).
	accAfter := eval.Accuracy(m.Model(), test)
	if accAfter < accBefore-0.3 {
		t.Fatalf("S2U wrecked the model: %.2f → %.2f", accBefore, accAfter)
	}
	if res.Unlearn.Rounds != m.Rounds {
		t.Fatalf("rounds = %d, want %d", res.Unlearn.Rounds, m.Rounds)
	}
	if _, err := m.Unlearn(core.Request{Kind: core.ClientLevel, Client: 1}); err == nil {
		t.Fatal("double unlearn must fail")
	}
}

func TestRelearnRestoresClass(t *testing.T) {
	clients, test := testClients(t, 4, 12, 9)
	cfg := testConfig()
	m, _ := NewSGAOr(cfg, clients)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	target := 4
	if _, err := m.Unlearn(core.Request{Kind: core.ClassLevel, Class: target}); err != nil {
		t.Fatal(err)
	}
	fMid, _ := eval.ClassSplit(m.Model(), test, target)
	if _, err := m.Relearn(core.Request{Kind: core.ClassLevel, Class: target}); err != nil {
		t.Fatal(err)
	}
	fAfter, _ := eval.ClassSplit(m.Model(), test, target)
	if fAfter <= fMid || fAfter < 0.4 {
		t.Fatalf("relearning failed: %.2f → %.2f", fMid, fAfter)
	}
	// Relearning something never unlearned must fail.
	if _, err := m.Relearn(core.Request{Kind: core.ClassLevel, Class: 9}); err == nil {
		t.Fatal("expected error")
	}
}

func TestFUMPPrunesChannels(t *testing.T) {
	clients, _ := testClients(t, 2, 8, 10)
	cfg := testConfig()
	cfg.Train.Rounds = 4
	m, _ := NewFUMP(cfg, clients)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Unlearn(core.Request{Kind: core.ClassLevel, Class: 0}); err != nil {
		t.Fatal(err)
	}
	// At least one filter column of the last conv must be zeroed... before
	// recovery retrains them; instead check the pruning helper directly.
	m2, _ := NewFUMP(cfg, clients)
	if err := m2.Prepare(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.pruneClassChannels(0); err != nil {
		t.Fatal(err)
	}
	_, _, conv := m2.lastConvBlock()
	w := conv.Params()[0].Data
	zeroCols := 0
	for fcol := 0; fcol < conv.Filters; fcol++ {
		allZero := true
		for r := 0; r < w.Dim(0); r++ {
			if w.At(r, fcol) != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			zeroCols++
		}
	}
	wantPruned := int(m2.PruneFraction * float64(conv.Filters))
	if zeroCols < wantPruned {
		t.Fatalf("pruned %d columns, want ≥ %d", zeroCols, wantPruned)
	}
}

func TestTFIDFScoresFavorDiscriminativeChannel(t *testing.T) {
	// Channel 0 fires only for class 0; channel 1 fires everywhere.
	mean := [][]float64{
		{10, 5},
		{0, 5},
		{0, 5},
	}
	scores := tfidfScores(mean, 0)
	if scores[0] <= scores[1] {
		t.Fatalf("discriminative channel must score higher: %v", scores)
	}
}

func TestArgsortDesc(t *testing.T) {
	got := argsortDesc([]float64{1, 3, 2})
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("argsortDesc = %v", got)
	}
}

func TestSampleLevelOnOriginalDataMethods(t *testing.T) {
	clients, test := testClients(t, 3, 12, 11)
	cfg := testConfig()
	req := core.Request{Kind: core.SampleLevel, Client: 0, Samples: []int{0, 1, 2}}

	for _, name := range []string{"SGA-Or", "Retrain-Or", "FedEraser"} {
		t.Run(name, func(t *testing.T) {
			var m Method
			var err error
			switch name {
			case "SGA-Or":
				m, err = NewSGAOr(cfg, clients)
			case "Retrain-Or":
				m, err = NewRetrainOr(cfg, clients)
			case "FedEraser":
				m, err = NewFedEraser(cfg, clients)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !m.Capabilities().SampleLevel {
				t.Fatalf("%s must support sample-level", name)
			}
			if err := m.Prepare(); err != nil {
				t.Fatal(err)
			}
			res, err := m.Unlearn(req)
			if err != nil {
				t.Fatal(err)
			}
			if res.Total.WallTime <= 0 {
				t.Fatal("missing cost")
			}
			// Model quality survives removing 3 samples.
			if acc := eval.Accuracy(m.Model(), test); acc < 0.35 {
				t.Fatalf("accuracy %.2f after sample unlearning", acc)
			}
			// Double unlearn of the same samples fails.
			if _, err := m.Unlearn(req); err == nil {
				t.Fatal("double sample unlearn must fail")
			}
			// Relearn restores.
			if _, err := m.Relearn(req); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSampleLevelUnsupportedMethods(t *testing.T) {
	clients, _ := testClients(t, 2, 6, 12)
	cfg := testConfig()
	cfg.Train.Rounds = 1
	req := core.Request{Kind: core.SampleLevel, Client: 0, Samples: []int{0}}
	fump, _ := NewFUMP(cfg, clients)
	s2u, _ := NewS2U(cfg, clients)
	for _, m := range []Method{fump, s2u} {
		if err := m.Prepare(); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Unlearn(req); err == nil {
			t.Fatalf("%s must reject sample-level requests", m.Name())
		}
	}
}
