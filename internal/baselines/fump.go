package baselines

import (
	"fmt"
	"math"
	"sort"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
)

// FUMP implements FU-MP (Wang et al. 2022): federated unlearning via
// class-discriminative channel pruning. Clients score how strongly each
// channel of the last convolution responds to each class (a TF-IDF over
// mean channel activations); the server prunes the channels most
// discriminative for the target class, then runs recovery rounds on the
// retain data. Pruning irreversibly modifies the model, so FU-MP supports
// neither client-level unlearning nor relearning (paper Table 1).
type FUMP struct {
	*base
	// PruneFraction is the share of channels pruned for the target class.
	PruneFraction float64
	// ProbeBatch bounds how many per-class samples score the channels.
	ProbeBatch int
}

// NewFUMP constructs the baseline.
func NewFUMP(cfg Config, clients fl.ClientRegistry) (*FUMP, error) {
	b, err := newBase(cfg, clients)
	if err != nil {
		return nil, err
	}
	return &FUMP{base: b, PruneFraction: 0.3, ProbeBatch: 32}, nil
}

// Name implements Method.
func (f *FUMP) Name() string { return "FU-MP" }

// Capabilities implements Method.
func (f *FUMP) Capabilities() Capabilities {
	return Capabilities{
		Name: f.Name(), ClassLevel: true, ClientLevel: false, Relearn: false,
		StorageEfficient: true, ComputeEfficiency: "medium",
	}
}

// Prepare implements Method.
func (f *FUMP) Prepare() error { return f.trainInitial(nil) }

// Unlearn implements Method: score channels, prune, recover.
func (f *FUMP) Unlearn(req core.Request) (Result, error) {
	if err := f.checkUnlearn(req, f.Capabilities()); err != nil {
		return Result{}, err
	}
	if _, err := f.forgetShards(req); err != nil {
		return Result{}, err
	}

	var res Result
	// Pruning is FU-MP's whole unlearning stage: time it as its own
	// telemetry phase rather than as FedAvg rounds.
	pt := f.cfg.Telemetry.StartPhase("prune")
	probed, err := f.pruneClassChannels(req.Class)
	if err != nil {
		return res, err
	}
	res.Unlearn = eval.Cost{Rounds: 1, WallTime: pt.Stop(), DataSize: probed}
	f.observe("unlearn")
	f.forget.Mark(req, true)

	res.Recover, err = f.runPhase(f.retainShards(), f.cfg.RecoverPhase, optim.Descend, "recover")
	if err != nil {
		return res, err
	}
	res.finish()
	f.observe("recover")
	return res, nil
}

// Relearn implements Method: always fails — pruning removed the channels.
func (f *FUMP) Relearn(core.Request) (Result, error) {
	return Result{}, fmt.Errorf("baselines: FU-MP cannot relearn — channel pruning is irreversible")
}

// pruneClassChannels measures class-discrimination of the last conv
// block's channels via inference on client data (the paper notes FU-MP's
// unlearning only needs inference, making it fast) and zeroes the most
// target-class-discriminative filters. Returns the number of samples used
// for probing.
func (f *FUMP) pruneClassChannels(target int) (int, error) {
	convIdx, norm, conv := f.lastConvBlock()
	if conv == nil {
		return 0, fmt.Errorf("baselines: model has no convolution layer to prune")
	}
	// The activation tensor right after the last conv's ReLU is at layer
	// index convIdx+3 when a norm layer follows (conv, norm, relu), else
	// convIdx+2.
	actLayer := convIdx + 2
	if norm != nil {
		actLayer = convIdx + 3
	}

	classes := f.model.Classes
	filters := conv.Filters
	mean := make([][]float64, classes) // mean activation per (class, filter)
	probed := 0
	for c := 0; c < classes; c++ {
		mean[c] = make([]float64, filters)
		// Pool per-class samples across clients.
		var parts []*data.Dataset
		for i := 0; i < f.numClients(); i++ {
			if cl := f.shard(i); cl != nil {
				parts = append(parts, cl.OfClass(c))
			}
		}
		pool := data.Merge(parts...)
		if pool.Len() == 0 {
			continue
		}
		x, _ := pool.SampleBatch(f.rng, f.ProbeBatch)
		probed += x.Dim(0)
		act := f.model.ForwardLayers(x, actLayer) // [B, H, W, F]
		per := act.Dim(1) * act.Dim(2)
		d := act.Data()
		for i := 0; i < len(d); i++ {
			mean[c][i%filters] += d[i]
		}
		for fi := 0; fi < filters; fi++ {
			mean[c][fi] /= float64(act.Dim(0) * per)
		}
	}

	scores := tfidfScores(mean, target)
	prune := int(f.PruneFraction * float64(filters))
	if prune < 1 {
		prune = 1
	}
	order := argsortDesc(scores)
	w, b := conv.Params()[0].Data, conv.Params()[1].Data
	for _, fi := range order[:prune] {
		for r := 0; r < w.Dim(0); r++ {
			w.Set(0, r, fi)
		}
		b.Data()[fi] = 0
		if norm != nil {
			norm.Params()[0].Data.Data()[fi] = 0 // gamma
			norm.Params()[1].Data.Data()[fi] = 0 // beta
		}
	}

	// The target class's output channel is its most discriminative channel
	// by construction; sever it too. At this reproduction's network widths
	// conv channels are shared across classes, so pruning them alone
	// cannot erase a class the way it does at the paper's 128-filter width
	// (see DESIGN.md). Like the conv pruning, this is irreversible.
	f.pruneClassifierUnit(target)
	return probed, nil
}

// pruneClassifierUnit zeroes the classifier weights and bias feeding the
// target class logit and pins the bias far negative so the pruned class
// can never win the argmax again.
func (f *FUMP) pruneClassifierUnit(target int) {
	layers := f.model.Layers()
	for i := len(layers) - 1; i >= 0; i-- {
		d, ok := layers[i].(*nn.Dense)
		if !ok {
			continue
		}
		w, b := d.Params()[0].Data, d.Params()[1].Data
		for r := 0; r < w.Dim(0); r++ {
			w.Set(0, r, target)
		}
		b.Data()[target] = -1e3
		return
	}
}

// lastConvBlock locates the final Conv2D layer and its following
// InstanceNorm (if any).
func (f *FUMP) lastConvBlock() (idx int, norm *nn.InstanceNorm, conv *nn.Conv2D) {
	layers := f.model.Layers()
	for i, l := range layers {
		if c, ok := l.(*nn.Conv2D); ok {
			idx, conv = i, c
		}
	}
	if conv != nil && idx+1 < len(layers) {
		if n, ok := layers[idx+1].(*nn.InstanceNorm); ok {
			norm = n
		}
	}
	return idx, norm, conv
}

// tfidfScores computes the class-discrimination score of each channel for
// the target class: term frequency of the channel within the class,
// weighted by inverse "document frequency" across classes (Wang et al.).
func tfidfScores(mean [][]float64, target int) []float64 {
	classes := len(mean)
	filters := len(mean[target])
	scores := make([]float64, filters)
	// Per-class activation mass for TF normalization.
	tf := func(c, fi int) float64 {
		total := 0.0
		for _, v := range mean[c] {
			total += math.Abs(v)
		}
		if total == 0 {
			return 0
		}
		return math.Abs(mean[c][fi]) / total
	}
	for fi := 0; fi < filters; fi++ {
		// Document frequency: classes where the channel's TF exceeds the
		// mean TF (1/filters).
		df := 0
		for c := 0; c < classes; c++ {
			if tf(c, fi) > 1/float64(filters) {
				df++
			}
		}
		idf := math.Log(float64(classes) / (1 + float64(df)))
		scores[fi] = tf(target, fi) * (idf + 1) // +1 keeps scores positive
	}
	return scores
}

func argsortDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx
}
