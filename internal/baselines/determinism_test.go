package baselines

import (
	"testing"

	"quickdrop/internal/core"
	"quickdrop/internal/fl"
	"quickdrop/internal/telemetry"
)

// newMethod constructs one baseline by name from fresh config and data.
func newMethod(t *testing.T, name string, cfg Config, clients fl.ClientRegistry) Method {
	t.Helper()
	var m Method
	var err error
	switch name {
	case "Retrain-Or":
		m, err = NewRetrainOr(cfg, clients)
	case "SGA-Or":
		m, err = NewSGAOr(cfg, clients)
	case "FedEraser":
		m, err = NewFedEraser(cfg, clients)
	case "FU-MP":
		m, err = NewFUMP(cfg, clients)
	case "S2U":
		m, err = NewS2U(cfg, clients)
	default:
		t.Fatalf("unknown method %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runToParams executes Prepare + Unlearn from scratch and returns the
// final global parameters' raw element slices.
func runToParams(t *testing.T, name string, req core.Request, tel *telemetry.Pipeline) [][]float64 {
	t.Helper()
	clients, _ := testClients(t, 2, 4, 7)
	cfg := testConfig()
	cfg.Train.Rounds = 4
	cfg.RetrainRounds = 4
	cfg.Telemetry = tel
	m := newMethod(t, name, cfg, clients)
	if err := m.Prepare(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Unlearn(req); err != nil {
		t.Fatal(err)
	}
	params := m.Model().CloneParams()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = p.Data()
	}
	return out
}

// TestBaselinesBitwiseDeterministic runs every baseline twice from
// identical seeds and data and requires the final global parameters to
// be bitwise identical. This is the auditability property the
// determinism lint rule protects: an unlearning run that cannot be
// replayed exactly cannot be verified against a certified transcript.
// The second run carries a live telemetry pipeline: observing a run
// must never change it.
func TestBaselinesBitwiseDeterministic(t *testing.T) {
	cases := []struct {
		name string
		req  core.Request
	}{
		{"Retrain-Or", core.Request{Kind: core.ClassLevel, Class: 1}},
		{"SGA-Or", core.Request{Kind: core.ClassLevel, Class: 1}},
		// Client-level requests exercise FedEraser's calibrated replay,
		// whose aggregation order was the map-iteration bug the
		// determinism analyzer caught.
		{"FedEraser", core.Request{Kind: core.ClientLevel, Client: 1}},
		{"FU-MP", core.Request{Kind: core.ClassLevel, Class: 1}},
		{"S2U", core.Request{Kind: core.ClientLevel, Client: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			first := runToParams(t, c.name, c.req, nil)
			second := runToParams(t, c.name, c.req,
				telemetry.NewPipeline(telemetry.NewRegistry(), telemetry.NewTracer(0), 2))
			if len(first) != len(second) {
				t.Fatalf("param count differs: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if len(first[i]) != len(second[i]) {
					t.Fatalf("param %d length differs: %d vs %d", i, len(first[i]), len(second[i]))
				}
				for j := range first[i] {
					if first[i][j] != second[i][j] {
						t.Fatalf("%s is not bitwise deterministic: param %d elem %d is %v vs %v",
							c.name, i, j, first[i][j], second[i][j])
					}
				}
			}
		})
	}
}
