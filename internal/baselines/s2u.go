package baselines

import (
	"fmt"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/optim"
)

// S2U (Gao et al., VeriFi) unlearns a client by re-weighting FedAvg
// aggregation for a few rounds: the forgetting client's updates are scaled
// *down* while the remaining clients' updates are scaled *up*. Unlearning
// and recovery are integrated into the same rounds, and only client-level
// unlearning is supported (paper §2.3, Table 1).
type S2U struct {
	*base
	// DownScale multiplies the target client's aggregation weight.
	DownScale float64
	// UpScale multiplies the remaining clients' aggregation weights.
	UpScale float64
	// Rounds is how many integrated unlearn/recover rounds to run.
	Rounds int
}

// NewS2U constructs the baseline.
func NewS2U(cfg Config, clients fl.ClientRegistry) (*S2U, error) {
	b, err := newBase(cfg, clients)
	if err != nil {
		return nil, err
	}
	return &S2U{base: b, DownScale: 0.02, UpScale: 1.5, Rounds: 3}, nil
}

// Name implements Method.
func (s *S2U) Name() string { return "S2U" }

// Capabilities implements Method.
func (s *S2U) Capabilities() Capabilities {
	return Capabilities{
		Name: s.Name(), ClassLevel: false, ClientLevel: true, Relearn: true,
		StorageEfficient: true, ComputeEfficiency: "low",
	}
}

// Prepare implements Method.
func (s *S2U) Prepare() error { return s.trainInitial(nil) }

// Unlearn implements Method: integrated scaled rounds on the original data.
func (s *S2U) Unlearn(req core.Request) (Result, error) {
	if err := s.checkUnlearn(req, s.Capabilities()); err != nil {
		return Result{}, err
	}
	if s.DownScale < 0 || s.UpScale <= 0 || s.Rounds < 1 {
		return Result{}, fmt.Errorf("baselines: invalid S2U settings %+v", s)
	}
	target := req.Client
	if target < 0 || target >= s.numClients() || s.clients.ShardLen(target) == 0 {
		return Result{}, fmt.Errorf("baselines: client %d has no data", target)
	}

	// All clients (including the target) participate; aggregation weights
	// do the forgetting.
	shards := make([]*data.Dataset, s.numClients())
	samples := 0
	for i := range shards {
		c := s.shard(i)
		if c == nil || s.forget.ClientRemoved(i) {
			continue
		}
		shards[i] = s.activeSubset(i, c)
		samples += shards[i].Len()
	}

	cfg := phaseConfig(s.cfg.Train, optim.Descend, &s.counter, s.cfg.Telemetry, "scale")
	cfg.Rounds = s.Rounds
	cfg.WeightFn = func(clientID, size int) float64 {
		if clientID == target {
			return s.DownScale * float64(size)
		}
		return s.UpScale * float64(size)
	}
	res, err := fl.RunPhase(s.model, shards, cfg, s.rng)
	if err != nil {
		return Result{}, err
	}
	s.forget.Mark(req, true)
	var out Result
	out.Unlearn = eval.Cost{Rounds: res.Rounds, WallTime: res.WallTime, DataSize: samples}
	out.finish()
	s.observe("unlearn")
	s.observe("recover")
	return out, nil
}

// Relearn implements Method.
func (s *S2U) Relearn(req core.Request) (Result, error) { return s.relearnOriginal(req) }
