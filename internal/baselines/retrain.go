package baselines

import (
	"quickdrop/internal/core"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/telemetry"
)

// RetrainOr is the retraining oracle: it serves an unlearning request by
// discarding the model and running FL training from scratch on D\D_f.
// It achieves ideal forgetting at maximal cost (paper §2.3).
type RetrainOr struct {
	*base
}

// NewRetrainOr constructs the oracle.
func NewRetrainOr(cfg Config, clients fl.ClientRegistry) (*RetrainOr, error) {
	b, err := newBase(cfg, clients)
	if err != nil {
		return nil, err
	}
	return &RetrainOr{base: b}, nil
}

// Name implements Method.
func (r *RetrainOr) Name() string { return "Retrain-Or" }

// Capabilities implements Method.
func (r *RetrainOr) Capabilities() Capabilities {
	return Capabilities{
		Name: r.Name(), ClassLevel: true, ClientLevel: true, SampleLevel: true, Relearn: true,
		StorageEfficient: true, ComputeEfficiency: "very low",
	}
}

// Prepare implements Method.
func (r *RetrainOr) Prepare() error { return r.trainInitial(nil) }

// Unlearn implements Method: re-initialize and retrain on the retain data.
// There is no separate recovery stage (the retraining is both).
func (r *RetrainOr) Unlearn(req core.Request) (Result, error) {
	if err := r.checkUnlearn(req, r.Capabilities()); err != nil {
		return Result{}, err
	}
	if _, err := r.forgetShards(req); err != nil {
		return Result{}, err // validates the request targets real data
	}
	r.forget.Mark(req, true)

	// The stopwatch also covers model re-initialization, which the
	// retraining phase timer inside runPhase does not see.
	sw := telemetry.StartTimer()
	r.model = nn.NewConvNet(r.cfg.Arch, r.rng) // fresh initialization
	retrain := r.cfg.Train
	retrain.Rounds = r.cfg.RetrainRounds
	var res Result
	var err error
	res.Unlearn, err = r.runPhase(r.retainShards(), retrain, optim.Descend, "retrain")
	if err != nil {
		r.forget.Mark(req, false)
		return res, err
	}
	res.Unlearn.WallTime = sw.Elapsed()
	res.finish()
	r.observe("unlearn")
	r.observe("recover")
	return res, nil
}

// Relearn implements Method.
func (r *RetrainOr) Relearn(req core.Request) (Result, error) { return r.relearnOriginal(req) }
