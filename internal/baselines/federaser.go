package baselines

import (
	"fmt"
	"sort"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/tensor"
)

// FedEraser (Liu et al. 2021) trades server storage for unlearning speed:
// during training it records every participating client's per-round
// parameter update; to unlearn, it replays training from the initial model
// with the stored update *norms* but fresh *directions* obtained from a
// few cheap calibration steps on the retain data. Storage grows linearly
// with clients × rounds — the drawback the paper highlights.
type FedEraser struct {
	*base
	// CalibrationSteps is how many local steps calibration uses — a small
	// fraction of the training T (FedEraser's speedup lever).
	CalibrationSteps int
	// Interval keeps every Interval-th round's updates (≥1).
	Interval int

	initParams []*tensor.Tensor
	// history[k] maps clientID → that client's recorded update Δ in round k.
	history []map[int][]*tensor.Tensor
	// StoredFloats counts the retained parameters (storage cost).
	StoredFloats int
}

// NewFedEraser constructs the baseline.
func NewFedEraser(cfg Config, clients []*data.Dataset) (*FedEraser, error) {
	b, err := newBase(cfg, clients)
	if err != nil {
		return nil, err
	}
	return &FedEraser{base: b, CalibrationSteps: 1, Interval: 1}, nil
}

// Name implements Method.
func (f *FedEraser) Name() string { return "FedEraser" }

// Capabilities implements Method.
func (f *FedEraser) Capabilities() Capabilities {
	return Capabilities{
		Name: f.Name(), ClassLevel: true, ClientLevel: true, SampleLevel: true, Relearn: true,
		StorageEfficient: false, ComputeEfficiency: "low",
	}
}

// Prepare implements Method: standard FL training with update recording.
func (f *FedEraser) Prepare() error {
	if f.Interval < 1 || f.CalibrationSteps < 1 {
		return fmt.Errorf("baselines: invalid FedEraser settings interval=%d calSteps=%d", f.Interval, f.CalibrationSteps)
	}
	f.initParams = f.model.CloneParams()
	return f.trainInitial(func(cfg *fl.PhaseConfig) {
		cfg.UpdateHook = func(round, clientID int, before, after []*tensor.Tensor) {
			if round%f.Interval != 0 {
				return
			}
			k := round / f.Interval
			for len(f.history) <= k {
				f.history = append(f.history, make(map[int][]*tensor.Tensor))
			}
			delta := make([]*tensor.Tensor, len(after))
			for i := range after {
				delta[i] = after[i].Sub(before[i])
				f.StoredFloats += delta[i].Len()
			}
			f.history[k][clientID] = delta
		}
	})
}

// Unlearn implements Method: calibrated replay of the recorded rounds on
// the retain data, followed by a short standard recovery phase.
func (f *FedEraser) Unlearn(req core.Request) (Result, error) {
	if err := f.checkUnlearn(req, f.Capabilities()); err != nil {
		return Result{}, err
	}
	if _, err := f.forgetShards(req); err != nil {
		return Result{}, err
	}
	f.forget.Mark(req, true)
	retain := f.retainShards()

	var res Result
	// Calibrated replay runs outside RunPhase, so it gets its own
	// telemetry phase.
	pt := f.cfg.Telemetry.StartPhase("calibrate")
	f.model.SetParams(f.initParams)
	replayed := 0
	samples := 0
	for _, roundUpdates := range f.history {
		if len(roundUpdates) == 0 {
			continue
		}
		if err := f.calibratedRound(roundUpdates, retain, &samples); err != nil {
			f.forget.Mark(req, false)
			return res, err
		}
		replayed++
	}
	res.Unlearn = eval.Cost{Rounds: replayed, WallTime: pt.Stop(), DataSize: samples}
	f.observe("unlearn")

	var err error
	res.Recover, err = f.runPhase(retain, f.cfg.RecoverPhase, optim.Descend, "recover")
	if err != nil {
		return res, err
	}
	res.finish()
	f.observe("recover")
	return res, nil
}

// calibratedRound applies one FedEraser update: every retained client with
// a recorded update runs CalibrationSteps cheap local steps; the new
// global step keeps the stored update's norm but the calibrated direction.
func (f *FedEraser) calibratedRound(recorded map[int][]*tensor.Tensor, retain []*data.Dataset, samples *int) error {
	global := f.model.CloneParams()
	agg := make([]*tensor.Tensor, len(global))
	for i, g := range global {
		agg[i] = tensor.NewLike(g)
	}
	// Aggregate in client-ID order: ranging over the map would reorder
	// the floating-point sums run to run.
	ids := make([]int, 0, len(recorded))
	for id := range recorded {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	totalWeight := 0.0
	for _, clientID := range ids {
		delta := recorded[clientID]
		ds := retain[clientID]
		if ds == nil || ds.Len() == 0 {
			continue // the forgotten client (or one with no retain data)
		}
		f.model.SetParams(global)
		f.localCalibration(ds)
		*samples += min(ds.Len(), f.CalibrationSteps*f.cfg.Train.BatchSize)
		w := float64(ds.Len())
		totalWeight += w
		for i, p := range f.model.ParamTensors() {
			cal := p.Sub(global[i])
			calNorm, oldNorm := cal.Norm(), delta[i].Norm()
			if calNorm > 1e-12 {
				cal.ScaleInPlace(oldNorm / calNorm)
			}
			agg[i].AxpyInPlace(w, global[i].Add(cal))
		}
	}
	if totalWeight == 0 {
		return fmt.Errorf("baselines: FedEraser has no retained client to calibrate with")
	}
	for i := range agg {
		agg[i].ScaleInPlace(1 / totalWeight)
	}
	f.model.SetParams(agg)
	return nil
}

func (f *FedEraser) localCalibration(ds *data.Dataset) {
	opt := optim.NewSGD(f.cfg.Train.LR)
	for step := 0; step < f.CalibrationSteps; step++ {
		x, labels := ds.SampleBatch(f.rng, f.cfg.Train.BatchSize)
		bound := f.model.Bind()
		loss := nn.CrossEntropy(bound.Forward(adConst(x)), nn.OneHot(labels, f.model.Classes))
		grads := mustGradTensors(loss, bound)
		opt.Step(f.model.ParamTensors(), grads)
		f.counter.AddBatch(len(labels))
	}
}

// Relearn implements Method.
func (f *FedEraser) Relearn(req core.Request) (Result, error) { return f.relearnOriginal(req) }

// StorageBytes returns the storage cost of the recorded history in bytes
// (float64 parameters).
func (f *FedEraser) StorageBytes() int { return 8 * f.StoredFloats }
