package baselines

import (
	"fmt"
	"sort"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/tensor"
)

// FedEraser (Liu et al. 2021) trades server storage for unlearning speed:
// during training it records every participating client's per-round
// parameter update; to unlearn, it replays training from the initial model
// with the stored update *norms* but fresh *directions* obtained from a
// few cheap calibration steps on the retain data. Storage grows linearly
// with clients × rounds — the drawback the paper highlights.
type FedEraser struct {
	*base
	// CalibrationSteps is how many local steps calibration uses — a small
	// fraction of the training T (FedEraser's speedup lever).
	CalibrationSteps int
	// Interval keeps every Interval-th round's updates (≥1).
	Interval int
	// SnapshotBudget caps how many float64 parameters the update history
	// may retain (0 means DefaultSnapshotBudget). FedEraser's storage grows
	// as clients × rounds × model size, so at registry scale (millions of
	// clients) Prepare refuses up front rather than exhausting memory.
	SnapshotBudget int

	initParams []*tensor.Tensor
	// history[k] maps clientID → that client's recorded update Δ in round k.
	history []map[int][]*tensor.Tensor
	// StoredFloats counts the retained parameters (storage cost).
	StoredFloats int
	// overBudget marks that recording stopped mid-training because the
	// budget ran out; replay would be incomplete, so Unlearn refuses.
	overBudget bool
}

// DefaultSnapshotBudget is the default cap on recorded history:
// 64M float64 parameters (512 MiB). Generous for the paper's cohort
// sizes, far below what a million-client registry would demand.
const DefaultSnapshotBudget = 64 << 20

// NewFedEraser constructs the baseline.
func NewFedEraser(cfg Config, clients fl.ClientRegistry) (*FedEraser, error) {
	b, err := newBase(cfg, clients)
	if err != nil {
		return nil, err
	}
	return &FedEraser{base: b, CalibrationSteps: 1, Interval: 1}, nil
}

// snapshotBudget resolves the configured cap.
func (f *FedEraser) snapshotBudget() int {
	if f.SnapshotBudget > 0 {
		return f.SnapshotBudget
	}
	return DefaultSnapshotBudget
}

// estimateStoredFloats predicts the history size Prepare would record:
// participants per recorded round × recorded rounds × model parameters.
func (f *FedEraser) estimateStoredFloats() int {
	params := 0
	for _, p := range f.model.ParamTensors() {
		params += p.Len()
	}
	perRound := f.numClients()
	if frac := f.cfg.Train.Participation; frac > 0 && frac < 1 {
		perRound = int(float64(perRound)*frac) + 1
	}
	recordedRounds := (f.cfg.Train.Rounds + f.Interval - 1) / f.Interval
	return perRound * recordedRounds * params
}

// Name implements Method.
func (f *FedEraser) Name() string { return "FedEraser" }

// Capabilities implements Method.
func (f *FedEraser) Capabilities() Capabilities {
	return Capabilities{
		Name: f.Name(), ClassLevel: true, ClientLevel: true, SampleLevel: true, Relearn: true,
		StorageEfficient: false, ComputeEfficiency: "low",
	}
}

// Prepare implements Method: standard FL training with update recording.
func (f *FedEraser) Prepare() error {
	if f.Interval < 1 || f.CalibrationSteps < 1 {
		return fmt.Errorf("baselines: invalid FedEraser settings interval=%d calSteps=%d", f.Interval, f.CalibrationSteps)
	}
	if est, budget := f.estimateStoredFloats(), f.snapshotBudget(); est > budget {
		return fmt.Errorf("baselines: FedEraser would record ~%d floats of update history "+
			"(%d clients × %d rounds / interval %d) but SnapshotBudget is %d; "+
			"raise the budget, increase Interval, or use a storage-efficient method at this scale",
			est, f.numClients(), f.cfg.Train.Rounds, f.Interval, budget)
	}
	f.initParams = f.model.CloneParams()
	return f.trainInitial(func(cfg *fl.PhaseConfig) {
		cfg.UpdateHook = func(round, clientID int, before, after []*tensor.Tensor) {
			if round%f.Interval != 0 || f.overBudget {
				return
			}
			size := 0
			for i := range after {
				size += after[i].Len()
			}
			if f.StoredFloats+size > f.snapshotBudget() {
				// The pre-flight estimate undershot (e.g. participation
				// rounding); stop recording and let Unlearn report it.
				f.overBudget = true
				return
			}
			k := round / f.Interval
			for len(f.history) <= k {
				f.history = append(f.history, make(map[int][]*tensor.Tensor))
			}
			delta := make([]*tensor.Tensor, len(after))
			for i := range after {
				delta[i] = after[i].Sub(before[i])
				f.StoredFloats += delta[i].Len()
			}
			f.history[k][clientID] = delta
		}
	})
}

// Unlearn implements Method: calibrated replay of the recorded rounds on
// the retain data, followed by a short standard recovery phase.
func (f *FedEraser) Unlearn(req core.Request) (Result, error) {
	if err := f.checkUnlearn(req, f.Capabilities()); err != nil {
		return Result{}, err
	}
	if f.overBudget {
		return Result{}, fmt.Errorf("baselines: FedEraser history is incomplete — "+
			"recording stopped at the %d-float SnapshotBudget, so calibrated replay would be wrong", f.snapshotBudget())
	}
	if _, err := f.forgetShards(req); err != nil {
		return Result{}, err
	}
	f.forget.Mark(req, true)
	retain := f.retainShards()

	var res Result
	// Calibrated replay runs outside RunPhase, so it gets its own
	// telemetry phase.
	pt := f.cfg.Telemetry.StartPhase("calibrate")
	f.model.SetParams(f.initParams)
	replayed := 0
	samples := 0
	for _, roundUpdates := range f.history {
		if len(roundUpdates) == 0 {
			continue
		}
		if err := f.calibratedRound(roundUpdates, retain, &samples); err != nil {
			f.forget.Mark(req, false)
			return res, err
		}
		replayed++
	}
	res.Unlearn = eval.Cost{Rounds: replayed, WallTime: pt.Stop(), DataSize: samples}
	f.observe("unlearn")

	var err error
	res.Recover, err = f.runPhase(retain, f.cfg.RecoverPhase, optim.Descend, "recover")
	if err != nil {
		return res, err
	}
	res.finish()
	f.observe("recover")
	return res, nil
}

// calibratedRound applies one FedEraser update: every retained client with
// a recorded update runs CalibrationSteps cheap local steps; the new
// global step keeps the stored update's norm but the calibrated direction.
func (f *FedEraser) calibratedRound(recorded map[int][]*tensor.Tensor, retain []*data.Dataset, samples *int) error {
	global := f.model.CloneParams()
	agg := make([]*tensor.Tensor, len(global))
	for i, g := range global {
		agg[i] = tensor.NewLike(g)
	}
	// Aggregate in client-ID order: ranging over the map would reorder
	// the floating-point sums run to run.
	ids := make([]int, 0, len(recorded))
	for id := range recorded {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	totalWeight := 0.0
	for _, clientID := range ids {
		delta := recorded[clientID]
		ds := retain[clientID]
		if ds == nil || ds.Len() == 0 {
			continue // the forgotten client (or one with no retain data)
		}
		f.model.SetParams(global)
		f.localCalibration(ds)
		*samples += min(ds.Len(), f.CalibrationSteps*f.cfg.Train.BatchSize)
		w := float64(ds.Len())
		totalWeight += w
		for i, p := range f.model.ParamTensors() {
			cal := p.Sub(global[i])
			calNorm, oldNorm := cal.Norm(), delta[i].Norm()
			if calNorm > 1e-12 {
				cal.ScaleInPlace(oldNorm / calNorm)
			}
			agg[i].AxpyInPlace(w, global[i].Add(cal))
		}
	}
	if totalWeight == 0 {
		return fmt.Errorf("baselines: FedEraser has no retained client to calibrate with")
	}
	for i := range agg {
		agg[i].ScaleInPlace(1 / totalWeight)
	}
	f.model.SetParams(agg)
	return nil
}

func (f *FedEraser) localCalibration(ds *data.Dataset) {
	opt := optim.NewSGD(f.cfg.Train.LR)
	for step := 0; step < f.CalibrationSteps; step++ {
		x, labels := ds.SampleBatch(f.rng, f.cfg.Train.BatchSize)
		bound := f.model.Bind()
		loss := nn.CrossEntropy(bound.Forward(adConst(x)), nn.OneHot(labels, f.model.Classes))
		grads := mustGradTensors(loss, bound)
		opt.Step(f.model.ParamTensors(), grads)
		f.counter.AddBatch(len(labels))
	}
}

// Relearn implements Method.
func (f *FedEraser) Relearn(req core.Request) (Result, error) { return f.relearnOriginal(req) }

// StorageBytes returns the storage cost of the recorded history in bytes
// (float64 parameters).
func (f *FedEraser) StorageBytes() int { return 8 * f.StoredFloats }
