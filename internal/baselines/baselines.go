// Package baselines implements the five federated-unlearning approaches
// the paper compares QuickDrop against (§2.3, Table 1):
//
//   - Retrain-Or — the retraining oracle (from-scratch FL on D\D_f),
//   - SGA-Or — stochastic gradient ascent on the original forget data
//     followed by SGD recovery on the original retain data (Algorithm 1),
//   - FedEraser — calibrated replay of stored per-round client updates,
//   - FU-MP — class-discriminative channel pruning plus recovery, and
//   - S2U — update down-scaling of the forgetting client with up-scaled
//     remaining clients (client-level only).
//
// All methods share the Method interface so the experiment harness can
// drive them uniformly and regenerate the paper's comparison tables.
package baselines

import (
	"fmt"
	"math/rand"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/telemetry"
)

// Result reports the cost of serving one unlearning request.
type Result struct {
	Unlearn eval.Cost
	Recover eval.Cost
	Total   eval.Cost
}

func (r *Result) finish() {
	r.Total = r.Unlearn
	r.Total.Add(r.Recover)
}

// Capabilities mirrors the rows of the paper's Table 1.
type Capabilities struct {
	Name        string
	ClassLevel  bool
	ClientLevel bool
	// SampleLevel marks methods that can erase arbitrary samples — an
	// extension beyond the paper's Table 1 (the retraining/SGA family
	// supports it directly on original data).
	SampleLevel      bool
	Relearn          bool
	StorageEfficient bool
	// ComputeEfficiency is the qualitative rating from Table 1.
	ComputeEfficiency string
}

// Method is a federated unlearning approach.
type Method interface {
	Name() string
	Capabilities() Capabilities
	// Prepare runs the initial FL training, recording whatever state the
	// method needs for later unlearning.
	Prepare() error
	// Model returns the current global model.
	Model() *nn.Model
	// Unlearn serves a request (unlearning plus any recovery).
	Unlearn(req core.Request) (Result, error)
	// Relearn restores previously unlearned knowledge, or errors if the
	// method cannot (FU-MP's pruning is irreversible).
	Relearn(req core.Request) (Result, error)
}

// Config is shared by all baselines.
type Config struct {
	Arch nn.ConvNetConfig
	// Train configures initial FL training.
	Train core.PhaseParams
	// UnlearnPhase configures SGA/pruning/scaling stages.
	UnlearnPhase core.PhaseParams
	// RecoverPhase configures recovery training on the retain data.
	RecoverPhase core.PhaseParams
	// RelearnPhase configures relearning on the original forget data.
	RelearnPhase core.PhaseParams
	// RetrainRounds is how many rounds Retrain-Or needs to converge from
	// scratch on the retain data (paper: 30 of the original 200).
	RetrainRounds int
	// Observer, when set, is invoked with the stage name ("unlearn",
	// "recover", "relearn") after each pipeline stage, mirroring
	// core.Config.Observer.
	Observer func(stage string)
	// Telemetry, if set, instruments every phase the baseline runs with
	// the same pipeline core.Config.Telemetry uses. Nil is free.
	Telemetry *telemetry.Pipeline
	Seed      int64
}

// DefaultConfig mirrors core.DefaultConfig's phase structure on original
// data volumes.
func DefaultConfig(arch nn.ConvNetConfig) Config {
	return Config{
		Arch:          arch,
		Train:         core.PhaseParams{Rounds: 15, LocalSteps: 5, BatchSize: 16, LR: 0.1},
		UnlearnPhase:  core.PhaseParams{Rounds: 1, LocalSteps: 5, BatchSize: 16, LR: 0.02},
		RecoverPhase:  core.PhaseParams{Rounds: 2, LocalSteps: 5, BatchSize: 16, LR: 0.01},
		RelearnPhase:  core.PhaseParams{Rounds: 2, LocalSteps: 5, BatchSize: 16, LR: 0.05},
		RetrainRounds: 15,
		Seed:          1,
	}
}

// base carries the state shared by every baseline: the global model, the
// clients' registry of original datasets, and the forget tracker.
type base struct {
	cfg      Config
	clients  fl.ClientRegistry
	model    *nn.Model
	rng      *rand.Rand
	forget   *core.Tracker
	counter  optim.Counter
	prepared bool
}

func newBase(cfg Config, clients fl.ClientRegistry) (*base, error) {
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	if clients == nil || clients.NumClients() == 0 {
		return nil, fmt.Errorf("baselines: no clients")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &base{
		cfg:     cfg,
		clients: clients,
		model:   nn.NewConvNet(cfg.Arch, rng),
		rng:     rng,
		forget:  core.NewTracker(),
	}, nil
}

func (b *base) Model() *nn.Model { return b.model }

// numClients and shard are the registry access shorthands every method
// shares. The per-request forget/retain shards these methods derive stay
// []*data.Dataset: they are request-scale by construction (one class or
// one client's worth of data), not cohort-scale.
func (b *base) numClients() int           { return b.clients.NumClients() }
func (b *base) shard(i int) *data.Dataset { return b.clients.Shard(i) }

// phaseConfig converts core.PhaseParams into an fl.PhaseConfig named
// phase for telemetry.
func phaseConfig(p core.PhaseParams, dir optim.Direction, counter *optim.Counter,
	tel *telemetry.Pipeline, phase string) fl.PhaseConfig {
	return fl.PhaseConfig{
		Rounds:        p.Rounds,
		LocalSteps:    p.LocalSteps,
		BatchSize:     p.BatchSize,
		LR:            p.LR,
		Dir:           dir,
		Participation: p.Participation,
		Counter:       counter,
		Telemetry:     tel,
		Phase:         phase,
	}
}

// trainInitial runs plain FedAvg training on the original data.
func (b *base) trainInitial(extra func(*fl.PhaseConfig)) error {
	if b.prepared {
		return fmt.Errorf("baselines: already prepared")
	}
	cfg := phaseConfig(b.cfg.Train, optim.Descend, &b.counter, b.cfg.Telemetry, "train")
	if extra != nil {
		extra(&cfg)
	}
	if _, err := fl.RunPhaseRegistry(b.model, b.clients, cfg, b.rng); err != nil {
		return err
	}
	b.prepared = true
	return nil
}

// forgetShards returns per-client original-data shards covered by the
// request: D_ic for class-level, D_i for client-level.
func (b *base) forgetShards(req core.Request) ([]*data.Dataset, error) {
	shards := make([]*data.Dataset, b.numClients())
	total := 0
	switch req.Kind {
	case core.ClassLevel:
		if req.Class < 0 || req.Class >= b.model.Classes {
			return nil, fmt.Errorf("baselines: class %d out of range", req.Class)
		}
		for i := range shards {
			c := b.shard(i)
			if c == nil || b.forget.ClientRemoved(i) {
				continue
			}
			shards[i] = c.OfClass(req.Class)
			total += shards[i].Len()
		}
	case core.ClientLevel:
		if req.Client < 0 || req.Client >= b.numClients() {
			return nil, fmt.Errorf("baselines: client %d out of range", req.Client)
		}
		shards[req.Client] = b.activeSubset(req.Client, b.shard(req.Client))
		total += shards[req.Client].Len()
	case core.SampleLevel:
		if req.Client < 0 || req.Client >= b.numClients() {
			return nil, fmt.Errorf("baselines: client %d out of range", req.Client)
		}
		client := b.shard(req.Client)
		removed := b.forget.RemovedSamples(req.Client)
		var idx []int
		for _, s := range req.Samples {
			if s < 0 || s >= client.Len() {
				return nil, fmt.Errorf("baselines: sample %d out of range for client %d", s, req.Client)
			}
			if !removed[s] {
				idx = append(idx, s)
			}
		}
		if len(idx) > 0 {
			shards[req.Client] = client.Subset(idx)
			total += len(idx)
		}
	default:
		return nil, fmt.Errorf("baselines: invalid request kind %v", req.Kind)
	}
	if total == 0 {
		return nil, fmt.Errorf("baselines: request %v matches no data", req)
	}
	return shards, nil
}

// activeSubset removes already-unlearned samples and classes from a
// client's dataset. Sample exclusion runs first because the tracker's
// indices refer to the original dataset ordering.
func (b *base) activeSubset(client int, ds *data.Dataset) *data.Dataset {
	if ds == nil {
		return nil
	}
	out := ds.WithoutIndices(b.forget.RemovedSamples(client))
	for _, c := range b.forget.RemovedClasses() {
		out = out.WithoutClass(c)
	}
	return out
}

// retainShards returns the per-client retain data D\D_f under the current
// forget state.
func (b *base) retainShards() []*data.Dataset {
	shards := make([]*data.Dataset, b.numClients())
	for i := range shards {
		c := b.shard(i)
		if c == nil || b.forget.ClientRemoved(i) {
			continue
		}
		shards[i] = b.activeSubset(i, c)
	}
	return shards
}

// runPhase executes one FedAvg phase over shards and returns its cost.
// The wall time comes from the telemetry phase timer inside RunPhase.
func (b *base) runPhase(shards []*data.Dataset, p core.PhaseParams, dir optim.Direction, phase string) (eval.Cost, error) {
	res, err := fl.RunPhase(b.model, shards, phaseConfig(p, dir, &b.counter, b.cfg.Telemetry, phase), b.rng)
	if err != nil {
		return eval.Cost{}, err
	}
	return eval.Cost{Rounds: res.Rounds, WallTime: res.WallTime, DataSize: shardTotal(shards)}, nil
}

// relearnOriginal is the shared relearning implementation: standard SGD
// training on the original forget data (paper §4.7: baselines relearn on
// original data).
func (b *base) relearnOriginal(req core.Request) (Result, error) {
	if !b.prepared {
		return Result{}, fmt.Errorf("baselines: Relearn before Prepare")
	}
	if !b.forget.IsRemoved(req) {
		return Result{}, fmt.Errorf("baselines: %v was not unlearned", req)
	}
	b.forget.Mark(req, false)
	shards, err := b.forgetShards(req)
	if err != nil {
		b.forget.Mark(req, true)
		return Result{}, err
	}
	var res Result
	res.Recover, err = b.runPhase(shards, b.cfg.RelearnPhase, optim.Descend, "relearn")
	if err != nil {
		return res, err
	}
	res.finish()
	b.observe("relearn")
	return res, nil
}

func (b *base) observe(stage string) {
	if b.cfg.Observer != nil {
		b.cfg.Observer(stage)
	}
}

func (b *base) checkUnlearn(req core.Request, caps Capabilities) error {
	if !b.prepared {
		return fmt.Errorf("baselines: Unlearn before Prepare")
	}
	if req.Kind == core.ClassLevel && !caps.ClassLevel {
		return fmt.Errorf("baselines: %s does not support class-level unlearning", caps.Name)
	}
	if req.Kind == core.ClientLevel && !caps.ClientLevel {
		return fmt.Errorf("baselines: %s does not support client-level unlearning", caps.Name)
	}
	if req.Kind == core.SampleLevel && !caps.SampleLevel {
		return fmt.Errorf("baselines: %s does not support sample-level unlearning", caps.Name)
	}
	if b.forget.IsRemoved(req) {
		return fmt.Errorf("baselines: %v already unlearned", req)
	}
	return nil
}

func shardTotal(shards []*data.Dataset) int {
	n := 0
	for _, s := range shards {
		if s != nil {
			n += s.Len()
		}
	}
	return n
}
