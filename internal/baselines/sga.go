package baselines

import (
	"quickdrop/internal/core"
	"quickdrop/internal/fl"
	"quickdrop/internal/optim"
)

// SGAOr performs unlearning with stochastic gradient ascent on the
// *original* forget data followed by SGD recovery on the original retain
// data — the paper's Algorithm 1 (Wu et al. 2022). QuickDrop runs the
// identical procedure but on the distilled synthetic data; SGA-Or is
// therefore the direct efficiency comparison.
type SGAOr struct {
	*base
}

// NewSGAOr constructs the baseline.
func NewSGAOr(cfg Config, clients fl.ClientRegistry) (*SGAOr, error) {
	b, err := newBase(cfg, clients)
	if err != nil {
		return nil, err
	}
	return &SGAOr{base: b}, nil
}

// Name implements Method.
func (s *SGAOr) Name() string { return "SGA-Or" }

// Capabilities implements Method.
func (s *SGAOr) Capabilities() Capabilities {
	return Capabilities{
		Name: s.Name(), ClassLevel: true, ClientLevel: true, SampleLevel: true, Relearn: true,
		StorageEfficient: true, ComputeEfficiency: "medium",
	}
}

// Prepare implements Method.
func (s *SGAOr) Prepare() error { return s.trainInitial(nil) }

// Unlearn implements Method (Algorithm 1): SGA rounds on D_f, then SGD
// recovery rounds on D\D_f.
func (s *SGAOr) Unlearn(req core.Request) (Result, error) {
	if err := s.checkUnlearn(req, s.Capabilities()); err != nil {
		return Result{}, err
	}
	forget, err := s.forgetShards(req)
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.Unlearn, err = s.runPhase(forget, s.cfg.UnlearnPhase, optim.Ascend, "unlearn")
	if err != nil {
		return res, err
	}
	s.observe("unlearn")
	s.forget.Mark(req, true)
	res.Recover, err = s.runPhase(s.retainShards(), s.cfg.RecoverPhase, optim.Descend, "recover")
	if err != nil {
		return res, err
	}
	res.finish()
	s.observe("recover")
	return res, nil
}

// Relearn implements Method.
func (s *SGAOr) Relearn(req core.Request) (Result, error) { return s.relearnOriginal(req) }
