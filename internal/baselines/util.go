package baselines

import (
	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/nn"
	"quickdrop/internal/tensor"
)

// adConst wraps a tensor as a constant graph node.
func adConst(t *tensor.Tensor) *ad.Value { return ad.Const(t) }

// mustGradTensors backpropagates loss through the bound model and returns
// raw gradient tensors aligned with the model parameters.
func mustGradTensors(loss *ad.Value, bound *nn.Bound) []*tensor.Tensor {
	grads := ad.MustGrad(loss, bound.ParamVars())
	out := make([]*tensor.Tensor, len(grads))
	for i, g := range grads {
		out[i] = g.Data
	}
	return out
}
