package serve

import (
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/telemetry"
)

// run is the single worker loop: wait for a request, linger briefly so
// concurrent submitters pile up, drain the whole backlog, and execute
// it as one coalesced batch. Exits when the queue is closed and empty.
func (s *Server) run() {
	defer s.wg.Done()
	for {
		t, ok := s.q.Wait()
		if !ok {
			return
		}
		batch := []*Ticket{t}
		if !s.cfg.Sequential {
			s.linger()
			batch = append(batch, s.q.TakeAll()...)
		}
		s.metrics.queueDepth.Set(float64(s.q.Len()))
		s.runBatch(batch)
	}
}

// linger gives concurrent submitters a coalescing window. Cut short by
// Drain so shutdown never waits out the full window.
func (s *Server) linger() {
	if s.cfg.Linger <= 0 {
		return
	}
	timer := time.NewTimer(s.cfg.Linger)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.stop:
	}
}

// runBatch executes one coalesced unlearning pass and publishes the
// resulting model as a new snapshot version.
func (s *Server) runBatch(tickets []*Ticket) {
	seq := s.batchSeq.Add(1)
	// Canonical order makes the published parameters a function of the
	// request set: K requests coalesce to the same model no matter how
	// their HTTP posts interleaved.
	sortTickets(tickets)

	reqs := make([]core.Request, len(tickets))
	for i, t := range tickets {
		fset, rset := s.eval(t.Req)
		t.coalesce(seq, fset, rset)
		reqs[i] = t.Req
	}
	s.metrics.batchRequests.Observe(float64(len(tickets)))
	s.metrics.series.Append(s.metrics.sBatch, float64(seq), float64(len(tickets)))

	for _, t := range tickets {
		t.setState(StateUnlearning)
	}
	br, err := s.sys.UnlearnBatch(reqs)
	if err != nil && len(br.Requests) == 0 {
		// Nothing executed — the model is unchanged (phase errors roll
		// back the forget ledger), so there is no new version to publish.
		for i, t := range tickets {
			t.fail(s.rejectionFor(br, i, err))
			s.audit(t)
		}
		s.failed.Add(int64(len(tickets)))
		s.metrics.failed.Add(int64(len(tickets)))
		return
	}

	rejected := make(map[int]error, len(br.Rejected))
	for _, re := range br.Rejected {
		rejected[re.Index] = re.Err
	}
	for i, t := range tickets {
		if rejected[i] == nil {
			t.setState(StateRecovered)
		}
	}

	sw := telemetry.StartTimer()
	version := s.store.Publish(s.sys.Model.CloneParams())
	d := sw.Elapsed().Seconds()
	s.metrics.publishSeconds.Observe(d)
	s.metrics.modelVersion.Set(float64(version))
	s.metrics.batches.Inc()
	s.metrics.series.Append(s.metrics.sPublish, float64(seq), d)
	s.metrics.series.Append(s.metrics.sVersion, float64(seq), float64(version))
	s.metrics.series.Append(s.metrics.sQueue, float64(seq), float64(s.q.Len()))

	for i, t := range tickets {
		if rErr := rejected[i]; rErr != nil {
			t.fail(rErr)
			s.failed.Add(1)
			s.metrics.failed.Inc()
		} else {
			fset, rset := s.eval(t.Req)
			t.finish(StatePublished, version, fset, rset, nil)
			s.published.Add(1)
			s.metrics.published.Inc()
		}
		s.audit(t)
	}
}

// rejectionFor maps a wholly-failed batch back onto per-ticket errors:
// a ticket that was individually rejected gets its own resolution
// error, everything else the shared batch error.
func (s *Server) rejectionFor(br core.BatchReport, i int, batchErr error) error {
	for _, re := range br.Rejected {
		if re.Index == i {
			return re.Err
		}
	}
	return batchErr
}

// eval measures a request's forget/retain accuracy on the system's
// current model (zeros without an evaluator).
func (s *Server) eval(req core.Request) (fset, rset float64) {
	if s.cfg.Evaluator == nil {
		return 0, 0
	}
	return s.cfg.Evaluator.Split(s.sys.Model, req)
}

// audit mirrors a terminal ticket into the run-ledger audit trail.
func (s *Server) audit(t *Ticket) {
	if s.cfg.Telemetry == nil {
		return
	}
	s.cfg.Telemetry.Audit.Append(t.audit())
}
