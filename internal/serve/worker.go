package serve

import (
	"errors"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/telemetry"
	"quickdrop/internal/telemetry/health"
)

// run is the single worker loop: wait for a request, linger briefly so
// concurrent submitters pile up, drain the whole backlog, and execute
// it as one coalesced batch. Exits when the queue is closed and empty.
func (s *Server) run() {
	defer s.wg.Done()
	for {
		t, ok := s.q.Wait()
		if !ok {
			return
		}
		batch := []*Ticket{t}
		if !s.cfg.Sequential {
			s.linger()
			batch = append(batch, s.q.TakeAll()...)
		}
		s.metrics.queueDepth.Set(float64(s.q.Len()))
		s.runBatch(batch)
	}
}

// linger gives concurrent submitters a coalescing window. Cut short by
// Drain so shutdown never waits out the full window.
func (s *Server) linger() {
	if s.cfg.Linger <= 0 {
		return
	}
	timer := time.NewTimer(s.cfg.Linger)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.stop:
	}
}

// runBatch executes one coalesced unlearning pass and publishes the
// resulting model as a new snapshot version.
func (s *Server) runBatch(tickets []*Ticket) {
	seq := s.batchSeq.Add(1)
	// Canonical order makes the published parameters a function of the
	// request set: K requests coalesce to the same model no matter how
	// their HTTP posts interleaved.
	sortTickets(tickets)

	reqs := make([]core.Request, len(tickets))
	for i, t := range tickets {
		fset, rset := s.eval(t.Req)
		t.coalesce(seq, fset, rset)
		reqs[i] = t.Req
	}
	s.metrics.batchRequests.Observe(float64(len(tickets)))
	s.metrics.series.Append(s.metrics.sBatch, float64(seq), float64(len(tickets)))

	for _, t := range tickets {
		t.setState(StateUnlearning)
	}
	br, err := s.sys.UnlearnBatch(reqs)
	rejected := make(map[int]error, len(br.Rejected))
	for _, re := range br.Rejected {
		rejected[re.Index] = re.Err
	}
	if err != nil {
		// No consistent unlearned model exists, so nothing is published
		// and EVERY ticket fails — individually-rejected ones with their
		// own resolution error, the rest with the shared batch error. The
		// forget ledger is already back at its pre-batch state
		// (UnlearnBatch's error contract); if a phase ran at all the
		// model may be mid-ascent or unrecovered, so rewind it to the
		// last published snapshot before the next batch.
		if len(br.Requests) > 0 {
			s.restoreModel()
		}
		// A watchdog-refused batch is a health event, not an ordinary
		// failure: pin the verdict on every ticket that reached a phase,
		// then re-arm the monitor so the NEXT batch gets a fresh verdict
		// against the rewound (known-good) parameters.
		verdict := ""
		var uh *health.UnhealthyError
		if errors.As(err, &uh) {
			verdict = uh.Verdict.String()
			s.metrics.watchdogTrips.Inc()
			s.sys.Cfg.Health.Reset()
		}
		for i, t := range tickets {
			rErr := rejected[i]
			if rErr == nil {
				rErr = err
				if verdict != "" {
					t.failWatchdog(rErr, verdict)
					s.audit(t)
					continue
				}
			}
			t.fail(rErr)
			s.audit(t)
		}
		s.failed.Add(int64(len(tickets)))
		s.metrics.failed.Add(int64(len(tickets)))
		return
	}

	for i, t := range tickets {
		if rejected[i] == nil {
			t.setState(StateRecovered)
		}
	}

	sw := telemetry.StartTimer()
	version := s.store.Publish(s.sys.Model.CloneParams())
	d := sw.Elapsed().Seconds()
	s.metrics.publishSeconds.Observe(d)
	s.metrics.modelVersion.Set(float64(version))
	s.metrics.batches.Inc()
	s.metrics.series.Append(s.metrics.sPublish, float64(seq), d)
	s.metrics.series.Append(s.metrics.sVersion, float64(seq), float64(version))
	s.metrics.series.Append(s.metrics.sQueue, float64(seq), float64(s.q.Len()))

	for i, t := range tickets {
		if rErr := rejected[i]; rErr != nil {
			t.fail(rErr)
			s.failed.Add(1)
			s.metrics.failed.Inc()
		} else {
			fset, rset := s.eval(t.Req)
			t.finish(StatePublished, version, fset, rset, nil)
			s.published.Add(1)
			s.metrics.published.Inc()
		}
		s.audit(t)
	}
}

// restoreModel rewinds the worker's in-memory model to the last
// published snapshot after a failed phase, so the next batch starts
// from exactly the parameters readers are being served instead of a
// partially-ascended or half-recovered state.
func (s *Server) restoreModel() {
	snap := s.store.Acquire()
	if snap == nil {
		return
	}
	defer snap.Release()
	s.sys.Model.SetParams(snap.Params())
}

// eval measures a request's forget/retain accuracy on the system's
// current model (zeros without an evaluator).
func (s *Server) eval(req core.Request) (fset, rset float64) {
	if s.cfg.Evaluator == nil {
		return 0, 0
	}
	return s.cfg.Evaluator.Split(s.sys.Model, req)
}

// audit mirrors a terminal ticket into the run-ledger audit trail.
func (s *Server) audit(t *Ticket) {
	if s.cfg.Telemetry == nil {
		return
	}
	s.cfg.Telemetry.Audit.Append(t.audit())
}
