package serve

import "quickdrop/internal/telemetry"

// serveMetrics bundles the daemon's instruments. Every handle is
// nil-receiver-safe, so a server without telemetry records into no-op
// handles instead of branching at each site.
type serveMetrics struct {
	queueDepth     *telemetry.Gauge     // quickdropd_queue_depth
	batches        *telemetry.Counter   // quickdropd_batches_total
	batchRequests  *telemetry.Histogram // quickdropd_batch_requests
	publishSeconds *telemetry.Histogram // quickdropd_publish_seconds
	published      *telemetry.Counter   // quickdropd_requests_published_total
	failed         *telemetry.Counter   // quickdropd_requests_failed_total
	watchdogTrips  *telemetry.Counter   // quickdropd_watchdog_trips_total
	modelVersion   *telemetry.Gauge     // quickdropd_model_version

	// Flight-recorder series for the dashboard.
	series   *telemetry.SeriesStore
	sVersion telemetry.SeriesID
	sBatch   telemetry.SeriesID
	sPublish telemetry.SeriesID
	sQueue   telemetry.SeriesID
}

// newServeMetrics registers the daemon's instrument catalogue on the
// pipeline's registry and series store (both optional).
func newServeMetrics(p *telemetry.Pipeline) *serveMetrics {
	var reg *telemetry.Registry
	var series *telemetry.SeriesStore
	if p != nil {
		reg = p.Registry
		series = p.Series
	}
	m := &serveMetrics{
		queueDepth: reg.Gauge("quickdropd_queue_depth", "Forget requests waiting to be coalesced."),
		batches:    reg.Counter("quickdropd_batches_total", "Coalesced unlearning batches executed."),
		batchRequests: reg.Histogram("quickdropd_batch_requests",
			"Requests coalesced per batch.", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
		publishSeconds: reg.Histogram("quickdropd_publish_seconds",
			"Snapshot publish wall time in seconds.", nil),
		published: reg.Counter("quickdropd_requests_published_total",
			"Forget requests completed and published."),
		failed: reg.Counter("quickdropd_requests_failed_total",
			"Forget requests rejected or failed."),
		watchdogTrips: reg.Counter("quickdropd_watchdog_trips_total",
			"Batches refused publication by the numerics health watchdog."),
		modelVersion: reg.Gauge("quickdropd_model_version", "Latest published model version."),
		series:       series,
	}
	if series != nil {
		m.sVersion = series.Register("model_version", "Published model version (x: batch sequence).", 0)
		m.sBatch = series.Register("batch_requests", "Requests coalesced per batch (x: batch sequence).", 0)
		m.sPublish = series.Register("publish_seconds", "Snapshot publish wall time (x: batch sequence).", 0)
		m.sQueue = series.Register("queue_depth", "Queue depth after each drain (x: batch sequence).", 0)
	} else {
		m.sVersion, m.sBatch, m.sPublish, m.sQueue = -1, -1, -1, -1
	}
	return m
}
