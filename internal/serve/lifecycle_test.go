package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/nn"
)

// slowEval widens the per-ticket state windows (accuracy evaluation
// happens inside the unlearning batch) so concurrent observers get a
// real chance to catch intermediate states.
type slowEval struct{ d time.Duration }

func (e slowEval) Split(_ *nn.Model, _ core.Request) (float64, float64) {
	time.Sleep(e.d)
	return 0, 0
}

// stateRank orders the forward lifecycle; observers poll, so they may
// skip states but must never see one move backwards.
var stateRank = map[string]int{
	"queued":     0,
	"coalesced":  1,
	"unlearning": 2,
	"recovered":  3,
	"published":  4,
}

// legalObservation reports whether observing next after prev is
// consistent with the declared ticket lifecycle (the //lint:statemachine
// table on State): forward-only, failed reachable from any non-terminal
// state, nothing after a terminal state.
func legalObservation(prev, next string) bool {
	if prev == next {
		return true
	}
	if prev == "published" || prev == "failed" {
		return false
	}
	if next == "failed" {
		return true
	}
	pr, okP := stateRank[prev]
	nr, okN := stateRank[next]
	return okP && okN && nr > pr
}

// TestTicketStatesLegalUnderConcurrentObservation hammers GET
// /v1/requests from several goroutines while sequential batches run and
// checks every observed ticket state is a known state and every
// per-ticket observation sequence follows the declared lifecycle. Run
// under -race this also proves View/views take consistent snapshots.
func TestTicketStatesLegalUnderConcurrentObservation(t *testing.T) {
	s, ts := newTestServer(t, tinyConfig(11), Config{
		Evaluator:  slowEval{d: 3 * time.Millisecond},
		Sequential: true, // one batch per request: more transitions to observe
	})

	bodies := []string{
		`{"kind":"class","class":1}`,
		`{"kind":"class","class":2}`,
		`{"kind":"client","client":0}`,
	}
	ids := make([]uint64, len(bodies))
	for i, body := range bodies {
		code, v := postForget(t, ts.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("post %d: status %d, want 202", i, code)
		}
		ids[i] = v.ID
	}

	// Observers start before the worker so the queued state is seen too.
	// Each observer validates its own observation sequence: its polls are
	// issued serially, so per ticket they are ordered in real time.
	stop := make(chan struct{})
	var observations atomic.Int64
	var wg sync.WaitGroup
	const observers = 4
	wg.Add(observers)
	for o := 0; o < observers; o++ {
		go func() {
			defer wg.Done()
			last := make(map[uint64]string)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/requests")
				if err != nil {
					t.Error(err)
					return
				}
				var views struct {
					Requests []View `json:"requests"`
				}
				err = json.NewDecoder(resp.Body).Decode(&views)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for _, v := range views.Requests {
					if v.State != "failed" {
						if _, ok := stateRank[v.State]; !ok {
							t.Errorf("ticket %d observed in unknown state %q", v.ID, v.State)
							return
						}
					}
					if prev, ok := last[v.ID]; ok && !legalObservation(prev, v.State) {
						t.Errorf("ticket %d observed moving %s -> %s; the declared lifecycle has no such path", v.ID, prev, v.State)
						return
					}
					last[v.ID] = v.State
				}
				observations.Add(1)
			}
		}()
	}

	s.Start()
	waitTerminal(t, s, ids...)
	// One more beat so observers can catch the terminal states, then a
	// final validated read after the storm.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if observations.Load() == 0 {
		t.Fatal("observers made no successful polls; the test observed nothing")
	}
	for _, v := range s.views() {
		if v.State != "published" {
			t.Fatalf("ticket %d finished in state %q (error %q), want published", v.ID, v.State, v.Error)
		}
	}
}

// TestPredictReleasesSnapshotOnPanic pins the predict handler's
// resource discipline: the snapshot acquired for inference is released
// on every exit path, including a panic out of SetParams (a
// misconfigured ModelFactory whose architecture does not match the
// published parameters). Predictions race a publish storm, so a leaked
// reference would pin a superseded version and show up as Live() > 1.
func TestPredictReleasesSnapshotOnPanic(t *testing.T) {
	// The factory's architecture disagrees with the system's: SetParams
	// panics after the handler has acquired a snapshot.
	badArch := tinyArch()
	badArch.Width = 8
	s, ts := newTestServer(t, tinyConfig(13), Config{
		Sequential: true,
		ModelFactory: func() *nn.Model {
			return nn.NewConvNet(badArch, rand.New(rand.NewSource(1)))
		},
	})

	good, err := json.Marshal(predictBody{Inputs: [][]float64{make([]float64, 36)}})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := json.Marshal(predictBody{Inputs: [][]float64{make([]float64, 7)}})
	if err != nil {
		t.Fatal(err)
	}

	// Publish storm: sequential batches, one publish per request.
	bodies := []string{
		`{"kind":"class","class":1}`,
		`{"kind":"class","class":2}`,
		`{"kind":"client","client":1}`,
	}
	ids := make([]uint64, len(bodies))
	for i, body := range bodies {
		code, v := postForget(t, ts.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("post %d: status %d, want 202", i, code)
		}
		ids[i] = v.ID
	}
	s.Start()

	// Drive the handler directly (not through httptest) so the panic
	// unwinds into our recover the way net/http's per-connection recovery
	// would catch it, without failing the client connection.
	h := s.Handler()
	var panics atomic.Int64
	var wg sync.WaitGroup
	const workers, calls = 4, 40
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				body := good
				if i%5 == 4 {
					body = bad // error exit path: rejected before Acquire
				}
				func() {
					defer func() {
						if recover() != nil {
							panics.Add(1)
						}
					}()
					rec := httptest.NewRecorder()
					req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusBadRequest {
						t.Errorf("worker %d call %d returned %d without panicking, want 400 or a SetParams panic", w, i, rec.Code)
					}
				}()
			}
		}(w)
	}
	wg.Wait()
	waitTerminal(t, s, ids...)
	s.Drain()

	if panics.Load() == 0 {
		t.Fatal("no predict call panicked; the panic exit path was never exercised")
	}
	// Every acquired snapshot was released: only the current version is
	// live. A missed Release on the panic path would pin whichever
	// superseded version the panicking handler held.
	if live := s.Store().Live(); live != 1 {
		t.Fatalf("Live = %d after the storm, want 1 — a handler exit path leaked its snapshot", live)
	}
}
