package serve

import (
	"strings"
	"testing"

	"quickdrop/internal/telemetry"
	"quickdrop/internal/telemetry/health"
)

// TestServerWatchdogRefusesPublish is the numerics-health end-to-end
// contract: a NaN injected into the model right before the SGA phase
// trips the divergence watchdog, EVERY coalesced ticket fails with the
// watchdog verdict pinned on it, nothing is published, the worker's
// model rewinds bitwise to the served snapshot, the audit trail records
// the verdicts — and after the monitor re-arms, a clean resubmission
// publishes normally.
func TestServerWatchdogRefusesPublish(t *testing.T) {
	pipe := telemetry.NewPipeline(telemetry.NewRegistry(), nil, 3)
	mon := health.New(health.Config{}, pipe)
	cfg := tinyConfig(123)
	cfg.Health = mon
	cfg.PoisonPhase = "unlearn" // fault injection: NaN before SGA
	s, ts := newTestServer(t, cfg, Config{Telemetry: pipe})

	_, v1 := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	_, v2 := postForget(t, ts.URL, `{"kind":"class","class":2}`)
	s.Start()
	waitTerminal(t, s, v1.ID, v2.ID)

	for _, id := range []uint64{v1.ID, v2.ID} {
		tk, _ := s.ticket(id)
		view := tk.View()
		if view.State != "failed" {
			t.Fatalf("ticket %d state %q, want failed", id, view.State)
		}
		if view.Watchdog == "" || !strings.Contains(view.Watchdog, "nan") {
			t.Fatalf("ticket %d watchdog = %q, want a NaN verdict", id, view.Watchdog)
		}
		if view.Version != 0 {
			t.Fatalf("watchdog-failed ticket %d claims published version %d", id, view.Version)
		}
	}
	if st := s.Stats(); st.Published != 0 || st.Failed != 2 || st.ModelVersion != 1 {
		t.Fatalf("published=%d failed=%d version=%d, want 0/2/1 (watchdog must refuse the publish)",
			st.Published, st.Failed, st.ModelVersion)
	}
	if got := pipe.Registry.Summaries()["quickdropd_watchdog_trips_total"].Count; got != 1 {
		t.Fatalf("quickdropd_watchdog_trips_total = %v, want 1", got)
	}

	// The worker rewound its model to the served snapshot bitwise — in
	// particular the planted NaN is gone.
	snap := s.Store().Acquire()
	cur := s.sys.Model.CloneParams()
	for i, p := range snap.Params() {
		want, got := p.Data(), cur[i].Data()
		for j := range want {
			if want[j] != got[j] {
				snap.Release()
				t.Fatalf("param %d[%d]: model %v != snapshot %v — model not restored after watchdog trip",
					i, j, got[j], want[j])
			}
		}
	}
	snap.Release()

	// Audit entries carry the watchdog verdict.
	entries := pipe.Audit.Entries()
	if len(entries) != 2 {
		t.Fatalf("%d audit entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Status != "failed" || e.Watchdog == "" {
			t.Fatalf("audit entry %+v should record the watchdog verdict", e)
		}
	}

	// The worker re-armed the monitor after the rewind; with the fault
	// injection cleared, the same request executes and publishes.
	if mon.Tripped() {
		t.Fatal("worker must Reset the monitor after restoring the model")
	}
	s.sys.Cfg.PoisonPhase = ""
	_, v3 := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	waitTerminal(t, s, v3.ID)
	tk, _ := s.ticket(v3.ID)
	if view := tk.View(); view.State != "published" || view.Version != 2 || view.Watchdog != "" {
		t.Fatalf("resubmission after re-arm: %+v, want published at version 2 with no watchdog verdict", view)
	}
	if h := mon.Summary(); h == nil || !h.Tripped || h.Trips != 1 || !h.Healthy {
		t.Fatalf("manifest health summary %+v: trip history must survive, current state healthy", h)
	}
}
