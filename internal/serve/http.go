package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"quickdrop/internal/core"
	"quickdrop/internal/nn"
	"quickdrop/internal/telemetry"
	"quickdrop/internal/tensor"
)

// RequestBody is the wire form of a core.Request, used both in ticket
// views and (extended with Wait) as the POST /v1/forget payload.
type RequestBody struct {
	Kind    string `json:"kind"`
	Class   *int   `json:"class,omitempty"`
	Client  *int   `json:"client,omitempty"`
	Samples []int  `json:"samples,omitempty"`
}

// requestBody projects a core.Request onto its wire form.
func requestBody(r core.Request) RequestBody {
	b := RequestBody{Kind: kindName(r.Kind)}
	switch r.Kind {
	case core.ClassLevel:
		c := r.Class
		b.Class = &c
	case core.ClientLevel:
		c := r.Client
		b.Client = &c
	case core.SampleLevel:
		c := r.Client
		b.Client = &c
		b.Samples = r.Samples
	}
	return b
}

// ForgetRequest is the POST /v1/forget body: a RequestBody plus Wait,
// which blocks the response until the request reaches a terminal state
// instead of returning 202 immediately.
type ForgetRequest struct {
	RequestBody
	Wait bool `json:"wait,omitempty"`
}

// toCore validates the body against the system's immutable bounds and
// converts it. Only static checks happen here — the forget ledger
// belongs to the worker, so "already unlearned" and "matches no
// synthetic data" surface on the ticket, not at submission.
func (f ForgetRequest) toCore(classes, clients int) (core.Request, error) {
	switch f.Kind {
	case "class":
		if f.Class == nil {
			return core.Request{}, errors.New(`"class" is required for kind "class"`)
		}
		if *f.Class < 0 || *f.Class >= classes {
			return core.Request{}, fmt.Errorf("class %d out of range [0,%d)", *f.Class, classes)
		}
		return core.Request{Kind: core.ClassLevel, Class: *f.Class}, nil
	case "client":
		if f.Client == nil {
			return core.Request{}, errors.New(`"client" is required for kind "client"`)
		}
		if *f.Client < 0 || *f.Client >= clients {
			return core.Request{}, fmt.Errorf("client %d out of range [0,%d)", *f.Client, clients)
		}
		return core.Request{Kind: core.ClientLevel, Client: *f.Client}, nil
	case "sample":
		if f.Client == nil {
			return core.Request{}, errors.New(`"client" is required for kind "sample"`)
		}
		if *f.Client < 0 || *f.Client >= clients {
			return core.Request{}, fmt.Errorf("client %d out of range [0,%d)", *f.Client, clients)
		}
		if len(f.Samples) == 0 {
			return core.Request{}, errors.New(`"samples" must be non-empty for kind "sample"`)
		}
		for _, s := range f.Samples {
			if s < 0 {
				return core.Request{}, fmt.Errorf("negative sample index %d", s)
			}
		}
		return core.Request{Kind: core.SampleLevel, Client: *f.Client, Samples: f.Samples}, nil
	default:
		return core.Request{}, fmt.Errorf("unknown kind %q (want class, client, or sample)", f.Kind)
	}
}

// routes mounts the /v1 API and the telemetry surface on the mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/forget", s.handleForget)
	s.mux.HandleFunc("GET /v1/requests", s.handleRequests)
	s.mux.HandleFunc("GET /v1/requests/{id}", s.handleRequest)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	telemetry.Register(s.mux, s.cfg.Telemetry)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The client hanging up mid-body is its problem, not ours.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleForget(w http.ResponseWriter, r *http.Request) {
	var body ForgetRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	req, err := body.toCore(s.sys.Model.Classes, s.sys.Clients.NumClients())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t, err := s.submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrQueueClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if body.Wait {
		select {
		case <-t.Done():
		case <-r.Context().Done():
			// The submitter hung up; the request still executes — a
			// deletion, once accepted, is not cancelable by disconnect.
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
		writeJSON(w, http.StatusOK, t.View())
		return
	}
	writeJSON(w, http.StatusAccepted, t.View())
}

func (s *Server) handleRequests(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"requests": s.views()})
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	t, ok := s.ticket(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no request %d", id))
		return
	}
	writeJSON(w, http.StatusOK, t.View())
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	snap := s.store.Acquire()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no model published"))
		return
	}
	defer snap.Release()
	writeJSON(w, http.StatusOK, map[string]any{
		"version":          snap.Version(),
		"stamp_unix_nanos": snap.Stamp(),
		"live_snapshots":   s.store.Live(),
	})
}

// predictBody is the POST /v1/predict payload: each input is a flat
// row-major [H*W*C] sample.
type predictBody struct {
	Inputs [][]float64 `json:"inputs"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.evalPool.New == nil {
		writeError(w, http.StatusNotImplemented, errors.New("prediction disabled: no model factory configured"))
		return
	}
	var body predictBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if len(body.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`"inputs" must be non-empty`))
		return
	}
	shape := s.sys.Model.InputShape
	want := shape[0] * shape[1] * shape[2]
	x := tensor.New(len(body.Inputs), shape[0], shape[1], shape[2])
	flat := x.Data()
	for i, in := range body.Inputs {
		if len(in) != want {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("input %d has %d values, want %d (%dx%dx%d)", i, len(in), want, shape[0], shape[1], shape[2]))
			return
		}
		copy(flat[i*want:(i+1)*want], in)
	}

	// Readers never block on the worker: Acquire pins the current
	// version's refcount, the worker publishes the next version
	// concurrently, and Release reclaims ours once we are done.
	snap := s.store.Acquire()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no model published"))
		return
	}
	defer snap.Release()

	m := s.evalPool.Get().(*nn.Model)
	// Deferred so a panicking SetParams/Predict (e.g. a misconfigured
	// ModelFactory's shape mismatch) cannot leak the model from the
	// pool; reuse always overwrites the params, so returning a model
	// mid-write is safe.
	defer s.evalPool.Put(m)
	m.SetParams(snap.Params())
	pred := m.Predict(x)

	writeJSON(w, http.StatusOK, map[string]any{
		"version":     snap.Version(),
		"predictions": pred,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
