package serve

import (
	"strings"
	"sync"
	"testing"

	"quickdrop/internal/tensor"
)

// fill returns a one-tensor parameter set whose every element is v —
// readers can detect torn snapshots by checking uniformity.
func fill(v float64) []*tensor.Tensor {
	p := tensor.New(8)
	d := p.Data()
	for i := range d {
		d[i] = v
	}
	return []*tensor.Tensor{p}
}

func TestSnapshotStoreVersioning(t *testing.T) {
	st := NewSnapshotStore()
	if sn := st.Acquire(); sn != nil {
		t.Fatal("Acquire on empty store should return nil")
	}
	if v := st.Publish(fill(1)); v != 1 {
		t.Fatalf("first publish version %d, want 1", v)
	}
	if v := st.Publish(fill(2)); v != 2 {
		t.Fatalf("second publish version %d, want 2", v)
	}
	sn := st.Acquire()
	if sn.Version() != 2 || sn.Params()[0].Data()[0] != 2 {
		t.Fatalf("acquired version %d with value %v, want 2/2", sn.Version(), sn.Params()[0].Data()[0])
	}
	sn.Release()
	if st.Version() != 2 {
		t.Fatalf("store version %d, want 2", st.Version())
	}
}

// TestSnapshotReclamation pins the copy-on-write lifetime rules: a
// superseded version lives while a reader holds it and is reclaimed
// (params freed, live count decremented) on the last release.
func TestSnapshotReclamation(t *testing.T) {
	st := NewSnapshotStore()
	st.Publish(fill(1))
	old := st.Acquire() // reader pins v1
	st.Publish(fill(2)) // store drops its v1 ref; reader keeps it alive
	if st.Live() != 2 {
		t.Fatalf("Live = %d with a pinned superseded version, want 2", st.Live())
	}
	if old.Params()[0].Data()[0] != 1 {
		t.Fatal("pinned snapshot no longer readable after supersession")
	}
	old.Release()
	if st.Live() != 1 {
		t.Fatalf("Live = %d after last release of v1, want 1", st.Live())
	}
	if old.params != nil {
		t.Fatal("reclaimed snapshot still holds its params")
	}
	// The current version is never reclaimed out from under the store.
	cur := st.Acquire()
	if cur == nil || cur.Version() != 2 {
		t.Fatalf("current version unavailable after reclamation: %v", cur)
	}
	cur.Release()
	if st.Live() != 1 {
		t.Fatalf("Live = %d after releasing a reader of the current version, want 1", st.Live())
	}
}

func TestSnapshotNilRelease(t *testing.T) {
	var sn *Snapshot
	sn.Release() // must not panic: readers defer Release on Acquire() == nil
}

// TestSnapshotConcurrentReaders runs readers against a publisher under
// the race detector: acquisitions never block, never observe a torn
// parameter set, and every superseded version is reclaimed once the
// readers finish.
func TestSnapshotOverReleasePanics(t *testing.T) {
	st := NewSnapshotStore()
	st.Publish(fill(1))
	sn := st.Acquire()
	st.Publish(fill(2)) // supersede v1: the store drops its own reference
	sn.Release()        // last reference: v1 is reclaimed
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Release did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "over-released") || !strings.Contains(msg, "Acquire must pair with exactly one Release") {
			t.Fatalf("panic message %v does not describe the over-release", r)
		}
		if got := sn.refs.Load(); got != 0 {
			t.Fatalf("refcount corrupted to %d by the failed Release, want 0", got)
		}
	}()
	sn.Release()
}

func TestSnapshotConcurrentReaders(t *testing.T) {
	st := NewSnapshotStore()
	st.Publish(fill(1))

	const versions, readers, reads = 200, 4, 500
	var wg sync.WaitGroup
	wg.Add(readers + 1)
	go func() {
		defer wg.Done()
		for v := 2; v <= versions; v++ {
			st.Publish(fill(float64(v)))
		}
	}()
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				sn := st.Acquire()
				if sn == nil {
					t.Error("Acquire returned nil after first publish")
					return
				}
				d := sn.Params()[0].Data()
				want := float64(sn.Version())
				for _, got := range d {
					if got != want {
						t.Errorf("torn snapshot: version %d holds value %v", sn.Version(), got)
						sn.Release()
						return
					}
				}
				sn.Release()
			}
		}()
	}
	wg.Wait()

	if st.Version() != versions {
		t.Fatalf("final version %d, want %d", st.Version(), versions)
	}
	if st.Live() != 1 {
		t.Fatalf("Live = %d after all readers released, want 1 (only the current version)", st.Live())
	}
}
