package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/distill"
	"quickdrop/internal/nn"
	"quickdrop/internal/telemetry"
)

// tinyArch is small enough that full train/unlearn cycles stay fast
// under the race detector (this package is raced without -short).
func tinyArch() nn.ConvNetConfig {
	return nn.ConvNetConfig{InputH: 6, InputW: 6, InputC: 1, Classes: 4, Width: 4, Depth: 1}
}

func tinyConfig(seed int64) core.Config {
	return core.Config{
		Arch:    tinyArch(),
		Train:   core.PhaseParams{Rounds: 2, LocalSteps: 2, BatchSize: 8, LR: 0.1},
		Unlearn: core.PhaseParams{Rounds: 1, LocalSteps: 2, BatchSize: 8, LR: 0.02},
		Recover: core.PhaseParams{Rounds: 1, LocalSteps: 2, BatchSize: 8, LR: 0.01},
		Relearn: core.PhaseParams{Rounds: 1, LocalSteps: 2, BatchSize: 8, LR: 0.01},
		Distill: distill.Config{Scale: 2, Steps: 1, LR: 0.1, RealBatch: 8, Eps: 1e-6},
		Augment: true,
		Seed:    seed,
	}
}

// tinySystem trains a 3-client system on a 4-class procedural dataset
// in well under a second.
func tinySystem(t testing.TB, cfg core.Config) (*core.System, *data.Dataset) {
	t.Helper()
	spec := data.Spec{Name: "tiny", H: 6, W: 6, C: 1, Classes: 4,
		TrainPerClass: 8, TestPerClass: 4, Noise: 0.1, Jitter: 1}
	train, test := data.Generate(spec, 5)
	parts := data.PartitionIID(train, 3, rand.New(rand.NewSource(6)))
	sys, err := core.NewSystem(cfg, data.NewCohort(parts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		t.Fatal(err)
	}
	return sys, test
}

func newTestServer(t testing.TB, cfg core.Config, serveCfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sys, test := tinySystem(t, cfg)
	serveCfg.System = sys
	if serveCfg.Evaluator == nil {
		serveCfg.Evaluator = CohortEvaluator{Clients: sys.Clients, Test: test}
	}
	if serveCfg.ModelFactory == nil {
		serveCfg.ModelFactory = func() *nn.Model {
			return nn.NewConvNet(tinyArch(), rand.New(rand.NewSource(1)))
		}
	}
	s := New(serveCfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain()
		ts.Close()
	})
	return s, ts
}

func postForget(t testing.TB, url string, body string) (int, View) {
	t.Helper()
	resp, err := http.Post(url+"/v1/forget", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, v
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func waitTerminal(t testing.TB, s *Server, ids ...uint64) {
	t.Helper()
	for _, id := range ids {
		tk, ok := s.ticket(id)
		if !ok {
			t.Fatalf("no ticket %d", id)
		}
		select {
		case <-tk.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("ticket %d stuck in state %v", id, tk.State())
		}
	}
}

// TestServerCoalescesConcurrentRequests is the end-to-end contract:
// K concurrent posts collapse into ONE batched SGA+recovery pass, the
// result publishes as a single new snapshot version, and every request
// carries its own audit entry with before/after accuracies.
func TestServerCoalescesConcurrentRequests(t *testing.T) {
	pipe := telemetry.NewPipeline(telemetry.NewRegistry(), nil, 3)
	s, ts := newTestServer(t, tinyConfig(9), Config{Telemetry: pipe})

	// Concurrent submissions while the worker is not yet running: they
	// pile up in the queue and must coalesce into exactly one batch.
	bodies := []string{
		`{"kind":"class","class":1}`,
		`{"kind":"class","class":2}`,
		`{"kind":"client","client":0}`,
	}
	ids := make([]uint64, len(bodies))
	var wg sync.WaitGroup
	wg.Add(len(bodies))
	for i, body := range bodies {
		go func(i int, body string) {
			defer wg.Done()
			code, v := postForget(t, ts.URL, body)
			if code != http.StatusAccepted {
				t.Errorf("post %d: status %d, want 202", i, code)
				return
			}
			if v.State != "queued" {
				t.Errorf("post %d: state %q, want queued", i, v.State)
			}
			ids[i] = v.ID
		}(i, body)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	s.Start()
	waitTerminal(t, s, ids...)

	var views struct {
		Requests []View `json:"requests"`
	}
	if code := getJSON(t, ts.URL+"/v1/requests", &views); code != http.StatusOK {
		t.Fatalf("/v1/requests status %d", code)
	}
	if len(views.Requests) != 3 {
		t.Fatalf("%d requests listed, want 3", len(views.Requests))
	}
	for _, v := range views.Requests {
		if v.State != "published" {
			t.Fatalf("request %d state %q (error %q), want published", v.ID, v.State, v.Error)
		}
		if v.Batch != 1 {
			t.Fatalf("request %d ran in batch %d, want 1 (coalesced)", v.ID, v.Batch)
		}
		if v.Version != 2 {
			t.Fatalf("request %d published version %d, want 2", v.ID, v.Version)
		}
	}

	st := s.Stats()
	if st.Batches != 1 {
		t.Fatalf("%d batches executed, want 1", st.Batches)
	}
	if st.Published != 3 || st.Failed != 0 {
		t.Fatalf("published=%d failed=%d, want 3/0", st.Published, st.Failed)
	}
	if st.ModelVersion != 2 {
		t.Fatalf("model version %d, want 2 (initial + one coalesced publish)", st.ModelVersion)
	}

	// One audit entry per request, before/after accuracies populated,
	// folded into the run-ledger manifest.
	entries := pipe.Audit.Entries()
	if len(entries) != 3 {
		t.Fatalf("%d audit entries, want 3", len(entries))
	}
	for _, e := range entries {
		if e.Status != "published" || e.Batch != 1 || e.Version != 2 {
			t.Fatalf("audit entry %+v: want published/batch 1/version 2", e)
		}
	}
	man := telemetry.BuildManifest(pipe, "serve-test", 9, nil)
	if len(man.Audit) != 3 {
		t.Fatalf("manifest carries %d audit entries, want 3", len(man.Audit))
	}
}

// TestServerArrivalOrderIndependence pins the canonical-batch-order
// guarantee: the same request set posted in opposite orders publishes
// bitwise-identical model parameters.
func TestServerArrivalOrderIndependence(t *testing.T) {
	run := func(bodies []string) []float64 {
		s, ts := newTestServer(t, tinyConfig(21), Config{})
		ids := make([]uint64, len(bodies))
		for i, b := range bodies {
			code, v := postForget(t, ts.URL, b)
			if code != http.StatusAccepted {
				t.Fatalf("post: status %d", code)
			}
			ids[i] = v.ID
		}
		s.Start()
		waitTerminal(t, s, ids...)
		snap := s.Store().Acquire()
		defer snap.Release()
		if snap.Version() != 2 {
			t.Fatalf("version %d, want 2", snap.Version())
		}
		var flat []float64
		for _, p := range snap.Params() {
			flat = append(flat, p.Data()...)
		}
		return flat
	}

	a := run([]string{`{"kind":"class","class":1}`, `{"kind":"client","client":2}`, `{"kind":"class","class":3}`})
	b := run([]string{`{"kind":"class","class":3}`, `{"kind":"class","class":1}`, `{"kind":"client","client":2}`})
	if len(a) != len(b) {
		t.Fatalf("parameter counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs across arrival orders: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestServerRejectsConcurrentDirectUnlearn drives the ErrBusy guard
// through the server path: while the worker holds the System inside a
// batch, a direct Unlearn from another goroutine is rejected.
func TestServerRejectsConcurrentDirectUnlearn(t *testing.T) {
	inUnlearn := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	cfg := tinyConfig(33)
	cfg.Observer = func(stage string) {
		if stage != "unlearn" {
			return
		}
		once.Do(func() {
			inUnlearn <- struct{}{}
			<-proceed
		})
	}
	s, ts := newTestServer(t, cfg, Config{})
	code, v := postForget(t, ts.URL, `{"kind":"class","class":0}`)
	if code != http.StatusAccepted {
		t.Fatalf("post: status %d", code)
	}
	s.Start()

	<-inUnlearn // worker is mid-batch, guard held
	_, err := s.sys.Unlearn(core.Request{Kind: core.ClassLevel, Class: 1})
	if !errors.Is(err, core.ErrBusy) {
		t.Errorf("direct Unlearn during batch: got %v, want core.ErrBusy", err)
	}
	close(proceed)
	waitTerminal(t, s, v.ID)
	if tk, _ := s.ticket(v.ID); tk.State() != StatePublished {
		t.Fatalf("ticket state %v, want published", tk.State())
	}
}

// TestServerRejectedAndFailedRequests covers per-request rejection
// inside an otherwise-successful batch, plus submission-time 400s.
func TestServerRejectedAndFailedRequests(t *testing.T) {
	s, ts := newTestServer(t, tinyConfig(41), Config{})

	for _, bad := range []string{
		`{"kind":"class"}`,
		`{"kind":"class","class":99}`,
		`{"kind":"client","client":-1}`,
		`{"kind":"sample","client":0}`,
		`{"kind":"nope"}`,
		`not json`,
	} {
		if code, _ := postForget(t, ts.URL, bad); code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, code)
		}
	}

	// A duplicate inside the coalesced batch is rejected; the other
	// requests still publish.
	_, v1 := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	_, v2 := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	_, v3 := postForget(t, ts.URL, `{"kind":"class","class":2}`)
	s.Start()
	waitTerminal(t, s, v1.ID, v2.ID, v3.ID)

	states := map[string]int{}
	for _, id := range []uint64{v1.ID, v2.ID, v3.ID} {
		tk, _ := s.ticket(id)
		states[tk.State().String()]++
	}
	if states["published"] != 2 || states["failed"] != 1 {
		t.Fatalf("states %v, want 2 published + 1 failed", states)
	}
	st := s.Stats()
	if st.Published != 2 || st.Failed != 1 {
		t.Fatalf("stats published=%d failed=%d, want 2/1", st.Published, st.Failed)
	}
}

// TestServerPhaseFailureFailsTicketsAndRestoresModel injects a
// recovery-phase failure into a coalesced batch and pins the failure
// contract: every accepted ticket fails with the phase error (the
// audit trail must NOT record completed deletions), nothing is
// published, the worker's model is rewound bitwise to the last
// published snapshot, and — because core rolls the forget ledger back
// — the same requests succeed once the fault is fixed.
func TestServerPhaseFailureFailsTicketsAndRestoresModel(t *testing.T) {
	pipe := telemetry.NewPipeline(telemetry.NewRegistry(), nil, 3)
	cfg := tinyConfig(99)
	cfg.Recover.LR = -1 // SGA succeeds, then the recovery phase fails
	s, ts := newTestServer(t, cfg, Config{Telemetry: pipe})

	_, v1 := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	_, v2 := postForget(t, ts.URL, `{"kind":"class","class":2}`)
	s.Start()
	waitTerminal(t, s, v1.ID, v2.ID)

	for _, id := range []uint64{v1.ID, v2.ID} {
		tk, _ := s.ticket(id)
		view := tk.View()
		if view.State != "failed" {
			t.Fatalf("ticket %d state %q, want failed", id, view.State)
		}
		if !strings.Contains(view.Error, "recovery phase") {
			t.Fatalf("ticket %d error %q, want the recovery-phase error", id, view.Error)
		}
		if view.Version != 0 {
			t.Fatalf("failed ticket %d claims published version %d", id, view.Version)
		}
	}
	if st := s.Stats(); st.Published != 0 || st.Failed != 2 || st.ModelVersion != 1 {
		t.Fatalf("published=%d failed=%d version=%d, want 0/2/1 (no publish on phase failure)",
			st.Published, st.Failed, st.ModelVersion)
	}

	// The worker's in-memory model must match the served snapshot
	// bitwise — a half-recovered model left in place would silently
	// poison the next batch.
	snap := s.Store().Acquire()
	defer snap.Release()
	cur := s.sys.Model.CloneParams()
	for i, p := range snap.Params() {
		want, got := p.Data(), cur[i].Data()
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("param %d[%d]: model %v != snapshot %v — model not restored after phase failure",
					i, j, got[j], want[j])
			}
		}
	}

	// The audit trail records the failures, not phantom deletions.
	entries := pipe.Audit.Entries()
	if len(entries) != 2 {
		t.Fatalf("%d audit entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Status != "failed" || e.Err == "" {
			t.Fatalf("audit entry %+v records a deletion that never completed", e)
		}
	}

	// Heal the config and resubmit one of the SAME requests: the
	// rolled-back ledger must accept it, and it publishes version 2.
	s.sys.Cfg.Recover.LR = 0.01
	_, v3 := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	waitTerminal(t, s, v3.ID)
	tk, _ := s.ticket(v3.ID)
	if view := tk.View(); view.State != "published" || view.Version != 2 {
		t.Fatalf("resubmission after heal: %+v, want published at version 2", view)
	}
}

// TestServerQueueFullTicketsNotRetained pins the memory bound on the
// ticket index: submissions bounced at the door (429) are failed and
// returned to the caller but never registered, so a client hammering
// a saturated queue cannot grow the daemon without bound.
func TestServerQueueFullTicketsNotRetained(t *testing.T) {
	s, ts := newTestServer(t, tinyConfig(44), Config{QueueCap: 1})
	// Worker not started: the first post fills the queue, the rest bounce.
	code, v := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("first post: status %d, want 202", code)
	}
	for i := 0; i < 5; i++ {
		if code, _ := postForget(t, ts.URL, `{"kind":"class","class":2}`); code != http.StatusTooManyRequests {
			t.Fatalf("post %d into full queue: status %d, want 429", i, code)
		}
	}
	views := s.views()
	if len(views) != 1 || views[0].ID != v.ID {
		t.Fatalf("ticket index holds %d entries, want only the accepted ticket %d", len(views), v.ID)
	}
	if _, ok := s.ticket(v.ID + 1); ok {
		t.Fatal("a 429-rejected ticket was retained in the index")
	}
}

// TestServerStartAfterDrainRefuses pins the Start/Drain ordering: a
// Start issued after Drain must not launch a worker that Drain
// already decided not to wait for.
func TestServerStartAfterDrainRefuses(t *testing.T) {
	s, _ := newTestServer(t, tinyConfig(3), Config{})
	s.Drain()
	s.Start()
	if s.started.Load() {
		t.Fatal("Start launched a worker after Drain returned")
	}
}

// TestServerWaitAndSequential exercises wait=true through a sequential
// (non-coalescing) server: each request runs in its own batch.
func TestServerWaitAndSequential(t *testing.T) {
	s, ts := newTestServer(t, tinyConfig(55), Config{Sequential: true})
	s.Start()

	code, v := postForget(t, ts.URL, `{"kind":"class","class":1,"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("wait post: status %d, want 200", code)
	}
	if v.State != "published" || v.Version != 2 || v.Batch != 1 {
		t.Fatalf("wait view %+v, want published in batch 1 at version 2", v)
	}
	code, v = postForget(t, ts.URL, `{"kind":"class","class":2,"wait":true}`)
	if code != http.StatusOK || v.Batch != 2 || v.Version != 3 {
		t.Fatalf("second wait view %+v (status %d), want batch 2 version 3", v, code)
	}
}

// TestServerPredictAndModel exercises the read path: /v1/model and
// /v1/predict serve from the snapshot store and never 5xx while
// unlearning runs.
func TestServerPredictAndModel(t *testing.T) {
	s, ts := newTestServer(t, tinyConfig(66), Config{})
	s.Start()

	var model map[string]any
	if code := getJSON(t, ts.URL+"/v1/model", &model); code != http.StatusOK {
		t.Fatalf("/v1/model status %d", code)
	}
	if v := model["version"].(float64); v != 1 {
		t.Fatalf("model version %v, want 1", v)
	}

	sample := make([]float64, 6*6)
	body, _ := json.Marshal(map[string]any{"inputs": [][]float64{sample, sample}})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewBuffer(body))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		Version     uint64 `json:"version"`
		Predictions []int  `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(pred.Predictions) != 2 {
		t.Fatalf("predict: status %d predictions %v", resp.StatusCode, pred.Predictions)
	}

	// Wrong input size is a 400, not a panic.
	body, _ = json.Marshal(map[string]any{"inputs": [][]float64{make([]float64, 5)}})
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewBuffer(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input: status %d, want 400", resp.StatusCode)
	}
}

// TestServerDrain checks graceful shutdown: queued work completes,
// new submissions get 503, Drain is idempotent.
func TestServerDrain(t *testing.T) {
	s, ts := newTestServer(t, tinyConfig(77), Config{})
	_, v := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	s.Start()
	waitTerminal(t, s, v.ID)

	s.Drain()
	if code, _ := postForget(t, ts.URL, `{"kind":"class","class":2}`); code != http.StatusServiceUnavailable {
		t.Fatalf("post after drain: status %d, want 503", code)
	}
	var st Stats
	if code := getJSON(t, ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("/v1/status status %d", code)
	}
	if !st.Draining {
		t.Fatal("status should report draining")
	}
	s.Drain() // idempotent
}

// TestServerLingerCoalesces verifies the linger window: requests
// posted shortly AFTER the worker picks up the first one still fold
// into the same batch.
func TestServerLingerCoalesces(t *testing.T) {
	s, ts := newTestServer(t, tinyConfig(88), Config{Linger: 500 * time.Millisecond})
	s.Start()

	_, v1 := postForget(t, ts.URL, `{"kind":"class","class":1}`)
	time.Sleep(50 * time.Millisecond) // worker has dequeued v1 and is lingering
	_, v2 := postForget(t, ts.URL, `{"kind":"class","class":2}`)
	waitTerminal(t, s, v1.ID, v2.ID)

	t1, _ := s.ticket(v1.ID)
	t2, _ := s.ticket(v2.ID)
	b1, b2 := t1.View().Batch, t2.View().Batch
	if b1 != 1 || b2 != 1 {
		t.Fatalf("batches %d and %d, want both in batch 1 (lingered coalescing)", b1, b2)
	}
	if s.Stats().Batches != 1 {
		t.Fatalf("%d batches, want 1", s.Stats().Batches)
	}
}

// TestRequestBodyRoundTrip pins the wire form of each request kind.
func TestRequestBodyRoundTrip(t *testing.T) {
	cases := []core.Request{
		{Kind: core.ClassLevel, Class: 3},
		{Kind: core.ClientLevel, Client: 2},
		{Kind: core.SampleLevel, Client: 1, Samples: []int{4, 5}},
	}
	for _, req := range cases {
		b := requestBody(req)
		back, err := ForgetRequest{RequestBody: b}.toCore(10, 10)
		if err != nil {
			t.Fatalf("%v: %v", req, err)
		}
		if fmt.Sprint(back) != fmt.Sprint(req) {
			t.Fatalf("round trip %v → %v", req, back)
		}
	}
}
