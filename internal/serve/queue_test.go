package serve

import (
	"errors"
	"sync"
	"testing"

	"quickdrop/internal/core"
)

func tkt(id uint64) *Ticket {
	return newTicket(id, core.Request{Kind: core.ClassLevel, Class: int(id)})
}

func TestQueueBounds(t *testing.T) {
	q := NewQueue(2)
	if err := q.Enqueue(tkt(1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(tkt(2)); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(tkt(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue: got %v, want ErrQueueFull", err)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestQueueTakeAllAndOrder(t *testing.T) {
	q := NewQueue(8)
	for id := uint64(1); id <= 4; id++ {
		if err := q.Enqueue(tkt(id)); err != nil {
			t.Fatal(err)
		}
	}
	first, ok := q.Wait()
	if !ok || first.ID != 1 {
		t.Fatalf("Wait = %v, %v; want ticket 1", first, ok)
	}
	rest := q.TakeAll()
	if len(rest) != 3 || rest[0].ID != 2 || rest[2].ID != 4 {
		t.Fatalf("TakeAll returned %d items in wrong order", len(rest))
	}
	if q.TakeAll() != nil {
		t.Fatal("TakeAll on empty queue should return nil")
	}
}

func TestQueueCloseDrainsBacklog(t *testing.T) {
	q := NewQueue(8)
	if err := q.Enqueue(tkt(1)); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if err := q.Enqueue(tkt(2)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("enqueue after close: got %v, want ErrQueueClosed", err)
	}
	// The backlog survives Close: drain semantics.
	if got, ok := q.Wait(); !ok || got.ID != 1 {
		t.Fatalf("Wait after close = %v, %v; want backlog ticket", got, ok)
	}
	if _, ok := q.Wait(); ok {
		t.Fatal("Wait on closed empty queue should report done")
	}
}

// TestQueueConcurrent hammers producers against a consumer under the
// race detector: every successfully enqueued ticket is consumed
// exactly once and the consumer observes closure.
func TestQueueConcurrent(t *testing.T) {
	q := NewQueue(64)
	const producers, perProducer = 8, 32

	var wg sync.WaitGroup
	var accepted, rejected int64
	var mu sync.Mutex
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				err := q.Enqueue(tkt(uint64(p*perProducer + i)))
				mu.Lock()
				if err == nil {
					accepted++
				} else {
					rejected++
				}
				mu.Unlock()
			}
		}(p)
	}

	consumed := make(chan int64, 1)
	go func() {
		var n int64
		for {
			if _, ok := q.Wait(); !ok {
				consumed <- n
				return
			}
			n++
		}
	}()

	wg.Wait()
	q.Close()
	got := <-consumed
	mu.Lock()
	want := accepted
	mu.Unlock()
	if got != want {
		t.Fatalf("consumed %d tickets, want %d (rejected %d)", got, want, rejected)
	}
}
