package serve

import (
	"fmt"
	"sync/atomic"

	"quickdrop/internal/telemetry"
	"quickdrop/internal/tensor"
)

// Snapshot is one immutable published model version. Readers acquire a
// snapshot from the store, use its parameter tensors (read-only — the
// tensors are never written again after publish), and release it; the
// last release of a superseded version reclaims it.
type Snapshot struct {
	version uint64
	stamp   int64 // telemetry-clock nanos at publish
	params  []*tensor.Tensor
	// refs counts the store's own reference (dropped when a newer
	// version supersedes this one) plus one per outstanding reader.
	// A snapshot whose count reaches zero is dead and never revived.
	refs atomic.Int64
	st   *SnapshotStore
}

// Version returns the snapshot's monotonically increasing version.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Stamp returns the publish time in telemetry-clock nanoseconds.
func (sn *Snapshot) Stamp() int64 { return sn.stamp }

// Params returns the immutable parameter tensors. Callers must hold
// the acquisition (not yet have called Release) and must not mutate.
func (sn *Snapshot) Params() []*tensor.Tensor { return sn.params }

// tryRef takes a reference unless the snapshot is already dead.
func (sn *Snapshot) tryRef() bool {
	for {
		r := sn.refs.Load()
		if r <= 0 {
			return false
		}
		if sn.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference. When the last reference of a superseded
// version drops, the version is reclaimed: its parameter memory is
// released and the store's live count decremented. Nil-safe, so
// readers can defer Release on a possibly-nil acquisition.
//
// An over-release panics before touching the count: a blind decrement
// would let the refcount go negative, after which a concurrent tryRef
// CAS could resurrect a reclaimed snapshot. The CAS loop keeps the
// count truthful even when the extra Release races correct ones.
//
//lint:resource release snapshot
func (sn *Snapshot) Release() {
	if sn == nil {
		return
	}
	for {
		r := sn.refs.Load()
		if r <= 0 {
			panic(fmt.Sprintf("serve: Snapshot version %d over-released (refcount %d); every Acquire must pair with exactly one Release", sn.version, r))
		}
		if !sn.refs.CompareAndSwap(r, r-1) {
			continue
		}
		if r == 1 {
			// No reader holds the snapshot and the store has moved on:
			// no path can reach the params again (tryRef refuses refs
			// <= 0), so dropping the slice frees the version's memory
			// now instead of when the last *Snapshot pointer is
			// collected.
			sn.params = nil
			sn.st.live.Add(-1)
		}
		return
	}
}

// SnapshotStore is a copy-on-write store of versioned model
// parameters. One writer publishes immutable versions; any number of
// readers acquire the current version without ever blocking on the
// writer (or each other): publish is an atomic pointer swap, acquire
// is a load plus a refcount increment. Old versions live until their
// last reader releases them, so an in-flight inference keeps its model
// while unlearning publishes the next one.
type SnapshotStore struct {
	cur     atomic.Pointer[Snapshot]
	version atomic.Uint64
	live    atomic.Int64
}

// NewSnapshotStore returns an empty store; Acquire returns nil until
// the first Publish.
func NewSnapshotStore() *SnapshotStore { return &SnapshotStore{} }

// Publish installs params as the next model version and returns its
// version number. The store takes ownership of params — the caller
// must pass a deep copy (e.g. Model.CloneParams()) and never write to
// it afterwards. The superseded version is reclaimed once its last
// reader releases it.
func (st *SnapshotStore) Publish(params []*tensor.Tensor) uint64 {
	sn := &Snapshot{
		version: st.version.Add(1),
		stamp:   telemetry.Now(),
		params:  params,
		st:      st,
	}
	sn.refs.Store(1) // the store's own reference
	st.live.Add(1)
	if old := st.cur.Swap(sn); old != nil {
		old.Release()
	}
	return sn.version
}

// Acquire returns the current version with a reference held, or nil
// if nothing has been published. It never blocks: a concurrent
// Publish at worst costs one retry when the loaded version died
// between the load and the refcount increment.
//
//lint:resource acquire snapshot
func (st *SnapshotStore) Acquire() *Snapshot {
	for {
		sn := st.cur.Load()
		if sn == nil {
			return nil
		}
		if sn.tryRef() {
			return sn
		}
	}
}

// Version returns the latest published version (0 before the first).
func (st *SnapshotStore) Version() uint64 { return st.version.Load() }

// Live returns how many published versions are not yet reclaimed: the
// current one plus any superseded versions still held by readers.
func (st *SnapshotStore) Live() int { return int(st.live.Load()) }
