// Package serve turns a trained QuickDrop system into an
// unlearning-as-a-service daemon. Forget requests arrive over
// HTTP/JSON, queue into a bounded buffer, and a single worker drains
// the whole backlog into ONE coalesced SGA + recovery pass
// (core.System.UnlearnBatch), amortizing recovery — the expensive
// stage — across every pending deletion the same way the paper
// amortizes distillation across training. Each pass publishes an
// immutable copy-on-write model snapshot; inference reads never block
// on unlearning, and every request leaves a before/after forget-set
// accuracy entry in the run-ledger audit trail.
package serve

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/nn"
	"quickdrop/internal/telemetry"
)

// DefaultQueueCap bounds the request queue when Config.QueueCap is 0.
const DefaultQueueCap = 256

// Config assembles a Server.
type Config struct {
	// System is the trained QuickDrop system the worker mutates. The
	// server owns it exclusively once Start is called — concurrent
	// callers going around the queue are rejected with core.ErrBusy.
	System *core.System
	// Evaluator measures per-request forget/retain accuracy for the
	// audit trail. Nil disables accuracy audit fields (they report 0).
	Evaluator Evaluator
	// ModelFactory builds throwaway models for /v1/predict workers; each
	// gets snapshot parameters swapped in via SetParams. Nil disables
	// the predict endpoint.
	ModelFactory func() *nn.Model
	// QueueCap bounds the request queue (DefaultQueueCap when 0).
	QueueCap int
	// Linger is how long the worker waits after the first request of a
	// batch for more to coalesce. Zero means drain whatever is already
	// queued and go.
	Linger time.Duration
	// Sequential disables coalescing: one request per batch, in order.
	// The zero value — coalescing on — is the point of the daemon.
	Sequential bool
	// Telemetry, if set, receives the daemon's metrics, series, and the
	// per-request audit log folded into the run ledger.
	Telemetry *telemetry.Pipeline
}

// Server is the unlearning service: HTTP handlers produce tickets into
// the queue, one worker coalesces and executes them, and a snapshot
// store publishes the results to readers.
type Server struct {
	cfg     Config
	sys     *core.System
	q       *Queue
	store   *SnapshotStore
	mux     *http.ServeMux
	metrics *serveMetrics

	wg   sync.WaitGroup
	stop chan struct{}
	// life serializes Start and Drain so a Start racing a Drain either
	// launches the worker before Drain waits, or not at all.
	life     sync.Mutex
	started  atomic.Bool
	draining atomic.Bool

	// tmu guards the ticket index; tickets are never deleted, so the
	// audit surface (/v1/requests) covers the server's whole life.
	tmu     sync.Mutex
	tickets map[uint64]*Ticket
	order   []uint64

	nextID   atomic.Uint64
	batchSeq atomic.Uint64
	// published/failed are the daemon's own totals, alive whether or
	// not a telemetry pipeline (whose counters mirror them) is attached.
	published atomic.Int64
	failed    atomic.Int64

	evalPool sync.Pool
}

// New assembles a server around a trained system and publishes the
// current model as snapshot version 1.
func New(cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	s := &Server{
		cfg:     cfg,
		sys:     cfg.System,
		q:       NewQueue(cfg.QueueCap),
		store:   NewSnapshotStore(),
		mux:     http.NewServeMux(),
		metrics: newServeMetrics(cfg.Telemetry),
		stop:    make(chan struct{}),
		tickets: make(map[uint64]*Ticket),
	}
	if cfg.ModelFactory != nil {
		s.evalPool.New = func() any { return cfg.ModelFactory() }
	}
	version := s.store.Publish(s.sys.Model.CloneParams())
	s.metrics.modelVersion.Set(float64(version))
	s.routes()
	return s
}

// Handler returns the server's HTTP handler: the /v1 API plus the
// telemetry surface (/metrics, /dashboard, /api/series, /debug/*).
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the snapshot store (tests and embedding callers).
func (s *Server) Store() *SnapshotStore { return s.store }

// Start launches the worker. Idempotent, and a no-op once Drain has
// begun — the life mutex makes Start/Drain ordering deterministic, so
// a racing Start can never launch a worker Drain will not wait for.
// Requests enqueued before Start sit in the queue and coalesce into
// the first batch.
func (s *Server) Start() {
	s.life.Lock()
	defer s.life.Unlock()
	if s.draining.Load() || !s.started.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go s.run()
}

// Drain stops accepting new requests, lets the worker finish the
// backlog (still coalesced), and blocks until it exits. Idempotent;
// concurrent callers all block until the worker is done.
func (s *Server) Drain() {
	s.life.Lock()
	if s.draining.CompareAndSwap(false, true) {
		s.q.Close()
		close(s.stop)
	}
	s.life.Unlock()
	s.wg.Wait()
}

// Stats is the /v1/status payload.
type Stats struct {
	QueueDepth    int    `json:"queue_depth"`
	Batches       uint64 `json:"batches_total"`
	Published     int64  `json:"requests_published_total"`
	Failed        int64  `json:"requests_failed_total"`
	ModelVersion  uint64 `json:"model_version"`
	LiveSnapshots int    `json:"live_snapshots"`
	Draining      bool   `json:"draining"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		QueueDepth:    s.q.Len(),
		Batches:       s.batchSeq.Load(),
		Published:     s.published.Load(),
		Failed:        s.failed.Load(),
		ModelVersion:  s.store.Version(),
		LiveSnapshots: s.store.Live(),
		Draining:      s.draining.Load(),
	}
}

// submit enqueues a ticket and, once accepted, registers it in the
// ticket index. A rejected ticket (queue full or closed) is failed and
// returned to the caller for the error response but never retained —
// otherwise an untrusted client hammering a saturated queue would grow
// the never-pruned index without bound.
func (s *Server) submit(req core.Request) (*Ticket, error) {
	t := newTicket(s.nextID.Add(1), req)
	if err := s.q.Enqueue(t); err != nil {
		t.fail(err)
		return t, err
	}
	s.tmu.Lock()
	s.tickets[t.ID] = t
	s.order = append(s.order, t.ID)
	s.tmu.Unlock()
	s.metrics.queueDepth.Set(float64(s.q.Len()))
	return t, nil
}

// ticket looks up a ticket by ID.
func (s *Server) ticket(id uint64) (*Ticket, bool) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t, ok := s.tickets[id]
	return t, ok
}

// views snapshots every ticket in submission order.
func (s *Server) views() []View {
	s.tmu.Lock()
	ids := append([]uint64(nil), s.order...)
	index := make([]*Ticket, len(ids))
	for i, id := range ids {
		index[i] = s.tickets[id]
	}
	s.tmu.Unlock()
	out := make([]View, len(index))
	for i, t := range index {
		out[i] = t.View()
	}
	return out
}

// sortTickets orders a batch canonically — by kind, then target, then
// sample list, then ticket ID — so the published model is a function of
// the coalesced SET of requests, not of their arrival interleaving.
func sortTickets(ts []*Ticket) {
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i].Req, ts[j].Req
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		for k := 0; k < len(a.Samples) && k < len(b.Samples); k++ {
			if a.Samples[k] != b.Samples[k] {
				return a.Samples[k] < b.Samples[k]
			}
		}
		if len(a.Samples) != len(b.Samples) {
			return len(a.Samples) < len(b.Samples)
		}
		return ts[i].ID < ts[j].ID
	})
}
