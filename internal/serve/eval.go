package serve

import (
	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
)

// Evaluator measures a request's forget-set and retain-set accuracy on
// the given model. The worker calls it twice per ticket — before the
// coalesced pass and after publish — producing the before/after pair
// the run-ledger audit trail records for every deletion request.
type Evaluator interface {
	Split(m *nn.Model, req core.Request) (fset, rset float64)
}

// CohortEvaluator evaluates requests against a held-out test set and
// the cohort's original shards, mirroring how the experiment harnesses
// report the paper's F-Set / R-Set metric per request kind:
//
//   - class-level: F-Set = test samples of the class, R-Set = the rest;
//   - client-level: F-Set = the client's local data, R-Set = test set;
//   - sample-level: F-Set = the requested local samples, R-Set = test set.
type CohortEvaluator struct {
	Clients fl.ClientRegistry
	Test    *data.Dataset
}

// Split implements Evaluator.
func (e CohortEvaluator) Split(m *nn.Model, req core.Request) (fset, rset float64) {
	if m == nil || e.Test == nil {
		return 0, 0
	}
	switch req.Kind {
	case core.ClassLevel:
		return eval.ClassSplit(m, e.Test, req.Class)
	case core.ClientLevel:
		return eval.SubsetSplit(m, e.shard(req.Client), e.Test)
	case core.SampleLevel:
		shard := e.shard(req.Client)
		var idx []int
		for _, s := range req.Samples {
			if s >= 0 && s < shard.Len() {
				idx = append(idx, s)
			}
		}
		return eval.SubsetSplit(m, shard.Subset(idx), e.Test)
	default:
		return 0, 0
	}
}

// shard returns a client's original data, or an empty set for indices
// outside the cohort (accuracy on an empty set reports 0).
func (e CohortEvaluator) shard(client int) *data.Dataset {
	if e.Clients == nil || client < 0 || client >= e.Clients.NumClients() {
		return data.NewDataset(e.Test.H, e.Test.W, e.Test.C, e.Test.Classes)
	}
	return e.Clients.Shard(client)
}
