package serve

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Enqueue when the bounded queue is at
// capacity; clients should back off and retry (HTTP 429).
var ErrQueueFull = errors.New("serve: request queue is full")

// ErrQueueClosed is returned by Enqueue after Close; the server is
// draining and accepts no new work (HTTP 503).
var ErrQueueClosed = errors.New("serve: request queue is closed")

// Queue is the bounded FIFO of pending forget requests. One worker
// consumes it; any number of HTTP handlers produce into it. Wait
// blocks until an item arrives; TakeAll drains everything pending —
// the coalescing primitive. After Close the queue rejects producers
// but keeps handing out the backlog, so a graceful drain is simply
// "Close, then consume until Wait reports done".
type Queue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    []*Ticket
	capacity int
	closed   bool
}

// NewQueue returns a queue bounded at capacity items (minimum 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{capacity: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// Enqueue appends a ticket, or reports why it cannot.
func (q *Queue) Enqueue(t *Ticket) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items) >= q.capacity {
		return ErrQueueFull
	}
	q.items = append(q.items, t)
	q.nonEmpty.Signal()
	return nil
}

// Wait blocks until an item is available and returns it, or returns
// ok=false once the queue is closed and fully drained.
func (q *Queue) Wait() (t *Ticket, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	t = q.items[0]
	q.items = q.items[1:]
	return t, true
}

// TakeAll removes and returns every pending item without blocking.
func (q *Queue) TakeAll() []*Ticket {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	out := q.items
	q.items = nil
	return out
}

// Len returns the number of pending items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops accepting new items and wakes the consumer so it can
// drain the backlog and observe the closure. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpty.Broadcast()
}
