package serve

import (
	"fmt"
	"sync"

	"quickdrop/internal/core"
	"quickdrop/internal/telemetry"
)

// State is a request's position in the serving lifecycle:
//
//	queued → coalesced → unlearning → recovered → published
//	                                            ↘ failed
//
// Failed is reachable from any earlier state (parse-time rejection,
// batch resolution failure, phase error). The table below is machine
// checked: quickdroplint's statemachine rule verifies every state
// write in the tree moves along a declared edge.
//
//lint:statemachine StateQueued->StateCoalesced StateCoalesced->StateUnlearning
//lint:statemachine StateUnlearning->StateRecovered StateRecovered->StatePublished
//lint:statemachine StateQueued->StateFailed StateCoalesced->StateFailed
//lint:statemachine StateUnlearning->StateFailed StateRecovered->StateFailed
type State int32

const (
	StateQueued State = iota
	StateCoalesced
	StateUnlearning
	StateRecovered
	StatePublished
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateCoalesced:
		return "coalesced"
	case StateUnlearning:
		return "unlearning"
	case StateRecovered:
		return "recovered"
	case StatePublished:
		return "published"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Terminal reports whether the lifecycle is over.
func (s State) Terminal() bool { return s == StatePublished || s == StateFailed }

// Ticket tracks one forget request through the serving lifecycle. The
// worker mutates it; HTTP handlers snapshot it via View; waiters block
// on Done.
type Ticket struct {
	ID  uint64
	Req core.Request

	mu      sync.Mutex
	state   State
	batch   uint64
	version uint64
	fsetB   float64
	fsetA   float64
	rsetB   float64
	rsetA   float64
	err     error
	// watchdog, when non-empty, records the numerics-watchdog verdict
	// ("nan_loss in phase unlearn") that aborted the ticket's batch —
	// distinguishing a refused publish from an ordinary phase failure.
	watchdog string
	enqueued int64
	done     int64
	doneCh   chan struct{}
}

func newTicket(id uint64, req core.Request) *Ticket {
	return &Ticket{
		ID:       id,
		Req:      req,
		state:    StateQueued,
		enqueued: telemetry.Now(),
		doneCh:   make(chan struct{}),
	}
}

// Done is closed when the ticket reaches a terminal state.
func (t *Ticket) Done() <-chan struct{} { return t.doneCh }

// State returns the current lifecycle state.
func (t *Ticket) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *Ticket) setState(s State) {
	t.mu.Lock()
	t.state = s
	t.mu.Unlock()
}

// coalesce marks the ticket as drained into batch seq with its
// pre-pass accuracies.
func (t *Ticket) coalesce(seq uint64, fset, rset float64) {
	t.mu.Lock()
	t.state = StateCoalesced
	t.batch = seq
	t.fsetB, t.rsetB = fset, rset
	t.mu.Unlock()
}

// finish moves the ticket to a terminal state and wakes waiters.
func (t *Ticket) finish(s State, version uint64, fset, rset float64, err error) {
	t.mu.Lock()
	if t.state.Terminal() {
		t.mu.Unlock()
		return
	}
	t.state = s
	t.version = version
	t.fsetA, t.rsetA = fset, rset
	t.err = err
	t.done = telemetry.Now()
	t.mu.Unlock()
	close(t.doneCh)
}

// fail terminates the ticket with an error.
func (t *Ticket) fail(err error) { t.finish(StateFailed, 0, 0, 0, err) }

// failWatchdog terminates the ticket with an error and pins the health
// watchdog verdict that refused the publish.
func (t *Ticket) failWatchdog(err error, verdict string) {
	t.mu.Lock()
	if !t.state.Terminal() {
		t.watchdog = verdict
	}
	t.mu.Unlock()
	t.fail(err)
}

// View is the JSON projection of a ticket.
type View struct {
	ID      uint64      `json:"id"`
	Request RequestBody `json:"request"`
	State   string      `json:"state"`
	Batch   uint64      `json:"batch,omitempty"`
	Version uint64      `json:"version,omitempty"`
	// Before/after forget- and retain-set accuracies, mirrored into the
	// run-ledger audit entry on completion.
	FsetBefore float64 `json:"fset_before"`
	FsetAfter  float64 `json:"fset_after"`
	RsetBefore float64 `json:"rset_before"`
	RsetAfter  float64 `json:"rset_after"`
	Error      string  `json:"error,omitempty"`
	// Watchdog carries the numerics-watchdog verdict when the batch was
	// aborted by the health monitor rather than an ordinary failure.
	Watchdog  string `json:"watchdog,omitempty"`
	Enqueued  int64  `json:"enqueued_unix_nanos"`
	Completed int64  `json:"completed_unix_nanos,omitempty"`
}

// View snapshots the ticket for JSON encoding.
func (t *Ticket) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{
		ID:         t.ID,
		Request:    requestBody(t.Req),
		State:      t.state.String(),
		Batch:      t.batch,
		Version:    t.version,
		FsetBefore: t.fsetB,
		FsetAfter:  t.fsetA,
		RsetBefore: t.rsetB,
		RsetAfter:  t.rsetA,
		Watchdog:   t.watchdog,
		Enqueued:   t.enqueued,
		Completed:  t.done,
	}
	if t.err != nil {
		v.Error = t.err.Error()
	}
	return v
}

// audit converts the finished ticket into its run-ledger entry.
func (t *Ticket) audit() telemetry.AuditEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := telemetry.AuditEntry{
		ID:         t.ID,
		Stamp:      t.done,
		Request:    t.Req.String(),
		Kind:       kindName(t.Req.Kind),
		Batch:      t.batch,
		Version:    t.version,
		Status:     t.state.String(),
		FsetBefore: t.fsetB,
		FsetAfter:  t.fsetA,
		RsetBefore: t.rsetB,
		RsetAfter:  t.rsetA,
		Watchdog:   t.watchdog,
	}
	if t.err != nil {
		e.Err = t.err.Error()
	}
	return e
}

// kindName maps a request kind onto its wire / audit name, aligned
// with telemetry.RequestKindNames.
func kindName(k core.RequestKind) string {
	if i := int(k) - 1; i >= 0 && i < len(telemetry.RequestKindNames) {
		return telemetry.RequestKindNames[i]
	}
	return fmt.Sprintf("kind-%d", int(k))
}
