// Package distill implements QuickDrop's in-situ dataset distillation
// (paper §3.2): each client synthesizes a tiny per-class dataset whose
// gradients match the gradients of its real data along the FL training
// trajectory (gradient matching, Zhao et al. ICLR '21). The synthetic set
// is a compressed representation of the client's gradient information,
// reused downstream for fast unlearning, recovery and relearning.
package distill

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/data"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/telemetry"
	"quickdrop/internal/telemetry/health"
	"quickdrop/internal/tensor"
)

// Config parameterizes synthetic data generation (paper §4.1).
type Config struct {
	// Scale is s: each client keeps ⌈|D_ic|/s⌉ synthetic samples per class
	// (paper default 100 → 1% of the data volume).
	Scale float64
	// Steps is ς_S, the number of synthetic-update steps per local FL step.
	Steps int
	// LR is η_S, the synthetic-sample learning rate.
	LR float64
	// RealBatch is the per-class real minibatch size used when matching.
	RealBatch int
	// Eps stabilizes the cosine distance denominator.
	Eps float64
	// NoiseInit initializes synthetic samples from Gaussian noise instead
	// of real samples (ablation; the paper found real-sample init better).
	NoiseInit bool
	// Groups splits every class into this many fixed random subsets with
	// independently distilled synthetic counterparts, enabling
	// sample-level unlearning at subset granularity (paper §5.1's
	// future-work extension). 0 or 1 reproduces the paper's class-wise
	// behaviour.
	Groups int
	// Objective selects the distillation loss; the zero value is the
	// paper's gradient matching.
	Objective Objective
}

// DefaultConfig mirrors the paper's hyperparameters (s=100, ς_S=1, η_S=0.1)
// with a matching batch suitable for the scaled-down datasets.
func DefaultConfig() Config {
	return Config{Scale: 100, Steps: 1, LR: 0.1, RealBatch: 16, Eps: 1e-6}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Scale < 1 || c.Steps < 1 || c.LR <= 0 || c.RealBatch < 1 || c.Eps <= 0 {
		return fmt.Errorf("distill: invalid config %+v", c)
	}
	if c.Groups < 0 {
		return fmt.Errorf("distill: negative group count %d", c.Groups)
	}
	return nil
}

// groupCount returns the effective per-class group count.
func (c Config) groupCount() int {
	if c.Groups < 1 {
		return 1
	}
	return c.Groups
}

// InitSynthetic creates a client's synthetic dataset per Algorithm 2
// (lines 2–7): for every class the client holds, pick ⌈|D_ic|/s⌉ samples
// at random and clone them as the initial synthetic points. With
// cfg.NoiseInit the clones are replaced by Gaussian noise of matching
// shape (ablation).
func InitSynthetic(client *data.Dataset, cfg Config, rng *rand.Rand) *data.Dataset {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	syn, _ := buildGrouping(client, cfg, 1, rng)
	return syn
}

// MatchDistance computes the layer-wise grouped cosine distance
// d(∇L^S, ∇L^D) of Zhao et al.: for every parameter, gradients are grouped
// per output unit (matrix columns; vectors form one group) and the
// distance is Σ_groups (1 − cosθ). gS must be graph-connected values
// (gradients with create-graph); gD are detached.
func MatchDistance(gS, gD []*ad.Value, eps float64) *ad.Value {
	if len(gS) != len(gD) {
		panic(fmt.Sprintf("distill: %d synthetic grads vs %d real grads", len(gS), len(gD)))
	}
	total := ad.Scalar(0)
	for i := range gS {
		s, d := gS[i], gD[i]
		if !s.Data.SameShape(d.Data) {
			panic(fmt.Sprintf("distill: grad %d shape mismatch %s vs %s", i, s.Data.ShapeString(), d.Data.ShapeString()))
		}
		// Group per output unit: matrices [R, C] have C groups (columns);
		// vectors become a single column.
		if s.Data.Dims() != 2 {
			n := s.Data.Len()
			s = ad.Reshape(s, n, 1)
			d = ad.Reshape(d, n, 1)
		}
		cols := s.Data.Dim(1)
		// Column-wise dot products in one fused reduction each: the
		// gradient-sized products s⊙d, s⊙s, d⊙d are never materialized.
		dot := ad.MulSum(s, d, 0) // [1, C]
		nS := ad.MulSum(s, s, 0)  // [1, C]
		nD := ad.MulSum(d, d, 0)  // [1, C]
		den := ad.AddConst(ad.Sqrt(ad.Mul(nS, nD)), eps)
		cos := ad.Div(dot, den)
		total = ad.Add(total, ad.Sub(ad.Scalar(float64(cols)), ad.SumAll(cos)))
	}
	return total
}

// L2Distance is the plain squared-L2 alternative distance (ablation).
func L2Distance(gS, gD []*ad.Value, _ float64) *ad.Value {
	total := ad.Scalar(0)
	for i := range gS {
		diff := ad.Sub(gS[i], gD[i])
		total = ad.Add(total, ad.SumAll(ad.Mul(diff, diff)))
	}
	return total
}

// DistanceFunc measures the discrepancy between two gradient lists.
type DistanceFunc func(gS, gD []*ad.Value, eps float64) *ad.Value

// Matcher owns per-client synthetic sets and performs the in-situ
// gradient-matching updates during FL training (Algorithm 2 lines 12–15).
// Attach Hook to the fl.PhaseConfig of the training phase.
type Matcher struct {
	Cfg Config
	// Sets maps client ID to its synthetic dataset.
	Sets map[int]*data.Dataset
	// Groupings maps client ID to the sub-class group structure. With
	// Cfg.Groups ≤ 1 every class forms one group (the paper's setting).
	Groupings map[int]*Grouping
	// Distance is the matching objective (MatchDistance by default).
	Distance DistanceFunc
	// DDTime accumulates wall time spent in distillation, the quantity in
	// the paper's Table 6 overhead analysis.
	DDTime time.Duration
	// Counter tracks gradient evaluations performed for distillation.
	Counter optim.Counter
	// Telemetry, if set, records a distill-step span and the matching-step
	// metrics for every MatchStep. Nil is free.
	Telemetry *telemetry.Pipeline
	// Health, if set, watches the matching numerics: every per-class
	// update feeds the distance into the NaN tripwire, and the pixel
	// gradient's norm is sampled on the monitor's cadence. Nil is free.
	Health *health.Monitor
}

// NewMatcher initializes synthetic sets for every client in the registry.
// Shards are materialized one at a time in ascending client-ID order (the
// order fixes the RNG stream), so peak memory stays one shard, not the
// cohort.
func NewMatcher(cfg Config, clients fl.ClientRegistry, rng *rand.Rand) *Matcher {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	n := 0
	if clients != nil {
		n = clients.NumClients()
	}
	m := &Matcher{
		Cfg:       cfg,
		Sets:      make(map[int]*data.Dataset, n),
		Groupings: make(map[int]*Grouping, n),
		Distance:  MatchDistance,
	}
	for i := 0; i < n; i++ {
		if clients.ShardLen(i) == 0 {
			continue
		}
		if c := clients.Shard(i); c != nil && c.Len() > 0 {
			syn, grouping := buildGrouping(c, cfg, cfg.groupCount(), rng)
			m.Sets[i] = syn
			m.Groupings[i] = grouping
		}
	}
	return m
}

// Hook returns the fl.LocalStepHook that performs one matching update per
// local FL step, class-wise, as in Algorithm 2.
func (m *Matcher) Hook() fl.LocalStepHook {
	return func(ctx fl.StepContext) { m.MatchStep(ctx) }
}

// MatchStep performs the class-wise gradient-matching update for one
// client local step: for every class the client holds, it computes the
// real-data gradient (detached), the synthetic-data gradient
// (graph-connected), their grouped cosine distance, and takes ς_S SGD
// steps on the synthetic pixels.
//
//lint:hotpath
func (m *Matcher) MatchStep(ctx fl.StepContext) {
	syn := m.Sets[ctx.ClientID]
	if syn == nil || syn.Len() == 0 {
		return
	}
	// DD-overhead accounting (Table 6) goes through the telemetry clock:
	// the reading feeds DDTime and the distill metrics, never the numerics.
	sw := telemetry.StartTimer()
	sp := m.Telemetry.StartDistill(ctx.Round, ctx.ClientID)
	defer func() {
		d := sw.Elapsed()
		m.DDTime += d
		m.Telemetry.EndDistill(sp, d)
	}()

	if grouping := m.Groupings[ctx.ClientID]; grouping != nil {
		// Group-wise matching: each (class, group) subset matches its own
		// real counterpart.
		for _, key := range grouping.Keys() {
			realIdx, synIdx := grouping.Real[key], grouping.Syn[key]
			if len(realIdx) == 0 || len(synIdx) == 0 {
				continue
			}
			m.matchClass(ctx, syn, realIdx, synIdx)
		}
		return
	}
	// No grouping recorded (e.g. a standalone fine-tuning matcher): fall
	// back to the paper's class-wise matching.
	realByClass := ctx.Client.ByClass()
	synByClass := syn.ByClass()
	for _, class := range sortedKeys(synByClass) {
		realIdx := realByClass[class]
		if len(realIdx) == 0 {
			continue
		}
		m.matchClass(ctx, syn, realIdx, synByClass[class])
	}
}

// matchClass runs the per-class matching update: realIdx and synIdx index
// the same class in the client's real and synthetic datasets.
func (m *Matcher) matchClass(ctx fl.StepContext, syn *data.Dataset, realIdx, synIdx []int) {
	// Real gradient for this class, detached.
	batch := realIdx
	if len(batch) > m.Cfg.RealBatch {
		perm := ctx.Rng.Perm(len(realIdx))[:m.Cfg.RealBatch]
		batch = make([]int, m.Cfg.RealBatch)
		for i, p := range perm {
			batch[i] = realIdx[p]
		}
	}
	xD, yD := ctx.Client.Batch(batch)
	if m.Cfg.Objective == DistributionMatching {
		m.matchDistribution(ctx, syn, synIdx, xD, len(batch))
		return
	}
	model := ctx.Model

	// Per-step scratch comes from the tensor pool and is reused across all
	// ς_S iterations: the detached real-gradient buffers and the pixel
	// update buffer. Each iteration's matching graph dies before the next
	// CopyFrom, so reusing the buffers never mutates a live graph.
	gDBufs := make([]*tensor.Tensor, len(model.Params()))
	for i, p := range model.Params() {
		gDBufs[i] = tensor.GetLike(p.Data)
	}
	gD := make([]*ad.Value, len(gDBufs))
	var updated *tensor.Tensor
	defer func() {
		tensor.PutAll(gDBufs)
		tensor.Put(updated)
	}()

	for step := 0; step < m.Cfg.Steps; step++ {
		boundD := model.Bind()
		lossD := nn.CrossEntropy(boundD.Forward(ad.Const(xD)), nn.OneHot(yD, model.Classes))
		gDVals := ad.MustGrad(lossD, boundD.ParamVars())
		for i, g := range gDVals {
			gD[i] = ad.Const(gDBufs[i].CopyFrom(g.Data))
		}
		m.Counter.AddBatch(len(batch))

		// Synthetic gradient, graph-connected to the synthetic pixels.
		xS, yS := syn.Batch(synIdx)
		sVar := ad.Var(xS)
		boundS := model.Bind()
		lossS := nn.CrossEntropy(boundS.Forward(sVar), nn.OneHot(yS, model.Classes))
		gS := ad.MustGrad(lossS, boundS.ParamVars())
		m.Counter.AddBatch(len(synIdx))

		dist := m.Distance(gS, gD, m.Cfg.Eps)
		gradS := ad.MustGrad(dist, []*ad.Value{sVar})[0]
		if m.Health != nil {
			gl2, gn, gi := 0.0, 0, 0
			if m.Health.Sample() {
				gl2, gn, gi = tensor.NormStats(gradS.Data)
			}
			m.Health.RecordDistill(float64(m.Counter.GradEvals), dist.Data.Data()[0], gl2, gn+gi)
		}

		// SGD step on the synthetic pixels, written back per sample.
		if updated == nil {
			updated = tensor.GetLike(xS)
		}
		tensor.AddScaledInto(updated, xS, -m.Cfg.LR, gradS.Data)
		per := syn.H * syn.W * syn.C
		for bi, si := range synIdx {
			copy(syn.X[si].Data(), updated.Data()[bi*per:(bi+1)*per])
		}
	}
}

// matchDistribution performs the first-order distribution-matching
// update: the synthetic pixels descend on the squared distance between
// the mean penultimate-layer embeddings of synthetic and real samples.
func (m *Matcher) matchDistribution(ctx fl.StepContext, syn *data.Dataset, synIdx []int, xD *tensor.Tensor, realCount int) {
	model := ctx.Model
	embLayer := model.BindFrozen().NumLayers() - 1 // stop before the classifier
	var updated *tensor.Tensor
	defer func() { tensor.Put(updated) }()
	for step := 0; step < m.Cfg.Steps; step++ {
		embD := flatten2D(model.BindFrozen().ForwardUpTo(ad.Const(xD), embLayer))
		m.Counter.AddBatch(realCount)

		xS, _ := syn.Batch(synIdx)
		sVar := ad.Var(xS)
		embS := flatten2D(model.BindFrozen().ForwardUpTo(sVar, embLayer))
		m.Counter.AddBatch(len(synIdx))

		dist := distributionDistance(embS, ad.Detach(embD))
		gradS := ad.MustGrad(dist, []*ad.Value{sVar})[0]
		if updated == nil {
			updated = tensor.GetLike(xS)
		}
		tensor.AddScaledInto(updated, xS, -m.Cfg.LR, gradS.Data)
		per := syn.H * syn.W * syn.C
		for bi, si := range synIdx {
			copy(syn.X[si].Data(), updated.Data()[bi*per:(bi+1)*per])
		}
	}
}

// flatten2D reshapes an activation to [B, rest].
func flatten2D(v *ad.Value) *ad.Value {
	batch := v.Data.Dim(0)
	return ad.Reshape(v, batch, v.Data.Len()/batch)
}

// StorageOverhead returns the synthetic-to-original volume ratio across
// all clients (paper: ≈ 1/s). Only ShardLen is consulted, so this is
// cheap even for lazy registries.
func (m *Matcher) StorageOverhead(clients fl.ClientRegistry) float64 {
	synTotal, realTotal := 0, 0
	n := 0
	if clients != nil {
		n = clients.NumClients()
	}
	for i := 0; i < n; i++ {
		if s, ok := m.Sets[i]; ok {
			synTotal += s.Len()
		}
		realTotal += clients.ShardLen(i)
	}
	if realTotal == 0 {
		return 0
	}
	return float64(synTotal) / float64(realTotal)
}

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
