package distill

import (
	"fmt"
	"math/rand"
	"sort"

	"quickdrop/internal/data"
	"quickdrop/internal/tensor"
)

// GroupKey identifies one sub-class subset of a client's data. With
// Groups=1 every class has a single group and QuickDrop behaves exactly
// as in the paper; with Groups>1 each class is split into fixed random
// subsets whose synthetic counterparts are distilled independently,
// enabling sample-level unlearning at subset granularity — the extension
// sketched in the paper's §5.1.
type GroupKey struct {
	Class int
	Group int
}

// String implements fmt.Stringer.
func (k GroupKey) String() string { return fmt.Sprintf("class %d/group %d", k.Class, k.Group) }

// Grouping records, for one client, which real and synthetic sample
// indices belong to each group.
type Grouping struct {
	// Real maps group → indices into the client's real dataset.
	Real map[GroupKey][]int
	// Syn maps group → indices into the client's synthetic dataset.
	Syn map[GroupKey][]int
}

// Keys returns the grouping's keys in deterministic order.
func (g *Grouping) Keys() []GroupKey {
	keys := make([]GroupKey, 0, len(g.Real))
	for k := range g.Real {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Class != keys[b].Class {
			return keys[a].Class < keys[b].Class
		}
		return keys[a].Group < keys[b].Group
	})
	return keys
}

// GroupOf returns the group containing the client's real sample index, or
// false if the index belongs to no group.
func (g *Grouping) GroupOf(realIdx int) (GroupKey, bool) {
	for k, idx := range g.Real {
		for _, i := range idx {
			if i == realIdx {
				return k, true
			}
		}
	}
	return GroupKey{}, false
}

// buildGrouping splits every class of a client's dataset into `groups`
// random fixed subsets and creates the per-group synthetic samples:
// ⌈|subset|/s⌉ clones of random subset members (or noise with NoiseInit).
func buildGrouping(client *data.Dataset, cfg Config, groups int, rng *rand.Rand) (*data.Dataset, *Grouping) {
	if groups < 1 {
		panic(fmt.Sprintf("distill: groups must be ≥ 1, got %d", groups))
	}
	syn := data.NewDataset(client.H, client.W, client.C, client.Classes)
	grouping := &Grouping{Real: make(map[GroupKey][]int), Syn: make(map[GroupKey][]int)}
	byClass := client.ByClass()
	for _, class := range sortedKeys(byClass) {
		idx := append([]int(nil), byClass[class]...)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		g := groups
		if g > len(idx) {
			g = len(idx) // at most one group per sample
		}
		for gi := 0; gi < g; gi++ {
			lo := gi * len(idx) / g
			hi := (gi + 1) * len(idx) / g
			subset := idx[lo:hi]
			key := GroupKey{Class: class, Group: gi}
			grouping.Real[key] = append([]int(nil), subset...)
			m := (len(subset) + int(cfg.Scale) - 1) / int(cfg.Scale)
			perm := rng.Perm(len(subset))
			for i := 0; i < m; i++ {
				s := client.X[subset[perm[i]]].Clone()
				if cfg.NoiseInit {
					s = tensor.Randn(rng, 1, client.H, client.W, client.C)
				}
				grouping.Syn[key] = append(grouping.Syn[key], syn.Len())
				syn.Append(s, class)
			}
		}
	}
	return syn, grouping
}
