package distill

import (
	"fmt"
	"math/rand"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/data"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/tensor"
)

// Augment mixes original samples into the synthetic set 1:1 per class
// (paper §3.3.1): for every class, as many randomly selected real samples
// as there are synthetic ones are cloned in. The result is ≈ 2/s of the
// original volume; the paper found this markedly improves recovery.
func Augment(synthetic, original *data.Dataset, rng *rand.Rand) *data.Dataset {
	out := data.NewDataset(synthetic.H, synthetic.W, synthetic.C, synthetic.Classes)
	realByClass := original.ByClass()
	for i, x := range synthetic.X {
		out.Append(x, synthetic.Y[i])
	}
	for _, c := range sortedKeys(synthetic.ByClass()) {
		synCount := len(synthetic.ByClass()[c])
		realIdx := realByClass[c]
		if len(realIdx) == 0 {
			continue
		}
		perm := rng.Perm(len(realIdx))
		for i := 0; i < synCount && i < len(perm); i++ {
			out.Append(original.X[realIdx[perm[i]]].Clone(), c)
		}
	}
	return out
}

// FineTuneConfig parameterizes the optional post-training refinement of
// the synthetic data (paper §3.3.2), which runs the generalization-
// targeted condensation of Zhao et al. across fresh random network
// initializations.
type FineTuneConfig struct {
	// OuterSteps is F: the number of random re-initializations (the paper
	// varies 0–200 and finds 200 closes the gap to the retraining oracle).
	OuterSteps int
	// InnerSteps per re-initialization (paper: 50).
	InnerSteps int
	// ModelLR trains the scratch model on the synthetic data between
	// matching updates, advancing the trajectory being matched.
	ModelLR float64
	// Arch is the network family to draw re-initializations from.
	Arch nn.ConvNetConfig
	// Match carries the matching hyperparameters (LR, steps, batch, eps).
	Match Config
}

// Validate reports configuration errors.
func (c FineTuneConfig) Validate() error {
	if c.OuterSteps < 0 || c.InnerSteps < 1 || c.ModelLR <= 0 {
		return fmt.Errorf("distill: invalid fine-tune config %+v", c)
	}
	if err := c.Arch.Validate(); err != nil {
		return err
	}
	return c.Match.Validate()
}

// FineTune refines a client's synthetic set against its real data,
// matching gradients at OuterSteps fresh initializations. It returns the
// number of real-data gradient evaluations performed, which Figure 5
// compares against the FL-training gradient budget.
func FineTune(syn, real *data.Dataset, cfg FineTuneConfig, rng *rand.Rand) (optim.Counter, error) {
	var counter optim.Counter
	if err := cfg.Validate(); err != nil {
		return counter, err
	}
	if syn.Len() == 0 || real.Len() == 0 {
		return counter, fmt.Errorf("distill: FineTune needs non-empty synthetic and real sets")
	}
	matcher := &Matcher{Cfg: cfg.Match, Sets: map[int]*data.Dataset{0: syn}, Distance: MatchDistance}
	for outer := 0; outer < cfg.OuterSteps; outer++ {
		model := nn.NewConvNetLike(cfg.Arch, rng)
		opt := optim.NewSGD(cfg.ModelLR)
		for inner := 0; inner < cfg.InnerSteps; inner++ {
			// Match synthetic gradients to real gradients at the current θ.
			matcher.MatchStep(fl.StepContext{
				Round: outer, Step: inner, ClientID: 0,
				Model: model, Client: real, Rng: rng,
			})
			// Advance θ by training on the synthetic data so later inner
			// steps match deeper into the trajectory (Zhao et al.).
			x, labels := syn.SampleBatch(rng, cfg.Match.RealBatch)
			bound := model.Bind()
			loss := nn.CrossEntropy(bound.Forward(ad.Const(x)), nn.OneHot(labels, model.Classes))
			grads := ad.MustGrad(loss, bound.ParamVars())
			gt := make([]*tensor.Tensor, len(grads))
			for i, g := range grads {
				gt[i] = g.Data
			}
			opt.Step(model.ParamTensors(), gt)
		}
	}
	counter.Add(matcher.Counter)
	return counter, nil
}
