package distill

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quickdrop/internal/data"
)

func TestGroupingPartitionsEveryClass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		client := clientSet(t, 2+r.Intn(10), seed)
		groups := 1 + r.Intn(4)
		cfg := DefaultConfig()
		cfg.Scale = float64(1 + r.Intn(5))
		syn, grouping := buildGrouping(client, cfg, groups, r)

		// Every real index appears in exactly one group.
		seen := make(map[int]int)
		for _, idx := range grouping.Real {
			for _, i := range idx {
				seen[i]++
			}
		}
		if len(seen) != client.Len() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// Every synthetic index appears in exactly one group and the
		// union covers the synthetic set.
		synSeen := make(map[int]int)
		for key, idx := range grouping.Syn {
			for _, i := range idx {
				synSeen[i]++
				if syn.Y[i] != key.Class {
					return false // synthetic label must match group class
				}
			}
		}
		if len(synSeen) != syn.Len() {
			return false
		}
		// Per-group sizing invariant ⌈n/s⌉.
		for key, real := range grouping.Real {
			want := (len(real) + int(cfg.Scale) - 1) / int(cfg.Scale)
			if len(grouping.Syn[key]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupingGroupOf(t *testing.T) {
	client := clientSet(t, 6, 30)
	cfg := DefaultConfig()
	cfg.Scale = 3
	_, grouping := buildGrouping(client, cfg, 2, rand.New(rand.NewSource(31)))
	for i := 0; i < client.Len(); i++ {
		key, ok := grouping.GroupOf(i)
		if !ok {
			t.Fatalf("sample %d in no group", i)
		}
		if key.Class != client.Y[i] {
			t.Fatalf("sample %d (class %d) mapped to group of class %d", i, client.Y[i], key.Class)
		}
	}
	if _, ok := grouping.GroupOf(client.Len() + 5); ok {
		t.Fatal("out-of-range index must not resolve")
	}
}

func TestGroupingKeysDeterministic(t *testing.T) {
	client := clientSet(t, 6, 32)
	cfg := DefaultConfig()
	cfg.Scale = 3
	_, g := buildGrouping(client, cfg, 2, rand.New(rand.NewSource(33)))
	keys := g.Keys()
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Group >= b.Group) {
			t.Fatalf("keys not ordered: %v", keys)
		}
	}
	if keys[0].String() == "" {
		t.Fatal("GroupKey must render")
	}
}

func TestGroupsMoreThanSamples(t *testing.T) {
	// Asking for more groups than samples per class must clamp gracefully.
	client := clientSet(t, 2, 34) // 2 samples per class
	cfg := DefaultConfig()
	cfg.Scale = 1
	syn, g := buildGrouping(client, cfg, 10, rand.New(rand.NewSource(35)))
	if syn.Len() != client.Len() { // scale 1 ⇒ one synthetic per real
		t.Fatalf("synthetic %d vs real %d", syn.Len(), client.Len())
	}
	for key, idx := range g.Real {
		if len(idx) == 0 {
			t.Fatalf("group %v is empty", key)
		}
	}
}

func TestMatcherWithGroupsStillReducesDistance(t *testing.T) {
	client := clientSet(t, 10, 36)
	cfg := DefaultConfig()
	cfg.Scale = 5
	cfg.LR = 0.5
	cfg.Groups = 2
	rng := rand.New(rand.NewSource(37))
	matcher := NewMatcher(cfg, data.NewCohort([]*data.Dataset{client}), rng)
	if matcher.Groupings[0] == nil {
		t.Fatal("grouping missing")
	}
	if len(matcher.Groupings[0].Real) < 10 {
		t.Fatalf("expected ≥10 groups (2 per class), got %d", len(matcher.Groupings[0].Real))
	}
}

func TestConfigRejectsNegativeGroups(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Groups = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}
